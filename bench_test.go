// Benchmark harness: one testing.B entry per table and figure of the
// paper's evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Figures 4-9 share one cached benchmark sweep (the expensive part is the
// simulation, identical for all six figures); Figure 3 re-simulates the
// kmeans organizations on every iteration.
package repro

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/stats"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

var (
	sweepOnce sync.Once
	sweep     *experiments.Results
)

func getSweep() *experiments.Results {
	sweepOnce.Do(func() { sweep, _ = experiments.Run(bench.SizeSmall, nil) })
	return sweep
}

// BenchmarkSweepSmall measures the worker-pool speedup of the sweep
// pipeline itself: the same four-benchmark sweep serial (jobs=1) and on a
// GOMAXPROCS-wide pool. Every run is an isolated simulation, so the sweep
// scales with cores; on a single-core machine both cases cost the same.
func BenchmarkSweepSmall(b *testing.B) {
	subset := []string{"rodinia/backprop", "rodinia/bfs", "rodinia/kmeans", "rodinia/srad"}
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, errs := experiments.RunSweep(bench.SizeSmall, experiments.SweepOpts{
					Only: subset,
					Jobs: jobs,
				})
				if len(errs) != 0 || len(res.Names()) != len(subset) {
					b.Fatalf("sweep incomplete: %d names, %d failures", len(res.Names()), len(errs))
				}
			}
		})
	}
}

// BenchmarkRunMedium measures one medium kmeans run end to end — the
// intra-run parallel engine's target workload — serial and with the
// run's trace generation pipelined on 4 workers. The speedup comes from
// overlapping functional execution with the timing model, so it needs
// spare cores: on a multi-core machine par=4 approaches the serial
// timing-model cost alone, while on one core both cases cost about the
// same (the pipeline degrades to interleaving, never to divergence).
func BenchmarkRunMedium(b *testing.B) {
	km, ok := bench.Get("rodinia/kmeans")
	if !ok {
		b.Fatal("rodinia/kmeans not registered")
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := harness.Run(harness.Spec{
					Bench: km, Mode: bench.ModeCopy, Size: bench.SizeMedium,
					Parallel: par,
				})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
			}
		})
	}
}

// BenchmarkTable1 regenerates the Table I system parameter listing.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(experiments.Table1(), "GDDR5") {
			b.Fatal("table 1 malformed")
		}
	}
}

// BenchmarkTable2 regenerates the Table II pipeline-construct census.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2()
		if rows[len(rows)-1].Num != 58 {
			b.Fatal("census must cover 58 benchmarks")
		}
	}
}

// BenchmarkFig3 re-simulates the kmeans case study: Baseline, Asynchronous
// Copy, No Memory Copy, Parallel (estimate), Parallel + Cache.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, errs := experiments.Fig3(bench.SizeSmall, harness.Budget{})
		if len(rows) != 5 || len(errs) != 0 {
			b.Fatal("fig 3 needs 5 organizations")
		}
		b.ReportMetric(rows[2].RunTime, "nocopy-vs-baseline")
		b.ReportMetric(rows[4].RunTime, "parcache-vs-baseline")
		b.ReportMetric(100*rows[4].GPUUtil, "final-gpu-util-%")
	}
}

// BenchmarkFig4 regenerates the footprint partition figure.
func BenchmarkFig4(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txt := experiments.Fig4Text(r)
		if !strings.Contains(txt, "geomean") {
			b.Fatal("fig 4 malformed")
		}
	}
	var tot, lim float64
	for _, n := range r.Names() {
		tot += float64(r.Copy[n].FootprintBytes)
		lim += float64(r.Limited[n].FootprintBytes)
	}
	b.ReportMetric(100*lim/tot, "limited-footprint-%")
}

// BenchmarkFig5 regenerates the off-chip access breakdown figure.
func BenchmarkFig5(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig5Text(r)
	}
	var copyAcc, totAcc uint64
	for _, n := range r.Names() {
		copyAcc += r.Copy[n].DRAMAccesses[stats.Copy]
		totAcc += r.Copy[n].TotalDRAM()
	}
	b.ReportMetric(100*float64(copyAcc)/float64(totAcc), "copy-access-%")
}

// BenchmarkFig6 regenerates the run-time activity breakdown figure.
func BenchmarkFig6(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6Text(r)
	}
	var cv, lv float64
	for _, n := range r.Names() {
		cv += r.Copy[n].ROI.Millis()
		lv += r.Limited[n].ROI.Millis()
	}
	b.ReportMetric(100*(1-lv/cv), "runtime-improvement-%")
}

// BenchmarkFig7 regenerates the component-overlap (Eq. 1) estimate figure.
func BenchmarkFig7(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7Text(r)
	}
	var est, act float64
	for _, n := range r.Names() {
		est += r.Copy[n].Rco.Millis()
		act += r.Copy[n].ROI.Millis()
	}
	b.ReportMetric(100*(1-est/act), "overlap-gain-%")
}

// BenchmarkFig8 regenerates the migrated-compute (Eqs. 2-4) estimate figure.
func BenchmarkFig8(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig8Text(r)
	}
	var est, act float64
	for _, n := range r.Names() {
		est += r.Limited[n].Rmc.Millis()
		act += r.Limited[n].ROI.Millis()
	}
	b.ReportMetric(100*(1-est/act), "migrate-gain-%")
}

// BenchmarkFig9 regenerates the off-chip access classification figure.
func BenchmarkFig9(b *testing.B) {
	r := getSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig9Text(r)
	}
	var rr float64
	for _, n := range r.Names() {
		rr += r.Limited[n].ClassFraction(core.ClassRRContention)
	}
	b.ReportMetric(100*rr/float64(len(r.Names())), "rr-contention-%")
}
