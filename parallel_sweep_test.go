// Sweep-level determinism gate for the intra-run parallel engine: the
// small sweep must export byte-identical documents and traces at -par 1
// and -par 8. CI runs this under -race in the parallel-engine job.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// parSweepBenches is the default determinism subset: every suite, the
// extra-mode benchmark (kmeans: async-streams + parallel-chunked), and
// the persistent-kernel benchmark (cutcp: the serial-fallback path).
// Set HETSIM_SWEEP_FULL=1 to diff the full registry instead — the CI
// parallel-engine job does; the default keeps `go test ./...` fast.
var parSweepBenches = []string{
	"rodinia/kmeans", "parboil/cutcp", "pannotia/pr_spmv", "lonestar/bh",
}

// parSweepDocs runs the sweep at one -par value and returns its JSON
// document and Perfetto trace export, both validated.
func parSweepDocs(t *testing.T, par int) (doc, traceJSON []byte) {
	t.Helper()
	opts := experiments.SweepOpts{Parallel: par, Trace: true}
	if os.Getenv("HETSIM_SWEEP_FULL") == "" {
		opts.Only = parSweepBenches
	}
	res, errs := experiments.RunSweep(bench.SizeSmall, opts)
	if len(errs) != 0 {
		t.Fatalf("par=%d: sweep failed: %v", par, errs[0])
	}
	sd := res.JSON()
	for i := range sd.Runs {
		// Wall-clock time is telemetry, not a result; everything else in
		// the document is covered by the byte-identity contract.
		sd.Runs[i].WallMs = 0
	}
	var err error
	if doc, err = json.MarshalIndent(sd, "", "  "); err != nil {
		t.Fatalf("par=%d: marshal sweep doc: %v", par, err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, res.Traces); err != nil {
		t.Fatalf("par=%d: export traces: %v", par, err)
	}
	traceJSON = buf.Bytes()
	// The same validation cmd/tracecheck runs on sweep artifacts.
	if _, err := trace.Validate(traceJSON); err != nil {
		t.Fatalf("par=%d: trace export invalid: %v", par, err)
	}
	return doc, traceJSON
}

// saveDivergence writes both sides of a mismatch for CI to upload as
// artifacts (HETSIM_DIVERGENCE_DIR, set by the parallel-engine job).
func saveDivergence(t *testing.T, kind string, serial, par []byte) {
	dir := os.Getenv("HETSIM_DIVERGENCE_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("divergence dir: %v", err)
		return
	}
	for name, data := range map[string][]byte{
		kind + "-par1.json": serial,
		kind + "-par8.json": par,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Logf("divergence artifact %s: %v", name, err)
		}
	}
	t.Logf("divergent %s documents written to %s", kind, dir)
}

// firstDiff renders the first byte where two documents diverge, with
// context, so the failure message pinpoints the drifting field.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d:\npar=1: ...%s\npar=8: ...%s", i, a[lo:i+80], b[lo:i+80])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d bytes", len(a), len(b))
}

// TestParallelByteIdenticalSweep is the sweep-level gate from the issue:
// the small sweep — figures, run documents, and the full Perfetto trace
// export — is byte-identical between -par 1 (serial) and -par 8.
func TestParallelByteIdenticalSweep(t *testing.T) {
	doc1, tr1 := parSweepDocs(t, 1)
	doc8, tr8 := parSweepDocs(t, 8)
	if !bytes.Equal(doc1, doc8) {
		saveDivergence(t, "sweep", doc1, doc8)
		t.Errorf("sweep document diverged at %s", firstDiff(doc1, doc8))
	}
	if !bytes.Equal(tr1, tr8) {
		saveDivergence(t, "trace", tr1, tr8)
		t.Errorf("trace export diverged at %s", firstDiff(tr1, tr8))
	}
}
