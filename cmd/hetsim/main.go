// Command hetsim runs one benchmark on one simulated system configuration
// and prints the full analysis report — the smallest way to poke at the
// simulator.
//
// Usage:
//
//	hetsim -bench rodinia/kmeans [-mode copy|limited-copy|async-streams|parallel-chunked]
//	       [-size small|medium] [-timeout 60s] [-max-events N] [-inject PLAN] [-counters]
//	hetsim -list
//
// Runs execute under the fault-tolerant harness: a panic, deadlock, or
// exceeded -timeout/-max-events budget terminates with a diagnostic
// instead of crashing or hanging, and a budget-exceeded medium run is
// retried once at small. -inject degrades the simulated hardware, e.g.
// -inject pcie=0.25,fault=8,dram=0:100:600.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/harness"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	name := flag.String("bench", "", "benchmark full name (suite/name)")
	modeFlag := flag.String("mode", "copy", "copy, limited-copy, async-streams, or parallel-chunked")
	sizeFlag := flag.String("size", "small", "small or medium")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "simulation event budget for the run (0 = unlimited)")
	inject := flag.String("inject", "", "hardware fault plan, e.g. pcie=0.25,fault=8,dram=0:100:600")
	counters := flag.Bool("counters", false, "also dump every hardware counter")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		fmt.Printf("%-26s %-10s %s\n", "NAME", "EXTRA", "DESCRIPTION")
		for _, b := range bench.All() {
			info := b.Info()
			extra := ""
			for i, m := range info.ExtraModes {
				if i > 0 {
					extra += ","
				}
				extra += m.String()
			}
			fmt.Printf("%-26s %-10s %s\n", info.FullName(), extra, info.Desc)
		}
		return
	}

	var mode bench.Mode
	switch *modeFlag {
	case "copy":
		mode = bench.ModeCopy
	case "limited-copy":
		mode = bench.ModeLimitedCopy
	case "async-streams":
		mode = bench.ModeAsyncStreams
	case "parallel-chunked":
		mode = bench.ModeParallelChunked
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}
	size := bench.SizeSmall
	if *sizeFlag == "medium" {
		size = bench.SizeMedium
	}
	fault, err := harness.ParseFaultPlan(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-inject: %v\n", err)
		os.Exit(2)
	}

	b, ok := bench.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *name)
		fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
		os.Exit(1)
	}

	out := harness.Run(harness.Spec{
		Bench: b, Mode: mode, Size: size,
		Budget: harness.Budget{MaxEvents: *maxEvents, Timeout: time.Duration(*timeout)},
		Fault:  fault,
	})
	if out.Err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", out.Err)
		if len(out.Err.Stack) > 0 {
			fmt.Fprintf(os.Stderr, "%s\n", out.Err.Stack)
		}
		os.Exit(1)
	}
	if out.Degraded {
		fmt.Fprintf(os.Stderr, "note: ran at size %s after exceeding the budget at %s (%d attempts)\n",
			out.Size, size, out.Attempts)
	}
	if fault.Active() {
		fmt.Printf("injected faults: %s\n", fault)
	}
	fmt.Print(out.Report.String())
	if *counters {
		fmt.Println("\nhardware counters:")
		fmt.Print(out.Sys.Ctr.String())
	}
}
