// Command hetsim runs benchmarks on one simulated system configuration
// and prints the full analysis report — the smallest way to poke at the
// simulator.
//
// Usage:
//
//	hetsim -bench rodinia/kmeans[,parboil/spmv,...] [-mode copy|limited-copy|async-streams|parallel-chunked]
//	       [-size small|medium] [-jobs N] [-par N] [-timeout 60s] [-max-events N] [-stall 30s]
//	       [-state DIR] [-resume]
//	       [-inject PLAN] [-json FILE] [-counters]
//	       [-trace FILE] [-flame] [-progress]
//	hetsim -list
//
// -bench takes a comma-separated list; the runs execute on -jobs workers
// (default GOMAXPROCS), -par additionally parallelizes each run internally
// (byte-identical output for every value), and the reports print in the
// order listed. Runs
// execute under the fault-tolerant harness: a panic, deadlock, or exceeded
// -timeout/-max-events budget terminates with a diagnostic instead of
// crashing or hanging, and a budget-exceeded medium run is retried once at
// small. -inject degrades the simulated hardware, e.g.
// -inject pcie=0.25,fault=8,dram=0:100:600. -json exports every outcome
// (report, attempts, errors) as a JSON array.
//
// -trace records every run into a Chrome trace-event / Perfetto JSON file
// (one process per run; open it at https://ui.perfetto.dev). -flame prints
// a text flame summary of the trace to stderr. -progress emits live
// per-run start/retry/done lines on stderr; reports on stdout stay
// byte-identical with it on or off.
//
// -state DIR checkpoints every completed run into DIR/hetsim.journal;
// -resume replays the journal and re-runs only the missing benchmarks,
// printing the same reports an uninterrupted invocation would. The
// journal is fingerprinted by the run configuration and rejected when it
// does not match. SIGINT/SIGTERM drain in-flight runs on the first
// signal, abort them on the second; an interrupted invocation exits 130.
// -stall kills a run whose simulated clock freezes for the given window
// while events still execute. Replayed runs carry no live machine, so
// -counters prints a note for them instead of the counter dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/sweep"
	"repro/internal/trace"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	name := flag.String("bench", "", "benchmark full name (suite/name), or a comma-separated list")
	modeFlag := flag.String("mode", "copy", "copy, limited-copy, async-streams, or parallel-chunked")
	sizeFlag := flag.String("size", "small", "small or medium")
	jobs := flag.Int("jobs", 0, "worker-pool size when running several benchmarks (0 = GOMAXPROCS)")
	par := flag.Int("par", 0, "intra-run simulation workers per run (0/1 = serial; results byte-identical for every value)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per run (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "simulation event budget per run (0 = unlimited)")
	stall := flag.Duration("stall", 0, "kill a run whose simulated time stops advancing for this long (0 = disabled)")
	stateDir := flag.String("state", "", "checkpoint completed runs into DIR/hetsim.journal for crash-safe resume")
	resume := flag.Bool("resume", false, "replay DIR/hetsim.journal (requires -state) and run only the missing benchmarks")
	inject := flag.String("inject", "", "hardware fault plan, e.g. pcie=0.25,fault=8,dram=0:100:600")
	jsonPath := flag.String("json", "", "export every run's outcome as a JSON array to this file")
	counters := flag.Bool("counters", false, "also dump every hardware counter")
	tracePath := flag.String("trace", "", "record a Chrome trace-event / Perfetto JSON trace to this file")
	flame := flag.Bool("flame", false, "print a text flame summary of the trace to stderr (implies tracing)")
	progress := flag.Bool("progress", false, "emit live per-run progress lines on stderr")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		fmt.Printf("%-26s %-42s %s\n", "NAME", "MODES", "DESCRIPTION")
		for _, b := range bench.All() {
			info := b.Info()
			modes := ""
			for i, m := range info.Modes() {
				if i > 0 {
					modes += ","
				}
				modes += m.String()
			}
			fmt.Printf("%-26s %-42s %s\n", info.FullName(), modes, info.Desc)
		}
		return
	}

	mode, err := bench.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	size := bench.SizeSmall
	if *sizeFlag == "medium" {
		size = bench.SizeMedium
	}
	fault, err := harness.ParseFaultPlan(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-inject: %v\n", err)
		os.Exit(2)
	}

	var benches []bench.Benchmark
	for _, n := range strings.Split(*name, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		b, ok := bench.Get(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", n)
			fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
			os.Exit(1)
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark given; use -bench NAME[,NAME...] or -list")
		os.Exit(2)
	}

	tracing := *tracePath != "" || *flame
	var recs []*trace.Recorder
	if tracing {
		recs = make([]*trace.Recorder, len(benches))
		for i := range recs {
			recs[i] = trace.New()
		}
	}
	var prog *sweep.Tracker
	if *progress {
		prog = sweep.NewTracker(os.Stderr, len(benches))
	}

	// The checkpoint journal, when -state is given: completed runs append
	// durably, and -resume replays them instead of re-running.
	var state *harness.RunLog
	if *resume && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -state DIR")
		os.Exit(2)
	}
	if *stateDir != "" {
		slots := make([]string, len(benches))
		for i, b := range benches {
			slots[i] = b.Info().FullName() + "|" + mode.String()
		}
		fp := fingerprint(benches, mode, size, fault,
			harness.Budget{MaxEvents: *maxEvents, Timeout: *timeout}, *stall, tracing)
		path := filepath.Join(*stateDir, "hetsim.journal")
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "-state: %v\n", err)
			os.Exit(2)
		}
		var err error
		if *resume {
			state, err = harness.OpenRunLog(path, "hetsim", fp, slots)
		} else {
			state, err = harness.CreateRunLog(path, "hetsim", fp, slots)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint journal: %v\n", err)
			os.Exit(2)
		}
		if state.Resumed() {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d runs already journaled\n",
				state.Path(), state.ReplayedCount())
		}
	}
	dispatchCtx, runCtx, stopSignals := sweep.SignalContexts(nil, os.Stderr)

	// Run every benchmark on the worker pool; print in the order listed.
	// Journaled runs are filled before dispatch and skipped by the pool.
	outs := make([]*harness.Outcome, len(benches))
	for i, b := range benches {
		if out := state.Replayed(b.Info().FullName() + "|" + mode.String()); out != nil {
			outs[i] = out
			prog.Replay(b.Info().FullName() + " " + mode.String())
		}
	}
	sweep.Each(dispatchCtx, *jobs, len(benches), func(i int) {
		if outs[i] != nil {
			return // replayed from the journal
		}
		runName := benches[i].Info().FullName() + " " + mode.String()
		prog.Start(runName)
		spec := harness.Spec{
			Bench: benches[i], Mode: mode, Size: size,
			Budget:   harness.Budget{MaxEvents: *maxEvents, Timeout: time.Duration(*timeout)},
			Fault:    fault,
			Ctx:      runCtx,
			Stall:    *stall,
			Parallel: *par,
		}
		if tracing {
			spec.Trace = recs[i]
		}
		if prog != nil {
			spec.OnRetry = func(next bench.Size, err *harness.RunError) {
				prog.Retry(runName, fmt.Sprintf("at %s after %s", next, err.Kind))
			}
		}
		outs[i] = harness.Run(spec)
		state.Append(benches[i].Info().FullName()+"|"+mode.String(), outs[i])
		if out := outs[i]; out.Err != nil {
			prog.Finish(runName, false, out.Err.Kind.String()+": "+out.Err.Msg)
		} else {
			prog.Finish(runName, true, fmt.Sprintf("%.3f ms sim, %d events", out.SimTime.Millis(), out.Events))
		}
	})
	prog.Summary()
	// Read the interrupt state before stopSignals, which cancels both
	// contexts as part of releasing the handler.
	interrupted := dispatchCtx.Err() != nil
	stopSignals()
	if err := state.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: checkpoint journaling failed mid-run: %v\n", err)
	}
	state.Close()

	if tracing {
		var runs []trace.RunTrace
		for i, b := range benches {
			if outs[i] == nil {
				continue // never dispatched (interrupted before start)
			}
			runs = append(runs, trace.RunTrace{
				Name: b.Info().FullName() + " " + mode.String() + " " + outs[i].Size.String(),
				Rec:  recs[i],
			})
		}
		if *tracePath != "" {
			if err := trace.WriteFile(*tracePath, runs); err != nil {
				fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
				os.Exit(1)
			}
		}
		if *flame {
			fmt.Fprint(os.Stderr, trace.FlameText(runs))
		}
	}

	if *jsonPath != "" {
		var docs []harness.OutcomeJSON
		for _, out := range outs {
			if out == nil {
				continue // never dispatched (interrupted before start)
			}
			docs = append(docs, out.JSON())
		}
		data, err := json.MarshalIndent(docs, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "json export failed: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	skipped := 0
	for i, out := range outs {
		if out == nil {
			skipped++
			fmt.Fprintf(os.Stderr, "skipped (interrupted before start): %s\n", benches[i].Info().FullName())
			continue
		}
		if out.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "run failed: %v\n", out.Err)
			if len(out.Err.Stack) > 0 {
				fmt.Fprintf(os.Stderr, "%s\n", out.Err.Stack)
			}
			continue
		}
		if out.Degraded {
			fmt.Fprintf(os.Stderr, "note: ran at size %s after exceeding the budget at %s (%d attempts)\n",
				out.Size, size, out.Attempts)
		}
		if fault.Active() {
			fmt.Printf("injected faults: %s\n", fault)
		}
		fmt.Print(out.Report.String())
		if *counters {
			fmt.Println("\nhardware counters:")
			if out.Sys == nil {
				fmt.Println("(replayed from journal; live counters not recorded)")
			} else {
				fmt.Print(out.Sys.Ctr.String())
			}
		}
	}
	if interrupted || skipped > 0 {
		if *stateDir != "" {
			fmt.Fprintf(os.Stderr, "resume with: -state %s -resume\n", *stateDir)
		}
		os.Exit(130)
	}
	if failed {
		os.Exit(1)
	}
}

// fingerprint hashes everything that determines this invocation's
// results — the simulated system configurations, size, mode, benchmark
// list, fault plan, budgets, stall window, and tracing — so a journal is
// only resumed under the identical configuration. The worker count is
// excluded, as is the intra-run worker count: results are identical for
// every -jobs and -par value.
func fingerprint(benches []bench.Benchmark, mode bench.Mode, size bench.Size,
	fault *harness.FaultPlan, budget harness.Budget, stall time.Duration, tracing bool) string {
	var fp journal.Fingerprint
	fp.Add("version", strconv.Itoa(journal.Version))
	fp.Add("discrete", fmt.Sprintf("%+v", config.DiscreteGPU()))
	fp.Add("hetero", fmt.Sprintf("%+v", config.HeteroProcessor()))
	fp.Add("size", size.String())
	fp.Add("mode", mode.String())
	for _, b := range benches {
		fp.Add("bench", b.Info().FullName())
	}
	fp.Add("fault", fault.String())
	fp.Add("max_events", strconv.FormatUint(budget.MaxEvents, 10))
	fp.Add("timeout", budget.Timeout.String())
	fp.Add("stall", stall.String())
	fp.Add("trace", strconv.FormatBool(tracing))
	return fp.Sum()
}
