// Command hetsim runs one benchmark on one simulated system configuration
// and prints the full analysis report — the smallest way to poke at the
// simulator.
//
// Usage:
//
//	hetsim -bench rodinia/kmeans [-mode copy|limited-copy|async-streams|parallel-chunked] [-size small|medium] [-counters]
//	hetsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	name := flag.String("bench", "", "benchmark full name (suite/name)")
	modeFlag := flag.String("mode", "copy", "copy, limited-copy, async-streams, or parallel-chunked")
	sizeFlag := flag.String("size", "small", "small or medium")
	counters := flag.Bool("counters", false, "also dump every hardware counter")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		fmt.Printf("%-26s %-10s %s\n", "NAME", "EXTRA", "DESCRIPTION")
		for _, b := range bench.All() {
			info := b.Info()
			extra := ""
			for i, m := range info.ExtraModes {
				if i > 0 {
					extra += ","
				}
				extra += m.String()
			}
			fmt.Printf("%-26s %-10s %s\n", info.FullName(), extra, info.Desc)
		}
		return
	}

	var mode bench.Mode
	switch *modeFlag {
	case "copy":
		mode = bench.ModeCopy
	case "limited-copy":
		mode = bench.ModeLimitedCopy
	case "async-streams":
		mode = bench.ModeAsyncStreams
	case "parallel-chunked":
		mode = bench.ModeParallelChunked
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}
	size := bench.SizeSmall
	if *sizeFlag == "medium" {
		size = bench.SizeMedium
	}

	b, ok := bench.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *name)
		fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
		os.Exit(1)
	}
	if !b.Info().Supports(mode) {
		fmt.Fprintf(os.Stderr, "%s does not support mode %s\n", *name, mode)
		os.Exit(1)
	}
	sys := bench.SystemFor(mode)
	rep := bench.ExecuteOnSystem(b, sys, mode, size)
	fmt.Print(rep.String())
	if *counters {
		fmt.Println("\nhardware counters:")
		fmt.Print(sys.Ctr.String())
	}
}
