package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// sweepBody is the request the integration test drives: enough runs that
// SIGTERM lands mid-sweep on any machine, small enough to stay quick.
const sweepBody = `{"size": "small", "benchmarks": ["rodinia/backprop", "rodinia/bfs", "rodinia/kmeans", "rodinia/hotspot", "rodinia/srad", "rodinia/pathfinder"]}`

// buildBinary compiles hetsimd into dir and returns the binary path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "hetsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running hetsimd subprocess.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *bytes.Buffer
}

// startDaemon launches the binary on a free port and waits for its
// listening announcement.
func startDaemon(t *testing.T, bin, stateDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state", stateDir)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.WriteString(line + "\n")
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(addr):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never announced its port; stderr:\n%s", d.stderr)
	}
	return d
}

// stop sends SIGTERM and waits, returning the exit code.
func (d *daemon) stop(t *testing.T) int {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	return d.wait(t)
}

func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("daemon wait: %v", err)
	return -1
}

// postSweep submits the test sweep and returns status, headers, body.
func postSweep(t *testing.T, base string) (*http.Response, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Post(base+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read sweep response: %v", err)
	}
	return resp, body
}

// TestDrainResumeAndCache is the daemon's end-to-end acceptance test:
// SIGTERM mid-sweep must drain cleanly (exit 0) after checkpointing and
// answering the in-flight request with the draining error; a restarted
// daemon on the same state dir must resume the journal and produce a
// response byte-identical to an uninterrupted daemon's; and a repeat of
// that request must be a pure cache hit with the same bytes.
func TestDrainResumeAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)

	// Reference: an uninterrupted daemon's response.
	ref := startDaemon(t, bin, filepath.Join(dir, "stateA"))
	refResp, refBody := postSweep(t, ref.base)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep = %d; body: %s", refResp.StatusCode, refBody)
	}
	if code := ref.stop(t); code != 0 {
		t.Fatalf("idle daemon drain exit = %d, want 0; stderr:\n%s", code, ref.stderr)
	}

	// Interrupted daemon: SIGTERM once the journal holds two completed
	// runs (header + 2 records = 3 lines).
	stateB := filepath.Join(dir, "stateB")
	d := startDaemon(t, bin, stateB)
	type result struct {
		resp *http.Response
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, body := postSweep(t, d.base)
		inflight <- result{resp, body}
	}()
	journalGlob := filepath.Join(stateB, "journals", "*.journal")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatalf("journal never reached 2 records; stderr:\n%s", d.stderr)
		}
		if paths, _ := filepath.Glob(journalGlob); len(paths) == 1 {
			if data, err := os.ReadFile(paths[0]); err == nil && bytes.Count(data, []byte("\n")) >= 3 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	res := <-inflight
	if res.resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("interrupted sweep = %d, want 503; body: %s", res.resp.StatusCode, res.body)
	}
	if !bytes.Contains(res.body, []byte("resubmit")) {
		t.Fatalf("interrupted sweep does not advertise resume: %s", res.body)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain exit = %d, want 0; stderr:\n%s", code, d.stderr)
	}
	if paths, _ := filepath.Glob(journalGlob); len(paths) != 1 {
		t.Fatalf("checkpoint journal did not survive the drain: %v", paths)
	}

	// Restarted daemon: resume the journal, finish, match the reference.
	d2 := startDaemon(t, bin, stateB)
	resp2, body2 := postSweep(t, d2.base)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resumed sweep = %d; body: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Hetsimd-Cache"); got != "miss" {
		t.Fatalf("resumed sweep X-Hetsimd-Cache = %q, want miss", got)
	}
	if got := resp2.Header.Get("X-Hetsimd-Resumed"); got == "" || got == "0" {
		t.Fatalf("resumed sweep X-Hetsimd-Resumed = %q, want > 0", got)
	}
	if !bytes.Equal(body2, refBody) {
		t.Fatal("resumed response differs from the uninterrupted daemon's")
	}

	// Repeat: a pure cache hit, byte-identical, journal gone.
	resp3, body3 := postSweep(t, d2.base)
	if got := resp3.Header.Get("X-Hetsimd-Cache"); got != "hit" {
		t.Fatalf("repeat sweep X-Hetsimd-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body3, refBody) {
		t.Fatal("cached response differs from the uninterrupted daemon's")
	}
	if paths, _ := filepath.Glob(journalGlob); len(paths) != 0 {
		t.Fatalf("journal not retired after completion: %v", paths)
	}
	if code := d2.stop(t); code != 0 {
		t.Fatalf("final drain exit = %d, want 0; stderr:\n%s", code, d2.stderr)
	}
}

// TestParseBytes covers the -state-quota size grammar: bare integers,
// binary-multiple suffixes in either case with optional B/iB, and the
// empty string meaning unlimited.
func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"8K", 8 << 10, true},
		{"512M", 512 << 20, true},
		{"512MB", 512 << 20, true},
		{"512MiB", 512 << 20, true},
		{"2g", 2 << 30, true},
		{"1T", 1 << 40, true},
		{"-1", 0, false},
		{"12Q", 0, false},
		{"M", 0, false},
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("parseBytes(%q) = (%d, %v), want (%d, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}
