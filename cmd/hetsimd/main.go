// Command hetsimd serves the simulator as a daemon: POST /v1/sweep and
// POST /v1/run accept JSON experiment requests, execute them on a bounded
// simulation pool, and return the same SweepDoc/OutcomeJSON documents the
// CLI commands export. One warm process amortizes engine setup across
// many requests and memoizes completed results in a verified on-disk
// cache; interrupted sweeps checkpoint into journals under -state and
// resume on resubmission, across restarts.
//
// GET /metrics exposes operational counters, gauges, and latency
// histograms in Prometheus text format; every request is logged as one
// structured line (-log-format text|json, -log-level) carrying the
// request's correlation ID (the X-Request-Id header, echoed if the
// client sent one, generated otherwise), which also appears in sweep
// progress events, journal filenames, and harness trace spans.
//
// Shutdown mirrors the CLI sweeps' two-stage signal discipline: the first
// SIGINT/SIGTERM stops admitting requests and stops dispatching new runs
// inside in-flight sweeps (what completed is checkpointed and clients are
// told to resubmit); a second signal aborts in-flight runs too; a third
// restores default handling (kills the process). A clean drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	os.Exit(run())
}

// parseBytes parses a human-friendly byte size: a plain integer, or one
// with a K/M/G/T suffix (binary multiples, case-insensitive, optional
// trailing B or iB). Empty means no limit (0).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	upper = strings.TrimSuffix(upper, "IB")
	upper = strings.TrimSuffix(upper, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	case strings.HasSuffix(upper, "T"):
		mult, upper = 1<<40, strings.TrimSuffix(upper, "T")
	}
	n, err := strconv.ParseInt(upper, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 1048576, 512M, 2G)", s)
	}
	return n * mult, nil
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		state        = flag.String("state", "", "state directory for journals and the result cache (required)")
		stateQuota   = flag.String("state-quota", "", "byte budget for the state dir, e.g. 512M or 2G (LRU cache entries evicted when over; empty = unlimited)")
		gcInterval   = flag.Duration("gc-interval", time.Minute, "period of the state-dir GC (orphaned temps, aged quarantines, subsumed journals, quota); <0 disables")
		corruptAge   = flag.Duration("gc-corrupt-age", 24*time.Hour, "how long quarantined *.corrupt files are kept before GC reclaims them")
		streamWrite  = flag.Duration("stream-write-timeout", time.Minute, "per-write deadline on streamed (?stream=) responses; a reader stalled longer is dropped; <0 disables")
		pool         = flag.Int("pool", 0, "max concurrently executing simulations across all requests (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "max requests waiting for pool slots before 429s")
		retryAfter   = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for in-flight requests after the first signal")
		quiet        = flag.Bool("q", false, "suppress operational logging")
		logLevel     = flag.String("log-level", "info", "structured access-log level: debug, info, warn, or error")
		logFormat    = flag.String("log-format", "text", "structured access-log format: text or json")
	)
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "hetsimd: -state is required")
		flag.Usage()
		return 2
	}
	quota, err := parseBytes(*stateQuota)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetsimd: -state-quota: %v\n", err)
		return 2
	}

	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "hetsimd: -log-level: unknown level %q\n", *logLevel)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fmt.Fprintf(os.Stderr, "hetsimd: -log-format: unknown format %q\n", *logFormat)
		return 2
	}
	accessLog := slog.New(handler)

	logw := io.Writer(os.Stderr)
	if *quiet {
		logw = io.Discard
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(logw, "hetsimd: "+format+"\n", args...)
	}

	drainCtx, hardCtx, stopSignals := sweep.SignalContexts(context.Background(), logw)
	defer stopSignals()

	srv, err := server.New(server.Config{
		StateDir:           *state,
		StateQuota:         quota,
		GCInterval:         *gcInterval,
		CorruptAge:         *corruptAge,
		StreamWriteTimeout: *streamWrite,
		Pool:               *pool,
		Queue:              *queue,
		RetryAfter:         *retryAfter,
		Drain:              drainCtx,
		Hard:               hardCtx,
		Logf:               logf,
		Log:                accessLog,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetsimd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetsimd: %v\n", err)
		return 1
	}
	// Always announced (even with -q): tests and scripts parse this line
	// to learn the bound port when -addr ends in :0.
	fmt.Fprintf(os.Stderr, "hetsimd listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "hetsimd: serve: %v\n", err)
		return 1
	case <-drainCtx.Done():
	}

	// First signal received: Server already rejects new work and stops
	// dispatching runs inside in-flight sweeps; Shutdown waits for those
	// handlers to checkpoint and respond. The drain timeout bounds a
	// pathological straggler (the second signal aborts runs sooner).
	logf("draining: waiting up to %s for in-flight requests", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logf("drain incomplete: %v", err)
		httpSrv.Close()
		return 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hetsimd: serve: %v\n", err)
		return 1
	}
	logf("drained cleanly")
	return 0
}
