// Command hetsimd serves the simulator as a daemon: POST /v1/sweep and
// POST /v1/run accept JSON experiment requests, execute them on a bounded
// simulation pool, and return the same SweepDoc/OutcomeJSON documents the
// CLI commands export. One warm process amortizes engine setup across
// many requests and memoizes completed results in a verified on-disk
// cache; interrupted sweeps checkpoint into journals under -state and
// resume on resubmission, across restarts.
//
// GET /metrics exposes operational counters, gauges, and latency
// histograms in Prometheus text format; every request is logged as one
// structured line (-log-format text|json, -log-level) carrying the
// request's correlation ID (the X-Request-Id header, echoed if the
// client sent one, generated otherwise), which also appears in sweep
// progress events, journal filenames, and harness trace spans.
//
// Shutdown mirrors the CLI sweeps' two-stage signal discipline: the first
// SIGINT/SIGTERM stops admitting requests and stops dispatching new runs
// inside in-flight sweeps (what completed is checkpointed and clients are
// told to resubmit); a second signal aborts in-flight runs too; a third
// restores default handling (kills the process). A clean drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		state        = flag.String("state", "", "state directory for journals and the result cache (required)")
		pool         = flag.Int("pool", 0, "max concurrently executing simulations across all requests (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "max requests waiting for pool slots before 429s")
		retryAfter   = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for in-flight requests after the first signal")
		quiet        = flag.Bool("q", false, "suppress operational logging")
		logLevel     = flag.String("log-level", "info", "structured access-log level: debug, info, warn, or error")
		logFormat    = flag.String("log-format", "text", "structured access-log format: text or json")
	)
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "hetsimd: -state is required")
		flag.Usage()
		return 2
	}

	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "hetsimd: -log-level: unknown level %q\n", *logLevel)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fmt.Fprintf(os.Stderr, "hetsimd: -log-format: unknown format %q\n", *logFormat)
		return 2
	}
	accessLog := slog.New(handler)

	logw := io.Writer(os.Stderr)
	if *quiet {
		logw = io.Discard
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(logw, "hetsimd: "+format+"\n", args...)
	}

	drainCtx, hardCtx, stopSignals := sweep.SignalContexts(context.Background(), logw)
	defer stopSignals()

	srv, err := server.New(server.Config{
		StateDir:   *state,
		Pool:       *pool,
		Queue:      *queue,
		RetryAfter: *retryAfter,
		Drain:      drainCtx,
		Hard:       hardCtx,
		Logf:       logf,
		Log:        accessLog,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetsimd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetsimd: %v\n", err)
		return 1
	}
	// Always announced (even with -q): tests and scripts parse this line
	// to learn the bound port when -addr ends in :0.
	fmt.Fprintf(os.Stderr, "hetsimd listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "hetsimd: serve: %v\n", err)
		return 1
	case <-drainCtx.Done():
	}

	// First signal received: Server already rejects new work and stops
	// dispatching runs inside in-flight sweeps; Shutdown waits for those
	// handlers to checkpoint and respond. The drain timeout bounds a
	// pathological straggler (the second signal aborts runs sooner).
	logf("draining: waiting up to %s for in-flight requests", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logf("drain incomplete: %v", err)
		httpSrv.Close()
		return 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hetsimd: serve: %v\n", err)
		return 1
	}
	logf("drained cleanly")
	return 0
}
