// Command benchdiff compares `go test -bench -benchmem` output against a
// committed baseline (BENCH_small.json) and fails on allocation regressions.
//
// Timing (ns/op) is machine-dependent, so it is reported for context but
// never gated. Allocation counts (allocs/op, B/op) are deterministic for a
// given binary, so any increase over the baseline is a hard failure — this
// is the hot-path-allocation ratchet: once a path reaches 0 allocs/op it
// cannot silently grow one back.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_small.json bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_small.json -update bench.txt
//
// With -update the baseline file is refreshed from the observed results
// instead of being compared (run this after an intentional change, on the
// reference machine, and commit the diff). The update merges: rows the
// input does not mention keep their committed values, so a partial bench
// run refreshes only its own rows; -prune drops the unmentioned rows
// instead. The note field is preserved unless -note replaces it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's measured cost per operation.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed reference file. Note holds provenance
// (machine class, how to refresh) for human readers.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCacheHit-8   	12345678	       95.2 ns/op	       0 B/op	       0 allocs/op
//	BenchmarkSweepSmall/jobs=1-8	       1	123456789 ns/op	 5678 B/op	  123 allocs/op
//
// Custom b.ReportMetric columns may sit between ns/op and B/op (BenchmarkFig3
// reports figure-level metrics), so the memory columns are matched anywhere
// after ns/op.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*\s([\d.]+) B/op\s+(\d+) allocs/op)?`)

// dupSuffix is Go's disambiguator for repeated sub-benchmark names
// (e.g. jobs=1 run twice on a single-core machine becomes jobs=1#01).
var dupSuffix = regexp.MustCompile(`#\d+$`)

func parseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := dupSuffix.ReplaceAllString(m[1], "")
		if _, dup := out[name]; dup {
			continue // keep the first of a duplicated sub-benchmark
		}
		var res Result
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			res.BytesPerOp = int64(b)
			res.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		} else {
			// No -benchmem columns: allocation gating is impossible.
			res.BytesPerOp, res.AllocsPerOp = -1, -1
		}
		out[name] = res
	}
	return out, sc.Err()
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ratio(now, was float64) string {
	if was == 0 {
		if now == 0 {
			return "="
		}
		return "new>0"
	}
	return fmt.Sprintf("%+.1f%%", (now/was-1)*100)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_small.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline from the observed results")
	note := flag.String("note", "", "with -update: provenance note stored in the baseline")
	prune := flag.Bool("prune", false, "with -update: drop baseline rows absent from the input instead of keeping them")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines found in input")
		os.Exit(2)
	}

	if *update {
		// Merge, don't replace: rows absent from this bench run keep
		// their committed values, so a partial run (one new benchmark,
		// one package) can refresh its rows without dropping the rest of
		// the ratchet. -prune rewrites from the observed set alone.
		observed := len(got)
		b := &Baseline{Note: *note, Benchmarks: got}
		if old, err := loadBaseline(*baselinePath); err == nil {
			if *note == "" {
				b.Note = old.Note
			}
			if !*prune {
				for name, res := range old.Benchmarks {
					if _, ok := got[name]; !ok {
						b.Benchmarks[name] = res
					}
				}
			}
		}
		if err := writeBaseline(*baselinePath, b); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s (%d from this run)\n",
			len(b.Benchmarks), *baselinePath, observed)
		return
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(got))
	for k := range got {
		names = append(names, k)
	}
	sort.Strings(names)

	fail := false
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-44s %14s %12s %14s %10s\n", "benchmark", "ns/op (info)", "ns Δ", "allocs/op", "gate")
	for _, name := range names {
		now := got[name]
		was, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14.1f %12s %14d %10s\n",
				name, now.NsPerOp, "-", now.AllocsPerOp, "NEW")
			continue
		}
		gate := "ok"
		if now.AllocsPerOp >= 0 && was.AllocsPerOp >= 0 {
			// Small counts gate exactly (the zero-alloc ratchet must never
			// slip); large counts (whole-sweep benchmarks) get 2% headroom
			// for runtime noise like map-growth timing.
			limit := was.AllocsPerOp
			if limit > 64 {
				limit += limit / 50
			}
			if now.AllocsPerOp > limit {
				gate = "FAIL allocs"
				fail = true
			} else if now.BytesPerOp > was.BytesPerOp && was.AllocsPerOp > 0 {
				// Same alloc count but bigger allocations: flag, don't fail —
				// object-size drift is usually an intentional capacity change.
				gate = "warn B/op"
			}
		} else {
			gate = "no -benchmem"
		}
		fmt.Fprintf(w, "%-44s %14.1f %12s %6d (was %3d) %10s\n",
			name, now.NsPerOp, ratio(now.NsPerOp, was.NsPerOp), now.AllocsPerOp, was.AllocsPerOp, gate)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			fmt.Fprintf(w, "%-44s %14s %12s %14s %10s\n", name, "-", "-", "-", "MISSING")
		}
	}
	w.Flush()

	if fail {
		fmt.Fprintln(os.Stderr, "benchdiff: allocation regression vs", *baselinePath)
		os.Exit(1)
	}
}
