// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|faults]
//	            [-size small|medium] [-only NAME[,NAME...]] [-jobs N] [-par N]
//	            [-timeout 60s] [-max-events N] [-stall 30s]
//	            [-state DIR] [-resume]
//	            [-inject PLAN] [-csv DIR] [-json FILE] [-q] [-metrics]
//	            [-trace FILE] [-flame] [-progress]
//	            [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// Figures 4-10 come from one shared sweep of every benchmark in copy and
// limited-copy mode (plus each benchmark's restructured organizations);
// Figure 3 additionally runs the kmeans restructured organizations, and
// Figure 10 compares every measured overlapped organization against the
// Eq. 1 Rco bound from its baseline run. The sweep's runs execute on
// -jobs workers (default GOMAXPROCS), and -par additionally parallelizes
// each run internally (trace generation pipelined against the timing
// model); output is byte-identical for every -jobs and -par value.
// Sweeps are fault-tolerant: a run that panics, deadlocks, or exceeds its
// -timeout/-max-events budget is recorded and footnoted in the figures
// instead of aborting the sweep. -inject degrades the simulated hardware
// for every run (see -exp faults for the curated degradation matrix).
// -csv and -json export the sweep's rows for external tooling.
//
// -trace records the shared sweep into a Chrome trace-event / Perfetto
// JSON file (one process per run; open it at https://ui.perfetto.dev).
// -flame prints a text flame summary of the trace to stderr. -progress
// emits live per-run start/retry/done lines on stderr; figures on stdout
// stay byte-identical with it on or off.
//
// -state DIR makes the shared sweep crash-safe: every completed run is
// appended durably to DIR/sweep.journal, and -resume replays that journal
// — re-running only the missing runs — to produce output byte-identical
// to an uninterrupted sweep. The journal is fingerprinted by the sweep
// configuration; resuming under a different configuration is rejected.
// SIGINT/SIGTERM shut down gracefully: the first signal stops dispatching
// new runs, drains (and journals) the in-flight ones, and writes a
// partial report; a second signal aborts the in-flight runs too; a third
// restores default signal behavior. An interrupted sweep exits 130.
// -stall kills any run whose simulated clock stops advancing for the
// given wall-clock window while events still execute (a livelock) and
// footnotes it like any other failed run.
//
// -cpuprofile/-memprofile write pprof profiles of the command itself
// (the simulator host process, not the simulated machine); -pprof serves
// net/http/pprof on the given address (e.g. localhost:6060) for live
// inspection of a long sweep.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/trace"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanup (profile flushes) survives
// error exits; main turns its return into the process exit code.
func run() int {
	exp := flag.String("exp", "all", "which experiment: all, table1, table2, fig3..fig10, ablation, faults (comma-separated)")
	sizeFlag := flag.String("size", "small", "input scale: small or medium")
	csvDir := flag.String("csv", "", "also export the sweep as CSV files into this directory")
	jsonPath := flag.String("json", "", "also export the sweep's rows and summaries as JSON to this file")
	jobs := flag.Int("jobs", 0, "worker-pool size for sweep runs (0 = GOMAXPROCS, 1 = serial)")
	par := flag.Int("par", 0, "intra-run simulation workers per run (0/1 = serial; results byte-identical for every value)")
	only := flag.String("only", "", "restrict the shared sweep to these full benchmark names (comma-separated)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per run (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "simulation event budget per run (0 = unlimited)")
	stall := flag.Duration("stall", 0, "kill a run whose simulated time stops advancing for this long (0 = disabled)")
	stateDir := flag.String("state", "", "checkpoint the shared sweep into DIR/sweep.journal for crash-safe resume")
	resume := flag.Bool("resume", false, "replay DIR/sweep.journal (requires -state) and run only the missing runs")
	inject := flag.String("inject", "", "hardware fault plan for every run, e.g. pcie=0.25,fault=8,dram=0:100:600")
	quiet := flag.Bool("q", false, "suppress progress output")
	metricsDump := flag.Bool("metrics", false, "print run-lifecycle metrics (Prometheus text format) to stderr at exit")
	tracePath := flag.String("trace", "", "record the shared sweep as a Chrome trace-event / Perfetto JSON trace to this file")
	flame := flag.Bool("flame", false, "print a text flame summary of the sweep trace to stderr (implies tracing)")
	progress := flag.Bool("progress", false, "emit live per-run progress lines on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the command to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *metricsDump {
		// Deferred first so it runs after the profile flushes; stdout
		// (figures) stays byte-identical with the flag on or off.
		defer metrics.Default.WriteText(os.Stderr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}()
	}
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers its handlers on DefaultServeMux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "-pprof: %v\n", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
		}
	}

	size := bench.SizeSmall
	switch *sizeFlag {
	case "small":
	case "medium":
		size = bench.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeFlag)
		return 2
	}
	budget := harness.Budget{MaxEvents: *maxEvents, Timeout: *timeout}
	fault, err := harness.ParseFaultPlan(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-inject: %v\n", err)
		return 2
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("table1") {
		fmt.Println(experiments.Table1())
	}
	if sel("table2") {
		fmt.Println(experiments.Table2Text())
	}
	if sel("ablation") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running ablation sweeps...")
		}
		fmt.Println(experiments.AblationText(size))
	}
	if sel("faults") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running fault-injection sweep (baseline + injected per case)...")
		}
		fmt.Println(experiments.FaultSweepText(experiments.FaultSweep(size, budget)))
	}
	if sel("fig3") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running kmeans case study (4 organizations)...")
		}
		rows, errs := experiments.Fig3(size, budget)
		fmt.Println(experiments.Fig3Text(rows, errs))
	}

	needSweep := false
	for _, f := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if sel(f) {
			needSweep = true
		}
	}
	if !needSweep {
		return 0
	}
	opts := experiments.SweepOpts{
		Budget:   budget,
		Fault:    fault,
		Jobs:     *jobs,
		Parallel: *par,
		Stall:    *stall,
		Trace:    *tracePath != "" || *flame,
		OnProgress: func(name, mode string) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "running %s (%s)...\n", name, mode)
			}
		},
	}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				opts.Only = append(opts.Only, n)
			}
		}
	}
	if *progress {
		opts.Progress = sweep.NewTracker(os.Stderr, 0)
	}
	if *resume && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -state DIR")
		return 2
	}
	if *stateDir != "" {
		state, err := experiments.OpenState(*stateDir, *resume, size, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint journal: %v\n", err)
			return 2
		}
		defer state.Close()
		opts.State = state
		if state.Resumed() {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d runs already journaled\n",
				state.Path(), state.ReplayedCount())
		}
	}
	dispatchCtx, runCtx, stopSignals := sweep.SignalContexts(nil, os.Stderr)
	opts.Ctx, opts.RunCtx = dispatchCtx, runCtx
	res, errs := experiments.RunSweep(size, opts)
	// Read the interrupt state before stopSignals, which cancels both
	// contexts as part of releasing the handler.
	interrupted := dispatchCtx.Err() != nil
	stopSignals()
	for i := range errs {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", &errs[i])
	}
	if err := opts.State.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: checkpoint journaling failed mid-sweep: %v\n", err)
		fmt.Fprintln(os.Stderr, "warning: the sweep continued without persistence (degraded); results below are complete but an interrupted re-run cannot resume past this point")
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "sweep interrupted: %d of %d runs completed; output below is a partial report\n",
			len(res.Runs), len(res.Runs)+len(res.Skipped))
		if *stateDir != "" {
			fmt.Fprintf(os.Stderr, "resume with: -state %s -resume\n", *stateDir)
		}
	}
	if *tracePath != "" {
		if err := trace.WriteFile(*tracePath, res.Traces); err != nil {
			fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *tracePath)
		}
	}
	if *flame {
		fmt.Fprint(os.Stderr, trace.FlameText(res.Traces))
	}
	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "csv export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote CSVs to %s\n", *csvDir)
		}
	}
	if *jsonPath != "" {
		if err := experiments.WriteJSON(*jsonPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "json export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote JSON to %s\n", *jsonPath)
		}
	}
	if sel("fig4") {
		fmt.Println(experiments.Fig4Text(res))
	}
	if sel("fig5") {
		fmt.Println(experiments.Fig5Text(res))
	}
	if sel("fig6") {
		fmt.Println(experiments.Fig6Text(res))
	}
	if sel("fig7") {
		fmt.Println(experiments.Fig7Text(res))
	}
	if sel("fig8") {
		fmt.Println(experiments.Fig8Text(res))
	}
	if sel("fig9") {
		fmt.Println(experiments.Fig9Text(res))
	}
	if sel("fig10") {
		fmt.Println(experiments.Fig10Text(res))
	}
	if interrupted {
		// 128 + SIGINT, the conventional interrupted-process exit code;
		// scripts (and the resume test) distinguish it from run failures.
		return 130
	}
	return 0
}
