// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9] [-size small|medium] [-q]
//
// Figures 4-9 come from one shared sweep of every benchmark in copy and
// limited-copy mode; Figure 3 additionally runs the kmeans restructured
// organizations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	exp := flag.String("exp", "all", "which experiment: all, table1, table2, fig3..fig9, ablation (comma-separated)")
	sizeFlag := flag.String("size", "small", "input scale: small or medium")
	csvDir := flag.String("csv", "", "also export the sweep as CSV files into this directory")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	size := bench.SizeSmall
	switch *sizeFlag {
	case "small":
	case "medium":
		size = bench.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("table1") {
		fmt.Println(experiments.Table1())
	}
	if sel("table2") {
		fmt.Println(experiments.Table2Text())
	}
	if sel("ablation") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running ablation sweeps...")
		}
		fmt.Println(experiments.AblationText(size))
	}
	if sel("fig3") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running kmeans case study (4 organizations)...")
		}
		fmt.Println(experiments.Fig3Text(experiments.Fig3(size)))
	}

	needSweep := false
	for _, f := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if sel(f) {
			needSweep = true
		}
	}
	if !needSweep {
		return
	}
	progress := func(name, mode string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s (%s)...\n", name, mode)
		}
	}
	res := experiments.Run(size, progress)
	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "csv export failed: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote CSVs to %s\n", *csvDir)
		}
	}
	if sel("fig4") {
		fmt.Println(experiments.Fig4Text(res))
	}
	if sel("fig5") {
		fmt.Println(experiments.Fig5Text(res))
	}
	if sel("fig6") {
		fmt.Println(experiments.Fig6Text(res))
	}
	if sel("fig7") {
		fmt.Println(experiments.Fig7Text(res))
	}
	if sel("fig8") {
		fmt.Println(experiments.Fig8Text(res))
	}
	if sel("fig9") {
		fmt.Println(experiments.Fig9Text(res))
	}
}
