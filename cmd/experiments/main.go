// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablation|faults]
//	            [-size small|medium] [-jobs N] [-timeout 60s] [-max-events N]
//	            [-inject PLAN] [-csv DIR] [-json FILE] [-q]
//	            [-trace FILE] [-flame] [-progress]
//	            [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// Figures 4-9 come from one shared sweep of every benchmark in copy and
// limited-copy mode; Figure 3 additionally runs the kmeans restructured
// organizations. The sweep's runs execute on -jobs workers (default
// GOMAXPROCS) and produce byte-identical output for every worker count.
// Sweeps are fault-tolerant: a run that panics, deadlocks, or exceeds its
// -timeout/-max-events budget is recorded and footnoted in the figures
// instead of aborting the sweep. -inject degrades the simulated hardware
// for every run (see -exp faults for the curated degradation matrix).
// -csv and -json export the sweep's rows for external tooling.
//
// -trace records the shared sweep into a Chrome trace-event / Perfetto
// JSON file (one process per run; open it at https://ui.perfetto.dev).
// -flame prints a text flame summary of the trace to stderr. -progress
// emits live per-run start/retry/done lines on stderr; figures on stdout
// stay byte-identical with it on or off.
//
// -cpuprofile/-memprofile write pprof profiles of the command itself
// (the simulator host process, not the simulated machine); -pprof serves
// net/http/pprof on the given address (e.g. localhost:6060) for live
// inspection of a long sweep.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/sweep"
	"repro/internal/trace"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanup (profile flushes) survives
// error exits; main turns its return into the process exit code.
func run() int {
	exp := flag.String("exp", "all", "which experiment: all, table1, table2, fig3..fig9, ablation, faults (comma-separated)")
	sizeFlag := flag.String("size", "small", "input scale: small or medium")
	csvDir := flag.String("csv", "", "also export the sweep as CSV files into this directory")
	jsonPath := flag.String("json", "", "also export the sweep's rows and summaries as JSON to this file")
	jobs := flag.Int("jobs", 0, "worker-pool size for sweep runs (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per run (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "simulation event budget per run (0 = unlimited)")
	inject := flag.String("inject", "", "hardware fault plan for every run, e.g. pcie=0.25,fault=8,dram=0:100:600")
	quiet := flag.Bool("q", false, "suppress progress output")
	tracePath := flag.String("trace", "", "record the shared sweep as a Chrome trace-event / Perfetto JSON trace to this file")
	flame := flag.Bool("flame", false, "print a text flame summary of the sweep trace to stderr (implies tracing)")
	progress := flag.Bool("progress", false, "emit live per-run progress lines on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile of the command to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}()
	}
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers its handlers on DefaultServeMux.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "-pprof: %v\n", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
		}
	}

	size := bench.SizeSmall
	switch *sizeFlag {
	case "small":
	case "medium":
		size = bench.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeFlag)
		return 2
	}
	budget := harness.Budget{MaxEvents: *maxEvents, Timeout: *timeout}
	fault, err := harness.ParseFaultPlan(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-inject: %v\n", err)
		return 2
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("table1") {
		fmt.Println(experiments.Table1())
	}
	if sel("table2") {
		fmt.Println(experiments.Table2Text())
	}
	if sel("ablation") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running ablation sweeps...")
		}
		fmt.Println(experiments.AblationText(size))
	}
	if sel("faults") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running fault-injection sweep (baseline + injected per case)...")
		}
		fmt.Println(experiments.FaultSweepText(experiments.FaultSweep(size, budget)))
	}
	if sel("fig3") {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running kmeans case study (4 organizations)...")
		}
		rows, errs := experiments.Fig3(size, budget)
		fmt.Println(experiments.Fig3Text(rows, errs))
	}

	needSweep := false
	for _, f := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if sel(f) {
			needSweep = true
		}
	}
	if !needSweep {
		return 0
	}
	opts := experiments.SweepOpts{
		Budget: budget,
		Fault:  fault,
		Jobs:   *jobs,
		Trace:  *tracePath != "" || *flame,
		OnProgress: func(name, mode string) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "running %s (%s)...\n", name, mode)
			}
		},
	}
	if *progress {
		opts.Progress = sweep.NewTracker(os.Stderr, 0)
	}
	res, errs := experiments.RunSweep(size, opts)
	for i := range errs {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", &errs[i])
	}
	if *tracePath != "" {
		if err := trace.WriteFile(*tracePath, res.Traces); err != nil {
			fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *tracePath)
		}
	}
	if *flame {
		fmt.Fprint(os.Stderr, trace.FlameText(res.Traces))
	}
	if *csvDir != "" {
		if err := experiments.WriteCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "csv export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote CSVs to %s\n", *csvDir)
		}
	}
	if *jsonPath != "" {
		if err := experiments.WriteJSON(*jsonPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "json export failed: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote JSON to %s\n", *jsonPath)
		}
	}
	if sel("fig4") {
		fmt.Println(experiments.Fig4Text(res))
	}
	if sel("fig5") {
		fmt.Println(experiments.Fig5Text(res))
	}
	if sel("fig6") {
		fmt.Println(experiments.Fig6Text(res))
	}
	if sel("fig7") {
		fmt.Println(experiments.Fig7Text(res))
	}
	if sel("fig8") {
		fmt.Println(experiments.Fig8Text(res))
	}
	if sel("fig9") {
		fmt.Println(experiments.Fig9Text(res))
	}
	return 0
}
