package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// sweepArgs is the restricted sweep the integration test runs: a handful
// of benchmarks, serial, figures only — big enough that SIGINT lands
// mid-sweep, small enough to keep the test quick.
var sweepArgs = []string{
	"-exp", "fig4,fig6",
	"-only", "rodinia/backprop,rodinia/kmeans,rodinia/srad,rodinia/bfs,rodinia/hotspot,rodinia/pathfinder",
	"-jobs", "1", "-q",
}

// buildBinary compiles this command into dir and returns the binary path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "experiments")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptAndResume is the end-to-end crash-safety acceptance test:
// a checkpointed sweep killed with SIGINT mid-run must exit 130 with a
// valid journal, and a second invocation with -resume must produce stdout
// byte-identical to an uninterrupted sweep.
func TestInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	stateDir := filepath.Join(dir, "state")
	journalPath := filepath.Join(stateDir, "sweep.journal")

	// Reference: the uninterrupted sweep's stdout.
	clean, err := exec.Command(bin, sweepArgs...).Output()
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}

	// Interrupted sweep: SIGINT once the journal shows three completed
	// runs (header + 3 records = 4 lines).
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, append(sweepArgs, "-state", stateDir)...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("journal never reached 3 records; stderr:\n%s", stderr.String())
		}
		data, err := os.ReadFile(journalPath)
		if err == nil && bytes.Count(data, []byte("\n")) >= 4 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("interrupted sweep exit = %v, want exit status 130; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume with:") {
		t.Fatalf("interrupted sweep did not advertise resume; stderr:\n%s", stderr.String())
	}
	if bytes.Equal(stdout.Bytes(), clean) {
		t.Fatal("interrupted sweep printed the full report; SIGINT landed too late to test resume")
	}

	// Resumed sweep: must replay the journal and match the clean stdout
	// byte for byte.
	var rout, rerr bytes.Buffer
	cmd = exec.Command(bin, append(sweepArgs, "-state", stateDir, "-resume")...)
	cmd.Stdout, cmd.Stderr = &rout, &rerr
	if err := cmd.Run(); err != nil {
		t.Fatalf("resumed sweep: %v\nstderr:\n%s", err, rerr.String())
	}
	if !strings.Contains(rerr.String(), "resuming from") {
		t.Fatalf("resumed sweep did not replay the journal; stderr:\n%s", rerr.String())
	}
	if !bytes.Equal(rout.Bytes(), clean) {
		t.Fatalf("resumed stdout differs from the uninterrupted sweep\n--- clean\n%s\n--- resumed\n%s",
			clean, rout.Bytes())
	}
}

// TestResumeRejectsChangedConfig: -resume under a different sweep
// configuration must fail with the fingerprint error, not splice results.
func TestResumeRejectsChangedConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	stateDir := filepath.Join(dir, "state")

	args := []string{"-exp", "fig4", "-only", "rodinia/backprop", "-jobs", "1", "-q", "-state", stateDir}
	if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
		t.Fatalf("checkpointed sweep: %v\n%s", err, out)
	}

	changed := []string{"-exp", "fig4", "-only", "rodinia/bfs", "-jobs", "1", "-q", "-state", stateDir, "-resume"}
	out, err := exec.Command(bin, changed...).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("changed config exit = %v, want 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "fingerprint mismatch") {
		t.Fatalf("missing fingerprint diagnostic:\n%s", out)
	}
}
