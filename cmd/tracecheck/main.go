// Command tracecheck validates a Chrome trace-event / Perfetto JSON file
// produced by -trace: the document must parse, every event must carry a
// name and a positive pid, phases must be ones the exporter emits, and
// timestamps must be finite, non-negative, and non-decreasing. CI runs it
// on the traced sweep's artifact so a malformed trace fails the build
// instead of failing the first person who opens it in Perfetto.
//
// Usage:
//
//	tracecheck FILE...
//
// Prints one summary line per file; exits 1 if any file is invalid.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			bad = true
			continue
		}
		fs, err := trace.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok: %d events (%d spans, %d instants, %d metadata) across %d processes\n",
			path, fs.Events, fs.Spans, fs.Instants, fs.Metadata, fs.Processes)
	}
	if bad {
		os.Exit(1)
	}
}
