// Command metricscheck validates Prometheus text-format (v0.0.4)
// exposition files such as GET /metrics scrapes from hetsimd: every
// sample must parse, HELP/TYPE comments must precede their family's
// samples and not repeat, families must not interleave, and histograms
// must have strictly increasing le bounds, monotone cumulative bucket
// counts, and an le="+Inf" bucket equal to _count. CI runs it on the
// smoke job's scrapes so a malformed exposition fails the build instead
// of failing the first Prometheus server pointed at the daemon.
//
// Usage:
//
//	metricscheck FILE...
//
// Prints one summary line per file; exits 1 if any file is invalid.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck FILE...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			bad = true
			continue
		}
		st, err := metrics.Lint(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok: %d samples across %d families (%d histograms)\n",
			path, st.Samples, st.Families, st.Histograms)
	}
	if bad {
		os.Exit(1)
	}
}
