// Command lssys prints the resolved Table I system configurations for the
// discrete GPU system and the heterogeneous CPU-GPU processor.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Print(experiments.Table1())
}
