// Command lssys prints the resolved Table I system configurations for the
// discrete GPU system and the heterogeneous CPU-GPU processor, followed by
// the organization capability matrix: which run modes (copy, limited-copy,
// async-streams, parallel-chunked) each registered benchmark supports.
package main

import (
	"fmt"

	"repro/internal/experiments"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func main() {
	fmt.Print(experiments.Table1())
	fmt.Println()
	fmt.Print(experiments.OrgMatrixText())
}
