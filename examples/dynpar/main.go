// Dynpar: the Section VI discussion made runnable — CUDA-style dynamic
// parallelism versus the host-driven outer loop. A BFS whose every level
// needs a "more work?" decision can either bounce that decision off the
// CPU (tiny D2H copy + host check + relaunch: the structure most graph
// benchmarks use) or let the kernel launch its own next level from the
// device. The paper's caveat — device launch overheads can outweigh the
// benefit — is visible directly in the numbers.
//
//	go run ./examples/dynpar
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	nVerts = 1 << 15
	block  = 256
)

type graphBufs struct {
	row, col, cost, flag *device.Buf[int32]
}

func setup(s *device.System) graphBufs {
	g := workload.UniformGraph(nVerts, 8, 7)
	b := graphBufs{
		row:  device.AllocBuf[int32](s, nVerts+1, "row", device.Host),
		col:  device.AllocBuf[int32](s, g.M(), "col", device.Host),
		cost: device.AllocBuf[int32](s, nVerts, "cost", device.Host),
		flag: device.AllocBuf[int32](s, 1, "flag", device.Host),
	}
	copy(b.row.V, g.RowPtr)
	copy(b.col.V, g.ColIdx)
	for i := range b.cost.V {
		b.cost.V[i] = -1
	}
	b.cost.V[0] = 0
	return b
}

// levelKernel relaxes one BFS level; if continueFromDevice it launches the
// next level itself when the flag is set.
func levelKernel(s *device.System, b graphBufs, level int32, fromDevice bool) device.KernelSpec {
	return device.KernelSpec{
		Name: "bfs_level", Grid: nVerts / block, Block: block,
		Func: func(t *device.Thread) {
			v := t.Global()
			if device.Ld(t, b.cost, v) == level {
				lo := int(device.Ld(t, b.row, v))
				hi := int(device.Ld(t, b.row, v+1))
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, b.col, e))
					if device.Ld(t, b.cost, u) == -1 {
						device.St(t, b.cost, u, level+1)
						device.St(t, b.flag, 0, 1)
					}
					t.FLOP(1)
				}
			}
			// The grid's last thread (generated last, so it observes every
			// flag write) decides whether to relaunch from the device.
			if fromDevice && v == nVerts-1 && device.Ld(t, b.flag, 0) != 0 {
				device.St(t, b.flag, 0, 0)
				t.LaunchChild(levelKernel(s, b, level+1, true))
			}
		},
	}
}

func run(fromDevice bool) (sim.Tick, int) {
	s := device.NewSystem(config.HeteroProcessor())
	b := setup(s)
	s.BeginROI()
	if fromDevice {
		// One host launch; the device keeps itself busy.
		s.Wait(s.LaunchAsync(levelKernel(s, b, 0, true)))
	} else {
		for level := int32(0); level < 64; level++ {
			s.Launch(levelKernel(s, b, level, false))
			done := false
			s.CPUTask(device.CPUTaskSpec{Name: "check", Threads: 1, Func: func(c *device.CPUThread) {
				done = device.Ld(c, b.flag, 0) == 0
				c.FLOP(1)
			}})
			if done {
				break
			}
			b.flag.V[0] = 0
		}
	}
	s.EndROI()
	reached := 0
	for _, c := range b.cost.V {
		if c >= 0 {
			reached++
		}
	}
	rep := s.Report("dynpar-bfs", map[bool]string{true: "device-launched", false: "host-loop"}[fromDevice])
	_ = rep
	start, end := s.Col.ROI()
	return end - start, reached
}

func main() {
	hostT, hostReached := run(false)
	devT, devReached := run(true)
	if hostReached != devReached {
		panic("organizations disagree on reachability")
	}
	fmt.Println("BFS outer-loop control on the heterogeneous processor")
	fmt.Printf("  host-driven loop   : %8.3f ms  (launch + tiny copy + CPU check per level)\n", hostT.Millis())
	fmt.Printf("  dynamic parallelism: %8.3f ms  (device-side launch, 8us overhead per level)\n", devT.Millis())
	fmt.Printf("  reached vertices: %d\n\n", hostReached)
	if devT < hostT {
		fmt.Println("Device-side launching wins here: the host round trip cost more than")
		fmt.Println("the device launch overhead (the paper's Section VI trade-off).")
	} else {
		fmt.Println("The host loop wins here: device launch overheads outweigh the saved")
		fmt.Println("round trips — exactly the caveat the paper cites for CUDA dynamic")
		fmt.Println("parallelism.")
	}
}
