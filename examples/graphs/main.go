// Graphs: run the irregular graph workloads from the benchmark suites on
// both simulated machines and compare what the paper's Figures 5, 6, and 9
// measure — copy traffic, run time, page-fault behaviour, and the off-chip
// access mix.
//
//	go run ./examples/graphs
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/rodinia"
)

func main() {
	names := []string{"rodinia/bfs", "lonestar/bfs_wlc", "lonestar/sssp_wlc", "pannotia/pr_spmv"}
	fmt.Println("Graph workloads: discrete GPU (copy) vs heterogeneous processor (limited-copy)")
	fmt.Printf("%-20s %12s %12s %9s %12s %12s\n",
		"benchmark", "copy ROI", "hetero ROI", "speedup", "copy R-Rcont", "het R-Rcont")
	for _, name := range names {
		b, ok := bench.Get(name)
		if !ok {
			panic("unknown benchmark " + name)
		}
		cv := bench.Execute(b, bench.ModeCopy, bench.SizeSmall)
		lv := bench.Execute(b, bench.ModeLimitedCopy, bench.SizeSmall)
		fmt.Printf("%-20s %9.3f ms %9.3f ms %8.2fx %11.1f%% %11.1f%%\n",
			name, cv.ROI.Millis(), lv.ROI.Millis(),
			float64(cv.ROI)/float64(lv.ROI),
			100*cv.ClassFraction(core.ClassRRContention),
			100*lv.ClassFraction(core.ClassRRContention))
	}
	fmt.Println()
	fmt.Println("The worklist benchmarks' tiny per-round D2H flag copies vanish on the")
	fmt.Println("heterogeneous processor; their irregular gathers keep contending for")
	fmt.Println("cache in both machines (the paper's Section V-C observation).")
}
