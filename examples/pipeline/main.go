// Pipeline: the paper's Section II argument as a library user would write
// it — a bulk-synchronous producer/consumer pipeline versus a chunked
// producer-consumer organization synchronizing through in-memory signals on
// the heterogeneous processor. The chunked version keeps the intermediate
// buffer cache-resident, so the CPU consumer hits in cache instead of
// spilling off-chip.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

const (
	n      = 1 << 18 // elements
	block  = 256
	chunks = 8
)

// produce builds the GPU producer kernel for one chunk.
func produce(src, dst *device.Buf[float32], base, count int) device.KernelSpec {
	return device.KernelSpec{
		Name: "produce", Grid: count / block, Block: block,
		Func: func(t *device.Thread) {
			i := base + t.Global()
			v := device.Ld(t, src, i)
			t.FLOP(8)
			device.St(t, dst, i, v*v+1)
		},
	}
}

// consume builds the CPU consumer task for one chunk.
func consume(s *device.System, mid *device.Buf[float32], out []float64, base, count int, deps ...*device.Handle) *device.Handle {
	return s.CPUTaskAsync(device.CPUTaskSpec{
		Name: "consume", Threads: 1,
		Func: func(c *device.CPUThread) {
			var acc float64
			for i := base; i < base+count; i++ {
				acc += float64(device.Ld(c, mid, i))
				c.FLOP(1)
			}
			out[base/(n/chunks)] = acc
		},
	}, deps...)
}

func run(chunked bool) (sim.Tick, *core.Report) {
	s := device.NewSystem(config.HeteroProcessor())
	src := device.AllocBuf[float32](s, n, "src", device.Host)
	mid := device.AllocBuf[float32](s, n, "intermediate", device.Host)
	out := make([]float64, chunks)
	for i := range src.V {
		src.V[i] = float32(i%97) / 97
	}

	s.BeginROI()
	if !chunked {
		// Bulk synchronous: one wide kernel, then one wide CPU pass. The
		// whole 1MB+ intermediate spills off-chip before the CPU reads it.
		s.Launch(produce(src, mid, 0, n))
		s.Wait(consume(s, mid, out, 0, n))
	} else {
		// Chunked: each chunk's consumer starts the moment its producer
		// signals, while the next chunk's producer runs — the intermediate
		// stays within the caches.
		per := n / chunks
		var last *device.Handle
		for c := 0; c < chunks; c++ {
			k := s.LaunchAsync(produce(src, mid, c*per, per))
			last = consume(s, mid, out, c*per, per, k)
		}
		s.Wait(last)
		s.Drain()
	}
	s.EndROI()
	rep := s.Report("pipeline", map[bool]string{false: "bulk-sync", true: "chunked"}[chunked])
	return rep.ROI, rep
}

func main() {
	bulkT, bulk := run(false)
	chunkT, chunk := run(true)

	fmt.Println("Producer-consumer pipeline on the heterogeneous processor")
	fmt.Printf("  bulk-synchronous: %8.3f ms   GPU util %4.1f%%  W-R spills %4.1f%% of off-chip\n",
		bulkT.Millis(), 100*bulk.GPUUtil, 100*bulk.ClassFraction(core.ClassWRSpill))
	fmt.Printf("  chunked+signals : %8.3f ms   GPU util %4.1f%%  W-R spills %4.1f%% of off-chip\n",
		chunkT.Millis(), 100*chunk.GPUUtil, 100*chunk.ClassFraction(core.ClassWRSpill))
	fmt.Printf("  speedup: %.2fx\n", float64(bulkT)/float64(chunkT))
	fmt.Printf("\nbulk-sync off-chip accesses: %d   chunked: %d\n", bulk.TotalDRAM(), chunk.TotalDRAM())
}
