// Quickstart: build a heterogeneous CPU-GPU processor, write a small GPU
// kernel and a CPU reduction against the device API, and print the pipeline
// analysis report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/device"
)

func main() {
	// A cache-coherent heterogeneous processor with the paper's Table I
	// parameters; swap in config.DiscreteGPU() to compare.
	s := device.NewSystem(config.HeteroProcessor())

	const n = 1 << 16
	x := device.AllocBuf[float32](s, n, "x", device.Host)
	y := device.AllocBuf[float32](s, n, "y", device.Host)
	for i := range x.V {
		x.V[i] = float32(i%100) * 0.01
	}

	s.BeginROI()

	// GPU kernel: y = 4*x*(1-x), one thread per element.
	s.Launch(device.KernelSpec{
		Name: "logistic", Grid: n / 256, Block: 256,
		Func: func(t *device.Thread) {
			i := t.Global()
			v := device.Ld(t, x, i)
			t.FLOP(3)
			device.St(t, y, i, 4*v*(1-v))
		},
	})

	// CPU phase: reduce the result. On this machine the CPU reads the
	// GPU-produced data straight out of cache — no copies anywhere.
	var sum float64
	s.CPUTask(device.CPUTaskSpec{
		Name: "reduce", Threads: 4,
		Func: func(c *device.CPUThread) {
			lo, hi := c.TID()*n/4, (c.TID()+1)*n/4
			var acc float64
			for i := lo; i < hi; i++ {
				acc += float64(device.Ld(c, y, i))
				c.FLOP(1)
			}
			sum += acc // CPU threads execute functionally in TID order
		},
	})

	s.EndROI()

	fmt.Printf("sum(y) = %.2f\n\n", sum)
	fmt.Print(s.Report("quickstart", "limited-copy"))
	fmt.Printf("\ncache-to-cache transfers: %d\n", s.Ctr.Get("het-switch.c2c_transfers"))
}
