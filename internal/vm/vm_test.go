package vm

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/sim"
)

func heteroMgr() *Manager {
	return New(Config{
		PageBytes:     4096,
		GPUFaultToCPU: true,
		CPUFaultServ:  2 * sim.Microsecond,
	}, nil)
}

func TestMappedPagesAreFree(t *testing.T) {
	m := heteroMgr()
	m.MapRange(0, 8192)
	if got := m.Translate(100, 4100, true); got != 100 {
		t.Fatalf("mapped page cost %d", got-100)
	}
	if !m.Mapped(0) || !m.Mapped(4096) || m.Mapped(8192) {
		t.Fatal("MapRange extent wrong")
	}
}

func TestCPUFaultIsImmediate(t *testing.T) {
	m := heteroMgr()
	if got := m.Translate(50, 0, false); got != 50 {
		t.Fatalf("CPU minor fault cost %d", got-50)
	}
	if m.Counters().Get("vm.cpu_minor_faults") != 1 {
		t.Fatal("fault not counted")
	}
	// Page is now mapped for everyone.
	if got := m.Translate(60, 128, true); got != 60 {
		t.Fatal("page should be mapped after CPU touch")
	}
}

func TestGPUFaultsSerializeOnCPUHandler(t *testing.T) {
	m := heteroMgr()
	var handled []sim.Tick
	m.OnCPUHandled = func(start, end sim.Tick, page memory.Addr) {
		handled = append(handled, start)
	}
	// Three concurrent GPU faults to distinct pages at t=0.
	t1 := m.Translate(0, 0, true)
	t2 := m.Translate(0, 4096, true)
	t3 := m.Translate(0, 8192, true)
	serv := 2 * sim.Microsecond
	if t1 != serv || t2 != 2*serv || t3 != 3*serv {
		t.Fatalf("faults not serialized: %d %d %d", t1, t2, t3)
	}
	if len(handled) != 3 || handled[1] != serv {
		t.Fatalf("handler intervals wrong: %v", handled)
	}
	if m.HandlerBusyTime() != 3*serv {
		t.Fatalf("handler busy = %d", m.HandlerBusyTime())
	}
}

func TestDiscreteGPUFaultIsLocalAndParallel(t *testing.T) {
	m := New(Config{PageBytes: 4096, GPUFaultToCPU: false, GPUFaultServ: 200 * sim.Nanosecond}, nil)
	t1 := m.Translate(0, 0, true)
	t2 := m.Translate(0, 4096, true)
	if t1 != 200*sim.Nanosecond || t2 != 200*sim.Nanosecond {
		t.Fatalf("local faults should be parallel: %d %d", t1, t2)
	}
	if m.Counters().Get("vm.gpu_local_faults") != 2 {
		t.Fatal("local faults not counted")
	}
}

func TestFaultOnlyOnFirstTouch(t *testing.T) {
	m := heteroMgr()
	m.Translate(0, 0, true)
	if got := m.Translate(0, 64, true); got != 0 {
		t.Fatal("second touch of the page must not fault")
	}
	if m.Counters().Get("vm.gpu_faults_to_cpu") != 1 {
		t.Fatal("fault count wrong")
	}
}
