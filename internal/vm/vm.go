// Package vm models address translation at page granularity — specifically
// the behaviour the paper calls out: in the heterogeneous processor, CPU and
// GPU share one page table, so GPU page faults interrupt the CPU and are
// serviced *serially* by a software handler (IOMMU-style, as in gem5-gpu).
// In the discrete system the GPU driver maps pages itself while the copy
// engine or GPU runs, so minor faults are nearly free.
//
// TLBs are not modelled separately; the paper quantifies fault-handling
// cost, not TLB reach, and our page-presence check captures exactly that.
package vm

import (
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Manager tracks page mappings for one simulated machine.
type Manager struct {
	pageBytes  int
	mapped     map[memory.Addr]struct{}
	faultToCPU bool
	cpuServ    sim.Tick
	gpuServ    sim.Tick
	handler    sim.BusyModel // serializes the CPU fault handler
	ctr        *stats.Counters

	// Interned fault-counter handles, resolved once in New.
	cCPUMinor, cGPULocal, cGPUToCPU stats.Counter

	// Tr is the optional trace sink (nil-safe). Fault events are emitted
	// at most once per page — the first-touch walk — so trace size is
	// bounded by the footprint, not the access count.
	Tr *trace.Recorder

	// OnCPUHandled observes each CPU-serviced fault's handler occupancy so
	// the device layer can log CPU activity (and page-clearing writes, which
	// shift memory accesses from GPU to CPU as the paper observed for srad).
	OnCPUHandled func(start, end sim.Tick, pageBase memory.Addr)
}

// Config carries the subset of config.VMConfig the manager needs.
type Config struct {
	PageBytes     int
	GPUFaultToCPU bool
	CPUFaultServ  sim.Tick
	GPUFaultServ  sim.Tick
	// ServMult scales both fault service latencies — the fault-injection
	// hook for a degraded (slow) page-fault handler. Values <= 0 mean
	// nominal (1x).
	ServMult float64
}

// New builds a Manager.
func New(cfg Config, ctr *stats.Counters) *Manager {
	if ctr == nil {
		ctr = stats.NewCounters()
	}
	if cfg.ServMult > 0 {
		cfg.CPUFaultServ = sim.Tick(float64(cfg.CPUFaultServ) * cfg.ServMult)
		cfg.GPUFaultServ = sim.Tick(float64(cfg.GPUFaultServ) * cfg.ServMult)
	}
	return &Manager{
		pageBytes:  cfg.PageBytes,
		mapped:     map[memory.Addr]struct{}{},
		faultToCPU: cfg.GPUFaultToCPU,
		cpuServ:    cfg.CPUFaultServ,
		gpuServ:    cfg.GPUFaultServ,
		ctr:        ctr,
		cCPUMinor:  ctr.Handle("vm.cpu_minor_faults"),
		cGPULocal:  ctr.Handle("vm.gpu_local_faults"),
		cGPUToCPU:  ctr.Handle("vm.gpu_faults_to_cpu"),
	}
}

// Counters exposes fault counters.
func (m *Manager) Counters() *stats.Counters { return m.ctr }

// PageBytes reports the page size.
func (m *Manager) PageBytes() int { return m.pageBytes }

func (m *Manager) pageOf(addr memory.Addr) memory.Addr {
	return addr &^ memory.Addr(m.pageBytes-1)
}

// MapRange marks [base, base+size) resident with no cost — used for pages
// the host touched before the ROI and for copy-engine implicit mappings.
func (m *Manager) MapRange(base memory.Addr, size int) {
	for p := m.pageOf(base); p < base+memory.Addr(size); p += memory.Addr(m.pageBytes) {
		m.mapped[p] = struct{}{}
	}
}

// Mapped reports whether addr's page is resident.
func (m *Manager) Mapped(addr memory.Addr) bool {
	_, ok := m.mapped[m.pageOf(addr)]
	return ok
}

// Translate resolves addr for an access at time now and returns when the
// translation is ready. CPU minor faults map immediately (the host OS path
// is cheap relative to everything the paper measures). GPU faults either
// queue on the serial CPU handler (heterogeneous processor) or cost a small
// fixed GPU-local service time (discrete GPU driver).
func (m *Manager) Translate(now sim.Tick, addr memory.Addr, fromGPU bool) sim.Tick {
	page := m.pageOf(addr)
	if _, ok := m.mapped[page]; ok {
		return now
	}
	m.mapped[page] = struct{}{}
	if !fromGPU {
		m.cCPUMinor.Inc()
		m.Tr.Instant(stats.CPU, "VM", "fault", "cpu minor fault", now,
			trace.Arg{Key: "page", Val: uint64(page)})
		return now
	}
	if !m.faultToCPU {
		m.cGPULocal.Inc()
		m.Tr.Span(stats.GPU, "VM", "fault", "gpu local fault", now, now+m.gpuServ,
			trace.Arg{Key: "page", Val: uint64(page)})
		return now + m.gpuServ
	}
	m.cGPUToCPU.Inc()
	start := m.handler.Claim(now, m.cpuServ)
	end := start + m.cpuServ
	m.Tr.Span(stats.CPU, "VM handler", "fault", "gpu fault to cpu", start, end,
		trace.Arg{Key: "page", Val: uint64(page)})
	if m.OnCPUHandled != nil {
		m.OnCPUHandled(start, end, page)
	}
	return end
}

// HandlerBusyTime reports total CPU fault-handler occupancy.
func (m *Manager) HandlerBusyTime() sim.Tick { return m.handler.BusyTime() }
