package isa

import (
	"testing"
	"unsafe"
)

func TestSummarize(t *testing.T) {
	tr := Trace{
		{Kind: OpCompute, N: 10},
		{Kind: OpCompute, N: 5},
		{Kind: OpLoad, Addr: 0, N: 4},
		{Kind: OpLoadDep, Addr: 8, N: 4},
		{Kind: OpStore, Addr: 16, N: 4},
		{Kind: OpAtomic, Addr: 24, N: 4},
		{Kind: OpScratch, N: 4},
		{Kind: OpSync},
	}
	s := Summarize(tr)
	if s.FLOPs != 15 {
		t.Fatalf("flops = %d", s.FLOPs)
	}
	if s.Loads != 2 {
		t.Fatalf("loads = %d", s.Loads)
	}
	if s.Stores != 1 || s.Atomics != 1 || s.ScratchOps != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Stats{}) {
		t.Fatalf("empty trace stats = %+v", s)
	}
}

func TestOpStaysCompact(t *testing.T) {
	// The trace format must stay compact: lazily generated per-CTA traces
	// are the simulator's main memory consumer.
	var op Op
	if got := unsafe.Sizeof(op); got > 16 {
		t.Fatalf("Op is %d bytes, want <= 16", got)
	}
}
