// Package isa defines the abstract instruction trace format shared by the
// CPU and GPU timing models. Benchmarks execute functionally as ordinary Go
// code; the access-recording layer in internal/device turns each software
// thread's loads, stores, atomics, and compute into a compact Op sequence
// that the timing models replay.
package isa

import "repro/internal/memory"

// OpKind discriminates trace operations.
type OpKind uint8

const (
	// OpCompute models N arithmetic operations (FLOPs) per lane.
	OpCompute OpKind = iota
	// OpLoad is a global-memory read of N bytes at Addr.
	OpLoad
	// OpLoadDep is a load whose value gates further progress (pointer
	// chase); the CPU model serializes on it instead of overlapping it in
	// the MLP window. The GPU model treats it like OpLoad (warps always
	// stall on use).
	OpLoadDep
	// OpStore is a global-memory write of N bytes at Addr.
	OpStore
	// OpAtomic is a read-modify-write of N bytes at Addr.
	OpAtomic
	// OpScratch is a GPU scratchpad (shared memory) access: occupies an
	// issue slot but never reaches the memory system. On the CPU it is a
	// register-file/stack access and is free.
	OpScratch
	// OpSync is a CTA-wide barrier on the GPU; a no-op on the CPU.
	OpSync
)

// Op is one replayable trace operation. Compact: 16 bytes.
type Op struct {
	Addr memory.Addr
	N    uint32 // FLOPs for OpCompute, bytes for memory ops
	Kind OpKind
}

// Trace is one software thread's (or one GPU lane's) ordered op sequence.
type Trace []Op

// Stats summarizes a trace.
type Stats struct {
	FLOPs      uint64
	Loads      uint64
	Stores     uint64
	Atomics    uint64
	ScratchOps uint64
}

// Summarize tallies a trace.
func Summarize(tr Trace) Stats {
	var s Stats
	for _, op := range tr {
		switch op.Kind {
		case OpCompute:
			s.FLOPs += uint64(op.N)
		case OpLoad, OpLoadDep:
			s.Loads++
		case OpStore:
			s.Stores++
		case OpAtomic:
			s.Atomics++
		case OpScratch:
			s.ScratchOps++
		}
	}
	return s
}
