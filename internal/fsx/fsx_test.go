package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip: the passthrough implementation behaves like the os
// package for the full op surface the persistence layer uses.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f.2" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFailNth: only the scripted op fails; traffic before and after
// passes.
func TestFaultFailNth(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(OS)
	ff.FailNth(OpWrite, 2, ErrNoSpace)

	f, err := ff.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write 2 err = %v, want ErrNoSpace", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v (a non-trip rule must not latch)", err)
	}
}

// TestFaultTripAndClear: a Trip rule latches — every later matching op
// fails — until Clear heals the disk.
func TestFaultTripAndClear(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(OS)
	ff.Inject(Rule{Op: OpSync, Nth: 1, Err: ErrIO, Trip: true})

	f, err := ff.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrIO) {
			t.Fatalf("sync %d err = %v, want latched ErrIO", i, err)
		}
	}
	ff.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
}

// TestFaultShortWrite: a ShortWrite rule delivers half the payload before
// failing — the torn tail a real mid-append ENOSPC leaves.
func TestFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(OS)
	ff.Inject(Rule{Op: OpWrite, Nth: 2, Err: ErrNoSpace, ShortWrite: true})

	path := filepath.Join(dir, "f")
	f, err := ff.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("TORNLINE"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("torn write err = %v, want ErrNoSpace", err)
	}
	if n != 4 {
		t.Fatalf("torn write delivered %d bytes, want 4", n)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "intactTORN" {
		t.Fatalf("file = %q, want torn half-line", data)
	}
}

// TestFaultErrnoCompat: injected errors satisfy errors.Is against the
// real errno values, so code checking for ENOSPC sees ENOSPC.
func TestFaultErrnoCompat(t *testing.T) {
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("ErrNoSpace does not unwrap to syscall.ENOSPC")
	}
	if !errors.Is(ErrIO, syscall.EIO) {
		t.Fatal("ErrIO does not unwrap to syscall.EIO")
	}
	if !IsInjected(ErrNoSpace) || !IsInjected(ErrIO) || IsInjected(errors.New("x")) {
		t.Fatal("IsInjected misclassifies")
	}
}

// TestFaultOpClasses: each FS-level op routes through its own class, so a
// rule on one class never fails another.
func TestFaultOpClasses(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(OS)
	ff.FailOp(OpRename, ErrIO)

	// Everything except rename works.
	if err := ff.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := ff.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Close()
	if err := ff.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Stat(f.Name()); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := ff.Rename(f.Name(), filepath.Join(dir, "renamed")); !errors.Is(err, ErrIO) {
		t.Fatalf("rename err = %v, want ErrIO", err)
	}
	if err := ff.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	if ff.Count(OpRename) != 1 || ff.Count(OpOpen) != 1 {
		t.Fatalf("counts: rename=%d open=%d", ff.Count(OpRename), ff.Count(OpOpen))
	}
}
