package fsx

import (
	"errors"
	"io/fs"
	"sync"
	"syscall"
	"time"
)

// Canonical injected errors: the two disk failures a long-running service
// actually meets. They wrap the real errno values so errors.Is works both
// on the sentinel and on syscall.ENOSPC/EIO.
var (
	// ErrNoSpace is the injected disk-full error.
	ErrNoSpace = &injectedError{msg: "fsx: injected disk full", errno: syscall.ENOSPC}
	// ErrIO is the injected I/O error (a dying device or a lying disk).
	ErrIO = &injectedError{msg: "fsx: injected I/O error", errno: syscall.EIO}
)

type injectedError struct {
	msg   string
	errno syscall.Errno
}

func (e *injectedError) Error() string { return e.msg }
func (e *injectedError) Unwrap() error { return e.errno }

// Op names one class of filesystem operation for fault matching. OpAny
// matches every class.
type Op string

const (
	OpAny     Op = "any"
	OpOpen    Op = "open"    // OpenFile and CreateTemp
	OpRead    Op = "read"    // ReadFile and File.Read
	OpWrite   Op = "write"   // File.Write
	OpSync    Op = "sync"    // File.Sync
	OpSyncDir Op = "syncdir" // FS.SyncDir
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpStat    Op = "stat" // FS.Stat and File.Stat
	OpTrunc   Op = "truncate"
)

// Rule is one injection directive, the persistence analogue of one entry
// in config.FaultConfig: which op class to fail, when, with what, and
// whether the failure persists.
type Rule struct {
	// Op selects the operation class (OpAny matches all).
	Op Op
	// Nth fails only the Nth matching op (1-based) after the rule is
	// armed; 0 fails every matching op.
	Nth int
	// Err is the injected error (nil means ErrIO).
	Err error
	// Trip, when set, latches the rule once it first fires: every later
	// matching op fails too, regardless of Nth — the disk stays broken
	// until Clear. Models a full disk rather than a transient hiccup.
	Trip bool
	// ShortWrite applies to OpWrite rules: the failing write first
	// delivers half its payload to the underlying file, producing
	// exactly the torn-line tail a real ENOSPC mid-append leaves.
	ShortWrite bool
}

// Fault wraps an FS and fails scripted operations. Arm rules with
// Inject, heal the disk with Clear, observe traffic with Count. Safe for
// concurrent use.
type Fault struct {
	inner FS

	mu      sync.Mutex
	rules   []*armedRule
	counts  map[Op]uint64
	tripped *armedRule // non-nil once a Trip rule fired
}

type armedRule struct {
	Rule
	seen  uint64 // matching ops observed since arming
	fired bool
}

// NewFault wraps inner (OS when nil) with an initially-clear injector.
func NewFault(inner FS) *Fault {
	if inner == nil {
		inner = OS
	}
	return &Fault{inner: inner, counts: map[Op]uint64{}}
}

// Inject arms one rule. Rules are independent; the first one that
// matches an op decides its fate.
func (f *Fault) Inject(r Rule) {
	if r.Err == nil {
		r.Err = ErrIO
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &armedRule{Rule: r})
}

// FailOp arms a rule failing every op of class op with err.
func (f *Fault) FailOp(op Op, err error) { f.Inject(Rule{Op: op, Err: err}) }

// FailNth arms a rule failing the nth op of class op with err.
func (f *Fault) FailNth(op Op, nth int, err error) { f.Inject(Rule{Op: op, Nth: nth, Err: err}) }

// Clear disarms every rule and resets the trip latch: the disk is healthy
// again. Counters survive (they describe traffic, not faults).
func (f *Fault) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.tripped = nil
}

// Count reports how many ops of class op have passed through (failed or
// not) since construction.
func (f *Fault) Count(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check records one op and decides whether it fails. The bool reports a
// short write (OpWrite only).
func (f *Fault) check(op Op) (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if t := f.tripped; t != nil && (t.Op == OpAny || t.Op == op) {
		return t.Err, t.ShortWrite
	}
	for _, r := range f.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		r.seen++
		if r.Nth != 0 && r.seen != uint64(r.Nth) && !(r.Trip && r.fired) {
			continue
		}
		r.fired = true
		if r.Trip {
			f.tripped = r
		}
		return r.Err, r.ShortWrite
	}
	return nil, false
}

func (f *Fault) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := f.check(OpOpen); err != nil {
		return nil, &fs.PathError{Op: "open", Path: path, Err: err}
	}
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, f: f}, nil
}

func (f *Fault) ReadFile(path string) ([]byte, error) {
	if err, _ := f.check(OpRead); err != nil {
		return nil, &fs.PathError{Op: "read", Path: path, Err: err}
	}
	return f.inner.ReadFile(path)
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.check(OpOpen); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, f: f}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename); err != nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(path string) error {
	if err, _ := f.check(OpRemove); err != nil {
		return &fs.PathError{Op: "remove", Path: path, Err: err}
	}
	return f.inner.Remove(path)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.check(OpMkdir); err != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) ReadDir(path string) ([]fs.DirEntry, error) {
	if err, _ := f.check(OpReadDir); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: path, Err: err}
	}
	return f.inner.ReadDir(path)
}

func (f *Fault) Stat(path string) (fs.FileInfo, error) {
	if err, _ := f.check(OpStat); err != nil {
		return nil, &fs.PathError{Op: "stat", Path: path, Err: err}
	}
	return f.inner.Stat(path)
}

func (f *Fault) SyncDir(dir string) error {
	if err, _ := f.check(OpSyncDir); err != nil {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return f.inner.SyncDir(dir)
}

func (f *Fault) Chtimes(path string, atime, mtime time.Time) error {
	return f.inner.Chtimes(path, atime, mtime)
}

// faultFile threads per-file ops back through the injector, so a rule
// armed after a file was opened still governs its writes and syncs —
// that is how "ENOSPC mid-append" scripts are written.
type faultFile struct {
	File
	f *Fault
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err, _ := ff.f.check(OpRead); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, short := ff.f.check(OpWrite)
	if err != nil {
		if short && len(p) > 1 {
			// Deliver half the payload first: the torn line a real
			// disk-full append leaves behind.
			n, werr := ff.File.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.f.check(OpSync); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.f.check(OpTrunc); err != nil {
		return err
	}
	return ff.File.Truncate(size)
}

func (ff *faultFile) Stat() (fs.FileInfo, error) {
	if err, _ := ff.f.check(OpStat); err != nil {
		return nil, err
	}
	return ff.File.Stat()
}

// IsInjected reports whether err carries one of the injector's canonical
// errors (tests distinguish scripted failures from real ones).
func IsInjected(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, ErrIO)
}
