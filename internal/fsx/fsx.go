// Package fsx is the persistence layer's filesystem seam: the handful of
// file operations the journal WAL and the daemon's result cache actually
// perform, behind an interface small enough to fault-inject.
//
// The paper's method is to measure how a pipeline degrades when one
// component misbehaves, and config.FaultConfig lets the simulator inject
// exactly that — a throttled PCIe link, a slow fault handler — without
// touching callers. The persistence layer deserves the same treatment:
// ENOSPC on an fsync'd append, EIO on a directory sync, a failing rename
// are real production events, and the only way to prove the daemon
// degrades instead of dying is to inject them deterministically. fsx.OS
// is the passthrough the production binaries use; fsx.Fault (fault.go)
// wraps any FS and fails scripted operations, the disk-side analogue of
// the hardware fault plan.
package fsx

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// File is the open-file surface the persistence layer uses: sequential
// reads (journal replay), appends (journal writes), truncation (torn-tail
// recovery), and durability (Sync).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name reports the file's path as opened/created.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail recovery).
	Truncate(size int64) error
	// Stat reports the file's metadata (size checks).
	Stat() (fs.FileInfo, error)
}

// FS is the directory-level surface: everything internal/journal and the
// server's cache/state-dir code touch. Implementations must be safe for
// concurrent use.
type FS interface {
	// OpenFile opens path with the os.OpenFile flag semantics.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads the whole file (cache entry reads).
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a temp file in dir with the os.CreateTemp
	// pattern semantics (atomic cache writes stage through it).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory (GC scans).
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat reports file metadata.
	Stat(path string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory entry at dir. A freshly created or
	// renamed file is only durable once its directory entry is too:
	// fsyncing the file flushes its contents, but the entry naming it
	// lives in the directory, and a crash before the directory reaches
	// stable storage can lose the file wholesale.
	SyncDir(dir string) error
	// Chtimes sets a file's access and modification times (GC age tests
	// and quarantine aging).
	Chtimes(path string, atime, mtime time.Time) error
}

// osFS is the production implementation: straight passthrough to the os
// package.
type osFS struct{}

// OS is the real filesystem. Production binaries use it; tests wrap it
// (or a temp-dir-rooted equivalent) in a Fault.
var OS FS = osFS{}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)        { return os.Stat(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Chtimes(path string, atime, mtime time.Time) error {
	return os.Chtimes(path, atime, mtime)
}
