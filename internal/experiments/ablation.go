package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/device"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Knob  string
	Value string
	ROIms float64
	Extra string
}

// AblateCoherence isolates what CPU-GPU cache coherence is worth to a
// latency-bound consumer: the GPU produces a buffer that fits in its L2 and
// the CPU immediately walks it with dependent loads. With coherence the
// reads are cache-to-cache transfers; without it every one goes to DRAM.
func AblateCoherence(size bench.Size) []AblationRow {
	n := bench.ScaleN(64*1024, size) // 256kB-1MB of float32
	var rows []AblationRow
	for _, off := range []bool{false, true} {
		cfg := config.HeteroProcessor()
		cfg.NoCoherence = off
		s := device.NewSystem(cfg)
		buf := device.AllocBuf[float32](s, n, "pc_buffer", device.Host)
		s.BeginROI()
		s.Launch(device.KernelSpec{
			Name: "produce", Grid: n / 256, Block: 256,
			Func: func(t *device.Thread) {
				i := t.Global()
				t.FLOP(2)
				device.St(t, buf, i, float32(i%7))
			},
		})
		s.CPUTask(device.CPUTaskSpec{
			Name: "consume_dependent", Threads: 1,
			Func: func(c *device.CPUThread) {
				var acc float32
				for i := 0; i < n; i += 32 { // one dependent load per line
					acc += device.LdDep(c, buf, i)
					c.FLOP(1)
				}
				_ = acc
			},
		})
		s.EndROI()
		rep := s.Report("pc-micro", "ablation")
		label := "on"
		if off {
			label = "off"
		}
		rows = append(rows, AblationRow{
			Knob: "coherence", Value: label, ROIms: rep.ROI.Millis(),
			Extra: fmt.Sprintf("CPU active %.3f ms, c2c transfers %d",
				rep.CPUActive.Millis(), s.Ctr.Get("het-switch.c2c_transfers")),
		})
	}
	return rows
}

// AblateFaultCost sweeps the CPU page-fault handler occupancy for srad, the
// paper's worst fault victim, showing how its heterogeneous-processor
// slowdown scales with handler cost.
func AblateFaultCost(size bench.Size) []AblationRow {
	srad, _ := bench.Get("rodinia/srad")
	var rows []AblationRow
	for _, us := range []float64{0, 0.5, 1, 2, 4} {
		cfg := config.HeteroProcessor()
		cfg.VM.CPUFaultServUs = us
		if us == 0 {
			cfg.VM.GPUFaultToCPU = false
			cfg.VM.GPUFaultServNs = 0
		}
		s := device.NewSystem(cfg)
		rep := bench.ExecuteOnSystem(srad, s, bench.ModeLimitedCopy, size)
		rows = append(rows, AblationRow{
			Knob: "fault-us", Value: fmt.Sprintf("%.1f", us), ROIms: rep.ROI.Millis(),
			Extra: fmt.Sprintf("faults %d", s.Ctr.Get("vm.gpu_faults_to_cpu")),
		})
	}
	return rows
}

// AblateGPUL2 sweeps the shared L2 capacity and reports the R-R contention
// share of spmv — the paper's Section V-C argument that contention is a
// capacity problem.
func AblateGPUL2(size bench.Size) []AblationRow {
	spmv, _ := bench.Get("parboil/spmv")
	var rows []AblationRow
	for _, kb := range []int{256, 512, 1024, 4096} {
		cfg := config.HeteroProcessor()
		cfg.GPU.L2Bytes = kb * 1024
		s := device.NewSystem(cfg)
		rep := bench.ExecuteOnSystem(spmv, s, bench.ModeLimitedCopy, size)
		rows = append(rows, AblationRow{
			Knob: "gpu-l2-kb", Value: fmt.Sprintf("%d", kb), ROIms: rep.ROI.Millis(),
			Extra: fmt.Sprintf("R-R contention %.1f%%", 100*rep.ClassFraction(core.ClassRRContention)),
		})
	}
	return rows
}

// AblatePCIe sweeps the link bandwidth of the discrete system for kmeans —
// the knob behind the paper's bandwidth-asymmetry argument in Section II.
func AblatePCIe(size bench.Size) []AblationRow {
	km, _ := bench.Get("rodinia/kmeans")
	var rows []AblationRow
	for _, gbs := range []float64{4, 8, 16, 32} {
		cfg := config.DiscreteGPU()
		cfg.PCIe.BytesPerSec = gbs * 1e9
		s := device.NewSystem(cfg)
		rep := bench.ExecuteOnSystem(km, s, bench.ModeCopy, size)
		rows = append(rows, AblationRow{
			Knob: "pcie-GB/s", Value: fmt.Sprintf("%.0f", gbs), ROIms: rep.ROI.Millis(),
			Extra: fmt.Sprintf("copy active %.3f ms", rep.CopyActive.Millis()),
		})
	}
	return rows
}

// AblationText renders every ablation sweep.
func AblationText(size bench.Size) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATIONS (design-choice sensitivity)\n")
	render := func(title string, rows []AblationRow) {
		fmt.Fprintf(&b, "%s\n", title)
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-12s %-6s  ROI %9.3f ms   %s\n", r.Knob, r.Value, r.ROIms, r.Extra)
		}
	}
	render("1. CPU-GPU cache coherence (producer-consumer microbenchmark):", AblateCoherence(size))
	render("2. GPU page-fault handler cost (srad limited-copy):", AblateFaultCost(size))
	render("3. GPU L2 capacity (spmv limited-copy):", AblateGPUL2(size))
	render("4. PCIe bandwidth (kmeans copy):", AblatePCIe(size))
	return b.String()
}
