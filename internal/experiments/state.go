package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/fsx"
	"repro/internal/harness"
	"repro/internal/journal"
)

// JournalKind stamps experiment-sweep journals, so a state dir written by
// a different command is rejected on resume.
const JournalKind = "experiments"

// journalFile is the journal's file name inside a state dir.
const journalFile = "sweep.journal"

// runSlot is one (benchmark, mode) run of a sweep, in the registry's
// stable order.
type runSlot struct {
	b    bench.Benchmark
	mode bench.Mode
	name string
}

// key is the slot's stable journal key.
func (s runSlot) key() string { return s.name + "|" + s.mode.String() }

// sweepSlots builds the sweep's run slots: every registered benchmark
// (filtered by only when non-nil) in copy and limited-copy mode plus its
// extra modes, in the registry's stable order.
func sweepSlots(only map[string]bool) []runSlot {
	var slots []runSlot
	for _, b := range bench.All() {
		name := b.Info().FullName()
		if only != nil && !only[name] {
			continue
		}
		slots = append(slots, runSlot{b, bench.ModeCopy, name}, runSlot{b, bench.ModeLimitedCopy, name})
		for _, m := range b.Info().ExtraModes {
			slots = append(slots, runSlot{b, m, name})
		}
	}
	return slots
}

func onlySet(only []string) map[string]bool {
	if only == nil {
		return nil
	}
	set := map[string]bool{}
	for _, n := range only {
		set[n] = true
	}
	return set
}

// SweepFingerprint hashes everything that determines a sweep's results:
// the simulated system configurations, the input size, the ordered
// (benchmark, mode) slot list, the fault plan, the per-run budgets, and
// whether tracing is on. A journal is only resumable under the identical
// fingerprint — anything here changing means the recorded outcomes belong
// to a different experiment. The worker count is deliberately excluded:
// results are identical for every value of Jobs, so a sweep checkpointed
// with -jobs 8 may resume with -jobs 1.
func SweepFingerprint(size bench.Size, opts SweepOpts) string {
	var fp journal.Fingerprint
	fp.Add("version", strconv.Itoa(journal.Version))
	// The compiled-in system configurations: a code change to either
	// simulated machine invalidates old journals.
	fp.Add("discrete", fmt.Sprintf("%+v", config.DiscreteGPU()))
	fp.Add("hetero", fmt.Sprintf("%+v", config.HeteroProcessor()))
	fp.Add("size", size.String())
	// Each benchmark's full organization list, explicitly. The slot list
	// below already encodes it implicitly, but hashing the mode set by
	// name guarantees a journal or cache entry written before a benchmark
	// gained (or lost) an organization can never alias the new sweep, even
	// if slot enumeration is ever restructured.
	only := onlySet(opts.Only)
	for _, b := range bench.All() {
		info := b.Info()
		if only != nil && !only[info.FullName()] {
			continue
		}
		line := info.FullName()
		for _, m := range info.Modes() {
			line += " " + m.String()
		}
		fp.Add("modes", line)
	}
	for _, s := range sweepSlots(only) {
		fp.Add("slot", s.key())
	}
	fp.Add("fault", opts.Fault.String())
	fp.Add("max_events", strconv.FormatUint(opts.Budget.MaxEvents, 10))
	fp.Add("timeout", opts.Budget.Timeout.String())
	fp.Add("stall", opts.Stall.String())
	fp.Add("trace", strconv.FormatBool(opts.Trace))
	return fp.Sum()
}

// OpenState opens (or creates) the sweep checkpoint journal in state dir
// for the given sweep configuration. With resume set, an existing journal
// is replayed — its outcomes come back through the returned log and
// RunSweep skips those runs — after validating that it was written by
// this command under the identical configuration. Without resume, any
// existing journal is discarded and a fresh one begins. The directory is
// created if missing.
func OpenState(dir string, resume bool, size bench.Size, opts SweepOpts) (*harness.RunLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state dir: %w", err)
	}
	return OpenStateAt(filepath.Join(dir, journalFile), JournalKind, resume, size, opts)
}

// OpenStateAt is OpenState for callers that manage their own journal
// placement and identity: path names the journal file itself and kind
// stamps the producing command. The hetsimd server uses this to key one
// journal per request fingerprint inside its state directory, where
// OpenState's one-fixed-file-per-dir layout would make concurrent
// requests fight over a single journal. The parent directory must exist.
func OpenStateAt(path, kind string, resume bool, size bench.Size, opts SweepOpts) (*harness.RunLog, error) {
	return OpenStateAtFS(fsx.OS, path, kind, resume, size, opts)
}

// OpenStateAtFS is OpenStateAt over an injectable filesystem: the daemon
// routes its checkpoint journals through its fsx seam so the chaos suite
// can fail any persistence op underneath a live sweep.
func OpenStateAtFS(fsys fsx.FS, path, kind string, resume bool, size bench.Size, opts SweepOpts) (*harness.RunLog, error) {
	fingerprint := SweepFingerprint(size, opts)
	slots := sweepSlots(onlySet(opts.Only))
	names := make([]string, len(slots))
	for i, s := range slots {
		names[i] = s.key()
	}
	if resume {
		return harness.OpenRunLogOn(fsys, path, kind, fingerprint, names)
	}
	return harness.CreateRunLogOn(fsys, path, kind, fingerprint, names)
}
