package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/journal"
)

// resumeOpts is the shared sweep shape of the checkpoint/resume tests:
// small, serial, and with a restricted benchmark list so the three sweeps
// (clean, interrupted, resumed) stay quick.
func resumeOpts() SweepOpts {
	return SweepOpts{
		Only: []string{"rodinia/backprop", "rodinia/kmeans", "rodinia/bfs"},
		Jobs: 1,
	}
}

// zeroWalls clears wall-clock durations, the one nondeterministic field,
// before document comparison.
func zeroWalls(r *Results) {
	for i := range r.Runs {
		r.Runs[i].Wall = 0
	}
	for i := range r.Failed {
		r.Failed[i].Wall = 0
	}
}

// TestSweepCheckpointResume is the in-process resume acceptance test: a
// sweep canceled partway, then resumed from its journal, must produce
// figures and a JSON document identical to an uninterrupted sweep — and
// must not re-execute the journaled runs.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()

	clean, _ := RunSweep(bench.SizeSmall, resumeOpts())

	// Interrupted sweep: cancel dispatch after the third run starts. The
	// in-flight run drains and journals (graceful-shutdown contract), so
	// the journal ends up with the first three runs.
	opts := resumeOpts()
	state, err := OpenState(dir, false, bench.SizeSmall, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	opts.State = state
	opts.Ctx = ctx
	opts.OnProgress = func(name, mode string) {
		if started.Add(1) == 3 {
			cancel()
		}
	}
	partial, _ := RunSweep(bench.SizeSmall, opts)
	cancel()
	if err := state.Close(); err != nil {
		t.Fatal(err)
	}
	if len(partial.Skipped) == 0 {
		t.Fatal("canceled sweep skipped nothing; cancellation came too late to test resume")
	}
	if got := int(started.Load()); got != 3 {
		t.Fatalf("interrupted sweep executed %d runs, want 3", got)
	}
	if len(partial.Runs)+len(partial.Skipped) != len(clean.Runs) {
		t.Fatalf("partial sweep accounts for %d+%d runs, clean has %d",
			len(partial.Runs), len(partial.Skipped), len(clean.Runs))
	}

	// Resumed sweep: replays the journal, runs only the remainder.
	opts = resumeOpts()
	state, err = OpenState(dir, true, bench.SizeSmall, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()
	if !state.Resumed() || state.ReplayedCount() != 3 {
		t.Fatalf("resumed=%v replayed=%d, want true/3", state.Resumed(), state.ReplayedCount())
	}
	var resumedRuns atomic.Int32
	opts.State = state
	opts.OnProgress = func(name, mode string) { resumedRuns.Add(1) }
	resumed, _ := RunSweep(bench.SizeSmall, opts)

	if got := int(resumedRuns.Load()); got != len(clean.Runs)-3 {
		t.Fatalf("resumed sweep executed %d runs, want %d", got, len(clean.Runs)-3)
	}
	if len(resumed.Skipped) != 0 {
		t.Fatalf("resumed sweep skipped %v", resumed.Skipped)
	}

	// Byte-identity: every figure and the whole JSON doc.
	for name, render := range map[string]func(*Results) string{
		"fig4": Fig4Text, "fig5": Fig5Text, "fig6": Fig6Text,
		"fig7": Fig7Text, "fig8": Fig8Text, "fig9": Fig9Text,
	} {
		if a, b := render(clean), render(resumed); a != b {
			t.Fatalf("%s differs between clean and resumed sweep:\n--- clean\n%s\n--- resumed\n%s", name, a, b)
		}
	}
	zeroWalls(clean)
	zeroWalls(resumed)
	aj, _ := json.Marshal(clean.JSON())
	bj, _ := json.Marshal(resumed.JSON())
	if string(aj) != string(bj) {
		t.Fatal("JSON export differs between clean and resumed sweep")
	}
}

// TestOpenStateFingerprintMismatch: resuming under a changed sweep
// configuration is rejected, not silently spliced.
func TestOpenStateFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	opts := resumeOpts()
	state, err := OpenState(dir, false, bench.SizeSmall, opts)
	if err != nil {
		t.Fatal(err)
	}
	state.Close()

	changed := resumeOpts()
	changed.Only = changed.Only[:2] // different benchmark list
	if _, err := OpenState(dir, true, bench.SizeSmall, changed); !errors.Is(err, journal.ErrFingerprint) {
		t.Fatalf("changed bench list: got %v, want ErrFingerprint", err)
	}

	sized := resumeOpts()
	if _, err := OpenState(dir, true, bench.SizeMedium, sized); !errors.Is(err, journal.ErrFingerprint) {
		t.Fatalf("changed size: got %v, want ErrFingerprint", err)
	}

	// The identical configuration resumes fine.
	state, err = OpenState(dir, true, bench.SizeSmall, resumeOpts())
	if err != nil {
		t.Fatalf("identical config rejected: %v", err)
	}
	state.Close()
}

// TestSweepFingerprintIgnoresJobs: results are identical for every worker
// count, so a journal written at one -jobs value must resume at another.
func TestSweepFingerprintIgnoresJobs(t *testing.T) {
	a := resumeOpts()
	a.Jobs = 1
	b := resumeOpts()
	b.Jobs = 8
	if SweepFingerprint(bench.SizeSmall, a) != SweepFingerprint(bench.SizeSmall, b) {
		t.Fatal("fingerprint must not depend on the worker count")
	}
	c := resumeOpts()
	c.Stall = 1 // any behavioral knob must change it
	if SweepFingerprint(bench.SizeSmall, a) == SweepFingerprint(bench.SizeSmall, c) {
		t.Fatal("fingerprint must cover the stall window")
	}
}

// TestFingerprintExcludesParallel: the intra-run worker count is the same
// kind of scheduling knob as Jobs — byte-identical results for every value
// — so a journal written serially must resume under -par and vice versa.
func TestFingerprintExcludesParallel(t *testing.T) {
	a := resumeOpts()
	a.Parallel = 0
	b := resumeOpts()
	b.Parallel = 8
	if SweepFingerprint(bench.SizeSmall, a) != SweepFingerprint(bench.SizeSmall, b) {
		t.Fatal("fingerprint must not depend on the intra-run worker count")
	}
}

// modeSetBench is a registry stub whose organization list can change
// between fingerprint computations, modeling a benchmark gaining or
// losing an extra mode across code versions. It is never swept (every
// sweep in this package restricts Only), so Run stays unreachable.
type modeSetBench struct {
	extra []bench.Mode
}

func (b *modeSetBench) Info() bench.Info {
	return bench.Info{Suite: "zz_test", Name: "modeset", Desc: "fingerprint mode-set stub", ExtraModes: b.extra}
}

func (b *modeSetBench) Run(s *device.System, mode bench.Mode, size bench.Size) {
	panic("modeSetBench must never run")
}

// TestFingerprintCoversModeSet: a benchmark's organization list is part
// of the sweep fingerprint, so a journal (or cache entry keyed by the
// fingerprint) recorded before the benchmark gained an extra mode can
// never alias the new sweep — resume is rejected with ErrFingerprint,
// which the CLI maps to exit 2.
func TestFingerprintCoversModeSet(t *testing.T) {
	stub := &modeSetBench{}
	bench.Register(stub)
	opts := SweepOpts{Only: []string{"zz_test/modeset"}, Jobs: 1}

	dir := t.TempDir()
	state, err := OpenState(dir, false, bench.SizeSmall, opts)
	if err != nil {
		t.Fatal(err)
	}
	state.Close()
	before := SweepFingerprint(bench.SizeSmall, opts)

	// The benchmark gains async-streams support; the fingerprint moves
	// and the old journal no longer resumes.
	stub.extra = []bench.Mode{bench.ModeAsyncStreams}
	if after := SweepFingerprint(bench.SizeSmall, opts); after == before {
		t.Fatal("fingerprint must cover the benchmark's organization list")
	}
	if _, err := OpenState(dir, true, bench.SizeSmall, opts); !errors.Is(err, journal.ErrFingerprint) {
		t.Fatalf("changed mode set: got %v, want ErrFingerprint", err)
	}

	// Restoring the original mode set resumes fine.
	stub.extra = nil
	state, err = OpenState(dir, true, bench.SizeSmall, opts)
	if err != nil {
		t.Fatalf("restored mode set rejected: %v", err)
	}
	state.Close()
}

// TestOpenStateJournalOnDisk pins the journal file location the docs
// promise (-state DIR writes DIR/sweep.journal).
func TestOpenStateJournalOnDisk(t *testing.T) {
	dir := t.TempDir()
	state, err := OpenState(filepath.Join(dir, "nested", "state"), false, bench.SizeSmall, resumeOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer state.Close()
	want := filepath.Join(dir, "nested", "state", "sweep.journal")
	if state.Path() != want {
		t.Fatalf("journal at %s, want %s", state.Path(), want)
	}
}
