package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
)

// FaultCase pairs one benchmark run with one injected hardware fault,
// chosen so the fault hits the run's bottleneck component: a throttled
// PCIe link against the copy-dominated kmeans, a slow page-fault handler
// against srad (the paper's worst fault victim), and a stalled DRAM
// channel against the bandwidth-bound spmv.
type FaultCase struct {
	Label string
	Bench string
	Mode  bench.Mode
	Plan  harness.FaultPlan
}

// FaultCases is the -exp faults degradation matrix.
func FaultCases() []FaultCase {
	return []FaultCase{
		{
			Label: "pcie-throttle", Bench: "rodinia/kmeans", Mode: bench.ModeCopy,
			Plan: harness.FaultPlan{PCIeBWFrac: 0.25},
		},
		{
			Label: "slow-fault-handler", Bench: "rodinia/srad", Mode: bench.ModeLimitedCopy,
			Plan: harness.FaultPlan{FaultLatMult: 8},
		},
		{
			Label: "dram-channel-stall", Bench: "parboil/spmv", Mode: bench.ModeLimitedCopy,
			Plan: harness.FaultPlan{DRAMStallChannel: 0, DRAMStallStartUs: 0, DRAMStallEndUs: 400},
		},
	}
}

// FaultRow is one fault case's paired baseline and injected runs. Either
// report may be nil when the corresponding run failed; the failures are in
// Errs.
type FaultRow struct {
	Case     FaultCase
	Baseline *core.Report
	Injected *core.Report
	Errs     []harness.RunError
}

// Slowdown is injected ROI over baseline ROI (0 when either run failed).
func (fr *FaultRow) Slowdown() float64 {
	if fr.Baseline == nil || fr.Injected == nil || fr.Baseline.ROI <= 0 {
		return 0
	}
	return float64(fr.Injected.ROI) / float64(fr.Baseline.ROI)
}

// ModelsFinite reports whether both runs completed with positive, finite
// ROI and model estimates (Eq. 1 Rco, Eqs. 2-4 Rmc) — the acceptance
// check that fault injection degrades the simulated machine without
// breaking the analytical models.
func (fr *FaultRow) ModelsFinite() bool {
	ok := func(r *core.Report) bool {
		if r == nil {
			return false
		}
		for _, v := range []float64{float64(r.ROI), float64(r.Rco), float64(r.Rmc)} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	return ok(fr.Baseline) && ok(fr.Injected)
}

// FaultSweep runs every fault case twice — nominal hardware and injected
// fault — under the harness, so even a fault that wedges the simulated
// machine terminates with a diagnostic instead of hanging the sweep.
func FaultSweep(size bench.Size, budget harness.Budget) []FaultRow {
	var rows []FaultRow
	for _, fc := range FaultCases() {
		b, ok := bench.Get(fc.Bench)
		if !ok {
			continue
		}
		row := FaultRow{Case: fc}
		run := func(plan *harness.FaultPlan) *core.Report {
			out := harness.Run(harness.Spec{Bench: b, Mode: fc.Mode, Size: size, Budget: budget, Fault: plan})
			if out.Err != nil {
				row.Errs = append(row.Errs, *out.Err)
				return nil
			}
			return out.Report
		}
		row.Baseline = run(nil)
		plan := fc.Plan
		row.Injected = run(&plan)
		rows = append(rows, row)
	}
	return rows
}

// FaultSweepText renders the fault-injection experiment.
func FaultSweepText(rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAULT INJECTION. Degraded hardware vs nominal (ROI slowdown; models must stay finite)\n")
	fmt.Fprintf(&b, "%-20s %-24s %-14s %-22s %9s %9s %9s  %s\n",
		"fault", "benchmark", "mode", "plan", "base-ms", "inj-ms", "slowdown", "models")
	for i := range rows {
		fr := &rows[i]
		base, inj := "failed", "failed"
		if fr.Baseline != nil {
			base = fmt.Sprintf("%9.3f", fr.Baseline.ROI.Millis())
		}
		if fr.Injected != nil {
			inj = fmt.Sprintf("%9.3f", fr.Injected.ROI.Millis())
		}
		models := "finite"
		if !fr.ModelsFinite() {
			models = "BROKEN"
		}
		plan := fr.Case.Plan
		fmt.Fprintf(&b, "%-20s %-24s %-14s %-22s %9s %9s %8.2fx  %s\n",
			fr.Case.Label, fr.Case.Bench, fr.Case.Mode, plan.String(), base, inj, fr.Slowdown(), models)
		for _, e := range fr.Errs {
			fmt.Fprintf(&b, "† %s (%s) failed [%s]: %s\n", e.Benchmark, e.Mode, e.Kind, e.Msg)
		}
	}
	return b.String()
}
