// Package experiments regenerates every table and figure of the paper's
// evaluation from simulation runs: Table I (system parameters), Table II
// (pipeline-construct census), Figure 3 (kmeans case study), Figures 4-6
// (footprint / off-chip accesses / run-time activity, copy vs limited-copy),
// Figures 7-8 (component-overlap and migrated-compute estimates), and
// Figure 9 (off-chip access classification).
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stats"
)

// Results caches one full sweep: every benchmark in copy and limited-copy
// mode, plus the restructured organizations where implemented. Sweeps are
// fault-tolerant: runs that fail land in Failed instead of aborting the
// sweep, and the figure renderers footnote them.
type Results struct {
	Size bench.Size
	// Copy and Limited are keyed by full benchmark name.
	Copy    map[string]*core.Report
	Limited map[string]*core.Report
	// Extra[mode] holds restructured-organization runs.
	Extra map[bench.Mode]map[string]*core.Report
	// Failed records every run that did not complete.
	Failed []harness.RunError
	// Notes records retry substitutions (e.g. a budget-exceeded medium run
	// that reran at small).
	Notes []string
}

// SweepOpts configures a fault-tolerant sweep.
type SweepOpts struct {
	// Budget bounds each individual run (zero fields: unlimited).
	Budget harness.Budget
	// Fault injects hardware degradations into every run.
	Fault *harness.FaultPlan
	// Only restricts the sweep to these full benchmark names (nil: all).
	Only []string
	// OnProgress is called before each run.
	OnProgress func(name, mode string)
	// PerRun, if set, may adjust each run's spec before it executes — the
	// hook tests use to force a specific benchmark to fail.
	PerRun func(spec *harness.Spec)
}

// Run executes the full sweep with default options. Failed runs come back
// in the error slice (and in Results.Failed); completed runs are unaffected.
func Run(size bench.Size, onProgress func(name, mode string)) (*Results, []harness.RunError) {
	return RunSweep(size, SweepOpts{OnProgress: onProgress})
}

// RunSweep executes a fault-tolerant sweep: every selected benchmark in
// copy and limited-copy mode plus its extra modes, each isolated under
// harness.Run so one failing benchmark cannot abort the rest.
func RunSweep(size bench.Size, opts SweepOpts) (*Results, []harness.RunError) {
	r := &Results{
		Size:    size,
		Copy:    map[string]*core.Report{},
		Limited: map[string]*core.Report{},
		Extra: map[bench.Mode]map[string]*core.Report{
			bench.ModeAsyncStreams:    {},
			bench.ModeParallelChunked: {},
		},
	}
	var only map[string]bool
	if opts.Only != nil {
		only = map[string]bool{}
		for _, n := range opts.Only {
			only[n] = true
		}
	}
	runInto := func(dst map[string]*core.Report, b bench.Benchmark, m bench.Mode) {
		name := b.Info().FullName()
		if opts.OnProgress != nil {
			opts.OnProgress(name, m.String())
		}
		spec := harness.Spec{Bench: b, Mode: m, Size: size, Budget: opts.Budget, Fault: opts.Fault}
		if opts.PerRun != nil {
			opts.PerRun(&spec)
		}
		out := harness.Run(spec)
		if out.Err != nil {
			r.Failed = append(r.Failed, *out.Err)
			return
		}
		dst[name] = out.Report
		if out.Degraded {
			r.Notes = append(r.Notes, fmt.Sprintf("%s (%s) ran at size %s after exceeding its budget at %s",
				name, m, out.Size, size))
		}
	}
	for _, b := range bench.All() {
		if only != nil && !only[b.Info().FullName()] {
			continue
		}
		runInto(r.Copy, b, bench.ModeCopy)
		runInto(r.Limited, b, bench.ModeLimitedCopy)
		for _, m := range b.Info().ExtraModes {
			runInto(r.Extra[m], b, m)
		}
	}
	return r, r.Failed
}

// Names lists benchmark names with both copy and limited-copy runs
// completed, sorted — the rows the comparative figures can render. Failed
// benchmarks are footnoted instead (see footnotes).
func (r *Results) Names() []string {
	out := make([]string, 0, len(r.Copy))
	for n := range r.Copy {
		if _, ok := r.Limited[n]; ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// footnotes renders the failed-run and substitution footnotes appended to
// every figure of a partial sweep.
func (r *Results) footnotes() string {
	if len(r.Failed) == 0 && len(r.Notes) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range r.Failed {
		fmt.Fprintf(&b, "† %s (%s) failed [%s]: %s\n", e.Benchmark, e.Mode, e.Kind, e.Msg)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "‡ %s\n", n)
	}
	return b.String()
}

// geomean of a slice of positive ratios. Non-finite entries (the residue
// of failed or degenerate runs) are skipped so partial sweeps never emit
// NaN into a figure; non-positive entries are clamped.
func geomean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// pct guards a percentage against a zero or non-finite denominator: failed
// or empty runs must render as 0%, never NaN/Inf.
func pct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	v := 100 * num / den
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Table1 renders the Table I system parameters.
func Table1() string {
	var b strings.Builder
	d, h := config.DiscreteGPU(), config.HeteroProcessor()
	fmt.Fprintf(&b, "TABLE I. HETEROGENEOUS SYSTEM PARAMETERS\n")
	fmt.Fprintf(&b, "%-22s %s\n", "Component", "Parameters")
	fmt.Fprintf(&b, "%-22s (%d) %d-wide out-of-order, x86-like, %.1fGHz, %.0f GFLOP/s peak each\n",
		"CPU cores", d.CPU.Cores, d.CPU.IssueWidth, d.CPU.ClockHz/1e9, d.CPU.PeakFLOPs()/float64(d.CPU.Cores)/1e9)
	fmt.Fprintf(&b, "%-22s per-core %dkB L1I + %dkB L1D, private %dkB L2, %dB lines\n",
		"CPU caches", d.CPU.L1IBytes/1024, d.CPU.L1DBytes/1024, d.CPU.L2Bytes/1024, d.LineBytes)
	fmt.Fprintf(&b, "%-22s (%d) %d CTAs, %d warps of %d threads, %.0fMHz, %.1f GFLOP/s peak each\n",
		"GPU cores (SMs)", d.GPU.SMs, d.GPU.MaxCTAsPerSM, d.GPU.MaxWarpsPerSM, d.GPU.WarpSize,
		d.GPU.ClockHz/1e6, d.GPU.PeakFLOPs()/float64(d.GPU.SMs)/1e9)
	fmt.Fprintf(&b, "%-22s %dkB scratch + %dkB L1 per SM; shared %dkB L2, %d banks\n",
		"GPU caches", d.GPU.ScratchBytesPkSM/1024, d.GPU.L1Bytes/1024, d.GPU.L2Bytes/1024, d.GPU.L2Banks)
	fmt.Fprintf(&b, "-- Discrete GPU system --\n")
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak\n", "CPU memory", d.CPUMem.Channels, d.CPUMem.Name, d.CPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak\n", "GPU memory", d.GPUMem.Channels, d.GPUMem.Name, d.GPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s %.0f GB/s peak, GPU-local page faults\n", "PCI Express", d.PCIe.BytesPerSec/1e9)
	fmt.Fprintf(&b, "-- Heterogeneous CPU-GPU processor --\n")
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak, shared\n", "Memory", h.GPUMem.Channels, h.GPUMem.Name, h.GPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s coherent 12-port switch, c2c %.0fns; GPU faults CPU-handled (%.1fus)\n",
		"Interconnect", h.CacheToCacheNs, h.VM.CPUFaultServUs)
	return b.String()
}

// Table2Text renders Table II from the census.
func Table2Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II. PRODUCER-CONSUMER RELATIONSHIPS IN BENCHMARKS\n")
	fmt.Fprintf(&b, "%-10s %5s %8s %6s %8s %9s %8s\n", "Suite", "Num", "P-CComm", "Pipe", "Regular", "Irregular", "SWQueue")
	rows := bench.Table2()
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d %8d %6d %8d %9d %8d\n",
			r.Suite, r.Num, r.PCComm, r.PipeParal, r.Regular, r.Irreg, r.SWQue)
	}
	tot := rows[len(rows)-1]
	fmt.Fprintf(&b, "%-10s %5s %7.0f%% %5.0f%% %7.0f%% %8.0f%% %7.0f%%\n", "portion", "100%",
		100*float64(tot.PCComm)/float64(tot.Num), 100*float64(tot.PipeParal)/float64(tot.Num),
		100*float64(tot.Regular)/float64(tot.Num), 100*float64(tot.Irreg)/float64(tot.Num),
		100*float64(tot.SWQue)/float64(tot.Num))
	return b.String()
}

// Fig3Row is one kmeans organization of Figure 3.
type Fig3Row struct {
	Org       string
	Estimated bool
	RunTime   float64 // normalized to baseline
	GPUUtil   float64
}

// Fig3 runs the kmeans case study organizations and returns normalized run
// times: Baseline (copy), Asynchronous Copy (streams), No Memory Copy
// (limited), Parallel (Eq. 1 estimate on the no-copy run, starred), and
// Parallel + Cache (simulated chunked producer-consumer). Each organization
// runs under the harness: a failed run is dropped from the rows and comes
// back as a RunError for Fig3Text to footnote. If the Baseline itself fails
// there is nothing to normalize against and no rows are returned.
func Fig3(size bench.Size, budget harness.Budget) ([]Fig3Row, []harness.RunError) {
	km, _ := bench.Get("rodinia/kmeans")
	var errs []harness.RunError
	run := func(m bench.Mode) *core.Report {
		out := harness.Run(harness.Spec{Bench: km, Mode: m, Size: size, Budget: budget})
		if out.Err != nil {
			errs = append(errs, *out.Err)
			return nil
		}
		return out.Report
	}
	base := run(bench.ModeCopy)
	async := run(bench.ModeAsyncStreams)
	nocopy := run(bench.ModeLimitedCopy)
	parcache := run(bench.ModeParallelChunked)
	if base == nil {
		return nil, errs
	}

	norm := func(r *core.Report) float64 { return float64(r.ROI) / float64(base.ROI) }
	rows := []Fig3Row{{"Baseline", false, 1.0, base.GPUUtil}}
	if async != nil {
		rows = append(rows, Fig3Row{"Asynchronous Copy", false, norm(async), async.GPUUtil})
	}
	if nocopy != nil {
		rows = append(rows, Fig3Row{"No Memory Copy", false, norm(nocopy), nocopy.GPUUtil})
		// "Parallel" is the paper's analytical estimate: overlapped CPU and
		// GPU on the no-copy organization.
		parEst := float64(nocopy.Rco) / float64(base.ROI)
		parUtil := nocopy.GPUUtil * float64(nocopy.ROI) / float64(nocopy.Rco)
		if parUtil > 1 {
			parUtil = 1
		}
		rows = append(rows, Fig3Row{"Parallel", true, parEst, parUtil})
	}
	if parcache != nil {
		rows = append(rows, Fig3Row{"Parallel + Cache", false, norm(parcache), parcache.GPUUtil})
	}
	return rows, errs
}

// Fig3Text renders Figure 3, footnoting organizations that failed to run.
func Fig3Text(rows []Fig3Row, errs []harness.RunError) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 3. Kmeans run times by organization (normalized to Baseline; * = estimated)\n")
	for _, r := range rows {
		star := " "
		if r.Estimated {
			star = "*"
		}
		fmt.Fprintf(&b, "  %-20s%s %6.3f   GPU util %5.1f%%  %s\n",
			r.Org, star, r.RunTime, 100*r.GPUUtil, bar(r.RunTime, 40))
	}
	if len(rows) == 0 {
		fmt.Fprintf(&b, "  (baseline failed; nothing to normalize against)\n")
	}
	for _, e := range errs {
		fmt.Fprintf(&b, "† %s (%s) failed [%s]: %s\n", e.Benchmark, e.Mode, e.Kind, e.Msg)
	}
	return b.String()
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > 2*width {
		n = 2 * width
	}
	return strings.Repeat("#", n)
}

// Fig4Text renders the footprint partition figure: per benchmark, the
// touched footprint by exclusive component subset, copy and limited-copy
// bars normalized to the copy total.
func Fig4Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. Memory footprint by component set (normalized to copy total)\n")
	fmt.Fprintf(&b, "%-24s %-8s %7s  %s\n", "benchmark", "version", "total", "CPU/GPU/Copy/CPU+GPU/CPU+Copy/GPU+Copy/all")
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.FootprintBytes)
		label := name
		row := func(rep *core.Report, version string) {
			fracs := make([]string, 0, 7)
			for _, set := range stats.AllComponentSets() {
				fracs = append(fracs, fmt.Sprintf("%4.1f%%", pct(float64(rep.Footprint[set]), denom)))
			}
			fmt.Fprintf(&b, "%-24s %-8s %6.1f%%  %s\n", label, version,
				pct(float64(rep.FootprintBytes), denom), strings.Join(fracs, " "))
			label = ""
		}
		row(cv, "copy")
		row(lv, "limited")
	}
	var reds []float64
	for _, name := range r.Names() {
		reds = append(reds, float64(r.Limited[name].FootprintBytes)/float64(r.Copy[name].FootprintBytes))
	}
	fmt.Fprintf(&b, "geomean limited-copy footprint: %.1f%% of copy footprint\n", 100*geomean(reds))
	b.WriteString(r.footnotes())
	return b.String()
}

// Fig5Text renders the off-chip access breakdown by component.
func Fig5Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5. Off-chip memory accesses by component (normalized to copy total)\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %9s | %9s %9s   %s\n", "benchmark", "cpu", "gpu", "copy", "lim-cpu", "lim-gpu", "lim-total")
	var copyShares, totalReds []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.TotalDRAM())
		fmt.Fprintf(&b, "%-24s %8.1f%% %8.1f%% %8.1f%% | %8.1f%% %8.1f%%   %6.1f%%\n", name,
			pct(float64(cv.DRAMAccesses[stats.CPU]), denom),
			pct(float64(cv.DRAMAccesses[stats.GPU]), denom),
			pct(float64(cv.DRAMAccesses[stats.Copy]), denom),
			pct(float64(lv.DRAMAccesses[stats.CPU]), denom),
			pct(float64(lv.DRAMAccesses[stats.GPU]), denom),
			pct(float64(lv.TotalDRAM()), denom))
		copyShares = append(copyShares, float64(cv.DRAMAccesses[stats.Copy])/denom)
		totalReds = append(totalReds, float64(lv.TotalDRAM())/denom)
	}
	fmt.Fprintf(&b, "geomean copy-access share of copy version: %.1f%%\n", 100*geomean(copyShares))
	fmt.Fprintf(&b, "geomean limited-copy total accesses: %.1f%% of copy version\n", 100*geomean(totalReds))
	b.WriteString(r.footnotes())
	return b.String()
}

// Fig6Text renders the run-time component-activity breakdown.
func Fig6Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 6. Run-time component activity (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %-8s %7s %7s %7s %7s %8s %6s\n", "benchmark", "version", "total", "copyact", "cpuact", "gpuact", "overlap", "idle")
	var runReds []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.ROI)
		label := name
		row := func(rep *core.Report, version string) {
			overlap := float64(rep.Breakdown.Total()) - float64(rep.Breakdown.Idle()) -
				float64(rep.Breakdown.Exclusive(stats.CPU)) - float64(rep.Breakdown.Exclusive(stats.GPU)) - float64(rep.Breakdown.Exclusive(stats.Copy))
			fmt.Fprintf(&b, "%-24s %-8s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7.1f%% %5.1f%%\n", label, version,
				pct(float64(rep.ROI), denom),
				pct(float64(rep.Breakdown.Exclusive(stats.Copy)), denom),
				pct(float64(rep.Breakdown.Exclusive(stats.CPU)), denom),
				pct(float64(rep.Breakdown.Exclusive(stats.GPU)), denom),
				pct(overlap, denom),
				pct(float64(rep.Breakdown.Idle()), denom))
			label = ""
		}
		row(cv, "copy")
		row(lv, "limited")
		runReds = append(runReds, float64(lv.ROI)/float64(cv.ROI))
	}
	fmt.Fprintf(&b, "geomean limited-copy run time: %.1f%% of copy (%.1f%% improvement)\n",
		100*geomean(runReds), 100*(1-geomean(runReds)))
	b.WriteString(r.footnotes())
	return b.String()
}

// Fig7Text renders the component-overlap (Eq. 1) estimates.
func Fig7Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 7. Component-overlap run-time estimates, Eq. 1 (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %10s %11s %12s %13s\n", "benchmark", "copy Rco", "copy gain", "limited Rco", "limited gain")
	var gains []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.ROI)
		fmt.Fprintf(&b, "%-24s %9.1f%% %10.1f%% %11.1f%% %12.1f%%\n", name,
			pct(float64(cv.Rco), denom), 100-pct(float64(cv.Rco), float64(cv.ROI)),
			pct(float64(lv.Rco), denom), 100-pct(float64(lv.Rco), float64(lv.ROI)))
		gains = append(gains, float64(cv.Rco)/float64(cv.ROI))
	}
	fmt.Fprintf(&b, "geomean copy-version overlap gain: %.1f%%\n", 100*(1-geomean(gains)))

	// Validation against the restructured implementations (Section V-A).
	fmt.Fprintf(&b, "validation (measured restructured vs estimate):\n")
	for _, name := range []string{"rodinia/backprop", "rodinia/kmeans", "rodinia/streamcluster"} {
		if as, ok := r.Extra[bench.ModeAsyncStreams][name]; ok {
			if cv, ok := r.Copy[name]; ok && cv.Rco > 0 {
				est := cv.Rco
				fmt.Fprintf(&b, "  %-22s async-streams measured %6.3fms vs copy-Rco %6.3fms (%+.1f%%)\n",
					name, as.ROI.Millis(), est.Millis(), 100*(float64(as.ROI)-float64(est))/float64(est))
			}
		}
		if pc, ok := r.Extra[bench.ModeParallelChunked][name]; ok {
			if lv, ok := r.Limited[name]; ok && lv.Rco > 0 {
				est := lv.Rco
				fmt.Fprintf(&b, "  %-22s parallel-chunked measured %6.3fms vs limited-Rco %6.3fms (%+.1f%%)\n",
					name, pc.ROI.Millis(), est.Millis(), 100*(float64(pc.ROI)-float64(est))/float64(est))
			}
		}
	}
	b.WriteString(r.footnotes())
	return b.String()
}

// Fig8Text renders the migrated-compute (Eqs. 2-4) estimates.
func Fig8Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 8. Migrated-compute run-time estimates, Eqs. 2-4 (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %10s %12s %13s\n", "benchmark", "copy Rmc", "limited Rmc", "vs limited")
	var gains []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.ROI)
		fmt.Fprintf(&b, "%-24s %9.1f%% %11.1f%% %12.1f%%\n", name,
			pct(float64(cv.Rmc), denom), pct(float64(lv.Rmc), denom),
			100-pct(float64(lv.Rmc), float64(lv.ROI)))
		gains = append(gains, float64(lv.Rmc)/float64(lv.ROI))
	}
	fmt.Fprintf(&b, "geomean potential gain from migrating compute (limited-copy): %.1f%%\n", 100*(1-geomean(gains)))
	b.WriteString(r.footnotes())
	return b.String()
}

// Fig9Text renders the off-chip access classification.
func Fig9Text(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 9. Off-chip accesses by cause (%% of version's accesses; * = bandwidth-limited)\n")
	fmt.Fprintf(&b, "%-24s %-8s %9s %9s %8s %8s %8s %8s\n",
		"benchmark", "version", "compuls", "longrng", "W-Rspill", "R-Rspill", "W-Rcont", "R-Rcont")
	var rrConts, spills []float64
	for _, name := range r.Names() {
		label := name
		row := func(rep *core.Report, version string) {
			mark := " "
			if rep.BWLimitedFrac > 0.25 {
				mark = "*"
			}
			fmt.Fprintf(&b, "%-24s %-8s%s %8.1f%% %8.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", label, version, mark,
				100*rep.ClassFraction(core.ClassCompulsory),
				100*rep.ClassFraction(core.ClassLongRange),
				100*rep.ClassFraction(core.ClassWRSpill),
				100*rep.ClassFraction(core.ClassRRSpill),
				100*rep.ClassFraction(core.ClassWRContention),
				100*rep.ClassFraction(core.ClassRRContention))
			label = ""
		}
		row(r.Copy[name], "copy")
		lv := r.Limited[name]
		row(lv, "limited")
		rrConts = append(rrConts, lv.ClassFraction(core.ClassRRContention))
		spills = append(spills, lv.ClassFraction(core.ClassWRSpill)+lv.ClassFraction(core.ClassRRSpill))
	}
	var rrMean, spillMean float64
	if len(rrConts) > 0 {
		for i := range rrConts {
			rrMean += rrConts[i]
			spillMean += spills[i]
		}
		rrMean /= float64(len(rrConts))
		spillMean /= float64(len(spills))
	}
	fmt.Fprintf(&b, "mean R-R contention share (limited-copy): %.1f%%   mean spill share: %.1f%%\n",
		100*rrMean, 100*spillMean)
	b.WriteString(r.footnotes())
	return b.String()
}
