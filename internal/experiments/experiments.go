// Package experiments regenerates every table and figure of the paper's
// evaluation from simulation runs: Table I (system parameters), Table II
// (pipeline-construct census), Figure 3 (kmeans case study), Figures 4-6
// (footprint / off-chip accesses / run-time activity, copy vs limited-copy),
// Figures 7-8 (component-overlap and migrated-compute estimates), and
// Figure 9 (off-chip access classification).
//
// The pipeline has three stages. RunSweep executes every (benchmark, mode)
// run — each an isolated simulation — on a bounded worker pool
// (internal/sweep) and assembles the outcomes deterministically, so the
// Results are byte-for-byte identical for every worker count. The FigNRows
// functions (rows.go) reduce a sweep to typed rows plus summaries. The
// renderers (render.go, csv.go, json.go) format those rows as text
// figures, CSV, or JSON without touching a report again.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Results caches one full sweep: every benchmark in copy and limited-copy
// mode, plus the restructured organizations where implemented. Sweeps are
// fault-tolerant: runs that fail land in Failed instead of aborting the
// sweep, and the figure renderers footnote them.
type Results struct {
	Size bench.Size
	// Copy and Limited are keyed by full benchmark name.
	Copy    map[string]*core.Report
	Limited map[string]*core.Report
	// Extra[mode] holds restructured-organization runs.
	Extra map[bench.Mode]map[string]*core.Report
	// Failed records every run that did not complete, in the registry's
	// stable (benchmark, mode) order regardless of how many workers ran
	// the sweep.
	Failed []harness.RunError
	// Notes records retry substitutions (e.g. a budget-exceeded medium run
	// that reran at small), in the same stable order.
	Notes []string
	// Runs holds per-run telemetry for every run of the sweep — success
	// and failure alike — in the registry's stable (benchmark, mode)
	// order. Exported as the "runs" section of the -json sweep doc.
	Runs []RunMeta
	// Skipped names the runs that never executed because the sweep was
	// canceled before dispatching them (empty for a completed sweep), in
	// the same stable order. A resumed sweep re-runs exactly these.
	Skipped []string
	// Traces holds one named recorder per run, in the same stable order,
	// when the sweep ran with SweepOpts.Trace. Nil otherwise.
	Traces []trace.RunTrace
}

// RunMeta is one run's outcome telemetry: the core fields every run
// reports whether it succeeded or failed, traced or untraced.
type RunMeta struct {
	Benchmark string
	Mode      bench.Mode
	Size      bench.Size // size that actually ran (may be degraded)
	Attempts  int
	Degraded  bool
	Failed    bool
	SimTime   sim.Tick
	Events    uint64
	// Wall is the run's total wall-clock cost across attempts. For a run
	// replayed from a checkpoint journal this is the recorded cost of the
	// original execution, not the (near-zero) replay time.
	Wall time.Duration
	// Phases carries the stage-boundary counter snapshots of the final
	// attempt (nil when the run produced no report).
	Phases []core.PhaseSnapshot
}

// SweepOpts configures a fault-tolerant sweep.
type SweepOpts struct {
	// Budget bounds each individual run (zero fields: unlimited). Prefer
	// MaxEvents when comparing sweeps across worker counts: the event
	// budget is deterministic, while a wall-clock Timeout burns faster
	// when runs share the machine with other workers.
	Budget harness.Budget
	// Fault injects hardware degradations into every run.
	Fault *harness.FaultPlan
	// Only restricts the sweep to these full benchmark names (nil: all).
	Only []string
	// Jobs is the worker-pool size runs dispatch to: 0 means GOMAXPROCS,
	// 1 runs the sweep serially. Results are identical for every value.
	Jobs int
	// Parallel is each run's intra-run worker count (harness.Spec.
	// Parallel): 0 or 1 simulate serially; higher values pipeline trace
	// generation inside every run. Like Jobs it is a scheduling knob —
	// results are byte-identical for every value — so it is excluded from
	// the resume fingerprint.
	Parallel int
	// OnProgress is called before each run. The sweep serializes the
	// calls, so the callback needs no locking of its own, but when
	// Jobs > 1 the call order across benchmarks is scheduling-dependent.
	OnProgress func(name, mode string)
	// PerRun, if set, may adjust each run's spec before it executes — the
	// hook tests use to force a specific benchmark to fail. Each call
	// receives that run's private spec, but the hook itself must be safe
	// for concurrent use when Jobs > 1.
	PerRun func(spec *harness.Spec)
	// Trace records a per-run trace for every run; the recorders come back
	// in Results.Traces for export.
	Trace bool
	// Progress, when non-nil, receives live start/retry/finish lines for
	// every run. It writes to its own stream, so the sweep's primary
	// output is unaffected.
	Progress *sweep.Tracker
	// Ctx, when non-nil, cancels dispatch: once it is done, no further
	// run starts; in-flight runs drain to completion (and are journaled)
	// and the undone remainder comes back in Results.Skipped. A nil Ctx
	// never cancels.
	Ctx context.Context
	// RunCtx, when non-nil, cancels in-flight runs themselves: each run's
	// engine polls it and aborts as a KindCanceled failure. The commands
	// wire this to the second interrupt signal. Independent of Ctx — a
	// graceful shutdown cancels only Ctx.
	RunCtx context.Context
	// State, when non-nil, is the crash-safe checkpoint journal: every
	// completed run is appended durably, and runs the journal already
	// holds are replayed instead of executed (see OpenState).
	State *harness.RunLog
	// Stall arms each run's stall watchdog: a run whose simulated time
	// stops advancing for this long while events churn is killed as
	// KindStalled instead of spinning forever. Zero disables it.
	Stall time.Duration
	// RequestID is the correlation ID of the request this sweep serves
	// (hetsimd threads the sanitized X-Request-Id here). It rides into
	// each run's harness spec, where it lands as a request_id arg on the
	// lifecycle trace instants. Never part of the fingerprint: it does
	// not affect results.
	RequestID string
}

// Run executes the full sweep with default options. Failed runs come back
// in the error slice (and in Results.Failed); completed runs are unaffected.
func Run(size bench.Size, onProgress func(name, mode string)) (*Results, []harness.RunError) {
	return RunSweep(size, SweepOpts{OnProgress: onProgress})
}

// RunSweep executes a fault-tolerant sweep: every selected benchmark in
// copy and limited-copy mode plus its extra modes, each isolated under
// harness.Run so one failing benchmark cannot abort the rest. Runs execute
// concurrently on opts.Jobs workers; because every run builds its own
// simulated machine and outcomes are collected per (benchmark, mode) slot
// and assembled in the registry's stable order, the Results — including
// the order of Failed and Notes — are identical for every worker count.
func RunSweep(size bench.Size, opts SweepOpts) (*Results, []harness.RunError) {
	r := &Results{
		Size:    size,
		Copy:    map[string]*core.Report{},
		Limited: map[string]*core.Report{},
		Extra: map[bench.Mode]map[string]*core.Report{
			bench.ModeAsyncStreams:    {},
			bench.ModeParallelChunked: {},
		},
	}
	// One slot per (benchmark, mode) run, in the registry's stable order —
	// the order the serial sweep ran in, and the order assembly below
	// walks regardless of which worker finishes first.
	slots := sweepSlots(onlySet(opts.Only))

	outs := make([]*harness.Outcome, len(slots))
	var recs []*trace.Recorder
	if opts.Trace {
		recs = make([]*trace.Recorder, len(slots))
		for i := range recs {
			recs[i] = trace.New()
		}
	}
	opts.Progress.SetTotal(len(slots))

	// Replay checkpointed runs before dispatch: a replayed slot is filled
	// from the journal and its task below degenerates to a no-op, so a
	// resumed sweep executes only the missing runs yet assembles the full
	// result set — byte-identical to an uninterrupted sweep.
	for i, s := range slots {
		if out := opts.State.Replayed(s.key()); out != nil {
			outs[i] = out
			opts.Progress.Replay(s.name + " " + s.mode.String())
		}
	}

	var progressMu sync.Mutex
	sweep.Each(opts.Ctx, opts.Jobs, len(slots), func(i int) {
		if outs[i] != nil {
			return // replayed from the journal
		}
		s := slots[i]
		runName := s.name + " " + s.mode.String()
		if opts.OnProgress != nil {
			progressMu.Lock()
			opts.OnProgress(s.name, s.mode.String())
			progressMu.Unlock()
		}
		opts.Progress.Start(runName)
		spec := harness.Spec{
			Bench: s.b, Mode: s.mode, Size: size, Budget: opts.Budget, Fault: opts.Fault,
			Ctx: opts.RunCtx, Stall: opts.Stall, RequestID: opts.RequestID,
			Parallel: opts.Parallel,
		}
		if opts.Trace {
			spec.Trace = recs[i]
		}
		if opts.Progress != nil {
			spec.OnRetry = func(next bench.Size, err *harness.RunError) {
				opts.Progress.Retry(runName, fmt.Sprintf("%s at %s, degrading to %s", err.Kind, err.Size, next))
			}
		}
		if opts.PerRun != nil {
			opts.PerRun(&spec)
		}
		outs[i] = harness.Run(spec)
		opts.State.Append(s.key(), outs[i])
		if opts.Progress != nil {
			out := outs[i]
			if out.Err != nil {
				opts.Progress.Finish(runName, false, out.Err.Kind.String()+": "+out.Err.Msg)
			} else {
				opts.Progress.Finish(runName, true, fmt.Sprintf("%.3f ms sim, %d events", out.SimTime.Millis(), out.Events))
			}
		}
	})
	opts.Progress.Summary()

	for i, s := range slots {
		out := outs[i]
		if out == nil {
			// Never dispatched: the sweep was canceled first. Not a
			// failure — a resumed sweep re-runs exactly these.
			r.Skipped = append(r.Skipped, s.name+" "+s.mode.String())
			continue
		}
		meta := RunMeta{
			Benchmark: s.name, Mode: s.mode, Size: out.Size,
			Attempts: out.Attempts, Degraded: out.Degraded, Failed: out.Err != nil,
			SimTime: out.SimTime, Events: out.Events, Wall: out.Wall,
		}
		if out.Report != nil {
			meta.Phases = out.Report.Phases
		}
		r.Runs = append(r.Runs, meta)
		if opts.Trace {
			r.Traces = append(r.Traces, trace.RunTrace{
				Name: s.name + " " + s.mode.String() + " " + out.Size.String(),
				Rec:  recs[i],
			})
		}
		if out.Err != nil {
			r.Failed = append(r.Failed, *out.Err)
			continue
		}
		var dst map[string]*core.Report
		switch s.mode {
		case bench.ModeCopy:
			dst = r.Copy
		case bench.ModeLimitedCopy:
			dst = r.Limited
		default:
			if r.Extra[s.mode] == nil {
				r.Extra[s.mode] = map[string]*core.Report{}
			}
			dst = r.Extra[s.mode]
		}
		dst[s.name] = out.Report
		if out.Degraded {
			r.Notes = append(r.Notes, fmt.Sprintf("%s (%s) ran at size %s after exceeding its budget at %s",
				s.name, s.mode, out.Size, size))
		}
	}
	return r, r.Failed
}

// Names lists benchmark names with both copy and limited-copy runs
// completed, sorted — the rows the comparative figures can render. Failed
// benchmarks are footnoted instead (see Footnotes).
func (r *Results) Names() []string {
	out := make([]string, 0, len(r.Copy))
	for n := range r.Copy {
		if _, ok := r.Limited[n]; ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Footnotes is the failed-run and substitution metadata appended to every
// rendered figure of a partial sweep — part of each figure's row data, in
// marshal-friendly form.
type Footnotes struct {
	Failed []harness.RunErrorJSON `json:"failed,omitempty"`
	Notes  []string               `json:"notes,omitempty"`
}

// Footnotes converts the sweep's failures and substitution notes for the
// renderers.
func (r *Results) Footnotes() Footnotes {
	fn := Footnotes{Notes: r.Notes}
	for i := range r.Failed {
		fn.Failed = append(fn.Failed, r.Failed[i].JSON())
	}
	return fn
}

// String renders the footnote block (empty for a full sweep): failed runs
// as † lines, substitutions as ‡ lines.
func (f Footnotes) String() string {
	if len(f.Failed) == 0 && len(f.Notes) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range f.Failed {
		fmt.Fprintf(&b, "† %s (%s) failed [%s]: %s\n", e.Benchmark, e.Mode, e.Kind, e.Msg)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "‡ %s\n", n)
	}
	return b.String()
}

// geomean of a slice of positive ratios. Non-finite entries (the residue
// of failed or degenerate runs) are skipped so partial sweeps never emit
// NaN into a figure; non-positive entries are clamped.
func geomean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// pct guards a percentage against a zero or non-finite denominator: failed
// or empty runs must render as 0%, never NaN/Inf.
func pct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	v := 100 * num / den
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Table1 renders the Table I system parameters.
func Table1() string {
	var b strings.Builder
	d, h := config.DiscreteGPU(), config.HeteroProcessor()
	fmt.Fprintf(&b, "TABLE I. HETEROGENEOUS SYSTEM PARAMETERS\n")
	fmt.Fprintf(&b, "%-22s %s\n", "Component", "Parameters")
	fmt.Fprintf(&b, "%-22s (%d) %d-wide out-of-order, x86-like, %.1fGHz, %.0f GFLOP/s peak each\n",
		"CPU cores", d.CPU.Cores, d.CPU.IssueWidth, d.CPU.ClockHz/1e9, d.CPU.PeakFLOPs()/float64(d.CPU.Cores)/1e9)
	fmt.Fprintf(&b, "%-22s per-core %dkB L1I + %dkB L1D, private %dkB L2, %dB lines\n",
		"CPU caches", d.CPU.L1IBytes/1024, d.CPU.L1DBytes/1024, d.CPU.L2Bytes/1024, d.LineBytes)
	fmt.Fprintf(&b, "%-22s (%d) %d CTAs, %d warps of %d threads, %.0fMHz, %.1f GFLOP/s peak each\n",
		"GPU cores (SMs)", d.GPU.SMs, d.GPU.MaxCTAsPerSM, d.GPU.MaxWarpsPerSM, d.GPU.WarpSize,
		d.GPU.ClockHz/1e6, d.GPU.PeakFLOPs()/float64(d.GPU.SMs)/1e9)
	fmt.Fprintf(&b, "%-22s %dkB scratch + %dkB L1 per SM; shared %dkB L2, %d banks\n",
		"GPU caches", d.GPU.ScratchBytesPkSM/1024, d.GPU.L1Bytes/1024, d.GPU.L2Bytes/1024, d.GPU.L2Banks)
	fmt.Fprintf(&b, "-- Discrete GPU system --\n")
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak\n", "CPU memory", d.CPUMem.Channels, d.CPUMem.Name, d.CPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak\n", "GPU memory", d.GPUMem.Channels, d.GPUMem.Name, d.GPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s %.0f GB/s peak, GPU-local page faults\n", "PCI Express", d.PCIe.BytesPerSec/1e9)
	fmt.Fprintf(&b, "-- Heterogeneous CPU-GPU processor --\n")
	fmt.Fprintf(&b, "%-22s (%d) %s channels, %.0f GB/s peak, shared\n", "Memory", h.GPUMem.Channels, h.GPUMem.Name, h.GPUMem.BytesPerSec/1e9)
	fmt.Fprintf(&b, "%-22s coherent 12-port switch, c2c %.0fns; GPU faults CPU-handled (%.1fus)\n",
		"Interconnect", h.CacheToCacheNs, h.VM.CPUFaultServUs)
	return b.String()
}

// Table2TextOf renders Table II rows. The percentage line routes through
// pct so a zero total renders as 0% instead of NaN, and an empty census
// renders as just the header instead of panicking.
func Table2TextOf(rows []bench.Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II. PRODUCER-CONSUMER RELATIONSHIPS IN BENCHMARKS\n")
	fmt.Fprintf(&b, "%-10s %5s %8s %6s %8s %9s %8s\n", "Suite", "Num", "P-CComm", "Pipe", "Regular", "Irregular", "SWQueue")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d %8d %6d %8d %9d %8d\n",
			r.Suite, r.Num, r.PCComm, r.PipeParal, r.Regular, r.Irreg, r.SWQue)
	}
	if len(rows) == 0 {
		return b.String()
	}
	tot := rows[len(rows)-1]
	den := float64(tot.Num)
	fmt.Fprintf(&b, "%-10s %5s %7.0f%% %5.0f%% %7.0f%% %8.0f%% %7.0f%%\n", "portion", "100%",
		pct(float64(tot.PCComm), den), pct(float64(tot.PipeParal), den),
		pct(float64(tot.Regular), den), pct(float64(tot.Irreg), den),
		pct(float64(tot.SWQue), den))
	return b.String()
}

// Table2Text renders Table II from the census.
func Table2Text() string {
	return Table2TextOf(bench.Table2())
}

// Fig3Row is one kmeans organization of Figure 3.
type Fig3Row struct {
	Org       string  `json:"org"`
	Estimated bool    `json:"estimated"`
	RunTime   float64 `json:"run_time"` // normalized to baseline
	GPUUtil   float64 `json:"gpu_util"`
}

// Fig3 runs the kmeans case study organizations and returns normalized run
// times: Baseline (copy), Asynchronous Copy (streams), No Memory Copy
// (limited), Parallel (Eq. 1 estimate on the no-copy run, starred), and
// Parallel + Cache (simulated chunked producer-consumer). Each organization
// runs under the harness: a failed run is dropped from the rows and comes
// back as a RunError for Fig3Text to footnote. If the Baseline itself fails
// there is nothing to normalize against and no rows are returned.
func Fig3(size bench.Size, budget harness.Budget) ([]Fig3Row, []harness.RunError) {
	km, _ := bench.Get("rodinia/kmeans")
	var errs []harness.RunError
	run := func(m bench.Mode) *core.Report {
		out := harness.Run(harness.Spec{Bench: km, Mode: m, Size: size, Budget: budget})
		if out.Err != nil {
			errs = append(errs, *out.Err)
			return nil
		}
		return out.Report
	}
	base := run(bench.ModeCopy)
	async := run(bench.ModeAsyncStreams)
	nocopy := run(bench.ModeLimitedCopy)
	parcache := run(bench.ModeParallelChunked)
	if base == nil {
		return nil, errs
	}

	norm := func(r *core.Report) float64 { return float64(r.ROI) / float64(base.ROI) }
	rows := []Fig3Row{{"Baseline", false, 1.0, base.GPUUtil}}
	if async != nil {
		rows = append(rows, Fig3Row{"Asynchronous Copy", false, norm(async), async.GPUUtil})
	}
	if nocopy != nil {
		rows = append(rows, Fig3Row{"No Memory Copy", false, norm(nocopy), nocopy.GPUUtil})
		// "Parallel" is the paper's analytical estimate: overlapped CPU and
		// GPU on the no-copy organization.
		parEst := float64(nocopy.Rco) / float64(base.ROI)
		parUtil := nocopy.GPUUtil * float64(nocopy.ROI) / float64(nocopy.Rco)
		if parUtil > 1 {
			parUtil = 1
		}
		rows = append(rows, Fig3Row{"Parallel", true, parEst, parUtil})
	}
	if parcache != nil {
		rows = append(rows, Fig3Row{"Parallel + Cache", false, norm(parcache), parcache.GPUUtil})
	}
	return rows, errs
}

// Fig3Text renders Figure 3, footnoting organizations that failed to run.
func Fig3Text(rows []Fig3Row, errs []harness.RunError) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 3. Kmeans run times by organization (normalized to Baseline; * = estimated)\n")
	for _, r := range rows {
		star := " "
		if r.Estimated {
			star = "*"
		}
		fmt.Fprintf(&b, "  %-20s%s %6.3f   GPU util %5.1f%%  %s\n",
			r.Org, star, r.RunTime, 100*r.GPUUtil, bar(r.RunTime, 40))
	}
	if len(rows) == 0 {
		fmt.Fprintf(&b, "  (baseline failed; nothing to normalize against)\n")
	}
	for _, e := range errs {
		fmt.Fprintf(&b, "† %s (%s) failed [%s]: %s\n", e.Benchmark, e.Mode, e.Kind, e.Msg)
	}
	return b.String()
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > 2*width {
		n = 2 * width
	}
	return strings.Repeat("#", n)
}
