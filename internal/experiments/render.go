package experiments

import (
	"fmt"
	"strings"
)

// This file is the render half of every figure: each renderer formats the
// typed rows its FigNRows counterpart computed, plus the sweep's footnote
// metadata — no renderer touches a core.Report. Fig4Text..Fig9Text keep
// the historical convenience signature over a *Results; the RenderFigN
// functions are the row-only render steps the convenience wrappers (and
// any caller holding rows from JSON) compose.

// RenderFig4 formats the footprint partition figure from its rows.
func RenderFig4(rows []Fig4Row, sum Fig4Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. Memory footprint by component set (normalized to copy total)\n")
	fmt.Fprintf(&b, "%-24s %-8s %7s  %s\n", "benchmark", "version", "total", "CPU/GPU/Copy/CPU+GPU/CPU+Copy/GPU+Copy/all")
	last := ""
	for _, row := range rows {
		label := row.Benchmark
		if label == last {
			label = ""
		}
		last = row.Benchmark
		fracs := make([]string, 0, len(row.Sets))
		for _, set := range row.Sets {
			fracs = append(fracs, fmt.Sprintf("%4.1f%%", set.Pct))
		}
		fmt.Fprintf(&b, "%-24s %-8s %6.1f%%  %s\n", label, row.Version,
			row.TotalPct, strings.Join(fracs, " "))
	}
	fmt.Fprintf(&b, "geomean limited-copy footprint: %.1f%% of copy footprint\n", sum.GeomeanLimitedPct)
	b.WriteString(fn.String())
	return b.String()
}

// Fig4Text renders Figure 4 from a sweep.
func Fig4Text(r *Results) string {
	rows, sum := Fig4Rows(r)
	return RenderFig4(rows, sum, r.Footnotes())
}

// RenderFig5 formats the off-chip access breakdown from its rows (which
// come in copy/limited pairs per benchmark).
func RenderFig5(rows []Fig5Row, sum Fig5Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5. Off-chip memory accesses by component (normalized to copy total)\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %9s | %9s %9s   %s\n", "benchmark", "cpu", "gpu", "copy", "lim-cpu", "lim-gpu", "lim-total")
	for i := 0; i+1 < len(rows); i += 2 {
		cv, lv := rows[i], rows[i+1]
		fmt.Fprintf(&b, "%-24s %8.1f%% %8.1f%% %8.1f%% | %8.1f%% %8.1f%%   %6.1f%%\n", cv.Benchmark,
			cv.CPUPct, cv.GPUPct, cv.CopyPct, lv.CPUPct, lv.GPUPct, lv.TotalPct)
	}
	fmt.Fprintf(&b, "geomean copy-access share of copy version: %.1f%%\n", sum.GeomeanCopySharePct)
	fmt.Fprintf(&b, "geomean limited-copy total accesses: %.1f%% of copy version\n", sum.GeomeanLimitedTotalPct)
	b.WriteString(fn.String())
	return b.String()
}

// Fig5Text renders Figure 5 from a sweep.
func Fig5Text(r *Results) string {
	rows, sum := Fig5Rows(r)
	return RenderFig5(rows, sum, r.Footnotes())
}

// RenderFig6 formats the run-time activity breakdown from its rows.
func RenderFig6(rows []Fig6Row, sum Fig6Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 6. Run-time component activity (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %-8s %7s %7s %7s %7s %8s %6s\n", "benchmark", "version", "total", "copyact", "cpuact", "gpuact", "overlap", "idle")
	last := ""
	for _, row := range rows {
		label := row.Benchmark
		if label == last {
			label = ""
		}
		last = row.Benchmark
		fmt.Fprintf(&b, "%-24s %-8s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7.1f%% %5.1f%%\n", label, row.Version,
			row.TotalPct, row.CopyActPct, row.CPUActPct, row.GPUActPct, row.OverlapPct, row.IdlePct)
	}
	fmt.Fprintf(&b, "geomean limited-copy run time: %.1f%% of copy (%.1f%% improvement)\n",
		sum.GeomeanLimitedRunPct, sum.ImprovementPct)
	b.WriteString(fn.String())
	return b.String()
}

// Fig6Text renders Figure 6 from a sweep.
func Fig6Text(r *Results) string {
	rows, sum := Fig6Rows(r)
	return RenderFig6(rows, sum, r.Footnotes())
}

// RenderFig7 formats the component-overlap estimates from the shared
// model rows (copy/limited pairs per benchmark).
func RenderFig7(rows []Fig78Row, sum Fig7Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 7. Component-overlap run-time estimates, Eq. 1 (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %10s %11s %12s %13s\n", "benchmark", "copy Rco", "copy gain", "limited Rco", "limited gain")
	for i := 0; i+1 < len(rows); i += 2 {
		cv, lv := rows[i], rows[i+1]
		fmt.Fprintf(&b, "%-24s %9.1f%% %10.1f%% %11.1f%% %12.1f%%\n", cv.Benchmark,
			cv.RcoPct, cv.RcoGainPct, lv.RcoPct, lv.RcoGainPct)
	}
	fmt.Fprintf(&b, "geomean copy-version overlap gain: %.1f%%\n", sum.GeomeanOverlapGainPct)

	// Validation against the restructured implementations (Section V-A).
	fmt.Fprintf(&b, "validation (measured restructured vs estimate):\n")
	for _, v := range sum.Validations {
		fmt.Fprintf(&b, "  %-22s %s measured %6.3fms vs %s %6.3fms (%+.1f%%)\n",
			v.Benchmark, v.Mode, v.MeasuredMs, v.Against, v.EstimateMs, v.DeltaPct)
	}
	b.WriteString(fn.String())
	return b.String()
}

// Fig7Text renders Figure 7 from a sweep.
func Fig7Text(r *Results) string {
	rows, sum, _ := Fig78Rows(r)
	return RenderFig7(rows, sum, r.Footnotes())
}

// RenderFig8 formats the migrated-compute estimates from the shared model
// rows (copy/limited pairs per benchmark).
func RenderFig8(rows []Fig78Row, sum Fig8Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 8. Migrated-compute run-time estimates, Eqs. 2-4 (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %10s %12s %13s\n", "benchmark", "copy Rmc", "limited Rmc", "vs limited")
	for i := 0; i+1 < len(rows); i += 2 {
		cv, lv := rows[i], rows[i+1]
		fmt.Fprintf(&b, "%-24s %9.1f%% %11.1f%% %12.1f%%\n", cv.Benchmark,
			cv.RmcPct, lv.RmcPct, lv.RmcGainPct)
	}
	fmt.Fprintf(&b, "geomean potential gain from migrating compute (limited-copy): %.1f%%\n", sum.GeomeanMigrateGainPct)
	b.WriteString(fn.String())
	return b.String()
}

// Fig8Text renders Figure 8 from a sweep.
func Fig8Text(r *Results) string {
	rows, _, sum := Fig78Rows(r)
	return RenderFig8(rows, sum, r.Footnotes())
}

// RenderFig10 formats the measured-overlap figure from its rows: each
// async-streams organization's measured run time next to the Eq. 1 Rco
// bound, both normalized to the copy-mode baseline run, with the gap
// over the bound attributed to exposed copy time and idle time.
func RenderFig10(rows []Fig10Row, sum Fig10Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 10. Measured async-streams run time vs the Eq. 1 Rco bound (normalized to copy run time)\n")
	fmt.Fprintf(&b, "%-24s %7s %9s %8s %9s %6s\n",
		"benchmark", "bound", "measured", "gap", "exp-copy", "idle")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s %6.1f%% %8.1f%% %+7.1f%% %8.1f%% %5.1f%%\n",
			row.Benchmark, row.BoundPct, row.MeasuredPct,
			row.GapPct, row.ExposedCopyPct, row.IdlePct)
	}
	if len(rows) == 0 {
		b.WriteString("(no async-streams organizations in this sweep)\n")
	} else {
		fmt.Fprintf(&b, "geomean measured: %.1f%% of copy run time (Rco bound %.1f%%); gap over bound: %+.1f%%\n",
			sum.GeomeanMeasuredPct, sum.GeomeanBoundPct, sum.GeomeanGapPct)
	}
	b.WriteString(fn.String())
	return b.String()
}

// Fig10Text renders Figure 10 from a sweep.
func Fig10Text(r *Results) string {
	rows, sum := Fig10Rows(r)
	return RenderFig10(rows, sum, r.Footnotes())
}

// RenderFig9 formats the off-chip access classification from its rows.
func RenderFig9(rows []Fig9Row, sum Fig9Summary, fn Footnotes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 9. Off-chip accesses by cause (%% of version's accesses; * = bandwidth-limited)\n")
	fmt.Fprintf(&b, "%-24s %-8s %9s %9s %8s %8s %8s %8s\n",
		"benchmark", "version", "compuls", "longrng", "W-Rspill", "R-Rspill", "W-Rcont", "R-Rcont")
	last := ""
	for _, row := range rows {
		label := row.Benchmark
		if label == last {
			label = ""
		}
		last = row.Benchmark
		mark := " "
		if row.BWLimited {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-24s %-8s%s", label, row.Version, mark)
		for i, cs := range row.Classes {
			if i < 2 {
				fmt.Fprintf(&b, " %8.1f%%", cs.Pct)
			} else {
				fmt.Fprintf(&b, " %7.1f%%", cs.Pct)
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "mean R-R contention share (limited-copy): %.1f%%   mean spill share: %.1f%%\n",
		sum.MeanRRContentionPct, sum.MeanSpillPct)
	b.WriteString(fn.String())
	return b.String()
}

// Fig9Text renders Figure 9 from a sweep.
func Fig9Text(r *Results) string {
	rows, sum := Fig9Rows(r)
	return RenderFig9(rows, sum, r.Footnotes())
}
