package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/stats"
)

// WriteCSVs exports the sweep as one CSV per figure into dir (created if
// needed), for external plotting. Files: fig4_footprint.csv,
// fig5_accesses.csv, fig6_runtime.csv, fig78_models.csv,
// fig9_classification.csv.
func WriteCSVs(dir string, r *Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

	// Figure 4: footprint partition.
	var rows [][]string
	for _, name := range r.Names() {
		for _, pair := range []struct {
			ver string
			rep *core.Report
		}{{"copy", r.Copy[name]}, {"limited", r.Limited[name]}} {
			row := []string{name, pair.ver, strconv.FormatUint(pair.rep.FootprintBytes, 10)}
			for _, set := range stats.AllComponentSets() {
				row = append(row, strconv.FormatUint(pair.rep.Footprint[set], 10))
			}
			rows = append(rows, row)
		}
	}
	hdr := []string{"benchmark", "version", "total_bytes"}
	for _, set := range stats.AllComponentSets() {
		hdr = append(hdr, set.String()+"_bytes")
	}
	if err := write("fig4_footprint.csv", hdr, rows); err != nil {
		return err
	}

	// Figure 5: off-chip accesses by component.
	rows = rows[:0]
	for _, name := range r.Names() {
		for _, pair := range []struct {
			ver string
			rep *core.Report
		}{{"copy", r.Copy[name]}, {"limited", r.Limited[name]}} {
			rows = append(rows, []string{
				name, pair.ver,
				strconv.FormatUint(pair.rep.DRAMAccesses[stats.CPU], 10),
				strconv.FormatUint(pair.rep.DRAMAccesses[stats.GPU], 10),
				strconv.FormatUint(pair.rep.DRAMAccesses[stats.Copy], 10),
			})
		}
	}
	if err := write("fig5_accesses.csv",
		[]string{"benchmark", "version", "cpu", "gpu", "copy"}, rows); err != nil {
		return err
	}

	// Figure 6: run time and activity.
	rows = rows[:0]
	for _, name := range r.Names() {
		for _, pair := range []struct {
			ver string
			rep *core.Report
		}{{"copy", r.Copy[name]}, {"limited", r.Limited[name]}} {
			rep := pair.rep
			rows = append(rows, []string{
				name, pair.ver,
				ff(rep.ROI.Millis()), ff(rep.CPUActive.Millis()),
				ff(rep.GPUActive.Millis()), ff(rep.CopyActive.Millis()),
				ff(rep.CPUUtil), ff(rep.GPUUtil), ff(rep.OppCost),
			})
		}
	}
	if err := write("fig6_runtime.csv",
		[]string{"benchmark", "version", "roi_ms", "cpu_ms", "gpu_ms", "copy_ms", "cpu_util", "gpu_util", "flop_opp_cost"}, rows); err != nil {
		return err
	}

	// Figures 7-8: analytical model estimates.
	rows = rows[:0]
	for _, name := range r.Names() {
		for _, pair := range []struct {
			ver string
			rep *core.Report
		}{{"copy", r.Copy[name]}, {"limited", r.Limited[name]}} {
			rep := pair.rep
			rows = append(rows, []string{
				name, pair.ver,
				ff(rep.ROI.Millis()), ff(rep.Rco.Millis()), ff(rep.Rmc.Millis()), ff(rep.Cserial.Millis()),
			})
		}
	}
	if err := write("fig78_models.csv",
		[]string{"benchmark", "version", "roi_ms", "rco_ms", "rmc_ms", "cserial_ms"}, rows); err != nil {
		return err
	}

	// Figure 9: classification.
	rows = rows[:0]
	for _, name := range r.Names() {
		for _, pair := range []struct {
			ver string
			rep *core.Report
		}{{"copy", r.Copy[name]}, {"limited", r.Limited[name]}} {
			rep := pair.rep
			row := []string{name, pair.ver, fmt.Sprintf("%t", rep.BWLimitedFrac > 0.25)}
			for c := core.Class(0); c < core.NumClasses; c++ {
				row = append(row, strconv.FormatUint(rep.ClassCounts[c], 10))
			}
			rows = append(rows, row)
		}
	}
	hdr = []string{"benchmark", "version", "bw_limited"}
	for c := core.Class(0); c < core.NumClasses; c++ {
		hdr = append(hdr, c.String())
	}
	return write("fig9_classification.csv", hdr, rows)
}
