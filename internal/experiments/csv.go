package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/stats"
)

// WriteCSVs exports the sweep as one CSV per figure into dir (created if
// needed), for external plotting. Files: fig4_footprint.csv,
// fig5_accesses.csv, fig6_runtime.csv, fig78_models.csv,
// fig9_classification.csv. Each file is rendered from the same typed rows
// the text figures and JSON export format, so the raw columns here always
// match the percentages those show.
func WriteCSVs(dir string, r *Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

	// Figure 4: footprint partition.
	fig4, _ := Fig4Rows(r)
	var rows [][]string
	for _, fr := range fig4 {
		row := []string{fr.Benchmark, fr.Version, strconv.FormatUint(fr.TotalBytes, 10)}
		for _, set := range fr.Sets {
			row = append(row, strconv.FormatUint(set.Bytes, 10))
		}
		rows = append(rows, row)
	}
	hdr := []string{"benchmark", "version", "total_bytes"}
	for _, set := range stats.AllComponentSets() {
		hdr = append(hdr, set.String()+"_bytes")
	}
	if err := write("fig4_footprint.csv", hdr, rows); err != nil {
		return err
	}

	// Figure 5: off-chip accesses by component.
	fig5, _ := Fig5Rows(r)
	rows = rows[:0]
	for _, fr := range fig5 {
		rows = append(rows, []string{
			fr.Benchmark, fr.Version,
			strconv.FormatUint(fr.CPU, 10),
			strconv.FormatUint(fr.GPU, 10),
			strconv.FormatUint(fr.Copy, 10),
		})
	}
	if err := write("fig5_accesses.csv",
		[]string{"benchmark", "version", "cpu", "gpu", "copy"}, rows); err != nil {
		return err
	}

	// Figure 6: run time and activity.
	fig6, _ := Fig6Rows(r)
	rows = rows[:0]
	for _, fr := range fig6 {
		rows = append(rows, []string{
			fr.Benchmark, fr.Version,
			ff(fr.ROIms), ff(fr.CPUms), ff(fr.GPUms), ff(fr.Copyms),
			ff(fr.CPUUtil), ff(fr.GPUUtil), ff(fr.OppCost),
		})
	}
	if err := write("fig6_runtime.csv",
		[]string{"benchmark", "version", "roi_ms", "cpu_ms", "gpu_ms", "copy_ms", "cpu_util", "gpu_util", "flop_opp_cost"}, rows); err != nil {
		return err
	}

	// Figures 7-8: analytical model estimates.
	fig78, _, _ := Fig78Rows(r)
	rows = rows[:0]
	for _, fr := range fig78 {
		rows = append(rows, []string{
			fr.Benchmark, fr.Version,
			ff(fr.ROIms), ff(fr.RcoMs), ff(fr.RmcMs), ff(fr.CserialMs),
		})
	}
	if err := write("fig78_models.csv",
		[]string{"benchmark", "version", "roi_ms", "rco_ms", "rmc_ms", "cserial_ms"}, rows); err != nil {
		return err
	}

	// Figure 9: classification.
	fig9, _ := Fig9Rows(r)
	rows = rows[:0]
	for _, fr := range fig9 {
		row := []string{fr.Benchmark, fr.Version, fmt.Sprintf("%t", fr.BWLimited)}
		for _, cs := range fr.Classes {
			row = append(row, strconv.FormatUint(cs.Count, 10))
		}
		rows = append(rows, row)
	}
	hdr = []string{"benchmark", "version", "bw_limited"}
	for c := core.Class(0); c < core.NumClasses; c++ {
		hdr = append(hdr, c.String())
	}
	if err := write("fig9_classification.csv", hdr, rows); err != nil {
		return err
	}

	// Figure 10: measured overlap vs the Eq. 1 bound.
	fig10, _ := Fig10Rows(r)
	rows = rows[:0]
	for _, fr := range fig10 {
		rows = append(rows, []string{
			fr.Benchmark, fr.Mode,
			ff(fr.BaselineMs), ff(fr.BoundMs), ff(fr.MeasuredMs),
			ff(fr.ExposedCopyPct), ff(fr.IdlePct),
		})
	}
	return write("fig10_overlap.csv",
		[]string{"benchmark", "mode",
			"baseline_ms", "bound_ms", "measured_ms", "exposed_copy_pct", "idle_pct"}, rows)
}
