package experiments

import (
	"encoding/json"
	"os"
)

// FigDoc pairs one figure's rows with its summary in the JSON export.
type FigDoc[Row, Summary any] struct {
	Rows    []Row   `json:"rows"`
	Summary Summary `json:"summary"`
}

// SweepDoc is the machine-readable export of a sweep: the same typed rows
// the text figures and CSVs render, one section per figure, plus the
// footnote metadata for partial sweeps. Figures 7 and 8 share their model
// rows (fig78) and keep separate summaries.
type SweepDoc struct {
	Size      string                       `json:"size"`
	Fig4      FigDoc[Fig4Row, Fig4Summary] `json:"fig4_footprint"`
	Fig5      FigDoc[Fig5Row, Fig5Summary] `json:"fig5_accesses"`
	Fig6      FigDoc[Fig6Row, Fig6Summary] `json:"fig6_runtime"`
	Fig78Rows []Fig78Row                   `json:"fig78_models"`
	Fig7      Fig7Summary                  `json:"fig7_summary"`
	Fig8      Fig8Summary                  `json:"fig8_summary"`
	Fig9      FigDoc[Fig9Row, Fig9Summary] `json:"fig9_classification"`
	Footnotes Footnotes                    `json:"footnotes"`
}

// JSON reduces the sweep to its export document.
func (r *Results) JSON() SweepDoc {
	doc := SweepDoc{Size: r.Size.String(), Footnotes: r.Footnotes()}
	doc.Fig4.Rows, doc.Fig4.Summary = Fig4Rows(r)
	doc.Fig5.Rows, doc.Fig5.Summary = Fig5Rows(r)
	doc.Fig6.Rows, doc.Fig6.Summary = Fig6Rows(r)
	doc.Fig78Rows, doc.Fig7, doc.Fig8 = Fig78Rows(r)
	doc.Fig9.Rows, doc.Fig9.Summary = Fig9Rows(r)
	return doc
}

// WriteJSON exports the sweep document to path, indented.
func WriteJSON(path string, r *Results) error {
	data, err := json.MarshalIndent(r.JSON(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
