package experiments

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/core"
)

// FigDoc pairs one figure's rows with its summary in the JSON export.
type FigDoc[Row, Summary any] struct {
	Rows    []Row   `json:"rows"`
	Summary Summary `json:"summary"`
}

// SweepDoc is the machine-readable export of a sweep: the same typed rows
// the text figures and CSVs render, one section per figure, plus the
// footnote metadata for partial sweeps and one telemetry record per run
// (successes and failures reported symmetrically). Figures 7 and 8 share
// their model rows (fig78) and keep separate summaries.
type SweepDoc struct {
	Size      string                         `json:"size"`
	Fig4      FigDoc[Fig4Row, Fig4Summary]   `json:"fig4_footprint"`
	Fig5      FigDoc[Fig5Row, Fig5Summary]   `json:"fig5_accesses"`
	Fig6      FigDoc[Fig6Row, Fig6Summary]   `json:"fig6_runtime"`
	Fig78Rows []Fig78Row                     `json:"fig78_models"`
	Fig7      Fig7Summary                    `json:"fig7_summary"`
	Fig8      Fig8Summary                    `json:"fig8_summary"`
	Fig9      FigDoc[Fig9Row, Fig9Summary]   `json:"fig9_classification"`
	Fig10     FigDoc[Fig10Row, Fig10Summary] `json:"fig10_overlap"`
	Footnotes Footnotes                      `json:"footnotes"`
	Runs      []RunDocJSON                   `json:"runs,omitempty"`
	// Skipped names runs a canceled sweep never dispatched; a resumed
	// sweep re-runs exactly these. Empty (omitted) for a complete sweep.
	Skipped []string `json:"skipped,omitempty"`
}

// RunDocJSON is one run's telemetry in the sweep doc. Every run of the
// sweep gets a record with the same core fields whether it succeeded or
// failed, so post-sweep tooling never special-cases the success path.
type RunDocJSON struct {
	Benchmark string           `json:"benchmark"`
	Mode      string           `json:"mode"`
	Size      string           `json:"size"`
	Attempts  int              `json:"attempts"`
	Degraded  bool             `json:"degraded,omitempty"`
	Failed    bool             `json:"failed,omitempty"`
	SimMs     float64          `json:"sim_ms"`
	Events    uint64           `json:"events"`
	WallMs    float64          `json:"wall_ms,omitempty"`
	Phases    []core.PhaseJSON `json:"phases,omitempty"`
}

// JSON reduces the sweep to its export document.
func (r *Results) JSON() SweepDoc {
	doc := SweepDoc{Size: r.Size.String(), Footnotes: r.Footnotes(), Skipped: r.Skipped}
	doc.Fig4.Rows, doc.Fig4.Summary = Fig4Rows(r)
	doc.Fig5.Rows, doc.Fig5.Summary = Fig5Rows(r)
	doc.Fig6.Rows, doc.Fig6.Summary = Fig6Rows(r)
	doc.Fig78Rows, doc.Fig7, doc.Fig8 = Fig78Rows(r)
	doc.Fig9.Rows, doc.Fig9.Summary = Fig9Rows(r)
	doc.Fig10.Rows, doc.Fig10.Summary = Fig10Rows(r)
	for _, m := range r.Runs {
		doc.Runs = append(doc.Runs, RunDocJSON{
			Benchmark: m.Benchmark, Mode: m.Mode.String(), Size: m.Size.String(),
			Attempts: m.Attempts, Degraded: m.Degraded, Failed: m.Failed,
			SimMs: m.SimTime.Millis(), Events: m.Events,
			WallMs: float64(m.Wall) / float64(time.Millisecond),
			Phases: core.PhasesJSON(m.Phases),
		})
	}
	return doc
}

// WriteJSON exports the sweep document to path, indented.
func WriteJSON(path string, r *Results) error {
	data, err := json.MarshalIndent(r.JSON(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
