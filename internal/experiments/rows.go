package experiments

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/stats"
)

// This file is the compute half of every figure: each FigNRows function
// reduces a sweep's reports to typed rows plus a summary, and the text,
// CSV, and JSON renderers all format the same rows. Rows carry both the
// raw measurements (bytes, access counts, milliseconds) and the derived
// percentages the paper's figures plot, so no renderer re-derives numbers.

// SetPart is one exclusive component subset's share of a footprint.
type SetPart struct {
	Set   string  `json:"set"`
	Bytes uint64  `json:"bytes"`
	Pct   float64 `json:"pct"` // of the copy-version total
}

// Fig4Row is one (benchmark, version) bar of the footprint partition
// figure. Percentages are normalized to the copy version's total.
type Fig4Row struct {
	Benchmark  string    `json:"benchmark"`
	Version    string    `json:"version"`
	TotalBytes uint64    `json:"total_bytes"`
	TotalPct   float64   `json:"total_pct"`
	Sets       []SetPart `json:"sets"`
}

// Fig4Summary aggregates Figure 4.
type Fig4Summary struct {
	// GeomeanLimitedPct is the limited-copy footprint as a percentage of
	// the copy footprint (geomean over benchmarks).
	GeomeanLimitedPct float64 `json:"geomean_limited_footprint_pct"`
}

// Fig4Rows computes the footprint partition rows, copy and limited-copy
// per benchmark in Names() order.
func Fig4Rows(r *Results) ([]Fig4Row, Fig4Summary) {
	var rows []Fig4Row
	var reds []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.FootprintBytes)
		mk := func(rep *core.Report, version string) Fig4Row {
			row := Fig4Row{
				Benchmark:  name,
				Version:    version,
				TotalBytes: rep.FootprintBytes,
				TotalPct:   pct(float64(rep.FootprintBytes), denom),
			}
			for _, set := range stats.AllComponentSets() {
				row.Sets = append(row.Sets, SetPart{
					Set:   set.String(),
					Bytes: rep.Footprint[set],
					Pct:   pct(float64(rep.Footprint[set]), denom),
				})
			}
			return row
		}
		rows = append(rows, mk(cv, "copy"), mk(lv, "limited"))
		reds = append(reds, float64(lv.FootprintBytes)/float64(cv.FootprintBytes))
	}
	return rows, Fig4Summary{GeomeanLimitedPct: 100 * geomean(reds)}
}

// Fig5Row is one (benchmark, version) row of off-chip accesses by
// component. Percentages are normalized to the copy version's total.
type Fig5Row struct {
	Benchmark string  `json:"benchmark"`
	Version   string  `json:"version"`
	CPU       uint64  `json:"cpu_accesses"`
	GPU       uint64  `json:"gpu_accesses"`
	Copy      uint64  `json:"copy_accesses"`
	CPUPct    float64 `json:"cpu_pct"`
	GPUPct    float64 `json:"gpu_pct"`
	CopyPct   float64 `json:"copy_pct"`
	TotalPct  float64 `json:"total_pct"`
}

// Fig5Summary aggregates Figure 5.
type Fig5Summary struct {
	GeomeanCopySharePct    float64 `json:"geomean_copy_share_pct"`
	GeomeanLimitedTotalPct float64 `json:"geomean_limited_total_pct"`
}

// Fig5Rows computes the off-chip access rows, copy and limited-copy per
// benchmark in Names() order.
func Fig5Rows(r *Results) ([]Fig5Row, Fig5Summary) {
	var rows []Fig5Row
	var copyShares, totalReds []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.TotalDRAM())
		mk := func(rep *core.Report, version string) Fig5Row {
			return Fig5Row{
				Benchmark: name,
				Version:   version,
				CPU:       rep.DRAMAccesses[stats.CPU],
				GPU:       rep.DRAMAccesses[stats.GPU],
				Copy:      rep.DRAMAccesses[stats.Copy],
				CPUPct:    pct(float64(rep.DRAMAccesses[stats.CPU]), denom),
				GPUPct:    pct(float64(rep.DRAMAccesses[stats.GPU]), denom),
				CopyPct:   pct(float64(rep.DRAMAccesses[stats.Copy]), denom),
				TotalPct:  pct(float64(rep.TotalDRAM()), denom),
			}
		}
		rows = append(rows, mk(cv, "copy"), mk(lv, "limited"))
		copyShares = append(copyShares, float64(cv.DRAMAccesses[stats.Copy])/denom)
		totalReds = append(totalReds, float64(lv.TotalDRAM())/denom)
	}
	return rows, Fig5Summary{
		GeomeanCopySharePct:    100 * geomean(copyShares),
		GeomeanLimitedTotalPct: 100 * geomean(totalReds),
	}
}

// Fig6Row is one (benchmark, version) row of the run-time activity
// breakdown. Percentages are normalized to the copy version's run time;
// raw times and utilizations ride along for the CSV/JSON renderers.
type Fig6Row struct {
	Benchmark  string  `json:"benchmark"`
	Version    string  `json:"version"`
	ROIms      float64 `json:"roi_ms"`
	CPUms      float64 `json:"cpu_active_ms"`
	GPUms      float64 `json:"gpu_active_ms"`
	Copyms     float64 `json:"copy_active_ms"`
	CPUUtil    float64 `json:"cpu_util"`
	GPUUtil    float64 `json:"gpu_util"`
	OppCost    float64 `json:"flop_opp_cost"`
	TotalPct   float64 `json:"total_pct"`
	CopyActPct float64 `json:"copy_active_pct"`
	CPUActPct  float64 `json:"cpu_active_pct"`
	GPUActPct  float64 `json:"gpu_active_pct"`
	OverlapPct float64 `json:"overlap_pct"`
	IdlePct    float64 `json:"idle_pct"`
}

// Fig6Summary aggregates Figure 6.
type Fig6Summary struct {
	// GeomeanLimitedRunPct is the limited-copy run time as a percentage of
	// the copy run time (geomean); ImprovementPct is its complement.
	GeomeanLimitedRunPct float64 `json:"geomean_limited_run_pct"`
	ImprovementPct       float64 `json:"improvement_pct"`
}

// Fig6Rows computes the run-time activity rows, copy and limited-copy per
// benchmark in Names() order.
func Fig6Rows(r *Results) ([]Fig6Row, Fig6Summary) {
	var rows []Fig6Row
	var runReds []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.ROI)
		mk := func(rep *core.Report, version string) Fig6Row {
			overlap := float64(rep.Breakdown.Total()) - float64(rep.Breakdown.Idle()) -
				float64(rep.Breakdown.Exclusive(stats.CPU)) - float64(rep.Breakdown.Exclusive(stats.GPU)) - float64(rep.Breakdown.Exclusive(stats.Copy))
			return Fig6Row{
				Benchmark:  name,
				Version:    version,
				ROIms:      rep.ROI.Millis(),
				CPUms:      rep.CPUActive.Millis(),
				GPUms:      rep.GPUActive.Millis(),
				Copyms:     rep.CopyActive.Millis(),
				CPUUtil:    rep.CPUUtil,
				GPUUtil:    rep.GPUUtil,
				OppCost:    rep.OppCost,
				TotalPct:   pct(float64(rep.ROI), denom),
				CopyActPct: pct(float64(rep.Breakdown.Exclusive(stats.Copy)), denom),
				CPUActPct:  pct(float64(rep.Breakdown.Exclusive(stats.CPU)), denom),
				GPUActPct:  pct(float64(rep.Breakdown.Exclusive(stats.GPU)), denom),
				OverlapPct: pct(overlap, denom),
				IdlePct:    pct(float64(rep.Breakdown.Idle()), denom),
			}
		}
		rows = append(rows, mk(cv, "copy"), mk(lv, "limited"))
		runReds = append(runReds, float64(lv.ROI)/float64(cv.ROI))
	}
	g := geomean(runReds)
	return rows, Fig6Summary{GeomeanLimitedRunPct: 100 * g, ImprovementPct: 100 * (1 - g)}
}

// Fig78Row is one (benchmark, version) row of the analytical-model
// estimates behind Figures 7 and 8: raw model outputs in milliseconds,
// percentages vs the copy version's run time (the figures'
// normalization), and gains vs the row's own run time.
type Fig78Row struct {
	Benchmark  string  `json:"benchmark"`
	Version    string  `json:"version"`
	ROIms      float64 `json:"roi_ms"`
	RcoMs      float64 `json:"rco_ms"`
	RmcMs      float64 `json:"rmc_ms"`
	CserialMs  float64 `json:"cserial_ms"`
	RcoPct     float64 `json:"rco_pct"`      // Rco vs copy-version ROI
	RmcPct     float64 `json:"rmc_pct"`      // Rmc vs copy-version ROI
	RcoGainPct float64 `json:"rco_gain_pct"` // 100 - Rco vs own ROI
	RmcGainPct float64 `json:"rmc_gain_pct"` // 100 - Rmc vs own ROI
}

// Fig7Validation is one measured-restructuring check of the Eq. 1
// estimates (Section V-A): the simulated restructured organization against
// the model's prediction from the unrestructured run.
type Fig7Validation struct {
	Benchmark  string  `json:"benchmark"`
	Mode       string  `json:"mode"`
	Against    string  `json:"against"` // which estimate: copy-Rco or limited-Rco
	MeasuredMs float64 `json:"measured_ms"`
	EstimateMs float64 `json:"estimate_ms"`
	DeltaPct   float64 `json:"delta_pct"`
}

// Fig7Summary aggregates Figure 7.
type Fig7Summary struct {
	GeomeanOverlapGainPct float64          `json:"geomean_overlap_gain_pct"`
	Validations           []Fig7Validation `json:"validations"`
}

// Fig8Summary aggregates Figure 8.
type Fig8Summary struct {
	GeomeanMigrateGainPct float64 `json:"geomean_migrate_gain_pct"`
}

// Fig78Rows computes the model-estimate rows shared by Figures 7 and 8,
// copy and limited-copy per benchmark in Names() order, plus both
// summaries.
func Fig78Rows(r *Results) ([]Fig78Row, Fig7Summary, Fig8Summary) {
	var rows []Fig78Row
	var overlapGains, migrateGains []float64
	for _, name := range r.Names() {
		cv, lv := r.Copy[name], r.Limited[name]
		denom := float64(cv.ROI)
		mk := func(rep *core.Report, version string) Fig78Row {
			return Fig78Row{
				Benchmark:  name,
				Version:    version,
				ROIms:      rep.ROI.Millis(),
				RcoMs:      rep.Rco.Millis(),
				RmcMs:      rep.Rmc.Millis(),
				CserialMs:  rep.Cserial.Millis(),
				RcoPct:     pct(float64(rep.Rco), denom),
				RmcPct:     pct(float64(rep.Rmc), denom),
				RcoGainPct: 100 - pct(float64(rep.Rco), float64(rep.ROI)),
				RmcGainPct: 100 - pct(float64(rep.Rmc), float64(rep.ROI)),
			}
		}
		rows = append(rows, mk(cv, "copy"), mk(lv, "limited"))
		overlapGains = append(overlapGains, float64(cv.Rco)/float64(cv.ROI))
		migrateGains = append(migrateGains, float64(lv.Rmc)/float64(lv.ROI))
	}
	f7 := Fig7Summary{
		GeomeanOverlapGainPct: 100 * (1 - geomean(overlapGains)),
		Validations:           fig7Validations(r),
	}
	f8 := Fig8Summary{GeomeanMigrateGainPct: 100 * (1 - geomean(migrateGains))}
	return rows, f7, f8
}

// fig7Validations compares the measured restructured implementations
// against the Eq. 1 estimates for the case-study benchmarks.
func fig7Validations(r *Results) []Fig7Validation {
	var vals []Fig7Validation
	for _, name := range []string{"rodinia/backprop", "rodinia/kmeans", "rodinia/streamcluster"} {
		if as, ok := r.Extra[bench.ModeAsyncStreams][name]; ok {
			if cv, ok := r.Copy[name]; ok && cv.Rco > 0 {
				est := cv.Rco
				vals = append(vals, Fig7Validation{
					Benchmark:  name,
					Mode:       bench.ModeAsyncStreams.String(),
					Against:    "copy-Rco",
					MeasuredMs: as.ROI.Millis(),
					EstimateMs: est.Millis(),
					DeltaPct:   100 * (float64(as.ROI) - float64(est)) / float64(est),
				})
			}
		}
		if pc, ok := r.Extra[bench.ModeParallelChunked][name]; ok {
			if lv, ok := r.Limited[name]; ok && lv.Rco > 0 {
				est := lv.Rco
				vals = append(vals, Fig7Validation{
					Benchmark:  name,
					Mode:       bench.ModeParallelChunked.String(),
					Against:    "limited-Rco",
					MeasuredMs: pc.ROI.Millis(),
					EstimateMs: est.Millis(),
					DeltaPct:   100 * (float64(pc.ROI) - float64(est)) / float64(est),
				})
			}
		}
	}
	return vals
}

// Fig10Row is one async-streams organization's measured run time against
// the Eq. 1 Rco bound computed from its copy-mode baseline. The
// organization runs the baseline's kernels and copies verbatim, so Rco —
// perfect copy/compute overlap of that same work — is a true floor on
// the measured time. ExposedCopyPct and IdlePct attribute the measured
// run's gap over the bound: copy time the organization failed to hide,
// and time no component was busy (fence latency, launch serialization,
// host feedback stalls). Parallel-chunked organizations are deliberately
// absent: they migrate compute to the CPU, shrinking Eq. 1's G term, so
// the baseline's Rco does not bound them (Figure 7's validation section
// reports that comparison instead).
type Fig10Row struct {
	Benchmark      string  `json:"benchmark"`
	Mode           string  `json:"mode"`
	BaselineMs     float64 `json:"baseline_ms"`
	BoundMs        float64 `json:"bound_ms"`
	MeasuredMs     float64 `json:"measured_ms"`
	BoundPct       float64 `json:"bound_pct"`        // Rco vs baseline ROI
	MeasuredPct    float64 `json:"measured_pct"`     // measured ROI vs baseline ROI
	GapPct         float64 `json:"gap_pct"`          // measured over the bound
	ExposedCopyPct float64 `json:"exposed_copy_pct"` // of measured ROI
	IdlePct        float64 `json:"idle_pct"`         // of measured ROI
}

// Fig10Summary aggregates Figure 10.
type Fig10Summary struct {
	GeomeanMeasuredPct float64 `json:"geomean_measured_pct"`
	GeomeanBoundPct    float64 `json:"geomean_bound_pct"`
	GeomeanGapPct      float64 `json:"geomean_gap_pct"`
}

// Fig10Rows computes the measured-overlap rows: every async-streams
// organization the sweep ran, in Names() order, against its copy run's
// Rco. Rows with a missing baseline, a zero bound, or a zero measured
// ROI (the residue of failed runs) are dropped rather than rendered as
// NaN.
func Fig10Rows(r *Results) ([]Fig10Row, Fig10Summary) {
	var rows []Fig10Row
	var meas, bounds, gaps []float64
	for _, name := range r.Names() {
		rep, base := r.Extra[bench.ModeAsyncStreams][name], r.Copy[name]
		if rep == nil || base == nil || rep.ROI <= 0 || base.ROI <= 0 || base.Rco <= 0 {
			continue
		}
		denom := float64(base.ROI)
		rows = append(rows, Fig10Row{
			Benchmark: name, Mode: bench.ModeAsyncStreams.String(),
			BaselineMs:     base.ROI.Millis(),
			BoundMs:        base.Rco.Millis(),
			MeasuredMs:     rep.ROI.Millis(),
			BoundPct:       pct(float64(base.Rco), denom),
			MeasuredPct:    pct(float64(rep.ROI), denom),
			GapPct:         pct(float64(rep.ROI)-float64(base.Rco), float64(base.Rco)),
			ExposedCopyPct: pct(float64(rep.Breakdown.Exclusive(stats.Copy)), float64(rep.ROI)),
			IdlePct:        pct(float64(rep.Breakdown.Idle()), float64(rep.ROI)),
		})
		meas = append(meas, float64(rep.ROI)/denom)
		bounds = append(bounds, float64(base.Rco)/denom)
		gaps = append(gaps, float64(rep.ROI)/float64(base.Rco))
	}
	var sum Fig10Summary
	if len(gaps) > 0 {
		sum.GeomeanMeasuredPct = 100 * geomean(meas)
		sum.GeomeanBoundPct = 100 * geomean(bounds)
		sum.GeomeanGapPct = 100 * (geomean(gaps) - 1)
	}
	return rows, sum
}

// ClassShare is one off-chip access class's share of a run's classified
// accesses.
type ClassShare struct {
	Class string  `json:"class"`
	Count uint64  `json:"count"`
	Pct   float64 `json:"pct"`
}

// Fig9Row is one (benchmark, version) row of the off-chip access
// classification, classes in core.Class order.
type Fig9Row struct {
	Benchmark string       `json:"benchmark"`
	Version   string       `json:"version"`
	BWLimited bool         `json:"bw_limited"`
	Classes   []ClassShare `json:"classes"`
}

// Fig9Summary aggregates Figure 9 over the limited-copy versions.
type Fig9Summary struct {
	MeanRRContentionPct float64 `json:"mean_rr_contention_pct"`
	MeanSpillPct        float64 `json:"mean_spill_pct"`
}

// Fig9Rows computes the access-classification rows, copy and limited-copy
// per benchmark in Names() order.
func Fig9Rows(r *Results) ([]Fig9Row, Fig9Summary) {
	var rows []Fig9Row
	var rrConts, spills []float64
	for _, name := range r.Names() {
		mk := func(rep *core.Report, version string) Fig9Row {
			row := Fig9Row{
				Benchmark: name,
				Version:   version,
				BWLimited: rep.BWLimitedFrac > 0.25,
			}
			for c := core.Class(0); c < core.NumClasses; c++ {
				row.Classes = append(row.Classes, ClassShare{
					Class: c.String(),
					Count: rep.ClassCounts[c],
					Pct:   100 * rep.ClassFraction(c),
				})
			}
			return row
		}
		lv := r.Limited[name]
		rows = append(rows, mk(r.Copy[name], "copy"), mk(lv, "limited"))
		rrConts = append(rrConts, lv.ClassFraction(core.ClassRRContention))
		spills = append(spills, lv.ClassFraction(core.ClassWRSpill)+lv.ClassFraction(core.ClassRRSpill))
	}
	var sum Fig9Summary
	if len(rrConts) > 0 {
		var rrMean, spillMean float64
		for i := range rrConts {
			rrMean += rrConts[i]
			spillMean += spills[i]
		}
		rrMean /= float64(len(rrConts))
		spillMean /= float64(len(spills))
		sum.MeanRRContentionPct = 100 * rrMean
		sum.MeanSpillPct = 100 * spillMean
	}
	return rows, sum
}
