package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func TestTable1Renders(t *testing.T) {
	txt := Table1()
	for _, want := range []string{"CPU cores", "GDDR5", "PCI Express", "Heterogeneous"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, txt)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	txt := Table2Text()
	for _, want := range []string{"lonestar", "pannotia", "parboil", "rodinia", "58", "88%"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, txt)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	// Non-positive values are clamped, not fatal.
	if g := geomean([]float64{0, 1}); g <= 0 {
		t.Fatalf("clamped geomean = %v", g)
	}
	// Non-finite entries — the residue of failed runs — are skipped.
	if g := geomean([]float64{1, math.NaN(), 4, math.Inf(1)}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean with non-finite entries = %v", g)
	}
	if g := geomean([]float64{math.NaN()}); g != 0 {
		t.Fatalf("all-NaN geomean = %v", g)
	}
	if p := pct(1, 0); p != 0 {
		t.Fatalf("pct with zero denominator = %v", p)
	}
	if p := pct(1, math.NaN()); p != 0 {
		t.Fatalf("pct with NaN denominator = %v", p)
	}
}

// TestFig3Ordering pins the paper's headline case-study result: the five
// kmeans organizations must improve monotonically (the Parallel estimate
// may only beat the simulated Parallel+Cache by the caching effect).
func TestFig3Ordering(t *testing.T) {
	rows, errs := Fig3(bench.SizeSmall, harness.Budget{})
	if len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].RunTime != 1.0 {
		t.Fatal("baseline must be 1.0")
	}
	// Async beats baseline; no-copy beats async; parallel+cache beats
	// no-copy.
	if !(rows[1].RunTime < rows[0].RunTime) {
		t.Fatalf("async-streams (%v) must beat baseline", rows[1].RunTime)
	}
	if !(rows[2].RunTime < rows[1].RunTime) {
		t.Fatalf("no-copy (%v) must beat async (%v)", rows[2].RunTime, rows[1].RunTime)
	}
	if !(rows[4].RunTime < rows[2].RunTime) {
		t.Fatalf("parallel+cache (%v) must beat no-copy (%v)", rows[4].RunTime, rows[2].RunTime)
	}
	// GPU utilization climbs from baseline to the final organization
	// (paper: 18% -> 80%).
	if !(rows[4].GPUUtil > rows[0].GPUUtil*2) {
		t.Fatalf("GPU util did not climb: %v -> %v", rows[0].GPUUtil, rows[4].GPUUtil)
	}
	if !rows[3].Estimated || rows[0].Estimated {
		t.Fatal("estimated flags wrong")
	}
	if !strings.Contains(Fig3Text(rows, errs), "Parallel + Cache") {
		t.Fatal("fig 3 text malformed")
	}
}

// fakeResults builds a tiny synthetic Results so the figure renderers can
// be tested without a full sweep.
func fakeResults() *Results {
	mk := func(roi sim.Tick, copyAcc, gpuAcc uint64) *core.Report {
		r := &core.Report{ROI: roi, FootprintBytes: 1024}
		r.Footprint = map[stats.ComponentSet]uint64{
			stats.ComponentSet(0).Set(stats.GPU): 1024,
		}
		r.DRAMAccesses[stats.Copy] = copyAcc
		r.DRAMAccesses[stats.GPU] = gpuAcc
		r.Breakdown = stats.Breakdown{Start: 0, End: roi, BySet: map[stats.ComponentSet]sim.Tick{}}
		r.Rco = roi / 2
		r.Rmc = roi / 4
		r.ClassCounts[core.ClassCompulsory] = gpuAcc
		return r
	}
	return &Results{
		Copy:    map[string]*core.Report{"x/y": mk(1000, 50, 100)},
		Limited: map[string]*core.Report{"x/y": mk(800, 0, 100)},
		Extra: map[bench.Mode]map[string]*core.Report{
			// The async run sits between the copy run's Rco (500) and its
			// ROI (1000), as a real overlapped organization must.
			bench.ModeAsyncStreams:    {"x/y": mk(600, 10, 100)},
			bench.ModeParallelChunked: {},
		},
	}
}

func TestFigureRenderersOnFakeData(t *testing.T) {
	r := fakeResults()
	for name, txt := range map[string]string{
		"fig4":  Fig4Text(r),
		"fig5":  Fig5Text(r),
		"fig6":  Fig6Text(r),
		"fig7":  Fig7Text(r),
		"fig8":  Fig8Text(r),
		"fig9":  Fig9Text(r),
		"fig10": Fig10Text(r),
	} {
		if !strings.Contains(txt, "x/y") {
			t.Fatalf("%s missing benchmark row:\n%s", name, txt)
		}
		if strings.Contains(txt, "NaN") || strings.Contains(txt, "%!") {
			t.Fatalf("%s has formatting garbage:\n%s", name, txt)
		}
	}
}

// TestFig10Guards pins the new figure's degenerate cases: a zero-ROI
// async report (the residue of a failed run) and a missing baseline are
// dropped rather than rendered, a sweep with no async organizations
// renders an explicit placeholder, and nothing ever formats as NaN.
func TestFig10Guards(t *testing.T) {
	r := fakeResults()
	r.Extra[bench.ModeAsyncStreams]["x/y"].ROI = 0
	rows, _ := Fig10Rows(r)
	if len(rows) != 0 {
		t.Fatalf("zero-ROI async run must be dropped, got %+v", rows)
	}
	if txt := Fig10Text(r); !strings.Contains(txt, "no async-streams organizations") ||
		strings.Contains(txt, "NaN") || strings.Contains(txt, "%!") {
		t.Fatalf("empty fig10 render malformed:\n%s", txt)
	}

	// Async run without its copy baseline (the baseline failed).
	r = fakeResults()
	delete(r.Copy, "x/y")
	r.Limited = map[string]*core.Report{}
	if rows, _ := Fig10Rows(r); len(rows) != 0 {
		t.Fatalf("async run without a baseline must be dropped, got %+v", rows)
	}

	// A sweep that recorded no Extra runs at all (nil map) must not panic.
	r = fakeResults()
	r.Extra = nil
	if rows, _ := Fig10Rows(r); len(rows) != 0 {
		t.Fatalf("nil Extra must yield no rows, got %+v", rows)
	}
}

// TestFig10BoundHolds is the figure's sanity invariant on real runs: an
// async-streams organization executes its baseline's kernels and copies
// verbatim, so its measured time can never beat the Eq. 1 Rco bound
// computed from the copy run.
func TestFig10BoundHolds(t *testing.T) {
	res, errs := RunSweep(bench.SizeSmall, SweepOpts{
		Only: []string{"parboil/sgemm", "pannotia/pr_spmv", "rodinia/hotspot"},
	})
	if len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	rows, sum := Fig10Rows(res)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want one per async benchmark: %+v", len(rows), rows)
	}
	for _, row := range rows {
		if row.MeasuredMs < row.BoundMs {
			t.Fatalf("%s: measured %.6fms beats the Rco bound %.6fms",
				row.Benchmark, row.MeasuredMs, row.BoundMs)
		}
		if row.GapPct < 0 {
			t.Fatalf("%s: negative gap %+.2f%%", row.Benchmark, row.GapPct)
		}
	}
	if sum.GeomeanGapPct < 0 {
		t.Fatalf("geomean gap %+.2f%% negative", sum.GeomeanGapPct)
	}
}

// TestAblationsRespond pins the qualitative direction of each ablation.
func TestAblationsRespond(t *testing.T) {
	t.Run("coherence", func(t *testing.T) {
		rows := AblateCoherence(bench.SizeSmall)
		if len(rows) != 2 || rows[0].ROIms >= rows[1].ROIms {
			t.Fatalf("coherence must help the consumer: %+v", rows)
		}
	})
	t.Run("faults", func(t *testing.T) {
		rows := AblateFaultCost(bench.SizeSmall)
		for i := 1; i < len(rows); i++ {
			if rows[i].ROIms < rows[i-1].ROIms {
				t.Fatalf("fault cost must monotonically hurt srad: %+v", rows)
			}
		}
	})
	t.Run("pcie", func(t *testing.T) {
		rows := AblatePCIe(bench.SizeSmall)
		for i := 1; i < len(rows); i++ {
			if rows[i].ROIms > rows[i-1].ROIms {
				t.Fatalf("more PCIe bandwidth must help kmeans: %+v", rows)
			}
		}
	})
	t.Run("l2", func(t *testing.T) {
		rows := AblateGPUL2(bench.SizeSmall)
		first, last := rows[0], rows[len(rows)-1]
		if last.ROIms > first.ROIms {
			t.Fatalf("bigger L2 must not hurt spmv: %+v", rows)
		}
	})
}

// TestSweepSurvivesForcedFailure is the fault-tolerance acceptance test:
// a sweep where one benchmark is rigged to exhaust its budget must still
// complete the other benchmark's runs, report the failures, and render
// every figure with the survivor's rows plus failure footnotes — and no
// NaN anywhere.
func TestSweepSurvivesForcedFailure(t *testing.T) {
	res, errs := RunSweep(bench.SizeSmall, SweepOpts{
		Only: []string{"rodinia/kmeans", "rodinia/srad"},
		PerRun: func(spec *harness.Spec) {
			if spec.Bench.Info().FullName() == "rodinia/kmeans" {
				spec.Budget.MaxEvents = 1 // fails fast on every attempt
			}
		},
	})
	if len(errs) == 0 {
		t.Fatal("rigged sweep must report failures")
	}
	for _, e := range errs {
		if e.Benchmark != "rodinia/kmeans" {
			t.Fatalf("unexpected failure: %v", &e)
		}
	}
	if _, ok := res.Copy["rodinia/srad"]; !ok {
		t.Fatal("srad copy run must survive kmeans failures")
	}
	if _, ok := res.Limited["rodinia/srad"]; !ok {
		t.Fatal("srad limited run must survive kmeans failures")
	}
	if names := res.Names(); len(names) != 1 || names[0] != "rodinia/srad" {
		t.Fatalf("Names() = %v", names)
	}
	for name, txt := range map[string]string{
		"fig4": Fig4Text(res),
		"fig5": Fig5Text(res),
		"fig6": Fig6Text(res),
		"fig7": Fig7Text(res),
		"fig8": Fig8Text(res),
		"fig9": Fig9Text(res),
	} {
		if !strings.Contains(txt, "rodinia/srad") {
			t.Fatalf("%s missing surviving benchmark:\n%s", name, txt)
		}
		if !strings.Contains(txt, "†") || !strings.Contains(txt, "rodinia/kmeans") {
			t.Fatalf("%s missing failure footnote:\n%s", name, txt)
		}
		if strings.Contains(txt, "NaN") || strings.Contains(txt, "%!") {
			t.Fatalf("%s has formatting garbage:\n%s", name, txt)
		}
	}
}

// TestTable2EmptyAndZeroGuards pins the Table II edge cases: an empty
// census renders just the header (no panic), and a zero total renders 0%
// rows instead of NaN.
func TestTable2EmptyAndZeroGuards(t *testing.T) {
	if txt := Table2TextOf(nil); !strings.Contains(txt, "Suite") || strings.Contains(txt, "portion") {
		t.Fatalf("empty census must render header only:\n%s", txt)
	}
	txt := Table2TextOf([]bench.Table2Row{{Suite: "total", Num: 0}})
	if strings.Contains(txt, "NaN") || strings.Contains(txt, "%!") {
		t.Fatalf("zero-total census must not render NaN:\n%s", txt)
	}
	if !strings.Contains(txt, "portion") {
		t.Fatalf("zero-total census must still render the portion row:\n%s", txt)
	}
}

// TestSweepDeterministicAcrossJobs is the concurrency acceptance test: a
// sweep with a rigged failure must produce identical Results — including
// the order of Failed and Notes and every rendered figure — at Jobs 1 and
// Jobs 8. Run under -race this also exercises the pool for data races.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) (*Results, []harness.RunError) {
		return RunSweep(bench.SizeSmall, SweepOpts{
			Only: []string{"rodinia/backprop", "rodinia/kmeans", "rodinia/srad"},
			Jobs: jobs,
			PerRun: func(spec *harness.Spec) {
				if spec.Bench.Info().FullName() == "rodinia/kmeans" {
					spec.Budget.MaxEvents = 1 // fails fast on every attempt
				}
			},
		})
	}
	serial, serialErrs := run(1)
	wide, wideErrs := run(8)

	if len(serialErrs) == 0 {
		t.Fatal("rigged sweep must report failures")
	}
	if len(serialErrs) != len(wideErrs) {
		t.Fatalf("failure count differs: %d vs %d", len(serialErrs), len(wideErrs))
	}
	for i := range serialErrs {
		if serialErrs[i].Error() != wideErrs[i].Error() {
			t.Fatalf("Failed[%d] differs:\n  jobs=1: %v\n  jobs=8: %v",
				i, &serialErrs[i], &wideErrs[i])
		}
	}
	if a, b := strings.Join(serial.Notes, "\n"), strings.Join(wide.Notes, "\n"); a != b {
		t.Fatalf("Notes differ:\n  jobs=1: %s\n  jobs=8: %s", a, b)
	}
	for name, render := range map[string]func(*Results) string{
		"fig4": Fig4Text, "fig5": Fig5Text, "fig6": Fig6Text,
		"fig7": Fig7Text, "fig8": Fig8Text, "fig9": Fig9Text,
		"fig10": Fig10Text,
	} {
		if a, b := render(serial), render(wide); a != b {
			t.Fatalf("%s differs between jobs=1 and jobs=8:\n--- jobs=1\n%s\n--- jobs=8\n%s", name, a, b)
		}
	}
	// Wall-clock durations are the one legitimately nondeterministic field
	// in the export; zero them before comparing.
	zeroWall := func(r *Results) {
		for i := range r.Runs {
			r.Runs[i].Wall = 0
		}
		for i := range r.Failed {
			r.Failed[i].Wall = 0
		}
	}
	zeroWall(serial)
	zeroWall(wide)
	aj, err := json.Marshal(serial.JSON())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(wide.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("JSON export differs between jobs=1 and jobs=8")
	}
}

// TestWriteJSON exercises the sweep's JSON export end to end on fake data.
func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := WriteJSON(path, fakeResults()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc SweepDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.Fig4.Rows) != 2 || doc.Fig4.Rows[0].Benchmark != "x/y" {
		t.Fatalf("fig4 rows = %+v", doc.Fig4.Rows)
	}
	if len(doc.Fig78Rows) != 2 {
		t.Fatalf("fig78 rows = %+v", doc.Fig78Rows)
	}
}

// TestFaultSweep pins the -exp faults acceptance criteria: each injected
// fault slows its victim down (directionally correct) while the Eq. 1 and
// Eqs. 2-4 model outputs stay finite.
func TestFaultSweep(t *testing.T) {
	rows := FaultSweep(bench.SizeSmall, harness.Budget{})
	if len(rows) != len(FaultCases()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(FaultCases()))
	}
	for i := range rows {
		fr := &rows[i]
		if len(fr.Errs) != 0 {
			t.Fatalf("%s: unexpected failures: %v", fr.Case.Label, fr.Errs)
		}
		if !fr.ModelsFinite() {
			t.Fatalf("%s: model outputs not finite: base %+v inj %+v",
				fr.Case.Label, fr.Baseline, fr.Injected)
		}
		if s := fr.Slowdown(); s < 1 {
			t.Fatalf("%s: injected fault sped the run up (%.3fx)", fr.Case.Label, s)
		}
	}
	txt := FaultSweepText(rows)
	for _, want := range []string{"pcie-throttle", "slow-fault-handler", "dram-channel-stall", "finite"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("fault sweep text missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "BROKEN") || strings.Contains(txt, "NaN") || strings.Contains(txt, "%!") {
		t.Fatalf("fault sweep text malformed:\n%s", txt)
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVs(dir, fakeResults()); err != nil {
		t.Fatal(err)
	}
	for f, wantLines := range map[string]int{
		// header + copy + limited for the one benchmark...
		"fig4_footprint.csv":      3,
		"fig5_accesses.csv":       3,
		"fig6_runtime.csv":        3,
		"fig78_models.csv":        3,
		"fig9_classification.csv": 3,
		// ...and header + the one async organization.
		"fig10_overlap.csv": 2,
	} {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) != wantLines {
			t.Fatalf("%s: %d lines, want %d", f, len(lines), wantLines)
		}
		if !strings.Contains(lines[1], "x/y") {
			t.Fatalf("%s: missing benchmark row", f)
		}
	}
}

// TestSweepTracedWithProgress is the observability acceptance test: a
// rigged sweep run with tracing and progress enabled must (a) render the
// same figure bytes as the untraced run, (b) export a valid trace with
// one process per run, (c) report every run — success and failure alike —
// in the symmetric runs section, and (d) stream progress lines on its own
// writer.
func TestSweepTracedWithProgress(t *testing.T) {
	only := []string{"rodinia/kmeans", "rodinia/srad"}
	rig := func(spec *harness.Spec) {
		if spec.Bench.Info().FullName() == "rodinia/kmeans" {
			spec.Budget.MaxEvents = 1 // fails fast on every attempt
		}
	}
	plain, _ := RunSweep(bench.SizeSmall, SweepOpts{Only: only, PerRun: rig})
	var progress bytes.Buffer
	traced, _ := RunSweep(bench.SizeSmall, SweepOpts{
		Only: only, PerRun: rig,
		Trace:    true,
		Progress: sweep.NewTracker(&progress, 0),
	})

	for name, render := range map[string]func(*Results) string{
		"fig4": Fig4Text, "fig6": Fig6Text, "fig9": Fig9Text,
	} {
		if a, b := render(plain), render(traced); a != b {
			t.Fatalf("%s differs with tracing on:\n--- off\n%s\n--- on\n%s", name, a, b)
		}
	}

	n := len(traced.Runs) // base modes plus kmeans's extra modes
	if n < 4 || len(traced.Traces) != n {
		t.Fatalf("Traces = %d recorders for %d runs", len(traced.Traces), n)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, traced.Traces); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("sweep trace invalid: %v", err)
	}
	if fs.Processes != n || fs.Spans == 0 {
		t.Fatalf("file stats = %+v, want %d processes with spans", fs, n)
	}

	var okRuns, failedRuns int
	for _, m := range traced.Runs {
		if m.Failed {
			failedRuns++
		} else {
			okRuns++
			if m.SimTime <= 0 || m.Events == 0 || len(m.Phases) == 0 {
				t.Fatalf("successful run missing telemetry: %+v", m)
			}
		}
	}
	if okRuns != 2 || failedRuns != n-2 { // srad's two base modes succeed
		t.Fatalf("runs split %d ok / %d failed, want 2/%d", okRuns, failedRuns, n-2)
	}
	doc := traced.JSON()
	if len(doc.Runs) != n {
		t.Fatalf("sweep doc runs section has %d records, want %d", len(doc.Runs), n)
	}

	out := progress.String()
	for _, want := range []string{"start ", "done  ", "FAILED", "sweep complete: "} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	// Untraced sweeps must not retain recorders.
	if plain.Traces != nil {
		t.Fatalf("untraced sweep kept %d recorders", len(plain.Traces))
	}
}
