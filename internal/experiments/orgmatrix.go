package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
)

// OrgMatrixText renders the organization capability matrix: one row per
// registered benchmark, one column per run mode, marking which
// organizations each implementation supports. This is the same capability
// surface GET /v1/benchmarks serves as JSON; clients consult either
// before requesting an overlapped sweep.
func OrgMatrixText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ORGANIZATION CAPABILITY MATRIX (x = supported)\n")
	fmt.Fprintf(&b, "%-26s", "benchmark")
	for m := bench.Mode(0); m < bench.NumModes; m++ {
		fmt.Fprintf(&b, " %16s", m.String())
	}
	b.WriteString("\n")
	counts := make([]int, bench.NumModes)
	total := 0
	for _, bm := range bench.All() {
		info := bm.Info()
		total++
		fmt.Fprintf(&b, "%-26s", info.FullName())
		for m := bench.Mode(0); m < bench.NumModes; m++ {
			mark := "-"
			if info.Supports(m) {
				mark = "x"
				counts[m]++
			}
			fmt.Fprintf(&b, " %16s", mark)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-26s", fmt.Sprintf("supported (%d total)", total))
	for m := bench.Mode(0); m < bench.NumModes; m++ {
		fmt.Fprintf(&b, " %16d", counts[m])
	}
	b.WriteString("\n")
	return b.String()
}
