// Package journal is an append-only, crash-safe write-ahead log of
// per-run sweep outcomes. The paper's evaluation sweep is hours of
// simulation; a crash, OOM kill, or operator interrupt without a journal
// discards every completed run. With one, a restarted sweep replays the
// journal, skips the runs it already has, and re-executes only the rest —
// producing output byte-identical to an uninterrupted sweep.
//
// The format is line-oriented JSONL, one record per line, each line
// guarded by a CRC32-Castagnoli checksum of its JSON body:
//
//	%08x <json>\n
//
// The first line is a header record naming the format version, the
// journal kind (which command wrote it), the sweep's config fingerprint,
// and the slot list. Every later line is one run outcome keyed by its
// slot name. Appends are fsync'd before Append returns, so a record is
// durable — a run either made it to stable storage or it will be re-run;
// there is no in-between.
//
// Recovery distinguishes a torn tail from corruption. A machine dying
// mid-write can tear at most the final line (appends are sequential and
// synced), so a bad LAST line is recovered by truncating it away. A bad
// line anywhere earlier means the file was edited or the disk lied —
// that is corruption, and Open refuses it rather than silently dropping
// completed work.
//
// The fingerprint is the journal's staleness guard: it hashes everything
// that determines a sweep's results (system config, benchmark list and
// modes, fault plan, budgets). Opening a journal whose fingerprint does
// not match the current configuration fails loudly — resuming someone
// else's sweep would splice together results from two different
// experiments.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/fsx"
)

// Version is the journal format version. A version bump invalidates old
// journals (they fail Open), which is the safe failure mode for a format
// change: re-running a sweep is cheap next to silently misreading it.
const Version = 1

// castagnoli is the CRC polynomial table; Castagnoli over IEEE for its
// better error-detection spread (and hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFingerprint reports a journal written by a different sweep
// configuration. Wrapped by the error Open returns, so callers can
// errors.Is it and tell the operator to pass a fresh state dir.
var ErrFingerprint = errors.New("journal: config fingerprint mismatch")

// ErrCorrupt reports a journal damaged beyond the recoverable torn-tail
// case: a checksum failure before the final line, or an unreadable
// header.
var ErrCorrupt = errors.New("journal: corrupt")

// Header is the first record of every journal file.
type Header struct {
	// V is the format version (Version at write time).
	V int `json:"v"`
	// Kind names the producing command ("experiments", "hetsim"), so a
	// state dir handed to the wrong command fails clearly.
	Kind string `json:"kind"`
	// Fingerprint is the hex sweep-config hash the journal belongs to.
	Fingerprint string `json:"fingerprint"`
	// Slots is the ordered run-slot list at write time, recorded for
	// post-mortem readability (the fingerprint already covers it).
	Slots []string `json:"slots"`
}

// Record is one journaled run outcome. Payload is the run's serialized
// outcome, kept as raw JSON here so the journal stays agnostic of the
// harness types above it.
type Record struct {
	// Slot is the run's stable key in the sweep (e.g. "rodinia/bfs/copy").
	Slot string `json:"slot"`
	// Seq is the 1-based append order, a self-check against editing.
	Seq int `json:"seq"`
	// Payload is the outcome document.
	Payload json.RawMessage `json:"payload"`
}

// Journal is an open journal file in append mode. Not safe for
// concurrent use; the sweep serializes appends through its own lock.
type Journal struct {
	f    fsx.File
	path string
	seq  int // last sequence number written or replayed
}

// line formats one record line: an 8-hex-digit CRC of body, a space, the
// body, a newline.
func line(body []byte) []byte {
	out := make([]byte, 0, len(body)+10)
	out = append(out, fmt.Sprintf("%08x ", crc32.Checksum(body, castagnoli))...)
	out = append(out, body...)
	return append(out, '\n')
}

// parseLine validates one journal line and returns its JSON body.
func parseLine(ln string) ([]byte, error) {
	// "%08x " prefix: 8 hex digits and a space, then the body.
	if len(ln) < 10 || ln[8] != ' ' {
		return nil, fmt.Errorf("malformed line (no checksum prefix)")
	}
	want, err := strconv.ParseUint(ln[:8], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum: %v", err)
	}
	body := ln[9:]
	if got := crc32.Checksum([]byte(body), castagnoli); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
	}
	return []byte(body), nil
}

// SyncDir fsyncs the directory at dir. A freshly created or renamed file
// is only durable once its directory entry is too: fsyncing the file
// flushes its contents, but the entry naming it lives in the directory,
// and a crash before the directory reaches stable storage can lose the
// file wholesale. Callers creating, renaming, or removing durable files
// follow up with SyncDir on the parent.
func SyncDir(dir string) error { return SyncDirOn(fsx.OS, dir) }

// SyncDirOn is SyncDir over an injectable filesystem.
func SyncDirOn(fsys fsx.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}

// writeHeader writes and syncs the header line into f.
func writeHeader(f fsx.File, kind, fingerprint string, slots []string) error {
	hdr, err := json.Marshal(Header{V: Version, Kind: kind, Fingerprint: fingerprint, Slots: slots})
	if err != nil {
		return fmt.Errorf("journal: marshal header: %w", err)
	}
	if _, err := f.Write(line(hdr)); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: sync header: %w", err)
	}
	return nil
}

// Create starts a fresh journal at path, writing and syncing the header
// — and the parent directory entry — before returning. An existing file
// is truncated: the caller decides create-vs-resume, the journal just
// obeys.
func Create(path, kind, fingerprint string, slots []string) (*Journal, error) {
	return CreateOn(fsx.OS, path, kind, fingerprint, slots)
}

// CreateOn is Create over an injectable filesystem, so tests (and the
// daemon's chaos suite) can script the disk failing underneath it.
func CreateOn(fsys fsx.FS, path, kind, fingerprint string, slots []string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	if err := writeHeader(f, kind, fingerprint, slots); err != nil {
		f.Close()
		return nil, err
	}
	// The header is durable in the file, but the file's own directory
	// entry is not until the directory is synced: a crash here could
	// otherwise lose the just-created journal entirely.
	if err := SyncDirOn(fsys, filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Open replays an existing journal at path, validating every line,
// recovering a torn final line by truncation, and rejecting a journal
// whose kind or fingerprint does not match the caller's. It returns the
// journal positioned for appending plus the replayed records in append
// order (later records for the same slot supersede earlier ones; the
// caller applies that policy).
func Open(path, kind, fingerprint string) (*Journal, []Record, error) {
	return OpenOn(fsx.OS, path, kind, fingerprint)
}

// OpenOn is Open over an injectable filesystem.
func OpenOn(fsys fsx.FS, path, kind, fingerprint string) (*Journal, []Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	if st, serr := f.Stat(); serr == nil && st.Size() == 0 {
		// A zero-byte journal is the crash window between Create's
		// OpenFile and its header write (or an interrupted truncate) —
		// nothing was ever recorded, so there is nothing to lose: treat
		// it as a brand-new journal rather than hard corruption, so a
		// restart can proceed.
		if err := writeHeader(f, kind, fingerprint, nil); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Journal{f: f, path: path}, nil, nil
	}
	recs, keep, err := replay(f, kind, fingerprint)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Recover the torn tail (if any) by truncating to the last good line,
	// then position for append.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek: %w", err)
	}
	return &Journal{f: f, path: path, seq: len(recs)}, recs, nil
}

// replay validates the whole file: header first, then records. It
// returns the good records and the byte offset of the end of the last
// good line (the truncation point when the tail is torn).
func replay(f fsx.File, kind, fingerprint string) (recs []Record, keep int64, err error) {
	type badLine struct {
		n   int // 1-based line number
		err error
	}
	var bad *badLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // outcome payloads can be large
	var off int64
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Text()
		lineLen := int64(len(raw)) + 1 // +\n
		if bad != nil {
			// A bad line followed by more lines is not a torn tail.
			return nil, 0, fmt.Errorf("%w: line %d: %v (followed by %d more lines)",
				ErrCorrupt, bad.n, bad.err, n-bad.n)
		}
		body, perr := parseLine(raw)
		if perr == nil && n == 1 {
			var hdr Header
			if uerr := json.Unmarshal(body, &hdr); uerr != nil {
				return nil, 0, fmt.Errorf("%w: bad header: %v", ErrCorrupt, uerr)
			} else if hdr.V != Version {
				return nil, 0, fmt.Errorf("%w: format version %d, this build reads %d",
					ErrCorrupt, hdr.V, Version)
			} else if hdr.Kind != kind {
				return nil, 0, fmt.Errorf("journal: written by %q, not %q — wrong state dir?", hdr.Kind, kind)
			} else if hdr.Fingerprint != fingerprint {
				return nil, 0, fmt.Errorf("%w: journal has %s, current config is %s — the sweep configuration changed; use a fresh state dir (or delete the stale journal) to start over",
					ErrFingerprint, short(hdr.Fingerprint), short(fingerprint))
			}
		}
		if perr == nil && n > 1 {
			// The checksum passed, so the line was fully written; a
			// semantic failure past this point is editing or a format
			// bug, never a torn write — hard corruption even on the
			// final line.
			var rec Record
			if uerr := json.Unmarshal(body, &rec); uerr != nil {
				return nil, 0, fmt.Errorf("%w: line %d: bad record: %v", ErrCorrupt, n, uerr)
			}
			if rec.Seq != n-1 {
				return nil, 0, fmt.Errorf("%w: line %d: sequence gap (record claims seq %d, expected %d)",
					ErrCorrupt, n, rec.Seq, n-1)
			}
			recs = append(recs, rec)
		}
		if perr != nil {
			// Maybe the torn tail — decided when we know if more follow.
			bad = &badLine{n: n, err: perr}
		} else {
			keep = off + lineLen
		}
		off += lineLen
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, fmt.Errorf("journal: read: %w", serr)
	}
	if bad != nil && bad.n == 1 {
		// Even a torn header is unrecoverable: there is nothing to resume.
		return nil, 0, fmt.Errorf("%w: header line: %v", ErrCorrupt, bad.err)
	}
	return recs, keep, nil
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Append durably writes one outcome record. The record is on stable
// storage when Append returns nil.
func (j *Journal) Append(slot string, payload json.RawMessage) error {
	j.seq++
	body, err := json.Marshal(Record{Slot: slot, Seq: j.seq, Payload: payload})
	if err != nil {
		j.seq--
		return fmt.Errorf("journal: marshal record: %w", err)
	}
	if _, err := j.f.Write(line(body)); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Path reports the journal's file path (for operator messages).
func (j *Journal) Path() string { return j.path }

// Len reports how many records the journal holds (replayed + appended).
func (j *Journal) Len() int { return j.seq }

// Close syncs and closes the file.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: sync on close: %w", err)
	}
	return j.f.Close()
}

// Fingerprint is a helper for building config fingerprints: it hashes a
// sequence of labeled parts into a stable hex digest. Parts are length-
// prefixed so no concatenation of different part lists collides.
type Fingerprint struct {
	parts []string
}

// Add appends one labeled part.
func (fp *Fingerprint) Add(label, value string) {
	fp.parts = append(fp.parts, label, value)
}

// Sum returns the hex digest over all parts added so far.
func (fp *Fingerprint) Sum() string {
	var b strings.Builder
	for _, p := range fp.parts {
		fmt.Fprintf(&b, "%d:%s", len(p), p)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}
