package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/fsx"
)

// appendRange appends records r0..r(n-1) starting at start; payloads are
// deterministic so two journals with the same record set are
// byte-identical files.
func appendRange(t *testing.T, j *Journal, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		payload, _ := json.Marshal(map[string]int{"run": i})
		if err := j.Append("slot", payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// TestTornAppendENOSPCResumes is the satellite acceptance test: a journal
// that hits disk-full mid-Append leaves a torn tail; reopening must
// recover via the torn-tail truncation path and resuming the append must
// produce a file byte-identical to one written with no fault at all.
func TestTornAppendENOSPCResumes(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFault(fsx.OS)

	// The reference journal: no faults, records 0..4.
	ref, err := CreateOn(fsx.OS, filepath.Join(dir, "ref.journal"), "test", "fp", []string{"slot"})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, ref, 0, 5)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// The faulted journal: records 0..2 land, then the disk fills
	// mid-write of record 3 — half the line reaches the file.
	path := filepath.Join(dir, "torn.journal")
	j, err := CreateOn(ff, path, "test", "fp", []string{"slot"})
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, j, 0, 3)
	ff.Inject(fsx.Rule{Op: fsx.OpWrite, Err: fsx.ErrNoSpace, Trip: true, ShortWrite: true})
	payload, _ := json.Marshal(map[string]int{"run": 3})
	if err := j.Append("slot", payload); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk err = %v, want ENOSPC", err)
	}
	j.f.Close() // the process dies here; Close would try to sync

	// Verify the file really is torn: longer than 4 good lines' worth of
	// data but not a whole 5th line.
	torn, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn[len(torn)-1] == '\n' {
		t.Fatal("tail is not torn; the fault did not produce a partial line")
	}

	// The disk clears; reopen and resume. Open must truncate the torn
	// tail and replay exactly records 0..2.
	ff.Clear()
	j2, recs, err := OpenOn(ff, path, "test", "fp")
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		var got map[string]int
		if err := json.Unmarshal(rec.Payload, &got); err != nil || got["run"] != i {
			t.Fatalf("record %d payload = %s (err=%v)", i, rec.Payload, err)
		}
	}
	appendRange(t, j2, 3, 2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	refBytes, _ := os.ReadFile(filepath.Join(dir, "ref.journal"))
	gotBytes, _ := os.ReadFile(path)
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatalf("resumed journal differs from the unfaulted reference:\nref: %q\ngot: %q", refBytes, gotBytes)
	}
}

// TestAppendFsyncEIO: an append whose fsync fails must surface the error
// (the record is not durable), and after the fault clears a reopened
// journal still replays only fully-synced records.
func TestAppendFsyncEIO(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFault(fsx.OS)
	path := filepath.Join(dir, "j.journal")
	j, err := CreateOn(ff, path, "test", "fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRange(t, j, 0, 2)
	ff.FailOp(fsx.OpSync, fsx.ErrIO)
	payload, _ := json.Marshal(map[string]int{"run": 2})
	if err := j.Append("slot", payload); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append with failing fsync err = %v, want EIO", err)
	}
	ff.Clear()
	j.f.Close()

	// The unsynced line may or may not have reached the disk; either way
	// reopening must succeed (intact final line or torn tail, never
	// corruption) with at least the 2 synced records.
	j2, recs, err := OpenOn(ff, path, "test", "fp")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(recs) < 2 {
		t.Fatalf("replayed %d records, want >= 2 (synced appends lost)", len(recs))
	}
}

// TestCreateSyncDirFailure: a Create whose directory fsync fails must
// fail loudly — the journal's existence is not yet durable.
func TestCreateSyncDirFailure(t *testing.T) {
	ff := fsx.NewFault(fsx.OS)
	ff.FailOp(fsx.OpSyncDir, fsx.ErrIO)
	_, err := CreateOn(ff, filepath.Join(t.TempDir(), "j.journal"), "test", "fp", nil)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("create with failing dir fsync err = %v, want EIO", err)
	}
}
