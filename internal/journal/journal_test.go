package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	testKind = "experiments"
	testFP   = "abc123fingerprint"
)

func newJournal(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, testKind, testFP, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		slot := string(rune('a' + i))
		if err := j.Append(slot, json.RawMessage(`{"run":"`+slot+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(path, testKind, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		want := string(rune('a' + i))
		if r.Slot != want || r.Seq != i+1 {
			t.Fatalf("record %d = {%q, %d}, want {%q, %d}", i, r.Slot, r.Seq, want, i+1)
		}
		var payload struct{ Run string }
		if err := json.Unmarshal(r.Payload, &payload); err != nil || payload.Run != want {
			t.Fatalf("record %d payload %s: %v", i, r.Payload, err)
		}
	}
	if j2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j2.Len())
	}
}

func TestAppendAfterReopen(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 2)
	j.Close()

	j2, recs, err := Open(path, testKind, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d, want 2", len(recs))
	}
	if err := j2.Append("c", json.RawMessage(`{"run":"c"}`)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err = Open(path, testKind, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Slot != "c" || recs[2].Seq != 3 {
		t.Fatalf("after reopen+append: %+v", recs)
	}
}

// TestTornTailRecovered: a partial final line (the crash-mid-write case)
// is truncated away and the journal stays usable.
func TestTornTailRecovered(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 3)
	j.Close()

	// Tear the last line: chop bytes off the end of the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(path, testKind, testFP)
	if err != nil {
		t.Fatalf("torn tail should recover, got %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
	}
	// The journal must be appendable after recovery, with the sequence
	// continuing from the last good record.
	if err := j2.Append("c", json.RawMessage(`{"run":"c2"}`)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err = Open(path, testKind, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("post-recovery journal bad: %+v", recs)
	}
}

// TestCorruptMiddleRejected: a bad line with good lines after it cannot
// be a torn tail and must fail loudly instead of dropping records.
func TestCorruptMiddleRejected(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 3)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside line 3 (record 2)'s JSON body.
	lines[2] = strings.Replace(lines[2], `"run"`, `"ruX"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(path, testKind, testFP)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle line: got %v, want ErrCorrupt", err)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 1)
	j.Close()

	_, _, err := Open(path, testKind, "differentfingerprint")
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("fingerprint mismatch: got %v, want ErrFingerprint", err)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	j, path := newJournal(t)
	j.Close()

	_, _, err := Open(path, "hetsim", testFP)
	if err == nil || !strings.Contains(err.Error(), "wrong state dir") {
		t.Fatalf("kind mismatch: got %v", err)
	}
}

// TestTornHeaderRejected: a journal torn inside its very first line has
// nothing to resume from.
func TestTornHeaderRejected(t *testing.T) {
	j, path := newJournal(t)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(path, testKind, testFP)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn header: got %v, want ErrCorrupt", err)
	}
}

// TestEditedRecordRejected: a CRC-valid final line whose sequence number
// does not follow is editing, not a torn write — refuse it.
func TestEditedRecordRejected(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 2)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Delete the middle record so the last record's seq gaps.
	out := lines[0] + lines[2]
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(path, testKind, testFP)
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("seq gap: got %v, want ErrCorrupt sequence gap", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	hdr, _ := json.Marshal(Header{V: Version + 1, Kind: testKind, Fingerprint: testFP})
	if err := os.WriteFile(path, line(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, testKind, testFP)
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: got %v", err)
	}
}

func TestFingerprintHelper(t *testing.T) {
	var a, b Fingerprint
	a.Add("size", "small")
	a.Add("bench", "rodinia/bfs|copy")
	b.Add("size", "small")
	b.Add("bench", "rodinia/bfs|copy")
	if a.Sum() != b.Sum() {
		t.Fatal("same parts must hash equal")
	}
	var c Fingerprint
	c.Add("size", "smallbench")
	c.Add("", "rodinia/bfs|copy")
	if a.Sum() == c.Sum() {
		t.Fatal("length-prefixing must prevent concatenation collisions")
	}
	var d Fingerprint
	d.Add("size", "large")
	d.Add("bench", "rodinia/bfs|copy")
	if a.Sum() == d.Sum() {
		t.Fatal("different values must hash differently")
	}
}

// TestZeroByteJournalTreatedAsNew: a zero-byte file is the crash window
// between Create's open and its header write. There is nothing recorded
// and therefore nothing to lose, so Open must proceed as a fresh journal
// instead of refusing — a restarted sweep should run, not wedge.
func TestZeroByteJournalTreatedAsNew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	j, recs, err := Open(path, testKind, testFP)
	if err != nil {
		t.Fatalf("zero-byte journal should open as new, got %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("zero-byte journal replayed %d records, want 0", len(recs))
	}
	// It must behave as a real journal from here: appendable, and
	// reopenable with the header Open wrote on its behalf.
	if err := j.Append("a", json.RawMessage(`{"run":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(path, testKind, testFP)
	if err != nil {
		t.Fatalf("reopen after zero-byte recovery: %v", err)
	}
	if len(recs) != 1 || recs[0].Slot != "a" || recs[0].Seq != 1 {
		t.Fatalf("post-recovery records: %+v", recs)
	}
	// The recovered journal carries this caller's kind and fingerprint;
	// a different configuration must still be rejected.
	if _, _, err := Open(path, testKind, "otherfingerprint"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("recovered journal fingerprint check: got %v, want ErrFingerprint", err)
	}
}

// TestSyncDir pins the directory-fsync helper Create (and the hetsimd
// result cache) rely on for durability of file creation and rename.
func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory should fail")
	}
}

// TestCreateSyncsParentDir: Create must succeed (header + directory entry
// synced) in a freshly made nested directory — the layout the sweep
// commands produce with -state DIR on first use.
func TestCreateSyncsParentDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state", "journals")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, err := Create(filepath.Join(dir, "sweep.journal"), testKind, testFP, nil)
	if err != nil {
		t.Fatalf("Create in nested dir: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateTruncatesExisting pins that Create starts over rather than
// appending to a stale file.
func TestCreateTruncatesExisting(t *testing.T) {
	j, path := newJournal(t)
	appendN(t, j, 3)
	j.Close()

	j2, err := Create(path, testKind, testFP, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err := Open(path, testKind, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("Create did not truncate: %d stale records", len(recs))
	}
}
