package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// NW is Rodinia's Needleman-Wunsch sequence alignment: a wavefront of
// 16x16-block kernels over the score matrix, one kernel per anti-diagonal —
// the many-to-few dependency pattern the paper flags as hard to pipeline.
type NW struct{}

func init() { bench.Register(NW{}) }

// Info describes nw. It is the Rodinia benchmark whose inter-stage
// dependencies block pipeline parallelization in Table II.
func (NW) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "nw",
		Desc:   "Needleman-Wunsch wavefront DP alignment",
		PCComm: true, PipeParal: false, Regular: true,
	}
}

// Run executes nw.
func (NW) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(512, size) // matrix side
	const B = 16
	nb := n / B

	seq1 := workload.Sequence(n, 61)
	seq2 := workload.Sequence(n, 62)
	ref := device.AllocBuf[int32](s, n*n, "reference", device.Host)
	score := device.AllocBuf[int32](s, (n+1)*(n+1), "score", device.Host)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if seq1[r] == seq2[c] {
				ref.V[r*n+c] = 3
			} else {
				ref.V[r*n+c] = -2
			}
		}
	}
	for i := 0; i <= n; i++ {
		score.V[i] = int32(-i)
		score.V[i*(n+1)] = int32(-i)
	}

	s.BeginROI()
	dRef, _ := device.ToDevice(s, ref)
	dScore, _ := device.ToDevice(s, score)
	s.Drain()

	stride := n + 1
	blockKernel := func(diag, blocks, firstBr int) device.KernelSpec {
		return device.KernelSpec{
			Name: "nw_diagonal", Grid: blocks, Block: B,
			ScratchBytes: (B + 1) * (B + 1) * 4,
			Func: func(t *device.Thread) {
				br := firstBr + t.CTA()
				bc := diag - br
				r0, c0 := br*B, bc*B
				// Each thread owns one row of the block; the block's cells
				// fill over internal anti-diagonals with barriers between.
				tr := r0 + t.Lane()
				refRow := device.LdN(t, dRef, tr*n+c0, B)
				// Left halo cell for this row and top halo for lane 0.
				device.Ld(t, dScore, (tr+1)*stride+c0)
				if t.Lane() == 0 {
					device.LdN(t, dScore, r0*stride+c0, B+1)
				}
				for d := 0; d < B; d++ {
					// One cell per thread per internal diagonal (lane
					// participates when its cell is on diagonal d).
					c := d - t.Lane()
					if c >= 0 && c < B {
						up := dScore.V[tr*stride+(c0+c+1)]
						left := dScore.V[(tr+1)*stride+(c0+c)]
						dg := dScore.V[tr*stride+(c0+c)]
						best := dg + refRow[c]
						if v := up - 1; v > best {
							best = v
						}
						if v := left - 1; v > best {
							best = v
						}
						t.FLOP(4)
						t.ScratchOp(3)
						dScore.V[(tr+1)*stride+(c0+c+1)] = best
					}
					t.Sync()
				}
				// Write the block's rows back to global memory.
				device.StN(t, dScore, (tr+1)*stride+c0+1, dScore.V[(tr+1)*stride+c0+1:(tr+1)*stride+c0+1+B])
			},
		}
	}

	// Forward wavefront: one kernel per anti-diagonal of blocks.
	for diag := 0; diag <= 2*(nb-1); diag++ {
		firstBr := 0
		if diag >= nb {
			firstBr = diag - nb + 1
		}
		lastBr := diag
		if lastBr > nb-1 {
			lastBr = nb - 1
		}
		s.Launch(blockKernel(diag, lastBr-firstBr+1, firstBr))
	}
	s.Wait(device.FromDevice(s, score, dScore))
	// CPU traceback along the optimal path — dependent loads.
	s.CPUTask(device.CPUTaskSpec{
		Name: "nw_traceback", Threads: 1,
		Func: func(c *device.CPUThread) {
			r, cl := n, n
			for r > 0 && cl > 0 {
				up := device.LdDep(c, score, (r-1)*stride+cl)
				left := device.LdDep(c, score, r*stride+(cl-1))
				dg := device.LdDep(c, score, (r-1)*stride+(cl-1))
				c.FLOP(3)
				switch {
				case dg >= up && dg >= left:
					r, cl = r-1, cl-1
				case up >= left:
					r--
				default:
					cl--
				}
			}
		},
	})
	s.EndROI()
	s.AddResult(float64(score.V[n*stride+n]), device.ChecksumI32(score.V))
}
