package rodinia

import (
	"math"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// SRAD is Rodinia's speckle-reducing anisotropic diffusion: per iteration a
// CPU statistics phase over an image ROI window, a gradient/coefficient
// kernel writing four large GPU-temporary arrays, and an update kernel.
// Those never-CPU-touched temporaries are what makes srad the paper's page-
// fault cautionary tale on the heterogeneous processor (~7x GPU slowdown):
// thousands of would-be-parallel first-touch writes serialize on the CPU
// fault handler, which also clears pages, shifting accesses to the CPU.
type SRAD struct{}

func init() { bench.Register(SRAD{}) }

// Info describes srad.
func (SRAD) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "srad",
		Desc:   "speckle-reducing anisotropic diffusion with GPU-temp arrays",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes srad.
func (SRAD) Run(s *device.System, mode bench.Mode, size bench.Size) {
	rows := bench.ScaleSide(512, size)
	cols := 512
	iters := 3
	block := 256
	cells := rows * cols

	img := device.AllocBuf[float32](s, cells, "image", device.Host)
	copy(img.V, workload.Grid(rows, cols, 41))

	s.BeginROI()
	dImg, _ := device.ToDevice(s, img)
	// Four direction-coefficient temporaries, GPU-only in both versions.
	dN := device.AllocBuf[float32](s, cells, "dN", device.Device)
	dS := device.AllocBuf[float32](s, cells, "dS", device.Device)
	dE := device.AllocBuf[float32](s, cells, "dE", device.Device)
	dC := device.AllocBuf[float32](s, cells, "coeff", device.Device)
	s.Drain()

	q0 := float32(0)
	for it := 0; it < iters; it++ {
		// CPU statistics over the ROI window (Rodinia computes q0sqr on the
		// host each iteration).
		if !s.Unified() {
			device.Memcpy(s, img, dImg)
		}
		s.CPUTask(device.CPUTaskSpec{
			Name: "srad_stats", Threads: 1,
			Func: func(c *device.CPUThread) {
				var sum, sum2 float64
				win := 64
				for r := 0; r < win; r++ {
					row := device.LdN(c, img, r*cols, win)
					for _, v := range row {
						sum += float64(v)
						sum2 += float64(v) * float64(v)
					}
					c.FLOP(2 * win)
				}
				mean := sum / float64(win*win)
				vr := sum2/float64(win*win) - mean*mean
				q0 = float32(vr / (mean*mean + 1e-9))
				c.FLOP(6)
			},
		})
		// Kernel 1: gradients and diffusion coefficients into temporaries.
		s.Launch(device.KernelSpec{
			Name: "srad_grad", Grid: cells / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				r, cl := i/cols, i%cols
				v := device.Ld(t, dImg, i)
				up, dn, rt := v, v, v
				if r > 0 {
					up = device.Ld(t, dImg, i-cols)
				}
				if r < rows-1 {
					dn = device.Ld(t, dImg, i+cols)
				}
				if cl < cols-1 {
					rt = device.Ld(t, dImg, i+1)
				}
				g2 := (up-v)*(up-v) + (dn-v)*(dn-v) + (rt-v)*(rt-v)
				den := 1 + g2/(v*v+1e-9) + q0
				co := float32(1.0 / float64(den))
				if co < 0 {
					co = 0
				} else if co > 1 {
					co = 1
				}
				t.FLOP(16)
				device.St(t, dN, i, up-v)
				device.St(t, dS, i, dn-v)
				device.St(t, dE, i, rt-v)
				device.St(t, dC, i, co)
			},
		})
		// Kernel 2: diffusion update of the image in place.
		s.Launch(device.KernelSpec{
			Name: "srad_update", Grid: cells / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				v := device.Ld(t, dImg, i)
				cN := device.Ld(t, dN, i)
				cS := device.Ld(t, dS, i)
				cE := device.Ld(t, dE, i)
				co := device.Ld(t, dC, i)
				nv := v + 0.25*co*(cN+cS+cE)
				if math.IsNaN(float64(nv)) {
					nv = v
				}
				t.FLOP(6)
				device.St(t, dImg, i, nv)
			},
		})
	}
	s.Wait(device.FromDevice(s, img, dImg))
	s.EndROI()
	s.AddResult(device.ChecksumF32(img.V))
}
