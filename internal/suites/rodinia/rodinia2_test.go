package rodinia

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// TestCFDMatchesHostReplica replays the flux/time-step iterations on the
// host and compares digests.
func TestCFDMatchesHostReplica(t *testing.T) {
	nel := bench.ScaleN(16384, bench.SizeSmall)
	const nvar, nnb = 5, 4
	iters := 3
	vars := make([]float32, nel*nvar)
	copy(vars, workload.Points(nel*nvar, 1, 121))
	nb := make([]int32, nel*nnb)
	rng := workload.RNG(122)
	for i := range nb {
		nb[i] = int32(rng.Intn(nel))
	}
	flux := make([]float32, nel*nvar)
	for it := 0; it < iters; it++ {
		for e := 0; e < nel; e++ {
			for v := 0; v < nvar; v++ {
				flux[e*nvar+v] = vars[e*nvar+v]
			}
			for k := 0; k < nnb; k++ {
				j := int(nb[e*nnb+k])
				for v := 0; v < nvar; v++ {
					flux[e*nvar+v] += 0.1 * (vars[j*nvar+v] - vars[e*nvar+v])
				}
			}
		}
		for e := 0; e < nel; e++ {
			for v := 0; v < nvar; v++ {
				vars[e*nvar+v] = 0.9*flux[e*nvar+v] + 0.01
			}
		}
	}
	var want float64
	for _, v := range vars {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(CFD{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("cfd digest = %v, want %v", res[0], want)
	}
}

// TestHeartwallPointsStayInBounds: tracked points must stay inside the
// frame after every update.
func TestHeartwallPointsStayInBounds(t *testing.T) {
	npts := float64(bench.ScaleN(256, bench.SizeSmall))
	imgSide, patch := 512.0, 16.0
	_, res := bench.ExecuteWithResult(Heartwall{}, bench.ModeLimitedCopy, bench.SizeSmall)
	maxSum := npts * (imgSide - 2*patch)
	if res[0] < 0 || res[0] > maxSum || res[1] < 0 || res[1] > maxSum {
		t.Fatalf("points out of bounds: sums (%v, %v), limit %v", res[0], res[1], maxSum)
	}
}

// TestMummerMatchesReplica replays the table walk on the host.
func TestMummerMatchesReplica(t *testing.T) {
	refLen := bench.ScaleN(65536, bench.SizeSmall)
	nq := bench.ScaleN(2048, bench.SizeSmall)
	qLen := 48
	states := refLen / 4
	table := make([]int32, states*4)
	depth := make([]int32, states)
	rng := workload.RNG(141)
	for i := range table {
		table[i] = int32(rng.Intn(states))
	}
	for i := range depth {
		depth[i] = int32(rng.Intn(qLen))
	}
	queries := workload.Sequence(nq*qLen, 142)
	var want float64
	for q := 0; q < nq; q++ {
		state := int32(0)
		best := int32(0)
		for j := 0; j < qLen; j++ {
			sym := queries[q*qLen+j]
			state = table[int(state)*4+int(sym)]
			if d := depth[state]; d > best {
				best = d
			}
		}
		want += float64(best)
	}
	_, res := bench.ExecuteWithResult(MummerGPU{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("mummer digest = %v, want %v", res[0], want)
	}
}

// TestPFFloatAgreesAcrossMachines: the optimized particle filter is
// digest-identical between machines (covered globally, pinned here because
// its partial-sum path exercises Device-buffer faulting on one machine
// only, which must never leak into results).
func TestPFFloatAgreesAcrossMachines(t *testing.T) {
	_, cv := bench.ExecuteWithResult(ParticleFilterFloat{}, bench.ModeCopy, bench.SizeSmall)
	_, lv := bench.ExecuteWithResult(ParticleFilterFloat{}, bench.ModeLimitedCopy, bench.SizeSmall)
	for i := range cv {
		if cv[i] != lv[i] {
			t.Fatalf("digest[%d]: %v != %v", i, cv[i], lv[i])
		}
	}
}
