package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
)

// Streamcluster is Rodinia's online clustering (the paper's strmclstr):
// repeated candidate-center gain kernels on the GPU with CPU open/close
// decisions between them, copying the gain array back every round.
type Streamcluster struct{}

func init() { bench.Register(Streamcluster{}) }

// Info describes streamcluster.
func (Streamcluster) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "streamcluster",
		Desc:   "online clustering: per-candidate gain kernels + CPU decisions",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams, bench.ModeParallelChunked},
	}
}

type scDims struct{ n, d, rounds, block int }

func scSize(size bench.Size) scDims {
	return scDims{n: bench.ScaleN(16384, size), d: 32, rounds: 6, block: 256}
}

type scData struct {
	scDims
	pts    *device.Buf[float32] // [i*d+j], line-aligned rows
	curDst *device.Buf[float32] // current assignment cost per point
	gain   *device.Buf[float32]
}

func scSetup(s *device.System, size bench.Size) *scData {
	dm := scSize(size)
	d := &scData{scDims: dm}
	d.pts = device.AllocBuf[float32](s, dm.n*dm.d, "points", device.Host)
	d.curDst = device.AllocBuf[float32](s, dm.n, "cur_dist", device.Host)
	d.gain = device.AllocBuf[float32](s, dm.n, "gain", device.Host)
	copy(d.pts.V, pointsFor(dm.n, dm.d))
	for i := range d.curDst.V {
		d.curDst.V[i] = 1e3
	}
	return d
}

// gainKernel computes each point's gain if candidate cand were opened.
func (d *scData) gainKernel(pts, curDst, gain *device.Buf[float32], cand, base, count int) device.KernelSpec {
	return device.KernelSpec{
		Name: "sc_pgain", Grid: count / d.block, Block: d.block,
		Func: func(t *device.Thread) {
			i := base + t.Global()
			p := device.LdN(t, pts, i*d.d, d.d)
			c := device.LdN(t, pts, cand*d.d, d.d)
			var dist float32
			for j := 0; j < d.d; j++ {
				df := p[j] - c[j]
				dist += df * df
			}
			t.FLOP(3 * d.d)
			cur := device.Ld(t, curDst, i)
			device.St(t, gain, i, cur-dist)
		},
	}
}

// cpuDecide reduces the gains and, if opening wins, reassigns points.
func (d *scData) cpuDecide(s *device.System, gain, curDst *device.Buf[float32], deps ...*device.Handle) *device.Handle {
	return s.CPUTaskAsync(device.CPUTaskSpec{
		Name: "sc_decide", Threads: 1,
		Func: func(c *device.CPUThread) {
			var total float64
			for i := 0; i < d.n; i++ {
				total += float64(device.Ld(c, gain, i))
				c.FLOP(1)
			}
			if total > 0 {
				for i := 0; i < d.n; i++ {
					g := device.Ld(c, gain, i)
					if g > 0 {
						cur := device.Ld(c, curDst, i)
						device.St(c, curDst, i, cur-g)
					}
					c.FLOP(2)
				}
			}
		},
	}, deps...)
}

// Run executes streamcluster.
func (Streamcluster) Run(s *device.System, mode bench.Mode, size bench.Size) {
	d := scSetup(s, size)
	s.BeginROI()
	switch mode {
	case bench.ModeCopy, bench.ModeLimitedCopy:
		dPts, _ := device.ToDevice(s, d.pts)
		dCur, _ := device.ToDevice(s, d.curDst)
		dGain, _ := device.ToDevice(s, d.gain)
		s.Drain()
		for r := 0; r < d.rounds; r++ {
			if !s.Unified() {
				device.Memcpy(s, dCur, d.curDst)
			}
			s.Launch(d.gainKernel(dPts, dCur, dGain, r*37%d.n, 0, d.n))
			if !s.Unified() {
				device.Memcpy(s, d.gain, dGain)
			}
			s.Wait(d.cpuDecide(s, d.gain, d.curDst))
		}

	case bench.ModeAsyncStreams:
		const chunks = 4
		per := d.n / chunks
		dPts := device.AllocBuf[float32](s, d.n*d.d, "d_points", device.Device)
		dCur := device.AllocBuf[float32](s, d.n, "d_cur", device.Device)
		dGain := device.AllocBuf[float32](s, d.n, "d_gain", device.Device)
		ptsUp := device.MemcpyAsync(s, dPts, d.pts)
		var prev *device.Handle
		for r := 0; r < d.rounds; r++ {
			roundDeps := []*device.Handle{ptsUp}
			if prev != nil {
				roundDeps = append(roundDeps, prev)
			}
			rr := r
			pipe := s.Pipeline(device.PipelineSpec{
				Name: "sc_round", Chunks: chunks,
				H2D: func(c int, deps ...*device.Handle) *device.Handle {
					return device.MemcpyRangeAsync(s, dCur, c*per, d.curDst, c*per, per,
						append(deps, roundDeps...)...)
				},
				Kernel: func(c int, deps ...*device.Handle) *device.Handle {
					return s.LaunchAsync(d.gainKernel(dPts, dCur, dGain, rr*37%d.n, c*per, per), deps...)
				},
				D2H: func(c int, deps ...*device.Handle) *device.Handle {
					return device.MemcpyRangeAsync(s, d.gain, c*per, dGain, c*per, per, deps...)
				},
			})
			prev = d.cpuDecide(s, d.gain, d.curDst, pipe)
		}
		s.Wait(prev)

	case bench.ModeParallelChunked:
		const chunks = 4
		per := d.n / chunks
		var prev *device.Handle
		for r := 0; r < d.rounds; r++ {
			var parts []*device.Handle
			totals := make([]float64, chunks)
			for c := 0; c < chunks; c++ {
				var deps []*device.Handle
				if prev != nil {
					deps = append(deps, prev)
				}
				k := s.LaunchAsync(d.gainKernel(d.pts, d.curDst, d.gain, r*37%d.n, c*per, per), deps...)
				cc := c
				parts = append(parts, s.CPUTaskAsync(device.CPUTaskSpec{
					Name: "sc_partial_sum", Threads: 1,
					Func: func(cth *device.CPUThread) {
						var tt float64
						for i := cc * per; i < (cc+1)*per; i++ {
							tt += float64(device.Ld(cth, d.gain, i))
							cth.FLOP(1)
						}
						totals[cc] = tt
					},
				}, k))
			}
			prev = s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "sc_apply", Threads: 4,
				Func: func(cth *device.CPUThread) {
					var total float64
					for _, t := range totals {
						total += t
					}
					if total <= 0 {
						return
					}
					lo := cth.TID() * d.n / cth.Threads()
					hi := (cth.TID() + 1) * d.n / cth.Threads()
					for i := lo; i < hi; i++ {
						g := device.Ld(cth, d.gain, i)
						if g > 0 {
							cur := device.Ld(cth, d.curDst, i)
							device.St(cth, d.curDst, i, cur-g)
						}
						cth.FLOP(2)
					}
				},
			}, parts...)
		}
		s.Wait(prev)
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(d.curDst.V))
}
