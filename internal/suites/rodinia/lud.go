package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// LUD is Rodinia's blocked LU decomposition: per block step a diagonal
// kernel, a perimeter kernel, and a large internal-update kernel — kernels
// of widely varying size, the paper's example for compute migration of
// short-running kernels onto CPU cores.
type LUD struct{}

func init() { bench.Register(LUD{}) }

// Info describes lud.
func (LUD) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "lud",
		Desc:   "blocked LU decomposition (diag/perimeter/internal kernels)",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes lud.
func (LUD) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(128, size)
	const B = 32
	nb := n / B

	a := device.AllocBuf[float32](s, n*n, "matrix", device.Host)
	copy(a.V, workload.Matrix(n, n, 71))
	for i := 0; i < n; i++ {
		a.V[i*n+i] += float32(2 * n)
	}

	s.BeginROI()
	dA, _ := device.ToDevice(s, a)
	s.Drain()

	for step := 0; step < nb; step++ {
		k0 := step * B
		// Diagonal kernel: one small CTA factorizes the BxB diagonal block.
		s.Launch(device.KernelSpec{
			Name: "lud_diagonal", Grid: 1, Block: B,
			ScratchBytes: B * B * 4,
			Func: func(t *device.Thread) {
				r := k0 + t.Lane()
				device.LdN(t, dA, r*n+k0, B)
				// In-scratch factorization; lane 0 performs the functional
				// elimination once (thread generation is sequential).
				if t.Lane() == 0 {
					for kk := k0; kk < k0+B-1; kk++ {
						piv := dA.V[kk*n+kk]
						for rr := kk + 1; rr < k0+B; rr++ {
							m := dA.V[rr*n+kk] / piv
							dA.V[rr*n+kk] = m
							for cc := kk + 1; cc < k0+B; cc++ {
								dA.V[rr*n+cc] -= m * dA.V[kk*n+cc]
							}
						}
					}
				}
				t.ScratchOp(2 * B)
				t.FLOP(2 * B * B / 3)
				t.Sync()
				device.StN(t, dA, r*n+k0, dA.V[r*n+k0:r*n+k0+B])
			},
		})
		rem := nb - step - 1
		if rem == 0 {
			break
		}
		// Perimeter kernel: update the row and column panels.
		s.Launch(device.KernelSpec{
			Name: "lud_perimeter", Grid: rem, Block: 2 * B,
			ScratchBytes: 3 * B * B * 4,
			Func: func(t *device.Thread) {
				blk := k0 + B + t.CTA()*B
				half := t.Lane() < B
				if half {
					// Row panel: row t.Lane() of block (k0, blk).
					r := k0 + t.Lane()
					device.LdN(t, dA, r*n+blk, B)
					if t.Lane() == 0 {
						for kk := k0; kk < k0+B; kk++ {
							for rr := kk + 1; rr < k0+B; rr++ {
								m := dA.V[rr*n+kk]
								for cc := blk; cc < blk+B; cc++ {
									dA.V[rr*n+cc] -= m * dA.V[kk*n+cc]
								}
							}
						}
					}
					t.ScratchOp(B)
					t.FLOP(B * B)
					t.Sync()
					device.StN(t, dA, r*n+blk, dA.V[r*n+blk:r*n+blk+B])
				} else {
					// Column panel: row (blk + lane-B) of block (blk, k0).
					r := blk + t.Lane() - B
					device.LdN(t, dA, r*n+k0, B)
					if t.Lane() == B {
						for kk := k0; kk < k0+B; kk++ {
							piv := dA.V[kk*n+kk]
							for rr := blk; rr < blk+B; rr++ {
								m := dA.V[rr*n+kk] / piv
								dA.V[rr*n+kk] = m
								for cc := kk + 1; cc < k0+B; cc++ {
									dA.V[rr*n+cc] -= m * dA.V[kk*n+cc]
								}
							}
						}
					}
					t.ScratchOp(B)
					t.FLOP(B * B)
					t.Sync()
					device.StN(t, dA, r*n+k0, dA.V[r*n+k0:r*n+k0+B])
				}
			},
		})
		// Internal kernel: the big trailing-submatrix update.
		s.Launch(device.KernelSpec{
			Name: "lud_internal", Grid: rem * rem, Block: B,
			ScratchBytes: 2 * B * B * 4,
			Func: func(t *device.Thread) {
				bi := k0 + B + (t.CTA()/rem)*B
				bj := k0 + B + (t.CTA()%rem)*B
				r := bi + t.Lane()
				// Tiles: this thread's slice of the left panel row and the
				// top panel (loaded cooperatively, modelled per-thread).
				left := device.LdN(t, dA, r*n+k0, B)
				device.LdN(t, dA, (k0+t.Lane())*n+bj, B)
				row := device.LdN(t, dA, r*n+bj, B)
				nr := make([]float32, B)
				for c := 0; c < B; c++ {
					acc := row[c]
					for kk := 0; kk < B; kk++ {
						acc -= left[kk] * dA.V[(k0+kk)*n+bj+c]
					}
					nr[c] = acc
				}
				t.FLOP(2 * B * B)
				t.ScratchOp(2 * B)
				device.StN(t, dA, r*n+bj, nr)
			},
		})
	}
	s.Wait(device.FromDevice(s, a, dA))
	s.EndROI()
	s.AddResult(device.ChecksumF32(a.V))
}
