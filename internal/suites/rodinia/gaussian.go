package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Gaussian is Rodinia's elimination solver: two tiny kernels per column,
// hundreds of serialized launches — the benchmark class whose Cserial
// (unmaskable launch overhead) dominates Eq. 1.
type Gaussian struct{}

func init() { bench.Register(Gaussian{}) }

// Info describes gaussian.
func (Gaussian) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "gaussian",
		Desc:   "gaussian elimination, two kernels per column",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes gaussian.
func (Gaussian) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(96, size)
	block := 96

	a := device.AllocBuf[float32](s, n*n, "matrix_a", device.Host)
	b := device.AllocBuf[float32](s, n, "vector_b", device.Host)
	m := device.AllocBuf[float32](s, n*n, "multipliers", device.Host)
	copy(a.V, workload.Matrix(n, n, 51))
	for i := 0; i < n; i++ {
		a.V[i*n+i] += float32(n) // diagonally dominant
		b.V[i] = 1
	}

	s.BeginROI()
	dA, _ := device.ToDevice(s, a)
	dB, _ := device.ToDevice(s, b)
	dM, _ := device.ToDevice(s, m)
	s.Drain()

	for k := 0; k < n-1; k++ {
		kk := k
		rem := n - k - 1
		grid1 := ceilDiv(rem, block)
		// Kernel 1: multipliers for column k.
		s.Launch(device.KernelSpec{
			Name: "gaussian_fan1", Grid: grid1, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				if i >= rem {
					return
				}
				r := kk + 1 + i
				akk := device.Ld(t, dA, kk*n+kk)
				ark := device.Ld(t, dA, r*n+kk)
				t.FLOP(1)
				device.St(t, dM, r*n+kk, ark/akk)
			},
		})
		// Kernel 2: update the trailing submatrix and b.
		s.Launch(device.KernelSpec{
			Name: "gaussian_fan2", Grid: ceilDiv(rem*rem, block), Block: block,
			Func: func(t *device.Thread) {
				x := t.Global()
				if x >= rem*rem {
					return
				}
				r := kk + 1 + x/rem
				c := kk + 1 + x%rem
				mult := device.Ld(t, dM, r*n+kk)
				akc := device.Ld(t, dA, kk*n+c)
				arc := device.Ld(t, dA, r*n+c)
				t.FLOP(2)
				device.St(t, dA, r*n+c, arc-mult*akc)
				if c == kk+1 {
					bk := device.Ld(t, dB, kk)
					br := device.Ld(t, dB, r)
					t.FLOP(2)
					device.St(t, dB, r, br-mult*bk)
				}
			},
		})
	}
	// Back-substitution on the CPU.
	if !s.Unified() {
		device.Memcpy(s, a, dA)
		device.Memcpy(s, b, dB)
	}
	x := device.AllocBuf[float32](s, n, "solution", device.Host)
	s.CPUTask(device.CPUTaskSpec{
		Name: "gaussian_backsub", Threads: 1,
		Func: func(c *device.CPUThread) {
			for i := n - 1; i >= 0; i-- {
				acc := device.Ld(c, b, i)
				row := device.LdN(c, a, i*n+i, n-i)
				for j := i + 1; j < n; j++ {
					acc -= row[j-i] * device.Ld(c, x, j)
				}
				c.FLOP(2 * (n - i))
				device.St(c, x, i, acc/row[0])
			}
		},
	})
	s.EndROI()
	s.AddResult(device.ChecksumF32(x.V))
}
