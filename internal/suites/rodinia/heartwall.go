package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Heartwall is Rodinia's ultrasound-tracking benchmark reduced to its
// pipeline skeleton: per video frame a GPU kernel correlates a template
// patch around every tracked sample point, writing large per-point
// convolution buffers that live only on the GPU — with srad and pr_spmv it
// is one of the paper's three page-fault victims on the heterogeneous
// processor — followed by a serial CPU position-update phase.
type Heartwall struct{}

func init() { bench.Register(Heartwall{}) }

// Info describes heartwall.
func (Heartwall) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "heartwall",
		Desc:   "ultrasound point tracking with large GPU-temp buffers",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes heartwall.
func (Heartwall) Run(s *device.System, mode bench.Mode, size bench.Size) {
	npts := bench.ScaleN(256, size)
	frames := 3
	imgSide := 512
	patch := 16
	convLen := patch * patch // per-point correlation surface
	block := 64

	img := device.AllocBuf[float32](s, imgSide*imgSide, "frame", device.Host)
	ptx := device.AllocBuf[int32](s, npts, "point_x", device.Host)
	pty := device.AllocBuf[int32](s, npts, "point_y", device.Host)
	copy(img.V, workload.Grid(imgSide, imgSide, 131))
	rng := workload.RNG(132)
	for i := 0; i < npts; i++ {
		ptx.V[i] = int32(rng.Intn(imgSide - 2*patch))
		pty.V[i] = int32(rng.Intn(imgSide - 2*patch))
	}

	s.BeginROI()
	dImg, _ := device.ToDevice(s, img)
	dPx, _ := device.ToDevice(s, ptx)
	dPy, _ := device.ToDevice(s, pty)
	// The big convolution surfaces never touch the CPU.
	dConv := device.AllocBuf[float32](s, npts*convLen, "conv_surfaces", device.Device)
	dBest := device.AllocBuf[int32](s, npts, "best_offset", device.Device)
	s.Drain()

	for f := 0; f < frames; f++ {
		// Kernel: one CTA per tracked point; each thread correlates one
		// template row against the image patch and writes its slice of the
		// correlation surface.
		s.Launch(device.KernelSpec{
			Name: "hw_correlate", Grid: npts, Block: block,
			ScratchBytes: convLen * 4,
			Func: func(t *device.Thread) {
				p := t.CTA()
				x := int(device.Ld(t, dPx, p))
				y := int(device.Ld(t, dPy, p))
				lane := t.Lane()
				// Each lane handles a strip of the correlation surface.
				per := convLen / t.Block()
				strip := make([]float32, per)
				for k := 0; k < per; k++ {
					idx := lane*per + k
					dy, dx := idx/patch, idx%patch
					v := device.Ld(t, dImg, (y+dy)*imgSide+x+dx)
					strip[k] = v * 0.5
				}
				t.FLOP(3 * per)
				t.ScratchOp(2)
				device.StN(t, dConv, p*convLen+lane*per, strip)
				t.Sync()
				if lane == 0 {
					// Reduce the surface to the best offset.
					best, bestV := 0, float32(-1e30)
					surf := device.LdN(t, dConv, p*convLen, convLen)
					for i, v := range surf {
						if v > bestV {
							bestV, best = v, i
						}
					}
					t.FLOP(convLen)
					device.St(t, dBest, p, int32(best))
				}
			},
		})
		// CPU: serial position update from the best offsets.
		hBest := dBest
		if !s.Unified() {
			hBest = device.AllocBuf[int32](s, npts, "h_best", device.Host)
			device.Memcpy(s, hBest, dBest)
			device.Memcpy(s, ptx, dPx)
			device.Memcpy(s, pty, dPy)
		}
		s.CPUTask(device.CPUTaskSpec{
			Name: "hw_update", Threads: 1,
			Func: func(c *device.CPUThread) {
				for p := 0; p < npts; p++ {
					b := int(device.LdDep(c, hBest, p))
					x := device.Ld(c, ptx, p) + int32(b%patch) - int32(patch/2)
					y := device.Ld(c, pty, p) + int32(b/patch) - int32(patch/2)
					if x < 0 {
						x = 0
					}
					if x > int32(imgSide-2*patch) {
						x = int32(imgSide - 2*patch)
					}
					if y < 0 {
						y = 0
					}
					if y > int32(imgSide-2*patch) {
						y = int32(imgSide - 2*patch)
					}
					c.FLOP(6)
					device.St(c, ptx, p, x)
					device.St(c, pty, p, y)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, dPx, ptx)
			device.Memcpy(s, dPy, pty)
		}
	}
	s.EndROI()
	s.AddResult(device.ChecksumI32(ptx.V), device.ChecksumI32(pty.V))
}
