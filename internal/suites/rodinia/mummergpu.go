package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// MummerGPU is Rodinia's sequence matcher reduced to its pipeline skeleton:
// the GPU walks a reference index table per query (pointer-chasing,
// irregular) while the CPU streams in and preprocesses the next query batch
// — the one benchmark whose ROI overlaps input handling with GPU execution
// (the paper's mummer exception).
type MummerGPU struct{}

func init() { bench.Register(MummerGPU{}) }

// Info describes mummergpu.
func (MummerGPU) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "mummergpu",
		Desc:   "suffix-table sequence matching with overlapped query staging",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes mummergpu.
func (MummerGPU) Run(s *device.System, mode bench.Mode, size bench.Size) {
	refLen := bench.ScaleN(65536, size)
	nq := bench.ScaleN(2048, size)
	qLen := 48
	batches := 2
	block := 128

	// The reference "suffix table": next[state*4+symbol] -> state.
	states := refLen / 4
	table := device.AllocBuf[int32](s, states*4, "suffix_table", device.Host)
	depth := device.AllocBuf[int32](s, states, "state_depth", device.Host)
	rng := workload.RNG(141)
	for i := range table.V {
		table.V[i] = int32(rng.Intn(states))
	}
	for i := range depth.V {
		depth.V[i] = int32(rng.Intn(qLen))
	}
	queries := device.AllocBuf[int32](s, nq*qLen, "queries", device.Host)
	copy(queries.V, workload.Sequence(nq*qLen, 142))
	matches := device.AllocBuf[int32](s, nq, "match_lengths", device.Host)

	s.BeginROI()
	dTab, _ := device.ToDevice(s, table)
	dDepth, _ := device.ToDevice(s, depth)
	dQ, _ := device.ToDevice(s, queries)
	dM, _ := device.ToDevice(s, matches)
	s.Drain()

	per := nq / batches
	var prevKernel *device.Handle
	for b := 0; b < batches; b++ {
		base := b * per
		// GPU: walk the table for each query in the batch.
		k := s.LaunchAsync(device.KernelSpec{
			Name: "mummer_match", Grid: per / block, Block: block,
			Func: func(t *device.Thread) {
				q := base + t.Global()
				state := int32(0)
				bestDepth := int32(0)
				for j := 0; j < qLen; j++ {
					sym := device.Ld(t, dQ, q*qLen+j)
					state = device.Ld(t, dTab, int(state)*4+int(sym)) // chase
					d := device.Ld(t, dDepth, int(state))
					if d > bestDepth {
						bestDepth = d
					}
					t.FLOP(2)
				}
				device.St(t, dM, q, bestDepth)
			},
		})
		// CPU: stage the next batch (disk-read stand-in) while the GPU runs
		// this one — issued concurrently, no dependency on the kernel.
		if b+1 < batches {
			nb := b + 1
			s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "mummer_stage_queries", Threads: 1,
				Func: func(c *device.CPUThread) {
					for i := nb * per * qLen; i < (nb+1)*per*qLen; i += 32 {
						device.Ld(c, queries, i)
						c.FLOP(4)
					}
				},
			})
		}
		prevKernel = k
	}
	s.Wait(prevKernel)
	s.Drain()
	s.Wait(device.FromDevice(s, matches, dM))
	// CPU post-processing: histogram the match lengths.
	hist := make([]int, qLen+1)
	s.CPUTask(device.CPUTaskSpec{
		Name: "mummer_postprocess", Threads: 1,
		Func: func(c *device.CPUThread) {
			for q := 0; q < nq; q++ {
				m := device.Ld(c, matches, q)
				if int(m) <= qLen {
					hist[m]++
				}
				c.FLOP(1)
			}
		},
	})
	s.EndROI()
	s.AddResult(device.ChecksumI32(matches.V), float64(hist[0]))
}
