package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Hotspot is Rodinia's thermal simulation: an iterated 5-point stencil over
// the temperature grid with a power term, double-buffered on the device.
// Regular structure: one H2D per input, a kernel per iteration, one D2H.
type Hotspot struct{}

func init() { bench.Register(Hotspot{}) }

// Info describes hotspot.
func (Hotspot) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "hotspot",
		Desc:   "thermal 5-point stencil iteration",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes hotspot.
func (Hotspot) Run(s *device.System, mode bench.Mode, size bench.Size) {
	rows := bench.ScaleSide(256, size)
	cols := 512
	iters := 4
	block := 256

	temp := device.AllocBuf[float32](s, rows*cols, "temp", device.Host)
	power := device.AllocBuf[float32](s, rows*cols, "power", device.Host)
	copy(temp.V, workload.Grid(rows, cols, 11))
	copy(power.V, workload.Grid(rows, cols, 12))

	s.BeginROI()
	dT, _ := device.ToDevice(s, temp)
	dP, _ := device.ToDevice(s, power)
	// Double buffer is GPU-temporary (device-only in both versions).
	dT2 := device.AllocBuf[float32](s, rows*cols, "temp2", device.Device)
	s.Drain()

	src, dst := dT, dT2
	for it := 0; it < iters; it++ {
		a, b := src, dst
		s.Launch(device.KernelSpec{
			Name: "hotspot_step", Grid: rows * cols / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				r, c := i/cols, i%cols
				v := device.Ld(t, a, i)
				n, so, e, w := v, v, v, v
				if r > 0 {
					n = device.Ld(t, a, i-cols)
				}
				if r < rows-1 {
					so = device.Ld(t, a, i+cols)
				}
				if c > 0 {
					e = device.Ld(t, a, i-1)
				}
				if c < cols-1 {
					w = device.Ld(t, a, i+1)
				}
				p := device.Ld(t, dP, i)
				t.FLOP(10)
				device.St(t, b, i, v+0.2*(n+so+e+w-4*v)+0.05*p)
			},
		})
		src, dst = dst, src
	}
	// Result is in src after the final swap.
	if src != dT {
		device.Memcpy(s, dT, src)
	}
	s.Wait(device.FromDevice(s, temp, dT))
	s.EndROI()
	s.AddResult(device.ChecksumF32(temp.V))
}
