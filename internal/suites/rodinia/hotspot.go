package rodinia

import (
	"strconv"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Hotspot is Rodinia's thermal simulation: an iterated 5-point stencil over
// the temperature grid with a power term, double-buffered on the device.
// Regular structure: one H2D per input, a kernel per iteration, one D2H.
type Hotspot struct{}

func init() { bench.Register(Hotspot{}) }

// Info describes hotspot.
func (Hotspot) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "hotspot",
		Desc:   "thermal 5-point stencil iteration",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes hotspot.
func (Hotspot) Run(s *device.System, mode bench.Mode, size bench.Size) {
	rows := bench.ScaleSide(256, size)
	cols := 512
	iters := 4
	block := 256

	temp := device.AllocBuf[float32](s, rows*cols, "temp", device.Host)
	power := device.AllocBuf[float32](s, rows*cols, "power", device.Host)
	copy(temp.V, workload.Grid(rows, cols, 11))
	copy(power.V, workload.Grid(rows, cols, 12))

	// step builds the stencil kernel over cells [base, base+count).
	step := func(a, b, dP *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "hotspot_step", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				i := base + t.Global()
				r, c := i/cols, i%cols
				v := device.Ld(t, a, i)
				n, so, e, w := v, v, v, v
				if r > 0 {
					n = device.Ld(t, a, i-cols)
				}
				if r < rows-1 {
					so = device.Ld(t, a, i+cols)
				}
				if c > 0 {
					e = device.Ld(t, a, i-1)
				}
				if c < cols-1 {
					w = device.Ld(t, a, i+1)
				}
				p := device.Ld(t, dP, i)
				t.FLOP(10)
				device.St(t, b, i, v+0.2*(n+so+e+w-4*v)+0.05*p)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// One H2D stream per row band uploads that band's temperature and
		// power; the first sweep runs per-band kernels, each fenced on its
		// own band's uploads and its halo neighbours' (the cross-stream
		// WaitEvent join), so interior bands compute while the rest still
		// stream in. Later sweeps touch the whole grid and chain normally.
		const bands = 4
		slab := rows / bands * cols
		dT := device.AllocBuf[float32](s, rows*cols, "d_temp", device.Device)
		dP := device.AllocBuf[float32](s, rows*cols, "d_power", device.Device)
		dT2 := device.AllocBuf[float32](s, rows*cols, "temp2", device.Device)
		events := make([]*device.Event, bands)
		for bd := 0; bd < bands; bd++ {
			up := s.NewStream("hotspot_h2d_" + strconv.Itoa(bd))
			device.CopyRange(up, dT, bd*slab, temp, bd*slab, slab)
			device.CopyRange(up, dP, bd*slab, power, bd*slab, slab)
			events[bd] = up.Record("band" + strconv.Itoa(bd))
		}
		deps := make([]*device.Handle, 0, bands)
		for bd := 0; bd < bands; bd++ {
			ks := s.NewStream("hotspot_k_" + strconv.Itoa(bd))
			for db := -1; db <= 1; db++ {
				if bd+db >= 0 && bd+db < bands {
					ks.WaitEvent(events[bd+db])
				}
			}
			deps = append(deps, ks.Launch(step(dT, dT2, dP, bd*slab, slab)))
		}
		src, dst := dT2, dT
		for it := 1; it < iters; it++ {
			deps = []*device.Handle{s.LaunchAsync(step(src, dst, dP, 0, rows*cols), deps...)}
			src, dst = dst, src
		}
		if src != dT {
			deps = []*device.Handle{device.MemcpyAsync(s, dT, src, deps...)}
		}
		s.Wait(device.MemcpyAsync(s, temp, dT, deps...))
	} else {
		dT, _ := device.ToDevice(s, temp)
		dP, _ := device.ToDevice(s, power)
		// Double buffer is GPU-temporary (device-only in both versions).
		dT2 := device.AllocBuf[float32](s, rows*cols, "temp2", device.Device)
		s.Drain()

		src, dst := dT, dT2
		for it := 0; it < iters; it++ {
			s.Launch(step(src, dst, dP, 0, rows*cols))
			src, dst = dst, src
		}
		// Result is in src after the final swap.
		if src != dT {
			device.Memcpy(s, dT, src)
		}
		s.Wait(device.FromDevice(s, temp, dT))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(temp.V))
}
