package rodinia

import (
	"math"

	"repro/internal/bench"
	"repro/internal/device"
)

// Backprop is Rodinia's two-layer neural-network trainer: a wide
// layer-forward GPU kernel with a per-CTA partial reduction, a small CPU
// phase that finishes the reduction and computes deltas, and a GPU
// weight-adjust kernel — with the weight matrix shuttled between memories
// every step in the copy version.
type Backprop struct{}

func init() { bench.Register(Backprop{}) }

// Info describes backprop.
func (Backprop) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "backprop",
		Desc:   "two-layer neural net training step",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams, bench.ModeParallelChunked},
	}
}

type bpDims struct{ n, hid, block int }

func bpSize(size bench.Size) bpDims {
	return bpDims{n: bench.ScaleN(65536, size), hid: 16, block: 256}
}

type bpData struct {
	bpDims
	input   *device.Buf[float32]
	weights *device.Buf[float32] // [i*hid+j]
	partial *device.Buf[float32] // per-CTA hidden partials
	hidden  *device.Buf[float32]
	delta   *device.Buf[float32]
}

func bpSetup(s *device.System, size bench.Size) *bpData {
	dm := bpSize(size)
	d := &bpData{bpDims: dm}
	d.input = device.AllocBuf[float32](s, dm.n, "input", device.Host)
	d.weights = device.AllocBuf[float32](s, dm.n*dm.hid, "weights", device.Host)
	d.partial = device.AllocBuf[float32](s, (dm.n/dm.block)*dm.hid, "partials", device.Device)
	d.hidden = device.AllocBuf[float32](s, dm.hid, "hidden", device.Host)
	d.delta = device.AllocBuf[float32](s, dm.hid, "delta", device.Host)
	pts := pointsFor(dm.n, 1)
	copy(d.input.V, pts)
	w := pointsFor(dm.n*dm.hid, 1)
	copy(d.weights.V, w)
	return d
}

// forwardKernel computes per-CTA partial sums of input[i]*w[i][j] over the
// chunk [base, base+count).
func (d *bpData) forwardKernel(input, weights, partial *device.Buf[float32], base, count, ctaBase int) device.KernelSpec {
	ctaAcc := make([][]float32, count/d.block)
	return device.KernelSpec{
		Name: "bp_layerforward", Grid: count / d.block, Block: d.block,
		ScratchBytes: d.hid * d.block / 8,
		Func: func(t *device.Thread) {
			cta := t.CTA()
			if ctaAcc[cta] == nil {
				ctaAcc[cta] = make([]float32, d.hid)
			}
			i := base + t.Global()
			in := device.Ld(t, input, i)
			w := device.LdN(t, weights, i*d.hid, d.hid)
			for j := 0; j < d.hid; j++ {
				ctaAcc[cta][j] += in * w[j]
			}
			t.FLOP(2 * d.hid)
			t.ScratchOp(2)
			t.Sync()
			if t.Lane() == t.Block()-1 {
				device.StN(t, partial, (ctaBase+cta)*d.hid, ctaAcc[cta])
			}
		},
	}
}

// adjustKernel applies delta to the weight rows of the chunk.
func (d *bpData) adjustKernel(input, weights, delta *device.Buf[float32], base, count int) device.KernelSpec {
	return device.KernelSpec{
		Name: "bp_adjust_weights", Grid: count / d.block, Block: d.block,
		Func: func(t *device.Thread) {
			i := base + t.Global()
			in := device.Ld(t, input, i)
			dl := device.LdN(t, delta, 0, d.hid)
			w := device.LdN(t, weights, i*d.hid, d.hid)
			nw := make([]float32, d.hid)
			for j := 0; j < d.hid; j++ {
				nw[j] = w[j] + 0.3*dl[j]*in
			}
			t.FLOP(3 * d.hid)
			device.StN(t, weights, i*d.hid, nw)
		},
	}
}

// cpuReduce finishes the hidden-layer reduction, applies the activation,
// and computes the output deltas — the limited-TLP CPU stage.
func (d *bpData) cpuReduce(s *device.System, partial *device.Buf[float32], ctas int, deps ...*device.Handle) *device.Handle {
	return s.CPUTaskAsync(device.CPUTaskSpec{
		Name: "bp_reduce_deltas", Threads: 1,
		Func: func(c *device.CPUThread) {
			sums := make([]float64, d.hid)
			for cta := 0; cta < ctas; cta++ {
				p := device.LdN(c, partial, cta*d.hid, d.hid)
				for j, v := range p {
					sums[j] += float64(v)
				}
				c.FLOP(d.hid)
			}
			for j := 0; j < d.hid; j++ {
				h := float32(1.0 / (1.0 + math.Exp(-sums[j]/float64(d.n))))
				device.St(c, d.hidden, j, h)
				device.St(c, d.delta, j, (0.5-h)*h*(1-h))
				c.FLOP(8)
			}
		},
	}, deps...)
}

// Run executes backprop.
func (Backprop) Run(s *device.System, mode bench.Mode, size bench.Size) {
	d := bpSetup(s, size)
	ctas := d.n / d.block
	s.BeginROI()
	switch mode {
	case bench.ModeCopy, bench.ModeLimitedCopy:
		dIn, _ := device.ToDevice(s, d.input)
		dW, _ := device.ToDevice(s, d.weights)
		dDelta, _ := device.ToDevice(s, d.delta)
		s.Drain()
		s.Launch(d.forwardKernel(dIn, dW, d.partial, 0, d.n, 0))
		// The partial buffer is GPU-temporary; the CPU reads it back in the
		// copy version via an explicit D2H.
		part := d.partial
		if !s.Unified() {
			hPart := device.AllocBuf[float32](s, ctas*d.hid, "h_partials", device.Host)
			device.Memcpy(s, hPart, d.partial)
			part = hPart
		}
		s.Wait(d.cpuReduce(s, part, ctas))
		if !s.Unified() {
			device.Memcpy(s, dDelta, d.delta)
		}
		s.Launch(d.adjustKernel(dIn, dW, dDelta, 0, d.n))
		s.Wait(device.FromDevice(s, d.weights, dW))

	case bench.ModeAsyncStreams:
		const chunks = 4
		per := d.n / chunks
		dIn := device.AllocBuf[float32](s, d.n, "d_input", device.Device)
		dW := device.AllocBuf[float32](s, d.n*d.hid, "d_weights", device.Device)
		dDelta := device.AllocBuf[float32](s, d.hid, "d_delta", device.Device)
		hPart := device.AllocBuf[float32](s, ctas*d.hid, "h_partials", device.Host)
		// Forward pass: input+weight chunks stream in against the other
		// chunks' kernels and partial copies.
		fwd := s.Pipeline(device.PipelineSpec{
			Name: "bp_forward", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				hi := device.MemcpyRangeAsync(s, dIn, c*per, d.input, c*per, per, deps...)
				return device.MemcpyRangeAsync(s, dW, c*per*d.hid, d.weights, c*per*d.hid, per*d.hid, hi)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(d.forwardKernel(dIn, dW, d.partial, c*per, per, c*per/d.block), deps...)
			},
			D2H: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, hPart, c*per/d.block*d.hid, d.partial, c*per/d.block*d.hid, per/d.block*d.hid, deps...)
			},
		})
		red := d.cpuReduce(s, hPart, ctas, fwd)
		dc := device.MemcpyAsync(s, dDelta, d.delta, red)
		// Adjust pass: chunks are already resident, so only the kernels and
		// the weight writeback pipeline.
		adj := s.Pipeline(device.PipelineSpec{
			Name: "bp_adjust", Chunks: chunks,
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(d.adjustKernel(dIn, dW, dDelta, c*per, per), append(deps, dc)...)
			},
			D2H: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, d.weights, c*per*d.hid, dW, c*per*d.hid, per*d.hid, deps...)
			},
		})
		s.Wait(adj)

	case bench.ModeParallelChunked:
		const chunks = 4
		per := d.n / chunks
		// Producer chunks feed the CPU reducer through in-memory partials.
		var fwd []*device.Handle
		for c := 0; c < chunks; c++ {
			fwd = append(fwd, s.LaunchAsync(d.forwardKernel(d.input, d.weights, d.partial, c*per, per, c*per/d.block)))
		}
		// The CPU consumes each chunk's partials as they land.
		sums := make([]float64, d.hid)
		var consumed []*device.Handle
		for c := 0; c < chunks; c++ {
			cc := c
			consumed = append(consumed, s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "bp_consume", Threads: 1,
				Func: func(cth *device.CPUThread) {
					for cta := 0; cta < per/d.block; cta++ {
						p := device.LdN(cth, d.partial, (cc*per/d.block+cta)*d.hid, d.hid)
						for j, v := range p {
							sums[j] += float64(v)
						}
						cth.FLOP(d.hid)
					}
				},
			}, fwd[c]))
		}
		deltas := s.CPUTaskAsync(device.CPUTaskSpec{
			Name: "bp_deltas", Threads: 1,
			Func: func(cth *device.CPUThread) {
				for j := 0; j < d.hid; j++ {
					h := float32(1.0 / (1.0 + math.Exp(-sums[j]/float64(d.n))))
					device.St(cth, d.hidden, j, h)
					device.St(cth, d.delta, j, (0.5-h)*h*(1-h))
					cth.FLOP(8)
				}
			},
		}, consumed...)
		var adj []*device.Handle
		for c := 0; c < chunks; c++ {
			adj = append(adj, s.LaunchAsync(d.adjustKernel(d.input, d.weights, d.delta, c*per, per), deltas))
		}
		for _, h := range adj {
			s.Wait(h)
		}
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(d.hidden.V), device.ChecksumF32(d.delta.V), device.ChecksumF32(d.weights.V))
}
