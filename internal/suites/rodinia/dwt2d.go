package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// DWT2D is Rodinia's 2-D discrete wavelet transform: two GPU filter passes
// followed by a substantial single-threaded CPU quantization/packaging
// phase. CPU execution dominates run time, making dwt2d the paper's example
// of a benchmark whose gains come from migrating CPU work to the idle GPU
// (Figure 8).
type DWT2D struct{}

func init() { bench.Register(DWT2D{}) }

// Info describes dwt2d.
func (DWT2D) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "dwt2d",
		Desc:   "2-D wavelet transform with CPU-heavy post-processing",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes dwt2d.
func (DWT2D) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(384, size) // image side
	block := 256
	cells := n * n

	img := device.AllocBuf[float32](s, cells, "image", device.Host)
	out := device.AllocBuf[int32](s, cells, "coeffs_q", device.Host)
	copy(img.V, workload.Grid(n, n, 81))

	s.BeginROI()
	dImg, _ := device.ToDevice(s, img)
	dTmp := device.AllocBuf[float32](s, cells, "dwt_tmp", device.Device)
	s.Drain()

	// Horizontal lifting pass: thread per pixel pair along rows.
	s.Launch(device.KernelSpec{
		Name: "dwt_horizontal", Grid: cells / 2 / block, Block: block,
		Func: func(t *device.Thread) {
			i := t.Global()
			r, c2 := i/(n/2), (i%(n/2))*2
			a := device.Ld(t, dImg, r*n+c2)
			b := device.Ld(t, dImg, r*n+c2+1)
			t.FLOP(4)
			device.St(t, dTmp, r*n+c2/2, (a+b)/2)     // approx
			device.St(t, dTmp, r*n+n/2+c2/2, (a-b)/2) // detail
		},
	})
	// Vertical lifting pass back into the image buffer.
	s.Launch(device.KernelSpec{
		Name: "dwt_vertical", Grid: cells / 2 / block, Block: block,
		Func: func(t *device.Thread) {
			i := t.Global()
			c, r2 := i/(n/2), (i%(n/2))*2
			a := device.Ld(t, dTmp, r2*n+c)
			b := device.Ld(t, dTmp, (r2+1)*n+c)
			t.FLOP(4)
			device.St(t, dImg, (r2/2)*n+c, (a+b)/2)
			device.St(t, dImg, (n/2+r2/2)*n+c, (a-b)/2)
		},
	})
	s.Wait(device.FromDevice(s, img, dImg))

	// CPU: single-threaded quantization + zig-zag packaging — the heavy,
	// limited-TLP stage that dominates this benchmark's run time.
	s.CPUTask(device.CPUTaskSpec{
		Name: "dwt_quantize_pack", Threads: 1,
		Func: func(c *device.CPUThread) {
			for r := 0; r < n; r++ {
				row := device.LdN(c, img, r*n, n)
				for cl, v := range row {
					q := int32(v * 64)
					// Run-length-style branching work per coefficient.
					if q > 16 {
						q = 16 + (q-16)/2
					} else if q < -16 {
						q = -16 + (q+16)/2
					}
					c.FLOP(6)
					device.St(c, out, r*n+cl, q)
				}
			}
		},
	})
	s.EndROI()
	s.AddResult(device.ChecksumI32(out.V), device.ChecksumF32(img.V))
}
