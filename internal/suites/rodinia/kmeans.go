// Package rodinia re-implements the Rodinia benchmarks this study uses,
// preserving each benchmark's application-level pipeline structure (kernel
// sequence, copy placement, CPU phases) against the device runtime.
package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
)

// Kmeans is the paper's Section II case study: iterative clustering with
// wide-TLP GPU distance/assignment kernels and a limited-TLP CPU center
// update, exchanging assignments every iteration.
//
// Pipeline per iteration (copy mode, as in Rodinia's kmeans_cuda loop):
// H2D features, H2D centers, assignment kernel, D2H assignments, CPU center
// recomputation. The limited-copy version drops every copy; the
// async-streams version chunks points and overlaps copies with kernels; the
// parallel-chunked version hoists the partial-sum reduction onto the GPU
// (as Section V-B's validation did, using per-CTA partials) and runs a tiny
// cache-resident CPU consumer per chunk.
type Kmeans struct{}

func init() { bench.Register(Kmeans{}) }

// Info describes kmeans for the registry and Table II.
func (Kmeans) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "kmeans",
		Desc:   "iterative k-means clustering (Section II case study)",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams, bench.ModeParallelChunked},
	}
}

type kmeansDims struct {
	n, d, k, iters, block int
}

func kmeansSize(size bench.Size) kmeansDims {
	return kmeansDims{
		n:     bench.ScaleN(16384, size),
		d:     32,
		k:     8,
		iters: 3,
		block: 256,
	}
}

// kmeansData holds the shared functional state of one run.
type kmeansData struct {
	kmeansDims
	featPM  *device.Buf[float32] // point-major [i*d+j], CPU side
	featFM  *device.Buf[float32] // feature-major [j*n+i], GPU side layout
	centers *device.Buf[float32]
	assign  *device.Buf[int32]
}

func kmeansSetup(s *device.System, size bench.Size) *kmeansData {
	dm := kmeansSize(size)
	kd := &kmeansData{kmeansDims: dm}
	kd.featPM = device.AllocBuf[float32](s, dm.n*dm.d, "features_pm", device.Host)
	kd.featFM = device.AllocBuf[float32](s, dm.n*dm.d, "features_fm", device.Host)
	kd.centers = device.AllocBuf[float32](s, dm.k*dm.d, "centers", device.Host)
	kd.assign = device.AllocBuf[int32](s, dm.n, "assign", device.Host)
	pts := pointsFor(dm.n, dm.d)
	copy(kd.featPM.V, pts)
	for i := 0; i < dm.n; i++ {
		for j := 0; j < dm.d; j++ {
			kd.featFM.V[j*dm.n+i] = pts[i*dm.d+j]
		}
	}
	for c := 0; c < dm.k; c++ {
		copy(kd.centers.V[c*dm.d:(c+1)*dm.d], pts[c*dm.d:(c+1)*dm.d])
	}
	return kd
}

// assignKernel builds the per-chunk assignment kernel: each thread loads the
// centers (L1-resident), its feature vector feature-major (coalesced), picks
// the nearest center, and stores its assignment.
func (kd *kmeansData) assignKernel(feat *device.Buf[float32], centers *device.Buf[float32], assign *device.Buf[int32], base, count int) device.KernelSpec {
	return device.KernelSpec{
		Name: "kmeans_assign", Grid: count / kd.block, Block: kd.block,
		Func: func(t *device.Thread) {
			i := base + t.Global()
			cen := device.LdN(t, centers, 0, kd.k*kd.d)
			best, bestD := int32(0), float32(1e30)
			for c := 0; c < kd.k; c++ {
				var dist float32
				for j := 0; j < kd.d; j++ {
					v := device.Ld(t, feat, j*kd.n+i)
					diff := v - cen[c*kd.d+j]
					dist += diff * diff
				}
				if dist < bestD {
					bestD, best = dist, int32(c)
				}
			}
			t.FLOP(3 * kd.k * kd.d)
			device.St(t, assign, i, best)
		},
	}
}

// cpuUpdate recomputes centers from assignments on the CPU, reading every
// point (the limited-TLP phase Rodinia leaves on the CPU).
func (kd *kmeansData) cpuUpdate(s *device.System, deps ...*device.Handle) *device.Handle {
	return s.CPUTaskAsync(device.CPUTaskSpec{
		Name: "kmeans_center_update", Threads: 1,
		Func: func(c *device.CPUThread) {
			sums := make([]float64, kd.k*kd.d)
			counts := make([]int, kd.k)
			for i := 0; i < kd.n; i++ {
				a := int(device.Ld(c, kd.assign, i))
				fv := device.LdN(c, kd.featPM, i*kd.d, kd.d)
				for j, v := range fv {
					sums[a*kd.d+j] += float64(v)
				}
				counts[a]++
				c.FLOP(kd.d)
			}
			for cl := 0; cl < kd.k; cl++ {
				if counts[cl] == 0 {
					continue
				}
				for j := 0; j < kd.d; j++ {
					device.St(c, kd.centers, cl*kd.d+j, float32(sums[cl*kd.d+j]/float64(counts[cl])))
				}
				c.FLOP(kd.d)
			}
		},
	}, deps...)
}

// Run executes kmeans in the requested organization.
func (Kmeans) Run(s *device.System, mode bench.Mode, size bench.Size) {
	kd := kmeansSetup(s, size)
	s.BeginROI()
	switch mode {
	case bench.ModeCopy, bench.ModeLimitedCopy:
		kd.runBulkSynchronous(s)
	case bench.ModeAsyncStreams:
		kd.runAsyncStreams(s)
	case bench.ModeParallelChunked:
		kd.runParallelChunked(s)
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(kd.centers.V), device.ChecksumI32(kd.assign.V))
}

// runBulkSynchronous is the unmodified Rodinia structure. On the discrete
// system every iteration re-copies features and centers in and assignments
// out (as kmeans_cuda does); on the heterogeneous processor ToDevice
// aliases and all copies vanish.
func (kd *kmeansData) runBulkSynchronous(s *device.System) {
	var dFeat *device.Buf[float32]
	var dCen *device.Buf[float32]
	var dAssign *device.Buf[int32]
	if s.Unified() {
		dFeat, dCen, dAssign = kd.featFM, kd.centers, kd.assign
	} else {
		dFeat = device.AllocBuf[float32](s, kd.n*kd.d, "d_features", device.Device)
		dCen = device.AllocBuf[float32](s, kd.k*kd.d, "d_centers", device.Device)
		dAssign = device.AllocBuf[int32](s, kd.n, "d_assign", device.Device)
	}
	for it := 0; it < kd.iters; it++ {
		if !s.Unified() {
			device.Memcpy(s, dFeat, kd.featFM)
			device.Memcpy(s, dCen, kd.centers)
		}
		s.Launch(kd.assignKernel(dFeat, dCen, dAssign, 0, kd.n))
		if !s.Unified() {
			device.Memcpy(s, kd.assign, dAssign)
		}
		s.Wait(kd.cpuUpdate(s))
	}
}

// runAsyncStreams is the discrete-system kernel-fission restructuring:
// points are chunked 4 wide in a chunk-major staging layout, so each
// chunk's features move in one contiguous H2D copy that pipelines against
// the other chunks' kernels and D2H copies — kernel fission + streams.
func (kd *kmeansData) runAsyncStreams(s *device.System) {
	const chunks = 4
	per := kd.n / chunks
	// Staging layout: [chunk][feature][point-in-chunk] — chunk-contiguous.
	featCM := device.AllocBuf[float32](s, kd.n*kd.d, "features_cm", device.Host)
	for c := 0; c < chunks; c++ {
		for j := 0; j < kd.d; j++ {
			for ii := 0; ii < per; ii++ {
				featCM.V[c*per*kd.d+j*per+ii] = kd.featFM.V[j*kd.n+c*per+ii]
			}
		}
	}
	dFeat := device.AllocBuf[float32](s, kd.n*kd.d, "d_features", device.Device)
	dCen := device.AllocBuf[float32](s, kd.k*kd.d, "d_centers", device.Device)
	dAssign := device.AllocBuf[int32](s, kd.n, "d_assign", device.Device)

	// chunkKernel indexes the chunk-major layout.
	chunkKernel := func(c int) device.KernelSpec {
		base := c * per
		return device.KernelSpec{
			Name: "kmeans_assign_chunk", Grid: per / kd.block, Block: kd.block,
			Func: func(t *device.Thread) {
				ii := t.Global()
				cen := device.LdN(t, dCen, 0, kd.k*kd.d)
				best, bestD := int32(0), float32(1e30)
				for cl := 0; cl < kd.k; cl++ {
					var dist float32
					for j := 0; j < kd.d; j++ {
						v := device.Ld(t, dFeat, c*per*kd.d+j*per+ii)
						diff := v - cen[cl*kd.d+j]
						dist += diff * diff
					}
					if dist < bestD {
						bestD, best = dist, int32(cl)
					}
				}
				t.FLOP(3 * kd.k * kd.d)
				device.St(t, dAssign, base+ii, best)
			},
		}
	}

	var iterDone *device.Handle
	for it := 0; it < kd.iters; it++ {
		var deps []*device.Handle
		if iterDone != nil {
			deps = append(deps, iterDone)
		}
		cenCopy := device.MemcpyAsync(s, dCen, kd.centers, deps...)
		pipe := s.Pipeline(device.PipelineSpec{
			Name: "kmeans", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, dFeat, c*per*kd.d, featCM, c*per*kd.d, per*kd.d,
					append(deps, cenCopy)...)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(chunkKernel(c), deps...)
			},
			D2H: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, kd.assign, c*per, dAssign, c*per, per, deps...)
			},
		})
		iterDone = kd.cpuUpdate(s, pipe)
	}
	s.Wait(iterDone)
}

// runParallelChunked is the heterogeneous-processor producer-consumer
// restructuring: chunk kernels compute assignments and per-CTA partial sums
// (the reduction hoisted onto the GPU); a small CPU consumer per chunk reads
// just the partials — cache-resident, synchronized by in-memory signals.
func (kd *kmeansData) runParallelChunked(s *device.System) {
	const chunks = 4
	per := kd.n / chunks
	ctasPerChunk := per / kd.block
	// Per-CTA partials: [chunk][cta][k*d] sums + [chunk][cta][k] counts.
	psums := device.AllocBuf[float32](s, chunks*ctasPerChunk*kd.k*kd.d, "partial_sums", device.Device)
	pcnts := device.AllocBuf[int32](s, chunks*ctasPerChunk*kd.k, "partial_counts", device.Device)

	var iterDone *device.Handle
	for it := 0; it < kd.iters; it++ {
		var deps []*device.Handle
		if iterDone != nil {
			deps = append(deps, iterDone)
		}
		sums := make([]float64, kd.k*kd.d)
		counts := make([]int, kd.k)
		var cpuDone []*device.Handle
		for c := 0; c < chunks; c++ {
			base := c * per
			ctaBase := c * ctasPerChunk
			// Producer kernel: assignment + per-CTA partials.
			ctaAcc := make([][]float32, ctasPerChunk)
			ctaCnt := make([][]int32, ctasPerChunk)
			k := s.LaunchAsync(device.KernelSpec{
				Name: "kmeans_assign_partial", Grid: ctasPerChunk, Block: kd.block,
				ScratchBytes: kd.k * kd.d * 4,
				Func: func(t *device.Thread) {
					cta := t.CTA()
					if ctaAcc[cta] == nil {
						ctaAcc[cta] = make([]float32, kd.k*kd.d)
						ctaCnt[cta] = make([]int32, kd.k)
					}
					i := base + t.Global()
					cen := device.LdN(t, kd.centers, 0, kd.k*kd.d)
					best, bestD := 0, float32(1e30)
					for cl := 0; cl < kd.k; cl++ {
						var dist float32
						for j := 0; j < kd.d; j++ {
							v := device.Ld(t, kd.featFM, j*kd.n+i)
							diff := v - cen[cl*kd.d+j]
							dist += diff * diff
						}
						if dist < bestD {
							bestD, best = dist, cl
						}
					}
					t.FLOP(3 * kd.k * kd.d)
					device.St(t, kd.assign, i, int32(best))
					// Scratch-side accumulation, then the CTA's last thread
					// publishes the partials.
					for j := 0; j < kd.d; j++ {
						ctaAcc[cta][best*kd.d+j] += kd.featFM.V[j*kd.n+i]
					}
					ctaCnt[cta][best]++
					t.ScratchOp(2)
					t.FLOP(kd.d)
					if t.Lane() == t.Block()-1 {
						device.StN(t, psums, (ctaBase+cta)*kd.k*kd.d, ctaAcc[cta])
						device.StN(t, pcnts, (ctaBase+cta)*kd.k, ctaCnt[cta])
					}
				},
			}, deps...)
			// Consumer: reads only the chunk's partials (tiny, in cache).
			cc := c
			cpuDone = append(cpuDone, s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "kmeans_consume_partials", Threads: 1,
				Func: func(cth *device.CPUThread) {
					for cta := 0; cta < ctasPerChunk; cta++ {
						ps := device.LdN(cth, psums, (cc*ctasPerChunk+cta)*kd.k*kd.d, kd.k*kd.d)
						pc := device.LdN(cth, pcnts, (cc*ctasPerChunk+cta)*kd.k, kd.k)
						for x, v := range ps {
							sums[x] += float64(v)
						}
						for x, v := range pc {
							counts[x] += int(v)
						}
						cth.FLOP(kd.k * kd.d)
					}
				},
			}, k))
		}
		// Final small center recomputation once all chunks are consumed.
		iterDone = s.CPUTaskAsync(device.CPUTaskSpec{
			Name: "kmeans_new_centers", Threads: 1,
			Func: func(cth *device.CPUThread) {
				for cl := 0; cl < kd.k; cl++ {
					if counts[cl] == 0 {
						continue
					}
					for j := 0; j < kd.d; j++ {
						device.St(cth, kd.centers, cl*kd.d+j, float32(sums[cl*kd.d+j]/float64(counts[cl])))
					}
					cth.FLOP(kd.d)
				}
			},
		}, cpuDone...)
	}
	s.Wait(iterDone)
}
