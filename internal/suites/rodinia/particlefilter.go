package rodinia

import (
	"math"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// ParticleFilter is Rodinia's pf_naive: per video frame a serial CPU
// propagation step, a GPU likelihood kernel over all particles (scattered
// image reads), and a serial CPU resampling step — small copies in both
// directions every frame.
type ParticleFilter struct{}

func init() { bench.Register(ParticleFilter{}) }

// Info describes pf_naive.
func (ParticleFilter) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "pf_naive",
		Desc:   "particle filter tracking: CPU propagate / GPU likelihood / CPU resample",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes pf_naive.
func (ParticleFilter) Run(s *device.System, mode bench.Mode, size bench.Size) {
	particles := bench.ScaleN(8192, size)
	frames := 4
	imgSide := 512
	block := 256
	patch := 8

	img := device.AllocBuf[float32](s, imgSide*imgSide, "video_frame", device.Host)
	px := device.AllocBuf[float32](s, particles, "particles_x", device.Host)
	py := device.AllocBuf[float32](s, particles, "particles_y", device.Host)
	like := device.AllocBuf[float32](s, particles, "likelihood", device.Host)
	copy(img.V, workload.Grid(imgSide, imgSide, 91))
	rng := workload.RNG(92)
	for i := 0; i < particles; i++ {
		px.V[i] = rng.Float32() * float32(imgSide-patch)
		py.V[i] = rng.Float32() * float32(imgSide-patch)
	}

	s.BeginROI()
	dImg, _ := device.ToDevice(s, img)
	var dPx, dPy, dLike *device.Buf[float32]
	if s.Unified() {
		dPx, dPy, dLike = px, py, like
	} else {
		dPx = device.AllocBuf[float32](s, particles, "d_px", device.Device)
		dPy = device.AllocBuf[float32](s, particles, "d_py", device.Device)
		dLike = device.AllocBuf[float32](s, particles, "d_like", device.Device)
	}
	s.Drain()

	for f := 0; f < frames; f++ {
		// CPU: propagate particles (serial; dependent RNG chain).
		s.CPUTask(device.CPUTaskSpec{
			Name: "pf_propagate", Threads: 1,
			Func: func(c *device.CPUThread) {
				for i := 0; i < particles; i++ {
					x := device.Ld(c, px, i) + float32(rng.NormFloat64())
					y := device.Ld(c, py, i) + float32(rng.NormFloat64())
					if x < 0 {
						x = 0
					} else if x > float32(imgSide-patch) {
						x = float32(imgSide - patch)
					}
					if y < 0 {
						y = 0
					} else if y > float32(imgSide-patch) {
						y = float32(imgSide - patch)
					}
					c.FLOP(6)
					device.St(c, px, i, x)
					device.St(c, py, i, y)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, dPx, px)
			device.Memcpy(s, dPy, py)
		}
		// GPU: likelihood over an image patch per particle — scattered.
		s.Launch(device.KernelSpec{
			Name: "pf_likelihood", Grid: particles / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				x := int(device.Ld(t, dPx, i))
				y := int(device.Ld(t, dPy, i))
				var acc float32
				for p := 0; p < patch; p++ {
					v := device.Ld(t, dImg, (y+p)*imgSide+x+p)
					acc += (v - 0.5) * (v - 0.5)
				}
				t.FLOP(3 * patch)
				device.St(t, dLike, i, float32(math.Exp(-float64(acc))))
			},
		})
		if !s.Unified() {
			device.Memcpy(s, like, dLike)
		}
		// CPU: normalize and resample (serial, dependent loads).
		s.CPUTask(device.CPUTaskSpec{
			Name: "pf_resample", Threads: 1,
			Func: func(c *device.CPUThread) {
				var sum float64
				for i := 0; i < particles; i++ {
					sum += float64(device.Ld(c, like, i))
					c.FLOP(1)
				}
				if sum <= 0 {
					sum = 1
				}
				// Systematic resampling walk — pointer-chase-like.
				var cum float64
				j := 0
				for i := 0; i < particles; i++ {
					u := (float64(i) + 0.5) / float64(particles)
					for cum < u*sum && j < particles-1 {
						cum += float64(device.LdDep(c, like, j))
						j++
					}
					device.St(c, px, i, device.Ld(c, px, j))
					device.St(c, py, i, device.Ld(c, py, j))
					c.FLOP(4)
				}
			},
		})
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(px.V), device.ChecksumF32(py.V))
}
