package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// CFD is Rodinia's euler3d solver reduced to its pipeline skeleton: per
// iteration a flux kernel gathers each element's neighbours across an
// unstructured mesh (irregular reads) and a time-step kernel applies the
// fluxes. Variables move to the GPU once and back once.
type CFD struct{}

func init() { bench.Register(CFD{}) }

// Info describes cfd.
func (CFD) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "cfd",
		Desc:   "unstructured-mesh Euler solver (flux + time-step kernels)",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes cfd.
func (CFD) Run(s *device.System, mode bench.Mode, size bench.Size) {
	nel := bench.ScaleN(16384, size)
	const nvar = 5 // density, 3x momentum, energy
	const nnb = 4  // neighbours per element
	iters := 3
	block := 256

	vars := device.AllocBuf[float32](s, nel*nvar, "variables", device.Host)
	nb := device.AllocBuf[int32](s, nel*nnb, "neighbors", device.Host)
	copy(vars.V, workload.Points(nel*nvar, 1, 121))
	rng := workload.RNG(122)
	for i := range nb.V {
		nb.V[i] = int32(rng.Intn(nel))
	}

	s.BeginROI()
	dVars, _ := device.ToDevice(s, vars)
	dNb, _ := device.ToDevice(s, nb)
	// Fluxes are GPU-temporary.
	dFlux := device.AllocBuf[float32](s, nel*nvar, "fluxes", device.Device)
	s.Drain()

	for it := 0; it < iters; it++ {
		s.Launch(device.KernelSpec{
			Name: "cfd_compute_flux", Grid: nel / block, Block: block,
			Func: func(t *device.Thread) {
				e := t.Global()
				own := device.LdN(t, dVars, e*nvar, nvar)
				acc := make([]float32, nvar)
				copy(acc, own)
				for k := 0; k < nnb; k++ {
					j := int(device.Ld(t, dNb, e*nnb+k))
					nbv := device.LdN(t, dVars, j*nvar, nvar) // irregular gather
					for v := 0; v < nvar; v++ {
						acc[v] += 0.1 * (nbv[v] - own[v])
					}
				}
				t.FLOP(12 * nnb)
				device.StN(t, dFlux, e*nvar, acc)
			},
		})
		s.Launch(device.KernelSpec{
			Name: "cfd_time_step", Grid: nel / block, Block: block,
			Func: func(t *device.Thread) {
				e := t.Global()
				f := device.LdN(t, dFlux, e*nvar, nvar)
				nw := make([]float32, nvar)
				for v := 0; v < nvar; v++ {
					nw[v] = 0.9*f[v] + 0.01
				}
				t.FLOP(2 * nvar)
				device.StN(t, dVars, e*nvar, nw)
			},
		})
	}
	s.Wait(device.FromDevice(s, vars, dVars))
	s.EndROI()
	s.AddResult(device.ChecksumF32(vars.V))
}
