package rodinia

import (
	"math"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// ParticleFilterFloat is Rodinia's pf_float: the optimized particle filter
// that keeps positions in float arrays and hoists the weighted-mean
// estimate onto the GPU via per-CTA partial sums, leaving the CPU a small
// combine step per frame — the variant whose limited-copy version the
// paper observed cutting off-chip accesses sharply.
type ParticleFilterFloat struct{}

func init() { bench.Register(ParticleFilterFloat{}) }

// Info describes pf_float.
func (ParticleFilterFloat) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "pf_float",
		Desc:   "float particle filter with GPU-hoisted weighted mean",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes pf_float.
func (ParticleFilterFloat) Run(s *device.System, mode bench.Mode, size bench.Size) {
	particles := bench.ScaleN(8192, size)
	frames := 4
	imgSide := 512
	block := 256
	patch := 8
	ctas := particles / block

	img := device.AllocBuf[float32](s, imgSide*imgSide, "video_frame", device.Host)
	px := device.AllocBuf[float32](s, particles, "particles_x", device.Host)
	py := device.AllocBuf[float32](s, particles, "particles_y", device.Host)
	// Per-CTA partials: sum(w), sum(w*x), sum(w*y).
	partial := device.AllocBuf[float32](s, ctas*3, "pf_partials", device.Device)
	copy(img.V, workload.Grid(imgSide, imgSide, 93))
	rng := workload.RNG(94)
	for i := 0; i < particles; i++ {
		px.V[i] = rng.Float32() * float32(imgSide-patch)
		py.V[i] = rng.Float32() * float32(imgSide-patch)
	}

	s.BeginROI()
	dImg, _ := device.ToDevice(s, img)
	dPx, _ := device.ToDevice(s, px)
	dPy, _ := device.ToDevice(s, py)
	hPart := partial
	if !s.Unified() {
		hPart = device.AllocBuf[float32](s, ctas*3, "h_partials", device.Host)
	}
	s.Drain()

	for f := 0; f < frames; f++ {
		ctaAcc := make([][3]float64, ctas)
		// Fused likelihood + per-CTA weighted-sum kernel.
		s.Launch(device.KernelSpec{
			Name: "pf_likelihood_reduce", Grid: ctas, Block: block,
			ScratchBytes: 3 * block,
			Func: func(t *device.Thread) {
				i := t.Global()
				cta := t.CTA()
				x := device.Ld(t, dPx, i)
				y := device.Ld(t, dPy, i)
				var acc float32
				for p := 0; p < patch; p++ {
					v := device.Ld(t, dImg, (int(y)+p)*imgSide+int(x)+p)
					acc += (v - 0.5) * (v - 0.5)
				}
				w := float32(math.Exp(-float64(acc)))
				t.FLOP(3*patch + 4)
				ctaAcc[cta][0] += float64(w)
				ctaAcc[cta][1] += float64(w * x)
				ctaAcc[cta][2] += float64(w * y)
				t.ScratchOp(3)
				t.Sync()
				if t.Lane() == t.Block()-1 {
					device.StN(t, partial, cta*3, []float32{
						float32(ctaAcc[cta][0]), float32(ctaAcc[cta][1]), float32(ctaAcc[cta][2]),
					})
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, hPart, partial)
		}
		// CPU: combine partials, re-seed particles around the estimate.
		var ex, ey float32
		s.CPUTask(device.CPUTaskSpec{
			Name: "pf_estimate", Threads: 1,
			Func: func(c *device.CPUThread) {
				var sw, sx, sy float64
				for cta := 0; cta < ctas; cta++ {
					p := device.LdN(c, hPart, cta*3, 3)
					sw += float64(p[0])
					sx += float64(p[1])
					sy += float64(p[2])
					c.FLOP(3)
				}
				if sw <= 0 {
					sw = 1
				}
				ex = float32(sx / sw)
				ey = float32(sy / sw)
				c.FLOP(2)
			},
		})
		// CPU: scatter particles around the estimate for the next frame.
		s.CPUTask(device.CPUTaskSpec{
			Name: "pf_rescatter", Threads: 1,
			Func: func(c *device.CPUThread) {
				lim := float32(imgSide - patch)
				for i := 0; i < particles; i++ {
					nx := ex + float32(rng.NormFloat64()*4)
					ny := ey + float32(rng.NormFloat64()*4)
					if nx < 0 {
						nx = 0
					} else if nx > lim {
						nx = lim
					}
					if ny < 0 {
						ny = 0
					} else if ny > lim {
						ny = lim
					}
					c.FLOP(6)
					device.St(c, px, i, nx)
					device.St(c, py, i, ny)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, dPx, px)
			device.Memcpy(s, dPy, py)
		}
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(px.V), device.ChecksumF32(py.V))
}
