package rodinia

import "repro/internal/workload"

// pointsFor returns the deterministic point set shared by the clustering
// benchmarks.
func pointsFor(n, d int) []float32 { return workload.Points(n, d, 0xC0FFEE) }

// ceilDiv divides rounding up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
