package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// BFS is Rodinia's frontier-mask breadth-first search: two kernels per
// level plus a host-read continuation flag — the paper's canonical
// "CPU outer-loop waits on a copied-back condition" structure.
type BFS struct{}

func init() { bench.Register(BFS{}) }

// Info describes bfs.
func (BFS) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "bfs",
		Desc:   "frontier-mask BFS with host loop condition",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes bfs.
func (BFS) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(65536, size)
	g := workload.UniformGraph(n, 8, 31)
	block := 256

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	cost := device.AllocBuf[int32](s, n, "cost", device.Host)
	frontier := device.AllocBuf[int32](s, n, "frontier", device.Host)
	updating := device.AllocBuf[int32](s, n, "updating", device.Host)
	visited := device.AllocBuf[int32](s, n, "visited", device.Host)
	cont := device.AllocBuf[int32](s, 1, "continue_flag", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for i := range cost.V {
		cost.V[i] = -1
	}
	cost.V[0] = 0
	frontier.V[0] = 1
	visited.V[0] = 1

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dCost, _ := device.ToDevice(s, cost)
	dFr, _ := device.ToDevice(s, frontier)
	dUp, _ := device.ToDevice(s, updating)
	dVis, _ := device.ToDevice(s, visited)
	dCont, _ := device.ToDevice(s, cont)
	s.Drain()

	grid := n / block
	for level := 0; ; level++ {
		cont.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dCont, cont)
		}
		// Kernel 1: expand the frontier into the updating mask.
		s.Launch(device.KernelSpec{
			Name: "bfs_kernel1", Grid: grid, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				if device.Ld(t, dFr, v) == 0 {
					return
				}
				device.St(t, dFr, v, 0)
				lo := device.Ld(t, dRow, v)
				hi := device.Ld(t, dRow, v+1)
				myCost := device.Ld(t, dCost, v)
				for e := lo; e < hi; e++ {
					dst := device.Ld(t, dCol, int(e))
					if device.Ld(t, dVis, int(dst)) == 0 {
						device.St(t, dCost, int(dst), myCost+1)
						device.St(t, dUp, int(dst), 1)
					}
				}
				t.FLOP(int(hi - lo))
			},
		})
		// Kernel 2: promote updating to frontier, set the continue flag.
		s.Launch(device.KernelSpec{
			Name: "bfs_kernel2", Grid: grid, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				if device.Ld(t, dUp, v) == 0 {
					return
				}
				device.St(t, dUp, v, 0)
				device.St(t, dFr, v, 1)
				device.St(t, dVis, v, 1)
				device.St(t, dCont, 0, 1)
			},
		})
		// Host decides whether to continue: a tiny D2H copy every level.
		if !s.Unified() {
			device.Memcpy(s, cont, dCont)
		}
		done := false
		s.CPUTask(device.CPUTaskSpec{
			Name: "bfs_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				done = device.Ld(c, cont, 0) == 0
				c.FLOP(1)
			},
		})
		if done || level > 64 {
			break
		}
	}
	s.Wait(device.FromDevice(s, cost, dCost))
	s.EndROI()
	s.AddResult(device.ChecksumI32(cost.V))
}
