package rodinia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Pathfinder is Rodinia's dynamic-programming grid walk: each row's kernel
// consumes the previous row's result — a long chain of small kernels whose
// launches the CPU serializes (outer-loop structure).
type Pathfinder struct{}

func init() { bench.Register(Pathfinder{}) }

// Info describes pathfinder.
func (Pathfinder) Info() bench.Info {
	return bench.Info{
		Suite: "rodinia", Name: "pathfinder",
		Desc:   "DP shortest path over a grid, one kernel per row block",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes pathfinder.
func (Pathfinder) Run(s *device.System, mode bench.Mode, size bench.Size) {
	cols := bench.ScaleN(65536, size)
	rows := 32
	block := 256

	wall := device.AllocBuf[int32](s, rows*cols, "wall", device.Host)
	result := device.AllocBuf[int32](s, cols, "result", device.Host)
	g := workload.Grid(rows, cols, 21)
	for i, v := range g {
		wall.V[i] = int32(v * 10)
	}

	s.BeginROI()
	dWall, _ := device.ToDevice(s, wall)
	// Double-buffered running minima, GPU-temporary.
	dA := device.AllocBuf[int32](s, cols, "path_a", device.Device)
	dB := device.AllocBuf[int32](s, cols, "path_b", device.Device)
	s.Drain()

	// Initialize from row 0.
	s.Launch(device.KernelSpec{
		Name: "pathfinder_init", Grid: cols / block, Block: block,
		Func: func(t *device.Thread) {
			i := t.Global()
			device.St(t, dA, i, device.Ld(t, dWall, i))
		},
	})
	src, dst := dA, dB
	for r := 1; r < rows; r++ {
		a, b, rr := src, dst, r
		s.Launch(device.KernelSpec{
			Name: "pathfinder_row", Grid: cols / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				best := device.Ld(t, a, i)
				if i > 0 {
					if l := device.Ld(t, a, i-1); l < best {
						best = l
					}
				}
				if i < cols-1 {
					if rgt := device.Ld(t, a, i+1); rgt < best {
						best = rgt
					}
				}
				t.FLOP(3)
				device.St(t, b, i, best+device.Ld(t, dWall, rr*cols+i))
			},
		})
		src, dst = dst, src
	}
	if s.Unified() {
		// Result lands where the CPU can read it: one residual copy.
		device.Memcpy(s, result, src)
	} else {
		hr := &device.Buf[int32]{A: result.A, V: result.V}
		device.Memcpy(s, hr, src)
	}
	s.EndROI()
	s.AddResult(device.ChecksumI32(result.V))
}
