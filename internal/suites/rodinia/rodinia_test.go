package rodinia

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-9 {
		return d < 1e-9
	}
	return d/m <= tol
}

// TestKmeansMatchesReference checks the simulated pipeline's final centers
// against a pure-Go re-implementation of the same Lloyd iterations.
func TestKmeansMatchesReference(t *testing.T) {
	dm := kmeansSize(bench.SizeSmall)
	pts := pointsFor(dm.n, dm.d)

	// Reference: identical math, no simulator.
	centers := make([]float32, dm.k*dm.d)
	for c := 0; c < dm.k; c++ {
		copy(centers[c*dm.d:(c+1)*dm.d], pts[c*dm.d:(c+1)*dm.d])
	}
	assign := make([]int, dm.n)
	for it := 0; it < dm.iters; it++ {
		for i := 0; i < dm.n; i++ {
			best, bestD := 0, float32(math.MaxFloat32)
			for c := 0; c < dm.k; c++ {
				var dist float32
				for j := 0; j < dm.d; j++ {
					df := pts[i*dm.d+j] - centers[c*dm.d+j]
					dist += df * df
				}
				if dist < bestD {
					bestD, best = dist, c
				}
			}
			assign[i] = best
		}
		sums := make([]float64, dm.k*dm.d)
		counts := make([]int, dm.k)
		for i := 0; i < dm.n; i++ {
			for j := 0; j < dm.d; j++ {
				sums[assign[i]*dm.d+j] += float64(pts[i*dm.d+j])
			}
			counts[assign[i]]++
		}
		for c := 0; c < dm.k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < dm.d; j++ {
				centers[c*dm.d+j] = float32(sums[c*dm.d+j] / float64(counts[c]))
			}
		}
	}
	var refCen, refAsg float64
	for _, v := range centers {
		refCen += float64(v)
	}
	for _, a := range assign {
		refAsg += float64(a)
	}

	_, res := bench.ExecuteWithResult(Kmeans{}, bench.ModeCopy, bench.SizeSmall)
	if !relClose(res[0], refCen, 1e-5) {
		t.Fatalf("centers digest %v != reference %v", res[0], refCen)
	}
	if res[1] != refAsg {
		t.Fatalf("assignment digest %v != reference %v", res[1], refAsg)
	}
}

// TestKmeansOrganizationsAgree: every organization must compute the same
// clustering (floating-point order differences aside).
func TestKmeansOrganizationsAgree(t *testing.T) {
	_, base := bench.ExecuteWithResult(Kmeans{}, bench.ModeCopy, bench.SizeSmall)
	for _, m := range []bench.Mode{bench.ModeLimitedCopy, bench.ModeAsyncStreams, bench.ModeParallelChunked} {
		_, res := bench.ExecuteWithResult(Kmeans{}, m, bench.SizeSmall)
		for i := range base {
			if !relClose(res[i], base[i], 1e-4) {
				t.Fatalf("%s digest[%d] = %v, want %v", m, i, res[i], base[i])
			}
		}
	}
}

// TestBFSMatchesHostBFS validates the frontier BFS against a host BFS on
// the identical generated graph.
func TestBFSMatchesHostBFS(t *testing.T) {
	n := bench.ScaleN(65536, bench.SizeSmall)
	g := workload.UniformGraph(n, 8, 31) // same seed as the benchmark
	ref := make([]int32, n)
	for i := range ref {
		ref[i] = -1
	}
	ref[0] = 0
	frontier := []int32{0}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				d := g.ColIdx[e]
				if ref[d] == -1 {
					ref[d] = ref[v] + 1
					next = append(next, d)
				}
			}
		}
		frontier = next
	}
	var want float64
	for _, v := range ref {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(BFS{}, bench.ModeCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("bfs cost digest = %v, want %v", res[0], want)
	}
}

// TestGaussianSolvesSystem substitutes the computed solution back into the
// original system.
func TestGaussianSolvesSystem(t *testing.T) {
	n := bench.ScaleSide(96, bench.SizeSmall)
	a := workload.Matrix(n, n, 51)
	aOrig := make([]float64, n*n)
	for i := range a {
		aOrig[i] = float64(a[i])
	}
	for i := 0; i < n; i++ {
		aOrig[i*n+i] += float64(n)
	}

	// Run the benchmark and reconstruct x from the digest? The digest is a
	// checksum; instead run the internal pipeline directly to get x.
	s := bench.SystemFor(bench.ModeLimitedCopy)
	Gaussian{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	// Reference solve via plain Gaussian elimination on float64.
	ab := make([]float64, n*n)
	copy(ab, aOrig)
	bb := make([]float64, n)
	for i := range bb {
		bb[i] = 1
	}
	for k := 0; k < n-1; k++ {
		for r := k + 1; r < n; r++ {
			m := ab[r*n+k] / ab[k*n+k]
			for c := k; c < n; c++ {
				ab[r*n+c] -= m * ab[k*n+c]
			}
			bb[r] -= m * bb[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		acc := bb[i]
		for j := i + 1; j < n; j++ {
			acc -= ab[i*n+j] * x[j]
		}
		x[i] = acc / ab[i*n+i]
	}
	var ref float64
	for _, v := range x {
		ref += v
	}
	if !relClose(s.Result[0], ref, 1e-3) {
		t.Fatalf("gaussian solution digest %v, reference %v", s.Result[0], ref)
	}
}

// TestPathfinderMatchesDP validates the row-kernel DP against a host DP.
func TestPathfinderMatchesDP(t *testing.T) {
	cols := bench.ScaleN(65536, bench.SizeSmall)
	rows := 32
	g := workload.Grid(rows, cols, 21)
	wall := make([]int32, rows*cols)
	for i, v := range g {
		wall[i] = int32(v * 10)
	}
	cur := make([]int32, cols)
	for c := 0; c < cols; c++ {
		cur[c] = wall[c]
	}
	next := make([]int32, cols)
	for r := 1; r < rows; r++ {
		for c := 0; c < cols; c++ {
			best := cur[c]
			if c > 0 && cur[c-1] < best {
				best = cur[c-1]
			}
			if c < cols-1 && cur[c+1] < best {
				best = cur[c+1]
			}
			next[c] = best + wall[r*cols+c]
		}
		cur, next = next, cur
	}
	var want float64
	for _, v := range cur {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(Pathfinder{}, bench.ModeCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("pathfinder digest = %v, want %v", res[0], want)
	}
}

// TestHotspotMatchesStencil validates the GPU stencil against a host
// implementation of the same update.
func TestHotspotMatchesStencil(t *testing.T) {
	rows := bench.ScaleSide(256, bench.SizeSmall)
	cols := 512
	iters := 4
	temp64 := workload.Grid(rows, cols, 11)
	power := workload.Grid(rows, cols, 12)
	cur := make([]float32, rows*cols)
	copy(cur, temp64)
	next := make([]float32, rows*cols)
	for it := 0; it < iters; it++ {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				i := r*cols + c
				v := cur[i]
				n, so, e, w := v, v, v, v
				if r > 0 {
					n = cur[i-cols]
				}
				if r < rows-1 {
					so = cur[i+cols]
				}
				if c > 0 {
					e = cur[i-1]
				}
				if c < cols-1 {
					w = cur[i+1]
				}
				next[i] = v + 0.2*(n+so+e+w-4*v) + 0.05*power[i]
			}
		}
		cur, next = next, cur
	}
	want := device.ChecksumF32(cur)
	_, res := bench.ExecuteWithResult(Hotspot{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if !relClose(res[0], want, 1e-6) {
		t.Fatalf("hotspot digest = %v, want %v", res[0], want)
	}
}

// TestCopyVsLimitedFunctionalIdentity: for every rodinia benchmark the two
// baseline organizations must produce identical functional results — the
// port changes where data lives, never what is computed.
func TestCopyVsLimitedFunctionalIdentity(t *testing.T) {
	for _, b := range []bench.Benchmark{
		Kmeans{}, Backprop{}, Hotspot{}, Pathfinder{}, BFS{}, SRAD{},
		Gaussian{}, NW{}, LUD{}, Streamcluster{}, DWT2D{}, ParticleFilter{},
	} {
		b := b
		t.Run(b.Info().Name, func(t *testing.T) {
			t.Parallel()
			_, cv := bench.ExecuteWithResult(b, bench.ModeCopy, bench.SizeSmall)
			_, lv := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)
			if len(cv) == 0 || len(cv) != len(lv) {
				t.Fatalf("digest shape: copy %d, limited %d", len(cv), len(lv))
			}
			for i := range cv {
				if cv[i] != lv[i] {
					t.Fatalf("digest[%d]: copy %v != limited %v", i, cv[i], lv[i])
				}
			}
		})
	}
}
