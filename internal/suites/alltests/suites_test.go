// Package alltests runs every registered benchmark end to end in the two
// baseline modes and sanity-checks the analysis reports.
package alltests

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/stats"

	_ "repro/internal/suites/lonestar"
	_ "repro/internal/suites/pannotia"
	_ "repro/internal/suites/parboil"
	_ "repro/internal/suites/rodinia"
)

func TestRegistryHas20Benchmarks(t *testing.T) {
	if got := len(bench.All()); got != 46 {
		t.Fatalf("registered benchmarks = %d, want 46", got)
	}
	// Registry must agree with the census Implemented flags.
	impl := map[string]bool{}
	for _, e := range bench.Census() {
		if e.Implemented {
			impl[e.Suite+"/"+e.Name] = true
		}
	}
	for _, b := range bench.All() {
		if !impl[b.Info().FullName()] {
			t.Errorf("%s registered but not marked Implemented in census", b.Info().FullName())
		}
		delete(impl, b.Info().FullName())
	}
	for name := range impl {
		t.Errorf("%s marked Implemented but not registered", name)
	}
}

func TestAllBenchmarksBothBaselineModes(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Info().FullName(), func(t *testing.T) {
			t.Parallel()
			repCopy, digCopy := bench.ExecuteWithResult(b, bench.ModeCopy, bench.SizeSmall)
			repLim, digLim := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)

			// The port never changes the computation: functional digests
			// must match exactly between the two machines.
			if len(digCopy) == 0 {
				t.Error("benchmark publishes no result digest")
			}
			if len(digCopy) != len(digLim) {
				t.Fatalf("digest shapes differ: %d vs %d", len(digCopy), len(digLim))
			}
			for i := range digCopy {
				if digCopy[i] != digLim[i] {
					t.Errorf("digest[%d]: copy %v != limited %v", i, digCopy[i], digLim[i])
				}
			}

			if repCopy.ROI <= 0 || repLim.ROI <= 0 {
				t.Fatal("empty ROI")
			}
			if repCopy.GPUActive <= 0 || repLim.GPUActive <= 0 {
				t.Fatal("no GPU activity")
			}
			if repCopy.TotalDRAM() == 0 || repLim.TotalDRAM() == 0 {
				t.Fatal("no off-chip accesses")
			}
			// Copy mode on the discrete system must show copy traffic; the
			// heterogeneous port must show much less (most benchmarks: none).
			if repCopy.DRAMAccesses[stats.Copy] == 0 {
				t.Error("copy mode shows no copy accesses")
			}
			if repLim.DRAMAccesses[stats.Copy] > repCopy.DRAMAccesses[stats.Copy] {
				t.Errorf("limited-copy has more copy accesses (%d) than copy (%d)",
					repLim.DRAMAccesses[stats.Copy], repCopy.DRAMAccesses[stats.Copy])
			}
			// Footprint must shrink or stay equal without mirrored buffers.
			if repLim.FootprintBytes > repCopy.FootprintBytes {
				t.Errorf("limited-copy footprint %d > copy footprint %d",
					repLim.FootprintBytes, repCopy.FootprintBytes)
			}
			// Classified accesses conserve.
			var cls uint64
			for _, v := range repCopy.ClassCounts {
				cls += v
			}
			if cls != repCopy.TotalDRAM() {
				t.Errorf("classified %d != total DRAM %d", cls, repCopy.TotalDRAM())
			}
			t.Logf("copy: ROI=%.3fms gpu=%.0f%% | limited: ROI=%.3fms gpu=%.0f%% | foot %0.1f->%0.1f MB",
				repCopy.ROI.Millis(), 100*repCopy.GPUUtil, repLim.ROI.Millis(), 100*repLim.GPUUtil,
				float64(repCopy.FootprintBytes)/(1<<20), float64(repLim.FootprintBytes)/(1<<20))
		})
	}
}

func TestExtraModesRun(t *testing.T) {
	for _, b := range bench.All() {
		for _, m := range b.Info().ExtraModes {
			b, m := b, m
			t.Run(b.Info().FullName()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				rep := bench.Execute(b, m, bench.SizeSmall)
				if rep.ROI <= 0 || rep.GPUActive <= 0 {
					t.Fatalf("%s in %s produced no activity", b.Info().FullName(), m)
				}
			})
		}
	}
}

// TestPaperShapeClaims pins the qualitative results the paper's evaluation
// rests on, so regressions in the models or benchmarks surface here.
func TestPaperShapeClaims(t *testing.T) {
	get := func(name string) bench.Benchmark {
		b, ok := bench.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return b
	}

	t.Run("kmeans-2x-from-copy-removal", func(t *testing.T) {
		t.Parallel()
		cv := bench.Execute(get("rodinia/kmeans"), bench.ModeCopy, bench.SizeSmall)
		lv := bench.Execute(get("rodinia/kmeans"), bench.ModeLimitedCopy, bench.SizeSmall)
		if float64(lv.ROI) > 0.7*float64(cv.ROI) {
			t.Fatalf("kmeans copy removal too weak: %v -> %v", cv.ROI, lv.ROI)
		}
	})

	t.Run("srad-fault-victim", func(t *testing.T) {
		t.Parallel()
		cv := bench.Execute(get("rodinia/srad"), bench.ModeCopy, bench.SizeSmall)
		lv := bench.Execute(get("rodinia/srad"), bench.ModeLimitedCopy, bench.SizeSmall)
		// The paper: srad slows down on the heterogeneous processor because
		// its GPU-temporary writes serialize on the CPU fault handler.
		if lv.ROI <= cv.ROI {
			t.Fatalf("srad must slow down under CPU-handled faults: %v -> %v", cv.ROI, lv.ROI)
		}
	})

	t.Run("spmv-contention-dominates", func(t *testing.T) {
		t.Parallel()
		lv := bench.Execute(get("parboil/spmv"), bench.ModeLimitedCopy, bench.SizeSmall)
		if lv.ClassFraction(core.ClassRRContention) < 0.5 {
			t.Fatalf("spmv R-R contention = %.1f%%, expected dominant",
				100*lv.ClassFraction(core.ClassRRContention))
		}
		if lv.BWLimitedFrac < 0.25 {
			t.Fatalf("spmv should be bandwidth-limited (frac %.2f)", lv.BWLimitedFrac)
		}
	})

	t.Run("stencil-spills-between-stages", func(t *testing.T) {
		t.Parallel()
		cv := bench.Execute(get("parboil/stencil"), bench.ModeCopy, bench.SizeSmall)
		spill := cv.ClassFraction(core.ClassWRSpill) + cv.ClassFraction(core.ClassRRSpill)
		if spill < 0.2 {
			t.Fatalf("stencil inter-stage spills = %.1f%%, expected substantial", 100*spill)
		}
	})

	t.Run("overlap-estimate-bounded", func(t *testing.T) {
		t.Parallel()
		// Eq. 1 must never exceed observed run time (it models removing
		// serialization, not adding it).
		for _, name := range []string{"rodinia/backprop", "lonestar/bfs_wlc", "pannotia/fw"} {
			cv := bench.Execute(get(name), bench.ModeCopy, bench.SizeSmall)
			if cv.Rco > cv.ROI {
				t.Fatalf("%s: Rco %v > ROI %v", name, cv.Rco, cv.ROI)
			}
			if cv.Rmc > cv.ROI {
				t.Fatalf("%s: Rmc %v > ROI %v", name, cv.Rmc, cv.ROI)
			}
		}
	})

	t.Run("dwt2d-migration-headroom", func(t *testing.T) {
		t.Parallel()
		// CPU-dominated benchmarks have larger migrated-compute gains than
		// GPU-bound ones (the paper's dwt observation).
		dwt := bench.Execute(get("rodinia/dwt2d"), bench.ModeLimitedCopy, bench.SizeSmall)
		gemm := bench.Execute(get("parboil/sgemm"), bench.ModeLimitedCopy, bench.SizeSmall)
		dwtGain := 1 - float64(dwt.Rmc)/float64(dwt.ROI)
		gemmGain := 1 - float64(gemm.Rmc)/float64(gemm.ROI)
		if dwtGain <= gemmGain {
			t.Fatalf("dwt2d migration gain (%.1f%%) must exceed sgemm's (%.1f%%)",
				100*dwtGain, 100*gemmGain)
		}
	})
}
