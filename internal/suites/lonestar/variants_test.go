package lonestar

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// TestTopologyBFSMatchesHost: the topology-driven BFS converges to exact
// hop counts.
func TestTopologyBFSMatchesHost(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	ref := hostBFS(workload.RMATGraph(n, 8, 101))
	var want float64
	for _, v := range ref {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(TopoBFS{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("topo bfs digest = %v, want %v", res[0], want)
	}
}

// TestWorklistAggregationVariantsAgreeOnBFS: the _wla/_wlc/_wlw variants
// differ only in how queue pushes are aggregated; the unweighted search
// must converge to identical distances.
func TestWorklistAggregationVariantsAgreeOnBFS(t *testing.T) {
	_, base := bench.ExecuteWithResult(BFSWL{}, bench.ModeLimitedCopy, bench.SizeSmall)
	for _, name := range []string{"lonestar/bfs_wla", "lonestar/bfs_wlw"} {
		b, ok := bench.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		_, res := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)
		if res[0] != base[0] {
			t.Fatalf("%s dist digest %v != wlc digest %v", name, res[0], base[0])
		}
	}
}

// TestSSSPVariantsSound: every sssp flavour stays above true shortest
// distances (relaxation soundness) with a zero source.
func TestSSSPVariantsSound(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	ref := hostDijkstra(workload.RMATGraph(n, 8, 103))

	for _, name := range []string{"lonestar/sssp", "lonestar/sssp_wln", "lonestar/sssp_wlf"} {
		b, ok := bench.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		s := bench.SystemFor(bench.ModeLimitedCopy)
		b.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
		// Recover distances by re-running the internal pipeline? The digest
		// is a sum; soundness needs per-vertex values, so rebuild via the
		// shared helpers for the worklist flavours and check the sum bound
		// for the rest: a sound relaxation's sum is >= the true sum over
		// reachable vertices.
		var trueSum float64
		for _, d := range ref {
			trueSum += float64(d)
		}
		if s.Result[0] < trueSum-0.5 {
			t.Fatalf("%s dist sum %v below true sum %v", name, s.Result[0], trueSum)
		}
	}
}

// TestTSPKeepsPermutation: 2-opt reversals must preserve the tour being a
// permutation of all cities.
func TestTSPKeepsPermutation(t *testing.T) {
	n := bench.ScaleN(2048, bench.SizeSmall)
	s := bench.SystemFor(bench.ModeLimitedCopy)
	TSP{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	// The digest is sum(tour) which must equal n(n-1)/2 for a permutation.
	want := float64(n*(n-1)) / 2
	if s.Result[0] != want {
		t.Fatalf("tour digest %v != permutation sum %v", s.Result[0], want)
	}
}

// TestDMRGrowsMesh: refinement must retire bad triangles and append new
// ones without exceeding capacity.
func TestDMRGrowsMesh(t *testing.T) {
	ntri := bench.ScaleN(16384, bench.SizeSmall)
	s := bench.SystemFor(bench.ModeLimitedCopy)
	DMR{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	finalTris := s.Result[1]
	if finalTris <= float64(ntri) {
		t.Fatalf("mesh did not grow: %v triangles", finalTris)
	}
	if finalTris > float64(4*ntri) {
		t.Fatalf("mesh exceeded capacity: %v", finalTris)
	}
}

// TestBHBuildsTreeAndMoves: the tree must be non-trivial and bodies must
// stay in the unit square.
func TestBHBuildsTreeAndMoves(t *testing.T) {
	s := bench.SystemFor(bench.ModeLimitedCopy)
	BH{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	n := float64(bench.ScaleN(4096, bench.SizeSmall))
	sumX, sumY, nodes := s.Result[0], s.Result[1], s.Result[2]
	if nodes < 100 {
		t.Fatalf("tree too small: %v nodes", nodes)
	}
	// Positions are clamped to [0,1], so digests stay within [0, n].
	if sumX < 0 || sumX > n || sumY < 0 || sumY > n {
		t.Fatalf("bodies escaped the unit square: %v %v", sumX, sumY)
	}
}

// TestBHKeepsItsCopies: bh is the paper's one benchmark whose copies the
// port cannot eliminate — both organizations must show copy traffic.
func TestBHKeepsItsCopies(t *testing.T) {
	repC, _ := bench.ExecuteWithResult(BH{}, bench.ModeCopy, bench.SizeSmall)
	repL, _ := bench.ExecuteWithResult(BH{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if repL.CopyActive <= 0 {
		t.Fatal("bh's tree mirror copies must survive the port")
	}
	// The tree copies dominate; the port eliminates at most the small
	// position/acceleration mirrors.
	if float64(repL.DRAMAccesses[2]) < 0.4*float64(repC.DRAMAccesses[2]) {
		t.Fatalf("bh lost too many copies: %d -> %d",
			repC.DRAMAccesses[2], repL.DRAMAccesses[2])
	}
}
