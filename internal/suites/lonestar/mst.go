package lonestar

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// MST is LonestarGPU's Boruvka-style minimum spanning tree skeleton: per
// round a GPU kernel finds each component's lightest outgoing edge (atomic
// min over an encoded weight/edge key), then the CPU merges components
// through a union-find — heavy CPU-GPU ping-pong over irregular data.
type MST struct{}

func init() { bench.Register(MST{}) }

// Info describes mst.
func (MST) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "mst",
		Desc:   "Boruvka MST: GPU lightest-edge rounds + CPU component merge",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes mst.
func (MST) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(16384, size)
	g := workload.RMATGraph(n, 8, 105)
	block := 256

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	weights := device.AllocBuf[int32](s, g.M(), "weights", device.Host)
	comp := device.AllocBuf[int32](s, n, "component", device.Host)
	// best[c] holds the encoded (weight, edge) key of component c's
	// lightest outgoing edge this round.
	best := device.AllocBuf[int32](s, n, "best_edge", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for e := range weights.V {
		weights.V[e] = int32(g.EdgeWeigh[e])
	}
	for v := range comp.V {
		comp.V[v] = int32(v)
	}

	const inf = int32(1) << 30
	encode := func(w int32, e int) int32 {
		enc := w<<20 | int32(e&0xFFFFF)
		if enc < 0 {
			enc = inf - 1
		}
		return enc
	}

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dW, _ := device.ToDevice(s, weights)
	dComp, _ := device.ToDevice(s, comp)
	dBest, _ := device.ToDevice(s, best)
	s.Drain()

	mstWeight := int64(0)
	components := n
	for round := 0; round < 12 && components > 1; round++ {
		// Reset best keys.
		s.Launch(device.KernelSpec{
			Name: "mst_reset", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				device.St(t, dBest, t.Global(), inf)
			},
		})
		// Find each component's lightest outgoing edge.
		s.Launch(device.KernelSpec{
			Name: "mst_find_min", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				cv := device.Ld(t, dComp, v)
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					cu := device.Ld(t, dComp, u)
					if cu == cv {
						continue
					}
					w := device.Ld(t, dW, e)
					device.AtomicMinI32(t, dBest, int(cv), encode(w, e))
					t.FLOP(2)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, best, dBest)
			device.Memcpy(s, comp, dComp)
		}
		// CPU: union components along chosen edges (pointer chasing).
		merged := 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "mst_merge", Threads: 1,
			Func: func(c *device.CPUThread) {
				var find func(x int32) int32
				find = func(x int32) int32 {
					for {
						p := device.LdDep(c, comp, int(x))
						if p == x {
							return x
						}
						x = p
					}
				}
				for v := 0; v < n; v++ {
					key := device.Ld(c, best, v)
					if key >= inf {
						continue
					}
					e := int(key & 0xFFFFF)
					w := key >> 20
					// Edge endpoints: source owner v (component id), target.
					u := int(colIdx.V[e])
					ra, rb := find(int32(v)), find(int32(u))
					if ra == rb {
						continue
					}
					device.St(c, comp, int(ra), rb)
					mstWeight += int64(w)
					merged++
					c.FLOP(4)
				}
				// Path-compress for the next round.
				for v := 0; v < n; v++ {
					device.St(c, comp, v, find(int32(v)))
				}
			},
		})
		components -= merged
		if merged == 0 {
			break
		}
		if !s.Unified() {
			device.Memcpy(s, dComp, comp)
		}
	}
	s.EndROI()
	s.AddResult(float64(mstWeight), device.ChecksumI32(comp.V))
}
