package lonestar

import (
	"math"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// BH is LonestarGPU's Barnes-Hut n-body skeleton: the CPU builds a quadtree
// over the bodies each timestep (serial, pointer-heavy), the tree arrays
// are transferred to the GPU, and a force kernel traverses the tree per
// body with data-dependent depth and heavy divergence. The tree mirror is
// rebuilt and re-copied every timestep in both versions — bh is the one
// benchmark whose copies the paper's elimination techniques could not
// reduce.
type BH struct{}

func init() { bench.Register(BH{}) }

// Info describes bh.
func (BH) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "bh",
		Desc:   "Barnes-Hut n-body: CPU tree build + GPU tree-walk forces",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes bh.
func (BH) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(4096, size)
	steps := 2
	block := 128
	maxNodes := 4 * n

	px := device.AllocBuf[float32](s, n, "pos_x", device.Host)
	py := device.AllocBuf[float32](s, n, "pos_y", device.Host)
	vx := device.AllocBuf[float32](s, n, "vel_x", device.Host)
	vy := device.AllocBuf[float32](s, n, "vel_y", device.Host)
	ax := device.AllocBuf[float32](s, n, "acc_x", device.Host)
	ay := device.AllocBuf[float32](s, n, "acc_y", device.Host)
	// Tree arrays (host side, rebuilt per step).
	child := device.AllocBuf[int32](s, maxNodes*4, "tree_child", device.Host)
	cmx := device.AllocBuf[float32](s, maxNodes, "tree_cmx", device.Host)
	cmy := device.AllocBuf[float32](s, maxNodes, "tree_cmy", device.Host)
	mass := device.AllocBuf[float32](s, maxNodes, "tree_mass", device.Host)
	half := device.AllocBuf[float32](s, maxNodes, "tree_half", device.Host)
	pts := workload.Points(n, 2, 171)
	for i := 0; i < n; i++ {
		px.V[i] = pts[i*2]
		py.V[i] = pts[i*2+1]
	}

	s.BeginROI()
	dPx, _ := device.ToDevice(s, px)
	dPy, _ := device.ToDevice(s, py)
	dAx, _ := device.ToDevice(s, ax)
	dAy, _ := device.ToDevice(s, ay)
	// The tree mirror stays an explicit double-buffered copy in both modes
	// (the runtime cannot prove the rebuilt arrays mirror the host ones).
	dChild := device.AllocBuf[int32](s, maxNodes*4, "d_tree_child", device.Device)
	dCmx := device.AllocBuf[float32](s, maxNodes, "d_tree_cmx", device.Device)
	dCmy := device.AllocBuf[float32](s, maxNodes, "d_tree_cmy", device.Device)
	dMass := device.AllocBuf[float32](s, maxNodes, "d_tree_mass", device.Device)
	dHalf := device.AllocBuf[float32](s, maxNodes, "d_tree_half", device.Device)
	s.Drain()

	nodes := 0
	for step := 0; step < steps; step++ {
		// CPU: build the quadtree (serial insertion, dependent loads).
		nodes = 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "bh_build_tree", Threads: 1,
			Func: func(c *device.CPUThread) {
				alloc := func(hx float32) int32 {
					id := int32(nodes)
					nodes++
					for q := 0; q < 4; q++ {
						device.St(c, child, int(id)*4+q, -1)
					}
					device.St(c, half, int(id), hx)
					device.St(c, mass, int(id), 0)
					return id
				}
				root := alloc(0.5)
				for b := 0; b < n; b++ {
					x := device.Ld(c, px, b)
					y := device.Ld(c, py, b)
					node := root
					cx, cy := float32(0.5), float32(0.5)
					h := float32(0.25)
					for depth := 0; depth < 12; depth++ {
						q := 0
						nx, ny := cx-h, cy-h
						if x >= cx {
							q |= 1
							nx = cx + h
						}
						if y >= cy {
							q |= 2
							ny = cy + h
						}
						ch := device.LdDep(c, child, int(node)*4+q)
						if ch == -1 {
							// Insert body as leaf (encoded as -2-b).
							device.St(c, child, int(node)*4+q, int32(-2-b))
							break
						}
						if ch <= -2 {
							// Split: push existing body down.
							if nodes >= maxNodes-1 {
								break
							}
							nc := alloc(h / 2)
							device.St(c, child, int(node)*4+q, nc)
							ob := int(-2 - ch)
							ox := device.Ld(c, px, ob)
							oy := device.Ld(c, py, ob)
							oq := 0
							if ox >= nx {
								oq |= 1
							}
							if oy >= ny {
								oq |= 2
							}
							device.St(c, child, int(nc)*4+oq, ch)
							node, cx, cy, h = nc, nx, ny, h/2
							continue
						}
						node, cx, cy, h = ch, nx, ny, h/2
					}
					c.FLOP(12)
				}
				// Bottom-up mass summary (approximate: single pass).
				for id := nodes - 1; id >= 0; id-- {
					var m, sx, sy float32
					for q := 0; q < 4; q++ {
						ch := device.Ld(c, child, id*4+q)
						if ch == -1 {
							continue
						}
						if ch <= -2 {
							b := int(-2 - ch)
							m++
							sx += device.Ld(c, px, b)
							sy += device.Ld(c, py, b)
						} else {
							cm := device.Ld(c, mass, int(ch))
							m += cm
							sx += device.Ld(c, cmx, int(ch)) * cm
							sy += device.Ld(c, cmy, int(ch)) * cm
						}
					}
					if m > 0 {
						device.St(c, mass, id, m)
						device.St(c, cmx, id, sx/m)
						device.St(c, cmy, id, sy/m)
					}
					c.FLOP(12)
				}
			},
		})
		// Explicit tree copies — unavoidable in both system organizations.
		device.Memcpy(s, dChild, child)
		device.Memcpy(s, dCmx, cmx)
		device.Memcpy(s, dCmy, cmy)
		device.Memcpy(s, dMass, mass)
		device.Memcpy(s, dHalf, half)
		if !s.Unified() {
			device.Memcpy(s, dPx, px)
			device.Memcpy(s, dPy, py)
		}
		// GPU: tree-walk force kernel with an explicit traversal stack.
		s.Launch(device.KernelSpec{
			Name: "bh_forces", Grid: n / block, Block: block,
			ScratchBytes: 64 * 4,
			Func: func(t *device.Thread) {
				b := t.Global()
				x := device.Ld(t, dPx, b)
				y := device.Ld(t, dPy, b)
				var fx, fy float32
				stack := []int32{0}
				for len(stack) > 0 && len(stack) < 64 {
					node := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					m := device.Ld(t, dMass, int(node))
					nx := device.Ld(t, dCmx, int(node))
					ny := device.Ld(t, dCmy, int(node))
					h := device.Ld(t, dHalf, int(node))
					dx, dy := nx-x, ny-y
					d2 := dx*dx + dy*dy + 1e-4
					if 4*h*h < d2*0.25 || m <= 1 {
						// Far enough (or leaf-ish): apply the summary.
						inv := 1 / float32(math.Sqrt(float64(d2)))
						f := m * inv * inv * inv
						fx += f * dx
						fy += f * dy
						t.FLOP(12)
						continue
					}
					for q := 0; q < 4; q++ {
						ch := device.Ld(t, dChild, int(node)*4+q)
						if ch >= 0 {
							stack = append(stack, ch)
							t.ScratchOp(1)
						} else if ch <= -2 {
							ob := int(-2 - ch)
							ox := device.Ld(t, dPx, ob)
							oy := device.Ld(t, dPy, ob)
							ddx, ddy := ox-x, oy-y
							dd2 := ddx*ddx + ddy*ddy + 1e-4
							inv := 1 / float32(math.Sqrt(float64(dd2)))
							fx += inv * inv * inv * ddx
							fy += inv * inv * inv * ddy
							t.FLOP(12)
						}
					}
				}
				device.St(t, dAx, b, fx)
				device.St(t, dAy, b, fy)
			},
		})
		if !s.Unified() {
			device.Memcpy(s, ax, dAx)
			device.Memcpy(s, ay, dAy)
		}
		// CPU: integrate.
		s.CPUTask(device.CPUTaskSpec{
			Name: "bh_integrate", Threads: 1,
			Func: func(c *device.CPUThread) {
				const dt = 1e-4
				for b := 0; b < n; b++ {
					nvx := device.Ld(c, vx, b) + dt*device.Ld(c, ax, b)
					nvy := device.Ld(c, vy, b) + dt*device.Ld(c, ay, b)
					x := device.Ld(c, px, b) + dt*nvx
					y := device.Ld(c, py, b) + dt*nvy
					x = float32(math.Min(math.Max(float64(x), 0), 1))
					y = float32(math.Min(math.Max(float64(y), 0), 1))
					c.FLOP(8)
					device.St(c, vx, b, nvx)
					device.St(c, vy, b, nvy)
					device.St(c, px, b, x)
					device.St(c, py, b, y)
				}
			},
		})
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(px.V), device.ChecksumF32(py.V), float64(nodes))
}
