package lonestar

import (
	"repro/internal/bench"
	"repro/internal/device"
)

// pushAgg selects how a worklist kernel aggregates its output-queue pushes,
// the axis along which LonestarGPU's _wla/_wlc/_wlw variants differ.
type pushAgg int

const (
	// aggPerThread: one atomic queue-cursor bump per pushed vertex (wlc).
	aggPerThread pushAgg = iota
	// aggPerCTA: threads collect pushes in scratch; the CTA's last thread
	// reserves one slot range with a single atomic and scatters (wla).
	aggPerCTA
	// aggPerWarp: per-warp aggregation — one atomic per 32 lanes (wlw).
	aggPerWarp
	// aggFiltered: per-thread pushes guarded by an in-worklist membership
	// mask, trading extra accesses for a smaller queue (wlf).
	aggFiltered
)

// relaxRoundAgg builds one worklist-processing kernel with the requested
// push-aggregation strategy. Functional behaviour is identical across
// strategies (same relaxations, same worklist contents up to order); the
// recorded atomic/scratch traffic differs exactly as the variants do.
func relaxRoundAgg(gb *graphBufs, dRow, dCol *device.Buf[int32], dW *device.Buf[float32],
	dDist, dIn, dOut, dSize, dMask *device.Buf[int32], count int, weighted bool, block int, agg pushAgg) device.KernelSpec {
	grid := (count + block - 1) / block
	if grid == 0 {
		grid = 1
	}
	// Per-CTA / per-warp pending-push buffers, filled during functional
	// execution (threads of a CTA generate sequentially).
	pend := make([][]int32, grid*block/32+grid)
	return device.KernelSpec{
		Name: "wl_relax_" + [...]string{"wlc", "wla", "wlw", "wlf"}[agg],
		Grid: grid, Block: block,
		ScratchBytes: map[pushAgg]int{aggPerCTA: block * 8, aggPerWarp: 32 * 8}[agg],
		Func: func(t *device.Thread) {
			idx := t.Global()
			var group int
			switch agg {
			case aggPerCTA:
				group = t.CTA()
			case aggPerWarp:
				group = t.CTA()*(t.Block()/32) + t.Lane()/32
			}
			flush := func() {
				if len(pend[group]) == 0 {
					return
				}
				slot := device.AtomicAddI32(t, dSize, 0, int32(len(pend[group])))
				if int(slot)+len(pend[group]) <= gb.wlOut.Len() {
					device.StN(t, dOut, int(slot), pend[group])
				}
				pend[group] = pend[group][:0]
			}
			if idx < count {
				v := int(device.Ld(t, dIn, idx))
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				dv := device.Ld(t, dDist, v)
				if agg == aggFiltered {
					device.St(t, dMask, v, 0) // leaving the worklist
				}
				for e := lo; e < hi; e++ {
					dst := int(device.Ld(t, dCol, e))
					w := int32(1)
					if weighted {
						w = int32(device.Ld(t, dW, e))
					}
					nd := dv + w
					old := device.AtomicMinI32(t, dDist, dst, nd)
					if nd >= old {
						t.FLOP(2)
						continue
					}
					switch agg {
					case aggPerThread:
						slot := device.AtomicAddI32(t, dSize, 0, 1)
						if int(slot) < gb.wlOut.Len() {
							device.St(t, dOut, int(slot), int32(dst))
						}
					case aggFiltered:
						// Push only if not already queued this round.
						if device.AtomicCASI32(t, dMask, dst, 0, 1) == 0 {
							slot := device.AtomicAddI32(t, dSize, 0, 1)
							if int(slot) < gb.wlOut.Len() {
								device.St(t, dOut, int(slot), int32(dst))
							}
						}
					default:
						t.ScratchOp(1)
						pend[group] = append(pend[group], int32(dst))
					}
					t.FLOP(2)
				}
			}
			// Aggregated variants flush at the group boundary.
			switch agg {
			case aggPerCTA:
				t.Sync()
				if t.Lane() == t.Block()-1 {
					flush()
				}
			case aggPerWarp:
				if t.Lane()%32 == 31 || t.Lane() == t.Block()-1 {
					flush()
				}
			}
		},
	}
}

// runWorklistAgg drives the shared outer loop for the aggregation variants.
func runWorklistAgg(s *device.System, gb *graphBufs, weighted bool, maxRounds int, agg pushAgg, block int) {
	s.BeginROI()
	dRow, _ := device.ToDevice(s, gb.rowPtr)
	dCol, _ := device.ToDevice(s, gb.colIdx)
	dW, _ := device.ToDevice(s, gb.weights)
	dDist, _ := device.ToDevice(s, gb.dist)
	dIn, _ := device.ToDevice(s, gb.wlIn)
	dOut, _ := device.ToDevice(s, gb.wlOut)
	dSize, _ := device.ToDevice(s, gb.wlSize)
	mask := device.AllocBuf[int32](s, gb.n, "wl_mask", device.Host)
	dMask, _ := device.ToDevice(s, mask)
	s.Drain()

	count := 1
	for round := 0; round < maxRounds && count > 0; round++ {
		gb.wlSize.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dSize, gb.wlSize)
		}
		s.Launch(relaxRoundAgg(gb, dRow, dCol, dW, dDist, dIn, dOut, dSize, dMask, count, weighted, block, agg))
		if !s.Unified() {
			device.Memcpy(s, gb.hostWl, dSize)
		} else {
			gb.hostWl.V[0] = dSize.V[0]
		}
		next := 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "wl_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				next = int(device.Ld(c, gb.hostWl, 0))
				c.FLOP(1)
			},
		})
		if next > gb.wlOut.Len() {
			next = gb.wlOut.Len()
		}
		count = next
		dIn, dOut = dOut, dIn
	}
	s.Wait(device.FromDevice(s, gb.dist, dDist))
	s.EndROI()
	s.AddResult(device.ChecksumI32(gb.dist.V))
}

// wlVariant is the shared shape of the worklist-variant benchmarks.
type wlVariant struct {
	name     string
	weighted bool
	agg      pushAgg
	seed     int64
}

// Info describes the variant.
func (v wlVariant) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: v.name,
		Desc:   "worklist " + map[bool]string{false: "BFS", true: "SSSP"}[v.weighted] + " (" + v.name + " aggregation variant)",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes the variant.
func (v wlVariant) Run(s *device.System, mode bench.Mode, size bench.Size) {
	gb := setupGraph(s, bench.ScaleN(32768, size), v.seed)
	runWorklistAgg(s, gb, v.weighted, 24, v.agg, 256)
}

func init() {
	bench.Register(wlVariant{name: "bfs_wla", weighted: false, agg: aggPerCTA, seed: 101})
	bench.Register(wlVariant{name: "bfs_wlw", weighted: false, agg: aggPerWarp, seed: 101})
	bench.Register(wlVariant{name: "sssp_wln", weighted: true, agg: aggPerCTA, seed: 103})
	bench.Register(wlVariant{name: "sssp_wlf", weighted: true, agg: aggFiltered, seed: 103})
}

// TopoBFS is LonestarGPU's topology-driven bfs: every round sweeps all
// vertices looking for the current level (no worklist), with a host-read
// changed flag.
type TopoBFS struct{}

func init() { bench.Register(TopoBFS{}) }

// Info describes bfs.
func (TopoBFS) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "bfs",
		Desc:   "topology-driven BFS (level sweeps, no worklist)",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes bfs.
func (TopoBFS) Run(s *device.System, mode bench.Mode, size bench.Size) {
	runTopology(s, bench.ScaleN(32768, size), 101, false)
}

// TopoSSSP is LonestarGPU's topology-driven sssp (Bellman-Ford sweeps).
type TopoSSSP struct{}

func init() { bench.Register(TopoSSSP{}) }

// Info describes sssp.
func (TopoSSSP) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "sssp",
		Desc:   "topology-driven SSSP (Bellman-Ford sweeps)",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes sssp.
func (TopoSSSP) Run(s *device.System, mode bench.Mode, size bench.Size) {
	runTopology(s, bench.ScaleN(32768, size), 103, true)
}

// runTopology sweeps all vertices every round until nothing changes.
func runTopology(s *device.System, n int, seed int64, weighted bool) {
	gb := setupGraph(s, n, seed)
	block := 256
	s.BeginROI()
	dRow, _ := device.ToDevice(s, gb.rowPtr)
	dCol, _ := device.ToDevice(s, gb.colIdx)
	dW, _ := device.ToDevice(s, gb.weights)
	dDist, _ := device.ToDevice(s, gb.dist)
	dFlag, _ := device.ToDevice(s, gb.wlSize)
	s.Drain()

	for round := 0; round < 48; round++ {
		gb.wlSize.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dFlag, gb.wlSize)
		} else {
			dFlag.V[0] = 0
		}
		s.Launch(device.KernelSpec{
			Name: "topo_relax", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				dv := device.Ld(t, dDist, v)
				if dv >= 1<<30 {
					return
				}
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				for e := lo; e < hi; e++ {
					dst := int(device.Ld(t, dCol, e))
					w := int32(1)
					if weighted {
						w = int32(device.Ld(t, dW, e))
					}
					nd := dv + w
					if device.AtomicMinI32(t, dDist, dst, nd) > nd {
						device.St(t, dFlag, 0, 1)
					}
					t.FLOP(2)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, gb.hostWl, dFlag)
		} else {
			gb.hostWl.V[0] = dFlag.V[0]
		}
		changed := false
		s.CPUTask(device.CPUTaskSpec{
			Name: "topo_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				changed = device.Ld(c, gb.hostWl, 0) != 0
				c.FLOP(1)
			},
		})
		if !changed {
			break
		}
	}
	s.Wait(device.FromDevice(s, gb.dist, dDist))
	s.EndROI()
	s.AddResult(device.ChecksumI32(gb.dist.V))
}
