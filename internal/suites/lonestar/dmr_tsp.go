package lonestar

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// DMR is LonestarGPU's Delaunay mesh refinement skeleton: a worklist of
// bad triangles; each round a kernel expands every bad triangle's cavity
// (scattered neighbour reads), retires it, and appends newly created
// triangles — some of which are bad — onto the output worklist. The wide
// inter-stage data dependencies (the new mesh feeds the next round) are
// why the paper marks dmr as not pipeline-parallelizable.
type DMR struct{}

func init() { bench.Register(DMR{}) }

// Info describes dmr.
func (DMR) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "dmr",
		Desc:   "Delaunay mesh refinement: cavity expansion worklist rounds",
		PCComm: true, PipeParal: false, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes dmr.
func (DMR) Run(s *device.System, mode bench.Mode, size bench.Size) {
	ntri := bench.ScaleN(16384, size)
	capTri := ntri * 4
	block := 256

	// Triangles: 3 neighbour ids + a quality word (bit 0: bad).
	nb := device.AllocBuf[int32](s, capTri*3, "tri_neighbors", device.Host)
	quality := device.AllocBuf[int32](s, capTri, "tri_quality", device.Host)
	wlIn := device.AllocBuf[int32](s, capTri, "bad_wl_in", device.Host)
	wlOut := device.AllocBuf[int32](s, capTri, "bad_wl_out", device.Host)
	wlSize := device.AllocBuf[int32](s, 1, "bad_wl_size", device.Host)
	triCount := device.AllocBuf[int32](s, 1, "tri_count", device.Host)
	hostWl := device.AllocBuf[int32](s, 2, "host_counts", device.Host)

	rng := workload.RNG(181)
	badInit := 0
	for i := 0; i < ntri; i++ {
		for k := 0; k < 3; k++ {
			nb.V[i*3+k] = int32(rng.Intn(ntri))
		}
		if rng.Intn(8) == 0 {
			quality.V[i] = 1
			wlIn.V[badInit] = int32(i)
			badInit++
		}
	}
	triCount.V[0] = int32(ntri)

	s.BeginROI()
	dNb, _ := device.ToDevice(s, nb)
	dQ, _ := device.ToDevice(s, quality)
	dIn, _ := device.ToDevice(s, wlIn)
	dOut, _ := device.ToDevice(s, wlOut)
	dSize, _ := device.ToDevice(s, wlSize)
	dCount, _ := device.ToDevice(s, triCount)
	s.Drain()

	count := badInit
	for round := 0; round < 8 && count > 0; round++ {
		wlSize.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dSize, wlSize)
		} else {
			dSize.V[0] = 0
		}
		cnt := count
		grid := (cnt + block - 1) / block
		s.Launch(device.KernelSpec{
			Name: "dmr_refine", Grid: grid, Block: block,
			Func: func(t *device.Thread) {
				idx := t.Global()
				if idx >= cnt {
					return
				}
				tri := int(device.Ld(t, dIn, idx))
				if device.Ld(t, dQ, tri)&1 == 0 {
					return // already fixed by an earlier cavity
				}
				// Expand the cavity: read the neighbours.
				var cav [3]int32
				for k := 0; k < 3; k++ {
					cav[k] = device.Ld(t, dNb, tri*3+k)
					device.Ld(t, dQ, int(cav[k]))
					t.FLOP(2)
				}
				// Retire the bad triangle.
				device.St(t, dQ, tri, 2)
				// Create two replacement triangles.
				base := device.AtomicAddI32(t, dCount, 0, 2)
				if int(base)+2 > capTri {
					return
				}
				for c := 0; c < 2; c++ {
					id := int(base) + c
					for k := 0; k < 3; k++ {
						device.St(t, dNb, id*3+k, cav[k%3])
					}
					// Deterministically some of the new triangles are bad.
					bad := (id*2654435761)>>7&7 == 0
					q := int32(0)
					if bad {
						q = 1
						slot := device.AtomicAddI32(t, dSize, 0, 1)
						if int(slot) < capTri {
							device.St(t, dOut, int(slot), int32(id))
						}
					}
					device.St(t, dQ, id, q)
				}
				t.FLOP(8)
			},
		})
		if !s.Unified() {
			device.Memcpy(s, wlSize, dSize)
			hostWl.V[0] = wlSize.V[0]
		} else {
			hostWl.V[0] = dSize.V[0]
		}
		next := 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "dmr_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				next = int(device.Ld(c, hostWl, 0))
				c.FLOP(1)
			},
		})
		if next > capTri {
			next = capTri
		}
		count = next
		dIn, dOut = dOut, dIn
	}
	s.Wait(device.FromDevice(s, quality, dQ))
	s.EndROI()
	s.AddResult(device.ChecksumI32(quality.V), float64(dCount.V[0]))
}

// TSP is LonestarGPU's travelling-salesman 2-opt skeleton: per round the
// GPU evaluates a large set of candidate edge swaps (atomic-min on the
// best improvement), the CPU applies the winning reversal, repeat.
type TSP struct{}

func init() { bench.Register(TSP{}) }

// Info describes tsp.
func (TSP) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "tsp",
		Desc:   "2-opt TSP improvement: GPU swap evaluation + CPU reversal",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes tsp.
func (TSP) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(2048, size) // cities
	rounds := 6
	block := 256
	cand := 64 * 1024 // candidate pairs per round

	xs := device.AllocBuf[float32](s, n, "city_x", device.Host)
	ys := device.AllocBuf[float32](s, n, "city_y", device.Host)
	tour := device.AllocBuf[int32](s, n, "tour", device.Host)
	best := device.AllocBuf[int32](s, 1, "best_delta", device.Host)
	pts := workload.Points(n, 2, 191)
	for i := 0; i < n; i++ {
		xs.V[i] = pts[i*2]
		ys.V[i] = pts[i*2+1]
		tour.V[i] = int32(i)
	}

	dist2 := func(a, b int32) float32 {
		dx := xs.V[a] - xs.V[b]
		dy := ys.V[a] - ys.V[b]
		return dx*dx + dy*dy
	}

	s.BeginROI()
	dXs, _ := device.ToDevice(s, xs)
	dYs, _ := device.ToDevice(s, ys)
	dTour, _ := device.ToDevice(s, tour)
	dBest, _ := device.ToDevice(s, best)
	s.Drain()

	const inf = int32(1) << 30
	for round := 0; round < rounds; round++ {
		best.V[0] = inf
		if !s.Unified() {
			device.Memcpy(s, dBest, best)
		} else {
			dBest.V[0] = inf
		}
		rr := round
		s.Launch(device.KernelSpec{
			Name: "tsp_eval_swaps", Grid: cand / block, Block: block,
			Func: func(t *device.Thread) {
				k := t.Global()
				// Deterministic candidate pair (i, j), i+1 < j.
				i := (k*2654435761 + rr) % (n - 3)
				j := i + 2 + (k*40503+rr)%(n-i-3)
				a := device.Ld(t, dTour, i)
				b := device.Ld(t, dTour, i+1)
				c := device.Ld(t, dTour, j)
				d := device.Ld(t, dTour, j+1)
				device.Ld(t, dXs, int(a))
				device.Ld(t, dYs, int(a))
				device.Ld(t, dXs, int(c))
				device.Ld(t, dYs, int(c))
				delta := dist2(a, c) + dist2(b, d) - dist2(a, b) - dist2(c, d)
				t.FLOP(16)
				if delta < 0 {
					// Sortable key: scaled delta in the high 16 bits (more
					// negative = better), candidate index in the low 16 so
					// the CPU can re-derive (i, j).
					mag := int32(delta * 1e4)
					if mag < -32000 {
						mag = -32000
					}
					key := mag*65536 + int32(k&0xFFFF)
					device.AtomicMinI32(t, dBest, 0, key)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, best, dBest)
		}
		doneRound := false
		s.CPUTask(device.CPUTaskSpec{
			Name: "tsp_apply_swap", Threads: 1,
			Func: func(c *device.CPUThread) {
				key := device.Ld(c, best, 0)
				if key >= inf || key >= 0 {
					doneRound = true
					return
				}
				k := int(uint32(key) & 0xFFFF)
				i := (k*2654435761 + rr) % (n - 3)
				j := i + 2 + (k*40503+rr)%(n-i-3)
				// Reverse tour[i+1..j] — serial CPU work.
				for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
					a := device.Ld(c, tour, lo)
					b := device.Ld(c, tour, hi)
					device.St(c, tour, lo, b)
					device.St(c, tour, hi, a)
					c.FLOP(2)
				}
			},
		})
		if doneRound {
			break
		}
		if !s.Unified() {
			device.Memcpy(s, dTour, tour)
		}
	}
	s.EndROI()
	s.AddResult(device.ChecksumI32(tour.V))
}
