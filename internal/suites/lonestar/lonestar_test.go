package lonestar

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// hostBFS computes exact BFS hop counts.
func hostBFS(g *workload.Graph) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[0] = 0
	frontier := []int32{0}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				d := g.ColIdx[e]
				if dist[d] == 1<<30 {
					dist[d] = dist[v] + 1
					next = append(next, d)
				}
			}
		}
		frontier = next
	}
	return dist
}

// hostDijkstra computes exact weighted shortest paths (integer weights).
func hostDijkstra(g *workload.Graph) []int32 {
	const inf = 1 << 30
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	// Dial-style buckets work since weights are small integers.
	visited := make([]bool, g.N)
	for {
		u, best := -1, int32(inf)
		for v := 0; v < g.N; v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			d := g.ColIdx[e]
			if nd := dist[u] + int32(g.EdgeWeigh[e]); nd < dist[d] {
				dist[d] = nd
			}
		}
	}
	return dist
}

// TestBFSWLMatchesHostBFS: the worklist BFS must converge to exact hop
// counts on the identical generated graph.
func TestBFSWLMatchesHostBFS(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	g := workload.RMATGraph(n, 8, 101)
	ref := hostBFS(g)
	var want float64
	for _, v := range ref {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(BFSWL{}, bench.ModeCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("bfs_wlc dist digest = %v, want %v", res[0], want)
	}
}

// TestSSSPWLSound: bounded-round SSSP relaxation can only over-estimate
// true distances, never under-estimate; the source stays zero; and most of
// the graph must have converged within the round budget.
func TestSSSPWLSound(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	g := workload.RMATGraph(n, 8, 103)
	ref := hostDijkstra(g)

	s := bench.SystemFor(bench.ModeLimitedCopy)
	gb := setupGraph(s, n, 103)
	runWorklist(s, gb, true, 24)

	exact, reachable := 0, 0
	for v := 0; v < n; v++ {
		got := gb.dist.V[v]
		if got < ref[v] {
			t.Fatalf("dist[%d] = %d below true shortest path %d", v, got, ref[v])
		}
		if ref[v] < 1<<30 {
			reachable++
			if got == ref[v] {
				exact++
			}
		}
	}
	if gb.dist.V[0] != 0 {
		t.Fatal("source distance must be 0")
	}
	if reachable == 0 {
		t.Fatal("degenerate graph")
	}
	if frac := float64(exact) / float64(reachable); frac < 0.9 {
		t.Fatalf("only %.1f%% of reachable vertices converged in the round budget", 100*frac)
	}
}

// TestWorklistCopyVsLimitedIdentity: identical results across machines.
func TestWorklistCopyVsLimitedIdentity(t *testing.T) {
	for _, b := range []bench.Benchmark{BFSWL{}, SSSPWL{}} {
		b := b
		t.Run(b.Info().Name, func(t *testing.T) {
			t.Parallel()
			_, cv := bench.ExecuteWithResult(b, bench.ModeCopy, bench.SizeSmall)
			_, lv := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)
			for i := range cv {
				if cv[i] != lv[i] {
					t.Fatalf("digest[%d]: copy %v != limited %v", i, cv[i], lv[i])
				}
			}
		})
	}
}
