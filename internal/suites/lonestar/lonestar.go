// Package lonestar re-implements the LonestarGPU worklist benchmarks this
// study uses: irregular graph algorithms that track available work in
// software queues built with atomics, with the CPU reading the worklist
// size back every round to decide whether to continue.
package lonestar

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// graphBufs holds the device-visible CSR plus worklist state.
type graphBufs struct {
	n           int
	rowPtr      *device.Buf[int32]
	colIdx      *device.Buf[int32]
	weights     *device.Buf[float32]
	dist        *device.Buf[int32]
	wlIn, wlOut *device.Buf[int32]
	wlSize      *device.Buf[int32]
	hostWl      *device.Buf[int32] // host mirror of wlSize in copy mode
}

func setupGraph(s *device.System, n int, seed int64) *graphBufs {
	g := workload.RMATGraph(n, 8, seed)
	b := &graphBufs{n: n}
	b.rowPtr = device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	b.colIdx = device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	b.weights = device.AllocBuf[float32](s, g.M(), "weights", device.Host)
	b.dist = device.AllocBuf[int32](s, n, "dist", device.Host)
	b.wlIn = device.AllocBuf[int32](s, n*4, "worklist_in", device.Host)
	b.wlOut = device.AllocBuf[int32](s, n*4, "worklist_out", device.Host)
	b.wlSize = device.AllocBuf[int32](s, 1, "worklist_size", device.Host)
	b.hostWl = device.AllocBuf[int32](s, 1, "worklist_size_host", device.Host)
	copy(b.rowPtr.V, g.RowPtr)
	copy(b.colIdx.V, g.ColIdx)
	copy(b.weights.V, g.EdgeWeigh)
	for i := range b.dist.V {
		b.dist.V[i] = 1 << 30
	}
	b.dist.V[0] = 0
	b.wlIn.V[0] = 0
	return b
}

// relaxRound builds one worklist-processing kernel: each thread takes one
// worklist entry, relaxes its edges (atomic-min on distances), and pushes
// improved vertices onto the output worklist through an atomic cursor.
func relaxRound(gb *graphBufs, dRow, dCol *device.Buf[int32], dW *device.Buf[float32],
	dDist, dIn, dOut, dSize *device.Buf[int32], count int, weighted bool, block int) device.KernelSpec {
	grid := (count + block - 1) / block
	if grid == 0 {
		grid = 1
	}
	return device.KernelSpec{
		Name: "wl_relax", Grid: grid, Block: block,
		Func: func(t *device.Thread) {
			idx := t.Global()
			if idx >= count {
				return
			}
			v := int(device.Ld(t, dIn, idx))
			lo := int(device.Ld(t, dRow, v))
			hi := int(device.Ld(t, dRow, v+1))
			dv := device.Ld(t, dDist, v)
			for e := lo; e < hi; e++ {
				dst := int(device.Ld(t, dCol, e))
				w := int32(1)
				if weighted {
					w = int32(device.Ld(t, dW, e))
				}
				nd := dv + w
				old := device.AtomicMinI32(t, dDist, dst, nd)
				if nd < old {
					slot := device.AtomicAddI32(t, dSize, 0, 1)
					if int(slot) < gb.wlOut.Len() {
						device.St(t, dOut, int(slot), int32(dst))
					}
				}
				t.FLOP(2)
			}
		},
	}
}

// runWorklist drives the outer loop shared by bfs_wlc and sssp_wlc.
func runWorklist(s *device.System, gb *graphBufs, weighted bool, maxRounds int) {
	block := 256
	s.BeginROI()
	dRow, _ := device.ToDevice(s, gb.rowPtr)
	dCol, _ := device.ToDevice(s, gb.colIdx)
	dW, _ := device.ToDevice(s, gb.weights)
	dDist, _ := device.ToDevice(s, gb.dist)
	dIn, _ := device.ToDevice(s, gb.wlIn)
	dOut, _ := device.ToDevice(s, gb.wlOut)
	dSize, _ := device.ToDevice(s, gb.wlSize)
	s.Drain()

	count := 1
	for round := 0; round < maxRounds && count > 0; round++ {
		gb.wlSize.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dSize, gb.wlSize)
		}
		s.Launch(relaxRound(gb, dRow, dCol, dW, dDist, dIn, dOut, dSize, count, weighted, block))
		// The CPU reads the worklist size back — the outer-loop structure
		// the paper highlights (a tiny D2H copy gating the CPU decision).
		if !s.Unified() {
			device.Memcpy(s, gb.hostWl, dSize)
		} else {
			gb.hostWl.V[0] = dSize.V[0]
		}
		next := 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "wl_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				next = int(device.Ld(c, gb.hostWl, 0))
				c.FLOP(1)
			},
		})
		if next > gb.wlOut.Len() {
			next = gb.wlOut.Len()
		}
		count = next
		dIn, dOut = dOut, dIn
	}
	s.Wait(device.FromDevice(s, gb.dist, dDist))
	s.EndROI()
	s.AddResult(device.ChecksumI32(gb.dist.V))
}

// BFSWL is LonestarGPU's worklist BFS (bfs_wlc variant).
type BFSWL struct{}

func init() { bench.Register(BFSWL{}) }

// Info describes bfs_wlc.
func (BFSWL) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "bfs_wlc",
		Desc:   "worklist BFS with atomic work queues",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes bfs_wlc.
func (BFSWL) Run(s *device.System, mode bench.Mode, size bench.Size) {
	gb := setupGraph(s, bench.ScaleN(32768, size), 101)
	runWorklist(s, gb, false, 24)
}

// SSSPWL is LonestarGPU's worklist single-source shortest paths (sssp_wlc).
type SSSPWL struct{}

func init() { bench.Register(SSSPWL{}) }

// Info describes sssp_wlc.
func (SSSPWL) Info() bench.Info {
	return bench.Info{
		Suite: "lonestar", Name: "sssp_wlc",
		Desc:   "worklist SSSP with atomic-min relaxations",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes sssp_wlc.
func (SSSPWL) Run(s *device.System, mode bench.Mode, size bench.Size) {
	gb := setupGraph(s, bench.ScaleN(32768, size), 103)
	runWorklist(s, gb, true, 24)
}
