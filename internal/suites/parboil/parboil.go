// Package parboil re-implements the Parboil benchmarks this study uses,
// preserving their pipeline structures against the device runtime.
package parboil

import (
	"strconv"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// Stencil is Parboil's 7-point stencil: iterated kernels double-buffering
// between two large device-temporary grids — the canonical W-R spill
// producer when the per-stage working set exceeds the GPU L2.
type Stencil struct{}

func init() { bench.Register(Stencil{}) }

// Info describes stencil.
func (Stencil) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "stencil",
		Desc:   "iterated 7-point stencil with device double-buffering",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes stencil.
func (Stencil) Run(s *device.System, mode bench.Mode, size bench.Size) {
	nx, ny := 512, bench.ScaleSide(256, size)
	nz := 4
	iters := 4
	block := 256
	cells := nx * ny * nz

	grid := device.AllocBuf[float32](s, cells, "grid", device.Host)
	copy(grid.V, workload.Grid(ny*nz, nx, 13))

	// step builds the stencil kernel over cells [base, base+count).
	step := func(a, b *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "stencil_step", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				i := base + t.Global()
				z := i / (nx * ny)
				rem := i % (nx * ny)
				y, x := rem/nx, rem%nx
				v := device.Ld(t, a, i)
				acc := -6 * v
				if x > 0 {
					acc += device.Ld(t, a, i-1)
				}
				if x < nx-1 {
					acc += device.Ld(t, a, i+1)
				}
				if y > 0 {
					acc += device.Ld(t, a, i-nx)
				}
				if y < ny-1 {
					acc += device.Ld(t, a, i+nx)
				}
				if z > 0 {
					acc += device.Ld(t, a, i-nx*ny)
				}
				if z < nz-1 {
					acc += device.Ld(t, a, i+nx*ny)
				}
				t.FLOP(8)
				device.St(t, b, i, v+0.1*acc)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// One H2D stream per z-slab; the first sweep runs as per-slab
		// kernels, each fenced (cudaStreamWaitEvent-style) on its own
		// slab's upload and both halo neighbours', so interior slabs
		// compute while later slabs still stream in. The remaining sweeps
		// touch the whole grid and chain as ordinary async kernels.
		dA := device.AllocBuf[float32](s, cells, "grid_dev", device.Device)
		dB := device.AllocBuf[float32](s, cells, "grid_tmp", device.Device)
		slab := nx * ny
		events := make([]*device.Event, nz)
		for z := 0; z < nz; z++ {
			up := s.NewStream("stencil_h2d_z" + strconv.Itoa(z))
			device.CopyRange(up, dA, z*slab, grid, z*slab, slab)
			events[z] = up.Record("slab" + strconv.Itoa(z))
		}
		deps := make([]*device.Handle, 0, nz)
		for z := 0; z < nz; z++ {
			ks := s.NewStream("stencil_k_z" + strconv.Itoa(z))
			for dz := -1; dz <= 1; dz++ {
				if z+dz >= 0 && z+dz < nz {
					ks.WaitEvent(events[z+dz])
				}
			}
			deps = append(deps, ks.Launch(step(dA, dB, z*slab, slab)))
		}
		src, dst := dB, dA
		for it := 1; it < iters; it++ {
			deps = []*device.Handle{s.LaunchAsync(step(src, dst, 0, cells), deps...)}
			src, dst = dst, src
		}
		if src != dA {
			deps = []*device.Handle{device.MemcpyAsync(s, dA, src, deps...)}
		}
		s.Wait(device.MemcpyAsync(s, grid, dA, deps...))
	} else {
		dA, _ := device.ToDevice(s, grid)
		dB := device.AllocBuf[float32](s, cells, "grid_tmp", device.Device)
		s.Drain()

		src, dst := dA, dB
		for it := 0; it < iters; it++ {
			s.Launch(step(src, dst, 0, cells))
			src, dst = dst, src
		}
		if src != dA {
			device.Memcpy(s, dA, src)
		}
		s.Wait(device.FromDevice(s, grid, dA))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(grid.V))
}

// SpMV is Parboil's sparse matrix-vector product over CSR: irregular
// gathers of the dense vector, repeated a few times as an iterative solver
// would.
type SpMV struct{}

func init() { bench.Register(SpMV{}) }

// Info describes spmv.
func (SpMV) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "spmv",
		Desc:   "CSR sparse matrix-vector product, irregular gathers",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes spmv.
func (SpMV) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(32768, size)
	g := workload.UniformGraph(n, 12, 17)
	block := 256
	iters := 4

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	vals := device.AllocBuf[float32](s, g.M(), "values", device.Host)
	x := device.AllocBuf[float32](s, n, "x", device.Host)
	y := device.AllocBuf[float32](s, n, "y", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	copy(vals.V, g.EdgeWeigh)
	for i := range x.V {
		x.V[i] = 1
	}

	// csr builds the SpMV kernel over rows [base, base+count).
	csr := func(dRow, dCol *device.Buf[int32], dVal, dX, dY *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "spmv_csr", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				r := base + t.Global()
				lo := int(device.Ld(t, dRow, r))
				hi := int(device.Ld(t, dRow, r+1))
				var acc float32
				for e := lo; e < hi; e++ {
					c := device.Ld(t, dCol, e)
					v := device.Ld(t, dVal, e)
					acc += v * device.Ld(t, dX, int(c)) // scattered gather
				}
				t.FLOP(2 * (hi - lo))
				device.St(t, dY, r, acc)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		const chunks = 4
		per := n / chunks
		dRow := device.AllocBuf[int32](s, n+1, "d_row_ptr", device.Device)
		dCol := device.AllocBuf[int32](s, g.M(), "d_col_idx", device.Device)
		dVal := device.AllocBuf[float32](s, g.M(), "d_values", device.Device)
		dX := device.AllocBuf[float32](s, n, "d_x", device.Device)
		dY := device.AllocBuf[float32](s, n, "d_y", device.Device)
		xUp := device.MemcpyAsync(s, dX, x)
		// The first sweep overlaps the CSR upload: each row chunk's kernel
		// starts as soon as its row pointers and edges (plus x) are
		// resident; later sweeps reuse the resident graph.
		pipe := s.Pipeline(device.PipelineSpec{
			Name: "spmv", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				lo := c * per
				elo, ehi := int(g.RowPtr[lo]), int(g.RowPtr[lo+per])
				h := device.MemcpyRangeAsync(s, dRow, lo, rowPtr, lo, per+1, deps...)
				h = device.MemcpyRangeAsync(s, dCol, elo, colIdx, elo, ehi-elo, h)
				return device.MemcpyRangeAsync(s, dVal, elo, vals, elo, ehi-elo, h)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(csr(dRow, dCol, dVal, dX, dY, c*per, per), append(deps, xUp)...)
			},
		})
		prev := pipe
		for it := 1; it < iters; it++ {
			prev = s.LaunchAsync(csr(dRow, dCol, dVal, dX, dY, 0, n), prev)
		}
		s.Wait(device.MemcpyAsync(s, y, dY, prev))
	} else {
		dRow, _ := device.ToDevice(s, rowPtr)
		dCol, _ := device.ToDevice(s, colIdx)
		dVal, _ := device.ToDevice(s, vals)
		dX, _ := device.ToDevice(s, x)
		dY, _ := device.ToDevice(s, y)
		s.Drain()

		for it := 0; it < iters; it++ {
			s.Launch(csr(dRow, dCol, dVal, dX, dY, 0, n))
		}
		s.Wait(device.FromDevice(s, y, dY))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(y.V))
}

// SGEMM is Parboil's tiled dense matrix multiply: scratch-tiled inner
// loops, compute-bound, the regular end of the suite.
type SGEMM struct{}

func init() { bench.Register(SGEMM{}) }

// Info describes sgemm.
func (SGEMM) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "sgemm",
		Desc:   "tiled dense matrix multiply",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes sgemm.
func (SGEMM) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(192, size) // square M=N=K
	const T = 32                    // tile
	block := 128

	a := device.AllocBuf[float32](s, n*n, "A", device.Host)
	b := device.AllocBuf[float32](s, n*n, "B", device.Host)
	cOut := device.AllocBuf[float32](s, n*n, "C", device.Host)
	copy(a.V, workload.Matrix(n, n, 23))
	copy(b.V, workload.Matrix(n, n, 24))

	// gemm builds the tiled-multiply kernel over C elements
	// [base, base+count) — whole rows of C when count is a multiple of n.
	gemm := func(dA, dB, dC *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "sgemm_tiled", Grid: count / block, Block: block,
			ScratchBytes: 2 * T * T * 4,
			Func: func(t *device.Thread) {
				i := base + t.Global()
				r, c := i/n, i%n
				var acc float32
				for k0 := 0; k0 < n; k0 += T {
					// Tile loads: this thread's row slice of A and (via the
					// cooperative tile) a strided slice of B.
					ar := device.LdN(t, dA, r*n+k0, T)
					device.LdN(t, dB, (k0+t.Lane()%T)*n+(c/T)*T, T)
					for kk := 0; kk < T; kk++ {
						acc += ar[kk] * dB.V[(k0+kk)*n+c]
					}
					t.ScratchOp(2)
					t.FLOP(2 * T)
					t.Sync()
				}
				device.St(t, dC, i, acc)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		const chunks = 4
		per := n / chunks * n // whole rows of A and C per chunk
		dA := device.AllocBuf[float32](s, n*n, "d_A", device.Device)
		dB := device.AllocBuf[float32](s, n*n, "d_B", device.Device)
		dC := device.AllocBuf[float32](s, n*n, "d_C", device.Device)
		// B is read by every chunk, so it uploads once up front; the A row
		// blocks stream in against the other chunks' kernels and C row
		// blocks stream out behind them.
		bUp := device.MemcpyAsync(s, dB, b)
		s.Wait(s.Pipeline(device.PipelineSpec{
			Name: "sgemm", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, dA, c*per, a, c*per, per, deps...)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(gemm(dA, dB, dC, c*per, per), append(deps, bUp)...)
			},
			D2H: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, cOut, c*per, dC, c*per, per, deps...)
			},
		}))
	} else {
		dA, _ := device.ToDevice(s, a)
		dB, _ := device.ToDevice(s, b)
		dC, _ := device.ToDevice(s, cOut)
		s.Drain()

		s.Launch(gemm(dA, dB, dC, 0, n*n))
		s.Wait(device.FromDevice(s, cOut, dC))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(cOut.V))
}

// FFT is Parboil's batched 1-D FFT: one kernel per butterfly stage,
// ping-ponging between two large device buffers — every stage spills its
// output past the L2 before the next stage consumes it.
type FFT struct{}

func init() { bench.Register(FFT{}) }

// Info describes fft.
func (FFT) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "fft",
		Desc:   "batched radix-2 FFT, kernel per stage, double-buffered",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes fft.
func (FFT) Run(s *device.System, mode bench.Mode, size bench.Size) {
	batch := bench.ScaleSide(512, size) * 2
	const fftN = 256
	block := 256
	total := batch * fftN

	re := device.AllocBuf[float32](s, total, "real", device.Host)
	im := device.AllocBuf[float32](s, total, "imag", device.Host)
	copy(re.V, workload.Points(total, 1, 33))

	s.BeginROI()
	dRe, _ := device.ToDevice(s, re)
	dIm, _ := device.ToDevice(s, im)
	dRe2 := device.AllocBuf[float32](s, total, "real_tmp", device.Device)
	dIm2 := device.AllocBuf[float32](s, total, "imag_tmp", device.Device)
	s.Drain()

	// CPU bit-reversal permutation table (setup stage on the host).
	rev := make([]int, fftN)
	s.CPUTask(device.CPUTaskSpec{
		Name: "fft_bitrev_setup", Threads: 1,
		Func: func(c *device.CPUThread) {
			bits := 0
			for 1<<bits < fftN {
				bits++
			}
			for i := 0; i < fftN; i++ {
				r := 0
				for j := 0; j < bits; j++ {
					if i&(1<<j) != 0 {
						r |= 1 << (bits - 1 - j)
					}
				}
				rev[i] = r
				c.FLOP(bits)
			}
		},
	})

	srcRe, srcIm, dstRe, dstIm := dRe, dIm, dRe2, dIm2
	// Stage 0 applies the bit-reversal while copying.
	s.Launch(device.KernelSpec{
		Name: "fft_bitrev", Grid: total / block, Block: block,
		Func: func(t *device.Thread) {
			i := t.Global()
			b, k := i/fftN, i%fftN
			vr := device.Ld(t, srcRe, b*fftN+rev[k])
			vi := device.Ld(t, srcIm, b*fftN+rev[k])
			device.St(t, dstRe, i, vr)
			device.St(t, dstIm, i, vi)
		},
	})
	srcRe, srcIm, dstRe, dstIm = dstRe, dstIm, srcRe, srcIm

	for span := 1; span < fftN; span *= 2 {
		sp := span
		sr, si, dr, di := srcRe, srcIm, dstRe, dstIm
		s.Launch(device.KernelSpec{
			Name: "fft_stage", Grid: total / 2 / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				b := i / (fftN / 2)
				p := i % (fftN / 2)
				grp := p / sp
				off := p % sp
				i0 := b*fftN + grp*2*sp + off
				i1 := i0 + sp
				ar := device.Ld(t, sr, i0)
				ai := device.Ld(t, si, i0)
				br := device.Ld(t, sr, i1)
				bi := device.Ld(t, si, i1)
				// Twiddle approximated by a rotation dependent on off.
				w := float32(off) / float32(2*sp)
				tr := br*(1-w) + bi*w
				ti := bi*(1-w) - br*w
				t.FLOP(10)
				device.St(t, dr, i0, ar+tr)
				device.St(t, di, i0, ai+ti)
				device.St(t, dr, i1, ar-tr)
				device.St(t, di, i1, ai-ti)
			},
		})
		srcRe, srcIm, dstRe, dstIm = dstRe, dstIm, srcRe, srcIm
	}
	if srcRe != dRe {
		device.Memcpy(s, dRe, srcRe)
		device.Memcpy(s, dIm, srcIm)
	}
	s.Wait(device.FromDevice(s, re, dRe))
	s.Wait(device.FromDevice(s, im, dIm))
	s.EndROI()
	s.AddResult(device.ChecksumF32(re.V), device.ChecksumF32(im.V))
}
