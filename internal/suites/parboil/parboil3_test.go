package parboil

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// TestPBFSMatchesHostBFS validates the queue-based BFS against a host BFS
// on the identical graph.
func TestPBFSMatchesHostBFS(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	g := workload.UniformGraph(n, 8, 18)
	ref := make([]int32, n)
	for i := range ref {
		ref[i] = -1
	}
	ref[0] = 0
	frontier := []int32{0}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				d := g.ColIdx[e]
				if ref[d] == -1 {
					ref[d] = ref[v] + 1
					next = append(next, d)
				}
			}
		}
		frontier = next
	}
	var want float64
	for _, v := range ref {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(PBFS{}, bench.ModeCopy, bench.SizeSmall)
	if res[0] != want {
		t.Fatalf("pbfs digest = %v, want %v", res[0], want)
	}
}

// TestMRIQMatchesHostReplica validates the Q-matrix kernel against the same
// arithmetic on the host.
func TestMRIQMatchesHostReplica(t *testing.T) {
	voxels := bench.ScaleN(16384, bench.SizeSmall)
	const K = 1024
	kx := workload.Points(K, 1, 26)
	phi := workload.Points(K, 1, 27)
	x := workload.Points(voxels, 1, 28)
	var wantRe, wantIm float64
	for v := 0; v < voxels; v++ {
		var re, im float32
		for k := 0; k < K; k++ {
			arg := kx[k] * x[v]
			re += phi[k] * (1 - arg*arg/2)
			im += phi[k] * arg
		}
		wantRe += float64(re)
		wantIm += float64(im)
	}
	_, res := bench.ExecuteWithResult(MRIQ{}, bench.ModeLimitedCopy, bench.SizeSmall)
	if res[0] != wantRe || res[1] != wantIm {
		t.Fatalf("mri-q digest = (%v, %v), want (%v, %v)", res[0], res[1], wantRe, wantIm)
	}
}
