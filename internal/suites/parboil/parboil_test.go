package parboil

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-9 {
		return d < 1e-9
	}
	return d/m <= tol
}

// TestSpMVMatchesReference validates the CSR kernel against a host SpMV on
// the identical generated matrix.
func TestSpMVMatchesReference(t *testing.T) {
	n := bench.ScaleN(32768, bench.SizeSmall)
	g := workload.UniformGraph(n, 12, 17)
	y := make([]float32, n)
	for r := 0; r < n; r++ {
		var acc float32
		for e := g.RowPtr[r]; e < g.RowPtr[r+1]; e++ {
			acc += g.EdgeWeigh[e] * 1.0 // x == all ones
		}
		y[r] = acc
	}
	var want float64
	for _, v := range y {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(SpMV{}, bench.ModeCopy, bench.SizeSmall)
	if !relClose(res[0], want, 1e-6) {
		t.Fatalf("spmv digest = %v, want %v", res[0], want)
	}
}

// TestSGEMMMatchesReference validates the tiled kernel against a naive
// host matrix multiply.
func TestSGEMMMatchesReference(t *testing.T) {
	n := bench.ScaleSide(192, bench.SizeSmall)
	a := workload.Matrix(n, n, 23)
	bm := workload.Matrix(n, n, 24)
	var want float64
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[r*n+k] * bm[k*n+c]
			}
			want += float64(acc)
		}
	}
	_, res := bench.ExecuteWithResult(SGEMM{}, bench.ModeLimitedCopy, bench.SizeSmall)
	// The kernel accumulates tile by tile in the same order, so digests
	// agree tightly.
	if !relClose(res[0], want, 1e-4) {
		t.Fatalf("sgemm digest = %v, want %v", res[0], want)
	}
}

// TestStencilMatchesReference replays the same 7-point updates on the host.
func TestStencilMatchesReference(t *testing.T) {
	nx, ny, nz := 512, bench.ScaleSide(256, bench.SizeSmall), 4
	iters := 4
	cells := nx * ny * nz
	cur := make([]float32, cells)
	copy(cur, workload.Grid(ny*nz, nx, 13))
	next := make([]float32, cells)
	for it := 0; it < iters; it++ {
		for i := 0; i < cells; i++ {
			z := i / (nx * ny)
			rem := i % (nx * ny)
			y, x := rem/nx, rem%nx
			v := cur[i]
			acc := -6 * v
			if x > 0 {
				acc += cur[i-1]
			}
			if x < nx-1 {
				acc += cur[i+1]
			}
			if y > 0 {
				acc += cur[i-nx]
			}
			if y < ny-1 {
				acc += cur[i+nx]
			}
			if z > 0 {
				acc += cur[i-nx*ny]
			}
			if z < nz-1 {
				acc += cur[i+nx*ny]
			}
			next[i] = v + 0.1*acc
		}
		cur, next = next, cur
	}
	var want float64
	for _, v := range cur {
		want += float64(v)
	}
	_, res := bench.ExecuteWithResult(Stencil{}, bench.ModeCopy, bench.SizeSmall)
	if !relClose(res[0], want, 1e-6) {
		t.Fatalf("stencil digest = %v, want %v", res[0], want)
	}
}

// TestFFTEnergyAndIdentity: the two organizations agree exactly, and the
// butterfly network must grow signal energy deterministically (a replica of
// the exact same stages on the host matches bit for bit).
func TestFFTMatchesHostReplica(t *testing.T) {
	batch := bench.ScaleSide(512, bench.SizeSmall) * 2
	const fftN = 256
	total := batch * fftN
	re := make([]float32, total)
	im := make([]float32, total)
	copy(re, workload.Points(total, 1, 33))

	bits := 0
	for 1<<bits < fftN {
		bits++
	}
	rev := make([]int, fftN)
	for i := 0; i < fftN; i++ {
		r := 0
		for j := 0; j < bits; j++ {
			if i&(1<<j) != 0 {
				r |= 1 << (bits - 1 - j)
			}
		}
		rev[i] = r
	}
	re2 := make([]float32, total)
	im2 := make([]float32, total)
	for b := 0; b < batch; b++ {
		for k := 0; k < fftN; k++ {
			re2[b*fftN+k] = re[b*fftN+rev[k]]
			im2[b*fftN+k] = im[b*fftN+rev[k]]
		}
	}
	src, dst := [2][]float32{re2, im2}, [2][]float32{re, im}
	for span := 1; span < fftN; span *= 2 {
		for i := 0; i < total/2; i++ {
			b := i / (fftN / 2)
			p := i % (fftN / 2)
			grp := p / span
			off := p % span
			i0 := b*fftN + grp*2*span + off
			i1 := i0 + span
			ar, ai := src[0][i0], src[1][i0]
			br, bi := src[0][i1], src[1][i1]
			w := float32(off) / float32(2*span)
			tr := br*(1-w) + bi*w
			ti := bi*(1-w) - br*w
			dst[0][i0], dst[1][i0] = ar+tr, ai+ti
			dst[0][i1], dst[1][i1] = ar-tr, ai-ti
		}
		src, dst = dst, src
	}
	var wantRe, wantIm float64
	for i := 0; i < total; i++ {
		wantRe += float64(src[0][i])
		wantIm += float64(src[1][i])
	}
	_, res := bench.ExecuteWithResult(FFT{}, bench.ModeCopy, bench.SizeSmall)
	if !relClose(res[0], wantRe, 1e-6) || !relClose(res[1], wantIm, 1e-6) {
		t.Fatalf("fft digest = (%v, %v), want (%v, %v)", res[0], res[1], wantRe, wantIm)
	}
}

// TestParboilCopyVsLimitedIdentity: the port never changes results.
func TestParboilCopyVsLimitedIdentity(t *testing.T) {
	for _, b := range []bench.Benchmark{Stencil{}, SpMV{}, SGEMM{}, FFT{}} {
		b := b
		t.Run(b.Info().Name, func(t *testing.T) {
			t.Parallel()
			_, cv := bench.ExecuteWithResult(b, bench.ModeCopy, bench.SizeSmall)
			_, lv := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)
			for i := range cv {
				if cv[i] != lv[i] {
					t.Fatalf("digest[%d]: copy %v != limited %v", i, cv[i], lv[i])
				}
			}
		})
	}
}
