package parboil

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// CutCP is Parboil's cutoff Coulombic potential: atoms binned into cells; a
// thread per lattice point accumulates the potential of atoms in its
// neighbourhood bins. One big H2D, one compute-heavy kernel, one D2H.
type CutCP struct{}

func init() { bench.Register(CutCP{}) }

// Info describes cutcp.
func (CutCP) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "cutcp",
		Desc:   "cutoff Coulomb potential over a binned atom set",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes cutcp.
func (CutCP) Run(s *device.System, mode bench.Mode, size bench.Size) {
	side := bench.ScaleSide(64, size) // lattice side
	cellsPerSide := 16
	atomsPerCell := 4
	natoms := cellsPerSide * cellsPerSide * atomsPerCell
	block := 256
	points := side * side

	// Atoms as (x, y, charge) triples, binned row-major by cell.
	atoms := device.AllocBuf[float32](s, natoms*3, "atoms", device.Host)
	pot := device.AllocBuf[float32](s, points, "potential", device.Host)
	rng := workload.RNG(151)
	for c := 0; c < cellsPerSide*cellsPerSide; c++ {
		cx, cy := c%cellsPerSide, c/cellsPerSide
		for a := 0; a < atomsPerCell; a++ {
			i := (c*atomsPerCell + a) * 3
			atoms.V[i] = (float32(cx) + rng.Float32()) / float32(cellsPerSide)
			atoms.V[i+1] = (float32(cy) + rng.Float32()) / float32(cellsPerSide)
			atoms.V[i+2] = rng.Float32()
		}
	}

	// potential is the per-thread kernel body (shared by the classic launch
	// and the persistent-kernel organization, whose global CTA indexing
	// matches the one-shot launch exactly).
	potential := func(dAtoms, dPot *device.Buf[float32]) func(t *device.Thread) {
		return func(t *device.Thread) {
			i := t.Global()
			py, px := i/side, i%side
			x := float32(px) / float32(side)
			y := float32(py) / float32(side)
			cellX, cellY := int(x*float32(cellsPerSide)), int(y*float32(cellsPerSide))
			var acc float32
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					cx, cy := cellX+dx, cellY+dy
					if cx < 0 || cy < 0 || cx >= cellsPerSide || cy >= cellsPerSide {
						continue
					}
					cell := cy*cellsPerSide + cx
					av := device.LdN(t, dAtoms, cell*atomsPerCell*3, atomsPerCell*3)
					for a := 0; a < atomsPerCell; a++ {
						ax, ay, q := av[a*3], av[a*3+1], av[a*3+2]
						d2 := (ax-x)*(ax-x) + (ay-y)*(ay-y) + 1e-4
						if d2 < 0.02 { // cutoff
							acc += q / d2
						}
					}
					t.FLOP(8 * atomsPerCell)
					t.ScratchOp(1)
				}
			}
			device.St(t, dPot, i, acc)
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// Persistent-kernel organization: one resident kernel is launched
		// (one host launch claim), then fed lattice-point batches whose
		// potentials stream back per batch — dispatch overhead amortized
		// across every chunk, D2H overlapped with the remaining compute.
		ctas := points / block
		feeds := 4
		if ctas < feeds {
			feeds = ctas
		}
		per := ctas / feeds
		dAtoms := device.AllocBuf[float32](s, natoms*3, "d_atoms", device.Device)
		dPot := device.AllocBuf[float32](s, points, "d_potential", device.Device)
		aUp := device.MemcpyAsync(s, dAtoms, atoms)
		pk := s.LaunchPersistent(device.PersistentKernelSpec{
			Name: "cutcp_potential", Block: block,
			ScratchBytes: 9 * atomsPerCell * 3 * 4,
			Func:         potential(dAtoms, dPot),
		}, aUp)
		outs := make([]*device.Handle, 0, feeds)
		for c := 0; c < feeds; c++ {
			nc := per
			if c == feeds-1 {
				nc = ctas - per*(feeds-1)
			}
			base := c * per * block
			h := pk.Feed(nc)
			outs = append(outs, device.MemcpyRangeAsync(s, pot, base, dPot, base, nc*block, h))
		}
		pk.Close()
		s.Wait(pk.Done())
		for _, h := range outs {
			s.Wait(h)
		}
	} else {
		dAtoms, _ := device.ToDevice(s, atoms)
		dPot, _ := device.ToDevice(s, pot)
		s.Drain()

		s.Launch(device.KernelSpec{
			Name: "cutcp_potential", Grid: points / block, Block: block,
			ScratchBytes: 9 * atomsPerCell * 3 * 4,
			Func:         potential(dAtoms, dPot),
		})
		s.Wait(device.FromDevice(s, pot, dPot))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(pot.V))
}

// LBM is Parboil's lattice-Boltzmann skeleton: per iteration every cell
// streams its neighbours' distribution values and applies a collision,
// double-buffering between two large device grids — a bandwidth hog.
type LBM struct{}

func init() { bench.Register(LBM{}) }

// Info describes lbm.
func (LBM) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "lbm",
		Desc:   "lattice-Boltzmann stream+collide over a 2-D grid",
		PCComm: true, PipeParal: true, Regular: true,
	}
}

// Run executes lbm.
func (LBM) Run(s *device.System, mode bench.Mode, size bench.Size) {
	side := bench.ScaleSide(128, size)
	const dirs = 8
	iters := 2
	block := 256
	cells := side * side

	grid := device.AllocBuf[float32](s, cells*dirs, "lbm_grid", device.Host)
	copy(grid.V, workload.Points(cells*dirs, 1, 161))

	s.BeginROI()
	dA, _ := device.ToDevice(s, grid)
	dB := device.AllocBuf[float32](s, cells*dirs, "lbm_tmp", device.Device)
	s.Drain()

	dxs := [dirs]int{1, -1, 0, 0, 1, 1, -1, -1}
	dys := [dirs]int{0, 0, 1, -1, 1, -1, 1, -1}
	src, dst := dA, dB
	for it := 0; it < iters; it++ {
		a, b := src, dst
		s.Launch(device.KernelSpec{
			Name: "lbm_stream_collide", Grid: cells / block, Block: block,
			Func: func(t *device.Thread) {
				i := t.Global()
				y, x := i/side, i%side
				var rho float32
				vals := make([]float32, dirs)
				for d := 0; d < dirs; d++ {
					sx := (x - dxs[d] + side) % side
					sy := (y - dys[d] + side) % side
					vals[d] = device.Ld(t, a, (sy*side+sx)*dirs+d)
					rho += vals[d]
				}
				t.FLOP(3 * dirs)
				eq := rho / dirs
				out := make([]float32, dirs)
				for d := 0; d < dirs; d++ {
					out[d] = vals[d] + 0.6*(eq-vals[d])
				}
				t.FLOP(2 * dirs)
				device.StN(t, b, i*dirs, out)
			},
		})
		src, dst = dst, src
	}
	if src != dA {
		device.Memcpy(s, dA, src)
	}
	s.Wait(device.FromDevice(s, grid, dA))
	s.EndROI()
	s.AddResult(device.ChecksumF32(grid.V))
}
