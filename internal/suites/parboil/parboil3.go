package parboil

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// PBFS is Parboil's queue-based BFS: levels expand through an atomic
// global queue with per-CTA aggregation — the suite's one software-queue
// benchmark.
type PBFS struct{}

func init() { bench.Register(PBFS{}) }

// Info describes bfs.
func (PBFS) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "bfs",
		Desc:   "queue-based BFS with per-CTA queue aggregation",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true, SWQueue: true,
	}
}

// Run executes bfs.
func (PBFS) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(32768, size)
	g := workload.UniformGraph(n, 8, 18)
	block := 256

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	cost := device.AllocBuf[int32](s, n, "cost", device.Host)
	qIn := device.AllocBuf[int32](s, n, "queue_in", device.Host)
	qOut := device.AllocBuf[int32](s, n, "queue_out", device.Host)
	qSize := device.AllocBuf[int32](s, 1, "queue_size", device.Host)
	hostQ := device.AllocBuf[int32](s, 1, "queue_size_host", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for i := range cost.V {
		cost.V[i] = -1
	}
	cost.V[0] = 0
	qIn.V[0] = 0

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dCost, _ := device.ToDevice(s, cost)
	dIn, _ := device.ToDevice(s, qIn)
	dOut, _ := device.ToDevice(s, qOut)
	dSize, _ := device.ToDevice(s, qSize)
	s.Drain()

	count := 1
	for level := int32(0); count > 0 && level < 48; level++ {
		qSize.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dSize, qSize)
		} else {
			dSize.V[0] = 0
		}
		cnt := count
		grid := (cnt + block - 1) / block
		lvl := level
		pending := make([][]int32, grid)
		s.Launch(device.KernelSpec{
			Name: "pbfs_level", Grid: grid, Block: block,
			ScratchBytes: block * 4,
			Func: func(t *device.Thread) {
				idx := t.Global()
				cta := t.CTA()
				if idx < cnt {
					v := int(device.Ld(t, dIn, idx))
					lo := int(device.Ld(t, dRow, v))
					hi := int(device.Ld(t, dRow, v+1))
					for e := lo; e < hi; e++ {
						u := int(device.Ld(t, dCol, e))
						if device.Ld(t, dCost, u) == -1 {
							device.St(t, dCost, u, lvl+1)
							pending[cta] = append(pending[cta], int32(u))
							t.ScratchOp(1)
						}
						t.FLOP(1)
					}
				}
				t.Sync()
				if t.Lane() == t.Block()-1 && len(pending[cta]) > 0 {
					slot := device.AtomicAddI32(t, dSize, 0, int32(len(pending[cta])))
					if int(slot)+len(pending[cta]) <= qOut.Len() {
						device.StN(t, dOut, int(slot), pending[cta])
					}
					pending[cta] = nil
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, hostQ, dSize)
		} else {
			hostQ.V[0] = dSize.V[0]
		}
		next := 0
		s.CPUTask(device.CPUTaskSpec{
			Name: "pbfs_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				next = int(device.Ld(c, hostQ, 0))
				c.FLOP(1)
			},
		})
		if next > qOut.Len() {
			next = qOut.Len()
		}
		count = next
		dIn, dOut = dOut, dIn
	}
	s.Wait(device.FromDevice(s, cost, dCost))
	s.EndROI()
	s.AddResult(device.ChecksumI32(cost.V))
}

// MRIQ is Parboil's mri-q: for each voxel, sum a trigonometric kernel over
// all k-space samples — compute-bound, the samples broadcast across the
// warp and served from cache.
type MRIQ struct{}

func init() { bench.Register(MRIQ{}) }

// Info describes mri-q.
func (MRIQ) Info() bench.Info {
	return bench.Info{
		Suite: "parboil", Name: "mri-q",
		Desc:   "MRI Q-matrix: per-voxel sum over k-space samples",
		PCComm: true, PipeParal: true, Regular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes mri-q.
func (MRIQ) Run(s *device.System, mode bench.Mode, size bench.Size) {
	voxels := bench.ScaleN(16384, size)
	const K = 1024 // k-space samples
	const batch = 64
	block := 256

	kx := device.AllocBuf[float32](s, K, "kspace_x", device.Host)
	phi := device.AllocBuf[float32](s, K, "phi_mag", device.Host)
	x := device.AllocBuf[float32](s, voxels, "voxel_x", device.Host)
	qRe := device.AllocBuf[float32](s, voxels, "q_real", device.Host)
	qIm := device.AllocBuf[float32](s, voxels, "q_imag", device.Host)
	copy(kx.V, workload.Points(K, 1, 26))
	copy(phi.V, workload.Points(K, 1, 27))
	copy(x.V, workload.Points(voxels, 1, 28))

	// computeQ builds the Q kernel over voxels [base, base+count).
	computeQ := func(dKx, dPhi, dX, dRe, dIm *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "mriq_computeQ", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				xv := device.Ld(t, dX, v)
				var re, im float32
				for k0 := 0; k0 < K; k0 += batch {
					ks := device.LdN(t, dKx, k0, batch)
					ph := device.LdN(t, dPhi, k0, batch)
					for k := 0; k < batch; k++ {
						// cos/sin stand-in: two multiply-adds per sample.
						arg := ks[k] * xv
						re += ph[k] * (1 - arg*arg/2)
						im += ph[k] * arg
					}
					t.FLOP(6 * batch)
				}
				device.St(t, dRe, v, re)
				device.St(t, dIm, v, im)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		const chunks = 4
		per := voxels / chunks
		dKx := device.AllocBuf[float32](s, K, "d_kspace_x", device.Device)
		dPhi := device.AllocBuf[float32](s, K, "d_phi_mag", device.Device)
		dX := device.AllocBuf[float32](s, voxels, "d_voxel_x", device.Device)
		dRe := device.AllocBuf[float32](s, voxels, "d_q_real", device.Device)
		dIm := device.AllocBuf[float32](s, voxels, "d_q_imag", device.Device)
		// The k-space tables upload once; voxel chunks then stream through
		// a two-slot staging pipeline (chunk c's upload waits for the
		// kernel that freed slot c-2), overlapping x uploads, Q kernels,
		// and the two result downloads.
		kUp := device.MemcpyAsync(s, dKx, kx)
		pUp := device.MemcpyAsync(s, dPhi, phi)
		s.Wait(s.DoubleBuffer(device.PipelineSpec{
			Name: "mriq", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				return device.MemcpyRangeAsync(s, dX, c*per, x, c*per, per, deps...)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(computeQ(dKx, dPhi, dX, dRe, dIm, c*per, per), append(deps, kUp, pUp)...)
			},
			D2H: func(c int, deps ...*device.Handle) *device.Handle {
				h := device.MemcpyRangeAsync(s, qRe, c*per, dRe, c*per, per, deps...)
				return device.MemcpyRangeAsync(s, qIm, c*per, dIm, c*per, per, h)
			},
		}))
	} else {
		dKx, _ := device.ToDevice(s, kx)
		dPhi, _ := device.ToDevice(s, phi)
		dX, _ := device.ToDevice(s, x)
		dRe, _ := device.ToDevice(s, qRe)
		dIm, _ := device.ToDevice(s, qIm)
		s.Drain()

		s.Launch(computeQ(dKx, dPhi, dX, dRe, dIm, 0, voxels))
		s.Wait(device.FromDevice(s, qRe, dRe))
		s.Wait(device.FromDevice(s, qIm, dIm))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(qRe.V), device.ChecksumF32(qIm.V))
}
