package pannotia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// ColorMaxMin is Pannotia's color_maxmin variant: each round colors both
// the local-maximum and local-minimum uncolored vertices, halving rounds at
// the cost of a second comparison sweep per vertex.
type ColorMaxMin struct{}

func init() { bench.Register(ColorMaxMin{}) }

// Info describes color_maxmin.
func (ColorMaxMin) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "color_maxmin",
		Desc:   "greedy coloring, max+min independent sets per round",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes color_maxmin.
func (ColorMaxMin) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(16384, size)
	g := workload.Symmetrize(workload.RMATGraph(n, 8, 222))
	runColoring(s, n, g, true)
}

// FWBlock is Pannotia's fw_block: the classic three-phase blocked
// Floyd-Warshall (diagonal block, row/column panels, interior) — three
// dependent kernels of very different sizes per k-block, the paper's
// compute-migration candidate shape.
type FWBlock struct{}

func init() { bench.Register(FWBlock{}) }

// Info describes fw_block.
func (FWBlock) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "fw_block",
		Desc:   "three-phase blocked Floyd-Warshall APSP",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes fw_block.
func (FWBlock) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(192, size)
	const B = 32
	nb := n / B
	block := 256

	dist := device.AllocBuf[float32](s, n*n, "dist", device.Host)
	g := workload.UniformGraph(n, 6, 202)
	for i := range dist.V {
		dist.V[i] = 1e9
	}
	for v := 0; v < n; v++ {
		dist.V[v*n+v] = 0
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			dist.V[v*n+int(g.ColIdx[e])] = g.EdgeWeigh[e]
		}
	}

	s.BeginROI()
	dD, _ := device.ToDevice(s, dist)
	s.Drain()

	// relaxRange relaxes rows [r0,r1) x cols [c0,c1) through pivots
	// kb..kb+B, buffering row-segment writes like a real kernel would.
	relaxSeg := func(t *device.Thread, r, c0, kb int) {
		seg := append([]float32(nil), device.LdN(t, dD, r*n+c0, B)...)
		for kk := 0; kk < B; kk++ {
			dk := device.Ld(t, dD, r*n+kb+kk)
			kRow := device.LdN(t, dD, (kb+kk)*n+c0, B)
			for c := 0; c < B; c++ {
				if v := dk + kRow[c]; v < seg[c] {
					seg[c] = v
				}
			}
			t.FLOP(2 * B)
		}
		device.StN(t, dD, r*n+c0, seg)
	}

	for kb := 0; kb < n; kb += B {
		// Phase 1: diagonal block, one small CTA.
		s.Launch(device.KernelSpec{
			Name: "fwb_diag", Grid: 1, Block: B,
			ScratchBytes: B * B * 4,
			Func: func(t *device.Thread) {
				relaxSeg(t, kb+t.Lane(), kb, kb)
				t.Sync()
			},
		})
		if nb == 1 {
			continue
		}
		// Phase 2: row and column panels.
		s.Launch(device.KernelSpec{
			Name: "fwb_panels", Grid: 2 * (nb - 1), Block: B,
			ScratchBytes: 2 * B * B * 4,
			Func: func(t *device.Thread) {
				cta := t.CTA()
				other := cta % (nb - 1) * B
				if other >= kb {
					other += B
				}
				if cta < nb-1 {
					relaxSeg(t, kb+t.Lane(), other, kb) // row panel
				} else {
					relaxSeg(t, other+t.Lane(), kb, kb) // column panel
				}
			},
		})
		// Phase 3: interior.
		s.Launch(device.KernelSpec{
			Name: "fwb_interior", Grid: (n*(n/B) + block - 1) / block, Block: block,
			Func: func(t *device.Thread) {
				idx := t.Global()
				if idx >= n*(n/B) {
					return
				}
				r := idx / (n / B)
				c0 := (idx % (n / B)) * B
				if r >= kb && r < kb+B {
					return // panels already done
				}
				if c0 == kb {
					return
				}
				relaxSeg(t, r, c0, kb)
			},
		})
	}
	s.Wait(device.FromDevice(s, dist, dD))
	s.EndROI()
	s.AddResult(device.ChecksumF32(dist.V))
}

// PageRank is Pannotia's push-style pr: every vertex atomically scatters
// rank/degree contributions to its out-neighbours — the atomics-heavy dual
// of pr_spmv's pull formulation.
type PageRank struct{}

func init() { bench.Register(PageRank{}) }

// Info describes pr.
func (PageRank) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "pr",
		Desc:   "push-style PageRank with atomic scatter",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes pr.
func (PageRank) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(16384, size)
	g := workload.RMATGraph(n, 8, 212)
	block := 256
	iters := 4

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	rank := device.AllocBuf[float32](s, n, "rank", device.Host)
	acc := device.AllocBuf[float32](s, n, "rank_acc", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for v := 0; v < n; v++ {
		rank.V[v] = 1.0 / float32(n)
	}

	// push scatters rank shares for vertices [base, base+count); apply
	// folds the accumulators back into ranks for the same range.
	push := func(dRow, dCol *device.Buf[int32], dRank, dAcc *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "pr_push", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				if hi == lo {
					return
				}
				share := device.Ld(t, dRank, v) / float32(hi-lo)
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					device.AtomicAddF32(t, dAcc, u, share)
					t.FLOP(2)
				}
			},
		}
	}
	apply := func(dRank, dAcc *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "pr_apply", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				a := device.Ld(t, dAcc, v)
				t.FLOP(3)
				device.St(t, dRank, v, 0.15/float32(n)+0.85*a)
				device.St(t, dAcc, v, 0)
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// The first push sweep overlaps the CSR upload: each vertex
		// chunk's push kernel fences only on its own rows' pointers and
		// edges (the scatter targets need rank/acc resident, uploaded
		// first). Later iterations reuse the resident graph.
		const chunks = 4
		per := n / chunks
		dRow := device.AllocBuf[int32](s, n+1, "d_row_ptr", device.Device)
		dCol := device.AllocBuf[int32](s, g.M(), "d_col_idx", device.Device)
		dRank := device.AllocBuf[float32](s, n, "d_rank", device.Device)
		dAcc := device.AllocBuf[float32](s, n, "d_rank_acc", device.Device)
		rankUp := device.MemcpyAsync(s, dRank, rank)
		accUp := device.MemcpyAsync(s, dAcc, acc)
		pipe := s.Pipeline(device.PipelineSpec{
			Name: "pr", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				lo := c * per
				elo, ehi := int(g.RowPtr[lo]), int(g.RowPtr[lo+per])
				h := device.MemcpyRangeAsync(s, dRow, lo, rowPtr, lo, per+1, deps...)
				return device.MemcpyRangeAsync(s, dCol, elo, colIdx, elo, ehi-elo, h)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(push(dRow, dCol, dRank, dAcc, c*per, per), append(deps, rankUp, accUp)...)
			},
		})
		prev := s.LaunchAsync(apply(dRank, dAcc, 0, n), pipe)
		for it := 1; it < iters; it++ {
			prev = s.LaunchAsync(push(dRow, dCol, dRank, dAcc, 0, n), prev)
			prev = s.LaunchAsync(apply(dRank, dAcc, 0, n), prev)
		}
		s.Wait(device.MemcpyAsync(s, rank, dRank, prev))
	} else {
		dRow, _ := device.ToDevice(s, rowPtr)
		dCol, _ := device.ToDevice(s, colIdx)
		dRank, _ := device.ToDevice(s, rank)
		dAcc, _ := device.ToDevice(s, acc)
		s.Drain()

		for it := 0; it < iters; it++ {
			// Scatter kernel: push contributions with atomics.
			s.Launch(push(dRow, dCol, dRank, dAcc, 0, n))
			// Apply kernel: fold accumulators into ranks.
			s.Launch(apply(dRank, dAcc, 0, n))
		}
		s.Wait(device.FromDevice(s, rank, dRank))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(rank.V))
}

// SSSP is Pannotia's topology-driven sssp over CSR (float weights): edge
// relaxation sweeps with a host-read changed flag.
type SSSP struct{}

func init() { bench.Register(SSSP{}) }

// Info describes sssp.
func (SSSP) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "sssp",
		Desc:   "Bellman-Ford sweeps over CSR with host loop",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes sssp.
func (SSSP) Run(s *device.System, mode bench.Mode, size bench.Size) {
	runPannotiaSSSP(s, mode, size, false)
}

// SSSPEll is Pannotia's sssp_ell: the same relaxation over an ELL-packed
// matrix — fixed-width rows, column-major, fully coalesced.
type SSSPEll struct{}

func init() { bench.Register(SSSPEll{}) }

// Info describes sssp_ell.
func (SSSPEll) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "sssp_ell",
		Desc:   "Bellman-Ford sweeps over an ELL-packed graph",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes sssp_ell.
func (SSSPEll) Run(s *device.System, mode bench.Mode, size bench.Size) {
	runPannotiaSSSP(s, mode, size, true)
}

func runPannotiaSSSP(s *device.System, mode bench.Mode, size bench.Size, ell bool) {
	n := bench.ScaleN(16384, size)
	g := workload.RMATGraph(n, 8, 213)
	block := 256
	const width = 12 // ELL row width (extra edges dropped, rows padded)

	dist := device.AllocBuf[int32](s, n, "dist", device.Host)
	flag := device.AllocBuf[int32](s, 1, "changed", device.Host)
	hostFlag := device.AllocBuf[int32](s, 1, "changed_host", device.Host)
	for i := range dist.V {
		dist.V[i] = 1 << 30
	}
	dist.V[0] = 0

	var rowPtr, colIdx, ellIdx *device.Buf[int32]
	var weights, ellW *device.Buf[float32]
	if ell {
		// Column-major ELL: entry (v, j) at [j*n+v].
		ellIdx = device.AllocBuf[int32](s, n*width, "ell_col", device.Host)
		ellW = device.AllocBuf[float32](s, n*width, "ell_weight", device.Host)
		for i := range ellIdx.V {
			ellIdx.V[i] = -1
		}
		for v := 0; v < n; v++ {
			for j, e := 0, g.RowPtr[v]; j < width && e < g.RowPtr[v+1]; j, e = j+1, e+1 {
				ellIdx.V[j*n+v] = g.ColIdx[e]
				ellW.V[j*n+v] = g.EdgeWeigh[e]
			}
		}
	} else {
		rowPtr = device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
		colIdx = device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
		weights = device.AllocBuf[float32](s, g.M(), "weights", device.Host)
		copy(rowPtr.V, g.RowPtr)
		copy(colIdx.V, g.ColIdx)
		copy(weights.V, g.EdgeWeigh)
	}

	// relax builds the relaxation kernel over vertices [base, base+count).
	relax := func(dDist, dFlag, dRow, dCol, dEllIdx *device.Buf[int32], dW, dEllW *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: map[bool]string{false: "sssp_csr", true: "sssp_ell"}[ell],
			Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				dv := device.Ld(t, dDist, v)
				if dv >= 1<<30 {
					return
				}
				if ell {
					for j := 0; j < width; j++ {
						u := device.Ld(t, dEllIdx, j*n+v) // coalesced
						if u < 0 {
							continue
						}
						w := device.Ld(t, dEllW, j*n+v)
						nd := dv + int32(w)
						if device.AtomicMinI32(t, dDist, int(u), nd) > nd {
							device.St(t, dFlag, 0, 1)
						}
						t.FLOP(2)
					}
					return
				}
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					w := device.Ld(t, dW, e)
					nd := dv + int32(w)
					if device.AtomicMinI32(t, dDist, u, nd) > nd {
						device.St(t, dFlag, 0, 1)
					}
					t.FLOP(2)
				}
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// Round 0 overlaps the graph upload with per-chunk relaxations:
		// each vertex chunk's kernel fences only on its own rows' CSR (or
		// ELL column) slices, with distances and the changed flag uploaded
		// once up front. The host convergence loop stays serial per round.
		// ELL's column-major layout needs one strided copy per column per
		// chunk, so it uses fewer chunks to keep the copy count sane.
		chunks := 4
		if ell {
			chunks = 2
		}
		per := n / chunks
		dDist := device.AllocBuf[int32](s, n, "d_dist", device.Device)
		dFlag := device.AllocBuf[int32](s, 1, "d_changed", device.Device)
		var dRow, dCol, dEllIdx *device.Buf[int32]
		var dW, dEllW *device.Buf[float32]
		if ell {
			dEllIdx = device.AllocBuf[int32](s, n*width, "d_ell_col", device.Device)
			dEllW = device.AllocBuf[float32](s, n*width, "d_ell_weight", device.Device)
		} else {
			dRow = device.AllocBuf[int32](s, n+1, "d_row_ptr", device.Device)
			dCol = device.AllocBuf[int32](s, g.M(), "d_col_idx", device.Device)
			dW = device.AllocBuf[float32](s, g.M(), "d_weights", device.Device)
		}
		distUp := device.MemcpyAsync(s, dDist, dist)
		flagUp := device.MemcpyAsync(s, dFlag, flag)
		prev := s.Pipeline(device.PipelineSpec{
			Name: "sssp", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				lo := c * per
				if ell {
					// Column-major ELL: one strided slice per column.
					h := device.MemcpyRangeAsync(s, dEllIdx, lo, ellIdx, lo, per, deps...)
					for j := 1; j < width; j++ {
						h = device.MemcpyRangeAsync(s, dEllIdx, j*n+lo, ellIdx, j*n+lo, per, h)
					}
					for j := 0; j < width; j++ {
						h = device.MemcpyRangeAsync(s, dEllW, j*n+lo, ellW, j*n+lo, per, h)
					}
					return h
				}
				elo, ehi := int(g.RowPtr[lo]), int(g.RowPtr[lo+per])
				h := device.MemcpyRangeAsync(s, dRow, lo, rowPtr, lo, per+1, deps...)
				h = device.MemcpyRangeAsync(s, dCol, elo, colIdx, elo, ehi-elo, h)
				return device.MemcpyRangeAsync(s, dW, elo, weights, elo, ehi-elo, h)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(relax(dDist, dFlag, dRow, dCol, dEllIdx, dW, dEllW, c*per, per),
					append(deps, distUp, flagUp)...)
			},
		})
		for round := 0; ; round++ {
			fb := device.MemcpyAsync(s, hostFlag, dFlag, prev)
			changed := false
			s.Wait(s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "sssp_check", Threads: 1,
				Func: func(c *device.CPUThread) {
					changed = device.Ld(c, hostFlag, 0) != 0
					c.FLOP(1)
				},
			}, fb))
			if !changed || round == 23 {
				break
			}
			flag.V[0] = 0
			rst := device.MemcpyAsync(s, dFlag, flag, fb)
			prev = s.LaunchAsync(relax(dDist, dFlag, dRow, dCol, dEllIdx, dW, dEllW, 0, n), rst)
		}
		s.Wait(device.MemcpyAsync(s, dist, dDist, prev))
	} else {
		dDist, _ := device.ToDevice(s, dist)
		dFlag, _ := device.ToDevice(s, flag)
		var dRow, dCol, dEllIdx *device.Buf[int32]
		var dW, dEllW *device.Buf[float32]
		if ell {
			dEllIdx, _ = device.ToDevice(s, ellIdx)
			dEllW, _ = device.ToDevice(s, ellW)
		} else {
			dRow, _ = device.ToDevice(s, rowPtr)
			dCol, _ = device.ToDevice(s, colIdx)
			dW, _ = device.ToDevice(s, weights)
		}
		s.Drain()

		for round := 0; round < 24; round++ {
			flag.V[0] = 0
			if !s.Unified() {
				device.Memcpy(s, dFlag, flag)
			} else {
				dFlag.V[0] = 0
			}
			s.Launch(relax(dDist, dFlag, dRow, dCol, dEllIdx, dW, dEllW, 0, n))
			if !s.Unified() {
				device.Memcpy(s, hostFlag, dFlag)
			} else {
				hostFlag.V[0] = dFlag.V[0]
			}
			changed := false
			s.CPUTask(device.CPUTaskSpec{
				Name: "sssp_check", Threads: 1,
				Func: func(c *device.CPUThread) {
					changed = device.Ld(c, hostFlag, 0) != 0
					c.FLOP(1)
				},
			})
			if !changed {
				break
			}
		}
		s.Wait(device.FromDevice(s, dist, dDist))
	}
	s.EndROI()
	s.AddResult(device.ChecksumI32(dist.V))
}
