package pannotia

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// TestFWSound: blocked relaxation sweeps can never drop below the true
// all-pairs shortest-path distances, the diagonal stays zero, and direct
// edges are never worse than their weight.
func TestFWSound(t *testing.T) {
	n := bench.ScaleSide(192, bench.SizeSmall)
	g := workload.UniformGraph(n, 6, 201)

	// True APSP via textbook Floyd-Warshall on float64.
	const inf = 1e9
	ref := make([]float64, n*n)
	for i := range ref {
		ref[i] = inf
	}
	for v := 0; v < n; v++ {
		ref[v*n+v] = 0
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			w := float64(g.EdgeWeigh[e])
			if w < ref[v*n+int(g.ColIdx[e])] {
				ref[v*n+int(g.ColIdx[e])] = w
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := ref[i*n+k]
			if dik >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + ref[k*n+j]; v < ref[i*n+j] {
					ref[i*n+j] = v
				}
			}
		}
	}

	s := bench.SystemFor(bench.ModeLimitedCopy)
	FW{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	// Reconstruct the benchmark's matrix by rerunning? The digest alone
	// cannot be compared cell-wise, so rerun the internal pipeline with a
	// fresh system and inspect the buffer via a second run... instead the
	// soundness bound is checked on the digest: the benchmark's summed
	// distances must be >= the true summed finite distances restricted to
	// pairs both leave finite, and the run must improve on the initial
	// matrix. A full cell-wise check runs below against a host replica of
	// the same blocked sweep.
	if len(s.Result) != 1 {
		t.Fatal("fw must publish one digest")
	}

	// Host replica of the exact blocked sweep the kernel performs.
	const B = 32
	dist := make([]float32, n*n)
	for i := range dist {
		dist[i] = 1e9
	}
	for v := 0; v < n; v++ {
		dist[v*n+v] = 0
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			dist[v*n+int(g.ColIdx[e])] = g.EdgeWeigh[e]
		}
	}
	for k0 := 0; k0 < n; k0 += B {
		for idx := 0; idx < n*(n/B); idx++ {
			r := idx / (n / B)
			c0 := (idx % (n / B)) * B
			// Buffer the row segment exactly as the kernel does (reads see
			// pre-thread state; writes land when the thread retires).
			seg := append([]float32(nil), dist[r*n+c0:r*n+c0+B]...)
			for kk := 0; kk < B; kk++ {
				dk := dist[r*n+k0+kk]
				for c := 0; c < B; c++ {
					if v := dk + dist[(k0+kk)*n+c0+c]; v < seg[c] {
						seg[c] = v
					}
				}
			}
			copy(dist[r*n+c0:], seg)
		}
	}
	var want float64
	for i, v := range dist {
		want += float64(v)
		// Soundness versus true APSP.
		if float64(v) < ref[i]-1e-3 {
			t.Fatalf("cell %d: %v below true distance %v", i, v, ref[i])
		}
	}
	if s.Result[0] != want {
		t.Fatalf("fw digest = %v, host replica = %v", s.Result[0], want)
	}
}

// TestPageRankInvariants: ranks stay positive and mass stays bounded.
func TestPageRankInvariants(t *testing.T) {
	s := bench.SystemFor(bench.ModeLimitedCopy)
	PageRankSpMV{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	sum := s.Result[0]
	if sum <= 0.2 || sum > 2.0 {
		t.Fatalf("rank mass = %v, expected near 1", sum)
	}
}

// TestPannotiaCopyVsLimitedIdentity: identical results across machines.
func TestPannotiaCopyVsLimitedIdentity(t *testing.T) {
	for _, b := range []bench.Benchmark{FW{}, PageRankSpMV{}} {
		b := b
		t.Run(b.Info().Name, func(t *testing.T) {
			t.Parallel()
			_, cv := bench.ExecuteWithResult(b, bench.ModeCopy, bench.SizeSmall)
			_, lv := bench.ExecuteWithResult(b, bench.ModeLimitedCopy, bench.SizeSmall)
			for i := range cv {
				if cv[i] != lv[i] {
					t.Fatalf("digest[%d]: copy %v != limited %v", i, cv[i], lv[i])
				}
			}
		})
	}
}
