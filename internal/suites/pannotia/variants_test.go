package pannotia

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// hostColorCheck verifies a coloring: every vertex colored, no two
// adjacent vertices share a color.
func hostColorCheck(t *testing.T, name string, seed int64, colors []int32) {
	t.Helper()
	n := len(colors)
	g := workload.Symmetrize(workload.RMATGraph(n, 8, seed))
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			t.Fatalf("%s: vertex %d uncolored", name, v)
		}
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			u := g.ColIdx[e]
			if int(u) != v && colors[u] == colors[v] {
				t.Fatalf("%s: adjacent %d and %d share color %d", name, v, u, colors[v])
			}
		}
	}
}

// runAndGrabColors executes a coloring benchmark and recovers the color
// array by replaying the same functional pipeline (the device buffers are
// internal, so the test re-runs with a captured System).
func TestColoringsAreProper(t *testing.T) {
	// color_max
	{
		s := bench.SystemFor(bench.ModeLimitedCopy)
		ColorMax{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
		// Digest is the color sum; a proper coloring check needs the
		// per-vertex array — replicate the greedy max rounds on the host.
		n := bench.ScaleN(16384, bench.SizeSmall)
		colors := hostColorMax(n, 221, false)
		hostColorCheck(t, "color_max", 221, colors)
		var want float64
		for _, c := range colors {
			want += float64(c)
		}
		if s.Result[0] != want {
			t.Fatalf("color_max digest %v != host replica %v", s.Result[0], want)
		}
	}
	// color_maxmin
	{
		s := bench.SystemFor(bench.ModeLimitedCopy)
		ColorMaxMin{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
		n := bench.ScaleN(16384, bench.SizeSmall)
		colors := hostColorMax(n, 222, true)
		hostColorCheck(t, "color_maxmin", 222, colors)
		var want float64
		for _, c := range colors {
			want += float64(c)
		}
		if s.Result[0] != want {
			t.Fatalf("color_maxmin digest %v != host replica %v", s.Result[0], want)
		}
	}
}

// hostColorMax replicates the kernels' greedy rounds exactly.
func hostColorMax(n int, seed int64, maxmin bool) []int32 {
	g := workload.Symmetrize(workload.RMATGraph(n, 8, seed))
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	for round := int32(0); round < 224; round++ {
		next := make([]int32, n)
		copy(next, colors)
		remaining := 0
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			isMax, isMin := true, true
			pv := colorPrio(v)
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				u := int(g.ColIdx[e])
				if u == v || colors[u] >= 0 {
					continue
				}
				if pu := colorPrio(u); pu > pv {
					isMax = false
				} else if pu < pv {
					isMin = false
				}
			}
			switch {
			case isMax && !maxmin:
				next[v] = round
			case isMax && maxmin:
				next[v] = 2 * round
			case isMin && maxmin:
				next[v] = 2*round + 1
			default:
				remaining++
			}
		}
		colors = next
		if remaining == 0 {
			break
		}
	}
	return colors
}

// TestPushPullPageRankAgree: the push (pr) and pull (pr_spmv) formulations
// operate on different graphs/iteration counts here, so compare invariants:
// both keep positive mass near 1.
func TestPushPageRankMass(t *testing.T) {
	s := bench.SystemFor(bench.ModeLimitedCopy)
	PageRank{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	if s.Result[0] < 0.2 || s.Result[0] > 2.0 {
		t.Fatalf("push pagerank mass = %v", s.Result[0])
	}
}

// TestSSSPEllDropsPaddedEdges: the ELL variant caps row width; its
// distances can only be >= the CSR variant's on the same graph.
func TestSSSPEllSoundVsCSR(t *testing.T) {
	sCsr := bench.SystemFor(bench.ModeLimitedCopy)
	SSSP{}.Run(sCsr, bench.ModeLimitedCopy, bench.SizeSmall)
	sEll := bench.SystemFor(bench.ModeLimitedCopy)
	SSSPEll{}.Run(sEll, bench.ModeLimitedCopy, bench.SizeSmall)
	if sEll.Result[0] < sCsr.Result[0]-0.5 {
		t.Fatalf("ELL dist sum %v below CSR %v (dropped edges can only lengthen paths)",
			sEll.Result[0], sCsr.Result[0])
	}
}

// TestFWBlockMatchesFWShape: both FW variants relax the same kind of
// matrix; the blocked 3-phase variant must also stay above true APSP.
func TestFWBlockSound(t *testing.T) {
	n := bench.ScaleSide(192, bench.SizeSmall)
	g := workload.UniformGraph(n, 6, 202)
	// True APSP.
	const inf = 1e9
	ref := make([]float64, n*n)
	for i := range ref {
		ref[i] = inf
	}
	for v := 0; v < n; v++ {
		ref[v*n+v] = 0
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			w := float64(g.EdgeWeigh[e])
			if w < ref[v*n+int(g.ColIdx[e])] {
				ref[v*n+int(g.ColIdx[e])] = w
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := ref[i*n+k]
			if dik >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if v := dik + ref[k*n+j]; v < ref[i*n+j] {
					ref[i*n+j] = v
				}
			}
		}
	}
	var trueSum float64
	for _, v := range ref {
		trueSum += v
	}
	s := bench.SystemFor(bench.ModeLimitedCopy)
	FWBlock{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	if s.Result[0] < trueSum-1 {
		t.Fatalf("fw_block dist sum %v below true %v", s.Result[0], trueSum)
	}
}

// TestMISIsIndependentAndMaximal replays the admit/exclude rounds on the
// host and checks the defining MIS properties on the symmetric graph.
func TestMISIsIndependentAndMaximal(t *testing.T) {
	n := bench.ScaleN(16384, bench.SizeSmall)
	g := workload.Symmetrize(workload.RMATGraph(n, 8, 231))
	state := make([]int32, n)
	for round := 0; round < 64; round++ {
		// Admit (sequential in-place, matching functional generation).
		for v := 0; v < n; v++ {
			if state[v] != 0 {
				continue
			}
			isMax := true
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				u := int(g.ColIdx[e])
				if u != v && state[u] == 0 && u > v {
					isMax = false
				}
			}
			if isMax {
				state[v] = 1
			}
		}
		// Exclude.
		pending := 0
		for v := 0; v < n; v++ {
			if state[v] != 0 {
				continue
			}
			excluded := false
			for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
				u := int(g.ColIdx[e])
				if u != v && state[u] == 1 {
					excluded = true
					break
				}
			}
			if excluded {
				state[v] = 2
			} else {
				pending++
			}
		}
		if pending == 0 {
			break
		}
	}
	// Independence: no two adjacent vertices both in the set.
	for v := 0; v < n; v++ {
		if state[v] != 1 {
			continue
		}
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			u := int(g.ColIdx[e])
			if u != v && state[u] == 1 {
				t.Fatalf("adjacent %d and %d both in MIS", v, u)
			}
		}
	}
	// Maximality: every excluded/undecided vertex has a set neighbour.
	for v := 0; v < n; v++ {
		if state[v] == 1 {
			continue
		}
		hasSetNb := false
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			if u := int(g.ColIdx[e]); u != v && state[u] == 1 {
				hasSetNb = true
				break
			}
		}
		if !hasSetNb {
			t.Fatalf("vertex %d (state %d) could join the set", v, state[v])
		}
	}
	// And the benchmark must agree with the replica digest.
	var want float64
	for _, st := range state {
		want += float64(st)
	}
	s := bench.SystemFor(bench.ModeLimitedCopy)
	MIS{}.Run(s, bench.ModeLimitedCopy, bench.SizeSmall)
	if s.Result[0] != want {
		t.Fatalf("mis digest %v != replica %v", s.Result[0], want)
	}
}
