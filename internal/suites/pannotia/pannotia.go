// Package pannotia re-implements the Pannotia graph benchmarks this study
// uses: irregular graph analytics structured to expose work without
// software queues, ported (as in the paper) from OpenCL to the CUDA-like
// runtime.
package pannotia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// FW is Pannotia's blocked Floyd-Warshall all-pairs shortest paths: for
// each k-block a phase of dependent kernels sweeps the whole distance
// matrix — an O(n^2) working set re-read every phase, the archetypal
// R-R contention benchmark.
type FW struct{}

func init() { bench.Register(FW{}) }

// Info describes fw.
func (FW) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "fw",
		Desc:   "blocked Floyd-Warshall APSP",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes fw.
func (FW) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleSide(192, size)
	const B = 32
	block := 256

	dist := device.AllocBuf[float32](s, n*n, "dist", device.Host)
	g := workload.UniformGraph(n, 6, 201)
	for i := range dist.V {
		dist.V[i] = 1e9
	}
	for v := 0; v < n; v++ {
		dist.V[v*n+v] = 0
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			dist.V[v*n+int(g.ColIdx[e])] = g.EdgeWeigh[e]
		}
	}

	s.BeginROI()
	dD, _ := device.ToDevice(s, dist)
	s.Drain()

	for k0 := 0; k0 < n; k0 += B {
		kb := k0
		// One kernel sweeps all cells for this k-block; each thread owns a
		// row segment and relaxes through the B pivots.
		s.Launch(device.KernelSpec{
			Name: "fw_sweep", Grid: (n*(n/B) + block - 1) / block, Block: block,
			Func: func(t *device.Thread) {
				// Thread handles one (row, col-segment-of-B) pair.
				idx := t.Global()
				if idx >= n*(n/B) {
					return
				}
				r := idx / (n / B)
				c0 := (idx % (n / B)) * B
				row := device.LdN(t, dD, r*n+c0, B)
				viaRow := device.LdN(t, dD, r*n+kb, B) // d(r, k)
				out := make([]float32, B)
				copy(out, row)
				for kk := 0; kk < B; kk++ {
					dk := viaRow[kk]
					kRow := device.LdN(t, dD, (kb+kk)*n+c0, B) // d(k, c)
					for c := 0; c < B; c++ {
						if v := dk + kRow[c]; v < out[c] {
							out[c] = v
						}
					}
					t.FLOP(2 * B)
				}
				device.StN(t, dD, r*n+c0, out)
			},
		})
	}
	s.Wait(device.FromDevice(s, dist, dD))
	s.EndROI()
	s.AddResult(device.ChecksumF32(dist.V))
}

// PageRankSpMV is Pannotia's pr_spmv: rank propagation as a sparse
// matrix-vector product per iteration, with the new rank vector in a
// GPU-temporary buffer (a page-fault victim on the heterogeneous
// processor, as the paper reports) and a host convergence check.
type PageRankSpMV struct{}

func init() { bench.Register(PageRankSpMV{}) }

// Info describes pr_spmv.
func (PageRankSpMV) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "pr_spmv",
		Desc:   "PageRank via SpMV with host convergence check",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
		ExtraModes: []bench.Mode{bench.ModeAsyncStreams},
	}
}

// Run executes pr_spmv.
func (PageRankSpMV) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(32768, size)
	g := workload.RMATGraph(n, 8, 211)
	block := 256
	iters := 5

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	rank := device.AllocBuf[float32](s, n, "rank", device.Host)
	outDeg := device.AllocBuf[int32](s, n, "out_degree", device.Host)
	delta := device.AllocBuf[float32](s, 1, "delta", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for v := 0; v < n; v++ {
		rank.V[v] = 1.0 / float32(n)
		outDeg.V[v] = g.RowPtr[v+1] - g.RowPtr[v]
		if outDeg.V[v] == 0 {
			outDeg.V[v] = 1
		}
	}

	// spmv gathers neighbour ranks for vertices [base, base+count) (note:
	// treats colIdx rows as in-edges, as pannotia's transposed
	// representation does); update swaps in the new ranks and accumulates
	// |delta| over the same range.
	spmv := func(dRow, dCol, dDeg *device.Buf[int32], dRank, dNew *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "pr_spmv", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				var acc float32
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					r := device.Ld(t, dRank, u)
					d := device.Ld(t, dDeg, u)
					acc += r / float32(d)
				}
				t.FLOP(2 * (hi - lo))
				device.St(t, dNew, v, 0.15/float32(n)+0.85*acc)
			},
		}
	}
	update := func(dRank, dNew, dDelta *device.Buf[float32], base, count int) device.KernelSpec {
		return device.KernelSpec{
			Name: "pr_update", Grid: count / block, Block: block,
			Func: func(t *device.Thread) {
				v := base + t.Global()
				old := device.Ld(t, dRank, v)
				nw := device.Ld(t, dNew, v)
				df := nw - old
				if df < 0 {
					df = -df
				}
				t.FLOP(2)
				device.St(t, dRank, v, nw)
				if df > 1.0/float32(n) {
					device.AtomicAddF32(t, dDelta, 0, df)
				}
			},
		}
	}

	s.BeginROI()
	if mode == bench.ModeAsyncStreams {
		// The first SpMV sweep overlaps the CSR upload: each vertex
		// chunk's gather kernel fences on its own rows' pointers and
		// edges, with the rank and degree vectors (read at arbitrary
		// columns) uploaded once up front. The host convergence check
		// stays serial per iteration.
		const chunks = 4
		per := n / chunks
		dRow := device.AllocBuf[int32](s, n+1, "d_row_ptr", device.Device)
		dCol := device.AllocBuf[int32](s, g.M(), "d_col_idx", device.Device)
		dRank := device.AllocBuf[float32](s, n, "d_rank", device.Device)
		dDeg := device.AllocBuf[int32](s, n, "d_out_degree", device.Device)
		dDelta := device.AllocBuf[float32](s, 1, "d_delta", device.Device)
		dNew := device.AllocBuf[float32](s, n, "rank_new", device.Device)
		rankUp := device.MemcpyAsync(s, dRank, rank)
		degUp := device.MemcpyAsync(s, dDeg, outDeg)
		deltaUp := device.MemcpyAsync(s, dDelta, delta)
		prev := s.Pipeline(device.PipelineSpec{
			Name: "pr_spmv", Chunks: chunks,
			H2D: func(c int, deps ...*device.Handle) *device.Handle {
				lo := c * per
				elo, ehi := int(g.RowPtr[lo]), int(g.RowPtr[lo+per])
				h := device.MemcpyRangeAsync(s, dRow, lo, rowPtr, lo, per+1, deps...)
				return device.MemcpyRangeAsync(s, dCol, elo, colIdx, elo, ehi-elo, h)
			},
			Kernel: func(c int, deps ...*device.Handle) *device.Handle {
				return s.LaunchAsync(spmv(dRow, dCol, dDeg, dRank, dNew, c*per, per),
					append(deps, rankUp, degUp)...)
			},
		})
		for it := 0; ; it++ {
			upd := s.LaunchAsync(update(dRank, dNew, dDelta, 0, n), prev, deltaUp)
			fb := device.MemcpyAsync(s, delta, dDelta, upd)
			stop := false
			s.Wait(s.CPUTaskAsync(device.CPUTaskSpec{
				Name: "pr_check", Threads: 1,
				Func: func(c *device.CPUThread) {
					stop = device.Ld(c, delta, 0) < 1e-4
					c.FLOP(1)
				},
			}, fb))
			prev = upd
			if stop || it == iters-1 {
				break
			}
			delta.V[0] = 0
			deltaUp = device.MemcpyAsync(s, dDelta, delta, fb)
			prev = s.LaunchAsync(spmv(dRow, dCol, dDeg, dRank, dNew, 0, n), prev)
		}
		s.Wait(device.MemcpyAsync(s, rank, dRank, prev))
	} else {
		dRow, _ := device.ToDevice(s, rowPtr)
		dCol, _ := device.ToDevice(s, colIdx)
		dRank, _ := device.ToDevice(s, rank)
		dDeg, _ := device.ToDevice(s, outDeg)
		dDelta, _ := device.ToDevice(s, delta)
		// The new-rank vector lives only on the GPU — never CPU-touched.
		dNew := device.AllocBuf[float32](s, n, "rank_new", device.Device)
		s.Drain()

		for it := 0; it < iters; it++ {
			delta.V[0] = 0
			if !s.Unified() {
				device.Memcpy(s, dDelta, delta)
			} else {
				dDelta.V[0] = 0
			}
			s.Launch(spmv(dRow, dCol, dDeg, dRank, dNew, 0, n))
			s.Launch(update(dRank, dNew, dDelta, 0, n))
			// Host convergence check.
			if !s.Unified() {
				device.Memcpy(s, delta, dDelta)
			}
			stop := false
			s.CPUTask(device.CPUTaskSpec{
				Name: "pr_check", Threads: 1,
				Func: func(c *device.CPUThread) {
					stop = device.Ld(c, delta, 0) < 1e-4
					c.FLOP(1)
				},
			})
			if stop {
				break
			}
		}
		s.Wait(device.FromDevice(s, rank, dRank))
	}
	s.EndROI()
	s.AddResult(device.ChecksumF32(rank.V))
}
