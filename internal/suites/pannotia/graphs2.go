package pannotia

import (
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/workload"
)

// ColorMax is Pannotia's color_max greedy graph coloring: per round a
// kernel colors every uncolored vertex whose id beats all uncolored
// neighbours, and the host checks a copied-back remaining-count to decide
// whether to continue.
type ColorMax struct{}

func init() { bench.Register(ColorMax{}) }

// Info describes color_max.
func (ColorMax) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "color_max",
		Desc:   "greedy max-id graph coloring with host loop",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes color_max.
func (ColorMax) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(16384, size)
	g := workload.Symmetrize(workload.RMATGraph(n, 8, 221))
	runColoring(s, n, g, false)
}

// colorPrio is the vertex priority for the greedy extrema selection — a
// hash, not the raw id, so rounds stay logarithmic (Jones-Plassmann).
func colorPrio(v int) uint32 { return uint32(v) * 2654435761 }

// runColoring drives the two-kernel coloring rounds shared by color_max
// and color_maxmin: the first kernel marks local extrema against the
// previous round's colors, the second assigns — matching Pannotia's
// structure and avoiding intra-round visibility races.
func runColoring(s *device.System, n int, g *workload.Graph, maxmin bool) {
	block := 256
	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	color := device.AllocBuf[int32](s, n, "color", device.Host)
	flag := device.AllocBuf[int32](s, n, "extremum_flag", device.Host)
	remaining := device.AllocBuf[int32](s, 1, "remaining", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)
	for i := range color.V {
		color.V[i] = -1
	}

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dColor, _ := device.ToDevice(s, color)
	dFlag, _ := device.ToDevice(s, flag)
	dRem, _ := device.ToDevice(s, remaining)
	s.Drain()

	for round := int32(0); round < 224; round++ {
		remaining.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dRem, remaining)
		} else {
			dRem.V[0] = 0
		}
		// Kernel 1: mark extrema against the stable previous-round colors.
		s.Launch(device.KernelSpec{
			Name: "color_mark", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				if device.Ld(t, dColor, v) >= 0 {
					return
				}
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				isMax, isMin := true, true
				pv := colorPrio(v)
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					if u == v || device.Ld(t, dColor, u) >= 0 {
						continue
					}
					if pu := colorPrio(u); pu > pv {
						isMax = false
					} else if pu < pv {
						isMin = false
					}
					t.FLOP(2)
				}
				switch {
				case isMax:
					device.St(t, dFlag, v, 1)
				case isMin && maxmin:
					device.St(t, dFlag, v, 2)
				default:
					device.AtomicAddI32(t, dRem, 0, 1)
				}
			},
		})
		// Kernel 2: assign colors to the marked vertices.
		rr := round
		s.Launch(device.KernelSpec{
			Name: "color_assign", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				f := device.Ld(t, dFlag, v)
				if f == 0 {
					return
				}
				device.St(t, dFlag, v, 0)
				if maxmin {
					device.St(t, dColor, v, 2*rr+f-1)
				} else {
					device.St(t, dColor, v, rr)
				}
			},
		})
		if !s.Unified() {
			device.Memcpy(s, remaining, dRem)
		}
		done := false
		s.CPUTask(device.CPUTaskSpec{
			Name: "color_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				done = device.Ld(c, remaining, 0) == 0
				c.FLOP(1)
			},
		})
		if done {
			break
		}
	}
	s.Wait(device.FromDevice(s, color, dColor))
	s.EndROI()
	s.AddResult(device.ChecksumI32(color.V))
}

// MIS is Pannotia's maximal independent set: rounds of a local-max kernel
// admitting vertices and excluding their neighbours, with the same host
// loop-condition pattern.
type MIS struct{}

func init() { bench.Register(MIS{}) }

// Info describes mis.
func (MIS) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "mis",
		Desc:   "maximal independent set via local-max rounds",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes mis.
func (MIS) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(16384, size)
	g := workload.Symmetrize(workload.RMATGraph(n, 8, 231))
	block := 256

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	state := device.AllocBuf[int32](s, n, "mis_state", device.Host) // 0 undecided, 1 in, 2 out
	pending := device.AllocBuf[int32](s, 1, "pending", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dState, _ := device.ToDevice(s, state)
	dPend, _ := device.ToDevice(s, pending)
	s.Drain()

	for round := 0; round < 64; round++ {
		pending.V[0] = 0
		if !s.Unified() {
			device.Memcpy(s, dPend, pending)
		} else {
			dPend.V[0] = 0
		}
		// Admit local maxima among undecided vertices.
		s.Launch(device.KernelSpec{
			Name: "mis_admit", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				if device.Ld(t, dState, v) != 0 {
					return
				}
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				isMax := true
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					if u != v && device.Ld(t, dState, u) == 0 && u > v {
						isMax = false
					}
					t.FLOP(1)
				}
				if isMax {
					device.St(t, dState, v, 1)
				}
			},
		})
		// Exclude neighbours of admitted vertices; count what's left.
		s.Launch(device.KernelSpec{
			Name: "mis_exclude", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				if device.Ld(t, dState, v) != 0 {
					return
				}
				lo := int(device.Ld(t, dRow, v))
				hi := int(device.Ld(t, dRow, v+1))
				for e := lo; e < hi; e++ {
					u := int(device.Ld(t, dCol, e))
					if u != v && device.Ld(t, dState, u) == 1 {
						device.St(t, dState, v, 2)
						return
					}
					t.FLOP(1)
				}
				device.AtomicAddI32(t, dPend, 0, 1)
			},
		})
		if !s.Unified() {
			device.Memcpy(s, pending, dPend)
		}
		done := false
		s.CPUTask(device.CPUTaskSpec{
			Name: "mis_check", Threads: 1,
			Func: func(c *device.CPUThread) {
				done = device.Ld(c, pending, 0) == 0
				c.FLOP(1)
			},
		})
		if done {
			break
		}
	}
	s.Wait(device.FromDevice(s, state, dState))
	s.EndROI()
	s.AddResult(device.ChecksumI32(state.V))
}

// BC is Pannotia's betweenness centrality skeleton: for a handful of
// sources, forward BFS level kernels count shortest paths, then backward
// kernels accumulate dependencies level by level — the most kernel-dense
// benchmark in the suite.
type BC struct{}

func init() { bench.Register(BC{}) }

// Info describes bc.
func (BC) Info() bench.Info {
	return bench.Info{
		Suite: "pannotia", Name: "bc",
		Desc:   "betweenness centrality: per-source forward/backward sweeps",
		PCComm: true, PipeParal: true, Regular: true, Irregular: true,
	}
}

// Run executes bc.
func (BC) Run(s *device.System, mode bench.Mode, size bench.Size) {
	n := bench.ScaleN(8192, size)
	g := workload.RMATGraph(n, 8, 241)
	block := 256
	sources := 3

	rowPtr := device.AllocBuf[int32](s, n+1, "row_ptr", device.Host)
	colIdx := device.AllocBuf[int32](s, g.M(), "col_idx", device.Host)
	bc := device.AllocBuf[float32](s, n, "bc_scores", device.Host)
	level := device.AllocBuf[int32](s, n, "level", device.Host)
	sigma := device.AllocBuf[float32](s, n, "sigma", device.Host)
	delta := device.AllocBuf[float32](s, n, "delta", device.Host)
	cont := device.AllocBuf[int32](s, 1, "continue", device.Host)
	copy(rowPtr.V, g.RowPtr)
	copy(colIdx.V, g.ColIdx)

	s.BeginROI()
	dRow, _ := device.ToDevice(s, rowPtr)
	dCol, _ := device.ToDevice(s, colIdx)
	dBC, _ := device.ToDevice(s, bc)
	dLvl, _ := device.ToDevice(s, level)
	dSig, _ := device.ToDevice(s, sigma)
	dDel, _ := device.ToDevice(s, delta)
	dCont, _ := device.ToDevice(s, cont)
	s.Drain()

	for src := 0; src < sources; src++ {
		// Reset per-source state on the GPU.
		s0 := src * 977 % n
		s.Launch(device.KernelSpec{
			Name: "bc_reset", Grid: n / block, Block: block,
			Func: func(t *device.Thread) {
				v := t.Global()
				lv, sg := int32(-1), float32(0)
				if v == s0 {
					lv, sg = 0, 1
				}
				device.St(t, dLvl, v, lv)
				device.St(t, dSig, v, sg)
				device.St(t, dDel, v, 0)
			},
		})
		// Forward sweep.
		maxLevel := int32(0)
		for lvl := int32(0); lvl < 48; lvl++ {
			cont.V[0] = 0
			if !s.Unified() {
				device.Memcpy(s, dCont, cont)
			} else {
				dCont.V[0] = 0
			}
			ll := lvl
			s.Launch(device.KernelSpec{
				Name: "bc_forward", Grid: n / block, Block: block,
				Func: func(t *device.Thread) {
					v := t.Global()
					if device.Ld(t, dLvl, v) != ll {
						return
					}
					sg := device.Ld(t, dSig, v)
					lo := int(device.Ld(t, dRow, v))
					hi := int(device.Ld(t, dRow, v+1))
					for e := lo; e < hi; e++ {
						u := int(device.Ld(t, dCol, e))
						ul := device.Ld(t, dLvl, u)
						if ul == -1 {
							device.St(t, dLvl, u, ll+1)
							ul = ll + 1
							device.St(t, dCont, 0, 1)
						}
						if ul == ll+1 {
							device.AtomicAddF32(t, dSig, u, sg)
						}
						t.FLOP(2)
					}
				},
			})
			if !s.Unified() {
				device.Memcpy(s, cont, dCont)
			}
			goOn := false
			s.CPUTask(device.CPUTaskSpec{
				Name: "bc_fwd_check", Threads: 1,
				Func: func(c *device.CPUThread) {
					goOn = device.Ld(c, cont, 0) != 0
					c.FLOP(1)
				},
			})
			if !goOn {
				maxLevel = lvl
				break
			}
			maxLevel = lvl + 1
		}
		// Backward dependency accumulation, level by level.
		for lvl := maxLevel; lvl > 0; lvl-- {
			ll := lvl
			s.Launch(device.KernelSpec{
				Name: "bc_backward", Grid: n / block, Block: block,
				Func: func(t *device.Thread) {
					v := t.Global()
					if device.Ld(t, dLvl, v) != ll-1 {
						return
					}
					sv := device.Ld(t, dSig, v)
					if sv == 0 {
						return
					}
					lo := int(device.Ld(t, dRow, v))
					hi := int(device.Ld(t, dRow, v+1))
					var acc float32
					for e := lo; e < hi; e++ {
						u := int(device.Ld(t, dCol, e))
						if device.Ld(t, dLvl, u) == ll {
							su := device.Ld(t, dSig, u)
							if su > 0 {
								acc += sv / su * (1 + device.Ld(t, dDel, u))
							}
						}
						t.FLOP(4)
					}
					device.St(t, dDel, v, acc)
					if v != s0 {
						old := device.Ld(t, dBC, v)
						device.St(t, dBC, v, old+acc)
					}
				},
			})
		}
	}
	s.Wait(device.FromDevice(s, bc, dBC))
	s.EndROI()
	s.AddResult(device.ChecksumF32(bc.V))
}
