package sim

import (
	"context"
	"strings"
	"testing"
)

func recoverInterruptError(t *testing.T, fn func()) *InterruptError {
	t.Helper()
	var ie *InterruptError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("interrupted run did not stop")
			}
			var ok bool
			if ie, ok = r.(*InterruptError); !ok {
				t.Fatalf("panic value %T, want *InterruptError", r)
			}
		}()
		fn()
	}()
	return ie
}

// TestEngineInterrupt: a posted interrupt is delivered at the next
// periodic check as a typed panic, carrying the reason and progress.
func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	runawayLoop(e)
	e.Interrupt(ReasonStalled, "test kill")
	ie := recoverInterruptError(t, e.Run)
	if ie.Reason != ReasonStalled {
		t.Fatalf("reason = %v, want stalled", ie.Reason)
	}
	if !strings.Contains(ie.Error(), "stalled") || !strings.Contains(ie.Error(), "test kill") {
		t.Fatalf("message: %s", ie.Error())
	}
	// The engine remains queryable post-mortem.
	if e.Now() != ie.SimTime {
		t.Fatalf("Now %v != interrupt SimTime %v", e.Now(), ie.SimTime)
	}
}

// TestEngineInterruptFirstWins: the first posted interrupt's reason is
// the one delivered; later posts are dropped, not queued.
func TestEngineInterruptFirstWins(t *testing.T) {
	e := NewEngine()
	runawayLoop(e)
	e.Interrupt(ReasonCanceled, "first")
	e.Interrupt(ReasonStalled, "second")
	ie := recoverInterruptError(t, e.Run)
	if ie.Reason != ReasonCanceled || !strings.Contains(ie.Msg, "first") {
		t.Fatalf("interrupt = %+v, want the first request", ie)
	}
}

// TestEngineCtxCancel: a canceled Budget.Ctx stops the run at the next
// periodic check with ReasonCanceled.
func TestEngineCtxCancel(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	e.SetBudget(Budget{Ctx: ctx})
	runawayLoop(e)
	cancel()
	ie := recoverInterruptError(t, e.Run)
	if ie.Reason != ReasonCanceled {
		t.Fatalf("reason = %v, want canceled", ie.Reason)
	}
}

// TestEngineCtxUncanceledRuns: an armed but live context does not
// disturb a normal run.
func TestEngineCtxUncanceledRuns(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{Ctx: context.Background()})
	ran := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Tick(i), func() { ran++ })
	}
	e.Run()
	if ran != 10 {
		t.Fatalf("ran %d events, want 10", ran)
	}
}

// TestEngineHeartbeat: Progress publishes event count and simulated time
// at the pulse cadence, lagging the live values by at most one pulse
// interval.
func TestEngineHeartbeat(t *testing.T) {
	e := NewEngine()
	const n = 3 * (pulseMask + 1)
	for i := 0; i < n; i++ {
		e.Schedule(Tick(i), func() {})
	}
	e.Run()
	events, now := e.Progress()
	if events == 0 || now == 0 {
		t.Fatal("heartbeat never published")
	}
	// The pulse publishes before its event runs, so the lag can reach a
	// full pulse interval but never exceed it.
	if lag := e.EventsRun() - events; lag > pulseMask+1 {
		t.Fatalf("heartbeat lags %d events, max %d", lag, uint64(pulseMask+1))
	}
	if now > e.Now() {
		t.Fatalf("heartbeat sim time %v ahead of live %v", now, e.Now())
	}
}
