// Conservative intra-run parallelism for the discrete-event engine.
//
// The obvious conservative-PDES decomposition — one event heap per
// component domain, advancing independently inside a lookahead window —
// is unsound here: the timing models interact through synchronous
// analytic calls (a warp's store walks L1→L2→fabric→DRAM inside one
// event; BusyModel.Claim order is event execution order), so nearly
// every event reads shared timing state and the cross-domain lookahead
// collapses to a single event. What CAN leave the timing thread without
// perturbing the (when, seq) total order is the work that produces
// events' inputs rather than consuming simulated time: functional trace
// generation (running kernel code to record lane traces) and trace
// pre-processing (footprint accounting, address coalescing). ParEngine
// runs those on worker goroutines, pipelined ahead of the timing clock
// inside a bounded window, and the timing thread consumes their results
// in exactly the order the serial engine would have produced them — so
// results, counters, traces, and journals stay byte-identical to the
// serial engine for every worker count.
//
// Domains partition scheduled events for accounting (Engine.AtD), and
// two of them — DomainGen and DomainPre — execute off-thread. A run
// whose configuration admits no safe window (zero lookahead) or whose
// workload breaks the generation-order guarantee (persistent kernels,
// whose batch dispatch interleaves timing-dependently) falls back to
// the serial path and says so in sim_engine_serial_fallback_total.
package sim

import (
	"sync"
)

// Domain identifies which component model an event (or off-thread job)
// belongs to. The timing domains share one serial engine; Gen and Pre
// are the off-thread pipeline stages of the parallel engine.
type Domain uint8

const (
	// DomainHost is host-side runtime work: launches, copies, dependency
	// resolution, CPU task dispatch.
	DomainHost Domain = iota
	// DomainCPU is the CPU core timing model.
	DomainCPU
	// DomainGPU is the GPU SM/warp timing model.
	DomainGPU
	// DomainMem is the cache/fabric/DRAM hierarchy. Its models are
	// synchronous analytic calls and schedule no events of their own —
	// the coupling that rules out per-component event heaps.
	DomainMem
	// DomainPCIe is the copy-engine DMA pacing model.
	DomainPCIe
	// DomainVM is address translation and page-fault handling. Like
	// DomainMem it is synchronous and schedules no events.
	DomainVM
	// DomainGen is off-thread functional trace generation.
	DomainGen
	// DomainPre is off-thread trace pre-processing (footprint replay,
	// address coalescing).
	DomainPre

	// NumDomains sizes per-domain accounting arrays.
	NumDomains
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainHost:
		return "host"
	case DomainCPU:
		return "cpu"
	case DomainGPU:
		return "gpu"
	case DomainMem:
		return "mem"
	case DomainPCIe:
		return "pcie"
	case DomainVM:
		return "vm"
	case DomainGen:
		return "gen"
	case DomainPre:
		return "pre"
	default:
		return "domain?"
	}
}

// FallbackReason says why a run (or part of one) stayed on the serial
// engine despite a -par request.
type FallbackReason uint8

const (
	// FallbackZeroLookahead: the configuration's minimum cross-domain
	// latency is zero, so no window exists in which workers may safely
	// run ahead of the timing clock.
	FallbackZeroLookahead FallbackReason = iota
	// FallbackPersistentKernel: the run launched a persistent kernel,
	// whose CTA batches dispatch in timing-dependent order — pipelining
	// later kernels could reorder functional generation against it.
	FallbackPersistentKernel

	// NumFallbackReasons sizes the pre-resolved counter array.
	NumFallbackReasons
)

// String names the fallback reason (the metric label value).
func (r FallbackReason) String() string {
	if r == FallbackZeroLookahead {
		return "zero-lookahead"
	}
	return "persistent-kernel"
}

// ParEngine owns the worker goroutines of one parallel run: a single
// generation worker, which executes submitted jobs strictly in
// submission order (preserving the serial engine's generation order),
// and zero or more pre-processing workers fed by the generation worker.
// par counts total workers including the timing loop: 2 = timing + gen,
// 3+ adds pre workers. Build with NewParEngine; Release must be called
// when the run ends (the harness defers it) so a panicking run cannot
// leak goroutines.
type ParEngine struct {
	par       int
	window    int
	lookahead Tick

	dead      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	genMu   sync.Mutex
	genCond sync.Cond
	genQ    []func()

	pre     []chan func()
	preNext int // round-robin cursor; generation worker only
}

// NewParEngine builds the worker set for one run. par < 2 returns nil
// (serial run, no workers); window bounds how many jobs each Stream may
// run ahead of its consumer; lookahead is the config-derived window
// width recorded for diagnostics (callers must not construct a
// ParEngine when it is zero — that is the serial fallback).
func NewParEngine(par, window int, lookahead Tick) *ParEngine {
	if par < 2 {
		return nil
	}
	if window < 1 {
		window = 1
	}
	p := &ParEngine{par: par, window: window, lookahead: lookahead, dead: make(chan struct{})}
	p.genCond.L = &p.genMu
	p.wg.Add(1)
	go p.genWorker()
	for i := 2; i < par; i++ {
		ch := make(chan func(), window)
		p.pre = append(p.pre, ch)
		p.wg.Add(1)
		go p.preWorker(ch)
	}
	return p
}

// Par reports the total worker count (including the timing loop).
func (p *ParEngine) Par() int { return p.par }

// Window reports the per-stream flow-control window.
func (p *ParEngine) Window() int { return p.window }

// Lookahead reports the config-derived lookahead width.
func (p *ParEngine) Lookahead() Tick { return p.lookahead }

// PreWorkers reports how many pre-processing workers run (par - 2).
func (p *ParEngine) PreWorkers() int { return len(p.pre) }

// Release shuts the workers down and waits for them to exit. Idempotent
// and safe to call while jobs are in flight: workers abandon blocked
// hand-offs when the engine dies.
func (p *ParEngine) Release() {
	p.closeOnce.Do(func() {
		close(p.dead)
		p.genMu.Lock()
		p.genCond.Broadcast()
		p.genMu.Unlock()
	})
	p.wg.Wait()
}

// genWorker drains the generation queue in FIFO order — the order jobs
// were submitted on the timing thread, which for kernel generation is
// the order the serial engine would have called Gen in.
func (p *ParEngine) genWorker() {
	defer p.wg.Done()
	for {
		p.genMu.Lock()
		for len(p.genQ) == 0 {
			select {
			case <-p.dead:
				p.genMu.Unlock()
				return
			default:
			}
			p.genCond.Wait()
		}
		fn := p.genQ[0]
		p.genQ[0] = nil
		p.genQ = p.genQ[1:]
		p.genMu.Unlock()
		fn()
	}
}

func (p *ParEngine) preWorker(ch chan func()) {
	defer p.wg.Done()
	for {
		select {
		case fn := <-ch:
			fn()
		case <-p.dead:
			return
		}
	}
}

// gen enqueues fn for the generation worker. The queue is unbounded:
// submissions happen at launch events on the timing thread and must
// never block it (a blocked timing thread could never consume the
// results that would make room).
func (p *ParEngine) gen(fn func()) {
	p.genMu.Lock()
	p.genQ = append(p.genQ, fn)
	p.genMu.Unlock()
	p.genCond.Signal()
}

// preSubmit hands fn to pre worker w, abandoning the hand-off if the
// engine dies first. Reports whether the job was delivered.
func (p *ParEngine) preSubmit(w int, fn func()) bool {
	select {
	case p.pre[w] <- fn:
		return true
	case <-p.dead:
		return false
	}
}

// Result is one pipelined job's outcome: its value, or the panic that
// killed it (re-raised on the timing thread at consumption, so the
// harness classifies it exactly as it would a serial panic).
type Result struct {
	V        any
	panicVal any
}

// Stream delivers pipelined job results to the timing thread in
// submission order. The timing thread calls Next once per job; the
// producer side is driven by Pipeline.
type Stream struct {
	p     *ParEngine
	slots chan chan Result
	// admitted counts jobs in the current flow-control window, for the
	// sim_engine_windows_total / _window_events accounting. Producer
	// side only.
	admitted int
}

// NewStream builds an ordered result stream with the engine's window as
// its flow-control bound.
func (p *ParEngine) NewStream() *Stream {
	return &Stream{p: p, slots: make(chan chan Result, p.window)}
}

// Next blocks for the oldest unconsumed job's result. A job that
// panicked re-panics here with the original value.
func (st *Stream) Next() any {
	r := <-<-st.slots
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.V
}

// push admits the next job slot, blocking while the window is full (the
// producer may run at most Window jobs ahead of the consumer). Returns
// false when the engine died instead.
func (st *Stream) push() (chan Result, bool) {
	slot := make(chan Result, 1)
	select {
	case st.slots <- slot:
	case <-st.p.dead:
		return nil, false
	}
	st.admitted++
	if st.admitted == st.p.window {
		st.flushWindow()
	}
	return slot, true
}

// flushWindow closes one accounting window: one windows_total tick and
// one window_events observation of the jobs it admitted.
func (st *Stream) flushWindow() {
	if st.admitted == 0 {
		return
	}
	mWindows.Inc()
	mWindowEvents.Observe(float64(st.admitted))
	st.admitted = 0
}

// capture runs fn, converting a panic into a shippable Result.
func capture(fn func() any) (r Result) {
	defer func() {
		if pv := recover(); pv != nil {
			r = Result{panicVal: pv}
		}
	}()
	return Result{V: fn()}
}

// Pipeline runs n ordered jobs through the worker set and returns the
// stream their results arrive on. gen(i) runs on the generation worker,
// strictly in i order across every Pipeline call on this engine — the
// property that keeps functional generation in serial order. When pre
// workers exist and pre is non-nil, each gen result is then transformed
// by pre(worker, i, v) on a round-robin pre worker; per-job order is
// restored by the stream, so pre jobs may complete out of order. The
// consumer must call Next exactly once per job, in order. A job that
// panics poisons the pipeline: its panic ships to the consumer and no
// later job of this Pipeline runs.
func (p *ParEngine) Pipeline(n int, gen func(i int) any, pre func(worker, i int, v any) any) *Stream {
	st := p.NewStream()
	p.gen(func() {
		defer st.flushWindow()
		for i := 0; i < n; i++ {
			slot, ok := st.push()
			if !ok {
				return
			}
			r := capture(func() any { return gen(i) })
			if r.panicVal != nil {
				slot <- r
				return
			}
			if pre != nil && len(p.pre) > 0 {
				w, i, v := p.preNext, i, r.V
				p.preNext++
				if p.preNext == len(p.pre) {
					p.preNext = 0
				}
				if !p.preSubmit(w, func() {
					slot <- capture(func() any { return pre(w, i, v) })
				}) {
					return
				}
				continue
			}
			if pre != nil {
				r = capture(func() any { return pre(0, i, r.V) })
				slot <- r
				if r.panicVal != nil {
					return
				}
				continue
			}
			slot <- r
		}
	})
	return st
}
