package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// TestPipelineOrder checks the core determinism contract: results come back
// in submission order for every worker count, with gen running strictly
// sequentially (gen(i) sees every earlier gen's effects).
func TestPipelineOrder(t *testing.T) {
	for _, par := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			p := NewParEngine(par, 4, Nanosecond)
			defer p.Release()
			const n = 200
			genSeen := 0
			st := p.Pipeline(n,
				func(i int) any {
					if genSeen != i {
						// Runs on the single gen worker, so no lock needed;
						// the failure value ships through the result.
						return -1
					}
					genSeen++
					return i
				},
				func(worker, i int, v any) any { return v.(int) * 10 })
			// pre runs even without pre workers (inline on the gen worker),
			// so the transform applies at every par.
			for i := 0; i < n; i++ {
				if got := st.Next().(int); got != i*10 {
					t.Fatalf("job %d: got %d, want %d", i, got, i*10)
				}
			}
		})
	}
}

// TestPipelineNilPre checks the pre=nil path delivers gen results directly.
func TestPipelineNilPre(t *testing.T) {
	p := NewParEngine(4, 8, Nanosecond)
	defer p.Release()
	st := p.Pipeline(10, func(i int) any { return i }, nil)
	for i := 0; i < 10; i++ {
		if got := st.Next().(int); got != i {
			t.Fatalf("job %d: got %d", i, got)
		}
	}
}

// TestPipelinePanicShips checks a panicking job re-panics on the consumer
// with the original value, and that no later job of the pipeline runs.
func TestPipelinePanicShips(t *testing.T) {
	for _, stage := range []string{"gen", "pre"} {
		t.Run(stage, func(t *testing.T) {
			p := NewParEngine(3, 4, Nanosecond)
			defer p.Release()
			boom := fmt.Errorf("boom")
			ran := make(chan int, 16)
			gen := func(i int) any {
				if stage == "gen" && i == 2 {
					panic(boom)
				}
				ran <- i
				return i
			}
			pre := func(worker, i int, v any) any {
				if stage == "pre" && i == 2 {
					panic(boom)
				}
				return v
			}
			st := p.Pipeline(10, gen, pre)
			for i := 0; i < 2; i++ {
				if got := st.Next().(int); got != i {
					t.Fatalf("job %d: got %d", i, got)
				}
			}
			func() {
				defer func() {
					if r := recover(); r != boom {
						t.Fatalf("recovered %v, want the original panic value", r)
					}
				}()
				st.Next()
				t.Fatal("Next returned instead of panicking")
			}()
			p.Release()
			close(ran)
			for i := range ran {
				if stage == "gen" && i > 2 {
					t.Fatalf("gen %d ran after the poisoning panic", i)
				}
			}
		})
	}
}

// TestReleaseUnblocksProducer checks Release frees a pump blocked on a full
// flow-control window whose consumer never arrives — the abandoned-run path
// (budget trip, interrupt) must not leak or deadlock workers.
func TestReleaseUnblocksProducer(t *testing.T) {
	p := NewParEngine(4, 2, Nanosecond)
	p.Pipeline(100, func(i int) any { return i }, nil) // never consumed
	done := make(chan struct{})
	go func() {
		p.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Release did not unblock the pipeline producer")
	}
	p.Release() // idempotent
}

// TestSerialParEngineNil checks par<2 yields no engine (the serial path).
func TestSerialParEngineNil(t *testing.T) {
	for _, par := range []int{-1, 0, 1} {
		if p := NewParEngine(par, 8, Nanosecond); p != nil {
			t.Fatalf("NewParEngine(%d) = %v, want nil", par, p)
		}
	}
}

// TestPreWorkerCount checks the worker split: par counts the timing thread,
// one gen worker, and the rest pre workers.
func TestPreWorkerCount(t *testing.T) {
	for par, want := range map[int]int{2: 0, 3: 1, 4: 2, 8: 6} {
		p := NewParEngine(par, 8, Nanosecond)
		if got := p.PreWorkers(); got != want {
			t.Errorf("par=%d: PreWorkers=%d, want %d", par, got, want)
		}
		p.Release()
	}
}

// TestStreamOrderProperty fuzzes pipeline shapes (job count, worker count,
// window) and checks results always arrive in submission order — the
// byte-identical guarantee reduced to its ordering core.
func TestStreamOrderProperty(t *testing.T) {
	f := func(nRaw, parRaw, winRaw uint8) bool {
		n := int(nRaw % 64)
		par := 2 + int(parRaw%7)
		win := 1 + int(winRaw%9)
		p := NewParEngine(par, win, Nanosecond)
		defer p.Release()
		st := p.Pipeline(n,
			func(i int) any { return i },
			func(worker, i int, v any) any { return v.(int) })
		for i := 0; i < n; i++ {
			if st.Next().(int) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestScheduledByDomain checks AtD/ScheduleD account events per domain
// without perturbing execution order.
func TestScheduledByDomain(t *testing.T) {
	e := NewEngine()
	var order []string
	e.AtD(DomainGPU, 10, func() { order = append(order, "gpu") })
	e.AtD(DomainCPU, 5, func() { order = append(order, "cpu") })
	e.ScheduleD(DomainPCIe, 20, func() { order = append(order, "pcie") })
	e.AtD(DomainGPU, 15, func() { order = append(order, "gpu2") })
	e.Run()
	want := []string{"cpu", "gpu", "gpu2", "pcie"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	d := e.ScheduledByDomain()
	if d[DomainGPU] != 2 || d[DomainCPU] != 1 || d[DomainPCIe] != 1 || d[DomainHost] != 0 {
		t.Fatalf("domain counts %v", d)
	}
}

// TestDomainStrings pins the accounting names.
func TestDomainStrings(t *testing.T) {
	want := map[Domain]string{
		DomainHost: "host", DomainCPU: "cpu", DomainGPU: "gpu", DomainMem: "mem",
		DomainPCIe: "pcie", DomainVM: "vm", DomainGen: "gen", DomainPre: "pre",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Domain %d: %q, want %q", d, d.String(), s)
		}
	}
	if FallbackZeroLookahead.String() != "zero-lookahead" ||
		FallbackPersistentKernel.String() != "persistent-kernel" {
		t.Error("fallback reason names changed — they are metric label values")
	}
}
