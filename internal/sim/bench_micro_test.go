package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-processing rate — the
// simulator's fundamental speed limit. The self-scheduling chain exercises
// the heap path (positive delay).
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(100, tick)
		}
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineSameTick measures the zero-delay FIFO fast path —
// the shape of warp replay re-arming and DMA chunk pacing.
func BenchmarkEngineSameTick(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(0, tick)
		}
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineMixedQueue measures heap behaviour with a deep pending set:
// every event re-schedules at a spread of delays, keeping hundreds of
// events in flight.
func BenchmarkEngineMixedQueue(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(Tick(1+n%97), tick)
		}
	}
	for i := 0; i < 256 && i < b.N; i++ {
		e.Schedule(Tick(i), func() {})
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

func BenchmarkBusyModelClaim(b *testing.B) {
	var m BusyModel
	for i := 0; i < b.N; i++ {
		m.Claim(Tick(i), 10)
	}
}
