package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-processing rate — the
// simulator's fundamental speed limit.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(100, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run()
}

func BenchmarkBusyModelClaim(b *testing.B) {
	var m BusyModel
	for i := 0; i < b.N; i++ {
		m.Claim(Tick(i), 10)
	}
}
