package sim

import (
	"repro/internal/metrics"
)

// Parallel-engine metrics, registered on metrics.Default at package init
// so hetsimd's GET /metrics and cmd/experiments' -metrics summary expose
// them without wiring. Handles are pre-resolved (including every
// fallback-reason label) so the hot path is a single atomic add and the
// series exist at zero before any parallel run happens.
var (
	mWindows = metrics.Default.Counter("sim_engine_windows_total",
		"Flow-control windows completed by the parallel engine's pipelines.")
	mWindowEvents = metrics.Default.Histogram("sim_engine_window_events",
		"Jobs admitted per parallel-engine flow-control window.",
		metrics.LogBuckets(1, 512, 4))
	mFallback = metrics.Default.CounterVec("sim_engine_serial_fallback_total",
		"Runs (or kernels) that fell back to the serial engine despite a parallel request, by reason.",
		"reason")

	// fallbackByReason pre-resolves one counter per reason; reasons are a
	// small closed enum so the array resolves fully at init.
	fallbackByReason [NumFallbackReasons]metrics.Counter
)

func init() {
	for r := FallbackReason(0); r < NumFallbackReasons; r++ {
		fallbackByReason[r] = mFallback.With(r.String())
	}
}

// RecordSerialFallback counts one serial fallback for the given reason.
func RecordSerialFallback(r FallbackReason) {
	if r < NumFallbackReasons {
		fallbackByReason[r].Inc()
		return
	}
	mFallback.With(r.String()).Inc()
}
