package sim

// Clock converts cycle counts of a fixed-frequency clock domain into Ticks.
// The period is rounded to the nearest picosecond, so a 3.5GHz clock has a
// 286ps period (3.497GHz effective) — close enough for the cycle-approximate
// models in this repository.
type Clock struct {
	period Tick
}

// NewClock builds a clock for the given frequency in Hz. Frequencies above
// 1THz collapse to a 1ps period.
func NewClock(hz float64) Clock {
	p := Tick(float64(Second)/hz + 0.5)
	if p < 1 {
		p = 1
	}
	return Clock{period: p}
}

// Period reports one cycle as a Tick span.
func (c Clock) Period() Tick { return c.period }

// Cycles converts a cycle count to a Tick span.
func (c Clock) Cycles(n int64) Tick { return Tick(n) * c.period }

// CyclesF converts a fractional cycle count, rounding up so work never takes
// zero time.
func (c Clock) CyclesF(n float64) Tick {
	t := Tick(n*float64(c.period) + 0.999999)
	if t < 0 {
		t = 0
	}
	return t
}

// ToCycles converts a Tick span to whole elapsed cycles (rounded down).
func (c Clock) ToCycles(t Tick) int64 { return int64(t / c.period) }

// BusyModel enforces a service throughput: a shared resource (cache port,
// DRAM channel, link) can begin a new service only when the previous one
// finished. Claim returns the time service starts; the resource is then busy
// for dur.
type BusyModel struct {
	freeAt Tick
	busy   Tick // accumulated busy time, for utilization accounting
}

// Claim reserves the resource at the earliest of now or when it frees, for
// dur. It returns the service start time.
func (b *BusyModel) Claim(now Tick, dur Tick) Tick {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + dur
	b.busy += dur
	return start
}

// FreeAt reports when the resource next becomes free.
func (b *BusyModel) FreeAt() Tick { return b.freeAt }

// BusyTime reports accumulated busy time.
func (b *BusyModel) BusyTime() Tick { return b.busy }

// Reset clears the model.
func (b *BusyModel) Reset() { b.freeAt, b.busy = 0, 0 }
