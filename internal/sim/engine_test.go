package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 100 {
			e.Schedule(7, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if hits != 100 {
		t.Fatalf("hits = %d, want 100", hits)
	}
	if e.Now() != 7*99 {
		t.Fatalf("now = %d, want %d", e.Now(), 7*99)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine()
	ranAt := Tick(-1)
	e.Schedule(100, func() {
		e.At(50, func() { ranAt = e.Now() }) // in the past; clamps to 100
	})
	e.Run()
	if ranAt != 100 {
		t.Fatalf("past event ran at %d, want 100", ranAt)
	}
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay mishandled: ran=%v now=%d", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Tick
	for _, d := range []Tick{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want first two", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining events lost: %v", ran)
	}
}

func TestTickConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatal("Seconds broken")
	}
	if Millisecond.Millis() != 1.0 {
		t.Fatal("Millis broken")
	}
	if Microsecond.Micros() != 1.0 {
		t.Fatal("Micros broken")
	}
	if FromSeconds(0.5) != 500*Millisecond {
		t.Fatal("FromSeconds broken")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1e9) // 1GHz → 1000ps
	if c.Period() != 1000 {
		t.Fatalf("period = %d", c.Period())
	}
	if c.Cycles(5) != 5000 {
		t.Fatalf("cycles = %d", c.Cycles(5))
	}
	if c.ToCycles(5500) != 5 {
		t.Fatalf("tocycles = %d", c.ToCycles(5500))
	}
	if c.CyclesF(0.1) != 100 {
		t.Fatalf("cyclesf = %d", c.CyclesF(0.1))
	}
	if c.CyclesF(0) != 0 {
		t.Fatalf("cyclesf(0) = %d", c.CyclesF(0))
	}
	// 3.5GHz rounds to 286ps.
	if p := NewClock(3.5e9).Period(); p != 286 {
		t.Fatalf("3.5GHz period = %d, want 286", p)
	}
	// Stupid-fast clocks clamp to 1ps.
	if p := NewClock(1e15).Period(); p != 1 {
		t.Fatalf("fast clock period = %d", p)
	}
}

func TestBusyModelSerializes(t *testing.T) {
	var b BusyModel
	s1 := b.Claim(0, 100)
	s2 := b.Claim(0, 100)
	s3 := b.Claim(500, 100)
	if s1 != 0 || s2 != 100 || s3 != 500 {
		t.Fatalf("starts = %d,%d,%d", s1, s2, s3)
	}
	if b.BusyTime() != 300 {
		t.Fatalf("busy = %d", b.BusyTime())
	}
	if b.FreeAt() != 600 {
		t.Fatalf("freeAt = %d", b.FreeAt())
	}
}

// runawayLoop schedules a self-perpetuating event chain — the shape of a
// livelocked worklist benchmark.
func runawayLoop(e *Engine) {
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
}

func recoverBudgetError(t *testing.T, fn func()) *BudgetError {
	t.Helper()
	var be *BudgetError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("run under exceeded budget did not stop")
			}
			var ok bool
			if be, ok = r.(*BudgetError); !ok {
				t.Fatalf("panic value %T, want *BudgetError", r)
			}
		}()
		fn()
	}()
	return be
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxEvents: 100})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if !be.ExceededEvents() || be.Events != 100 || be.MaxEvents != 100 {
		t.Fatalf("budget error = %+v", be)
	}
	if !strings.Contains(be.Error(), "event budget exceeded") {
		t.Fatalf("message: %s", be.Error())
	}
	// The engine is still usable for post-mortem queries.
	if e.EventsRun() != 100 {
		t.Fatalf("events run = %d", e.EventsRun())
	}
}

// TestEngineEventBudgetCountsFromArming pins that SetBudget measures from
// the arming point, not from engine construction — the harness re-arms per
// retry attempt.
func TestEngineEventBudgetCountsFromArming(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Schedule(Tick(i), func() {})
	}
	e.Run()
	e.SetBudget(Budget{MaxEvents: 100})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if be.Events != 100 {
		t.Fatalf("budget counted pre-arming events: %+v", be)
	}
}

func TestEngineWallClockBudget(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{WallClock: 20 * time.Millisecond})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if be.ExceededEvents() {
		t.Fatalf("wrong budget dimension tripped: %+v", be)
	}
	if be.Elapsed < be.WallClock {
		t.Fatalf("elapsed %v under limit %v", be.Elapsed, be.WallClock)
	}
	if !strings.Contains(be.Error(), "wall-clock budget exceeded") {
		t.Fatalf("message: %s", be.Error())
	}
}

func TestEngineZeroBudgetUnlimited(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{})
	var hits int
	for i := 0; i < 1000; i++ {
		e.Schedule(Tick(i), func() { hits++ })
	}
	e.Run()
	if hits != 1000 {
		t.Fatalf("zero budget limited the run: %d", hits)
	}
}

// TestEngineHeapFIFOBoundaryOrdering pins the schedule-order tie-break
// across the FIFO/heap split: two events are scheduled for t=10 while now=0
// (both go to the heap); the first to run schedules a third at zero delay
// (FIFO). The heap-resident same-time event has the lower seq and must run
// before the FIFO one.
func TestEngineHeapFIFOBoundaryOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(10, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("boundary ordering wrong: %v", order)
	}
}

// TestEngineFIFOInsertionOrder pins that zero-delay events spawned by
// different same-time events interleave in schedule order.
func TestEngineFIFOInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Schedule(5, func() {
			order = append(order, i)
			e.Schedule(0, func() { order = append(order, 10+i) })
		})
	}
	e.Run()
	want := []int{0, 1, 2, 3, 10, 11, 12, 13}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRunUntilEqualTimestamps pins that RunUntil(t) drains events AT t,
// including zero-delay events they spawn, before stopping.
func TestRunUntilEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(5, func() {
		ran = append(ran, 1)
		e.Schedule(0, func() { ran = append(ran, 2) })
	})
	e.Schedule(5, func() { ran = append(ran, 3) })
	e.Schedule(6, func() { ran = append(ran, 4) })
	e.RunUntil(5)
	if len(ran) != 3 || ran[0] != 1 || ran[1] != 3 || ran[2] != 2 {
		t.Fatalf("ran = %v, want [1 3 2]", ran)
	}
	if e.Now() != 5 || e.Pending() != 1 {
		t.Fatalf("now=%d pending=%d", e.Now(), e.Pending())
	}
	e.Run()
	if len(ran) != 4 || ran[3] != 4 {
		t.Fatalf("later event lost: %v", ran)
	}
}

// TestEngineBudgetPanicMidFIFO arms a budget that trips while zero-delay
// FIFO events are queued; the engine must stay consistent and finish the
// remaining events in order once the budget is disarmed.
func TestEngineBudgetPanicMidFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(1, func() {
		for i := 0; i < 10; i++ {
			i := i
			e.Schedule(0, func() { order = append(order, i) })
		}
	})
	e.SetBudget(Budget{MaxEvents: 5}) // the spawner + 4 FIFO events
	be := recoverBudgetError(t, e.Run)
	if !be.ExceededEvents() {
		t.Fatalf("wrong budget dimension: %+v", be)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d FIFO events before tripping, want 4", len(order))
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
	e.SetBudget(Budget{})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("post-recovery order broken: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("events lost across budget trip: %v", order)
	}
}

// refScheduler is a deliberately naive reference implementation of the
// documented semantics — a flat slice popped by linear min-scan over
// (when, seq) — used to differentially test the 4-ary heap + FIFO engine.
type refScheduler struct {
	now  Tick
	seq  uint64
	evs  []event
	nRun int
}

func (r *refScheduler) at(t Tick, fn func()) {
	if t < r.now {
		t = r.now
	}
	r.seq++
	r.evs = append(r.evs, event{when: t, seq: r.seq, fn: fn})
}

func (r *refScheduler) run() {
	for len(r.evs) > 0 {
		min := 0
		for i := 1; i < len(r.evs); i++ {
			if r.evs[i].before(r.evs[min]) {
				min = i
			}
		}
		ev := r.evs[min]
		r.evs = append(r.evs[:min], r.evs[min+1:]...)
		r.now = ev.when
		r.nRun++
		ev.fn()
	}
}

// TestEngineMatchesReferenceOrder differentially fuzzes the engine against
// the naive reference on random schedules, including nested zero-delay and
// short-delay rescheduling — the shapes that cross the FIFO/heap boundary.
// Events are identified by their construction path, so the two runs are
// compared purely on execution order.
func TestEngineMatchesReferenceOrder(t *testing.T) {
	// spawn builds an event tree on an abstract scheduler: each node logs
	// its path label, and non-leaf nodes schedule a zero-delay child (FIFO
	// path) plus a short-delay child (heap path).
	var spawn func(sched func(Tick, func()), out *[]string, label string, d Tick, depth int) func()
	spawn = func(sched func(Tick, func()), out *[]string, label string, d Tick, depth int) func() {
		return func() {
			*out = append(*out, label)
			if depth > 0 {
				sched(0, spawn(sched, out, label+".z", 0, 0))
				sched(d%3, spawn(sched, out, label+".d", d, depth-1))
			}
		}
	}
	f := func(seed []uint16) bool {
		e := NewEngine()
		r := &refScheduler{}
		var got, want []string
		schedE := func(d Tick, fn func()) { e.Schedule(d, fn) }
		schedR := func(d Tick, fn func()) { r.at(r.now+d, fn) }
		for i, s := range seed {
			d := Tick(s % 50)
			label := fmt.Sprintf("r%d", i)
			e.Schedule(d, spawn(schedE, &got, label, d, int(s%3)))
			r.at(d, spawn(schedR, &want, label, d, int(s%3)))
		}
		e.Run()
		r.run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleStepZeroAlloc asserts the steady-state scheduling loop is
// allocation-free for both the heap path (positive delay) and the FIFO
// path (zero delay) — the tentpole property the benchmark CI gates.
func TestScheduleStepZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm capacity.
	for i := 0; i < 64; i++ {
		e.Schedule(Tick(i), fn)
	}
	e.Run()
	if a := testing.AllocsPerRun(1000, func() {
		e.Schedule(100, fn)
		e.Step()
	}); a != 0 {
		t.Fatalf("heap-path Schedule+Step allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		e.Schedule(0, fn)
		e.Step()
	}); a != 0 {
		t.Fatalf("FIFO-path Schedule+Step allocates %.1f/op, want 0", a)
	}
}

// Property: no matter the schedule order, events execute in nondecreasing
// time order and the engine ends at the max scheduled time.
func TestEngineTimeMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var last Tick = -1
		ok := true
		var max Tick
		for _, d := range delays {
			d := Tick(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BusyModel never double-books — total busy time equals the sum of
// requested durations and start times never overlap.
func TestBusyModelNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint8) bool {
		var b BusyModel
		var now Tick
		var sum Tick
		prevEnd := Tick(0)
		for _, r := range reqs {
			dur := Tick(r%50) + 1
			now += Tick(r % 7)
			start := b.Claim(now, dur)
			if start < prevEnd || start < now {
				return false
			}
			prevEnd = start + dur
			sum += dur
		}
		return b.BusyTime() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
