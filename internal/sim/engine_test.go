package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 100 {
			e.Schedule(7, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if hits != 100 {
		t.Fatalf("hits = %d, want 100", hits)
	}
	if e.Now() != 7*99 {
		t.Fatalf("now = %d, want %d", e.Now(), 7*99)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine()
	ranAt := Tick(-1)
	e.Schedule(100, func() {
		e.At(50, func() { ranAt = e.Now() }) // in the past; clamps to 100
	})
	e.Run()
	if ranAt != 100 {
		t.Fatalf("past event ran at %d, want 100", ranAt)
	}
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay mishandled: ran=%v now=%d", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Tick
	for _, d := range []Tick{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want first two", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("remaining events lost: %v", ran)
	}
}

func TestTickConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatal("Seconds broken")
	}
	if Millisecond.Millis() != 1.0 {
		t.Fatal("Millis broken")
	}
	if Microsecond.Micros() != 1.0 {
		t.Fatal("Micros broken")
	}
	if FromSeconds(0.5) != 500*Millisecond {
		t.Fatal("FromSeconds broken")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1e9) // 1GHz → 1000ps
	if c.Period() != 1000 {
		t.Fatalf("period = %d", c.Period())
	}
	if c.Cycles(5) != 5000 {
		t.Fatalf("cycles = %d", c.Cycles(5))
	}
	if c.ToCycles(5500) != 5 {
		t.Fatalf("tocycles = %d", c.ToCycles(5500))
	}
	if c.CyclesF(0.1) != 100 {
		t.Fatalf("cyclesf = %d", c.CyclesF(0.1))
	}
	if c.CyclesF(0) != 0 {
		t.Fatalf("cyclesf(0) = %d", c.CyclesF(0))
	}
	// 3.5GHz rounds to 286ps.
	if p := NewClock(3.5e9).Period(); p != 286 {
		t.Fatalf("3.5GHz period = %d, want 286", p)
	}
	// Stupid-fast clocks clamp to 1ps.
	if p := NewClock(1e15).Period(); p != 1 {
		t.Fatalf("fast clock period = %d", p)
	}
}

func TestBusyModelSerializes(t *testing.T) {
	var b BusyModel
	s1 := b.Claim(0, 100)
	s2 := b.Claim(0, 100)
	s3 := b.Claim(500, 100)
	if s1 != 0 || s2 != 100 || s3 != 500 {
		t.Fatalf("starts = %d,%d,%d", s1, s2, s3)
	}
	if b.BusyTime() != 300 {
		t.Fatalf("busy = %d", b.BusyTime())
	}
	if b.FreeAt() != 600 {
		t.Fatalf("freeAt = %d", b.FreeAt())
	}
}

// runawayLoop schedules a self-perpetuating event chain — the shape of a
// livelocked worklist benchmark.
func runawayLoop(e *Engine) {
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
}

func recoverBudgetError(t *testing.T, fn func()) *BudgetError {
	t.Helper()
	var be *BudgetError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("run under exceeded budget did not stop")
			}
			var ok bool
			if be, ok = r.(*BudgetError); !ok {
				t.Fatalf("panic value %T, want *BudgetError", r)
			}
		}()
		fn()
	}()
	return be
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxEvents: 100})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if !be.ExceededEvents() || be.Events != 100 || be.MaxEvents != 100 {
		t.Fatalf("budget error = %+v", be)
	}
	if !strings.Contains(be.Error(), "event budget exceeded") {
		t.Fatalf("message: %s", be.Error())
	}
	// The engine is still usable for post-mortem queries.
	if e.EventsRun() != 100 {
		t.Fatalf("events run = %d", e.EventsRun())
	}
}

// TestEngineEventBudgetCountsFromArming pins that SetBudget measures from
// the arming point, not from engine construction — the harness re-arms per
// retry attempt.
func TestEngineEventBudgetCountsFromArming(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Schedule(Tick(i), func() {})
	}
	e.Run()
	e.SetBudget(Budget{MaxEvents: 100})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if be.Events != 100 {
		t.Fatalf("budget counted pre-arming events: %+v", be)
	}
}

func TestEngineWallClockBudget(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{WallClock: 20 * time.Millisecond})
	runawayLoop(e)
	be := recoverBudgetError(t, e.Run)
	if be.ExceededEvents() {
		t.Fatalf("wrong budget dimension tripped: %+v", be)
	}
	if be.Elapsed < be.WallClock {
		t.Fatalf("elapsed %v under limit %v", be.Elapsed, be.WallClock)
	}
	if !strings.Contains(be.Error(), "wall-clock budget exceeded") {
		t.Fatalf("message: %s", be.Error())
	}
}

func TestEngineZeroBudgetUnlimited(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{})
	var hits int
	for i := 0; i < 1000; i++ {
		e.Schedule(Tick(i), func() { hits++ })
	}
	e.Run()
	if hits != 1000 {
		t.Fatalf("zero budget limited the run: %d", hits)
	}
}

// Property: no matter the schedule order, events execute in nondecreasing
// time order and the engine ends at the max scheduled time.
func TestEngineTimeMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var last Tick = -1
		ok := true
		var max Tick
		for _, d := range delays {
			d := Tick(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BusyModel never double-books — total busy time equals the sum of
// requested durations and start times never overlap.
func TestBusyModelNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint8) bool {
		var b BusyModel
		var now Tick
		var sum Tick
		prevEnd := Tick(0)
		for _, r := range reqs {
			dur := Tick(r%50) + 1
			now += Tick(r % 7)
			start := b.Claim(now, dur)
			if start < prevEnd || start < now {
				return false
			}
			prevEnd = start + dur
			sum += dur
		}
		return b.BusyTime() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
