// Package sim provides the discrete-event simulation kernel used by every
// timing model in this repository. Time is measured in integer picoseconds
// (Tick), which is fine enough to mix the 3.5GHz CPU, 700MHz GPU, and memory
// clock domains without accumulating rounding drift.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Tick is a point in (or span of) simulated time, in picoseconds.
type Tick int64

// Convenient durations.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// Seconds converts a Tick span to floating-point seconds.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a Tick span to floating-point milliseconds.
func (t Tick) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a Tick span to floating-point microseconds.
func (t Tick) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds builds a Tick from floating-point seconds.
func FromSeconds(s float64) Tick { return Tick(s * float64(Second)) }

type event struct {
	when Tick
	seq  uint64 // tie-break so same-time events run in schedule order
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Budget bounds one simulation run. A zero field means that dimension is
// unlimited. Budgets are how the fault-tolerant harness keeps a runaway or
// hung run (livelocked worklist, pathological input) from eating the whole
// sweep.
type Budget struct {
	// MaxEvents caps how many events may execute after SetBudget.
	MaxEvents uint64
	// WallClock caps real elapsed time from the SetBudget call.
	WallClock time.Duration
}

// BudgetError reports a run terminated for exceeding its Budget. The engine
// delivers it as a typed panic — the only way to unwind arbitrarily nested
// benchmark code that has no error returns — and harness.Run recovers it
// into a structured run error; it never escapes to crash the process when
// runs go through the harness.
type BudgetError struct {
	Events    uint64 // events executed when the budget tripped
	MaxEvents uint64 // configured event cap (0 = unlimited)
	Elapsed   time.Duration
	WallClock time.Duration // configured wall-clock cap (0 = unlimited)
	SimTime   Tick
}

// Error describes which budget tripped and where the run was.
func (e *BudgetError) Error() string {
	if e.MaxEvents > 0 && e.Events >= e.MaxEvents {
		return fmt.Sprintf("sim: event budget exceeded (%d events, limit %d) at sim time %.3f ms",
			e.Events, e.MaxEvents, e.SimTime.Millis())
	}
	return fmt.Sprintf("sim: wall-clock budget exceeded (%v, limit %v) after %d events at sim time %.3f ms",
		e.Elapsed.Round(time.Millisecond), e.WallClock, e.Events, e.SimTime.Millis())
}

// ExceededEvents reports whether the event cap (rather than the wall clock)
// is what tripped.
func (e *BudgetError) ExceededEvents() bool {
	return e.MaxEvents > 0 && e.Events >= e.MaxEvents
}

// wallCheckMask throttles time.Now calls: the wall clock is polled once
// every 4096 events, cheap against event dispatch cost.
const wallCheckMask = 1<<12 - 1

// Engine is a single-threaded discrete-event scheduler. Events scheduled for
// the same Tick run in the order they were scheduled.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
	nRun   uint64

	budget     Budget
	budgetBase uint64 // nRun when the budget was armed
	wallStart  time.Time
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// EventsRun reports how many events have executed, for test and perf checks.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay picoseconds of simulated time. A negative
// delay is treated as zero (run at the current time, after already-queued
// same-time events).
func (e *Engine) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Times in the past are clamped to now.
func (e *Engine) At(t Tick, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.pushEvent(event{when: t, seq: e.seq, fn: fn})
}

// SetBudget arms (or, with the zero Budget, disarms) run budgets. The wall
// clock starts counting from this call; the event count from the current
// EventsRun. When a budget is exceeded, Step panics with a *BudgetError —
// see that type for why a typed panic is the delivery mechanism.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.budgetBase = e.nRun
	if b.WallClock > 0 {
		e.wallStart = time.Now()
	}
}

// checkBudget panics with a *BudgetError if a budget is exceeded.
func (e *Engine) checkBudget() {
	used := e.nRun - e.budgetBase
	if e.budget.MaxEvents > 0 && used >= e.budget.MaxEvents {
		panic(&BudgetError{Events: used, MaxEvents: e.budget.MaxEvents, SimTime: e.now})
	}
	if e.budget.WallClock > 0 && used&wallCheckMask == 0 {
		if elapsed := time.Since(e.wallStart); elapsed > e.budget.WallClock {
			panic(&BudgetError{Events: used, Elapsed: elapsed, WallClock: e.budget.WallClock, SimTime: e.now})
		}
	}
}

// Step executes the next event, if any, advancing time to it. It reports
// whether an event ran. With a Budget armed, an over-budget Step panics
// with a *BudgetError instead of running the event.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	if e.budget != (Budget{}) {
		e.checkBudget()
	}
	ev := e.events.popEvent()
	e.now = ev.when
	e.nRun++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances time to t.
func (e *Engine) RunUntil(t Tick) {
	for len(e.events) > 0 && e.events.peek().when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
