// Package sim provides the discrete-event simulation kernel used by every
// timing model in this repository. Time is measured in integer picoseconds
// (Tick), which is fine enough to mix the 3.5GHz CPU, 700MHz GPU, and memory
// clock domains without accumulating rounding drift.
package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Tick is a point in (or span of) simulated time, in picoseconds.
type Tick int64

// Convenient durations.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// Seconds converts a Tick span to floating-point seconds.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a Tick span to floating-point milliseconds.
func (t Tick) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a Tick span to floating-point microseconds.
func (t Tick) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds builds a Tick from floating-point seconds.
func FromSeconds(s float64) Tick { return Tick(s * float64(Second)) }

type event struct {
	when Tick
	seq  uint64 // tie-break so same-time events run in schedule order
	fn   func()
}

// before orders events by (when, seq) — time first, schedule order within a
// time.
func (e event) before(o event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.seq < o.seq
}

// eventHeap is a concrete 4-ary min-heap over event values. It replaces
// container/heap to eliminate the interface boxing allocation that
// Push(x any)/Pop() any forced on every scheduled event: events move
// by value and the backing array is reused across the run, so steady-state
// scheduling is allocation-free. The 4-ary shape halves the tree depth of a
// binary heap, trading slightly more comparisons per level for fewer
// cache-missing levels — the usual win for small fixed-size elements.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int     { return len(h.a) }
func (h *eventHeap) peek() *event { return &h.a[0] }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.a[i].before(h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // drop the fn reference so the closure can be collected
	h.a = h.a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.a)
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.a[c].before(h.a[min]) {
				min = c
			}
		}
		if !h.a[min].before(h.a[i]) {
			return
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}

// eventFIFO is the same-tick fast path: events scheduled for the current
// simulated time (zero-delay self-scheduling, the dominant pattern in warp
// replay and DMA pacing) bypass the heap entirely and run in insertion
// order from a reused ring. Correctness of the split relies on an
// invariant: anything in the FIFO was scheduled while now had its current
// value, so it carries a larger seq than any same-time event still in the
// heap (those were pushed when now was strictly smaller).
type eventFIFO struct {
	a    []func()
	head int
}

func (f *eventFIFO) len() int { return len(f.a) - f.head }

func (f *eventFIFO) push(fn func()) { f.a = append(f.a, fn) }

func (f *eventFIFO) pop() func() {
	fn := f.a[f.head]
	f.a[f.head] = nil // release the closure
	f.head++
	if f.head == len(f.a) {
		f.a = f.a[:0] // drained: rewind, keeping capacity
		f.head = 0
	}
	return fn
}

// Budget bounds one simulation run. A zero field means that dimension is
// unlimited. Budgets are how the fault-tolerant harness keeps a runaway or
// hung run (livelocked worklist, pathological input) from eating the whole
// sweep.
type Budget struct {
	// MaxEvents caps how many events may execute after SetBudget.
	MaxEvents uint64
	// WallClock caps real elapsed time from the SetBudget call.
	WallClock time.Duration
	// Ctx, when non-nil, is polled at the engine's periodic check interval
	// (every pulseMask+1 events): once it is canceled, the next check
	// panics with an *InterruptError of ReasonCanceled. This is how sweep
	// shutdown reaches arbitrarily nested benchmark code that has no error
	// returns, exactly like the event/wall-clock budgets.
	Ctx context.Context
}

// BudgetError reports a run terminated for exceeding its Budget. The engine
// delivers it as a typed panic — the only way to unwind arbitrarily nested
// benchmark code that has no error returns — and harness.Run recovers it
// into a structured run error; it never escapes to crash the process when
// runs go through the harness.
type BudgetError struct {
	Events    uint64 // events executed when the budget tripped
	MaxEvents uint64 // configured event cap (0 = unlimited)
	Elapsed   time.Duration
	WallClock time.Duration // configured wall-clock cap (0 = unlimited)
	SimTime   Tick
}

// Error describes which budget tripped and where the run was.
func (e *BudgetError) Error() string {
	if e.MaxEvents > 0 && e.Events >= e.MaxEvents {
		return fmt.Sprintf("sim: event budget exceeded (%d events, limit %d) at sim time %.3f ms",
			e.Events, e.MaxEvents, e.SimTime.Millis())
	}
	return fmt.Sprintf("sim: wall-clock budget exceeded (%v, limit %v) after %d events at sim time %.3f ms",
		e.Elapsed.Round(time.Millisecond), e.WallClock, e.Events, e.SimTime.Millis())
}

// ExceededEvents reports whether the event cap (rather than the wall clock)
// is what tripped.
func (e *BudgetError) ExceededEvents() bool {
	return e.MaxEvents > 0 && e.Events >= e.MaxEvents
}

// InterruptReason says why a run was interrupted from outside the
// simulation loop.
type InterruptReason int

const (
	// ReasonCanceled is a context cancellation (operator shutdown, sweep
	// abort).
	ReasonCanceled InterruptReason = iota
	// ReasonStalled is a stall-watchdog kill: the engine stopped advancing
	// simulated time past its deadline.
	ReasonStalled
)

// String names the interrupt reason.
func (r InterruptReason) String() string {
	if r == ReasonStalled {
		return "stalled"
	}
	return "canceled"
}

// InterruptError reports a run terminated by an external request — a
// canceled context or a stall-watchdog kill — rather than by its own
// budget. Like BudgetError it is delivered as a typed panic (the only way
// to unwind nested benchmark code with no error returns) and recovered by
// harness.Run into a structured run error.
type InterruptError struct {
	Reason  InterruptReason
	Msg     string // what requested the interrupt
	Events  uint64 // events executed when the interrupt landed
	SimTime Tick
}

// Error describes the interrupt and where the run was.
func (e *InterruptError) Error() string {
	return fmt.Sprintf("sim: run %s (%s) after %d events at sim time %.3f ms",
		e.Reason, e.Msg, e.Events, e.SimTime.Millis())
}

// intrRequest is a pending Interrupt call, stored atomically so any
// goroutine (signal handler, stall watchdog) can post one.
type intrRequest struct {
	reason InterruptReason
	msg    string
}

// wallCheckMask throttles time.Now calls: the wall clock is polled once
// every 4096 events, cheap against event dispatch cost.
const wallCheckMask = 1<<12 - 1

// pulseMask throttles the engine's periodic liveness work — heartbeat
// publication and interrupt/cancellation checks — to once every 4096
// events, the same cadence as the wall-clock poll.
const pulseMask = 1<<12 - 1

// Engine is a single-threaded discrete-event scheduler. Events scheduled for
// the same Tick run in the order they were scheduled.
//
// Internally the pending set is split in two: a FIFO holding events
// scheduled for the current time (see eventFIFO) and a 4-ary min-heap for
// everything later. Time only advances off a heap pop, which can happen
// only when the FIFO is empty — so every FIFO entry runs at exactly the
// now it was scheduled at.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
	fifo   eventFIFO
	nRun   uint64

	budget     Budget
	budgetBase uint64 // nRun when the budget was armed
	wallStart  time.Time

	// Heartbeat: (events, sim time) published every pulseMask+1 events so
	// watchdog goroutines can observe progress without racing the
	// single-threaded simulation loop.
	hbEvents atomic.Uint64
	hbNow    atomic.Int64
	// intr holds a pending external interrupt request; the loop notices it
	// at the next pulse and panics with an *InterruptError.
	intr atomic.Pointer[intrRequest]

	// domains counts events scheduled through AtD per component domain —
	// accounting only, read back via ScheduledByDomain. Untagged At/Schedule
	// calls are not counted anywhere.
	domains [NumDomains]uint64
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// EventsRun reports how many events have executed, for test and perf checks.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return e.events.len() + e.fifo.len() }

// Schedule runs fn after delay picoseconds of simulated time. A negative
// delay is treated as zero (run at the current time, after already-queued
// same-time events).
func (e *Engine) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Times in the past are clamped to now.
func (e *Engine) At(t Tick, fn func()) {
	if t <= e.now {
		// Same-tick fast path: runs at now, after all queued same-time
		// events, in insertion order — no heap traffic.
		e.fifo.push(fn)
		return
	}
	e.seq++
	e.events.push(event{when: t, seq: e.seq, fn: fn})
}

// AtD is At with a component-domain tag: the event is counted against d in
// the per-domain accounting and then scheduled exactly as At would. The tag
// changes no ordering — (when, seq) stays the single total order — it exists
// so runs can report how the event population partitions across domains.
func (e *Engine) AtD(d Domain, t Tick, fn func()) {
	e.domains[d]++
	e.At(t, fn)
}

// ScheduleD is Schedule with a component-domain tag; see AtD.
func (e *Engine) ScheduleD(d Domain, delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.AtD(d, e.now+delay, fn)
}

// ScheduledByDomain reports how many events were scheduled through each
// domain-tagged entry point. Call from the simulation goroutine.
func (e *Engine) ScheduledByDomain() [NumDomains]uint64 { return e.domains }

// SetBudget arms (or, with the zero Budget, disarms) run budgets. The wall
// clock starts counting from this call; the event count from the current
// EventsRun. When a budget is exceeded, Step panics with a *BudgetError —
// see that type for why a typed panic is the delivery mechanism.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.budgetBase = e.nRun
	if b.WallClock > 0 {
		e.wallStart = time.Now()
	}
}

// Interrupt requests that the run be killed: the next periodic check in
// Step panics with an *InterruptError. Safe to call from any goroutine
// (it is how the stall watchdog and hard-abort paths reach a running
// engine); the first request wins and later ones are ignored. The engine
// notices within pulseMask+1 events — an engine that is not stepping at
// all (wedged inside host code between events) cannot be interrupted,
// just as it cannot notice a wall-clock budget.
func (e *Engine) Interrupt(reason InterruptReason, msg string) {
	e.intr.CompareAndSwap(nil, &intrRequest{reason: reason, msg: msg})
}

// Progress reports the engine's last published heartbeat: how many events
// have run and the simulated time reached. It is safe to call from other
// goroutines and may lag the live values by up to pulseMask events — it
// exists for stall watchdogs, not for exact accounting (use EventsRun/Now
// from the simulation goroutine for that).
func (e *Engine) Progress() (events uint64, now Tick) {
	return e.hbEvents.Load(), Tick(e.hbNow.Load())
}

// pulse is the periodic liveness check run every pulseMask+1 events: it
// publishes the heartbeat and panics with an *InterruptError when an
// external interrupt or context cancellation is pending.
func (e *Engine) pulse() {
	e.hbEvents.Store(e.nRun)
	e.hbNow.Store(int64(e.now))
	if req := e.intr.Load(); req != nil {
		panic(&InterruptError{Reason: req.reason, Msg: req.msg, Events: e.nRun, SimTime: e.now})
	}
	if ctx := e.budget.Ctx; ctx != nil && ctx.Err() != nil {
		panic(&InterruptError{Reason: ReasonCanceled, Msg: ctx.Err().Error(), Events: e.nRun, SimTime: e.now})
	}
}

// checkBudget panics with a *BudgetError if a budget is exceeded.
func (e *Engine) checkBudget() {
	used := e.nRun - e.budgetBase
	if e.budget.MaxEvents > 0 && used >= e.budget.MaxEvents {
		panic(&BudgetError{Events: used, MaxEvents: e.budget.MaxEvents, SimTime: e.now})
	}
	if e.budget.WallClock > 0 && used&wallCheckMask == 0 {
		if elapsed := time.Since(e.wallStart); elapsed > e.budget.WallClock {
			panic(&BudgetError{Events: used, Elapsed: elapsed, WallClock: e.budget.WallClock, SimTime: e.now})
		}
	}
}

// Step executes the next event, if any, advancing time to it. It reports
// whether an event ran. With a Budget armed, an over-budget Step panics
// with a *BudgetError instead of running the event.
func (e *Engine) Step() bool {
	fifoN := e.fifo.len()
	if fifoN == 0 && e.events.len() == 0 {
		return false
	}
	if e.nRun&pulseMask == 0 {
		e.pulse()
	}
	if e.budget != (Budget{}) {
		e.checkBudget()
	}
	// Heap events at the current time predate every FIFO entry (they were
	// pushed while now was strictly smaller, so they carry lower seqs) and
	// must run first to preserve schedule order.
	if fifoN == 0 || (e.events.len() > 0 && e.events.peek().when == e.now) {
		ev := e.events.pop()
		e.now = ev.when
		e.nRun++
		ev.fn()
		return true
	}
	fn := e.fifo.pop()
	e.nRun++
	fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances time to t.
func (e *Engine) RunUntil(t Tick) {
	for {
		// FIFO entries are timestamped now; heap entries at their own when.
		if e.fifo.len() > 0 {
			if e.now > t {
				break
			}
		} else if e.events.len() == 0 || e.events.peek().when > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
