// Package sim provides the discrete-event simulation kernel used by every
// timing model in this repository. Time is measured in integer picoseconds
// (Tick), which is fine enough to mix the 3.5GHz CPU, 700MHz GPU, and memory
// clock domains without accumulating rounding drift.
package sim

import "container/heap"

// Tick is a point in (or span of) simulated time, in picoseconds.
type Tick int64

// Convenient durations.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// Seconds converts a Tick span to floating-point seconds.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a Tick span to floating-point milliseconds.
func (t Tick) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts a Tick span to floating-point microseconds.
func (t Tick) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds builds a Tick from floating-point seconds.
func FromSeconds(s float64) Tick { return Tick(s * float64(Second)) }

type event struct {
	when Tick
	seq  uint64 // tie-break so same-time events run in schedule order
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a single-threaded discrete-event scheduler. Events scheduled for
// the same Tick run in the order they were scheduled.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
	nRun   uint64
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// EventsRun reports how many events have executed, for test and perf checks.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay picoseconds of simulated time. A negative
// delay is treated as zero (run at the current time, after already-queued
// same-time events).
func (e *Engine) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Times in the past are clamped to now.
func (e *Engine) At(t Tick, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.pushEvent(event{when: t, seq: e.seq, fn: fn})
}

// Step executes the next event, if any, advancing time to it. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.popEvent()
	e.now = ev.when
	e.nRun++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances time to t.
func (e *Engine) RunUntil(t Tick) {
	for len(e.events) > 0 && e.events.peek().when <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
