package workload

import (
	"testing"
	"testing/quick"
)

func TestSymmetrizeDoublesEdges(t *testing.T) {
	g := RMATGraph(1024, 8, 5)
	sg := Symmetrize(g)
	if sg.M() != 2*g.M() {
		t.Fatalf("symmetrized edges = %d, want %d", sg.M(), 2*g.M())
	}
}

// Property: after Symmetrize, every edge (u,v) has a matching (v,u).
func TestSymmetrizeIsSymmetricProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 16 + int(nRaw)%128
		sg := Symmetrize(UniformGraph(n, 4, seed))
		// Count directed edges per pair in both directions.
		type pair struct{ u, v int32 }
		cnt := map[pair]int{}
		for u := int32(0); u < int32(sg.N); u++ {
			for e := sg.RowPtr[u]; e < sg.RowPtr[u+1]; e++ {
				cnt[pair{u, sg.ColIdx[e]}]++
			}
		}
		for p, c := range cnt {
			if cnt[pair{p.v, p.u}] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
