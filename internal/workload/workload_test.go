package workload

import (
	"testing"
	"testing/quick"
)

func TestUniformGraphShape(t *testing.T) {
	g := UniformGraph(1000, 8, 1)
	if g.N != 1000 || len(g.RowPtr) != 1001 {
		t.Fatal("CSR shape wrong")
	}
	if g.M() < 4000 || g.M() > 13000 {
		t.Fatalf("edges = %d, want ~8000", g.M())
	}
	if int(g.RowPtr[1000]) != g.M() {
		t.Fatal("rowptr end wrong")
	}
	for _, c := range g.ColIdx {
		if c < 0 || int(c) >= g.N {
			t.Fatalf("edge target out of range: %d", c)
		}
	}
}

func TestGraphDeterminism(t *testing.T) {
	a := UniformGraph(500, 6, 42)
	b := UniformGraph(500, 6, 42)
	if a.M() != b.M() {
		t.Fatal("not deterministic")
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("edges differ")
		}
	}
}

func TestRMATGraphSkew(t *testing.T) {
	g := RMATGraph(1<<12, 8, 7)
	if g.M() != 8<<12 {
		t.Fatalf("edges = %d", g.M())
	}
	// Power-law-ish: the max degree should far exceed the average.
	maxDeg := int32(0)
	for v := 0; v < g.N; v++ {
		d := g.RowPtr[v+1] - g.RowPtr[v]
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 40 {
		t.Fatalf("RMAT not skewed: max degree %d", maxDeg)
	}
	// CSR integrity under quick-check-style sweep.
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			t.Fatal("rowptr not monotone")
		}
	}
}

func TestPointsMatrixGridRanges(t *testing.T) {
	for _, v := range Points(100, 4, 3) {
		if v < 0 || v >= 1 {
			t.Fatalf("point out of range: %v", v)
		}
	}
	for _, v := range Matrix(10, 10, 3) {
		if v < -1 || v >= 1 {
			t.Fatalf("matrix out of range: %v", v)
		}
	}
	g := Grid(32, 32, 3)
	if len(g) != 1024 {
		t.Fatal("grid size wrong")
	}
	for _, v := range Sequence(100, 3) {
		if v < 0 || v > 3 {
			t.Fatalf("sequence code out of range: %d", v)
		}
	}
}

// Property: CSR arrays are always mutually consistent.
func TestCSRConsistencyProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 16 + int(nRaw)%512
		d := 1 + int(dRaw)%16
		g := UniformGraph(n, d, seed)
		if len(g.RowPtr) != n+1 || g.RowPtr[0] != 0 {
			return false
		}
		if int(g.RowPtr[n]) != len(g.ColIdx) || len(g.ColIdx) != len(g.EdgeWeigh) {
			return false
		}
		for v := 0; v < n; v++ {
			if g.RowPtr[v] > g.RowPtr[v+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
