// Package workload provides deterministic synthetic input generators for
// the benchmark suites: uniform and RMAT-like graphs in CSR form, dense
// matrices, n-dimensional point sets, and 2-D grids. All generators are
// seeded so every run of an experiment sees identical inputs.
package workload

import "math/rand"

// RNG returns a deterministic source for the given seed.
func RNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Graph is a directed graph in CSR form.
type Graph struct {
	N         int     // vertices
	RowPtr    []int32 // len N+1
	ColIdx    []int32 // len M
	EdgeWeigh []float32
}

// M reports the edge count.
func (g *Graph) M() int { return len(g.ColIdx) }

// UniformGraph generates a graph with n vertices and roughly degree edges
// per vertex, endpoints uniform — the regular end of the graph spectrum.
func UniformGraph(n, degree int, seed int64) *Graph {
	r := RNG(seed)
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		d := degree/2 + r.Intn(degree+1)
		for e := 0; e < d; e++ {
			g.ColIdx = append(g.ColIdx, int32(r.Intn(n)))
			g.EdgeWeigh = append(g.EdgeWeigh, 1+float32(r.Intn(63)))
		}
		g.RowPtr[v+1] = int32(len(g.ColIdx))
	}
	return g
}

// RMATGraph generates a skewed, power-law-ish graph (Lonestar/Pannotia
// style irregularity): high-degree hubs plus a long tail.
func RMATGraph(n, avgDegree int, seed int64) *Graph {
	r := RNG(seed)
	m := n * avgDegree
	// Kronecker-style edge placement with the classic (0.57,0.19,0.19,0.05)
	// quadrant probabilities.
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, m)
	levels := 0
	for 1<<levels < n {
		levels++
	}
	for i := 0; i < m; i++ {
		var u, v int
		for l := 0; l < levels; l++ {
			p := r.Float64()
			switch {
			case p < 0.57:
				// top-left
			case p < 0.76:
				v |= 1 << l
			case p < 0.95:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n {
			u %= n
		}
		if v >= n {
			v %= n
		}
		edges = append(edges, edge{int32(u), int32(v)})
	}
	// Bucket into CSR.
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
	}
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + deg[v]
	}
	g.ColIdx = make([]int32, m)
	g.EdgeWeigh = make([]float32, m)
	cursor := make([]int32, n)
	copy(cursor, g.RowPtr[:n])
	for _, e := range edges {
		g.ColIdx[cursor[e.u]] = e.v
		g.EdgeWeigh[cursor[e.u]] = 1 + float32(e.v%63)
		cursor[e.u]++
	}
	return g
}

// Symmetrize returns the undirected closure of g: every edge appears in
// both directions (duplicates allowed). Coloring/MIS-style algorithms need
// symmetric adjacency to be meaningful.
func Symmetrize(g *Graph) *Graph {
	deg := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			deg[v]++
			deg[g.ColIdx[e]]++
		}
	}
	out := &Graph{N: g.N, RowPtr: make([]int32, g.N+1)}
	for v := 0; v < g.N; v++ {
		out.RowPtr[v+1] = out.RowPtr[v] + deg[v]
	}
	m := int(out.RowPtr[g.N])
	out.ColIdx = make([]int32, m)
	out.EdgeWeigh = make([]float32, m)
	cursor := make([]int32, g.N)
	copy(cursor, out.RowPtr[:g.N])
	add := func(u, v int32, w float32) {
		out.ColIdx[cursor[u]] = v
		out.EdgeWeigh[cursor[u]] = w
		cursor[u]++
	}
	for v := int32(0); v < int32(g.N); v++ {
		for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
			add(v, g.ColIdx[e], g.EdgeWeigh[e])
			add(g.ColIdx[e], v, g.EdgeWeigh[e])
		}
	}
	return out
}

// Points generates n points of dim float32 features in [0, 1).
func Points(n, dim int, seed int64) []float32 {
	r := RNG(seed)
	out := make([]float32, n*dim)
	for i := range out {
		out[i] = r.Float32()
	}
	return out
}

// Matrix generates rows x cols float32 values in [-1, 1).
func Matrix(rows, cols int, seed int64) []float32 {
	r := RNG(seed)
	out := make([]float32, rows*cols)
	for i := range out {
		out[i] = 2*r.Float32() - 1
	}
	return out
}

// Grid generates a rows x cols field with smooth spatial variation, as a
// stand-in for the image/temperature inputs of hotspot, srad, and stencil.
func Grid(rows, cols int, seed int64) []float32 {
	r := RNG(seed)
	out := make([]float32, rows*cols)
	// Low-frequency base + noise.
	fx := 1 + r.Intn(5)
	fy := 1 + r.Intn(5)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			base := float32((x*fx+y*fy)%97) / 97
			out[y*cols+x] = base + 0.1*r.Float32()
		}
	}
	return out
}

// Sequence generates a random ACGT string as int32 codes (mummer-style).
func Sequence(n int, seed int64) []int32 {
	r := RNG(seed)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Intn(4))
	}
	return out
}
