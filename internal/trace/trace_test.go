package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Span(stats.CPU, "", "cat", "s", 0, 10)
	r.Activity(stats.GPU, "cat", "a", 0, 10)
	r.Instant(stats.Copy, "", "cat", "i", 5)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Tail(4) != nil {
		t.Fatal("nil recorder retained state")
	}
	tl := r.ActivityTimeline()
	if tl.Active(stats.CPU) != 0 {
		t.Fatal("nil recorder produced activity")
	}
}

func TestSpanIgnoresEmptyIntervals(t *testing.T) {
	r := New()
	r.Span(stats.CPU, "", "c", "zero", 5, 5)
	r.Span(stats.CPU, "", "c", "inverted", 9, 4)
	r.Activity(stats.CPU, "c", "zero", 7, 7)
	if r.Len() != 0 {
		t.Fatalf("empty intervals recorded: %d events", r.Len())
	}
}

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Instant(stats.CPU, "", "c", string(rune('a'+i)), sim.Tick(i))
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	if r.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", r.Dropped())
	}
	evs := r.Events()
	got := make([]string, len(evs))
	for i, e := range evs {
		got[i] = e.Name
	}
	if strings.Join(got, "") != "efg" {
		t.Fatalf("ring tail = %v, want [e f g]", got)
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].Name != "f" || tail[1].Name != "g" {
		t.Fatalf("Tail(2) = %v", tail)
	}
	if seq := evs[0].Seq; seq != 5 {
		t.Fatalf("oldest retained seq = %d, want 5", seq)
	}
}

func TestActivityTimelineMergesLikeStats(t *testing.T) {
	r := New()
	want := stats.NewTimeline()
	add := func(c stats.Component, s, e sim.Tick) {
		r.Activity(c, "busy", "x", s, e)
		want.Add(c, s, e)
	}
	// Overlapping, adjacent, nested, and disjoint intervals on two
	// components; the rebuilt timeline must merge identically.
	add(stats.CPU, 0, 100)
	add(stats.CPU, 50, 150)  // overlap
	add(stats.CPU, 150, 200) // adjacent
	add(stats.CPU, 160, 170) // nested
	add(stats.CPU, 500, 600) // disjoint
	add(stats.GPU, 10, 20)
	got := r.ActivityTimeline()
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		if got.Active(c) != want.Active(c) {
			t.Fatalf("%s: trace-derived busy %d != timeline busy %d", c, got.Active(c), want.Active(c))
		}
	}
	tot := r.ActivityTotals()
	if tot[stats.CPU] != 300 || tot[stats.GPU] != 10 || tot[stats.Copy] != 0 {
		t.Fatalf("ActivityTotals = %v", tot)
	}
}

func TestExportValidatesAndRoundTrips(t *testing.T) {
	r := New()
	r.Activity(stats.CPU, "busy", "cpu task", 1_000_000, 2_000_000)
	r.Span(stats.Copy, "PCIe link", "dma", "H2D", 1_500_000, 3_000_000, Arg{"bytes", 4096})
	r.Instant(stats.GPU, "VM handler", "fault", "gpu page fault", 2_500_000)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunTrace{{Name: "run-a", Rec: r}}); err != nil {
		t.Fatal(err)
	}
	st, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if st.Events != 3 || st.Spans != 2 || st.Instants != 1 || st.Processes != 1 {
		t.Fatalf("file stats = %+v", st)
	}
	// Exact picosecond values must survive in args.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "H2D" && e.Ph == "X" {
			found = true
			if e.Args["start_ps"].(float64) != 1_500_000 || e.Args["dur_ps"].(float64) != 1_500_000 {
				t.Fatalf("H2D args = %v", e.Args)
			}
			if e.Args["bytes"].(float64) != 4096 {
				t.Fatalf("H2D custom arg lost: %v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("H2D span missing from export")
	}
}

func TestExportMultiRunPIDs(t *testing.T) {
	a, b := New(), New()
	a.Activity(stats.CPU, "busy", "x", 0, 10)
	b.Activity(stats.GPU, "busy", "y", 5, 15)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunTrace{{Name: "a", Rec: a}, {Name: "b", Rec: b}}); err != nil {
		t.Fatal(err)
	}
	st, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Processes != 2 || st.Spans != 2 {
		t.Fatalf("file stats = %+v", st)
	}
}

func TestValidateRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [}`,
		"no array":      `{"displayTimeUnit": "ns"}`,
		"unnamed":       `{"traceEvents": [{"ph": "X", "ts": 1, "pid": 1}]}`,
		"bad phase":     `{"traceEvents": [{"name": "e", "ph": "Q", "ts": 1, "pid": 1}]}`,
		"no pid":        `{"traceEvents": [{"name": "e", "ph": "X", "ts": 1}]}`,
		"negative ts":   `{"traceEvents": [{"name": "e", "ph": "X", "ts": -1, "pid": 1}]}`,
		"negative dur":  `{"traceEvents": [{"name": "e", "ph": "X", "ts": 1, "dur": -2, "pid": 1}]}`,
		"non-monotonic": `{"traceEvents": [{"name": "a", "ph": "i", "ts": 5, "pid": 1}, {"name": "b", "ph": "i", "ts": 4, "pid": 1}]}`,
	}
	for name, doc := range cases {
		if _, err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	// Metadata events are exempt from ts checks.
	ok := `{"traceEvents": [{"name": "a", "ph": "i", "ts": 5, "pid": 1}, {"name": "process_name", "ph": "M", "pid": 1}]}`
	if _, err := Validate([]byte(ok)); err != nil {
		t.Errorf("metadata after body rejected: %v", err)
	}
}

func TestFlameTextSmoke(t *testing.T) {
	r := NewRing(2)
	r.Activity(stats.CPU, "busy", "task", 0, sim.Millisecond)
	r.Span(stats.GPU, "SM0", "cta", "k0", 0, 2*sim.Millisecond)
	r.Instant(stats.GPU, "SM0", "fault", "pf", 10)
	out := FlameText([]RunTrace{{Name: "smoke", Rec: r}})
	for _, want := range []string{"=== trace smoke", "dropped by ring", "busy", "instants:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame output missing %q:\n%s", want, out)
		}
	}
}
