package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/stats"
)

// RunTrace names one run's recorder for export. A multi-run export (a
// sweep, or hetsim's comma-separated bench list) renders each run as its
// own Perfetto process, components and model tracks as its threads.
type RunTrace struct {
	Name string
	Rec  *Recorder
}

// chromeEvent is one entry of the Chrome trace-event / Perfetto JSON
// format (https://ui.perfetto.dev opens these files directly). Timestamps
// and durations are microseconds; simulated picoseconds map to fractional
// microseconds exactly (1 ps = 1e-6 us, both integers scaled), and the
// exact tick values ride along in args so tooling can reconstruct totals
// to the cycle without floating-point rounding.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level trace file object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// psToUs converts picoseconds to the format's microsecond unit.
func psToUs(ps int64) float64 { return float64(ps) / 1e6 }

// trackIDs assigns stable thread IDs for one run: the three components
// first (CPU=1, GPU=2, Copy=3), then every other track in first-emission
// order — deterministic because emission order is.
func trackIDs(evs []Event) (map[string]int, []string) {
	ids := map[string]int{}
	var names []string
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		ids[c.String()] = len(names) + 1
		names = append(names, c.String())
	}
	for _, e := range evs {
		tr := e.Track
		if tr == "" {
			tr = e.Comp.String()
		}
		if _, ok := ids[tr]; !ok {
			ids[tr] = len(names) + 1
			names = append(names, tr)
		}
	}
	return ids, names
}

// Export converts runs to the Chrome trace-event document. Events are
// globally sorted by timestamp (emission sequence breaking ties) so the
// emitted file satisfies the schema's monotonic-timestamp requirement.
func Export(runs []RunTrace) chromeDoc {
	doc := chromeDoc{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	var body []chromeEvent
	for pidx, run := range runs {
		pid := pidx + 1
		evs := run.Rec.Events()
		ids, names := trackIDs(evs)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": run.Name},
		})
		for i, tr := range names {
			doc.TraceEvents = append(doc.TraceEvents,
				chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: i + 1, Args: map[string]any{"name": tr}},
				chromeEvent{Name: "thread_sort_index", Ph: "M", PID: pid, TID: i + 1, Args: map[string]any{"sort_index": i + 1}},
			)
		}
		for _, e := range evs {
			tr := e.Track
			if tr == "" {
				tr = e.Comp.String()
			}
			ce := chromeEvent{
				Name: e.Name, Cat: e.Cat, PID: pid, TID: ids[tr],
				TS: psToUs(int64(e.Start)),
			}
			args := map[string]any{"comp": e.Comp.String(), "start_ps": int64(e.Start)}
			if e.Kind == Instant {
				ce.Ph, ce.S = "i", "t"
			} else {
				ce.Ph = "X"
				ce.Dur = psToUs(int64(e.Dur()))
				args["dur_ps"] = int64(e.Dur())
				if e.Activity {
					args["activity"] = true
				}
			}
			for _, a := range e.Args {
				args[a.Key] = a.Val
			}
			ce.Args = args
			body = append(body, ce)
		}
	}
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	doc.TraceEvents = append(doc.TraceEvents, body...)
	return doc
}

// WriteJSON writes the runs as one Chrome trace-event JSON document.
func WriteJSON(w io.Writer, runs []RunTrace) error {
	data, err := json.MarshalIndent(Export(runs), "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile exports the runs to path.
func WriteFile(path string, runs []RunTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FileStats summarizes a validated trace file.
type FileStats struct {
	Events    int // non-metadata events
	Spans     int
	Instants  int
	Metadata  int
	Processes int
}

// Validate parses an exported trace document and checks it against the
// schema the exporter promises: a traceEvents array of M/X/i events with
// names, positive process IDs, finite non-negative timestamps and
// durations, and globally non-decreasing timestamps across non-metadata
// events. CI runs this (via cmd/tracecheck) on a freshly traced sweep.
func Validate(data []byte) (FileStats, error) {
	var st FileStats
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return st, fmt.Errorf("trace: not a valid JSON trace document: %w", err)
	}
	if doc.TraceEvents == nil {
		return st, fmt.Errorf("trace: missing traceEvents array")
	}
	pids := map[int]bool{}
	lastTS := math.Inf(-1)
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return st, fmt.Errorf("trace: event %d has no name", i)
		}
		if e.PID == nil || *e.PID <= 0 {
			return st, fmt.Errorf("trace: event %d (%s) has no positive pid", i, e.Name)
		}
		pids[*e.PID] = true
		switch e.Ph {
		case "M":
			st.Metadata++
			continue
		case "X", "i":
		default:
			return st, fmt.Errorf("trace: event %d (%s) has unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.TS == nil || math.IsNaN(*e.TS) || math.IsInf(*e.TS, 0) || *e.TS < 0 {
			return st, fmt.Errorf("trace: event %d (%s) has invalid ts", i, e.Name)
		}
		if *e.TS < lastTS {
			return st, fmt.Errorf("trace: event %d (%s) breaks timestamp monotonicity (%.6f after %.6f)",
				i, e.Name, *e.TS, lastTS)
		}
		lastTS = *e.TS
		if e.Ph == "X" {
			if e.Dur != nil && (*e.Dur < 0 || math.IsNaN(*e.Dur) || math.IsInf(*e.Dur, 0)) {
				return st, fmt.Errorf("trace: event %d (%s) has invalid dur", i, e.Name)
			}
			st.Spans++
		} else {
			st.Instants++
		}
		st.Events++
	}
	st.Processes = len(pids)
	return st, nil
}
