// Package trace is the simulator's observability layer: a low-overhead,
// deterministic event sink that hardware models emit spans and instant
// events into, keyed by simulated time and component. One Recorder belongs
// to one run (one device.System); a sweep records one Recorder per run and
// exports them together, one Perfetto "process" each.
//
// The design constraint is that untraced runs must pay near zero cost:
// every Recorder method is nil-receiver-safe, so models hold a plain
// *Recorder field and call it unconditionally — an untraced run's only
// overhead is a nil check per emission site. Recorders are deliberately
// unsynchronized: a run's engine is single-threaded, and concurrent sweep
// runs each own a private Recorder.
//
// Activity spans are special: they are the same emissions the stats
// busy-interval timeline is built from (core.Collector routes every
// timeline Add through the one funnel that also records the span), so the
// per-component busy totals derived from a trace equal the figure
// timelines to the cycle — traces and figures can never disagree.
package trace

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind discriminates event shapes.
type Kind uint8

const (
	// Span is an interval [Start, End) on a track.
	Span Kind = iota
	// Instant is a point event at Start (End == Start).
	Instant
)

// Arg is one key/value annotation on an event. Values must be
// JSON-marshalable scalars (numbers or strings).
type Arg struct {
	Key string
	Val any
}

// Event is one recorded trace event.
type Event struct {
	Name  string
	Cat   string
	Track string // display track; "" means the component's own track
	Comp  stats.Component
	Kind  Kind
	Start sim.Tick
	End   sim.Tick
	// Activity marks spans that contribute to the component busy timeline
	// (the emissions stats.Timeline is derived from).
	Activity bool
	Args     []Arg
	Seq      uint64 // emission order, the tie-break for same-tick events
}

// Dur reports the span length (zero for instants).
func (e Event) Dur() sim.Tick { return e.End - e.Start }

// Recorder collects events for one run. The zero limit records everything;
// a positive limit keeps only the most recent events (a ring buffer), the
// mode the harness uses to attach a trailing-event window to run errors
// without unbounded memory.
type Recorder struct {
	limit   int
	seq     uint64
	dropped uint64
	events  []Event
	head    int // next overwrite position once the ring is full
}

// New returns an unbounded recorder.
func New() *Recorder { return &Recorder{} }

// NewRing returns a recorder that retains only the last limit events
// (limit <= 0 degenerates to unbounded).
func NewRing(limit int) *Recorder {
	if limit < 0 {
		limit = 0
	}
	return &Recorder{limit: limit}
}

// Enabled reports whether events are being recorded (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) add(e Event) {
	r.seq++
	e.Seq = r.seq
	if r.limit > 0 && len(r.events) == r.limit {
		r.events[r.head] = e
		r.head = (r.head + 1) % r.limit
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Span records an interval event. Zero-length and inverted spans are
// ignored, mirroring stats.Timeline.Add. A nil recorder ignores the call.
func (r *Recorder) Span(comp stats.Component, track, cat, name string, start, end sim.Tick, args ...Arg) {
	if r == nil || end <= start {
		return
	}
	r.add(Event{Name: name, Cat: cat, Track: track, Comp: comp, Kind: Span, Start: start, End: end, Args: args})
}

// Activity records a busy-timeline span for comp on the component's own
// track. core.Collector routes every timeline addition through here, so
// activity spans and the stats timeline are the same emissions.
func (r *Recorder) Activity(comp stats.Component, cat, name string, start, end sim.Tick) {
	if r == nil || end <= start {
		return
	}
	r.add(Event{Name: name, Cat: cat, Comp: comp, Kind: Span, Start: start, End: end, Activity: true})
}

// Instant records a point event. A nil recorder ignores the call.
func (r *Recorder) Instant(comp stats.Component, track, cat, name string, at sim.Tick, args ...Arg) {
	if r == nil {
		return
	}
	r.add(Event{Name: name, Cat: cat, Track: track, Comp: comp, Kind: Instant, Start: at, End: at, Args: args})
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped reports how many events the ring discarded.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events in emission order. The slice is a
// copy; mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.events) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	if r.dropped > 0 {
		out = append(out, r.events[r.head:]...)
		out = append(out, r.events[:r.head]...)
		return out
	}
	return append(out, r.events...)
}

// Tail returns the last n retained events in emission order (all of them
// when n exceeds the retained count).
func (r *Recorder) Tail(n int) []Event {
	evs := r.Events()
	if n <= 0 || len(evs) <= n {
		return evs
	}
	return evs[len(evs)-n:]
}

// ActivityTimeline rebuilds a busy-interval timeline from the recorded
// activity spans. Because the collector emits timeline additions and
// activity spans from one funnel, this equals the run's stats timeline to
// the cycle — the invariant the trace tests pin.
func (r *Recorder) ActivityTimeline() *stats.Timeline {
	tl := stats.NewTimeline()
	for _, e := range r.Events() {
		if e.Activity {
			tl.Add(e.Comp, e.Start, e.End)
		}
	}
	return tl
}

// ActivityTotals reports per-component busy time (overlaps merged) from
// the recorded activity spans.
func (r *Recorder) ActivityTotals() [stats.NumComponents]sim.Tick {
	var out [stats.NumComponents]sim.Tick
	tl := r.ActivityTimeline()
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		out[c] = tl.Active(c)
	}
	return out
}
