package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// flameRow aggregates all spans sharing one (track, cat, name) identity.
type flameRow struct {
	track, cat, name string
	total            sim.Tick
	count            int
}

// FlameText renders a compact per-run text summary of the runs' traces:
// per-component busy totals (merged activity time) and the heaviest span
// groups by summed duration. It is the `-flame` output, sized for CI logs
// where a Perfetto JSON dump would be unreadable.
func FlameText(runs []RunTrace) string {
	var b strings.Builder
	for _, run := range runs {
		evs := run.Rec.Events()
		fmt.Fprintf(&b, "=== trace %s: %d events", run.Name, len(evs))
		if d := run.Rec.Dropped(); d > 0 {
			fmt.Fprintf(&b, " (+%d dropped by ring)", d)
		}
		b.WriteString(" ===\n")
		totals := run.Rec.ActivityTotals()
		for c := stats.Component(0); c < stats.NumComponents; c++ {
			fmt.Fprintf(&b, "  busy %-5s %12.6f ms\n", c.String(), totals[c].Millis())
		}
		groups := map[string]*flameRow{}
		instants := map[string]int{}
		for _, e := range evs {
			tr := e.Track
			if tr == "" {
				tr = e.Comp.String()
			}
			key := tr + "\x00" + e.Cat + "\x00" + e.Name
			if e.Kind == Instant {
				instants[key]++
				continue
			}
			g := groups[key]
			if g == nil {
				g = &flameRow{track: tr, cat: e.Cat, name: e.Name}
				groups[key] = g
			}
			g.total += e.Dur()
			g.count++
		}
		rows := make([]*flameRow, 0, len(groups))
		for _, g := range groups {
			rows = append(rows, g)
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].total != rows[j].total {
				return rows[i].total > rows[j].total
			}
			return rows[i].track+rows[i].name < rows[j].track+rows[j].name
		})
		const topN = 20
		shown := rows
		if len(shown) > topN {
			shown = shown[:topN]
		}
		if len(shown) > 0 {
			fmt.Fprintf(&b, "  top spans (of %d groups):\n", len(rows))
		}
		for _, g := range shown {
			fmt.Fprintf(&b, "    %12.6f ms  %5d×  [%s] %s/%s\n",
				g.total.Millis(), g.count, g.track, g.cat, g.name)
		}
		if len(instants) > 0 {
			keys := make([]string, 0, len(instants))
			for k := range instants {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if instants[keys[i]] != instants[keys[j]] {
					return instants[keys[i]] > instants[keys[j]]
				}
				return keys[i] < keys[j]
			})
			if len(keys) > topN {
				keys = keys[:topN]
			}
			b.WriteString("  instants:\n")
			for _, k := range keys {
				p := strings.SplitN(k, "\x00", 3)
				fmt.Fprintf(&b, "    %7d×  [%s] %s/%s\n", instants[k], p[0], p[1], p[2])
			}
		}
	}
	return b.String()
}
