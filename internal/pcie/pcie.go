// Package pcie models the discrete GPU system's copy engine: a DMA unit
// moving data between CPU and GPU memories over a PCIe 2.0 x16 link (8 GB/s
// peak). Transfers serialize on the link, pace their DRAM accesses at link
// bandwidth, and attribute every off-chip access to the Copy component — the
// traffic the paper's Figures 4-6 charge to memory copies.
package pcie

import (
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// chunkLines is how many line transfers one pacing event covers; 32 lines =
// 4kB keeps the event count low while preserving bandwidth interleaving.
const chunkLines = 32

// Engine is the DMA copy engine.
type Engine struct {
	Eng       *sim.Engine
	Setup     sim.Tick // per-transfer latency (doorbell, descriptor fetch)
	LineBytes int
	Ctr       *stats.Counters
	Tr        *trace.Recorder // optional trace sink (nil-safe)

	perLine sim.Tick // link time per cache line
	link    sim.BusyModel

	cTransfers, cBytes stats.Counter // interned handles (see New)
}

// New builds a copy engine for a link of the given peak bandwidth.
func New(eng *sim.Engine, bytesPerSec float64, setup sim.Tick, lineBytes int, ctr *stats.Counters) *Engine {
	if ctr == nil {
		ctr = stats.NewCounters()
	}
	perLine := sim.Tick(float64(lineBytes) / bytesPerSec * float64(sim.Second))
	if perLine < 1 {
		perLine = 1
	}
	return &Engine{
		Eng: eng, Setup: setup, LineBytes: lineBytes, Ctr: ctr, perLine: perLine,
		cTransfers: ctr.Handle("pcie.transfers"),
		cBytes:     ctr.Handle("pcie.bytes"),
	}
}

// Transfer DMAs n bytes from src (read from srcMem) to dst (written to
// dstMem) starting no earlier than at. Transfers queue FIFO on the link.
// done receives the actual link occupancy interval.
func (e *Engine) Transfer(at sim.Tick, src, dst memory.Addr, n int, srcMem, dstMem memory.Port, done func(start, end sim.Tick)) {
	lines := memory.LinesSpanned(src, n, e.LineBytes)
	dur := e.Setup + sim.Tick(lines)*e.perLine
	start := e.link.Claim(at, dur)
	end := start + dur
	e.cTransfers.Inc()
	e.cBytes.Add(uint64(n))
	e.Tr.Span(stats.Copy, "PCIe link", "dma", "DMA transfer", start, end,
		trace.Arg{Key: "bytes", Val: n}, trace.Arg{Key: "lines", Val: lines})

	// Pace the line accesses across the transfer window in chunks.
	var emit func(lineIdx int)
	emit = func(lineIdx int) {
		t := start + e.Setup + sim.Tick(lineIdx)*e.perLine
		for i := 0; i < chunkLines && lineIdx < lines; i, lineIdx = i+1, lineIdx+1 {
			lt := start + e.Setup + sim.Tick(lineIdx)*e.perLine
			off := memory.Addr(lineIdx * e.LineBytes)
			srcMem.Access(lt, memory.Request{Addr: memory.LineAddr(src, e.LineBytes) + off, Comp: stats.Copy})
			dstMem.Access(lt, memory.Request{Addr: memory.LineAddr(dst, e.LineBytes) + off, Write: true, Comp: stats.Copy})
		}
		if lineIdx < lines {
			e.Eng.AtD(sim.DomainPCIe, start+e.Setup+sim.Tick(lineIdx)*e.perLine, func() { emit(lineIdx) })
			return
		}
		_ = t
	}
	e.Eng.AtD(sim.DomainPCIe, start+e.Setup, func() { emit(0) })
	e.Eng.AtD(sim.DomainPCIe, end, func() { done(start, end) })
}

// BusyTime reports total link occupancy.
func (e *Engine) BusyTime() sim.Tick { return e.link.BusyTime() }

// Derate scales the link's effective bandwidth to frac of peak — the
// fault-injection hook for a throttled or degraded PCIe link. Fractions
// outside (0,1) leave the link at nominal bandwidth.
func (e *Engine) Derate(frac float64) {
	if frac <= 0 || frac >= 1 {
		return
	}
	e.perLine = sim.Tick(float64(e.perLine) / frac)
}
