package pcie

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
)

type countPort struct {
	reads, writes int
	lastT         sim.Tick
}

func (p *countPort) Access(now sim.Tick, req memory.Request) sim.Tick {
	if req.Write {
		p.writes++
	} else {
		p.reads++
	}
	if now > p.lastT {
		p.lastT = now
	}
	if req.Comp != stats.Copy {
		panic("DMA access not attributed to Copy")
	}
	return now
}

func TestTransferBandwidthAndAccesses(t *testing.T) {
	eng := sim.NewEngine()
	e := New(eng, 8e9, 0, 128, nil) // 8 GB/s, no setup
	src, dst := &countPort{}, &countPort{}

	n := 1 << 20 // 1 MiB
	var start, end sim.Tick
	e.Transfer(0, 0, 0x1000000, n, src, dst, func(s, en sim.Tick) { start, end = s, en })
	eng.Run()

	wantDur := sim.Tick(float64(n) / 8e9 * float64(sim.Second))
	if start != 0 {
		t.Fatalf("start = %d", start)
	}
	if diff := end - wantDur; diff < -wantDur/100 || diff > wantDur/100 {
		t.Fatalf("duration = %d, want ~%d", end, wantDur)
	}
	lines := n / 128
	if src.reads != lines || dst.writes != lines {
		t.Fatalf("accesses: src reads %d, dst writes %d, want %d", src.reads, dst.writes, lines)
	}
	// Accesses are paced across the window, not front-loaded.
	if src.lastT < end*9/10 {
		t.Fatalf("accesses front-loaded: last at %d of %d", src.lastT, end)
	}
	if e.Ctr.Get("pcie.bytes") != uint64(n) {
		t.Fatal("bytes not counted")
	}
}

func TestTransfersSerializeOnLink(t *testing.T) {
	eng := sim.NewEngine()
	e := New(eng, 8e9, 1500*sim.Nanosecond, 128, nil)
	sink := &countPort{}
	var ends []sim.Tick
	e.Transfer(0, 0, 0, 128*1024, sink, sink, func(s, en sim.Tick) { ends = append(ends, en) })
	e.Transfer(0, 0, 0, 128*1024, sink, sink, func(s, en sim.Tick) { ends = append(ends, en) })
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("completions = %d", len(ends))
	}
	if ends[1] < 2*ends[0]-ends[0]/10 {
		t.Fatalf("transfers overlapped on the link: %v", ends)
	}
	if e.BusyTime() != ends[1] {
		t.Fatalf("link busy = %d, want %d", e.BusyTime(), ends[1])
	}
}

func TestSetupLatencyDominatesSmallCopies(t *testing.T) {
	eng := sim.NewEngine()
	setup := 1500 * sim.Nanosecond
	e := New(eng, 8e9, setup, 128, nil)
	sink := &countPort{}
	var end sim.Tick
	e.Transfer(0, 0, 0, 128, sink, sink, func(s, en sim.Tick) { end = en })
	eng.Run()
	if end < setup {
		t.Fatalf("small copy faster than setup: %d", end)
	}
}
