package core

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestClassifierCompulsoryFirstTouch(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 1)
	cl.Observe(128, false, 1)
	counts := cl.Counts()
	if counts[ClassCompulsory] != 2 || cl.Total() != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestClassifierRRContention(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 1) // compulsory
	cl.Observe(0, false, 1) // re-read same stage
	if cl.Counts()[ClassRRContention] != 1 {
		t.Fatalf("counts = %v", cl.Counts())
	}
}

func TestClassifierRRSpill(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 1)
	cl.Observe(0, false, 2) // next stage
	if cl.Counts()[ClassRRSpill] != 1 {
		t.Fatalf("counts = %v", cl.Counts())
	}
}

func TestClassifierLongRange(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 1)
	cl.Observe(0, false, 5)
	if cl.Counts()[ClassLongRange] != 1 {
		t.Fatalf("counts = %v", cl.Counts())
	}
}

func TestClassifierWRSpillPairCountsBothSides(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, true, 1)  // producer writeback: provisionally compulsory
	cl.Observe(0, false, 2) // consumer read next stage
	counts := cl.Counts()
	// Both the write and the read become W-R spill accesses.
	if counts[ClassWRSpill] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[ClassCompulsory] != 0 {
		t.Fatalf("provisional write not reclassified: %v", counts)
	}
}

func TestClassifierLastWriteStaysCompulsory(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 1) // first read: compulsory
	cl.Observe(0, true, 1)  // final writeback, never touched again
	counts := cl.Counts()
	if counts[ClassCompulsory] != 2 {
		t.Fatalf("last write must stay compulsory: %v", counts)
	}
}

func TestClassifierWRContentionThrash(t *testing.T) {
	cl := NewClassifier()
	cl.Observe(0, false, 3) // fetch (compulsory)
	cl.Observe(0, true, 3)  // writeback before uses complete
	cl.Observe(0, false, 3) // re-read same stage
	counts := cl.Counts()
	// The writeback resolves to W-R contention, and the re-read is W-R
	// contention too.
	if counts[ClassWRContention] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[ClassCompulsory] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// Property: counts always sum to Total, regardless of access pattern.
func TestClassifierConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cl := NewClassifier()
		stage := 1
		for _, op := range ops {
			if op%7 == 0 {
				stage++
			}
			cl.Observe(memory.Addr(op%16)*128, op%3 == 0, stage)
		}
		var sum uint64
		for _, v := range cl.Counts() {
			sum += v
		}
		return sum == cl.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentOverlapEq1(t *testing.T) {
	// C=100, Cserial=10, P=50, G=200 -> 10 + max(90,50,200) = 210.
	if got := ComponentOverlap(100, 10, 50, 200); got != 210 {
		t.Fatalf("Rco = %d", got)
	}
	// CPU-bound: C=300, Cserial=20, P=10, G=50 -> 20+280 = 300.
	if got := ComponentOverlap(300, 20, 10, 50); got != 300 {
		t.Fatalf("Rco = %d", got)
	}
	// Cserial larger than C clamps.
	if got := ComponentOverlap(5, 10, 0, 0); got != 5 {
		t.Fatalf("Rco = %d", got)
	}
}

func TestMigratedComputeEq24(t *testing.T) {
	// All-GPU work migrated onto CPU+GPU: Fcpu=56e9, Fgpu=358.4e9.
	in := MigratedComputeInputs{
		C: 0, P: 0, G: sim.FromSeconds(1.0),
		Fcpu: 56e9, Fgpu: 358.4e9,
		MemBytes: 0, PeakMemBW: 179e9,
	}
	got := MigratedCompute(in)
	want := sim.FromSeconds(358.4 / (56 + 358.4))
	if d := got - want; d < -sim.Microsecond || d > sim.Microsecond {
		t.Fatalf("Rmc_core = %v, want %v", got, want)
	}

	// Bandwidth bound dominates when M is huge.
	in.MemBytes = 1 << 40
	got = MigratedCompute(in)
	want = sim.FromSeconds(float64(uint64(1)<<40) / (0.82 * 179e9))
	if d := got - want; d < -sim.Microsecond || d > sim.Microsecond {
		t.Fatalf("Rmc_bw = %v, want %v", got, want)
	}

	// Copy bound dominates when P is huge.
	in.P = sim.FromSeconds(100)
	if got := MigratedCompute(in); got != in.P {
		t.Fatalf("Rmc should be copy-bound: %v", got)
	}
}

func TestOpportunityCost(t *testing.T) {
	// GPU idle the whole time, CPU busy the whole time.
	roi := sim.FromSeconds(1)
	got := OpportunityCost(roi, roi, 0, 56e9, 358.4e9)
	want := 358.4 / (56 + 358.4)
	if got < want-0.001 || got > want+0.001 {
		t.Fatalf("opp cost = %v, want %v", got, want)
	}
	if OpportunityCost(0, 0, 0, 1, 1) != 0 {
		t.Fatal("zero ROI should be 0")
	}
	// Fully busy -> zero cost.
	if OpportunityCost(roi, roi, roi, 56e9, 358.4e9) != 0 {
		t.Fatal("fully busy should be 0")
	}
}

func TestCollectorStagesAndTimeline(t *testing.T) {
	c := NewCollector(128, 179e9)
	c.BeginROI(0)
	s1 := c.StageBegin(StageCopy, "h2d", stats.Copy, 0, 10, 10)
	c.StageEnd(s1, 100, 0, 1024)
	s2 := c.StageBegin(StageKernel, "k", stats.GPU, 100, 10, 110)
	c.StageEnd(s2, 300, 5000, 0)
	s3 := c.StageBegin(StageCPU, "reduce", stats.CPU, 0, 0, 300)
	c.StageEnd(s3, 400, 100, 0)
	c.EndROI(400)

	r := BuildReport(c, "b", "sys", "copy", 56e9, 358.4e9)
	if r.ROI != 400 {
		t.Fatalf("ROI = %d", r.ROI)
	}
	if r.CopyActive != 90 || r.GPUActive != 190 || r.CPUActive != 100 {
		t.Fatalf("activity = %d/%d/%d", r.CopyActive, r.GPUActive, r.CPUActive)
	}
	if r.FLOPs[stats.GPU] != 5000 || r.FLOPs[stats.CPU] != 100 {
		t.Fatalf("flops = %v", r.FLOPs)
	}
	if r.Stages != 3 {
		t.Fatalf("stages = %d", r.Stages)
	}
	if r.Rco <= 0 || r.Rmc <= 0 {
		t.Fatal("estimates missing")
	}
	if len(r.String()) == 0 {
		t.Fatal("empty report string")
	}
}

func TestCollectorCserial(t *testing.T) {
	c := NewCollector(128, 179e9)
	c.BeginROI(0)
	// Launch window 0-10 with nothing running: fully serial.
	s1 := c.StageBegin(StageKernel, "k1", stats.GPU, 0, 10, 10)
	c.StageEnd(s1, 100, 0, 0)
	// Launch window 50-60 while k1 runs: fully masked.
	s2 := c.StageBegin(StageKernel, "k2", stats.GPU, 50, 10, 100)
	c.StageEnd(s2, 200, 0, 0)
	c.EndROI(200)
	if got := c.Cserial(); got != 10 {
		t.Fatalf("Cserial = %d, want 10", got)
	}
}

func TestCollectorFootprintPartition(t *testing.T) {
	c := NewCollector(128, 179e9)
	c.Touch(stats.CPU, 0, 256)    // lines 0,1
	c.Touch(stats.GPU, 128, 128)  // line 1 -> CPU+GPU
	c.Touch(stats.Copy, 512, 128) // line 4 -> Copy only
	p := c.FootprintPartition()
	if p[stats.ComponentSet(0).Set(stats.CPU)] != 128 {
		t.Fatalf("cpu-only = %d", p[stats.ComponentSet(0).Set(stats.CPU)])
	}
	if p[stats.ComponentSet(0).Set(stats.CPU).Set(stats.GPU)] != 128 {
		t.Fatal("cpu+gpu wrong")
	}
	if p[stats.ComponentSet(0).Set(stats.Copy)] != 128 {
		t.Fatal("copy-only wrong")
	}
	if c.FootprintBytes() != 3*128 {
		t.Fatalf("total = %d", c.FootprintBytes())
	}
}

func TestCollectorOnDRAMAndBWLimit(t *testing.T) {
	c := NewCollector(128, 128e9) // peak 128 GB/s
	c.BeginROI(0)
	s := c.StageBegin(StageKernel, "k", stats.GPU, 0, 0, 0)
	// 1e6 ps = 1us stage; issue 1000 line accesses = 128kB in 1us = 128 GB/s
	// achieved = 100% of peak -> above the 70% threshold.
	for i := 0; i < 1000; i++ {
		c.OnDRAM(sim.Tick(i*1000), memory.Request{Addr: memory.Addr(i * 128), Comp: stats.GPU})
	}
	c.StageEnd(s, sim.Tick(1e6), 0, 0)
	c.EndROI(sim.Tick(1e6))

	if got := c.DRAMAccesses()[stats.GPU]; got != 1000 {
		t.Fatalf("gpu dram accesses = %d", got)
	}
	if frac := c.BWLimitedFraction(0.70); frac < 0.99 {
		t.Fatalf("bw-limited frac = %v", frac)
	}
	if frac := c.BWLimitedFraction(1.5); frac != 0 {
		t.Fatalf("threshold above achieved should yield 0, got %v", frac)
	}
}
