package core

import (
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// StageKind discriminates pipeline stages.
type StageKind int

const (
	StageKernel StageKind = iota
	StageCopy
	StageCPU
)

// String names the stage kind.
func (k StageKind) String() string {
	switch k {
	case StageKernel:
		return "kernel"
	case StageCopy:
		return "copy"
	default:
		return "cpu"
	}
}

// Stage records one pipeline stage: a GPU kernel, a memory copy, or a CPU
// compute phase.
type Stage struct {
	ID   int
	Kind StageKind
	Name string
	Comp stats.Component
	// LaunchStart/LaunchDur is the host-side launch overhead interval; its
	// un-overlapped portion is the Cserial term of Eq. 1.
	LaunchStart sim.Tick
	LaunchDur   sim.Tick
	Start, End  sim.Tick
	Bytes       uint64 // copy payload, for copy stages
	FLOPs       uint64
}

// Collector gathers everything one benchmark run produces for the analysis:
// the component activity timeline, stage records, the touched-line footprint
// partition, off-chip access counts, the Section V-C classifier, and the
// inputs to the analytical models.
type Collector struct {
	SC        memory.StageClock
	TL        *stats.Timeline
	Ctr       *stats.Counters
	LineBytes int

	// Tr is the run's trace sink (nil when untraced; every call is
	// nil-safe). All busy-timeline additions are routed through addBusy so
	// the trace's activity spans and TL are the same emissions — the
	// invariant that makes trace-derived busy totals equal the figure
	// timelines to the cycle.
	Tr *trace.Recorder
	// HW is the system's hardware counter group, snapshotted at every
	// stage boundary into Phases.
	HW *stats.Counters

	Stages []*Stage
	// Phases holds the counter deltas observed at each stage boundary, in
	// boundary order.
	Phases []PhaseSnapshot
	hwPrev map[string]uint64

	foot map[memory.Addr]stats.ComponentSet
	// footMemo is a direct-mapped filter in front of the footprint map:
	// benchmarks touch the same hot lines millions of times, and the memo
	// short-circuits repeats without a map operation.
	footMemo   [footMemoSize]footMemoEntry
	cls        *Classifier
	dramByComp [stats.NumComponents]uint64
	flops      [stats.NumComponents]uint64

	stageBytes map[int]uint64 // off-chip bytes per stage, for BW-limit marking
	peakBW     float64        // compute-memory peak bytes/sec

	roiStart, roiEnd sim.Tick
	roiOpen          bool
}

// NewCollector builds a collector. peakBW is the peak bandwidth of the
// memory the compute cores use (GPU memory in the discrete system, the
// shared memory in the heterogeneous processor).
func NewCollector(lineBytes int, peakBW float64) *Collector {
	return &Collector{
		TL:         stats.NewTimeline(),
		Ctr:        stats.NewCounters(),
		LineBytes:  lineBytes,
		foot:       map[memory.Addr]stats.ComponentSet{},
		cls:        NewClassifier(),
		stageBytes: map[int]uint64{},
		peakBW:     peakBW,
	}
}

// BeginROI marks the region-of-interest start: host data is resident,
// nothing has been copied or launched yet.
func (c *Collector) BeginROI(t sim.Tick) {
	c.roiStart = t
	c.roiOpen = true
}

// EndROI marks ROI completion: all output is back in CPU-visible memory.
func (c *Collector) EndROI(t sim.Tick) {
	c.roiEnd = t
	c.roiOpen = false
}

// ROI reports the recorded region of interest.
func (c *Collector) ROI() (start, end sim.Tick) { return c.roiStart, c.roiEnd }

// PhaseSnapshot is the delta of every hardware counter across one
// pipeline-stage boundary: what the machine did between the previous
// boundary and this one. Exported per run in the -json sweep document.
type PhaseSnapshot struct {
	Seq      int       // boundary order, 1-based
	Boundary string    // "begin" or "end"
	StageID  int       // the stage whose boundary this is
	Kind     StageKind // that stage's kind
	Name     string    // that stage's name
	At       sim.Tick  // simulated time of the boundary
	Deltas   map[string]uint64
}

// snapshotPhase records the counter delta since the previous boundary.
// Empty deltas are kept: a boundary with no counter movement is itself
// information (e.g. a fully cache-resident CPU phase).
func (c *Collector) snapshotPhase(boundary string, s *Stage, at sim.Tick) {
	if c.HW == nil {
		return
	}
	if c.hwPrev == nil {
		c.hwPrev = c.HW.Snapshot()
	}
	c.Phases = append(c.Phases, PhaseSnapshot{
		Seq:      len(c.Phases) + 1,
		Boundary: boundary,
		StageID:  s.ID,
		Kind:     s.Kind,
		Name:     s.Name,
		At:       at,
		Deltas:   c.HW.TakeDelta(c.hwPrev),
	})
}

// addBusy is the single funnel for component busy time: one call feeds
// both the stats timeline and the trace's activity span.
func (c *Collector) addBusy(comp stats.Component, cat, name string, start, end sim.Tick) {
	c.TL.Add(comp, start, end)
	c.Tr.Activity(comp, cat, name, start, end)
}

// StageBegin opens a stage record and advances the global stage clock that
// the classifier keys on.
func (c *Collector) StageBegin(kind StageKind, name string, comp stats.Component, launchStart, launchDur, start sim.Tick) *Stage {
	s := &Stage{
		ID:          len(c.Stages) + 1,
		Kind:        kind,
		Name:        name,
		Comp:        comp,
		LaunchStart: launchStart,
		LaunchDur:   launchDur,
		Start:       start,
	}
	c.Stages = append(c.Stages, s)
	c.SC.S = s.ID
	c.snapshotPhase("begin", s, start)
	return s
}

// StageEnd closes a stage record and logs its activity interval.
func (c *Collector) StageEnd(s *Stage, end sim.Tick, flops, bytes uint64) {
	s.End = end
	s.FLOPs = flops
	s.Bytes = bytes
	c.flops[s.Comp] += flops
	c.addBusy(s.Comp, "stage", s.Kind.String()+" "+s.Name, s.Start, s.End)
	c.snapshotPhase("end", s, end)
}

// AddActivity records extra component activity outside a stage (e.g. CPU
// page-fault handler occupancy).
func (c *Collector) AddActivity(comp stats.Component, start, end sim.Tick) {
	c.addBusy(comp, "activity", "activity", start, end)
}

// AddActivityNamed is AddActivity with a descriptive trace label.
func (c *Collector) AddActivityNamed(comp stats.Component, name string, start, end sim.Tick) {
	c.addBusy(comp, "activity", name, start, end)
}

const footMemoSize = 1024

type footMemoEntry struct {
	line memory.Addr
	set  stats.ComponentSet
	ok   bool
}

// Touch records that comp accessed [addr, addr+size), at line granularity,
// for the Figure 4 footprint partition.
func (c *Collector) Touch(comp stats.Component, addr memory.Addr, size int) {
	n := memory.LinesSpanned(addr, size, c.LineBytes)
	base := memory.LineAddr(addr, c.LineBytes)
	for i := 0; i < n; i++ {
		l := base + memory.Addr(i*c.LineBytes)
		slot := &c.footMemo[(l/memory.Addr(c.LineBytes))%footMemoSize]
		if slot.ok && slot.line == l && slot.set.Has(comp) {
			continue
		}
		set := c.foot[l].Set(comp)
		c.foot[l] = set
		*slot = footMemoEntry{line: l, set: set, ok: true}
	}
}

// OnDRAM is installed as the DRAM access hook: it feeds the classifier,
// per-component access counts, and per-stage bandwidth accounting.
func (c *Collector) OnDRAM(now sim.Tick, req memory.Request) {
	line := memory.LineAddr(req.Addr, c.LineBytes)
	c.cls.Observe(line, req.Write, c.SC.S)
	c.dramByComp[req.Comp]++
	c.stageBytes[c.SC.S] += uint64(c.LineBytes)
}

// Classifier exposes the Section V-C classifier.
func (c *Collector) Classifier() *Classifier { return c.cls }

// FootprintBytes reports the total touched footprint.
func (c *Collector) FootprintBytes() uint64 {
	return uint64(len(c.foot)) * uint64(c.LineBytes)
}

// FootprintPartition reports touched bytes per exclusive component subset.
func (c *Collector) FootprintPartition() map[stats.ComponentSet]uint64 {
	out := map[stats.ComponentSet]uint64{}
	for _, set := range c.foot {
		out[set] += uint64(c.LineBytes)
	}
	return out
}

// DRAMAccesses reports off-chip accesses by requesting component.
func (c *Collector) DRAMAccesses() [stats.NumComponents]uint64 { return c.dramByComp }

// FLOPsByComp reports executed FLOPs per component.
func (c *Collector) FLOPsByComp() [stats.NumComponents]uint64 { return c.flops }

// Cserial computes Eq. 1's serial term: launch-overhead time during which no
// kernel or copy was executing to mask it.
func (c *Collector) Cserial() sim.Tick {
	// Activity intervals that can mask a launch.
	mask := stats.NewTimeline()
	for _, s := range c.Stages {
		if s.Kind == StageKernel || s.Kind == StageCopy {
			mask.Add(stats.GPU, s.Start, s.End)
		}
	}
	var total sim.Tick
	for _, s := range c.Stages {
		if s.Kind != StageKernel && s.Kind != StageCopy {
			continue
		}
		if s.LaunchDur <= 0 {
			continue
		}
		b := mask.Breakdown(s.LaunchStart, s.LaunchStart+s.LaunchDur)
		total += b.Idle() // portion of the launch window with nothing running
	}
	return total
}

// BWLimitedFraction reports the fraction of ROI time spent in stages whose
// achieved off-chip bandwidth exceeded threshold*peak — the paper's '*'
// bandwidth-limited marker.
func (c *Collector) BWLimitedFraction(threshold float64) float64 {
	roi := c.roiEnd - c.roiStart
	if roi <= 0 || c.peakBW <= 0 {
		return 0
	}
	var limited sim.Tick
	for _, s := range c.Stages {
		dur := s.End - s.Start
		if dur <= 0 {
			continue
		}
		bw := float64(c.stageBytes[s.ID]) / dur.Seconds()
		if bw > threshold*c.peakBW {
			limited += dur
		}
	}
	if limited > roi {
		limited = roi
	}
	return float64(limited) / float64(roi)
}
