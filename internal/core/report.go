package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Report is the per-run analysis output: every number a figure of the paper
// needs, for one (benchmark, system, mode) combination.
type Report struct {
	Benchmark string
	System    string
	Mode      string

	ROI sim.Tick

	// Component activity over the ROI.
	Breakdown  stats.Breakdown
	CPUActive  sim.Tick
	GPUActive  sim.Tick
	CopyActive sim.Tick
	CPUUtil    float64
	GPUUtil    float64

	// Analytical model inputs and outputs.
	Cserial sim.Tick
	Rco     sim.Tick // Eq. 1 component-overlap estimate
	Rmc     sim.Tick // Eq. 4 migrated-compute estimate
	OppCost float64  // FLOP opportunity cost

	// Memory characterization.
	FootprintBytes uint64
	Footprint      map[stats.ComponentSet]uint64
	DRAMAccesses   [stats.NumComponents]uint64
	ClassCounts    [NumClasses]uint64
	BWLimitedFrac  float64

	FLOPs [stats.NumComponents]uint64

	Stages int

	// Phases carries the per-stage-boundary counter snapshots.
	Phases []PhaseSnapshot
}

// BuildReport derives a Report from a finished collector run.
func BuildReport(c *Collector, bench, system, mode string, fcpu, fgpu float64) *Report {
	start, end := c.ROI()
	b := c.TL.Breakdown(start, end)
	r := &Report{
		Benchmark:      bench,
		System:         system,
		Mode:           mode,
		ROI:            end - start,
		Breakdown:      b,
		CPUActive:      b.AnyActive(stats.CPU),
		GPUActive:      b.AnyActive(stats.GPU),
		CopyActive:     b.AnyActive(stats.Copy),
		CPUUtil:        b.Utilization(stats.CPU),
		GPUUtil:        b.Utilization(stats.GPU),
		Cserial:        c.Cserial(),
		FootprintBytes: c.FootprintBytes(),
		Footprint:      c.FootprintPartition(),
		DRAMAccesses:   c.DRAMAccesses(),
		ClassCounts:    c.Classifier().Counts(),
		BWLimitedFrac:  c.BWLimitedFraction(0.70),
		FLOPs:          c.FLOPsByComp(),
		Stages:         len(c.Stages),
		Phases:         c.Phases,
	}
	r.Rco = ComponentOverlap(r.CPUActive, r.Cserial, r.CopyActive, r.GPUActive)
	memBytes := (r.DRAMAccesses[stats.CPU] + r.DRAMAccesses[stats.GPU]) * uint64(c.LineBytes)
	r.Rmc = MigratedCompute(MigratedComputeInputs{
		C: r.CPUActive, P: r.CopyActive, G: r.GPUActive,
		Fcpu: fcpu, Fgpu: fgpu,
		MemBytes: memBytes, PeakMemBW: c.peakBW,
	})
	r.OppCost = OpportunityCost(r.ROI, r.CPUActive, r.GPUActive, fcpu, fgpu)
	return r
}

// ReportJSON is the marshal-friendly form of a Report: times in
// milliseconds, and the component/class-indexed arrays and bitmask-keyed
// maps rendered as name-keyed maps (encoding/json sorts string keys, so
// the output is deterministic).
type ReportJSON struct {
	Benchmark      string            `json:"benchmark"`
	System         string            `json:"system"`
	Mode           string            `json:"mode"`
	ROIms          float64           `json:"roi_ms"`
	CPUActiveMs    float64           `json:"cpu_active_ms"`
	GPUActiveMs    float64           `json:"gpu_active_ms"`
	CopyActiveMs   float64           `json:"copy_active_ms"`
	CPUUtil        float64           `json:"cpu_util"`
	GPUUtil        float64           `json:"gpu_util"`
	CserialMs      float64           `json:"cserial_ms"`
	RcoMs          float64           `json:"rco_ms"`
	RmcMs          float64           `json:"rmc_ms"`
	OppCost        float64           `json:"flop_opp_cost"`
	FootprintBytes uint64            `json:"footprint_bytes"`
	FootprintBySet map[string]uint64 `json:"footprint_bytes_by_set,omitempty"`
	DRAMAccesses   map[string]uint64 `json:"dram_accesses"`
	ClassCounts    map[string]uint64 `json:"offchip_class_counts"`
	BWLimitedFrac  float64           `json:"bw_limited_frac"`
	FLOPs          map[string]uint64 `json:"flops"`
	Stages         int               `json:"stages"`
	Phases         []PhaseJSON       `json:"phases,omitempty"`
}

// PhaseJSON is the marshal form of one PhaseSnapshot.
type PhaseJSON struct {
	Seq      int               `json:"seq"`
	Boundary string            `json:"boundary"`
	StageID  int               `json:"stage_id"`
	Kind     string            `json:"kind"`
	Name     string            `json:"name"`
	AtMs     float64           `json:"at_ms"`
	Deltas   map[string]uint64 `json:"counter_deltas,omitempty"`
}

// JSON converts the report for machine-readable output.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{
		Benchmark:      r.Benchmark,
		System:         r.System,
		Mode:           r.Mode,
		ROIms:          r.ROI.Millis(),
		CPUActiveMs:    r.CPUActive.Millis(),
		GPUActiveMs:    r.GPUActive.Millis(),
		CopyActiveMs:   r.CopyActive.Millis(),
		CPUUtil:        r.CPUUtil,
		GPUUtil:        r.GPUUtil,
		CserialMs:      r.Cserial.Millis(),
		RcoMs:          r.Rco.Millis(),
		RmcMs:          r.Rmc.Millis(),
		OppCost:        r.OppCost,
		FootprintBytes: r.FootprintBytes,
		DRAMAccesses:   map[string]uint64{},
		ClassCounts:    map[string]uint64{},
		FLOPs:          map[string]uint64{},
		BWLimitedFrac:  r.BWLimitedFrac,
		Stages:         r.Stages,
	}
	if len(r.Footprint) > 0 {
		out.FootprintBySet = map[string]uint64{}
		for set, b := range r.Footprint {
			out.FootprintBySet[set.String()] = b
		}
	}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		out.DRAMAccesses[c.String()] = r.DRAMAccesses[c]
		out.FLOPs[c.String()] = r.FLOPs[c]
	}
	for c := Class(0); c < NumClasses; c++ {
		out.ClassCounts[c.String()] = r.ClassCounts[c]
	}
	out.Phases = PhasesJSON(r.Phases)
	return out
}

// PhasesJSON converts phase snapshots to their marshal form; nil in, nil out.
func PhasesJSON(phases []PhaseSnapshot) []PhaseJSON {
	var out []PhaseJSON
	for _, p := range phases {
		out = append(out, PhaseJSON{
			Seq: p.Seq, Boundary: p.Boundary, StageID: p.StageID,
			Kind: p.Kind.String(), Name: p.Name, AtMs: p.At.Millis(),
			Deltas: p.Deltas,
		})
	}
	return out
}

// TotalDRAM sums off-chip accesses across components.
func (r *Report) TotalDRAM() uint64 {
	var t uint64
	for _, v := range r.DRAMAccesses {
		t += v
	}
	return t
}

// ClassFraction reports class c's share of classified off-chip accesses.
func (r *Report) ClassFraction(c Class) float64 {
	var t uint64
	for _, v := range r.ClassCounts {
		t += v
	}
	if t == 0 {
		return 0
	}
	return float64(r.ClassCounts[c]) / float64(t)
}

// String renders a human-readable run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%s)\n", r.Benchmark, r.System, r.Mode)
	fmt.Fprintf(&b, "  ROI           %10.3f ms   stages %d\n", r.ROI.Millis(), r.Stages)
	fmt.Fprintf(&b, "  activity      CPU %6.3f ms (%4.1f%%)  GPU %6.3f ms (%4.1f%%)  Copy %6.3f ms\n",
		r.CPUActive.Millis(), 100*r.CPUUtil, r.GPUActive.Millis(), 100*r.GPUUtil, r.CopyActive.Millis())
	fmt.Fprintf(&b, "  estimates     Rco %6.3f ms  Rmc %6.3f ms  Cserial %6.3f ms  FLOP opp. cost %4.1f%%\n",
		r.Rco.Millis(), r.Rmc.Millis(), r.Cserial.Millis(), 100*r.OppCost)
	fmt.Fprintf(&b, "  footprint     %.2f MB\n", float64(r.FootprintBytes)/(1<<20))
	fmt.Fprintf(&b, "  DRAM accesses CPU %d  GPU %d  Copy %d", r.DRAMAccesses[stats.CPU], r.DRAMAccesses[stats.GPU], r.DRAMAccesses[stats.Copy])
	if r.BWLimitedFrac > 0.25 {
		fmt.Fprintf(&b, "  [bandwidth-limited]")
	}
	fmt.Fprintf(&b, "\n  off-chip mix ")
	for c := Class(0); c < NumClasses; c++ {
		fmt.Fprintf(&b, "  %s %.1f%%", c, 100*r.ClassFraction(c))
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
