package core

import (
	"repro/internal/memory"
	"repro/internal/stats"
)

// FootprintShard is a private, single-goroutine footprint accumulator for
// the parallel engine's off-thread workers. Footprint membership is a pure
// set union — which lines a component touched, not when — so workers can
// Touch into shards with no ordering relationship to the timing clock and
// the run merges them into the Collector before reporting. The merge is a
// commutative per-line OR of component bitmasks, so the merged map is
// identical for every worker count and schedule.
type FootprintShard struct {
	lineBytes int
	foot      map[memory.Addr]stats.ComponentSet
	memo      [footMemoSize]footMemoEntry
}

// NewFootprintShard builds an empty shard at the given line granularity.
func NewFootprintShard(lineBytes int) *FootprintShard {
	return &FootprintShard{lineBytes: lineBytes, foot: map[memory.Addr]stats.ComponentSet{}}
}

// Touch records that comp accessed [addr, addr+size), at line granularity.
// Identical logic to Collector.Touch, against the shard's private map.
func (s *FootprintShard) Touch(comp stats.Component, addr memory.Addr, size int) {
	n := memory.LinesSpanned(addr, size, s.lineBytes)
	base := memory.LineAddr(addr, s.lineBytes)
	for i := 0; i < n; i++ {
		l := base + memory.Addr(i*s.lineBytes)
		slot := &s.memo[(l/memory.Addr(s.lineBytes))%footMemoSize]
		if slot.ok && slot.line == l && slot.set.Has(comp) {
			continue
		}
		set := s.foot[l].Set(comp)
		s.foot[l] = set
		*slot = footMemoEntry{line: l, set: set, ok: true}
	}
}

// MergeFootprint folds a worker shard into the collector's footprint map.
// Call only after the shard's owning worker has quiesced. The collector's
// memo entries for merged lines may go stale (missing the shard's bits),
// which is safe: a stale memo only fails its short-circuit check and falls
// through to the map, which holds the merged truth.
func (c *Collector) MergeFootprint(sh *FootprintShard) {
	for l, set := range sh.foot {
		c.foot[l] = c.foot[l] | set
	}
}
