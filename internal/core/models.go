package core

import (
	"repro/internal/sim"
)

// AchievedBWFraction is the paper's observation that effective memory
// bandwidth "generally tops out at about 82% of peak pin bandwidth"; the
// migrated-compute bound uses it to derate peak bandwidth.
const AchievedBWFraction = 0.82

// ComponentOverlap evaluates Eq. 1:
//
//	Rco = Cserial + max(C - Cserial, P, G)
//
// the run time if CPU, copy, and GPU activity were perfectly overlapped,
// except for the launch overhead that strictly cannot be.
func ComponentOverlap(c, cserial, p, g sim.Tick) sim.Tick {
	if cserial > c {
		cserial = c
	}
	rest := c - cserial
	m := rest
	if p > m {
		m = p
	}
	if g > m {
		m = g
	}
	return cserial + m
}

// MigratedComputeInputs carries Eq. 2-4 inputs.
type MigratedComputeInputs struct {
	C, P, G     sim.Tick // CPU, copy, GPU active portions of run time
	Fcpu, Fgpu  float64  // aggregate peak FLOP rates
	MemBytes    uint64   // total CPU+GPU off-chip traffic (M, in bytes)
	PeakMemBW   float64  // peak pin bandwidth of the compute memory
	AchievedFrc float64  // achieved fraction of peak; 0 means the default
}

// MigratedCompute evaluates Eqs. 2-4:
//
//	Rmc_core = (C*Fcpu + G*Fgpu) / (Fcpu + Fgpu)
//	Rmc_BW   = M / BWmem
//	Rmc      = max(P, Rmc_core, Rmc_BW)
//
// the optimistic run time if every compute phase were spread across all CPU
// and GPU cores, bounded by aggregate FLOP rate and achieved bandwidth.
func MigratedCompute(in MigratedComputeInputs) sim.Tick {
	frc := in.AchievedFrc
	if frc == 0 {
		frc = AchievedBWFraction
	}
	var rcore sim.Tick
	if in.Fcpu+in.Fgpu > 0 {
		sec := (in.C.Seconds()*in.Fcpu + in.G.Seconds()*in.Fgpu) / (in.Fcpu + in.Fgpu)
		rcore = sim.FromSeconds(sec)
	}
	var rbw sim.Tick
	if in.PeakMemBW > 0 {
		rbw = sim.FromSeconds(float64(in.MemBytes) / (frc * in.PeakMemBW))
	}
	m := in.P
	if rcore > m {
		m = rcore
	}
	if rbw > m {
		m = rbw
	}
	return m
}

// OpportunityCost reports the portion of available compute FLOPs that went
// unused because a core type was inactive ("FLOP opportunity cost"): the
// idle-time-weighted share of aggregate peak FLOPs over the ROI.
func OpportunityCost(roi, cpuActive, gpuActive sim.Tick, fcpu, fgpu float64) float64 {
	if roi <= 0 || fcpu+fgpu == 0 {
		return 0
	}
	idleCPU := (roi - cpuActive).Seconds()
	idleGPU := (roi - gpuActive).Seconds()
	if idleCPU < 0 {
		idleCPU = 0
	}
	if idleGPU < 0 {
		idleGPU = 0
	}
	return (idleCPU*fcpu + idleGPU*fgpu) / (roi.Seconds() * (fcpu + fgpu))
}
