// Package core implements the paper's contribution: the application-level
// pipeline inefficiency analysis. It collects per-stage component activity
// (Fig 3, 6), memory footprint partitions (Fig 4), per-component off-chip
// access counts (Fig 5), the off-chip access classification of Section V-C
// (Fig 9), and the analytical models of Sections V-A and V-B — the
// component-overlap estimate (Eq. 1, Fig 7) and the migrated-compute
// estimate (Eqs. 2-4, Fig 8).
package core

import (
	"repro/internal/memory"
)

// Class is one off-chip access category from Section V-C.
type Class int

const (
	// ClassCompulsory: first off-chip read from, or last write to, a line.
	ClassCompulsory Class = iota
	// ClassLongRange: reuse spanning more than one pipeline stage. The
	// paper groups these with compulsory as "required" accesses.
	ClassLongRange
	// ClassWRSpill: producer-consumer data written off-chip in one stage
	// and read in the next — the paper counts both the write and the
	// subsequent read.
	ClassWRSpill
	// ClassRRSpill: data read in consecutive stages (shared stage input).
	ClassRRSpill
	// ClassWRContention: a line written back and re-read within the same
	// stage — the writeback happened before all uses completed.
	ClassWRContention
	// ClassRRContention: a line re-read off-chip within the same stage —
	// the stage's concurrent working set exceeds cache capacity.
	ClassRRContention
	NumClasses
)

// String names the class as in Figure 9.
func (c Class) String() string {
	switch c {
	case ClassCompulsory:
		return "Compulsory"
	case ClassLongRange:
		return "Long-Range"
	case ClassWRSpill:
		return "W-R Spill"
	case ClassRRSpill:
		return "R-R Spill"
	case ClassWRContention:
		return "W-R Contention"
	case ClassRRContention:
		return "R-R Contention"
	default:
		return "Class(?)"
	}
}

type lineHist struct {
	seen      bool
	lastWrite bool
	lastStage int32
	// pendingWrite marks that the line's most recent access was a write we
	// provisionally classified Compulsory ("last write"); the next access
	// to the line retroactively resolves it into the pair class.
	pendingWrite bool
}

// Classifier implements the Section V-C off-chip access taxonomy. It
// observes every DRAM access with the pipeline stage active at that time.
//
// Writes are provisionally Compulsory (every write could be the last write
// to its data); a later access to the same line reclassifies the write into
// the W-R pair class implied by the reuse distance. Reads are classified
// directly from (previous access type, stage distance).
type Classifier struct {
	m      map[memory.Addr]*lineHist
	counts [NumClasses]uint64
	total  uint64
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{m: map[memory.Addr]*lineHist{}}
}

// Observe records one off-chip access to the given line during stage.
func (cl *Classifier) Observe(line memory.Addr, write bool, stage int) {
	cl.total++
	h := cl.m[line]
	if h == nil {
		h = &lineHist{}
		cl.m[line] = h
	}

	if h.seen && h.pendingWrite {
		// Resolve the earlier write now that we know it was not the last.
		cl.counts[ClassCompulsory]--
		cl.counts[cl.pairClass(true, stage-int(h.lastStage))]++
		h.pendingWrite = false
	}

	var c Class
	switch {
	case !h.seen:
		c = ClassCompulsory
	case write:
		// Provisional: resolved by the next access, if any.
		c = ClassCompulsory
	default:
		c = cl.pairClass(h.lastWrite, stage-int(h.lastStage))
	}
	cl.counts[c]++

	h.seen = true
	h.lastWrite = write
	h.lastStage = int32(stage)
	h.pendingWrite = write && c == ClassCompulsory
}

// pairClass maps (previous access was a write, stage distance) to a class.
func (cl *Classifier) pairClass(prevWrite bool, dist int) Class {
	switch {
	case dist <= 0 && prevWrite:
		return ClassWRContention
	case dist <= 0:
		return ClassRRContention
	case dist == 1 && prevWrite:
		return ClassWRSpill
	case dist == 1:
		return ClassRRSpill
	default:
		return ClassLongRange
	}
}

// Counts returns the per-class totals.
func (cl *Classifier) Counts() [NumClasses]uint64 { return cl.counts }

// Total returns the number of observed accesses.
func (cl *Classifier) Total() uint64 { return cl.total }

// Fraction reports class c's share of all observed accesses.
func (cl *Classifier) Fraction(c Class) float64 {
	if cl.total == 0 {
		return 0
	}
	return float64(cl.counts[c]) / float64(cl.total)
}
