package stats

import (
	"testing"

	"repro/internal/sim"
)

// Edge cases for the interval merge the trace layer now mirrors: the
// exporter's cycle-exact guarantee depends on Timeline.Add and
// trace.Recorder.Activity agreeing on exactly these boundaries.

func TestTimelineIgnoresEmptyAndInvertedSpans(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 100, 100) // zero-length
	tl.Add(CPU, 200, 150) // inverted
	if got := tl.Active(CPU); got != 0 {
		t.Fatalf("Active = %d after degenerate adds, want 0", got)
	}
	b := tl.Breakdown(0, 1000)
	if b.Idle() != 1000 {
		t.Fatalf("Idle = %d, want full window", b.Idle())
	}
}

func TestTimelineCoalescesAdjacentIntervals(t *testing.T) {
	tl := NewTimeline()
	// [0,100) and [100,200) touch: half-open intervals, so together they
	// cover [0,200) with no gap and no double-count.
	tl.Add(GPU, 0, 100)
	tl.Add(GPU, 100, 200)
	if got := tl.Active(GPU); got != 200 {
		t.Fatalf("Active = %d, want 200 (adjacent intervals coalesced)", got)
	}
	if ivs := tl.merged(GPU); len(ivs) != 1 || ivs[0] != (Interval{0, 200}) {
		t.Fatalf("merged = %v, want one interval [0,200)", ivs)
	}
}

func TestTimelineMergeOrderIndependent(t *testing.T) {
	add := func(tl *Timeline, order []Interval) {
		for _, iv := range order {
			tl.Add(Copy, iv.Start, iv.End)
		}
	}
	ivs := []Interval{{50, 150}, {0, 100}, {160, 170}, {150, 160}, {500, 600}}
	a, b := NewTimeline(), NewTimeline()
	add(a, ivs)
	add(b, []Interval{ivs[4], ivs[3], ivs[2], ivs[1], ivs[0]})
	if a.Active(Copy) != b.Active(Copy) {
		t.Fatalf("merge depends on insertion order: %d vs %d", a.Active(Copy), b.Active(Copy))
	}
	// [0,100)+[50,150)+[150,160)+[160,170) merge to [0,170); plus [500,600).
	if got := a.Active(Copy); got != 270 {
		t.Fatalf("Active = %d, want 270", got)
	}
}

func TestTimelineDuplicateIntervals(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 5; i++ {
		tl.Add(CPU, 10, 20)
	}
	if got := tl.Active(CPU); got != 10 {
		t.Fatalf("Active = %d, want 10 (duplicates must not double-count)", got)
	}
}

func TestTimelineContainedInterval(t *testing.T) {
	tl := NewTimeline()
	tl.Add(GPU, 0, 1000)
	tl.Add(GPU, 200, 300) // fully inside
	if got := tl.Active(GPU); got != 1000 {
		t.Fatalf("Active = %d, want 1000", got)
	}
	if ivs := tl.merged(GPU); len(ivs) != 1 {
		t.Fatalf("merged = %v, want one interval", ivs)
	}
}

func TestBreakdownEmptyWindowAndDegenerateEdges(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 100)
	// Zero-width window: nothing to account.
	b := tl.Breakdown(50, 50)
	if b.Total() != 0 || len(b.BySet) != 0 {
		t.Fatalf("zero-width breakdown = %+v", b)
	}
	// Window entirely outside all activity: pure idle.
	b = tl.Breakdown(200, 300)
	if b.Idle() != 100 || b.AnyActive(CPU) != 0 {
		t.Fatalf("outside window: idle=%d active=%d", b.Idle(), b.AnyActive(CPU))
	}
}

func TestBreakdownWindowSlicesInterval(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 1000)
	tl.Add(GPU, 400, 600)
	b := tl.Breakdown(500, 700)
	// [500,600): CPU+GPU; [600,700): CPU only.
	both := ComponentSet(0).Set(CPU).Set(GPU)
	if b.BySet[both] != 100 {
		t.Fatalf("overlap time = %d, want 100", b.BySet[both])
	}
	if b.Exclusive(CPU) != 100 {
		t.Fatalf("exclusive CPU = %d, want 100", b.Exclusive(CPU))
	}
	if b.Idle() != 0 {
		t.Fatalf("idle = %d, want 0", b.Idle())
	}
	var sum sim.Tick
	for _, d := range b.BySet {
		sum += d
	}
	if sum != b.Total() {
		t.Fatalf("breakdown does not partition the window: %d != %d", sum, b.Total())
	}
}
