package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named group of monotonically increasing counts. Hardware
// models expose one and the analysis layer reads them by name, keeping the
// models free of any dependency on the reporting code.
//
// Counter storage is slot-based: each name is interned once into a heap
// slot, and hot-path increments go through a Counter handle (a plain
// pointer) obtained from Handle at model-construction time — no string
// concatenation, no map hash, no allocation per increment. The name-keyed
// Add/Inc/Get/Snapshot/TakeDelta/Merge API is a thin layer over the same
// slots, so reporting code is unchanged.
type Counters struct {
	m map[string]*uint64
}

// Counter is an interned handle to one counter slot. Models resolve their
// handles once in their constructor (Counters.Handle) and increment through
// the handle in their hot paths. The zero Counter is invalid; check Valid
// before lazy resolution.
type Counter struct {
	v *uint64
}

// Inc increments the counter by 1.
func (c Counter) Inc() { *c.v++ }

// Add increments the counter by n.
func (c Counter) Add(n uint64) { *c.v += n }

// Value reads the counter.
func (c Counter) Value() uint64 { return *c.v }

// Valid reports whether the handle is bound to a slot.
func (c Counter) Valid() bool { return c.v != nil }

// NewCounters returns an empty group.
func NewCounters() *Counters { return &Counters{m: map[string]*uint64{}} }

// Handle interns name and returns its increment handle. Interning a name
// makes it visible to Snapshot/Names with value zero until first
// incremented.
func (c *Counters) Handle(name string) Counter {
	p, ok := c.m[name]
	if !ok {
		p = new(uint64)
		c.m[name] = p
	}
	return Counter{v: p}
}

// ComponentHandles interns one counter per Component, named
// prefix+Component.String(), and returns them as a fixed array indexed by
// Component — the pattern per-requester counters use to avoid concatenating
// the component name on every access.
func (c *Counters) ComponentHandles(prefix string) [NumComponents]Counter {
	var out [NumComponents]Counter
	for comp := Component(0); comp < NumComponents; comp++ {
		out[comp] = c.Handle(prefix + comp.String())
	}
	return out
}

// Add increments name by n.
func (c *Counters) Add(name string, n uint64) { c.Handle(name).Add(n) }

// Inc increments name by 1.
func (c *Counters) Inc(name string) { c.Handle(name).Inc() }

// Get reads a counter (zero if never written).
func (c *Counters) Get(name string) uint64 {
	if p, ok := c.m[name]; ok {
		return *p
	}
	return 0
}

// Names lists all counter names in sorted order.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, p := range c.m {
		out[k] = *p
	}
	return out
}

// TakeDelta returns the non-zero counter increases since prev (a map from
// a previous Snapshot/TakeDelta call) and advances prev to the current
// values in place. Phase-scoped snapshots are built from this: the delta
// of every counter across one pipeline-stage boundary. Every key is synced
// into prev — including zero-delta ones — so prev always equals the
// current snapshot afterwards and can never go stale.
func (c *Counters) TakeDelta(prev map[string]uint64) map[string]uint64 {
	var out map[string]uint64
	for k, p := range c.m {
		v := *p
		if d := v - prev[k]; d != 0 {
			if out == nil {
				out = map[string]uint64{}
			}
			out[k] = d
		}
		prev[k] = v
	}
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for k, p := range other.m {
		if v := *p; v != 0 {
			c.Handle(k).Add(v)
		}
	}
}

// String renders the group one counter per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, k := range c.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", k, *c.m[k])
	}
	return b.String()
}
