package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named group of monotonically increasing counts. Hardware
// models expose one and the analysis layer reads them by name, keeping the
// models free of any dependency on the reporting code.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty group.
func NewCounters() *Counters { return &Counters{m: map[string]uint64{}} }

// Add increments name by n.
func (c *Counters) Add(name string, n uint64) { c.m[name] += n }

// Inc increments name by 1.
func (c *Counters) Inc(name string) { c.m[name]++ }

// Get reads a counter (zero if never written).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names lists all counter names in sorted order.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// TakeDelta returns the non-zero counter increases since prev (a map from
// a previous Snapshot/TakeDelta call) and advances prev to the current
// values in place. Phase-scoped snapshots are built from this: the delta
// of every counter across one pipeline-stage boundary.
func (c *Counters) TakeDelta(prev map[string]uint64) map[string]uint64 {
	var out map[string]uint64
	for k, v := range c.m {
		if d := v - prev[k]; d != 0 {
			if out == nil {
				out = map[string]uint64{}
			}
			out[k] = d
			prev[k] = v
		}
	}
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		c.m[k] += v
	}
}

// String renders the group one counter per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, k := range c.Names() {
		fmt.Fprintf(&b, "%-40s %12d\n", k, c.m[k])
	}
	return b.String()
}
