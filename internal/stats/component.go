// Package stats holds the measurement plumbing shared by every hardware
// model: the component taxonomy (CPU / GPU / copy engine), busy-interval
// timelines that the run-time breakdowns are computed from, counter groups,
// and bandwidth utilization tracking.
package stats

import "fmt"

// Component identifies which system component performed an action. The
// paper's figures break down footprint, memory accesses, and run time by
// exactly these three requesters.
type Component int

const (
	CPU Component = iota
	GPU
	Copy // the PCIe DMA copy engine
	NumComponents
)

// String names the component as the paper's figures do.
func (c Component) String() string {
	switch c {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case Copy:
		return "Copy"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// ComponentSet is a bitmask of components, used to partition a memory
// footprint into mutually exclusive subsets (Figure 4).
type ComponentSet uint8

// Set adds c to the set.
func (s ComponentSet) Set(c Component) ComponentSet { return s | 1<<uint(c) }

// Has reports whether c is in the set.
func (s ComponentSet) Has(c Component) bool { return s&(1<<uint(c)) != 0 }

// Empty reports whether no component is in the set.
func (s ComponentSet) Empty() bool { return s == 0 }

// String renders the set as e.g. "CPU+GPU".
func (s ComponentSet) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for c := Component(0); c < NumComponents; c++ {
		if s.Has(c) {
			if out != "" {
				out += "+"
			}
			out += c.String()
		}
	}
	return out
}

// AllComponentSets enumerates the 7 non-empty subsets in a stable order:
// singletons first, then pairs, then the full set.
func AllComponentSets() []ComponentSet {
	return []ComponentSet{
		ComponentSet(0).Set(CPU),
		ComponentSet(0).Set(GPU),
		ComponentSet(0).Set(Copy),
		ComponentSet(0).Set(CPU).Set(GPU),
		ComponentSet(0).Set(CPU).Set(Copy),
		ComponentSet(0).Set(GPU).Set(Copy),
		ComponentSet(0).Set(CPU).Set(GPU).Set(Copy),
	}
}
