package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestComponentString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || Copy.String() != "Copy" {
		t.Fatal("component names wrong")
	}
	if Component(9).String() != "Component(9)" {
		t.Fatal("unknown component name wrong")
	}
}

func TestComponentSet(t *testing.T) {
	s := ComponentSet(0).Set(CPU).Set(Copy)
	if !s.Has(CPU) || s.Has(GPU) || !s.Has(Copy) {
		t.Fatal("set membership wrong")
	}
	if s.String() != "CPU+Copy" {
		t.Fatalf("set string = %q", s.String())
	}
	if !ComponentSet(0).Empty() || s.Empty() {
		t.Fatal("Empty wrong")
	}
	if ComponentSet(0).String() != "none" {
		t.Fatal("empty string wrong")
	}
	sets := AllComponentSets()
	if len(sets) != 7 {
		t.Fatalf("want 7 subsets, got %d", len(sets))
	}
	seen := map[ComponentSet]bool{}
	for _, s := range sets {
		if s.Empty() || seen[s] {
			t.Fatalf("bad subset enumeration: %v", sets)
		}
		seen[s] = true
	}
}

func TestTimelineActiveMergesOverlaps(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 100)
	tl.Add(CPU, 50, 150) // overlaps
	tl.Add(CPU, 200, 300)
	tl.Add(CPU, 300, 300) // zero-length, ignored
	tl.Add(CPU, 400, 350) // inverted, ignored
	if got := tl.Active(CPU); got != 250 {
		t.Fatalf("active = %d, want 250", got)
	}
}

func TestTimelineBreakdown(t *testing.T) {
	tl := NewTimeline()
	// CPU busy 0-100, GPU busy 50-200, Copy busy 150-250; total window 0-300.
	tl.Add(CPU, 0, 100)
	tl.Add(GPU, 50, 200)
	tl.Add(Copy, 150, 250)
	b := tl.Breakdown(0, 300)

	if b.Total() != 300 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.Exclusive(CPU); got != 50 {
		t.Fatalf("cpu exclusive = %d, want 50", got)
	}
	if got := b.BySet[ComponentSet(0).Set(CPU).Set(GPU)]; got != 50 {
		t.Fatalf("cpu+gpu overlap = %d, want 50", got)
	}
	if got := b.Exclusive(GPU); got != 50 {
		t.Fatalf("gpu exclusive = %d, want 50", got)
	}
	if got := b.BySet[ComponentSet(0).Set(GPU).Set(Copy)]; got != 50 {
		t.Fatalf("gpu+copy overlap = %d, want 50", got)
	}
	if got := b.Exclusive(Copy); got != 50 {
		t.Fatalf("copy exclusive = %d, want 50", got)
	}
	if got := b.Idle(); got != 50 {
		t.Fatalf("idle = %d, want 50", got)
	}
	if got := b.AnyActive(GPU); got != 150 {
		t.Fatalf("gpu any = %d, want 150", got)
	}
	if u := b.Utilization(GPU); u != 0.5 {
		t.Fatalf("gpu util = %v, want 0.5", u)
	}
}

func TestTimelineBreakdownClipsToWindow(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 1000)
	b := tl.Breakdown(100, 200)
	if got := b.Exclusive(CPU); got != 100 {
		t.Fatalf("clipped exclusive = %d, want 100", got)
	}
	if b.Idle() != 0 {
		t.Fatalf("idle = %d, want 0", b.Idle())
	}
}

func TestBreakdownUtilizationEmptyWindow(t *testing.T) {
	tl := NewTimeline()
	b := tl.Breakdown(10, 10)
	if b.Utilization(CPU) != 0 {
		t.Fatal("zero window utilization should be 0")
	}
}

// Property: for any set of intervals, the breakdown partitions the window —
// the per-set times sum exactly to the window length — and AnyActive(c)
// equals the merged active time of c clipped to the window.
func TestBreakdownPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tl := NewTimeline()
		for i := 0; i+1 < len(raw); i += 2 {
			c := Component(int(raw[i]) % int(NumComponents))
			s := sim.Tick(raw[i] % 500)
			e := s + sim.Tick(raw[i+1]%100)
			tl.Add(c, s, e)
		}
		const lo, hi = 50, 450
		b := tl.Breakdown(lo, hi)
		var sum sim.Tick
		for _, v := range b.BySet {
			sum += v
		}
		if sum != hi-lo {
			return false
		}
		for c := Component(0); c < NumComponents; c++ {
			clipped := NewTimeline()
			for _, iv := range tl.merged(c) {
				s, e := iv.Start, iv.End
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				clipped.Add(c, s, e)
			}
			if b.AnyActive(c) != clipped.Active(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("a", 5)
	c.Inc("a")
	c.Inc("b")
	if c.Get("a") != 6 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	d := NewCounters()
	d.Add("b", 10)
	d.Add("c", 3)
	c.Merge(d)
	if c.Get("b") != 11 || c.Get("c") != 3 {
		t.Fatal("merge wrong")
	}
	if s := c.String(); len(s) == 0 {
		t.Fatal("string empty")
	}
}
