package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestComponentString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || Copy.String() != "Copy" {
		t.Fatal("component names wrong")
	}
	if Component(9).String() != "Component(9)" {
		t.Fatal("unknown component name wrong")
	}
}

func TestComponentSet(t *testing.T) {
	s := ComponentSet(0).Set(CPU).Set(Copy)
	if !s.Has(CPU) || s.Has(GPU) || !s.Has(Copy) {
		t.Fatal("set membership wrong")
	}
	if s.String() != "CPU+Copy" {
		t.Fatalf("set string = %q", s.String())
	}
	if !ComponentSet(0).Empty() || s.Empty() {
		t.Fatal("Empty wrong")
	}
	if ComponentSet(0).String() != "none" {
		t.Fatal("empty string wrong")
	}
	sets := AllComponentSets()
	if len(sets) != 7 {
		t.Fatalf("want 7 subsets, got %d", len(sets))
	}
	seen := map[ComponentSet]bool{}
	for _, s := range sets {
		if s.Empty() || seen[s] {
			t.Fatalf("bad subset enumeration: %v", sets)
		}
		seen[s] = true
	}
}

func TestTimelineActiveMergesOverlaps(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 100)
	tl.Add(CPU, 50, 150) // overlaps
	tl.Add(CPU, 200, 300)
	tl.Add(CPU, 300, 300) // zero-length, ignored
	tl.Add(CPU, 400, 350) // inverted, ignored
	if got := tl.Active(CPU); got != 250 {
		t.Fatalf("active = %d, want 250", got)
	}
}

func TestTimelineBreakdown(t *testing.T) {
	tl := NewTimeline()
	// CPU busy 0-100, GPU busy 50-200, Copy busy 150-250; total window 0-300.
	tl.Add(CPU, 0, 100)
	tl.Add(GPU, 50, 200)
	tl.Add(Copy, 150, 250)
	b := tl.Breakdown(0, 300)

	if b.Total() != 300 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.Exclusive(CPU); got != 50 {
		t.Fatalf("cpu exclusive = %d, want 50", got)
	}
	if got := b.BySet[ComponentSet(0).Set(CPU).Set(GPU)]; got != 50 {
		t.Fatalf("cpu+gpu overlap = %d, want 50", got)
	}
	if got := b.Exclusive(GPU); got != 50 {
		t.Fatalf("gpu exclusive = %d, want 50", got)
	}
	if got := b.BySet[ComponentSet(0).Set(GPU).Set(Copy)]; got != 50 {
		t.Fatalf("gpu+copy overlap = %d, want 50", got)
	}
	if got := b.Exclusive(Copy); got != 50 {
		t.Fatalf("copy exclusive = %d, want 50", got)
	}
	if got := b.Idle(); got != 50 {
		t.Fatalf("idle = %d, want 50", got)
	}
	if got := b.AnyActive(GPU); got != 150 {
		t.Fatalf("gpu any = %d, want 150", got)
	}
	if u := b.Utilization(GPU); u != 0.5 {
		t.Fatalf("gpu util = %v, want 0.5", u)
	}
}

func TestTimelineBreakdownClipsToWindow(t *testing.T) {
	tl := NewTimeline()
	tl.Add(CPU, 0, 1000)
	b := tl.Breakdown(100, 200)
	if got := b.Exclusive(CPU); got != 100 {
		t.Fatalf("clipped exclusive = %d, want 100", got)
	}
	if b.Idle() != 0 {
		t.Fatalf("idle = %d, want 0", b.Idle())
	}
}

func TestBreakdownUtilizationEmptyWindow(t *testing.T) {
	tl := NewTimeline()
	b := tl.Breakdown(10, 10)
	if b.Utilization(CPU) != 0 {
		t.Fatal("zero window utilization should be 0")
	}
}

// Property: for any set of intervals, the breakdown partitions the window —
// the per-set times sum exactly to the window length — and AnyActive(c)
// equals the merged active time of c clipped to the window.
func TestBreakdownPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tl := NewTimeline()
		for i := 0; i+1 < len(raw); i += 2 {
			c := Component(int(raw[i]) % int(NumComponents))
			s := sim.Tick(raw[i] % 500)
			e := s + sim.Tick(raw[i+1]%100)
			tl.Add(c, s, e)
		}
		const lo, hi = 50, 450
		b := tl.Breakdown(lo, hi)
		var sum sim.Tick
		for _, v := range b.BySet {
			sum += v
		}
		if sum != hi-lo {
			return false
		}
		for c := Component(0); c < NumComponents; c++ {
			clipped := NewTimeline()
			for _, iv := range tl.merged(c) {
				s, e := iv.Start, iv.End
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				clipped.Add(c, s, e)
			}
			if b.AnyActive(c) != clipped.Active(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterHandle(t *testing.T) {
	c := NewCounters()
	h := c.Handle("x")
	if !h.Valid() {
		t.Fatal("handle from Handle() must be valid")
	}
	var zero Counter
	if zero.Valid() {
		t.Fatal("zero Counter must be invalid")
	}
	h.Inc()
	h.Add(4)
	if h.Value() != 5 || c.Get("x") != 5 {
		t.Fatalf("handle value = %d, Get = %d, want 5", h.Value(), c.Get("x"))
	}
	// A second Handle for the same name aliases the same slot.
	h2 := c.Handle("x")
	h2.Inc()
	if h.Value() != 6 {
		t.Fatal("handles for the same name must alias")
	}
	// Name-keyed writes hit the same slot as the handle.
	c.Add("x", 10)
	if h.Value() != 16 {
		t.Fatal("Add by name must reach the interned slot")
	}
}

func TestComponentHandles(t *testing.T) {
	c := NewCounters()
	hs := c.ComponentHandles("mem.access.")
	hs[GPU].Add(7)
	hs[Copy].Inc()
	if c.Get("mem.access.GPU") != 7 || c.Get("mem.access.Copy") != 1 || c.Get("mem.access.CPU") != 0 {
		t.Fatalf("component handle names wrong: %v", c.Snapshot())
	}
}

// Interning a handle must not leak zero-valued counters into Snapshot-based
// reporting paths: TakeDelta and Merge only surface counters that moved.
func TestZeroValuedHandlesStayQuiet(t *testing.T) {
	c := NewCounters()
	c.Handle("quiet")
	c.Add("loud", 3)
	prev := map[string]uint64{}
	if d := c.TakeDelta(prev); len(d) != 1 || d["loud"] != 3 {
		t.Fatalf("delta = %v, want only loud", d)
	}
	dst := NewCounters()
	dst.Merge(c)
	if _, ok := dst.Snapshot()["quiet"]; ok {
		t.Fatal("Merge must skip zero-valued counters")
	}
}

// Regression: TakeDelta must sync prev for every counter, including ones
// whose value did not change, so a counter that later moves reports only
// the new movement.
func TestTakeDeltaAlwaysSyncsPrev(t *testing.T) {
	c := NewCounters()
	c.Add("a", 5)
	c.Add("b", 2)
	prev := map[string]uint64{}
	if d := c.TakeDelta(prev); d["a"] != 5 || d["b"] != 2 {
		t.Fatalf("first delta = %v", d)
	}
	// Phase boundary where only a moves; prev must still track b.
	c.Add("a", 1)
	if d := c.TakeDelta(prev); d["a"] != 1 || len(d) != 1 {
		t.Fatalf("second delta = %v, want a:1 only", d)
	}
	if prev["b"] != 2 {
		t.Fatalf("prev[b] = %d, want synced to 2", prev["b"])
	}
	// b moves now; its delta must be relative to the last TakeDelta, not
	// to the last time b itself changed.
	c.Add("b", 4)
	if d := c.TakeDelta(prev); d["b"] != 4 || len(d) != 1 {
		t.Fatalf("third delta = %v, want b:4 only", d)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("a", 5)
	c.Inc("a")
	c.Inc("b")
	if c.Get("a") != 6 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	d := NewCounters()
	d.Add("b", 10)
	d.Add("c", 3)
	c.Merge(d)
	if c.Get("b") != 11 || c.Get("c") != 3 {
		t.Fatal("merge wrong")
	}
	if s := c.String(); len(s) == 0 {
		t.Fatal("string empty")
	}
}
