package stats

import (
	"sort"

	"repro/internal/sim"
)

// Interval is a half-open busy span [Start, End).
type Interval struct {
	Start, End sim.Tick
}

// Dur reports the interval length.
func (iv Interval) Dur() sim.Tick { return iv.End - iv.Start }

// Timeline records when each component was busy. The run-time breakdown
// figures (Fig 3, Fig 6) are computed from it: for every instant we know the
// set of active components, so we can report both per-component activity and
// the exclusive/overlapped decomposition of total run time.
type Timeline struct {
	busy [NumComponents][]Interval
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add records that component c was busy over [start, end). Zero-length or
// inverted spans are ignored.
func (tl *Timeline) Add(c Component, start, end sim.Tick) {
	if end <= start {
		return
	}
	tl.busy[c] = append(tl.busy[c], Interval{start, end})
}

// merged returns c's intervals merged into a sorted, disjoint set.
func (tl *Timeline) merged(c Component) []Interval {
	ivs := append([]Interval(nil), tl.busy[c]...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Active reports the total time c was busy (overlaps merged).
func (tl *Timeline) Active(c Component) sim.Tick {
	var tot sim.Tick
	for _, iv := range tl.merged(c) {
		tot += iv.Dur()
	}
	return tot
}

// Breakdown is the decomposition of a run's wall-clock time by which set of
// components was active during each instant.
type Breakdown struct {
	Start, End sim.Tick
	// BydSet[set] is the time during which exactly that component set was
	// active. The zero set is idle time.
	BySet map[ComponentSet]sim.Tick
}

// Total is End-Start.
func (b Breakdown) Total() sim.Tick { return b.End - b.Start }

// Exclusive reports time where only c was active.
func (b Breakdown) Exclusive(c Component) sim.Tick {
	return b.BySet[ComponentSet(0).Set(c)]
}

// Idle reports time where nothing was active.
func (b Breakdown) Idle() sim.Tick { return b.BySet[ComponentSet(0)] }

// AnyActive reports time where c was active (alone or overlapped).
func (b Breakdown) AnyActive(c Component) sim.Tick {
	var tot sim.Tick
	for set, t := range b.BySet {
		if set.Has(c) {
			tot += t
		}
	}
	return tot
}

// Utilization reports the fraction of total time that c was active.
func (b Breakdown) Utilization(c Component) float64 {
	tot := b.Total()
	if tot <= 0 {
		return 0
	}
	return float64(b.AnyActive(c)) / float64(tot)
}

// Breakdown sweeps the timeline between start and end and accounts each
// instant to the set of components active then.
func (tl *Timeline) Breakdown(start, end sim.Tick) Breakdown {
	type edge struct {
		t     sim.Tick
		c     Component
		delta int
	}
	var edges []edge
	for c := Component(0); c < NumComponents; c++ {
		for _, iv := range tl.merged(c) {
			s, e := iv.Start, iv.End
			if s < start {
				s = start
			}
			if e > end {
				e = end
			}
			if e <= s {
				continue
			}
			edges = append(edges, edge{s, c, +1}, edge{e, c, -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	b := Breakdown{Start: start, End: end, BySet: map[ComponentSet]sim.Tick{}}
	var counts [NumComponents]int
	cur := start
	setOf := func() ComponentSet {
		var s ComponentSet
		for c := Component(0); c < NumComponents; c++ {
			if counts[c] > 0 {
				s = s.Set(c)
			}
		}
		return s
	}
	for i := 0; i < len(edges); {
		t := edges[i].t
		if t > cur {
			b.BySet[setOf()] += t - cur
			cur = t
		}
		for i < len(edges) && edges[i].t == t {
			counts[edges[i].c] += edges[i].delta
			i++
		}
	}
	if cur < end {
		b.BySet[setOf()] += end - cur
	}
	return b
}
