package device

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpucore"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
)

// signalLat is the cost of consuming a cross-component "data ready" signal
// (an in-memory flag in the heterogeneous processor, a stream-event check in
// the discrete system).
const signalLat = 200 * sim.Nanosecond

// Handle tracks one asynchronous operation. Handles double as dependencies:
// pass them to the *Async methods to order operations, exactly as CUDA
// streams/events or in-memory signal variables would.
type Handle struct {
	s         *System
	label     string // names the operation for deadlock diagnostics
	completed bool
	end       sim.Tick
	cbs       []func(sim.Tick)
}

// Done reports whether the operation has completed.
func (h *Handle) Done() bool { return h.completed }

// End reports the completion time (valid once Done).
func (h *Handle) End() sim.Tick { return h.end }

func (h *Handle) whenDone(fn func(sim.Tick)) {
	if h.completed {
		fn(h.end)
		return
	}
	h.cbs = append(h.cbs, fn)
}

func (h *Handle) complete(end sim.Tick) {
	if h.completed {
		panic("device: handle completed twice")
	}
	h.completed = true
	h.end = end
	cbs := h.cbs
	h.cbs = nil
	for _, f := range cbs {
		f(end)
	}
}

func (s *System) newHandle(label string) *Handle { return &Handle{s: s, label: label} }

// NewHandle returns an unfulfilled handle for a user-defined asynchronous
// operation; complete it with Complete. The label names the operation in
// deadlock diagnostics.
func (s *System) NewHandle(label string) *Handle { return s.newHandle(label) }

// Complete marks a user-created handle done at the current simulated time.
func (h *Handle) Complete() { h.complete(h.s.Eng.Now()) }

// when invokes fn once every dep has completed, passing the latest
// completion time (or now if there are none).
func (s *System) when(deps []*Handle, fn func(ready sim.Tick)) {
	if len(deps) == 0 {
		fn(s.Eng.Now())
		return
	}
	remaining := len(deps)
	ready := s.Eng.Now()
	for _, d := range deps {
		d.whenDone(func(e sim.Tick) {
			if e > ready {
				ready = e
			}
			remaining--
			if remaining == 0 {
				fn(ready)
			}
		})
	}
}

// afterAll returns a handle that completes when all deps have.
func (s *System) afterAll(deps []*Handle) *Handle {
	h := s.newHandle("barrier")
	s.when(deps, h.complete)
	return h
}

// AfterAll returns a handle that completes once every dep has — a join
// point for fan-in dependency graphs.
func (s *System) AfterAll(deps ...*Handle) *Handle { return s.afterAll(deps) }

// Wait runs the simulation until h completes. If the event queue drains
// first, the waited-on operation can never complete; Wait aborts the run
// with a *DeadlockError naming the wedged stage (recovered into a run
// error by the harness layer).
func (s *System) Wait(h *Handle) {
	for !h.completed {
		if !s.Eng.Step() {
			label := h.label
			if label == "" {
				label = "unlabeled operation"
			}
			panic(&DeadlockError{Stage: label, SimTime: s.Eng.Now(), EventsRun: s.Eng.EventsRun()})
		}
	}
}

// Drain runs the simulation until no events remain.
func (s *System) Drain() { s.Eng.Run() }

// BeginROI drains outstanding work and marks the region-of-interest start.
func (s *System) BeginROI() {
	s.Drain()
	s.roiOpen = true
	s.Col.BeginROI(s.Eng.Now())
}

// EndROI drains outstanding work and marks ROI completion.
func (s *System) EndROI() {
	s.Drain()
	s.roiOpen = false
	s.Col.EndROI(s.Eng.Now())
}

// KernelSpec describes one GPU kernel launch.
type KernelSpec struct {
	Name         string
	Grid         int // CTAs
	Block        int // threads per CTA
	ScratchBytes int // scratch per CTA
	Func         func(t *Thread)
}

// LaunchAsync schedules a GPU kernel after deps. The host-side launch
// overhead is charged as CPU activity and serializes on the host thread —
// the ingredient of Eq. 1's Cserial.
func (s *System) LaunchAsync(k KernelSpec, deps ...*Handle) *Handle {
	if k.Grid <= 0 || k.Block <= 0 {
		usageErrorf("LaunchAsync", "kernel %s needs positive grid and block (got %dx%d)", k.Name, k.Grid, k.Block)
	}
	if k.Block > s.Cfg.GPU.MaxWarpsPerSM*s.Cfg.GPU.WarpSize {
		usageErrorf("LaunchAsync", "kernel %s block %d exceeds SM capacity", k.Name, k.Block)
	}
	h := s.newHandle("kernel " + k.Name)
	s.when(deps, func(ready sim.Tick) {
		launchDur := sim.Tick(s.Cfg.KernelLaunchNs * float64(sim.Nanosecond))
		launchStart := s.hostMux.Claim(ready, launchDur)
		start := launchStart + launchDur
		s.Col.AddActivityNamed(stats.CPU, "launch "+k.Name, launchStart, start)
		s.Eng.AtD(sim.DomainHost, start, func() { s.launchOnGPU(k, launchStart, launchDur, h) })
	})
	return h
}

// deviceLaunchOverhead is the device-side launch cost of a dynamic-
// parallelism child kernel (no host round trip, but not free either).
const deviceLaunchOverhead = 8 * sim.Microsecond

// launchOnGPU starts k at the current simulated time and completes h when
// the kernel and all device-launched children have finished.
func (s *System) launchOnGPU(k KernelSpec, launchStart, launchDur sim.Tick, h *Handle) {
	start := s.Eng.Now()
	st := s.Col.StageBegin(core.StageKernel, k.Name, stats.GPU, launchStart, launchDur, start)
	var children []KernelSpec
	// gen produces one CTA's lane traces through t. One Thread per CTA,
	// re-pointed per lane: kernels only use the Thread inside Func, so the
	// struct need not outlive the call. Each lane's trace is retained for
	// replay and stays per-lane.
	gen := func(cta int, t *Thread) []isa.Trace {
		out := make([]isa.Trace, k.Block)
		t.cta = cta
		t.block = k.Block
		t.children = &children
		for i := 0; i < k.Block; i++ {
			t.lane = i
			t.global = cta*k.Block + i
			t.tr = make(isa.Trace, 0, 64)
			k.Func(t)
			out[i] = t.tr
		}
		return out
	}
	kern := &gpucore.Kernel{
		Name:         k.Name,
		CTAs:         k.Grid,
		ThreadsPerTA: k.Block,
		ScratchBytes: k.ScratchBytes,
		Gen:          func(cta int) []isa.Trace { return gen(cta, &Thread{s: s}) },
		Done: func(end sim.Tick, flops uint64) {
			s.flushGPUL1s(end)
			s.Col.StageEnd(st, end, flops, 0)
			if len(children) == 0 {
				h.complete(end)
				return
			}
			// Dynamic parallelism: children start after the parent, each
			// paying the device-side launch overhead; the parent's handle
			// completes when the last child (transitively) does.
			remaining := len(children)
			var lastEnd sim.Tick
			for i, ck := range children {
				ch := s.newHandle("child kernel " + ck.Name)
				ckStart := end + sim.Tick(i+1)*deviceLaunchOverhead
				ckCopy := ck
				s.Eng.AtD(sim.DomainHost, ckStart, func() { s.launchOnGPU(ckCopy, ckStart, 0, ch) })
				ch.whenDone(func(e sim.Tick) {
					if e > lastEnd {
						lastEnd = e
					}
					remaining--
					if remaining == 0 {
						h.complete(lastEnd)
					}
				})
			}
		},
	}
	if s.par != nil {
		// Off-thread generation. The generation worker's buffer reads and
		// writes are ordered against the timing thread by the pipeline's
		// result hand-off; footprint touches can't go to the collector from
		// off-thread, so they go to a shard (par=2) or are skipped and
		// replayed from the traces by a pre worker (par>=3) — the trace op
		// stream carries exactly the touched ranges.
		if s.par.PreWorkers() > 0 {
			kern.GenPar = func(cta int) []isa.Trace { return gen(cta, &Thread{s: s, quiet: true}) }
			kern.PreTouch = func(worker int, traces []isa.Trace) {
				sh := s.genShards[worker]
				for _, tr := range traces {
					for _, op := range tr {
						switch op.Kind {
						case isa.OpLoad, isa.OpLoadDep, isa.OpStore, isa.OpAtomic:
							sh.Touch(stats.GPU, op.Addr, int(op.N))
						}
					}
				}
			}
		} else {
			shard := s.genShards[0]
			kern.GenPar = func(cta int) []isa.Trace { return gen(cta, &Thread{s: s, shard: shard}) }
		}
	}
	s.gpu.Launch(start, kern)
}

// Launch runs a kernel synchronously.
func (s *System) Launch(k KernelSpec) { s.Wait(s.LaunchAsync(k)) }

// copyAsync schedules a DMA copy after deps; funcCopy applies the
// functional data movement at issue time (dependency-ordered).
func (s *System) copyAsync(dst, src *Alloc, n int, funcCopy func(), deps []*Handle) *Handle {
	if n <= 0 {
		usageErrorf("Memcpy", "empty copy %s->%s (%d bytes)", src.Name, dst.Name, n)
	}
	if n > dst.Size || n > src.Size {
		usageErrorf("Memcpy", "copy of %d bytes overruns %s (%d) or %s (%d)", n, dst.Name, dst.Size, src.Name, src.Size)
	}
	h := s.newHandle(fmt.Sprintf("copy %s->%s", src.Name, dst.Name))
	s.when(deps, func(ready sim.Tick) {
		funcCopy()
		launchDur := sim.Tick(s.Cfg.KernelLaunchNs * float64(sim.Nanosecond))
		launchStart := s.hostMux.Claim(ready, launchDur)
		start := launchStart + launchDur
		s.Col.AddActivityNamed(stats.CPU, "launch copy", launchStart, start)

		// Coherence actions: write back dirty source lines so the DMA reads
		// fresh data; invalidate destination lines everywhere ("written
		// back or invalidated").
		s.writebackRange(start, src)
		s.invalidateRange(start, dst)

		// The destination pages become resident (the driver maps them while
		// the copy engine runs).
		s.vmm.MapRange(dst.Base, n)

		s.Col.Touch(stats.Copy, src.Base, n)
		s.Col.Touch(stats.Copy, dst.Base, n)

		s.Eng.AtD(sim.DomainHost, start, func() {
			st := s.Col.StageBegin(core.StageCopy, fmt.Sprintf("copy %s->%s", src.Name, dst.Name),
				stats.Copy, launchStart, launchDur, start)
			s.dma.Transfer(start, src.Base, dst.Base, n, s.dramFor(src), s.dramFor(dst),
				func(tstart, tend sim.Tick) {
					s.Col.StageEnd(st, tend, 0, uint64(n))
					h.complete(tend)
				})
		})
	})
	return h
}

// dramFor picks the memory an allocation physically lives in.
func (s *System) dramFor(a *Alloc) *memory.DRAM {
	if s.Cfg.Kind != config.Discrete || a.Loc == Device {
		return s.gpuDRAM
	}
	return s.cpuDRAM
}

func (s *System) writebackRange(now sim.Tick, a *Alloc) {
	for _, c := range s.allCaches() {
		c.WritebackRange(now, a.Base, a.Size)
	}
}

func (s *System) invalidateRange(now sim.Tick, a *Alloc) {
	for _, c := range s.allCaches() {
		c.InvalidateRange(now, a.Base, a.Size, stats.Copy)
	}
}

func (s *System) allCaches() []*memory.Cache {
	out := make([]*memory.Cache, 0, len(s.coreL1)+len(s.coreL2)+len(s.gpuL1s)+1)
	out = append(out, s.coreL1...)
	out = append(out, s.coreL2...)
	out = append(out, s.gpuL1s...)
	out = append(out, s.gpuL2)
	return out
}

// MemcpyAsync schedules a full-buffer copy (equal lengths required).
func MemcpyAsync[T any](s *System, dst, src *Buf[T], deps ...*Handle) *Handle {
	if len(dst.V) != len(src.V) {
		usageErrorf("Memcpy", "length mismatch %s(%d) != %s(%d)", dst.A.Name, len(dst.V), src.A.Name, len(src.V))
	}
	return s.copyAsync(dst.A, src.A, src.A.Size, func() { copy(dst.V, src.V) }, deps)
}

// Memcpy copies synchronously.
func Memcpy[T any](s *System, dst, src *Buf[T]) { s.Wait(MemcpyAsync(s, dst, src)) }

// MemcpyRangeAsync copies count elements from src[srcOff:] to dst[dstOff:],
// the building block of chunked asynchronous streams.
func MemcpyRangeAsync[T any](s *System, dst *Buf[T], dstOff int, src *Buf[T], srcOff, count int, deps ...*Handle) *Handle {
	es := src.ElemSize()
	sub := func(a *Alloc, off, n int) *Alloc {
		return &Alloc{Name: a.Name, Base: a.Base + memory.Addr(off*es), Size: n * es, Loc: a.Loc}
	}
	return s.copyAsync(sub(dst.A, dstOff, count), sub(src.A, srcOff, count), count*es,
		func() { copy(dst.V[dstOff:dstOff+count], src.V[srcOff:srcOff+count]) }, deps)
}

// CPUTaskSpec describes a (possibly multi-threaded) CPU compute phase.
type CPUTaskSpec struct {
	Name    string
	Threads int // software threads; scheduled onto the core pool
	Func    func(c *CPUThread)
}

type cpuWork struct {
	tr   isa.Trace
	done func(end sim.Tick, flops uint64)
}

// CPUTaskAsync schedules a CPU phase after deps. Threads execute
// functionally in TID order at start, then their traces replay on the core
// pool.
func (s *System) CPUTaskAsync(spec CPUTaskSpec, deps ...*Handle) *Handle {
	if spec.Threads <= 0 {
		spec.Threads = 1
	}
	h := s.newHandle("cpu task " + spec.Name)
	s.when(deps, func(ready sim.Tick) {
		s.Eng.AtD(sim.DomainHost, ready+signalLat, func() {
			now := s.Eng.Now()
			st := s.Col.StageBegin(core.StageCPU, spec.Name, stats.CPU, now, 0, now)
			remaining := spec.Threads
			var maxEnd sim.Tick
			var totFLOPs uint64
			for tid := 0; tid < spec.Threads; tid++ {
				ct := &CPUThread{s: s, tid: tid, n: spec.Threads, tr: make(isa.Trace, 0, 1024)}
				spec.Func(ct)
				s.runOnCore(&cpuWork{tr: ct.tr, done: func(end sim.Tick, flops uint64) {
					if end > maxEnd {
						maxEnd = end
					}
					totFLOPs += flops
					remaining--
					if remaining == 0 {
						s.Col.StageEnd(st, maxEnd, totFLOPs, 0)
						h.complete(maxEnd)
					}
				}})
			}
		})
	})
	return h
}

// CPUTask runs a CPU phase synchronously.
func (s *System) CPUTask(spec CPUTaskSpec) { s.Wait(s.CPUTaskAsync(spec)) }

// runOnCore dispatches work to a free CPU core or queues it.
func (s *System) runOnCore(w *cpuWork) {
	if len(s.freeCores) == 0 {
		s.taskQueue = append(s.taskQueue, w)
		return
	}
	id := s.freeCores[len(s.freeCores)-1]
	s.freeCores = s.freeCores[:len(s.freeCores)-1]
	s.startOnCore(id, w)
}

func (s *System) startOnCore(id int, w *cpuWork) {
	s.cores[id].RunTrace(s.Eng.Now(), stats.CPU, w.tr, func(end sim.Tick, flops uint64) {
		s.Eng.AtD(sim.DomainCPU, end, func() { s.releaseCore(id) })
		w.done(end, flops)
	})
}

func (s *System) releaseCore(id int) {
	if len(s.taskQueue) > 0 {
		w := s.taskQueue[0]
		s.taskQueue = s.taskQueue[1:]
		s.startOnCore(id, w)
		return
	}
	s.freeCores = append(s.freeCores, id)
}
