package device

import (
	"testing"

	"repro/internal/stats"
)

func TestMemcpyRangeAsyncMovesSubrange(t *testing.T) {
	s := discrete()
	h := AllocBuf[int32](s, 1024, "h", Host)
	d := AllocBuf[int32](s, 1024, "d", Device)
	for i := range h.V {
		h.V[i] = int32(i)
	}
	s.Wait(MemcpyRangeAsync(s, d, 100, h, 200, 50))
	if d.V[100] != 200 || d.V[149] != 249 {
		t.Fatalf("range copy wrong: %d %d", d.V[100], d.V[149])
	}
	if d.V[99] != 0 || d.V[150] != 0 {
		t.Fatal("range copy overran")
	}
}

func TestHeteroResidualCopyStillCosts(t *testing.T) {
	// Limited-copy benchmarks keep a few copies; in the heterogeneous
	// processor those are in-memory DMA, bandwidth-bound but real.
	s := hetero()
	a := AllocBuf[float32](s, 1<<16, "a", Host)
	b := AllocBuf[float32](s, 1<<16, "b", Host)
	s.BeginROI()
	Memcpy(s, b, a)
	s.EndROI()
	rep := s.Report("t", "x")
	if rep.CopyActive <= 0 {
		t.Fatal("residual copy must take time")
	}
	if rep.DRAMAccesses[stats.Copy] == 0 {
		t.Fatal("residual copy must generate off-chip traffic")
	}
}

func TestMisalignedBufferInflatesTransactions(t *testing.T) {
	run := func(misaligned bool) uint64 {
		s := hetero()
		var b *Buf[float32]
		if misaligned {
			b = AllocBuf[float32](s, 1<<14, "b", Host, Misaligned())
		} else {
			b = AllocBuf[float32](s, 1<<14, "b", Host)
		}
		s.Launch(KernelSpec{
			Name: "touch", Grid: 16, Block: 256,
			Func: func(t *Thread) {
				Ld(t, b, t.Global())
			},
		})
		return s.Ctr.Get("gpu.mem_transactions")
	}
	aligned := run(false)
	misaligned := run(true)
	if misaligned <= aligned {
		t.Fatalf("misalignment must inflate coalescing traffic: %d vs %d", misaligned, aligned)
	}
}

func TestHandleAPI(t *testing.T) {
	s := hetero()
	h := s.LaunchAsync(KernelSpec{Name: "k", Grid: 1, Block: 32, Func: func(t *Thread) { t.FLOP(1) }})
	if h.Done() {
		t.Fatal("handle done before simulation ran")
	}
	s.Wait(h)
	if !h.Done() || h.End() <= 0 {
		t.Fatal("handle state wrong after wait")
	}
}

func TestAfterAllAggregatesDeps(t *testing.T) {
	s := hetero()
	h1 := s.LaunchAsync(KernelSpec{Name: "a", Grid: 1, Block: 32, Func: func(t *Thread) { t.FLOP(100) }})
	h2 := s.LaunchAsync(KernelSpec{Name: "b", Grid: 1, Block: 32, Func: func(t *Thread) { t.FLOP(100000) }})
	all := s.afterAll([]*Handle{h1, h2})
	s.Wait(all)
	if all.End() < h2.End() {
		t.Fatal("afterAll must complete at the latest dependency")
	}
}

func TestLaunchValidationPanics(t *testing.T) {
	s := hetero()
	cases := []KernelSpec{
		{Name: "zero-grid", Grid: 0, Block: 32, Func: func(t *Thread) {}},
		{Name: "zero-block", Grid: 1, Block: 0, Func: func(t *Thread) {}},
		{Name: "huge-block", Grid: 1, Block: 1 << 20, Func: func(t *Thread) {}},
	}
	for _, k := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("kernel %s: expected panic", k.Name)
				}
			}()
			s.LaunchAsync(k)
		}()
	}
}

func TestMemcpyValidationPanics(t *testing.T) {
	s := discrete()
	a := AllocBuf[float32](s, 100, "a", Host)
	b := AllocBuf[float32](s, 50, "b", Device)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Memcpy(s, b, a)
}

func TestChecksums(t *testing.T) {
	if ChecksumF32([]float32{1, 2, 3}) != 6 {
		t.Fatal("f32 checksum")
	}
	if ChecksumI32([]int32{-1, 5}) != 4 {
		t.Fatal("i32 checksum")
	}
	if ChecksumF32(nil) != 0 {
		t.Fatal("empty checksum")
	}
}

func TestScratchAndSyncRecorded(t *testing.T) {
	s := hetero()
	s.Launch(KernelSpec{
		Name: "scr", Grid: 1, Block: 64, ScratchBytes: 1024,
		Func: func(t *Thread) {
			t.ScratchOp(4)
			t.Sync()
			t.FLOP(1)
		},
	})
	if s.Ctr.Get("gpu.scratch_ops") == 0 {
		t.Fatal("scratch ops not counted")
	}
}

func TestCserialVisibleWithManyTinyKernels(t *testing.T) {
	s := discrete()
	b := AllocBuf[float32](s, 1024, "b", Device)
	s.BeginROI()
	for i := 0; i < 20; i++ {
		s.Launch(KernelSpec{Name: "tiny", Grid: 1, Block: 32, Func: func(t *Thread) {
			Ld(t, b, t.Global())
		}})
	}
	s.EndROI()
	cs := s.Col.Cserial()
	if cs <= 0 {
		t.Fatal("serialized tiny kernels must expose Cserial")
	}
	rep := s.Report("t", "x")
	// With fully serialized tiny kernels the overlap estimate can at best
	// match the observed run time — never exceed it, never drop below the
	// un-maskable serial launch term.
	if rep.Rco > rep.ROI || rep.Rco < cs {
		t.Fatalf("Rco %v outside [Cserial %v, ROI %v]", rep.Rco, cs, rep.ROI)
	}
}

func TestTimingIsDeterministic(t *testing.T) {
	run := func() int64 {
		s := hetero()
		b := AllocBuf[float32](s, 1<<14, "b", Host)
		s.BeginROI()
		s.Launch(KernelSpec{Name: "k", Grid: 16, Block: 256, Func: func(t *Thread) {
			i := t.Global()
			v := Ld(t, b, i)
			t.FLOP(4)
			St(t, b, i, v+1)
		}})
		s.CPUTask(CPUTaskSpec{Name: "c", Threads: 2, Func: func(c *CPUThread) {
			for i := c.TID(); i < 1<<14; i += 2 {
				Ld(c, b, i)
			}
		}})
		s.EndROI()
		return int64(s.Report("t", "x").ROI)
	}
	if run() != run() {
		t.Fatal("simulation must be deterministic")
	}
}

func TestDynamicParallelism(t *testing.T) {
	s := hetero()
	b := AllocBuf[int32](s, 1024, "b", Host)
	// Parent kernel spawns a child that doubles what the parent wrote.
	h := s.LaunchAsync(KernelSpec{
		Name: "parent", Grid: 4, Block: 256,
		Func: func(th *Thread) {
			i := th.Global()
			St(th, b, i, int32(i))
			if i == 0 {
				th.LaunchChild(KernelSpec{
					Name: "child", Grid: 4, Block: 256,
					Func: func(ct *Thread) {
						j := ct.Global()
						v := Ld(ct, b, j)
						ct.FLOP(1)
						St(ct, b, j, v*2)
					},
				})
			}
		},
	})
	s.Wait(h)
	if b.V[100] != 200 {
		t.Fatalf("child did not run after parent: %d", b.V[100])
	}
	// Two kernel stages must have been recorded, and the handle must span
	// both plus the device-side launch overhead.
	if len(s.Col.Stages) != 2 {
		t.Fatalf("stages = %d, want parent+child", len(s.Col.Stages))
	}
	if h.End() < s.Col.Stages[0].End+deviceLaunchOverhead {
		t.Fatal("child launch overhead not charged")
	}
}

func TestDynamicParallelismNested(t *testing.T) {
	s := hetero()
	depth := 0
	var spawn func(level int) KernelSpec
	spawn = func(level int) KernelSpec {
		return KernelSpec{
			Name: "nest", Grid: 1, Block: 32,
			Func: func(th *Thread) {
				if th.Global() == 0 {
					depth = level
					if level < 3 {
						th.LaunchChild(spawn(level + 1))
					}
				}
				th.FLOP(1)
			},
		}
	}
	s.Wait(s.LaunchAsync(spawn(1)))
	if depth != 3 {
		t.Fatalf("nested launches stopped at depth %d", depth)
	}
	if len(s.Col.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(s.Col.Stages))
	}
}

func TestLaunchChildOutsideKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Thread{}).LaunchChild(KernelSpec{})
}
