package device

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memory"
	"repro/internal/stats"
)

// Rec is the access recorder shared by GPU threads and CPU task threads:
// the typed helpers (Ld, St, AtomicAdd, ...) record through it while
// performing the functional data access directly on the buffer slice.
type Rec interface {
	rec(op isa.Op)
	// touch records [addr, addr+size) in the run's footprint. GPU threads
	// running off the timing thread route this to a private shard (or skip
	// it entirely when a pre worker will replay it from the trace); the
	// trace already carries the same addresses, so footprint routing never
	// changes what the timing model sees.
	touch(addr memory.Addr, size int)
	sys() *System
}

// Thread is one GPU thread's execution context, passed to kernel functions.
type Thread struct {
	s      *System
	tr     isa.Trace
	cta    int
	lane   int // thread index within the CTA
	block  int // threads per CTA
	global int
	// children collects device-side launches (dynamic parallelism).
	children *[]KernelSpec

	// shard, when non-nil, receives footprint touches instead of the
	// collector — the off-thread generation path. quiet skips touches
	// entirely: a pre worker will replay them from the recorded trace.
	shard *core.FootprintShard
	quiet bool
}

// LaunchChild enqueues a child kernel from device code — CUDA 5.0 dynamic
// parallelism, the construct Section VI of the paper discusses for
// producer-to-consumer programmability. Children start after the parent
// kernel completes (plus a device-side launch overhead) and the parent's
// handle completes only once all nested children have — matching CUDA's
// parent-exit synchronization semantics. The paper's cited caveat (launch
// overheads can outweigh the benefit) is modelled by the per-child
// overhead.
func (t *Thread) LaunchChild(k KernelSpec) {
	if t.children == nil {
		panic("device: LaunchChild outside a kernel launch")
	}
	*t.children = append(*t.children, k)
}

// CTA reports the thread's block index.
func (t *Thread) CTA() int { return t.cta }

// Lane reports the thread index within its block (threadIdx.x).
func (t *Thread) Lane() int { return t.lane }

// Block reports the block size (blockDim.x).
func (t *Thread) Block() int { return t.block }

// Global reports the global thread index (blockIdx.x*blockDim.x +
// threadIdx.x).
func (t *Thread) Global() int { return t.global }

// Sync records a CTA-wide barrier (__syncthreads). Functional execution runs
// threads of a CTA sequentially, so kernels must not rely on cross-thread
// scratch phase ordering; use atomics for intra-CTA combining.
func (t *Thread) Sync() { t.rec(isa.Op{Kind: isa.OpSync}) }

// FLOP records n arithmetic operations.
func (t *Thread) FLOP(n int) {
	if n > 0 {
		t.rec(isa.Op{Kind: isa.OpCompute, N: uint32(n)})
	}
}

// ScratchOp records n scratchpad (shared memory) accesses.
func (t *Thread) ScratchOp(n int) {
	for i := 0; i < n; i++ {
		t.rec(isa.Op{Kind: isa.OpScratch, N: 4})
	}
}

func (t *Thread) rec(op isa.Op) { t.tr = append(t.tr, op) }
func (t *Thread) sys() *System  { return t.s }

func (t *Thread) touch(addr memory.Addr, size int) {
	switch {
	case t.quiet:
	case t.shard != nil:
		t.shard.Touch(stats.GPU, addr, size)
	default:
		t.s.Col.Touch(stats.GPU, addr, size)
	}
}

// CPUThread is one CPU software thread's execution context.
type CPUThread struct {
	s   *System
	tr  isa.Trace
	tid int
	n   int
}

// TID reports this software thread's index within the task.
func (c *CPUThread) TID() int { return c.tid }

// Threads reports the task's software thread count.
func (c *CPUThread) Threads() int { return c.n }

// FLOP records n arithmetic operations.
func (c *CPUThread) FLOP(n int) {
	if n > 0 {
		c.rec(isa.Op{Kind: isa.OpCompute, N: uint32(n)})
	}
}

func (c *CPUThread) rec(op isa.Op) { c.tr = append(c.tr, op) }
func (c *CPUThread) sys() *System  { return c.s }

func (c *CPUThread) touch(addr memory.Addr, size int) {
	c.s.Col.Touch(stats.CPU, addr, size)
}

// record is the common instrumentation path for typed accesses.
func record[T any](q Rec, b *Buf[T], i int, kind isa.OpKind) {
	es := b.ElemSize()
	addr := b.A.Base + memory.Addr(i*es)
	q.rec(isa.Op{Kind: kind, Addr: addr, N: uint32(es)})
	q.touch(addr, es)
}

// LdN reads count consecutive elements of b starting at i as one access
// (split into line transactions by the timing models). Returns the slice.
func LdN[T any](q Rec, b *Buf[T], i, count int) []T {
	if count <= 0 {
		return nil
	}
	es := b.ElemSize()
	addr := b.A.Base + memory.Addr(i*es)
	q.rec(isa.Op{Kind: isa.OpLoad, Addr: addr, N: uint32(count * es)})
	q.touch(addr, count*es)
	return b.V[i : i+count]
}

// StN writes count consecutive elements of b starting at i from src as one
// access.
func StN[T any](q Rec, b *Buf[T], i int, src []T) {
	if len(src) == 0 {
		return
	}
	es := b.ElemSize()
	addr := b.A.Base + memory.Addr(i*es)
	q.rec(isa.Op{Kind: isa.OpStore, Addr: addr, N: uint32(len(src) * es)})
	q.touch(addr, len(src)*es)
	copy(b.V[i:], src)
}

// Ld reads element i of b, recording the access.
func Ld[T any](q Rec, b *Buf[T], i int) T {
	record(q, b, i, isa.OpLoad)
	return b.V[i]
}

// LdDep reads element i of b as a dependent (serializing) load — use for
// pointer chasing on the CPU. On the GPU it behaves like Ld.
func LdDep[T any](q Rec, b *Buf[T], i int) T {
	record(q, b, i, isa.OpLoadDep)
	return b.V[i]
}

// St writes element i of b, recording the access.
func St[T any](q Rec, b *Buf[T], i int, v T) {
	record(q, b, i, isa.OpStore)
	b.V[i] = v
}

// AtomicAddF32 adds v to element i of b atomically (functionally immediate;
// recorded as a read-modify-write). Returns the old value.
func AtomicAddF32(q Rec, b *Buf[float32], i int, v float32) float32 {
	record(q, b, i, isa.OpAtomic)
	old := b.V[i]
	b.V[i] += v
	return old
}

// AtomicAddI32 adds v to element i of b atomically. Returns the old value.
func AtomicAddI32(q Rec, b *Buf[int32], i int, v int32) int32 {
	record(q, b, i, isa.OpAtomic)
	old := b.V[i]
	b.V[i] += v
	return old
}

// AtomicMinI32 lowers element i of b to v if smaller. Returns the old value.
func AtomicMinI32(q Rec, b *Buf[int32], i int, v int32) int32 {
	record(q, b, i, isa.OpAtomic)
	old := b.V[i]
	if v < old {
		b.V[i] = v
	}
	return old
}

// AtomicCASI32 compares-and-swaps element i of b. Returns the old value.
func AtomicCASI32(q Rec, b *Buf[int32], i int, want, repl int32) int32 {
	record(q, b, i, isa.OpAtomic)
	old := b.V[i]
	if old == want {
		b.V[i] = repl
	}
	return old
}
