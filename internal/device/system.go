// Package device assembles the simulated machine and exposes the CUDA-like
// runtime that benchmarks are written against: typed buffers, memcpy, GPU
// kernel launch with grid/block dimensions, multi-threaded CPU tasks, and
// dependency handles that subsume both CUDA streams (discrete system) and
// in-memory "data ready" signal variables (heterogeneous processor).
//
// Benchmarks execute functionally (real Go data, real results) while an
// access-recording layer produces the traces the timing models replay. All
// functional effects happen in dependency order during simulation, so
// results are deterministic and independent of the timing configuration.
package device

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpucore"
	"repro/internal/gpucore"
	"repro/internal/memory"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// System is one simulated machine plus the run state of a benchmark
// executing on it.
type System struct {
	Cfg config.System
	Eng *sim.Engine
	Col *core.Collector
	Ctr *stats.Counters
	// Tr is the run's trace sink, nil unless the system was built with
	// WithTrace. Every emission site is nil-safe, so untraced runs pay
	// only a nil check.
	Tr *trace.Recorder

	cpuSpace *memory.Space // discrete only; hetero aliases sharedSpace
	gpuSpace *memory.Space

	cpuDRAM *memory.DRAM // discrete only
	gpuDRAM *memory.DRAM // GPU memory, or the single shared memory

	cpuFabric *memory.Fabric
	gpuFabric *memory.Fabric // discrete only; hetero uses cpuFabric for all

	cores   []*cpucore.Core
	coreL1  []*memory.Cache
	coreL2  []*memory.Cache
	gpu     *gpucore.GPU
	gpuL1s  []*memory.Cache
	gpuL2   *memory.Cache
	dma     *pcie.Engine // discrete only
	vmm     *vm.Manager
	hostMux sim.BusyModel // serializes host-side launch overhead

	// CPU core pool scheduling.
	freeCores []int
	taskQueue []*cpuWork

	roiOpen bool

	// Intra-run parallel engine state. parReq is the requested worker count
	// (WithParallel); par is nil for serial runs (including parallel
	// requests that fell back); genShards are the per-worker footprint
	// accumulators merged into Col at Report time.
	parReq    int
	par       *sim.ParEngine
	genShards []*core.FootprintShard

	// Result holds functional output digests the benchmark publishes with
	// AddResult. Correctness tests compare digests across run modes (every
	// organization of a benchmark must compute the same answer) and against
	// pure-Go reference implementations.
	Result []float64
}

// AddResult appends functional output digests for correctness checking.
func (s *System) AddResult(vals ...float64) { s.Result = append(s.Result, vals...) }

// ChecksumF32 digests a float32 slice (plain sum — enough to catch
// functional divergence between organizations).
func ChecksumF32(v []float32) float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x)
	}
	return acc
}

// ChecksumI32 digests an int32 slice.
func ChecksumI32(v []int32) float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x)
	}
	return acc
}

// Option customizes system construction.
type Option func(*System)

// WithTrace attaches a trace recorder: every hardware model in the built
// system emits its events into tr.
func WithTrace(tr *trace.Recorder) Option {
	return func(s *System) { s.Tr = tr }
}

// WithParallel requests par total workers of intra-run parallelism
// (timing thread included): 0 or 1 is the serial engine, 2 adds a trace
// generation worker, 3+ adds pre-processing workers. Results, counters,
// traces, and journals are byte-identical for every value — par is a
// scheduling knob, like a sweep's -jobs. A config with zero lookahead
// falls back to serial and records the fallback.
func WithParallel(par int) Option {
	return func(s *System) { s.parReq = par }
}

// NewSystem builds and wires a machine from a validated configuration. An
// invalid configuration aborts with a *UsageError (use NewSystemErr for a
// plain error return).
func NewSystem(cfg config.System, opts ...Option) *System {
	s, err := NewSystemErr(cfg, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemErr builds and wires a machine, returning an error rather than
// aborting on an invalid configuration — the entry point the fault-tolerant
// harness uses.
func NewSystemErr(cfg config.System, opts ...Option) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, &UsageError{Op: "NewSystem", Msg: "invalid config: " + err.Error()}
	}
	s := &System{
		Cfg: cfg,
		Eng: sim.NewEngine(),
		Ctr: stats.NewCounters(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.Col = core.NewCollector(cfg.LineBytes, cfg.GPUMem.BytesPerSec)
	s.Col.Tr = s.Tr
	s.Col.HW = s.Ctr

	line := cfg.LineBytes
	switchLat := sim.Tick(cfg.SwitchLatNs * float64(sim.Nanosecond))
	c2c := sim.Tick(cfg.CacheToCacheNs * float64(sim.Nanosecond))

	// Memories and fabrics.
	const gig = 1 << 30
	if cfg.Kind == config.Discrete {
		s.cpuSpace = memory.NewSpace("cpu-mem", 0, 4*gig, line)
		s.gpuSpace = memory.NewSpace("gpu-mem", 4*gig, 4*gig, line)
		s.cpuDRAM = memory.NewDRAM("ddr3", cfg.CPUMem.Channels, cfg.CPUMem.BytesPerSec,
			sim.Tick(cfg.CPUMem.LatencyNs*float64(sim.Nanosecond)), line, s.Ctr)
		s.gpuDRAM = memory.NewDRAM("gddr5", cfg.GPUMem.Channels, cfg.GPUMem.BytesPerSec,
			sim.Tick(cfg.GPUMem.LatencyNs*float64(sim.Nanosecond)), line, s.Ctr)
		s.cpuFabric = memory.NewFabric(memory.FabricConfig{
			Name: "cpu-switch", Lat: switchLat, Serv: line6PortServ(cfg), Coherent: true,
			C2CLat: 20 * sim.Nanosecond, DRAM: s.cpuDRAM, Counters: s.Ctr,
		})
		s.gpuFabric = memory.NewFabric(memory.FabricConfig{
			Name: "gpu-switch", Lat: switchLat, Serv: danceHallServ(cfg), Coherent: false,
			DRAM: s.gpuDRAM, Counters: s.Ctr,
		})
	} else {
		shared := memory.NewSpace("shared-mem", 0, 8*gig, line)
		s.cpuSpace, s.gpuSpace = shared, shared
		s.gpuDRAM = memory.NewDRAM("gddr5", cfg.GPUMem.Channels, cfg.GPUMem.BytesPerSec,
			sim.Tick(cfg.GPUMem.LatencyNs*float64(sim.Nanosecond)), line, s.Ctr)
		s.cpuFabric = memory.NewFabric(memory.FabricConfig{
			Name: "het-switch", Lat: switchLat, Serv: hetSwitchServ(cfg), Coherent: !cfg.NoCoherence,
			C2CLat: c2c, DRAM: s.gpuDRAM, Counters: s.Ctr,
		})
		s.gpuFabric = s.cpuFabric
	}
	s.gpuDRAM.OnAccess = s.Col.OnDRAM
	if s.cpuDRAM != nil {
		s.cpuDRAM.OnAccess = s.Col.OnDRAM
	}

	// Virtual memory. An injected handler fault multiplies service latency.
	s.vmm = vm.New(vm.Config{
		PageBytes:     cfg.VM.PageBytes,
		GPUFaultToCPU: cfg.VM.GPUFaultToCPU,
		CPUFaultServ:  sim.Tick(cfg.VM.CPUFaultServUs * float64(sim.Microsecond)),
		GPUFaultServ:  sim.Tick(cfg.VM.GPUFaultServNs * float64(sim.Nanosecond)),
		ServMult:      cfg.Faults.FaultLatMult,
	}, s.Ctr)
	s.vmm.Tr = s.Tr
	if cfg.VM.GPUFaultToCPU {
		s.vmm.OnCPUHandled = func(start, end sim.Tick, page memory.Addr) {
			s.Col.AddActivityNamed(stats.CPU, "page-fault handler", start, end)
			if cfg.VM.HandlerClearPage {
				// The handler zeroes the page: CPU-attributed DRAM writes.
				for a := page; a < page+memory.Addr(cfg.VM.PageBytes); a += memory.Addr(line) {
					s.cpuFabric.Access(start, memory.Request{Addr: a, Write: true, Writeback: true, Comp: stats.CPU, SrcID: -1})
					s.Col.Touch(stats.CPU, a, line)
				}
			}
		}
	}

	// CPU cores and their private caches.
	cpuClkServ := sim.NewClock(cfg.CPU.ClockHz).Cycles(1)
	for i := 0; i < cfg.CPU.Cores; i++ {
		l2 := memory.NewCache(memory.CacheConfig{
			Name: fmt.Sprintf("cpu%d.l2", i), SizeBytes: cfg.CPU.L2Bytes, Assoc: cfg.CPU.L2Assoc,
			LineBytes: line, Policy: memory.WriteBack,
			HitLat: sim.NewClock(cfg.CPU.ClockHz).Cycles(int64(cfg.CPU.L2LatCycles)),
			Serv:   cpuClkServ, Next: s.cpuFabric, SrcID: i, Counters: s.Ctr,
		})
		l1 := memory.NewCache(memory.CacheConfig{
			Name: fmt.Sprintf("cpu%d.l1d", i), SizeBytes: cfg.CPU.L1DBytes, Assoc: cfg.CPU.L1Assoc,
			LineBytes: line, Policy: memory.WriteBack,
			HitLat: sim.NewClock(cfg.CPU.ClockHz).Cycles(int64(cfg.CPU.L1LatCycles)),
			Serv:   cpuClkServ, Next: l2, SrcID: i, Counters: s.Ctr,
		})
		s.coreL1 = append(s.coreL1, l1)
		s.coreL2 = append(s.coreL2, l2)
		s.cpuFabric.Attach(memory.ProbeGroup{SrcID: i, Caches: []*memory.Cache{l2, l1}})
		s.cores = append(s.cores, &cpucore.Core{
			ID: i, Eng: s.Eng, Clk: sim.NewClock(cfg.CPU.ClockHz),
			IssueWidth: cfg.CPU.IssueWidth, FLOPsPerCycle: cfg.CPU.FLOPsPerCycle,
			MLP: cfg.CPU.MLP, Mem: l1, SrcID: i, VM: s.vmm, Ctr: s.Ctr, LineBytes: line,
			Tr: s.Tr,
		})
		s.freeCores = append(s.freeCores, i)
	}

	// GPU caches and SMs.
	gclk := sim.NewClock(cfg.GPU.ClockHz)
	s.gpuL2 = memory.NewCache(memory.CacheConfig{
		Name: "gpu.l2", SizeBytes: cfg.GPU.L2Bytes, Assoc: cfg.GPU.L2Assoc, LineBytes: line,
		Policy: memory.WriteBack, HitLat: gclk.Cycles(int64(cfg.GPU.L2LatCycles)),
		Serv: gclk.Cycles(1), Banks: cfg.GPU.L2Banks,
		Next: s.gpuFabric, SrcID: gpucore.SrcID(), Counters: s.Ctr,
	})
	if cfg.Kind == config.Hetero {
		s.cpuFabric.Attach(memory.ProbeGroup{SrcID: gpucore.SrcID(), Caches: []*memory.Cache{s.gpuL2}})
	}
	for i := 0; i < cfg.GPU.SMs; i++ {
		l1 := memory.NewCache(memory.CacheConfig{
			Name: fmt.Sprintf("gpu%d.l1", i), SizeBytes: cfg.GPU.L1Bytes, Assoc: cfg.GPU.L1Assoc,
			LineBytes: line, Policy: memory.WriteThroughNoAlloc,
			HitLat: gclk.Cycles(int64(cfg.GPU.L1LatCycles)), Serv: gclk.Cycles(1),
			Next: s.gpuL2, SrcID: gpucore.SrcID(), Counters: s.Ctr,
		})
		s.gpuL1s = append(s.gpuL1s, l1)
	}
	s.gpu = gpucore.New(s.Eng, cfg.GPU, s.gpuL1s, s.vmm, line, s.Ctr)
	s.gpu.Tr = s.Tr

	// Intra-run parallelism: derive the lookahead window from the config's
	// minimum cross-domain latency; a zero window means no amount of
	// pipelining is provably safe, so the run stays serial.
	if s.parReq >= 2 {
		if la := sim.Tick(cfg.LookaheadNs() * float64(sim.Nanosecond)); la <= 0 {
			sim.RecordSerialFallback(sim.FallbackZeroLookahead)
		} else {
			// The window (jobs the pipeline may run ahead) is sized to the
			// device's resident-CTA capacity: generation further ahead than
			// the SMs could possibly consume buys nothing and holds traces
			// live.
			window := cfg.GPU.MaxCTAsPerSM * cfg.GPU.SMs * 2
			if window < 8 {
				window = 8
			}
			if window > 512 {
				window = 512
			}
			s.par = sim.NewParEngine(s.parReq, window, la)
			s.gpu.UsePar(s.par)
			n := s.par.PreWorkers()
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				s.genShards = append(s.genShards, core.NewFootprintShard(line))
			}
		}
	}

	// Copy engine: PCIe DMA in the discrete system. The heterogeneous
	// processor keeps an in-memory copy path for the few residual memcpys of
	// limited-copy benchmarks; a memory-to-memory DMA is bound by the shared
	// GDDR5 doing a read and a write per line, so its effective rate is a
	// fraction of peak.
	if cfg.Kind == config.Discrete {
		s.dma = pcie.New(s.Eng, cfg.PCIe.BytesPerSec,
			sim.Tick(cfg.PCIe.LatencyUs*float64(sim.Microsecond)), line, s.Ctr)
	} else {
		s.dma = pcie.New(s.Eng, cfg.GPUMem.BytesPerSec/4,
			1*sim.Microsecond, line, s.Ctr)
	}

	// Remaining injected hardware faults (the VM fault multiplier is wired
	// above): a throttled copy-engine link and a stalled channel of the
	// GPU/shared memory.
	if cfg.Faults.PCIeThrottled() {
		s.dma.Derate(cfg.Faults.PCIeBWFrac)
	}
	if cfg.Faults.DRAMStalled() {
		s.gpuDRAM.StallChannel(cfg.Faults.DRAMStallChannel,
			sim.Tick(cfg.Faults.DRAMStallStartUs*float64(sim.Microsecond)),
			sim.Tick(cfg.Faults.DRAMStallEndUs*float64(sim.Microsecond)))
	}
	s.dma.Tr = s.Tr
	for _, c := range s.allCaches() {
		c.Tr = s.Tr
	}
	return s, nil
}

// Unified reports whether CPU and GPU share physical memory.
func (s *System) Unified() bool { return s.Cfg.Unified() }

// line6PortServ sizes the discrete CPU switch: high bandwidth, effectively
// unthrottled relative to 24 GB/s DDR3.
func line6PortServ(cfg config.System) sim.Tick {
	return sim.Tick(float64(cfg.LineBytes) / 200e9 * float64(sim.Second))
}

// danceHallServ sizes the GPU L1-L2 dance-hall: far above GDDR5 bandwidth.
func danceHallServ(cfg config.System) sim.Tick {
	return sim.Tick(float64(cfg.LineBytes) / 500e9 * float64(sim.Second))
}

// hetSwitchServ sizes the heterogeneous processor's 12-port switch: high
// bandwidth so the shared GDDR5 remains the constraint.
func hetSwitchServ(cfg config.System) sim.Tick {
	return sim.Tick(float64(cfg.LineBytes) / 500e9 * float64(sim.Second))
}

// Release shuts down the parallel engine's workers, if any. Nil-safe and
// idempotent; the harness defers it so panicking runs (budget trips,
// interrupts) cannot leak worker goroutines.
func (s *System) Release() {
	if s != nil && s.par != nil {
		s.par.Release()
	}
}

// Report builds the analysis report for the finished run. For parallel
// runs it first quiesces the workers and merges their footprint shards
// into the collector — a commutative per-line set union, so the merged
// footprint is identical for every worker count.
func (s *System) Report(bench, mode string) *core.Report {
	if s.par != nil {
		s.par.Release()
		for _, sh := range s.genShards {
			s.Col.MergeFootprint(sh)
		}
		s.genShards = nil
	}
	return core.BuildReport(s.Col, bench, s.Cfg.Kind.String(), mode,
		s.Cfg.CPU.PeakFLOPs(), s.Cfg.GPU.PeakFLOPs())
}

// flushGPUL1s writes back and clears the non-coherent per-SM L1s; called at
// kernel boundaries.
func (s *System) flushGPUL1s(now sim.Tick) {
	for _, l1 := range s.gpuL1s {
		l1.FlushAll(now)
	}
}
