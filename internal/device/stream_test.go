package device

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

func scaleKernel(name string, src, dst *Buf[float32], grid, block int) KernelSpec {
	return KernelSpec{
		Name: name, Grid: grid, Block: block,
		Func: func(th *Thread) {
			i := th.Global()
			v := Ld(th, src, i)
			th.FLOP(1)
			St(th, dst, i, v*2)
		},
	}
}

func TestStreamOrdersSubmissions(t *testing.T) {
	s := discrete()
	d := AllocBuf[float32](s, 4096, "d", Device)
	st := s.NewStream("s0")
	h1 := st.Launch(scaleKernel("k1", d, d, 16, 256))
	h2 := st.Launch(scaleKernel("k2", d, d, 16, 256))
	h3 := st.CPUTask(CPUTaskSpec{Name: "c", Threads: 1, Func: func(c *CPUThread) { c.FLOP(1) }})
	st.Sync()
	if !(h1.End() < h2.End() && h2.End() < h3.End()) {
		t.Fatalf("stream ops out of order: %v %v %v", h1.End(), h2.End(), h3.End())
	}
	if st.Tail() != h3 {
		t.Fatal("tail is not the last submission")
	}
}

func TestStreamCopyMovesData(t *testing.T) {
	s := discrete()
	h := AllocBuf[float32](s, 1024, "h", Host)
	d := AllocBuf[float32](s, 1024, "d", Device)
	o := AllocBuf[float32](s, 1024, "o", Host)
	for i := range h.V {
		h.V[i] = float32(i)
	}
	st := s.NewStream("cp")
	Copy(st, d, h)
	CopyRange(st, o, 100, d, 100, 200)
	st.Sync()
	if o.V[150] != 150 || o.V[99] != 0 {
		t.Fatalf("stream copies wrong: %v %v", o.V[150], o.V[99])
	}
}

func TestWaitEventJoinsStreams(t *testing.T) {
	s := discrete()
	d := AllocBuf[float32](s, 4096, "d", Device)
	e := AllocBuf[float32](s, 4096, "e", Device)
	a := s.NewStream("a")
	b := s.NewStream("b")
	ha := a.Launch(scaleKernel("prod", d, d, 16, 256))
	ev := a.Record("prod-done")
	b.WaitEvent(ev)
	hb := b.Launch(scaleKernel("cons", e, e, 16, 256))
	s.WaitStreams(a, b)
	if hb.End() <= ha.End() {
		t.Fatalf("consumer (%v) must end after producer (%v)", hb.End(), ha.End())
	}
	if !ev.Done() || ev.Handle().End() != ha.End() {
		t.Fatal("event must carry the producer completion")
	}
}

func TestEmptyStreamEventAndTail(t *testing.T) {
	s := discrete()
	st := s.NewStream("empty")
	if ev := st.Record("nothing"); !ev.Done() {
		t.Fatal("event on an empty stream must be complete")
	}
	if !st.Tail().Done() {
		t.Fatal("tail of an empty stream must be complete")
	}
	st.Sync() // must not panic or deadlock
}

func TestStreamTraceLanes(t *testing.T) {
	tr := trace.New()
	s := NewSystem(config.DiscreteGPU(), WithTrace(tr))
	d := AllocBuf[float32](s, 4096, "d", Device)
	st := s.NewStream("lane0")
	st.Launch(scaleKernel("k", d, d, 16, 256))
	st.Sync()
	found := false
	for _, e := range tr.Events() {
		if e.Track == "stream lane0" && e.Cat == "stream" && e.Kind == trace.Span {
			if e.Activity {
				t.Fatal("stream spans must not feed the busy timeline")
			}
			if e.End <= e.Start {
				t.Fatalf("degenerate stream span [%v,%v)", e.Start, e.End)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no span on the stream's trace lane")
	}
}

// pipelineRun pushes n elements through a depth-slot chunked
// upload→scale→download pipeline and checks the functional result.
func pipelineRun(t *testing.T, depth, chunks, chunkElems, tailElems int) *System {
	t.Helper()
	s := discrete()
	n := (chunks-1)*chunkElems + tailElems
	in := AllocBuf[float32](s, chunks*chunkElems, "in", Host)
	out := AllocBuf[float32](s, chunks*chunkElems, "out", Host)
	slots := depth
	if slots <= 0 {
		slots = chunks
	}
	dbuf := AllocBuf[float32](s, slots*chunkElems, "dbuf", Device)
	for i := 0; i < n; i++ {
		in.V[i] = float32(i)
	}
	elems := func(c int) int {
		if c == chunks-1 {
			return tailElems
		}
		return chunkElems
	}
	s.BeginROI()
	done := s.Pipeline(PipelineSpec{
		Name: "scale", Chunks: chunks, Depth: depth,
		H2D: func(c int, deps ...*Handle) *Handle {
			if elems(c) == 0 {
				return nil
			}
			return MemcpyRangeAsync(s, dbuf, (c%slots)*chunkElems, in, c*chunkElems, elems(c), deps...)
		},
		Kernel: func(c int, deps ...*Handle) *Handle {
			if elems(c) == 0 {
				return nil
			}
			slot := c % slots
			return s.LaunchAsync(KernelSpec{
				Name: "scale", Grid: (elems(c) + 255) / 256, Block: 256,
				Func: func(th *Thread) {
					i := th.Global()
					if i >= elems(c) {
						return
					}
					v := Ld(th, dbuf, slot*chunkElems+i)
					th.FLOP(1)
					St(th, dbuf, slot*chunkElems+i, v*2)
				},
			}, deps...)
		},
		D2H: func(c int, deps ...*Handle) *Handle {
			if elems(c) == 0 {
				return nil
			}
			return MemcpyRangeAsync(s, out, c*chunkElems, dbuf, (c%slots)*chunkElems, elems(c), deps...)
		},
	})
	s.Wait(done)
	s.EndROI()
	for i := 0; i < n; i++ {
		if out.V[i] != float32(i)*2 {
			t.Fatalf("out[%d] = %v, want %v", i, out.V[i], float32(i)*2)
		}
	}
	return s
}

func TestPipelineDoubleBuffer(t *testing.T)   { pipelineRun(t, 2, 8, 1024, 1024) }
func TestPipelineTripleBuffer(t *testing.T)   { pipelineRun(t, 3, 8, 1024, 1024) }
func TestPipelineUnlimitedDepth(t *testing.T) { pipelineRun(t, 0, 4, 1024, 1024) }
func TestPipelineFewerChunksThanDepth(t *testing.T) {
	pipelineRun(t, 3, 2, 1024, 1024)
	pipelineRun(t, 2, 1, 1024, 1024)
}
func TestPipelineSingleChunk(t *testing.T)  { pipelineRun(t, 0, 1, 2048, 2048) }
func TestPipelineZeroSizeTail(t *testing.T) { pipelineRun(t, 2, 5, 1024, 0) }

func TestPipelineOverlapBeatsSerial(t *testing.T) {
	// The double-buffered pipeline must beat a serialized
	// upload→kernel→download per chunk on the same work.
	over := pipelineRun(t, 2, 8, 4096, 4096).Report("t", "pipe").ROI

	s := discrete()
	chunks, chunkElems := 8, 4096
	in := AllocBuf[float32](s, chunks*chunkElems, "in", Host)
	out := AllocBuf[float32](s, chunks*chunkElems, "out", Host)
	dbuf := AllocBuf[float32](s, chunkElems, "dbuf", Device)
	for i := range in.V {
		in.V[i] = float32(i)
	}
	s.BeginROI()
	for c := 0; c < chunks; c++ {
		s.Wait(MemcpyRangeAsync(s, dbuf, 0, in, c*chunkElems, chunkElems))
		s.Launch(scaleKernel("scale", dbuf, dbuf, chunkElems/256, 256))
		s.Wait(MemcpyRangeAsync(s, out, c*chunkElems, dbuf, 0, chunkElems))
	}
	s.EndROI()
	serial := s.Report("t", "serial").ROI
	if over >= serial {
		t.Fatalf("pipeline (%v) did not beat serial (%v)", over, serial)
	}
}

func TestPipelineValidation(t *testing.T) {
	s := discrete()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("%s: no panic", name)
			} else if _, ok := r.(*UsageError); !ok {
				t.Fatalf("%s: panic %v is not a UsageError", name, r)
			}
		}()
		fn()
	}
	expectPanic("no chunks", func() {
		s.Pipeline(PipelineSpec{Name: "p", Chunks: 0, Kernel: func(c int, deps ...*Handle) *Handle { return nil }})
	})
	expectPanic("no kernel", func() {
		s.Pipeline(PipelineSpec{Name: "p", Chunks: 1})
	})
}

func TestPipelineTraceLanesPerSlot(t *testing.T) {
	tr := trace.New()
	s := NewSystem(config.DiscreteGPU(), WithTrace(tr))
	d := AllocBuf[float32](s, 2*1024, "d", Device)
	done := s.DoubleBuffer(PipelineSpec{
		Name: "p", Chunks: 4,
		Kernel: func(c int, deps ...*Handle) *Handle {
			return s.LaunchAsync(scaleKernel("k", d, d, 4, 256), deps...)
		},
	})
	s.Wait(done)
	lanes := map[string]int{}
	for _, e := range tr.Events() {
		if e.Cat == "pipeline" && e.Kind == trace.Span {
			lanes[e.Track]++
		}
	}
	// Depth 2 → exactly two slot lanes, two kernel spans each.
	if len(lanes) != 2 || lanes["pipeline p slot 0"] != 2 || lanes["pipeline p slot 1"] != 2 {
		t.Fatalf("pipeline lanes = %v", lanes)
	}
}

func TestPersistentKernelFunctionalAndFLOPs(t *testing.T) {
	s := discrete()
	n := 8192
	d := AllocBuf[float32](s, n, "d", Device)
	for i := range d.V {
		d.V[i] = float32(i)
	}
	s.BeginROI()
	pk := s.LaunchPersistent(PersistentKernelSpec{
		Name: "pscale", Block: 256,
		Func: func(th *Thread) {
			i := th.Global()
			v := Ld(th, d, i)
			th.FLOP(1)
			St(th, d, i, v*2)
		},
	})
	batches := 4
	per := n / 256 / batches
	var feeds []*Handle
	for b := 0; b < batches; b++ {
		feeds = append(feeds, pk.Feed(per))
	}
	s.Wait(pk.Close())
	s.EndROI()
	for i := 0; i < n; i++ {
		if d.V[i] != float32(i)*2 {
			t.Fatalf("d[%d] = %v", i, d.V[i])
		}
	}
	for i, f := range feeds {
		if !f.Done() {
			t.Fatalf("feed %d not complete", i)
		}
		if i > 0 && f.End() < feeds[i-1].End() {
			t.Fatalf("feed %d ended before feed %d", i, i-1)
		}
	}
	rep := s.Report("t", "persistent")
	if rep.FLOPs[stats.GPU] != uint64(n) {
		t.Fatalf("GPU flops = %d, want %d", rep.FLOPs[stats.GPU], n)
	}
}

func TestPersistentAmortizesLaunches(t *testing.T) {
	// N chained tiny kernels pay N host launches; one persistent kernel with
	// N feeds pays one. The persistent run must show less CPU launch
	// activity and a lower serial floor.
	chunks := 8
	// CTA indices are global across feeds in the persistent version, so the
	// kernel works on a fixed 512-element window in both versions.
	kern := func(d *Buf[float32]) func(th *Thread) {
		return func(th *Thread) {
			i := th.Global() % 512
			v := Ld(th, d, i)
			th.FLOP(1)
			St(th, d, i, v+1)
		}
	}

	s1 := discrete()
	d1 := AllocBuf[float32](s1, 2048, "d", Device)
	s1.BeginROI()
	var prev *Handle
	for c := 0; c < chunks; c++ {
		var deps []*Handle
		if prev != nil {
			deps = append(deps, prev)
		}
		prev = s1.LaunchAsync(KernelSpec{Name: "k", Grid: 2, Block: 256, Func: kern(d1)}, deps...)
	}
	s1.Wait(prev)
	s1.EndROI()
	repLaunches := s1.Report("t", "launches")

	s2 := discrete()
	d2 := AllocBuf[float32](s2, 2048, "d", Device)
	s2.BeginROI()
	pk := s2.LaunchPersistent(PersistentKernelSpec{Name: "k", Block: 256, Func: kern(d2)})
	var prev2 *Handle
	for c := 0; c < chunks; c++ {
		var deps []*Handle
		if prev2 != nil {
			deps = append(deps, prev2)
		}
		prev2 = pk.Feed(2, deps...)
	}
	s2.Wait(pk.Close())
	s2.EndROI()
	repPersistent := s2.Report("t", "persistent")

	if repPersistent.CPUActive >= repLaunches.CPUActive {
		t.Fatalf("persistent CPU launch activity %v not below per-chunk launches %v",
			repPersistent.CPUActive, repLaunches.CPUActive)
	}
	if repPersistent.FLOPs[stats.GPU] != repLaunches.FLOPs[stats.GPU] {
		t.Fatalf("flops diverged: %d vs %d", repPersistent.FLOPs[stats.GPU], repLaunches.FLOPs[stats.GPU])
	}
}

func TestPersistentCloseWithoutFeeds(t *testing.T) {
	s := discrete()
	pk := s.LaunchPersistent(PersistentKernelSpec{Name: "idle", Block: 32, Func: func(th *Thread) {}})
	s.Wait(pk.Close())
	if !pk.Done().Done() {
		t.Fatal("unfed persistent kernel never drained")
	}
}

func TestPersistentUsageErrors(t *testing.T) {
	s := discrete()
	pk := s.LaunchPersistent(PersistentKernelSpec{Name: "p", Block: 32, Func: func(th *Thread) {}})
	s.Wait(pk.Close())
	for name, fn := range map[string]func(){
		"feed after close": func() { pk.Feed(1) },
		"double close":     func() { pk.Close() },
		"zero block":       func() { s.LaunchPersistent(PersistentKernelSpec{Name: "z", Func: func(th *Thread) {}}) },
	} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: no panic", name)
				} else if _, ok := r.(*UsageError); !ok {
					t.Fatalf("%s: panic %v is not a UsageError", name, r)
				}
			}()
			fn()
		}()
	}
}
