package device

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func discrete() *System { return NewSystem(config.DiscreteGPU()) }
func hetero() *System   { return NewSystem(config.HeteroProcessor()) }

func TestAllocAndBufferViews(t *testing.T) {
	s := discrete()
	h := AllocBuf[float32](s, 1024, "h", Host)
	d := AllocBuf[float32](s, 1024, "d", Device)
	if h.Len() != 1024 || h.ElemSize() != 4 {
		t.Fatalf("len/elem = %d/%d", h.Len(), h.ElemSize())
	}
	if h.A.Base%128 != 0 || d.A.Base%128 != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if h.A.Base >= d.A.Base {
		t.Fatal("host and device spaces overlap")
	}
	m := AllocBuf[float32](s, 16, "m", Host, Misaligned())
	if m.A.Base%128 == 0 {
		t.Fatal("misaligned alloc is aligned")
	}
}

func TestHeteroSharedSpace(t *testing.T) {
	s := hetero()
	h := AllocBuf[float32](s, 16, "h", Host)
	d := AllocBuf[float32](s, 16, "d", Device)
	// Same space: consecutive allocations.
	if d.A.Base-h.A.Base >= 1<<30 {
		t.Fatal("hetero allocations not in one space")
	}
	if !s.Unified() {
		t.Fatal("hetero must be unified")
	}
}

func TestMemcpyMovesDataAndTime(t *testing.T) {
	s := discrete()
	h := AllocBuf[float32](s, 1<<16, "h", Host)
	d := AllocBuf[float32](s, 1<<16, "d", Device)
	for i := range h.V {
		h.V[i] = float32(i)
	}
	s.BeginROI()
	Memcpy(s, d, h)
	s.EndROI()

	if d.V[100] != 100 || d.V[65535] != 65535 {
		t.Fatal("memcpy did not move data")
	}
	// 256kB over 8 GB/s ~= 32.8us.
	rep := s.Report("t", "copy")
	if rep.CopyActive <= 0 {
		t.Fatal("no copy activity recorded")
	}
	us := rep.CopyActive.Micros()
	if us < 25 || us > 50 {
		t.Fatalf("copy time = %v us, want ~33", us)
	}
	if rep.DRAMAccesses[stats.Copy] == 0 {
		t.Fatal("copy DRAM accesses missing")
	}
}

func TestKernelFunctionalAndTiming(t *testing.T) {
	for _, sys := range []*System{discrete(), hetero()} {
		s := sys
		n := 4096
		a := AllocBuf[float32](s, n, "a", Host)
		b := AllocBuf[float32](s, n, "b", Host)
		for i := range a.V {
			a.V[i] = float32(i)
		}
		s.BeginROI()
		da, _ := ToDevice(s, a)
		db, _ := ToDevice(s, b)
		s.Drain()
		s.Launch(KernelSpec{
			Name: "scale", Grid: n / 256, Block: 256,
			Func: func(th *Thread) {
				i := th.Global()
				v := Ld(th, da, i)
				th.FLOP(1)
				St(th, db, i, v*2)
			},
		})
		FromDevice(s, b, db)
		s.EndROI()
		if b.V[1000] != 2000 {
			t.Fatalf("%s: kernel result wrong: %v", s.Cfg.Kind, b.V[1000])
		}
		rep := s.Report("scale", "x")
		if rep.GPUActive <= 0 {
			t.Fatalf("%s: no GPU activity", s.Cfg.Kind)
		}
		if rep.FLOPs[stats.GPU] != uint64(n) {
			t.Fatalf("%s: GPU flops = %d", s.Cfg.Kind, rep.FLOPs[stats.GPU])
		}
	}
}

func TestUnifiedEliminatesCopies(t *testing.T) {
	s := hetero()
	a := AllocBuf[float32](s, 1024, "a", Host)
	da, h := ToDevice(s, a)
	if da != a || h != nil {
		t.Fatal("ToDevice must alias in unified memory")
	}
	done := FromDevice(s, a, da)
	s.Wait(done)
	rep := s.Report("t", "limited")
	if rep.CopyActive != 0 {
		t.Fatal("unified system recorded copy activity")
	}
}

func TestCPUTaskRunsAndUsesCores(t *testing.T) {
	s := discrete()
	n := 1 << 14
	a := AllocBuf[float32](s, n, "a", Host)
	sum := make([]float64, 4)
	s.BeginROI()
	s.CPUTask(CPUTaskSpec{
		Name: "sum", Threads: 4,
		Func: func(c *CPUThread) {
			lo, hi := c.TID()*n/4, (c.TID()+1)*n/4
			var acc float64
			for i := lo; i < hi; i++ {
				acc += float64(Ld(c, a, i))
				c.FLOP(1)
			}
			sum[c.TID()] = acc
		},
	})
	s.EndROI()
	rep := s.Report("t", "x")
	if rep.CPUActive <= 0 {
		t.Fatal("no CPU activity")
	}
	if rep.FLOPs[stats.CPU] != uint64(n) {
		t.Fatalf("cpu flops = %d", rep.FLOPs[stats.CPU])
	}
}

func TestCPUTaskQueueingBeyondCores(t *testing.T) {
	s := discrete()
	// 8 threads on 4 cores must all run.
	ran := make([]bool, 8)
	s.CPUTask(CPUTaskSpec{
		Name: "q", Threads: 8,
		Func: func(c *CPUThread) {
			c.FLOP(1000)
			ran[c.TID()] = true
		},
	})
	for i, r := range ran {
		if !r {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestDependenciesOrderOps(t *testing.T) {
	s := hetero()
	a := AllocBuf[int32](s, 1024, "a", Host)
	var order []string
	h1 := s.LaunchAsync(KernelSpec{
		Name: "p", Grid: 4, Block: 256,
		Func: func(th *Thread) { St(th, a, th.Global(), int32(th.Global())) },
	})
	h1.whenDone(func(t sim.Tick) { order = append(order, "p") })
	h2 := s.CPUTaskAsync(CPUTaskSpec{
		Name: "c", Threads: 1,
		Func: func(c *CPUThread) {
			// Consumer sees producer's functional writes.
			if Ld(c, a, 512) != 512 {
				panic("dependency order violated functionally")
			}
		},
	}, h1)
	h2.whenDone(func(t sim.Tick) { order = append(order, "c") })
	s.Wait(h2)
	if len(order) != 2 || order[0] != "p" || order[1] != "c" {
		t.Fatalf("order = %v", order)
	}
	if h2.End() <= h1.End() {
		t.Fatal("consumer must end after producer")
	}
}

func TestAsyncOverlapBeatsSerial(t *testing.T) {
	// Two independent kernels launched async should overlap with a copy.
	mk := func() (*System, *Buf[float32], *Buf[float32], *Buf[float32]) {
		s := discrete()
		h := AllocBuf[float32](s, 1<<16, "h", Host)
		d1 := AllocBuf[float32](s, 1<<16, "d1", Device)
		d2 := AllocBuf[float32](s, 1<<16, "d2", Device)
		return s, h, d1, d2
	}
	kern := func(d *Buf[float32]) KernelSpec {
		return KernelSpec{Name: "k", Grid: 64, Block: 256, Func: func(th *Thread) {
			i := th.Global()
			v := Ld(th, d, i)
			th.FLOP(64)
			St(th, d, i, v+1)
		}}
	}
	// Serial: copy then kernel.
	s1, h1, d1, _ := mk()
	s1.BeginROI()
	s1.Wait(MemcpyAsync(s1, d1, h1))
	s1.Launch(kern(d1))
	s1.EndROI()
	serial := s1.Report("t", "serial").ROI

	// Overlapped: independent copy and kernel (kernel on other buffer).
	s2, h2, d21, d22 := mk()
	s2.BeginROI()
	hc := MemcpyAsync(s2, d21, h2)
	hk := s2.LaunchAsync(kern(d22))
	s2.Wait(hc)
	s2.Wait(hk)
	s2.EndROI()
	overlap := s2.Report("t", "overlap").ROI

	if overlap >= serial {
		t.Fatalf("no overlap: serial %v, overlap %v", serial, overlap)
	}
}

func TestDiscreteCopyInvalidatesCPUCache(t *testing.T) {
	s := discrete()
	n := 1 << 12 // 16kB fits in L1D
	hbuf := AllocBuf[float32](s, n, "h", Host)
	dbuf := AllocBuf[float32](s, n, "d", Device)

	// Warm CPU cache.
	s.CPUTask(CPUTaskSpec{Name: "warm", Threads: 1, Func: func(c *CPUThread) {
		for i := 0; i < n; i++ {
			Ld(c, hbuf, i)
		}
	}})
	missesBefore := s.Ctr.Get("cpu0.l1d.misses") + s.Ctr.Get("cpu1.l1d.misses") +
		s.Ctr.Get("cpu2.l1d.misses") + s.Ctr.Get("cpu3.l1d.misses")

	// D2H copy into the host buffer invalidates it everywhere.
	Memcpy(s, hbuf, dbuf)

	// Re-read: all misses again on whichever core runs it.
	s.CPUTask(CPUTaskSpec{Name: "reread", Threads: 1, Func: func(c *CPUThread) {
		for i := 0; i < n; i++ {
			Ld(c, hbuf, i)
		}
	}})
	missesAfter := s.Ctr.Get("cpu0.l1d.misses") + s.Ctr.Get("cpu1.l1d.misses") +
		s.Ctr.Get("cpu2.l1d.misses") + s.Ctr.Get("cpu3.l1d.misses")
	lines := uint64(n * 4 / 128)
	if missesAfter-missesBefore < lines {
		t.Fatalf("copy did not invalidate: %d new misses, want >= %d", missesAfter-missesBefore, lines)
	}
}

func TestHeteroCacheCoherentSharing(t *testing.T) {
	s := hetero()
	n := 1 << 10 // 4kB: fits easily in GPU L2
	b := AllocBuf[float32](s, n, "b", Host)
	s.BeginROI()
	// GPU produces.
	s.Launch(KernelSpec{Name: "prod", Grid: 4, Block: 256, Func: func(th *Thread) {
		St(th, b, th.Global(), float32(th.Global()))
	}})
	// CPU consumes immediately: should hit cache-to-cache, not DRAM.
	s.CPUTask(CPUTaskSpec{Name: "cons", Threads: 1, Func: func(c *CPUThread) {
		for i := 0; i < n; i++ {
			if Ld(c, b, i) != float32(i) {
				panic("wrong data")
			}
		}
	}})
	s.EndROI()
	if got := s.Ctr.Get("het-switch.c2c_transfers"); got == 0 {
		t.Fatal("expected cache-to-cache transfers in hetero")
	}
}

func TestGPUPageFaultsInHetero(t *testing.T) {
	s := hetero()
	// Device (untouched) allocation: GPU first touch faults to the CPU.
	d := AllocBuf[float32](s, 1<<14, "tmp", Device)
	s.BeginROI()
	s.Launch(KernelSpec{Name: "w", Grid: 16, Block: 256, Func: func(th *Thread) {
		St(th, d, th.Global(), 1)
	}})
	s.EndROI()
	if s.Ctr.Get("vm.gpu_faults_to_cpu") == 0 {
		t.Fatal("no GPU faults raised")
	}
	rep := s.Report("t", "x")
	if rep.CPUActive == 0 {
		t.Fatal("fault handling must show as CPU activity")
	}
}

func TestDiscreteNoGPUFaultCost(t *testing.T) {
	s := discrete()
	d := AllocBuf[float32](s, 1<<14, "tmp", Device)
	s.Launch(KernelSpec{Name: "w", Grid: 16, Block: 256, Func: func(th *Thread) {
		St(th, d, th.Global(), 1)
	}})
	if s.Ctr.Get("vm.gpu_faults_to_cpu") != 0 {
		t.Fatal("discrete GPU must not fault to CPU")
	}
}

func TestStageRecording(t *testing.T) {
	s := discrete()
	h := AllocBuf[float32](s, 1<<12, "h", Host)
	d := AllocBuf[float32](s, 1<<12, "d", Device)
	s.BeginROI()
	Memcpy(s, d, h)
	s.Launch(KernelSpec{Name: "k", Grid: 4, Block: 256, Func: func(th *Thread) {
		Ld(th, d, th.Global())
	}})
	s.CPUTask(CPUTaskSpec{Name: "c", Threads: 1, Func: func(c *CPUThread) { c.FLOP(10) }})
	s.EndROI()
	if len(s.Col.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(s.Col.Stages))
	}
	kinds := []core.StageKind{core.StageCopy, core.StageKernel, core.StageCPU}
	for i, st := range s.Col.Stages {
		if st.Kind != kinds[i] {
			t.Fatalf("stage %d kind = %v", i, st.Kind)
		}
		if st.End <= st.Start && st.Kind != core.StageCPU {
			t.Fatalf("stage %d has no duration", i)
		}
	}
}

func TestReportSanity(t *testing.T) {
	s := discrete()
	h := AllocBuf[float32](s, 1<<14, "h", Host)
	d := AllocBuf[float32](s, 1<<14, "d", Device)
	for i := range h.V {
		h.V[i] = 1
	}
	s.BeginROI()
	Memcpy(s, d, h)
	s.Launch(KernelSpec{Name: "k", Grid: 16, Block: 256, Func: func(th *Thread) {
		v := Ld(th, d, th.Global())
		th.FLOP(8)
		St(th, d, th.Global(), v+1)
	}})
	Memcpy(s, h, d)
	s.EndROI()
	rep := s.Report("sanity", "copy")
	if rep.ROI <= 0 {
		t.Fatal("no ROI")
	}
	if rep.FootprintBytes == 0 {
		t.Fatal("no footprint")
	}
	if rep.TotalDRAM() == 0 {
		t.Fatal("no DRAM accesses")
	}
	// The copy component must own a visible share of accesses.
	if rep.DRAMAccesses[stats.Copy] == 0 {
		t.Fatal("no copy accesses")
	}
	if rep.GPUUtil <= 0 || rep.GPUUtil > 1 {
		t.Fatalf("gpu util = %v", rep.GPUUtil)
	}
	if rep.Rco <= 0 || rep.Rco > rep.ROI {
		t.Fatalf("Rco = %v vs ROI %v", rep.Rco, rep.ROI)
	}
}
