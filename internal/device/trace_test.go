package device

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// tracedPipeline runs one copy→kernel→copy-back→CPU-task pipeline on s,
// exercising every emitting hardware model in a single ROI.
func tracedPipeline(t *testing.T, s *System) {
	t.Helper()
	n := 4096
	a := AllocBuf[float32](s, n, "a", Host)
	b := AllocBuf[float32](s, n, "b", Host)
	for i := range a.V {
		a.V[i] = float32(i)
	}
	s.BeginROI()
	da, _ := ToDevice(s, a)
	db, _ := ToDevice(s, b)
	s.Drain()
	s.Launch(KernelSpec{
		Name: "scale", Grid: n / 256, Block: 256,
		Func: func(th *Thread) {
			i := th.Global()
			v := Ld(th, da, i)
			th.FLOP(1)
			St(th, db, i, v*2)
		},
	})
	FromDevice(s, b, db)
	s.CPUTask(CPUTaskSpec{
		Name: "check", Threads: 2,
		Func: func(c *CPUThread) {
			lo, hi := c.TID()*n/2, (c.TID()+1)*n/2
			for i := lo; i < hi; i++ {
				_ = Ld(c, b, i)
				c.FLOP(1)
			}
		},
	})
	s.EndROI()
	if b.V[1000] != 2000 {
		t.Fatalf("pipeline result wrong: %v", b.V[1000])
	}
}

// TestTraceBusyMatchesTimeline pins the PR's core invariant: the busy
// totals derived from the trace's activity spans equal the stats timeline
// totals to the cycle, because both come from the same Collector emission.
func TestTraceBusyMatchesTimeline(t *testing.T) {
	for _, cfg := range []config.System{config.DiscreteGPU(), config.HeteroProcessor()} {
		tr := trace.New()
		s := NewSystem(cfg, WithTrace(tr))
		tracedPipeline(t, s)
		got := tr.ActivityTotals()
		for c := stats.Component(0); c < stats.NumComponents; c++ {
			want := s.Col.TL.Active(c)
			if got[c] != want {
				t.Errorf("%s: trace busy %s = %d ps, timeline = %d ps", cfg.Kind, c, got[c], want)
			}
		}
		if s.Col.TL.Active(stats.GPU) == 0 {
			t.Fatalf("%s: pipeline recorded no GPU activity", cfg.Kind)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: traced run emitted no events", cfg.Kind)
		}
	}
}

// TestTraceExportRoundTrip exports a real run and validates the JSON the
// same way cmd/tracecheck does.
func TestTraceExportRoundTrip(t *testing.T) {
	tr := trace.New()
	s := NewSystem(config.DiscreteGPU(), WithTrace(tr))
	tracedPipeline(t, s)
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, []trace.RunTrace{{Name: "pipeline", Rec: tr}}); err != nil {
		t.Fatal(err)
	}
	fs, err := trace.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if fs.Spans == 0 || fs.Instants == 0 || fs.Processes != 1 {
		t.Fatalf("unexpected file stats: %+v", fs)
	}
}

// TestTracingDoesNotChangeResults pins the byte-identical guarantee: the
// same workload with tracing on and off produces the same report text and
// the same phase snapshots.
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain := NewSystem(config.DiscreteGPU())
	tracedSys := NewSystem(config.DiscreteGPU(), WithTrace(trace.New()))
	tracedPipeline(t, plain)
	tracedPipeline(t, tracedSys)
	a, b := plain.Report("t", "x"), tracedSys.Report("t", "x")
	if a.String() != b.String() {
		t.Fatalf("report text diverged with tracing on:\n--- off:\n%s\n--- on:\n%s", a, b)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase count diverged: %d vs %d", len(a.Phases), len(b.Phases))
	}
}

// TestPhaseSnapshotsAlwaysOn checks that stage-boundary counter snapshots
// are recorded on every system, traced or not, with paired boundaries.
func TestPhaseSnapshotsAlwaysOn(t *testing.T) {
	s := NewSystem(config.DiscreteGPU())
	tracedPipeline(t, s)
	rep := s.Report("t", "x")
	if len(rep.Phases) == 0 {
		t.Fatal("no phase snapshots on untraced system")
	}
	if len(rep.Phases)%2 != 0 {
		t.Fatalf("odd snapshot count %d; boundaries must pair begin/end", len(rep.Phases))
	}
	begins, ends, anyDelta := 0, 0, false
	for i, p := range rep.Phases {
		if p.Seq != i+1 {
			t.Fatalf("snapshot %d has seq %d, want %d (1-based)", i, p.Seq, i+1)
		}
		switch p.Boundary {
		case "begin":
			begins++
		case "end":
			ends++
		default:
			t.Fatalf("snapshot %d has boundary %q", i, p.Boundary)
		}
		if len(p.Deltas) > 0 {
			anyDelta = true
		}
	}
	if begins != ends {
		t.Fatalf("begin/end mismatch: %d vs %d", begins, ends)
	}
	if !anyDelta {
		t.Fatal("no snapshot recorded any counter delta")
	}
}
