package device

import (
	"repro/internal/core"
	"repro/internal/gpucore"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PersistentKernelSpec describes a persistent (resident) kernel: launched
// once, then fed batches of CTAs, so the host launch overhead is paid a
// single time and amortized over every chunk — the persistent-thread
// organization from the async-pipeline literature. Func generates the lane
// program per CTA exactly like KernelSpec.Func; the CTA index is global
// across feeds. Child launches (dynamic parallelism) are not supported from
// persistent kernels.
type PersistentKernelSpec struct {
	Name         string
	Block        int // threads per CTA
	ScratchBytes int // scratch per CTA
	Func         func(t *Thread)
}

// PersistentKernel is a launched persistent kernel accepting Feed batches.
type PersistentKernel struct {
	s      *System
	spec   PersistentKernelSpec
	k      *gpucore.Kernel
	opened *Handle   // completes when the kernel is resident on the device
	done   *Handle   // completes when the kernel drains after Close
	issues []*Handle // per-feed issue markers; Close orders after them
	feeds  int
	closed bool

	launchStart, launchDur sim.Tick
}

// LaunchPersistent launches a persistent kernel after deps. The host pays
// one launch claim (the Cserial ingredient) here; subsequent Feed calls cost
// only a signal, which is the point of the organization.
func (s *System) LaunchPersistent(spec PersistentKernelSpec, deps ...*Handle) *PersistentKernel {
	if spec.Block <= 0 {
		usageErrorf("LaunchPersistent", "kernel %s needs a positive block (got %d)", spec.Name, spec.Block)
	}
	if spec.Block > s.Cfg.GPU.MaxWarpsPerSM*s.Cfg.GPU.WarpSize {
		usageErrorf("LaunchPersistent", "kernel %s block %d exceeds SM capacity", spec.Name, spec.Block)
	}
	p := &PersistentKernel{s: s, spec: spec}
	p.opened = s.newHandle("persistent kernel " + spec.Name)
	p.done = s.newHandle("persistent kernel " + spec.Name + " drain")
	p.k = &gpucore.Kernel{
		Name:         spec.Name,
		ThreadsPerTA: spec.Block,
		ScratchBytes: spec.ScratchBytes,
		Gen: func(cta int) []isa.Trace {
			out := make([]isa.Trace, spec.Block)
			t := &Thread{s: s, cta: cta, block: spec.Block}
			for i := 0; i < spec.Block; i++ {
				t.lane = i
				t.global = cta*spec.Block + i
				t.tr = make(isa.Trace, 0, 64)
				spec.Func(t)
				out[i] = t.tr
			}
			return out
		},
		Done: func(end sim.Tick, flops uint64) {
			s.flushGPUL1s(end)
			p.done.complete(end)
		},
	}
	s.when(deps, func(ready sim.Tick) {
		launchDur := sim.Tick(s.Cfg.KernelLaunchNs * float64(sim.Nanosecond))
		launchStart := s.hostMux.Claim(ready, launchDur)
		start := launchStart + launchDur
		s.Col.AddActivityNamed(stats.CPU, "launch "+spec.Name, launchStart, start)
		p.launchStart, p.launchDur = launchStart, launchDur
		s.Eng.AtD(sim.DomainHost, start, func() {
			s.gpu.LaunchPersistent(s.Eng.Now(), p.k)
			p.opened.complete(s.Eng.Now())
		})
	})
	return p
}

// Feed submits a batch of ctas CTAs to the resident kernel after deps,
// returning a handle that completes when the batch's last CTA drains (with
// its results flushed, so a dependent D2H copy reads fresh data). The feed
// costs only the cross-component signal latency — no host launch claim.
//
// Stage accounting: every feed records its own kernel stage so the GPU busy
// timeline reflects actual batch activity rather than one span covering
// inter-feed idle gaps; only the first feed carries the launch window, so
// Eq. 1's Cserial charges the amortized launch exactly once.
func (p *PersistentKernel) Feed(ctas int, deps ...*Handle) *Handle {
	if p.closed {
		usageErrorf("Feed", "persistent kernel %s already closed", p.spec.Name)
	}
	if ctas <= 0 {
		usageErrorf("Feed", "persistent kernel %s feed needs at least one CTA (got %d)", p.spec.Name, ctas)
	}
	s := p.s
	h := s.newHandle("feed " + p.spec.Name)
	issued := s.newHandle("feed issue " + p.spec.Name)
	p.issues = append(p.issues, issued)
	first := p.feeds == 0
	p.feeds++
	allDeps := make([]*Handle, 0, len(deps)+1)
	allDeps = append(allDeps, deps...)
	allDeps = append(allDeps, p.opened)
	s.when(allDeps, func(ready sim.Tick) {
		s.Eng.AtD(sim.DomainHost, ready+signalLat, func() {
			now := s.Eng.Now()
			ls, ld := now, sim.Tick(0)
			if first {
				ls, ld = p.launchStart, p.launchDur
			}
			st := s.Col.StageBegin(core.StageKernel, p.spec.Name, stats.GPU, ls, ld, now)
			s.gpu.Feed(now, p.k, ctas, func(end sim.Tick, flops uint64) {
				s.flushGPUL1s(end)
				s.Col.StageEnd(st, end, flops, 0)
				h.complete(end)
			})
			issued.complete(now)
		})
	})
	return h
}

// Close stops the kernel accepting feeds and returns the drain handle: it
// completes when every fed CTA has finished and the resident kernel has
// exited. Close orders after all previously issued feeds, so no feed can
// race the stop flag.
func (p *PersistentKernel) Close() *Handle {
	if p.closed {
		usageErrorf("Close", "persistent kernel %s closed twice", p.spec.Name)
	}
	p.closed = true
	s := p.s
	deps := make([]*Handle, 0, len(p.issues)+1)
	deps = append(deps, p.issues...)
	deps = append(deps, p.opened)
	s.when(deps, func(ready sim.Tick) {
		s.Eng.AtD(sim.DomainHost, ready+signalLat, func() {
			s.gpu.ClosePersistent(s.Eng.Now(), p.k)
		})
	})
	return p.done
}

// Done returns the drain handle (see Close).
func (p *PersistentKernel) Done() *Handle { return p.done }
