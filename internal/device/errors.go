package device

import (
	"fmt"

	"repro/internal/sim"
)

// UsageError reports invalid benchmark input to the device API: a bad
// system configuration, empty or overrunning copies, or impossible kernel
// geometry. These are user mistakes, not simulator invariants, so they are
// delivered as typed values — harness.Run (and any recover site) turns
// them into returned errors instead of a process crash. Internal invariant
// violations (e.g. a handle completing twice) still panic with plain
// strings.
type UsageError struct {
	Op  string // the API entry point, e.g. "LaunchAsync"
	Msg string
}

// Error describes the misuse.
func (e *UsageError) Error() string { return "device: " + e.Op + ": " + e.Msg }

// usageErrorf aborts the current run with a *UsageError. Benchmark code has
// no error returns (mirroring the CUDA runtime it models), so the abort
// unwinds via a typed panic that the harness layer recovers into a plain
// error.
func usageErrorf(op, format string, args ...any) {
	panic(&UsageError{Op: op, Msg: fmt.Sprintf(format, args...)})
}

// DeadlockError reports a Wait on an operation that can never complete:
// the event queue drained while the handle was still pending. Stage names
// the waited-on operation so sweep reports can say which launch or copy
// wedged.
type DeadlockError struct {
	Stage     string   // label of the waited-on operation
	SimTime   sim.Tick // simulated time when the queue drained
	EventsRun uint64
}

// Error describes the deadlock.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("device: deadlock waiting on %s — event queue drained at %.3f ms (%d events) with the operation still pending",
		e.Stage, e.SimTime.Millis(), e.EventsRun)
}
