package device

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Stream is a named in-order queue of asynchronous device operations — the
// CUDA-stream analogue of the raw Handle machinery. Operations submitted to
// one stream execute in submission order (each op implicitly depends on the
// stream's previous op); operations on different streams order only through
// recorded events, explicit handle dependencies, or AfterAll joins, exactly
// like cudaStreamWaitEvent / cudaEventRecord.
//
// Each submitted op also emits one span on the stream's own trace track
// ("stream <name>"), so Perfetto renders one lane per stream and the
// cross-stream overlap is directly visible. The spans are not activity
// spans: they decorate the trace without feeding the busy timelines, so
// traced busy totals still equal the figure timelines to the cycle.
type Stream struct {
	s    *System
	name string
	tail *Handle // completion of the most recently submitted op
	// fences holds event handles from WaitEvent calls not yet folded into a
	// submitted op; the next op waits on all of them.
	fences []*Handle
	depBuf []*Handle // reused per-submission dependency scratch
}

// NewStream creates a named stream. The name labels the stream's trace
// track and deadlock diagnostics.
func (s *System) NewStream(name string) *Stream {
	return &Stream{s: s, name: name}
}

// Name reports the stream's name.
func (st *Stream) Name() string { return st.name }

// deps assembles the next op's dependency list: the stream tail (FIFO
// order), any pending event fences, then the caller's explicit extras. The
// returned slice is scratch reused across submissions — the *Async methods
// consume it synchronously and do not retain it.
func (st *Stream) deps(extra []*Handle) []*Handle {
	st.depBuf = st.depBuf[:0]
	if st.tail != nil {
		st.depBuf = append(st.depBuf, st.tail)
	}
	st.depBuf = append(st.depBuf, st.fences...)
	st.fences = st.fences[:0]
	st.depBuf = append(st.depBuf, extra...)
	return st.depBuf
}

// submit installs op as the new stream tail and, when tracing, emits the
// stream-lane span [ready, end) — from the moment every dependency resolved
// to the op's completion. The ready join is only built under tracing; it is
// pure host-side bookkeeping (no engine events), so traced and untraced
// runs stay tick-identical.
func (st *Stream) submit(label string, deps []*Handle, op *Handle) *Handle {
	if st.s.Tr.Enabled() {
		ready := st.s.afterAll(append([]*Handle(nil), deps...))
		track := "stream " + st.name
		op.whenDone(func(end sim.Tick) {
			st.s.Tr.Span(stats.CPU, track, "stream", label, ready.end, end)
		})
	}
	st.tail = op
	return op
}

// Launch submits a kernel to the stream.
func (st *Stream) Launch(k KernelSpec, deps ...*Handle) *Handle {
	d := st.deps(deps)
	return st.submit("kernel "+k.Name, d, st.s.LaunchAsync(k, d...))
}

// CPUTask submits a CPU phase to the stream.
func (st *Stream) CPUTask(spec CPUTaskSpec, deps ...*Handle) *Handle {
	d := st.deps(deps)
	return st.submit("cpu "+spec.Name, d, st.s.CPUTaskAsync(spec, d...))
}

// Copy submits a full-buffer copy to the stream.
func Copy[T any](st *Stream, dst, src *Buf[T], deps ...*Handle) *Handle {
	d := st.deps(deps)
	return st.submit("copy "+src.A.Name+"->"+dst.A.Name, d, MemcpyAsync(st.s, dst, src, d...))
}

// CopyRange submits a ranged copy (count elements, src[srcOff:] to
// dst[dstOff:]) to the stream.
func CopyRange[T any](st *Stream, dst *Buf[T], dstOff int, src *Buf[T], srcOff, count int, deps ...*Handle) *Handle {
	d := st.deps(deps)
	return st.submit("copy "+src.A.Name+"->"+dst.A.Name, d,
		MemcpyRangeAsync(st.s, dst, dstOff, src, srcOff, count, d...))
}

// Event marks a point in a stream's submission order. Waiting on an event
// (Stream.WaitEvent, or its Handle as an *Async dependency) orders against
// every op the owning stream had submitted when the event was recorded.
type Event struct {
	name string
	h    *Handle
}

// Handle exposes the event as a dependency for raw *Async calls.
func (e *Event) Handle() *Handle { return e.h }

// Done reports whether every op preceding the event has completed.
func (e *Event) Done() bool { return e.h.Done() }

// Record captures the stream's current tail as an event. Recording on a
// stream with no submitted ops yields an already-completed event.
func (st *Stream) Record(name string) *Event {
	h := st.tail
	if h == nil {
		h = st.s.newHandle("event " + name)
		h.complete(st.s.Eng.Now())
	}
	return &Event{name: name, h: h}
}

// WaitEvent fences the stream on an event (possibly from another stream):
// every subsequently submitted op also waits for the event — the
// cudaStreamWaitEvent cross-stream join.
func (st *Stream) WaitEvent(e *Event) {
	st.fences = append(st.fences, e.h)
}

// Tail returns a handle that completes once every op submitted to the
// stream so far has completed (an immediately-complete handle for an empty
// stream) — the join point for cross-stream barriers via AfterAll.
func (st *Stream) Tail() *Handle {
	if st.tail == nil {
		h := st.s.newHandle("stream " + st.name)
		h.complete(st.s.Eng.Now())
		return h
	}
	return st.tail
}

// Sync runs the simulation until the stream drains — cudaStreamSynchronize.
func (st *Stream) Sync() {
	if st.tail != nil {
		st.s.Wait(st.tail)
	}
}

// WaitStreams runs the simulation until every given stream drains.
func (s *System) WaitStreams(streams ...*Stream) {
	for _, st := range streams {
		st.Sync()
	}
}
