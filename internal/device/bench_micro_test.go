package device

import (
	"testing"

	"repro/internal/config"
)

// BenchmarkKernelRoundTrip measures end-to-end simulated-kernel cost:
// launch, 16k threads with one load and one store each, completion.
func BenchmarkKernelRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSystem(config.HeteroProcessor())
		buf := AllocBuf[float32](s, 1<<14, "b", Host)
		s.Launch(KernelSpec{
			Name: "k", Grid: 64, Block: 256,
			Func: func(t *Thread) {
				v := Ld(t, buf, t.Global())
				t.FLOP(1)
				St(t, buf, t.Global(), v+1)
			},
		})
	}
}

// BenchmarkCPUTaskRoundTrip measures the CPU-task path.
func BenchmarkCPUTaskRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSystem(config.HeteroProcessor())
		buf := AllocBuf[float32](s, 1<<14, "b", Host)
		s.CPUTask(CPUTaskSpec{
			Name: "c", Threads: 4,
			Func: func(c *CPUThread) {
				for j := c.TID(); j < buf.Len(); j += c.Threads() {
					Ld(c, buf, j)
				}
			},
		})
	}
}

// BenchmarkMemcpyRoundTrip measures the DMA path (1MB over PCIe).
func BenchmarkMemcpyRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSystem(config.DiscreteGPU())
		h := AllocBuf[float32](s, 1<<18, "h", Host)
		d := AllocBuf[float32](s, 1<<18, "d", Device)
		Memcpy(s, d, h)
	}
}
