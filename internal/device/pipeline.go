package device

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// PipelineSpec describes a chunked, overlapped H2D → kernel → D2H schedule:
// the shared machinery behind every async-streams benchmark organization.
// The pipeline issues chunk stages in chunk-major order and wires the
// per-chunk dependency graph; the stage callbacks perform the actual
// transfers and launches (closing over their buffers) and may add their own
// extra dependencies to the ones the pipeline passes in.
type PipelineSpec struct {
	// Name labels the pipeline's trace lanes and diagnostics.
	Name string
	// Chunks is how many chunks the work is split into.
	Chunks int
	// Depth bounds how many chunks' device buffers may be in flight: chunk
	// c's upload waits for the kernel that consumed slot c-Depth, and its
	// kernel waits for the downloads that drained slot c-Depth — classic
	// double (Depth 2) or triple (Depth 3) buffering. Depth <= 0 means
	// every chunk has private buffer space and no reuse ordering is added.
	Depth int
	// H2D issues chunk c's host-to-device transfers after deps and returns
	// their completion (nil when the chunk has nothing to upload, e.g. a
	// zero-size tail chunk). A nil H2D skips the stage for every chunk.
	H2D func(c int, deps ...*Handle) *Handle
	// Kernel issues chunk c's kernel after deps (nil return skips the
	// chunk, e.g. a zero-size tail).
	Kernel func(c int, deps ...*Handle) *Handle
	// D2H issues chunk c's device-to-host transfers after deps, like H2D.
	D2H func(c int, deps ...*Handle) *Handle
}

// Pipeline emits the overlapped dependency graph for spec and returns a
// handle that completes when every chunk's last stage has. Per chunk c:
// kernel(c) waits for h2d(c), d2h(c) waits for kernel(c); with Depth > 0,
// h2d(c) additionally waits for kernel(c-Depth) and kernel(c) for
// d2h(c-Depth) (buffer-slot reuse). Nothing else is serialized: transfers
// from different chunks contend only on the simulated copy engine, and
// launches only on the host thread — the organization the paper's
// async-streams restructurings hand-built per benchmark.
func (s *System) Pipeline(spec PipelineSpec) *Handle {
	if spec.Chunks <= 0 {
		usageErrorf("Pipeline", "pipeline %s needs at least one chunk (got %d)", spec.Name, spec.Chunks)
	}
	if spec.Kernel == nil {
		usageErrorf("Pipeline", "pipeline %s needs a Kernel stage", spec.Name)
	}
	kernels := make([]*Handle, spec.Chunks)
	d2hs := make([]*Handle, spec.Chunks)
	lasts := make([]*Handle, 0, spec.Chunks)
	var depBuf [2]*Handle
	for c := 0; c < spec.Chunks; c++ {
		reuse := -1
		if spec.Depth > 0 {
			reuse = c - spec.Depth
		}
		var h2d *Handle
		if spec.H2D != nil {
			deps := depBuf[:0]
			if reuse >= 0 && kernels[reuse] != nil {
				deps = append(deps, kernels[reuse])
			}
			h2d = spec.H2D(c, deps...)
			s.pipelineSpan(spec.Name, c, spec.Depth, spec.Chunks, "h2d", deps, h2d)
		}
		deps := depBuf[:0]
		if h2d != nil {
			deps = append(deps, h2d)
		}
		if reuse >= 0 && d2hs[reuse] != nil {
			deps = append(deps, d2hs[reuse])
		}
		k := spec.Kernel(c, deps...)
		s.pipelineSpan(spec.Name, c, spec.Depth, spec.Chunks, "kernel", deps, k)
		kernels[c] = k
		var d2h *Handle
		if spec.D2H != nil {
			deps = depBuf[:0]
			if k != nil {
				deps = append(deps, k)
			}
			d2h = spec.D2H(c, deps...)
			s.pipelineSpan(spec.Name, c, spec.Depth, spec.Chunks, "d2h", deps, d2h)
		}
		d2hs[c] = d2h
		last := d2h
		if last == nil {
			last = k
		}
		if last == nil {
			last = h2d
		}
		if last != nil {
			lasts = append(lasts, last)
		}
	}
	return s.afterAll(lasts)
}

// DoubleBuffer is Pipeline with Depth 2: two buffer slots, chunk c's upload
// overlapping chunk c-1's kernel and chunk c-2's download.
func (s *System) DoubleBuffer(spec PipelineSpec) *Handle {
	spec.Depth = 2
	return s.Pipeline(spec)
}

// TripleBuffer is Pipeline with Depth 3: three buffer slots, decoupling
// upload, kernel, and download by a full chunk each.
func (s *System) TripleBuffer(spec PipelineSpec) *Handle {
	spec.Depth = 3
	return s.Pipeline(spec)
}

// pipelineSpan emits the trace-lane span for one pipeline stage op: one
// lane per buffer slot (chunk modulo depth), so Perfetto shows the classic
// staircase of overlapped slots. Trace-only bookkeeping; untraced runs skip
// it entirely and traced runs stay tick-identical (no engine events).
func (s *System) pipelineSpan(name string, c, depth, chunks int, stage string, deps []*Handle, op *Handle) {
	if op == nil || !s.Tr.Enabled() {
		return
	}
	slots := depth
	if slots <= 0 {
		slots = chunks
	}
	ready := s.afterAll(append([]*Handle(nil), deps...))
	track := "pipeline " + name + " slot " + itoa(c%slots)
	label := stage + " chunk " + itoa(c)
	op.whenDone(func(end sim.Tick) {
		s.Tr.Span(stats.CPU, track, "pipeline", label, ready.end, end)
	})
}

// itoa is a tiny non-negative integer formatter (avoids strconv in the
// trace-only path's imports).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
