package device

import (
	"fmt"
	"reflect"

	"repro/internal/memory"
)

// Loc selects which memory an allocation lives in. In the heterogeneous
// processor both map to the single shared space; the distinction still
// matters for page mapping (Host allocations were touched by the CPU before
// the ROI and are resident; Device allocations fault on GPU first touch).
type Loc int

const (
	// Host memory: CPU-resident, pages pre-mapped.
	Host Loc = iota
	// Device memory: GPU-side (discrete) or shared-but-untouched (hetero).
	Device
)

// AllocOpt modifies an allocation.
type AllocOpt func(*allocOpts)

type allocOpts struct {
	misaligned bool
}

// Misaligned allocates without cache-line alignment, modelling the paper's
// observation that CPU-GPU-shared allocations in limited-copy benchmarks can
// lose the CUDA allocator's line alignment and inflate GPU coalescing
// traffic.
func Misaligned() AllocOpt { return func(o *allocOpts) { o.misaligned = true } }

// Alloc is one raw allocation: a named physical range.
type Alloc struct {
	Name string
	Base memory.Addr
	Size int
	Loc  Loc
}

// Buf is a typed view over an allocation: V holds the functional data; A
// carries the simulated physical placement.
type Buf[T any] struct {
	A *Alloc
	V []T
}

// Len reports element count.
func (b *Buf[T]) Len() int { return len(b.V) }

// ElemSize reports the byte size of one element of b.
func (b *Buf[T]) ElemSize() int {
	if len(b.V) == 0 {
		var z T
		return int(reflect.TypeOf(z).Size())
	}
	return b.A.Size / len(b.V)
}

// AllocRaw reserves size bytes in the chosen memory and registers the pages
// per the ROI data-location rules.
func (s *System) AllocRaw(size int, name string, loc Loc, opts ...AllocOpt) *Alloc {
	var o allocOpts
	for _, f := range opts {
		f(&o)
	}
	sp := s.cpuSpace
	if loc == Device {
		sp = s.gpuSpace
	}
	align := s.Cfg.LineBytes
	if o.misaligned {
		// Offset off line alignment deliberately (but keep element natural
		// alignment) to model an unaligned shared allocator.
		align = 1
		sp.AllocAligned(4, 1) // skew the bump pointer
	}
	base := sp.AllocAligned(size, align)
	a := &Alloc{Name: name, Base: base, Size: size, Loc: loc}
	if loc == Host {
		// Host data was initialized by the CPU before the ROI: resident.
		s.vmm.MapRange(base, size)
	}
	return a
}

// AllocBuf reserves a typed buffer of n elements.
func AllocBuf[T any](s *System, n int, name string, loc Loc, opts ...AllocOpt) *Buf[T] {
	var z T
	es := int(reflect.TypeOf(z).Size())
	if es == 0 {
		panic(fmt.Sprintf("device: zero-sized element type for %s", name))
	}
	a := s.AllocRaw(n*es, name, loc, opts...)
	return &Buf[T]{A: a, V: make([]T, n)}
}

// ToDevice mirrors the paper's porting methodology: in the discrete system
// it allocates a device copy and schedules an H2D memcpy; in the
// heterogeneous processor the GPU accesses the CPU allocation directly and
// the copy is eliminated. It returns the buffer GPU kernels should use and
// the copy handle (nil when eliminated).
func ToDevice[T any](s *System, host *Buf[T], deps ...*Handle) (*Buf[T], *Handle) {
	if s.Unified() {
		return host, nil
	}
	dev := AllocBuf[T](s, len(host.V), host.A.Name+"_dev", Device)
	h := MemcpyAsync(s, dev, host, deps...)
	return dev, h
}

// FromDevice schedules the D2H copy that puts results back in CPU-visible
// memory (a no-op handle in the heterogeneous processor, where dev and host
// are the same buffer).
func FromDevice[T any](s *System, host, dev *Buf[T], deps ...*Handle) *Handle {
	if s.Unified() || dev == host {
		return s.afterAll(deps)
	}
	return MemcpyAsync(s, host, dev, deps...)
}
