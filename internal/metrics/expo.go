package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type a /metrics endpoint serving WriteText
// output should declare.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in Prometheus text exposition format
// v0.0.4: families sorted by name, each with its # HELP and # TYPE
// comment, series sorted by label values, histograms as cumulative
// _bucket/_sum/_count samples with an explicit le="+Inf" bucket. The
// output is deterministic for a given registry state and always passes
// Lint — the pairing cmd/metricscheck enforces in CI.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		writeFamily(&b, fams[n])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot renders every series to a flat map keyed the way the
// exposition format spells it (`name{label="value"}`); histograms
// contribute their cumulative _bucket, _sum, and _count samples. Tests
// assert on these keys so they never drift from what a scraper sees.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		for _, row := range f.render() {
			out[row.key] = row.val
		}
	}
	return out
}

// sample is one rendered exposition line: key is the full series name
// with its label set, val the sample value.
type sample struct {
	key string
	val float64
}

// render flattens a family's series into exposition samples, sorted by
// label values so output order is deterministic.
func (f *family) render() []sample {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	sort.Slice(series, func(i, j int) bool {
		return strings.Join(series[i].vals, "\x00") < strings.Join(series[j].vals, "\x00")
	})

	var out []sample
	for _, s := range series {
		base := labelSet(f.labels, s.vals, "", "")
		switch f.typ {
		case TypeCounter:
			out = append(out, sample{f.name + base, float64(s.count.Load())})
		case TypeGauge:
			out = append(out, sample{f.name + base, float64(s.gauge.Load())})
		case TypeHistogram:
			var cum uint64
			for i, upper := range f.buckets {
				cum += s.buckets[i].Load()
				le := labelSet(f.labels, s.vals, "le", formatFloat(upper))
				out = append(out, sample{f.name + "_bucket" + le, float64(cum)})
			}
			count := s.count.Load()
			inf := labelSet(f.labels, s.vals, "le", "+Inf")
			out = append(out, sample{f.name + "_bucket" + inf, float64(count)})
			out = append(out, sample{f.name + "_sum" + base, math.Float64frombits(s.sumBits.Load())})
			out = append(out, sample{f.name + "_count" + base, float64(count)})
		}
	}
	return out
}

func writeFamily(b *strings.Builder, f *family) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, row := range f.render() {
		b.WriteString(row.key)
		b.WriteByte(' ')
		b.WriteString(formatFloat(row.val))
		b.WriteByte('\n')
	}
}

// labelSet renders `{a="x",b="y"}` (empty string for no labels), with an
// optional extra pair appended — the histogram "le" label.
func labelSet(labels, vals []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value: integral values (the common case —
// counters, gauges, bucket counts) print without an exponent or decimal
// point, everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
