package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintStats summarizes a validated exposition document.
type LintStats struct {
	Samples    int // sample lines
	Families   int // distinct metric families sampled
	Histograms int // families declared histogram
}

// Lint validates a Prometheus text-format v0.0.4 exposition document the
// way cmd/tracecheck validates traces: structural rules a scraper relies
// on, checked before anything scrapes it.
//
//   - Lines are samples, # HELP / # TYPE comments, or blank; the document
//     ends with a newline.
//   - Metric and label names match the exposition grammar; label values
//     are correctly quoted and escaped; no duplicate label names.
//   - HELP and TYPE appear at most once per family, TYPE with a known
//     type, and before any of the family's samples; one family's samples
//     are contiguous (not interleaved with another family's).
//   - Sample values parse as floats (+Inf/-Inf/NaN included), optional
//     timestamps as integers.
//   - Histogram families are internally consistent per label set:
//     le bounds parse and strictly increase, bucket counts are
//     monotonically non-decreasing, an le="+Inf" bucket exists and equals
//     _count, and _sum/_count are present.
func Lint(data []byte) (LintStats, error) {
	var st LintStats
	if len(data) == 0 {
		return st, fmt.Errorf("empty document")
	}
	if data[len(data)-1] != '\n' {
		return st, fmt.Errorf("document does not end with a newline")
	}

	type histSeries struct {
		les     []float64
		counts  []float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	sampled := map[string]bool{} // families with at least one sample
	closed := map[string]bool{}  // families whose sample block has ended
	hists := map[string]map[string]*histSeries{}
	var lastFam string

	// famOf maps a sample name to its family: histogram component samples
	// (_bucket/_sum/_count) collapse onto their declared base family.
	famOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typeOf[base] == "histogram" {
				return base
			}
		}
		return name
	}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines[:len(lines)-1] { // trailing "" after final \n
		lineno := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				return st, fmt.Errorf("line %d: invalid metric name %q in %s comment", lineno, name, fields[1])
			}
			if sampled[name] {
				return st, fmt.Errorf("line %d: %s for %q after its samples", lineno, fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if helpSeen[name] {
					return st, fmt.Errorf("line %d: duplicate HELP for %q", lineno, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if _, dup := typeOf[name]; dup {
					return st, fmt.Errorf("line %d: duplicate TYPE for %q", lineno, name)
				}
				typ := ""
				if len(fields) >= 4 {
					typ = strings.TrimSpace(fields[3])
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown type %q for %q", lineno, typ, name)
				}
				typeOf[name] = typ
				if typ == "histogram" {
					st.Histograms++
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineno, err)
		}
		st.Samples++
		fam := famOf(name)
		if !sampled[fam] {
			if closed[fam] {
				return st, fmt.Errorf("line %d: samples for %q interleaved with another family", lineno, fam)
			}
			sampled[fam] = true
			st.Families++
		}
		if lastFam != "" && lastFam != fam {
			closed[lastFam] = true
			if closed[fam] {
				return st, fmt.Errorf("line %d: samples for %q interleaved with another family", lineno, fam)
			}
		}
		lastFam = fam

		if typeOf[fam] == "histogram" {
			sig := histSig(labels)
			if hists[fam] == nil {
				hists[fam] = map[string]*histSeries{}
			}
			hs := hists[fam][sig]
			if hs == nil {
				hs = &histSeries{}
				hists[fam][sig] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return st, fmt.Errorf("line %d: %s sample without an le label", lineno, name)
				}
				if le == "+Inf" {
					if hs.infSeen {
						return st, fmt.Errorf("line %d: duplicate le=\"+Inf\" bucket on %s", lineno, name)
					}
					hs.infSeen, hs.inf = true, value
					break
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil || math.IsNaN(bound) {
					return st, fmt.Errorf("line %d: unparsable le bound %q on %s", lineno, le, name)
				}
				hs.les = append(hs.les, bound)
				hs.counts = append(hs.counts, value)
			case strings.HasSuffix(name, "_sum"):
				hs.hasSum = true
			case strings.HasSuffix(name, "_count"):
				hs.hasCnt, hs.count = true, value
			default:
				return st, fmt.Errorf("line %d: histogram %q has a bare sample %q (want _bucket/_sum/_count)", lineno, fam, name)
			}
		}
	}

	for fam, bysig := range hists {
		for sig, hs := range bysig {
			where := fam
			if sig != "" {
				where = fam + "{" + sig + "}"
			}
			if !hs.infSeen {
				return st, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", where)
			}
			if !hs.hasSum || !hs.hasCnt {
				return st, fmt.Errorf("histogram %s: missing _sum or _count", where)
			}
			if hs.count != hs.inf {
				return st, fmt.Errorf("histogram %s: _count (%g) != le=\"+Inf\" bucket (%g)", where, hs.count, hs.inf)
			}
			if !sort.Float64sAreSorted(hs.les) {
				return st, fmt.Errorf("histogram %s: le bounds out of order", where)
			}
			prev := math.Inf(-1)
			last := 0.0
			for i, le := range hs.les {
				if le <= prev {
					return st, fmt.Errorf("histogram %s: duplicate le bound %g", where, le)
				}
				if hs.counts[i] < last {
					return st, fmt.Errorf("histogram %s: bucket counts not monotone at le=%g (%g < %g)",
						where, le, hs.counts[i], last)
				}
				prev, last = le, hs.counts[i]
			}
			if hs.inf < last {
				return st, fmt.Errorf("histogram %s: le=\"+Inf\" bucket (%g) below last bound's count (%g)", where, hs.inf, last)
			}
		}
	}
	return st, nil
}

// histSig canonicalizes a bucket sample's label set minus le, so all
// samples of one histogram series group together.
func histSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// parseSample parses one exposition sample line:
//
//	name [{label="value",...}] value [timestamp]
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !nameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name at %q", line)
	}
	rest := line[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			j := 0
			for j < len(rest) && isLabelChar(rest[j], j == 0) {
				j++
			}
			lname := rest[:j]
			if !labelRe.MatchString(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name at %q", rest)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", lname)
			}
			rest = rest[j:]
			if !strings.HasPrefix(rest, `="`) {
				return "", nil, 0, fmt.Errorf("label %q not followed by =\"...\"", lname)
			}
			val, remainder, verr := parseQuoted(rest[1:])
			if verr != nil {
				return "", nil, 0, fmt.Errorf("label %q: %v", lname, verr)
			}
			labels[lname] = val
			rest = remainder
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			rest = strings.TrimLeft(rest, " \t")
			if !strings.HasPrefix(rest, "}") {
				return "", nil, 0, fmt.Errorf("malformed label set at %q", rest)
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp] after %q, got %q", name, rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("unparsable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted exposition string (after the
// opening quote's preceding text), validating its escapes (\\, \", \n),
// and returns the decoded value plus the remainder after the closing
// quote.
func parseQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("missing opening quote at %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
