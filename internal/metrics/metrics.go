// Package metrics is the service-telemetry layer: a dependency-free,
// allocation-conscious metrics registry the daemon and the CLI sweeps
// funnel their operational counters through. The paper's whole method is
// accounting for where time goes; once the reproduction runs as a
// long-lived service, the serving path itself needs the same discipline —
// request rates and latencies, admission-gate depth, cache hits, journal
// replays, run outcomes — exported live instead of buried in per-run
// trace files.
//
// The design constraints mirror internal/trace:
//
//   - Handles, not lookups, on hot paths: a Counter/Gauge/Histogram is a
//     plain struct around pre-resolved atomic slots, obtained once at
//     construction (or package init) time. Inc/Add/Set/Observe perform
//     zero allocations — asserted by TestMetricIncZeroAlloc — so
//     instrumented code can never regress the allocation ratchet
//     cmd/benchdiff gates.
//   - No dependencies: the exposition writer emits Prometheus text format
//     v0.0.4 directly, so nothing outside the standard library is needed
//     to scrape GET /metrics with a stock Prometheus.
//   - Deterministic output: families render sorted by name and series
//     sorted by label values, so two Snapshot/WriteText calls over the
//     same state produce identical bytes (tests diff them).
//
// Histograms use fixed log-scale buckets (LogBuckets): the quantities the
// simulator service measures — request latencies, queue waits, events/sec
// — span orders of magnitude, and a fixed geometric ladder keeps bucket
// count small while resolving every decade equally.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Type discriminates metric families.
type Type uint8

const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

// String names the type as the exposition format spells it.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families. The zero value is not usable; build
// with NewRegistry. Registration is idempotent: registering a name that
// already exists with the identical type, help, labels, and buckets
// returns the existing family's handles (so package-level handle vars and
// repeated server construction in tests coexist); a mismatch panics — two
// definitions of one name is a programming error, not a runtime
// condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry: the harness, sweep, and journal
// layers register their run-lifecycle counters here at package init, the
// daemon serves it at GET /metrics, and cmd/experiments dumps it with
// -metrics — one registry, so an access log line, a scrape, and a CLI
// summary all describe the same counters.
var Default = NewRegistry()

// family is one named metric with a fixed label schema and its series.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing, no +Inf

	mu     sync.Mutex
	series []*series // creation order; sorted at render time
}

// series is one labeled instance of a family. The atomic fields double as
// storage for all three types: count is the counter value and the
// histogram observation count, gauge the gauge value, sumBits the
// histogram sum as float bits.
type series struct {
	vals    []string
	count   atomic.Uint64
	gauge   atomic.Int64
	sumBits atomic.Uint64
	buckets []atomic.Uint64 // per-bucket (non-cumulative) counts
	upper   []float64       // family.buckets, shared
}

func (r *Registry) register(name, help string, typ Type, labels []string, buckets []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	if typ == TypeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
		}
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= buckets[i-1]) {
				panic(fmt.Sprintf("metrics: histogram %q buckets must be finite and strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: %q re-registered with a different definition", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get resolves (creating if needed) the series for vals. Resolution locks
// and may allocate; callers resolve once and hold the handle.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.series {
		if equalStrings(s.vals, vals) {
			return s
		}
	}
	s := &series{vals: append([]string(nil), vals...), upper: f.buckets}
	if f.typ == TypeHistogram {
		s.buckets = make([]atomic.Uint64, len(f.buckets))
	}
	f.series = append(f.series, s)
	return s
}

// Counter is a handle to one monotonically increasing series. Inc and Add
// are lock-free and allocation-free; handles are safe for concurrent use.
type Counter struct{ s *series }

// Inc adds 1.
func (c Counter) Inc() { c.s.count.Add(1) }

// Add adds n.
func (c Counter) Add(n uint64) { c.s.count.Add(n) }

// Value reads the current count.
func (c Counter) Value() uint64 { return c.s.count.Load() }

// Gauge is a handle to one instantaneous integer value (queue depth,
// in-flight weight). All methods are lock-free and allocation-free.
type Gauge struct{ s *series }

// Set stores v.
func (g Gauge) Set(v int64) { g.s.gauge.Store(v) }

// Add adds d (negative to decrease).
func (g Gauge) Add(d int64) { g.s.gauge.Add(d) }

// Inc adds 1.
func (g Gauge) Inc() { g.s.gauge.Add(1) }

// Dec subtracts 1.
func (g Gauge) Dec() { g.s.gauge.Add(-1) }

// Value reads the current value.
func (g Gauge) Value() int64 { return g.s.gauge.Load() }

// Histogram is a handle to one observation distribution over the family's
// fixed buckets. Observe is lock-free and allocation-free.
type Histogram struct{ s *series }

// Observe records v: the first bucket whose upper bound is >= v (values
// above every bound land only in the implicit +Inf bucket), the count,
// and the sum (a CAS loop over float bits — contended observes retry, the
// value is never torn).
func (h Histogram) Observe(v float64) {
	s := h.s
	if i := sort.SearchFloat64s(s.upper, v); i < len(s.upper) {
		s.buckets[i].Add(1)
	}
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads how many observations the histogram holds.
func (h Histogram) Count() uint64 { return h.s.count.Load() }

// Sum reads the observation sum.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, TypeCounter, nil, nil).get(nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, TypeGauge, nil, nil).get(nil)}
}

// Histogram registers (or finds) an unlabeled histogram over buckets
// (upper bounds, strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	return Histogram{r.register(name, help, TypeHistogram, nil, buckets).get(nil)}
}

// CounterVec is a counter family with labels; resolve series with With.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labels, nil)}
}

// With resolves the series for the given label values (creating it on
// first use). Resolution locks the family; hot paths resolve once and
// keep the returned handle.
func (v *CounterVec) With(vals ...string) Counter { return Counter{v.f.get(vals)} }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labels, nil)}
}

// With resolves the series for the given label values.
func (v *GaugeVec) With(vals ...string) Gauge { return Gauge{v.f.get(vals)} }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labels, buckets)}
}

// With resolves the series for the given label values.
func (v *HistogramVec) With(vals ...string) Histogram { return Histogram{v.f.get(vals)} }

// LogBuckets builds a fixed log-scale bucket ladder: perDecade
// geometrically spaced upper bounds per factor-of-10, from min up to and
// including the first bound >= max. Each bound is computed independently
// (min * 10^(i/perDecade)), so there is no cumulative rounding drift and
// the same arguments always produce the identical ladder.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic("metrics: LogBuckets wants 0 < min < max and perDecade >= 1")
	}
	var out []float64
	for i := 0; ; i++ {
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}
