package metrics

import (
	"strings"
	"testing"
)

const validDoc = `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{route="/v1/sweep",code="200"} 12
http_requests_total{route="/v1/sweep",code="429"} 3
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 4
lat_seconds_bucket{le="1"} 9
lat_seconds_bucket{le="+Inf"} 10
lat_seconds_sum 6.5
lat_seconds_count 10
# TYPE inflight gauge
inflight 2
`

func TestLintValid(t *testing.T) {
	st, err := Lint([]byte(validDoc))
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if st.Samples != 8 || st.Families != 3 || st.Histograms != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLintAcceptsEdgeValues(t *testing.T) {
	doc := "odd_values{a=\"esc\\\\aped \\\"quote\\\" and\\nnewline\"} +Inf\n" +
		"odd_values{a=\"two\"} NaN 1712000000\n" +
		"odd_values 1e-9\n"
	if _, err := Lint([]byte(doc)); err != nil {
		t.Fatalf("edge values rejected: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]struct{ doc, wantErr string }{
		"empty":              {"", "empty"},
		"no final newline":   {"a 1", "newline"},
		"bad metric name":    {"1abc 1\n", "invalid metric name"},
		"bad label name":     {`a{9x="y"} 1` + "\n", "invalid label name"},
		"bad escape":         {`a{x="\t"} 1` + "\n", `invalid escape`},
		"unterminated":       {`a{x="y} 1` + "\n", "unterminated"},
		"dup label":          {`a{x="1",x="2"} 1` + "\n", "duplicate label"},
		"bad value":          {"a one\n", "unparsable sample value"},
		"bad timestamp":      {"a 1 12.5\n", "unparsable timestamp"},
		"unknown type":       {"# TYPE a widget\na 1\n", "unknown type"},
		"dup type":           {"# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		"dup help":           {"# HELP a x\n# HELP a y\na 1\n", "duplicate HELP"},
		"type after samples": {"a 1\n# TYPE a counter\n", "after its samples"},
		"interleaved":        {"a 1\nb 1\na{x=\"2\"} 1\n", "interleaved"},
		"hist non-monotone": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not monotone",
		},
		"hist bounds out of order": {
			"# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"out of order",
		},
		"hist missing inf": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			`missing le="+Inf"`,
		},
		"hist count mismatch": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
			"_count",
		},
		"hist missing sum": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		"hist bad le": {
			"# TYPE h histogram\nh_bucket{le=\"wide\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"unparsable le",
		},
		"hist bare sample": {
			"# TYPE h histogram\nh 5\n",
			"bare sample",
		},
	}
	for name, tc := range cases {
		_, err := Lint([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted invalid doc", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

func TestLintHistogramPerLabelSet(t *testing.T) {
	// Two series of one histogram; one is broken — the error must name it.
	doc := "# TYPE h histogram\n" +
		`h_bucket{route="/a",le="1"} 2` + "\n" +
		`h_bucket{route="/a",le="+Inf"} 2` + "\n" +
		`h_sum{route="/a"} 1` + "\n" +
		`h_count{route="/a"} 2` + "\n" +
		`h_bucket{route="/b",le="1"} 9` + "\n" +
		`h_bucket{route="/b",le="+Inf"} 4` + "\n" +
		`h_sum{route="/b"} 1` + "\n" +
		`h_count{route="/b"} 4` + "\n"
	_, err := Lint([]byte(doc))
	if err == nil {
		t.Fatal("accepted histogram whose +Inf bucket is below a bound's count")
	}
	if !strings.Contains(err.Error(), "/b") {
		t.Fatalf("error %q does not identify the broken series", err)
	}
}
