package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "in flight")
	g.Set(7)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap["reqs_total"] != 5 || snap["inflight"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	snap := r.Snapshot()
	checks := map[string]float64{
		`lat_seconds_bucket{le="0.01"}`: 1,
		`lat_seconds_bucket{le="0.1"}`:  2,
		`lat_seconds_bucket{le="1"}`:    3,
		`lat_seconds_bucket{le="+Inf"}`: 4,
		`lat_seconds_count`:             4,
	}
	for k, want := range checks {
		if snap[k] != want {
			t.Errorf("%s = %g, want %g (snapshot %v)", k, snap[k], want, snap)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "boundary", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if snap := r.Snapshot(); snap[`b_bucket{le="1"}`] != 1 {
		t.Fatalf(`observe(1) not in le="1" bucket: %v`, snap)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route/code", "route", "code")
	v.With("/v1/sweep", "200").Add(3)
	v.With("/v1/sweep", "429").Inc()
	// Repeated With on the same values resolves the same series.
	v.With("/v1/sweep", "200").Inc()
	snap := r.Snapshot()
	if snap[`http_requests_total{route="/v1/sweep",code="200"}`] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[`http_requests_total{route="/v1/sweep",code="429"}`] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegisterIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registration did not share the series: %d", a.Value())
	}
	mustPanic(t, "type mismatch", func() { r.Gauge("c_total", "help") })
	mustPanic(t, "help mismatch", func() { r.Counter("c_total", "other") })
	mustPanic(t, "bad name", func() { r.Counter("1bad", "x") })
	mustPanic(t, "reserved le label", func() { r.CounterVec("v_total", "x", "le") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h", "x", []float64{2, 1}) })
	mustPanic(t, "label arity", func() {
		r.CounterVec("arity_total", "x", "a").With("1", "2")
	})
}

func TestWriteTextLintsAndIsDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last by name").Add(2)
	v := r.HistogramVec("wait_seconds", "queue wait", LogBuckets(0.001, 10, 2), "route")
	v.With("/v1/run").Observe(0.02)
	v.With("/v1/sweep").Observe(3)
	g := r.GaugeVec("depth", `odd "label" with \ and`+"\n", "kind")
	g.With(`quo"te\`).Set(-4)

	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteText not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	st, err := Lint(a.Bytes())
	if err != nil {
		t.Fatalf("WriteText output fails Lint: %v\n%s", err, a.String())
	}
	if st.Histograms != 1 || st.Families != 3 {
		t.Fatalf("lint stats = %+v, want 1 histogram / 3 families", st)
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE zz_total counter\n",
		"# TYPE wait_seconds histogram\n",
		`depth{kind="quo\"te\\"} -4` + "\n",
		`wait_seconds_bucket{route="/v1/run",le="+Inf"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 10, 3)
	if b[0] != 0.001 {
		t.Fatalf("first bound = %g", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %g < max", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
	// Independent computation: no cumulative drift, so the same call is
	// bit-identical and decade points are exact powers of ten.
	if b2 := LogBuckets(0.001, 10, 3); !equalFloats(b, b2) {
		t.Fatal("LogBuckets not reproducible")
	}
	mustPanic(t, "bad args", func() { LogBuckets(0, 1, 3) })
}

// TestMetricIncZeroAlloc is the allocation ratchet the package doc
// promises: instrumented hot paths must stay benchdiff-clean.
func TestMetricIncZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "x")
	g := r.Gauge("alloc_g", "x")
	h := r.Histogram("alloc_h", "x", LogBuckets(0.001, 10, 3))
	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(9) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Histogram.Observe": func() { h.Observe(0.42) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	h := r.Histogram("conc_h", "x", []float64{1, 10})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("count=%d hist=%d, want 8000/8000", c.Value(), h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %g, want 4000 (CAS loop lost updates)", h.Sum())
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
