package harness

import (
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
)

// OutcomeRecord is the lossless, JSON-round-trippable persistence form of
// an Outcome — what the sweep journal writes per completed run so a
// resumed sweep can rebuild the outcome exactly and render byte-identical
// reports. It mirrors Outcome field for field except Sys: a simulated
// machine cannot (and need not) be serialized, so replayed outcomes carry
// a nil Sys and consumers that inspect live counters must guard for it.
//
// Losslessness matters: core.Report round-trips exactly through
// encoding/json (integer Ticks, exact shortest-form floats), which is
// what lets a resumed sweep's stdout match an uninterrupted sweep's byte
// for byte. The human-oriented ReportJSON/OutcomeJSON forms are lossy
// (millisecond floats) and deliberately not used here.
type OutcomeRecord struct {
	Report   *core.Report `json:"report,omitempty"`
	Err      *RunError    `json:"err,omitempty"`
	Attempts int          `json:"attempts"`
	Size     bench.Size   `json:"size"`
	Degraded bool         `json:"degraded,omitempty"`
	SimTime  sim.Tick     `json:"sim_time"`
	Events   uint64       `json:"events"`
	// Wall round-trips as integer nanoseconds (time.Duration's native
	// JSON form), so replayed wall numbers are the recorded ones exactly.
	Wall          time.Duration `json:"wall"`
	AttemptErrors []RunError    `json:"attempt_errors,omitempty"`
	TraceEvents   int           `json:"trace_events,omitempty"`
}

// Record converts an Outcome to its persistence form. The live system
// handle is dropped; everything else is carried verbatim.
func (o *Outcome) Record() *OutcomeRecord {
	return &OutcomeRecord{
		Report:        o.Report,
		Err:           o.Err,
		Attempts:      o.Attempts,
		Size:          o.Size,
		Degraded:      o.Degraded,
		SimTime:       o.SimTime,
		Events:        o.Events,
		Wall:          o.Wall,
		AttemptErrors: o.AttemptErrors,
		TraceEvents:   o.TraceEvents,
	}
}

// Outcome rebuilds the Outcome a record was taken from. Sys is nil — the
// one field that does not survive persistence.
func (r *OutcomeRecord) Outcome() *Outcome {
	return &Outcome{
		Report:        r.Report,
		Err:           r.Err,
		Attempts:      r.Attempts,
		Size:          r.Size,
		Degraded:      r.Degraded,
		SimTime:       r.SimTime,
		Events:        r.Events,
		Wall:          r.Wall,
		AttemptErrors: r.AttemptErrors,
		TraceEvents:   r.TraceEvents,
	}
}
