package harness

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// watchStall arms a stall watchdog on eng: a goroutine samples the
// engine's heartbeat and posts a ReasonStalled interrupt when simulated
// time has not advanced for at least window of wall-clock time while
// events keep executing. The engine delivers the interrupt at its next
// periodic check, so the run dies as a recoverable *sim.InterruptError
// (mapped to KindStalled by runOnce) rather than hanging the sweep
// worker forever.
//
// The returned stop function disarms the watchdog; runOnce defers it so
// the goroutine never outlives its run. Like the wall-clock budget, the
// watchdog can only reach a run that is still stepping the engine — a
// wedge inside host code between events is beyond it.
func watchStall(eng *sim.Engine, window time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		// Poll well under the window so detection latency is a fraction
		// of the deadline, not a multiple of it.
		poll := window / 8
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		tick := time.NewTicker(poll)
		defer tick.Stop()
		lastEvents, lastNow := eng.Progress()
		frozen := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			events, now := eng.Progress()
			if now != lastNow {
				// Simulated time moved: healthy. Restart the clock.
				lastEvents, lastNow = events, now
				frozen = time.Now()
				continue
			}
			if events == lastEvents {
				// No events either: the engine is idle (between attempts,
				// or the run is wedged in host code where an interrupt
				// could never be delivered anyway). Don't count idle time
				// toward the stall window.
				frozen = time.Now()
				continue
			}
			lastEvents = events
			if stalled := time.Since(frozen); stalled >= window {
				mStallTrips.Inc()
				eng.Interrupt(sim.ReasonStalled, fmt.Sprintf(
					"sim time frozen at %.3f ms for %s while events advanced",
					now.Millis(), stalled.Round(time.Millisecond)))
				return
			}
		}
	}()
	return func() { close(done) }
}
