package harness

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/trace"
)

// TestFailureCarriesTraceTail checks that a failing untraced run still
// ships its trailing trace events: the harness records into a private
// ring when Spec.Trace is nil.
func TestFailureCarriesTraceTail(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "boom", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			panic("deliberate")
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
	})
	if out.Err == nil {
		t.Fatal("expected failure")
	}
	if len(out.Err.TraceTail) == 0 {
		t.Fatal("failed run has no trace tail")
	}
	last := out.Err.TraceTail[len(out.Err.TraceTail)-1]
	if !strings.HasPrefix(last.Name, "run failed:") {
		t.Fatalf("tail does not end with the failure instant: %q", last.Name)
	}
	if out.Err.TraceTail[0].Track != "harness" {
		t.Fatalf("tail missing harness lifecycle events: %+v", out.Err.TraceTail[0])
	}
}

// TestTracedRunRecordsRetries checks that all attempts of a retried run
// land in the caller's recorder, separated by lifecycle instants, and
// that OnRetry observes the degradation.
func TestTracedRunRecordsRetries(t *testing.T) {
	tr := trace.New()
	var retries []bench.Size
	out := Run(Spec{
		Bench: fakeBench{name: "hog", run: func(s *device.System, _ bench.Mode, size bench.Size) {
			s.BeginROI()
			if size == bench.SizeMedium {
				burnEvents(s, 10000)
			} else {
				burnEvents(s, 10)
			}
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 1000},
		Trace:  tr,
		OnRetry: func(next bench.Size, err *RunError) {
			retries = append(retries, next)
		},
	})
	if out.Err != nil {
		t.Fatalf("degraded run should succeed: %v", out.Err)
	}
	if !out.Degraded || out.Attempts != 2 {
		t.Fatalf("degraded=%v attempts=%d", out.Degraded, out.Attempts)
	}
	if len(retries) != 1 || retries[0] != bench.SizeSmall {
		t.Fatalf("OnRetry saw %v", retries)
	}
	if out.TraceEvents != tr.Len() || out.TraceEvents == 0 {
		t.Fatalf("TraceEvents = %d, recorder holds %d", out.TraceEvents, tr.Len())
	}
	var starts, retriesSeen int
	for _, e := range tr.Events() {
		if e.Track != "harness" {
			continue
		}
		if strings.HasPrefix(e.Name, "attempt ") {
			starts++
		}
		if strings.HasPrefix(e.Name, "retry at ") {
			retriesSeen++
		}
	}
	if starts != 2 || retriesSeen != 1 {
		t.Fatalf("lifecycle instants: %d starts, %d retries", starts, retriesSeen)
	}
}

// TestOutcomeJSONSymmetry pins the sweep-doc fix: sim time and event
// counts are present on success exactly as on failure.
func TestOutcomeJSONSymmetry(t *testing.T) {
	tr := trace.New()
	ok := Run(Spec{
		Bench: fakeBench{name: "ok", run: okRun(100)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Trace: tr,
	})
	bad := Run(Spec{
		Bench: fakeBench{name: "boom", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			burnEvents(s, 100)
			s.Drain()
			panic("deliberate")
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
	})
	okJSON, badJSON := ok.JSON(), bad.JSON()
	if ok.Err != nil || bad.Err == nil {
		t.Fatalf("fixture outcomes wrong: ok.Err=%v bad.Err=%v", ok.Err, bad.Err)
	}
	if okJSON.Events == 0 || okJSON.SimMs <= 0 {
		t.Fatalf("success omits telemetry: %+v", okJSON)
	}
	if badJSON.Events == 0 || badJSON.SimMs <= 0 {
		t.Fatalf("failure omits telemetry: %+v", badJSON)
	}
	if okJSON.TraceEvents == 0 {
		t.Fatal("traced success reports zero trace events")
	}
	if len(badJSON.Error.TraceTail) == 0 {
		t.Fatal("failure JSON missing trace tail")
	}
}
