package harness

import (
	"repro/internal/metrics"
)

// Run-lifecycle metrics, registered on metrics.Default at package init so
// the hetsimd daemon's GET /metrics and cmd/experiments' -metrics summary
// expose the same counters without any wiring. The failure counters are
// pre-resolved per Kind into an array — incrementing one is a single
// atomic add, keeping the harness off every allocation profile.
var (
	mRunsStarted = metrics.Default.Counter("sim_runs_started_total",
		"Benchmark runs the harness began executing (replayed runs excluded).")
	mRunsCompleted = metrics.Default.Counter("sim_runs_completed_total",
		"Benchmark runs that finished with a report.")
	mRunsFailed = metrics.Default.CounterVec("sim_runs_failed_total",
		"Benchmark runs that ended in a RunError, by failure kind.", "kind")
	mRunsRetried = metrics.Default.Counter("sim_runs_retried_total",
		"Retry attempts (degraded re-runs after budget failures).")
	mRunEvents = metrics.Default.Counter("sim_run_events_total",
		"Simulation engine events executed by final run attempts.")
	mEventsPerSec = metrics.Default.Histogram("sim_run_events_per_second",
		"Engine event throughput per run (final-attempt events over total wall time).",
		metrics.LogBuckets(1e3, 1e9, 2))
	mStallTrips = metrics.Default.Counter("sim_stall_trips_total",
		"Stall-watchdog interrupts delivered to wedged runs.")
	mJournalResumes = metrics.Default.Counter("sim_journal_resumes_total",
		"Checkpoint journals opened with recorded outcomes to replay.")
	mJournalReplayedRuns = metrics.Default.Counter("sim_journal_replayed_runs_total",
		"Run outcomes restored from checkpoint journals instead of executed.")

	// failedByKind pre-resolves one counter per failure kind; kinds are a
	// small closed enum so the array resolves fully at init.
	failedByKind [KindStalled + 1]metrics.Counter
)

func init() {
	for k := KindPanic; k <= KindStalled; k++ {
		failedByKind[k] = mRunsFailed.With(k.String())
	}
}

// failedCounter returns the counter for a failure kind (tolerating an
// out-of-range Kind from future code by resolving it dynamically).
func failedCounter(k Kind) metrics.Counter {
	if k >= 0 && int(k) < len(failedByKind) {
		return failedByKind[k]
	}
	return mRunsFailed.With(k.String())
}
