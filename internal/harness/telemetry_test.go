package harness

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/trace"
)

// lifecycleInstants extracts the harness's lifecycle trace instants
// (attempt start, retry, failure) from a recorder.
func lifecycleInstants(rec *trace.Recorder) []trace.Event {
	var out []trace.Event
	for _, e := range rec.Events() {
		if e.Cat == "harness" && e.Kind == trace.Instant {
			out = append(out, e)
		}
	}
	return out
}

// requestIDArg returns the request_id arg value on an event ("" if absent).
func requestIDArg(e trace.Event) string {
	for _, a := range e.Args {
		if a.Key == "request_id" {
			if s, ok := a.Val.(string); ok {
				return s
			}
		}
	}
	return ""
}

// TestRunRequestIDInTraceArgs: a Spec carrying a correlation ID stamps it
// on every harness lifecycle instant, success and failure paths alike, so
// a Perfetto trace ties back to the request that produced it.
func TestRunRequestIDInTraceArgs(t *testing.T) {
	rec := trace.New()
	out := Run(Spec{
		Bench: fakeBench{name: "traced-ok", run: okRun(50)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Trace: rec, RequestID: "req-42",
	})
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	instants := lifecycleInstants(rec)
	if len(instants) == 0 {
		t.Fatal("run emitted no harness lifecycle instants")
	}
	for _, e := range instants {
		if got := requestIDArg(e); got != "req-42" {
			t.Fatalf("instant %q request_id = %q, want req-42", e.Name, got)
		}
	}

	// Failure path: the "run failed" instant carries the ID too.
	rec = trace.New()
	out = Run(Spec{
		Bench: fakeBench{name: "traced-boom", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			panic("deliberate")
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Trace: rec, RequestID: "req-43",
	})
	if out.Err == nil {
		t.Fatal("panicking run reported success")
	}
	failed := false
	for _, e := range lifecycleInstants(rec) {
		if got := requestIDArg(e); got != "req-43" {
			t.Fatalf("instant %q request_id = %q, want req-43", e.Name, got)
		}
		if e.Name == "run failed: panic" {
			failed = true
		}
	}
	if !failed {
		t.Fatal("trace misses the run-failed instant")
	}
}

// TestRunNoRequestIDNoArgs: without a correlation ID the lifecycle
// instants carry no args at all — CLI traces stay exactly as before.
func TestRunNoRequestIDNoArgs(t *testing.T) {
	rec := trace.New()
	out := Run(Spec{
		Bench: fakeBench{name: "untagged", run: okRun(50)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Trace: rec,
	})
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	for _, e := range lifecycleInstants(rec) {
		if len(e.Args) != 0 {
			t.Fatalf("instant %q carries args %v without a request ID", e.Name, e.Args)
		}
	}
}
