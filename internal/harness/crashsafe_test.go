package harness

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
)

// TestRunCanceledBeforeStart: a spec whose context is already canceled
// fails immediately as KindCanceled without building a system.
func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Run(Spec{
		Bench: fakeBench{name: "never", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			t.Error("canceled run must not execute")
		}},
		Mode: bench.ModeCopy, Size: bench.SizeSmall,
		Ctx: ctx,
	})
	if out.Err == nil || out.Err.Kind != KindCanceled {
		t.Fatalf("outcome = %+v, want KindCanceled", out.Err)
	}
	if out.Sys != nil {
		t.Fatal("canceled-before-start run built a system")
	}
	if out.Attempts != 1 {
		t.Fatalf("canceled run retried: %d attempts", out.Attempts)
	}
}

// TestRunCanceledMidRun: cancellation lands inside the engine's event
// loop (through the periodic check) and comes back as KindCanceled with
// the trace tail, like every other abort. Cancellation also suppresses
// the retry a budget failure would normally get.
func TestRunCanceledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := Run(Spec{
		Bench: fakeBench{name: "canceled", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			// Cancel from inside the run, then keep burning events well
			// past the engine's next periodic check. EndROI drains the
			// engine, which is where the interrupt lands.
			s.Eng.Schedule(1, cancel)
			burnEvents(s, 50000)
			s.EndROI()
		}},
		Mode: bench.ModeCopy, Size: bench.SizeMedium, // medium: a retry size exists
		Ctx:  ctx,
	})
	if out.Err == nil || out.Err.Kind != KindCanceled {
		t.Fatalf("outcome = %+v, want KindCanceled", out.Err)
	}
	if out.Err.Kind.String() != "canceled" {
		t.Fatalf("kind string = %q", out.Err.Kind)
	}
	if out.Attempts != 1 {
		t.Fatalf("canceled run must not retry: %d attempts", out.Attempts)
	}
	if len(out.Err.TraceTail) == 0 {
		t.Fatal("canceled run carries no trace tail")
	}
	if out.Err.Events == 0 {
		t.Fatal("canceled run reports zero events")
	}
}

// TestRunStalled: a livelocked worklist — events churning forever at one
// simulated tick — is killed by the stall watchdog as KindStalled instead
// of hanging the sweep worker.
func TestRunStalled(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "livelock", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			var tick func()
			tick = func() { s.Eng.Schedule(0, tick) } // same-tick forever
			s.Eng.Schedule(1, tick)
			s.Eng.Run()
		}},
		Mode: bench.ModeCopy, Size: bench.SizeSmall,
		Stall: 100 * time.Millisecond,
	})
	if out.Err == nil || out.Err.Kind != KindStalled {
		t.Fatalf("outcome = %+v, want KindStalled", out.Err)
	}
	if !strings.Contains(out.Err.Msg, "frozen") {
		t.Fatalf("stall message: %s", out.Err.Msg)
	}
	if len(out.Err.TraceTail) == 0 {
		t.Fatal("stalled run carries no trace tail")
	}
	if out.Attempts != 1 {
		t.Fatalf("stalled run must not retry: %d attempts", out.Attempts)
	}
}

// TestRunStallWatchdogSparesHealthyRuns: a run that keeps advancing
// simulated time must never trip the watchdog, however slow the window.
func TestRunStallWatchdogSparesHealthyRuns(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "healthy", run: okRun(20000)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Stall: 25 * time.Millisecond,
	})
	if out.Err != nil {
		t.Fatalf("healthy run killed: %v", out.Err)
	}
}

// TestRunWallDurations: every outcome carries its total wall cost, and
// each failed attempt carries its own.
func TestRunWallDurations(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "ok", run: okRun(100)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
	})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Wall <= 0 {
		t.Fatalf("success wall = %v, want > 0", out.Wall)
	}

	// A budget failure that retries: two attempts, each with its own wall
	// duration, summing (with the rest of the loop) into Outcome.Wall.
	out = Run(Spec{
		Bench:  fakeBench{name: "slow", run: okRun(100000)},
		Mode:   bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 1000},
	})
	if out.Err == nil || out.Attempts != 2 {
		t.Fatalf("rigged budget run: err=%v attempts=%d", out.Err, out.Attempts)
	}
	if len(out.AttemptErrors) != 2 {
		t.Fatalf("attempt errors = %d, want 2", len(out.AttemptErrors))
	}
	var sum time.Duration
	for i, ae := range out.AttemptErrors {
		if ae.Wall <= 0 {
			t.Fatalf("attempt %d wall = %v, want > 0", i+1, ae.Wall)
		}
		sum += ae.Wall
	}
	if out.Wall < sum {
		t.Fatalf("outcome wall %v < sum of attempt walls %v", out.Wall, sum)
	}
	if out.Err.Wall != out.AttemptErrors[1].Wall {
		t.Fatal("final error's wall differs from its attempt record")
	}
	// And the JSON forms surface it.
	if js := out.JSON(); js.WallMs <= 0 || js.Error.WallMs <= 0 {
		t.Fatalf("wall_ms missing from JSON: %+v", js)
	}
}

// TestOutcomeRecordRoundTrip is the byte-identity foundation of resume:
// an Outcome pushed through its journal record and back must render the
// same report text and the same JSON document as the original.
func TestOutcomeRecordRoundTrip(t *testing.T) {
	check := func(t *testing.T, out *Outcome) {
		t.Helper()
		data, err := json.Marshal(out.Record())
		if err != nil {
			t.Fatal(err)
		}
		var rec OutcomeRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		back := rec.Outcome()
		if back.Sys != nil {
			t.Fatal("replayed outcome must not carry a live system")
		}
		if (out.Report == nil) != (back.Report == nil) {
			t.Fatal("report presence changed")
		}
		if out.Report != nil && out.Report.String() != back.Report.String() {
			t.Fatalf("rendered report changed across the round trip:\n--- original\n%s\n--- replayed\n%s",
				out.Report.String(), back.Report.String())
		}
		aj, _ := json.Marshal(out.JSON())
		bj, _ := json.Marshal(back.JSON())
		if string(aj) != string(bj) {
			t.Fatalf("outcome JSON changed across the round trip:\n%s\nvs\n%s", aj, bj)
		}
		// Re-recording must be byte-stable too (journal idempotence).
		data2, _ := json.Marshal(back.Record())
		if string(data) != string(data2) {
			t.Fatal("record is not byte-stable across a round trip")
		}
	}

	t.Run("success", func(t *testing.T) {
		out := Run(Spec{
			Bench: fakeBench{name: "ok", run: okRun(5000)},
			Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
		})
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		check(t, out)
	})
	t.Run("failure", func(t *testing.T) {
		out := Run(Spec{
			Bench:  fakeBench{name: "slow", run: okRun(100000)},
			Mode:   bench.ModeCopy, Size: bench.SizeMedium,
			Budget: Budget{MaxEvents: 1000},
		})
		if out.Err == nil {
			t.Fatal("rigged run succeeded")
		}
		check(t, out)
	})
}

// TestRunLogRoundTrip: outcomes journaled through a RunLog replay
// identically, canceled outcomes are skipped, and a nil log is inert.
func TestRunLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.journal")
	log, err := CreateRunLog(path, "test", "fp1", []string{"a|copy", "b|copy"})
	if err != nil {
		t.Fatal(err)
	}
	ok := Run(Spec{Bench: fakeBench{name: "ok", run: okRun(500)}, Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall})
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	if err := log.Append("a|copy", ok); err != nil {
		t.Fatal(err)
	}
	// A canceled outcome must NOT be journaled: it is shutdown residue,
	// and a resumed sweep should re-run the benchmark.
	canceled := &Outcome{Err: &RunError{Kind: KindCanceled, Benchmark: "fake/b"}, Attempts: 1}
	if err := log.Append("b|copy", canceled); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRunLog(path, "test", "fp1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Resumed() || re.ReplayedCount() != 1 {
		t.Fatalf("resumed=%v replayed=%d, want true/1", re.Resumed(), re.ReplayedCount())
	}
	got := re.Replayed("a|copy")
	if got == nil || got.Report == nil || got.Report.String() != ok.Report.String() {
		t.Fatal("replayed outcome does not match the journaled one")
	}
	if re.Replayed("b|copy") != nil {
		t.Fatal("canceled outcome was journaled")
	}

	// Nil-log inertness: the un-journaled sweep path.
	var nilLog *RunLog
	if nilLog.Replayed("a|copy") != nil || nilLog.Append("x", ok) != nil ||
		nilLog.Err() != nil || nilLog.Resumed() || nilLog.Close() != nil {
		t.Fatal("nil RunLog is not inert")
	}
}

// TestOpenRunLogMissingFile: resuming with no journal on disk is a fresh
// start, not an error.
func TestOpenRunLogMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "none.journal")
	log, err := OpenRunLog(path, "test", "fp1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if log.Resumed() || log.ReplayedCount() != 0 {
		t.Fatal("missing journal must open as a fresh log")
	}
}
