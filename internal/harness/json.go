package harness

import (
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TraceEventJSON is the compact marshal form of one trailing trace event
// on a failed run.
type TraceEventJSON struct {
	Name    string  `json:"name"`
	Cat     string  `json:"cat,omitempty"`
	Track   string  `json:"track,omitempty"`
	Comp    string  `json:"comp"`
	Instant bool    `json:"instant,omitempty"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms,omitempty"`
}

func traceTailJSON(tail []trace.Event) []TraceEventJSON {
	out := make([]TraceEventJSON, 0, len(tail))
	for _, e := range tail {
		out = append(out, TraceEventJSON{
			Name: e.Name, Cat: e.Cat, Track: e.Track, Comp: e.Comp.String(),
			Instant: e.Kind == trace.Instant,
			StartMs: e.Start.Millis(), DurMs: e.Dur().Millis(),
		})
	}
	return out
}

// RunErrorJSON is the marshal-friendly form of a RunError: every field a
// post-sweep diagnosis needs, with enum types rendered as their names and
// the panic stack dropped (it is bytes of prose, not data).
type RunErrorJSON struct {
	Benchmark string           `json:"benchmark"`
	Mode      string           `json:"mode"`
	Size      string           `json:"size"`
	Kind      string           `json:"kind"`
	Msg       string           `json:"msg"`
	Attempt   int              `json:"attempt"`
	SimMs     float64          `json:"sim_ms"`
	Events    uint64           `json:"events"`
	WallMs    float64          `json:"wall_ms,omitempty"`
	TraceTail []TraceEventJSON `json:"trace_tail,omitempty"`
}

// JSON converts the error for machine-readable output.
func (e *RunError) JSON() RunErrorJSON {
	return RunErrorJSON{
		Benchmark: e.Benchmark,
		Mode:      e.Mode.String(),
		Size:      e.Size.String(),
		Kind:      e.Kind.String(),
		Msg:       e.Msg,
		Attempt:   e.Attempt,
		SimMs:     e.SimTime.Millis(),
		Events:    e.Events,
		WallMs:    float64(e.Wall) / float64(time.Millisecond),
		TraceTail: traceTailJSON(e.TraceTail),
	}
}

// OutcomeJSON is the machine-readable form of one harness run: the
// outcome telemetry plus either the per-run report or the failure.
// SimMs/Events are present on success and failure alike — traced and
// untraced, succeeding and failing runs all report the same core fields.
type OutcomeJSON struct {
	Size          string           `json:"size"`
	Attempts      int              `json:"attempts"`
	Degraded      bool             `json:"degraded"`
	SimMs         float64          `json:"sim_ms"`
	Events        uint64           `json:"events"`
	WallMs        float64          `json:"wall_ms,omitempty"`
	TraceEvents   int              `json:"trace_events,omitempty"`
	Report        *core.ReportJSON `json:"report,omitempty"`
	Error         *RunErrorJSON    `json:"error,omitempty"`
	AttemptErrors []RunErrorJSON   `json:"attempt_errors,omitempty"`
}

// JSON converts the outcome for machine-readable output.
func (o *Outcome) JSON() OutcomeJSON {
	out := OutcomeJSON{
		Size:        o.Size.String(),
		Attempts:    o.Attempts,
		Degraded:    o.Degraded,
		SimMs:       o.SimTime.Millis(),
		Events:      o.Events,
		WallMs:      float64(o.Wall) / float64(time.Millisecond),
		TraceEvents: o.TraceEvents,
	}
	if o.Report != nil {
		rep := o.Report.JSON()
		out.Report = &rep
	}
	if o.Err != nil {
		e := o.Err.JSON()
		out.Error = &e
	}
	for i := range o.AttemptErrors {
		out.AttemptErrors = append(out.AttemptErrors, o.AttemptErrors[i].JSON())
	}
	return out
}
