package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
)

// synthRun builds a deterministic pseudo-random workload from seed: a
// dependency-correct pipeline of copies, kernels (optionally with dynamic
// parallelism, barriers, scratch traffic, and atomics), and a CPU reduction.
// Every data dependency goes through a Handle, which is the contract the
// parallel engine's generation hoisting relies on.
func synthRun(seed int64) func(s *device.System, mode bench.Mode, size bench.Size) {
	return func(s *device.System, _ bench.Mode, _ bench.Size) {
		rng := rand.New(rand.NewSource(seed))
		n := 512 + 4*rng.Intn(384) // multiple of 4: LdN below reads aligned quads
		block := []int{32, 64, 128}[rng.Intn(3)]
		in := device.AllocBuf[float32](s, n, "in", device.Host)
		out := device.AllocBuf[float32](s, n, "out", device.Host)
		hist := device.AllocBuf[int32](s, 64, "hist", device.Host)
		for i := range in.V {
			in.V[i] = float32(rng.Intn(1000)) * 0.5
		}

		s.BeginROI()
		din, h1 := device.ToDevice(s, in)
		dout, h2 := device.ToDevice(s, out)
		dhist, h3 := device.ToDevice(s, hist)
		var deps []*device.Handle
		for _, h := range []*device.Handle{h1, h2, h3} {
			if h != nil {
				deps = append(deps, h)
			}
		}
		last := s.AfterAll(deps...)

		kernels := 1 + rng.Intn(3)
		for kk := 0; kk < kernels; kk++ {
			stride := 1 + rng.Intn(7)
			doSync := rng.Intn(2) == 0
			doScratch := rng.Intn(2) == 0
			child := kk == 0 && rng.Intn(3) == 0
			grid := 2 + rng.Intn(6)
			scratch := 0
			if doScratch {
				scratch = 256
			}
			last = s.LaunchAsync(device.KernelSpec{
				Name: fmt.Sprintf("synth%d", kk), Grid: grid, Block: block,
				ScratchBytes: scratch,
				Func: func(t *device.Thread) {
					i := (t.Global() * stride) % n
					v := device.Ld(t, din, i)
					t.FLOP(4)
					if doScratch {
						t.ScratchOp(2)
					}
					device.AtomicAddI32(t, dhist, t.Global()%64, 1)
					if doSync {
						t.Sync()
					}
					vec := device.LdN(t, din, (i/4)*4, 4)
					acc := v
					for _, x := range vec {
						acc += x
					}
					device.St(t, dout, i, acc)
					if child && t.CTA() == 0 && t.Lane() == 0 {
						t.LaunchChild(device.KernelSpec{
							Name: "synth_child", Grid: 2, Block: 32,
							Func: func(ct *device.Thread) {
								j := ct.Global() % n
								device.St(ct, dout, j, device.Ld(ct, din, j)+1)
							},
						})
					}
				},
			}, last)
		}

		hb := device.FromDevice(s, out, dout, last)
		hh := device.FromDevice(s, hist, dhist, last)
		var cpuDeps []*device.Handle
		for _, h := range []*device.Handle{hb, hh} {
			if h != nil {
				cpuDeps = append(cpuDeps, h)
			}
		}
		cpuDeps = append(cpuDeps, last)
		done := s.CPUTaskAsync(device.CPUTaskSpec{
			Name: "reduce", Threads: 2,
			Func: func(c *device.CPUThread) {
				var acc int32
				for i := c.TID(); i < hist.Len(); i += c.Threads() {
					acc += device.Ld(c, hist, i)
				}
				c.FLOP(hist.Len())
				_ = acc
			},
		}, cpuDeps...)
		s.Wait(done)
		s.EndROI()

		var sum float64
		for _, v := range out.V {
			sum += float64(v)
		}
		var hsum int64
		for _, v := range hist.V {
			hsum += int64(v)
		}
		s.AddResult(sum, float64(hsum))
	}
}

// runDigest captures everything the determinism contract covers: the full
// report, run telemetry, functional results, raw hardware counters, and the
// complete trace event stream.
type runDigest struct {
	report   string
	simTime  sim.Tick
	events   uint64
	result   []float64
	counters map[string]uint64
	trace    []trace.Event
}

func digestRun(t *testing.T, run func(s *device.System, mode bench.Mode, size bench.Size), mode bench.Mode, par int) runDigest {
	t.Helper()
	rec := trace.New()
	out := Run(Spec{
		Bench: fakeBench{name: "synth", run: run},
		Mode:  mode, Size: bench.SizeSmall,
		Parallel: par, Trace: rec,
	})
	if out.Err != nil {
		t.Fatalf("par=%d mode=%v: run failed: %v", par, mode, out.Err)
	}
	rj, err := json.Marshal(out.Report.JSON())
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return runDigest{
		report:   string(rj),
		simTime:  out.SimTime,
		events:   out.Events,
		result:   out.Sys.Result,
		counters: out.Sys.Ctr.Snapshot(),
		trace:    rec.Events(),
	}
}

// diffDigests fails the test with the first field that diverges.
func diffDigests(t *testing.T, label string, serial, par runDigest) {
	t.Helper()
	if serial.simTime != par.simTime {
		t.Errorf("%s: sim time %v != serial %v", label, par.simTime, serial.simTime)
	}
	if serial.events != par.events {
		t.Errorf("%s: events %d != serial %d", label, par.events, serial.events)
	}
	if !reflect.DeepEqual(serial.result, par.result) {
		t.Errorf("%s: results %v != serial %v", label, par.result, serial.result)
	}
	if !reflect.DeepEqual(serial.counters, par.counters) {
		for k, v := range serial.counters {
			if par.counters[k] != v {
				t.Errorf("%s: counter %s = %d, serial %d", label, k, par.counters[k], v)
			}
		}
		for k := range par.counters {
			if _, ok := serial.counters[k]; !ok {
				t.Errorf("%s: extra counter %s", label, k)
			}
		}
	}
	if serial.report != par.report {
		t.Errorf("%s: report JSON diverged:\npar:    %s\nserial: %s", label, par.report, serial.report)
	}
	if len(serial.trace) != len(par.trace) {
		t.Errorf("%s: %d trace events, serial %d", label, len(par.trace), len(serial.trace))
	} else {
		for i := range serial.trace {
			if !reflect.DeepEqual(serial.trace[i], par.trace[i]) {
				t.Errorf("%s: trace event %d diverged:\npar:    %+v\nserial: %+v",
					label, i, par.trace[i], serial.trace[i])
				break
			}
		}
	}
}

// TestParallelByteIdentical is the tentpole contract on the harness level:
// for fixed workloads, every -par value reproduces the serial run exactly —
// report, counters, results, telemetry, and the full trace stream — on both
// system kinds.
func TestParallelByteIdentical(t *testing.T) {
	for _, mode := range []bench.Mode{bench.ModeCopy, bench.ModeLimitedCopy} {
		for seed := int64(1); seed <= 3; seed++ {
			run := synthRun(seed)
			serial := digestRun(t, run, mode, 0)
			for _, par := range []int{2, 3, 4, 8} {
				label := fmt.Sprintf("mode=%v seed=%d par=%d", mode, seed, par)
				diffDigests(t, label, serial, digestRun(t, run, mode, par))
			}
		}
	}
}

// TestParallelPersistentFallback checks a persistent kernel trips the
// documented serial fallback without disturbing determinism: the mixed
// workload (regular kernel, persistent kernel, regular kernel) stays
// byte-identical at every par.
func TestParallelPersistentFallback(t *testing.T) {
	run := func(s *device.System, _ bench.Mode, _ bench.Size) {
		n := 1024
		buf := device.AllocBuf[float32](s, n, "buf", device.Host)
		s.BeginROI()
		dbuf, hc := device.ToDevice(s, buf)
		var deps []*device.Handle
		if hc != nil {
			deps = append(deps, hc)
		}
		pre := s.LaunchAsync(device.KernelSpec{
			Name: "warmup", Grid: 4, Block: 64,
			Func: func(t *device.Thread) {
				device.St(t, dbuf, t.Global()%n, float32(t.Global()))
			},
		}, deps...)
		p := s.LaunchPersistent(device.PersistentKernelSpec{
			Name: "resident", Block: 64,
			Func: func(t *device.Thread) {
				i := (t.Global() * 3) % n
				device.St(t, dbuf, i, device.Ld(t, dbuf, i)+1)
			},
		}, pre)
		feed := p.Feed(4)
		p.Feed(4, feed)
		p.Close()
		post := s.LaunchAsync(device.KernelSpec{
			Name: "cooldown", Grid: 4, Block: 64,
			Func: func(t *device.Thread) {
				i := t.Global() % n
				device.St(t, dbuf, i, device.Ld(t, dbuf, i)*2)
			},
		}, p.Done())
		hb := device.FromDevice(s, buf, dbuf, post)
		if hb == nil {
			hb = post
		}
		s.Wait(hb)
		s.EndROI()
		var sum float64
		for _, v := range buf.V {
			sum += float64(v)
		}
		s.AddResult(sum)
	}
	for _, mode := range []bench.Mode{bench.ModeCopy, bench.ModeLimitedCopy} {
		serial := digestRun(t, run, mode, 0)
		for _, par := range []int{2, 4, 8} {
			label := fmt.Sprintf("persistent mode=%v par=%d", mode, par)
			diffDigests(t, label, serial, digestRun(t, run, mode, par))
		}
	}
}

// TestParallelDifferentialFuzz sweeps randomized workload shapes against
// randomized worker counts — the differential fuzz harness from the issue.
// The master seed is fixed so failures replay; each case logs its seeds.
func TestParallelDifferentialFuzz(t *testing.T) {
	cases := 24
	if testing.Short() {
		cases = 6
	}
	master := rand.New(rand.NewSource(0x9e3779b9))
	for c := 0; c < cases; c++ {
		seed := master.Int63()
		par := 2 + master.Intn(7)
		mode := []bench.Mode{bench.ModeCopy, bench.ModeLimitedCopy}[master.Intn(2)]
		run := synthRun(seed)
		serial := digestRun(t, run, mode, 0)
		label := fmt.Sprintf("fuzz case=%d seed=%d mode=%v par=%d", c, seed, mode, par)
		diffDigests(t, label, serial, digestRun(t, run, mode, par))
		if t.Failed() {
			t.Fatalf("%s: divergence (replay with this seed)", label)
		}
	}
}
