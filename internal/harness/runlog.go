package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/fsx"
	"repro/internal/journal"
)

// RunLog is the typed checkpoint layer over the journal WAL: a crash-safe
// record of per-run Outcomes keyed by slot name, shared by the sweep
// commands. Creating a log starts a fresh journal; opening one replays it
// and exposes the recorded outcomes so the sweep re-runs only what is
// missing. Append is safe for concurrent use by pool workers; every other
// method is called before or after the sweep. A nil *RunLog ignores every
// call, so un-journaled sweeps need no branching at the call sites.
//
// Canceled outcomes are deliberately not journaled: a KindCanceled run is
// an artifact of the shutdown that interrupted it, not a result, and
// recording it would make a resumed sweep replay the interruption instead
// of re-running the benchmark.
type RunLog struct {
	mu       sync.Mutex
	j        *journal.Journal
	replayed map[string]*Outcome
	resumed  bool
	err      error // first append failure, sticky
}

// CreateRunLog starts a fresh journal at path (truncating any existing
// file), stamped with the producing command's kind and the sweep's config
// fingerprint.
func CreateRunLog(path, kind, fingerprint string, slots []string) (*RunLog, error) {
	return CreateRunLogOn(fsx.OS, path, kind, fingerprint, slots)
}

// CreateRunLogOn is CreateRunLog over an injectable filesystem.
func CreateRunLogOn(fsys fsx.FS, path, kind, fingerprint string, slots []string) (*RunLog, error) {
	j, err := journal.CreateOn(fsys, path, kind, fingerprint, slots)
	if err != nil {
		return nil, err
	}
	return &RunLog{j: j}, nil
}

// OpenRunLog resumes from an existing journal at path, validating its
// kind and fingerprint and replaying its outcomes. A missing file is not
// an error: resuming a sweep that never checkpointed is just a fresh
// start, so the log is created instead. A journal for a different
// configuration (fingerprint mismatch) or a corrupt one fails loudly.
func OpenRunLog(path, kind, fingerprint string, slots []string) (*RunLog, error) {
	return OpenRunLogOn(fsx.OS, path, kind, fingerprint, slots)
}

// OpenRunLogOn is OpenRunLog over an injectable filesystem.
func OpenRunLogOn(fsys fsx.FS, path, kind, fingerprint string, slots []string) (*RunLog, error) {
	if _, err := fsys.Stat(path); err != nil && os.IsNotExist(err) {
		return CreateRunLogOn(fsys, path, kind, fingerprint, slots)
	}
	j, recs, err := journal.OpenOn(fsys, path, kind, fingerprint)
	if err != nil {
		return nil, err
	}
	l := &RunLog{j: j, replayed: make(map[string]*Outcome, len(recs)), resumed: true}
	for _, rec := range recs {
		var r OutcomeRecord
		if err := json.Unmarshal(rec.Payload, &r); err != nil {
			j.Close()
			return nil, fmt.Errorf("journal: record %d (%s): bad outcome payload: %w", rec.Seq, rec.Slot, err)
		}
		// Later records supersede earlier ones for the same slot (a slot
		// can repeat when an earlier resume re-ran it).
		l.replayed[rec.Slot] = r.Outcome()
	}
	if len(l.replayed) > 0 {
		mJournalResumes.Inc()
		mJournalReplayedRuns.Add(uint64(len(l.replayed)))
	}
	return l, nil
}

// Replayed returns the journaled outcome for slot, or nil if the slot has
// not completed (or the log is nil). The outcome's Sys is always nil —
// live machine state does not survive persistence.
func (l *RunLog) Replayed(slot string) *Outcome {
	if l == nil {
		return nil
	}
	return l.replayed[slot]
}

// Resumed reports whether the log replayed an existing journal (false for
// a fresh one, and for a nil log).
func (l *RunLog) Resumed() bool { return l != nil && l.resumed }

// ReplayedCount reports how many distinct slots the log replayed.
func (l *RunLog) ReplayedCount() int {
	if l == nil {
		return 0
	}
	return len(l.replayed)
}

// Append durably records one completed run. Canceled outcomes are
// skipped (see the type comment). The first failure is sticky: later
// appends become no-ops and Err reports it, so a full disk degrades the
// sweep to un-journaled rather than spamming one error per run.
func (l *RunLog) Append(slot string, out *Outcome) error {
	if l == nil {
		return nil
	}
	if out.Err != nil && out.Err.Kind == KindCanceled {
		return nil
	}
	payload, err := json.Marshal(out.Record())
	if err != nil {
		return l.fail(fmt.Errorf("journal: marshal outcome for %s: %w", slot, err))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.j.Append(slot, payload); err != nil {
		l.err = err
		return err
	}
	return nil
}

func (l *RunLog) fail(err error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
	return err
}

// Err reports the first append failure, if any.
func (l *RunLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Path reports the journal file path ("" for a nil log).
func (l *RunLog) Path() string {
	if l == nil {
		return ""
	}
	return l.j.Path()
}

// Close syncs and closes the journal.
func (l *RunLog) Close() error {
	if l == nil {
		return nil
	}
	return l.j.Close()
}
