package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
)

// FaultPlan describes the degraded-hardware faults to inject into a run:
// a throttled PCIe link, a slow page-fault handler, and/or one DRAM
// channel stalled for a sim-time window. It is the parsed form of the
// -inject CLI flag and maps onto config.FaultConfig knobs.
type FaultPlan struct {
	// PCIeBWFrac in (0,1) cuts the copy-engine link to that fraction of
	// peak bandwidth; 0 leaves it nominal.
	PCIeBWFrac float64
	// FaultLatMult > 1 multiplies page-fault service latency; 0 or 1
	// leaves it nominal.
	FaultLatMult float64
	// DRAM channel stall window (simulated microseconds); active when
	// DRAMStallEndUs > DRAMStallStartUs.
	DRAMStallChannel int
	DRAMStallStartUs float64
	DRAMStallEndUs   float64
}

// Active reports whether the plan injects anything.
func (p *FaultPlan) Active() bool {
	return p != nil && (p.PCIeBWFrac > 0 && p.PCIeBWFrac < 1 ||
		p.FaultLatMult > 1 || p.DRAMStallEndUs > p.DRAMStallStartUs)
}

// Apply writes the plan into a system configuration's fault knobs.
func (p *FaultPlan) Apply(cfg *config.System) {
	if p == nil {
		return
	}
	cfg.Faults = config.FaultConfig{
		PCIeBWFrac:       p.PCIeBWFrac,
		FaultLatMult:     p.FaultLatMult,
		DRAMStallChannel: p.DRAMStallChannel,
		DRAMStallStartUs: p.DRAMStallStartUs,
		DRAMStallEndUs:   p.DRAMStallEndUs,
	}
}

// String renders the plan in the -inject flag syntax.
func (p *FaultPlan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	if p.PCIeBWFrac > 0 && p.PCIeBWFrac < 1 {
		parts = append(parts, fmt.Sprintf("pcie=%g", p.PCIeBWFrac))
	}
	if p.FaultLatMult > 1 {
		parts = append(parts, fmt.Sprintf("fault=%g", p.FaultLatMult))
	}
	if p.DRAMStallEndUs > p.DRAMStallStartUs {
		parts = append(parts, fmt.Sprintf("dram=%d:%g:%g",
			p.DRAMStallChannel, p.DRAMStallStartUs, p.DRAMStallEndUs))
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the -inject flag syntax: comma-separated terms
//
//	pcie=FRAC        throttle the PCIe/copy link to FRAC of peak, 0<FRAC<1
//	fault=MULT       multiply page-fault service latency by MULT >= 1
//	dram=CH:FROM:TO  stall DRAM channel CH for [FROM,TO) simulated µs
//
// e.g. "pcie=0.25,fault=8,dram=0:100:600". An empty string or "none"
// returns a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, term := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return nil, fmt.Errorf("fault term %q: want key=value", term)
		}
		switch key {
		case "pcie":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f >= 1 {
				return nil, fmt.Errorf("fault term %q: want a bandwidth fraction in (0,1)", term)
			}
			p.PCIeBWFrac = f
		case "fault":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 1 {
				return nil, fmt.Errorf("fault term %q: want a latency multiplier >= 1", term)
			}
			p.FaultLatMult = f
		case "dram":
			fields := strings.Split(val, ":")
			if len(fields) != 3 {
				return nil, fmt.Errorf("fault term %q: want dram=CH:FROM_US:TO_US", term)
			}
			ch, err := strconv.Atoi(fields[0])
			if err != nil || ch < 0 {
				return nil, fmt.Errorf("fault term %q: bad channel %q", term, fields[0])
			}
			from, err1 := strconv.ParseFloat(fields[1], 64)
			to, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || from < 0 || to <= from {
				return nil, fmt.Errorf("fault term %q: want 0 <= FROM_US < TO_US", term)
			}
			p.DRAMStallChannel, p.DRAMStallStartUs, p.DRAMStallEndUs = ch, from, to
		default:
			return nil, fmt.Errorf("fault term %q: unknown key (want pcie, fault, or dram)", term)
		}
	}
	return p, nil
}
