// Package harness is the fault-tolerance layer between the benchmark
// framework and the simulator. The paper's evaluation is a 46-benchmark,
// multi-mode sweep; without this layer any aborted run — a deadlocked
// dependency handle, a buffer overrun, a livelocked worklist — would kill
// the whole sweep and discard every completed result. harness.Run executes
// one benchmark run in isolation: it recovers aborts into a structured
// *RunError, enforces event and wall-clock budgets through the simulation
// engine, retries budget-exceeded runs at the next-smaller input size, and
// applies injected hardware faults (FaultPlan) for degradation
// experiments.
//
// Run is safe for concurrent use: every run builds its own isolated
// device.System, so sweeps dispatch independent runs onto a worker pool
// (internal/sweep) without synchronization.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Kind classifies why a run failed.
type Kind int

const (
	// KindPanic is an unclassified panic out of simulator or benchmark code.
	KindPanic Kind = iota
	// KindBudget is an exceeded max-event budget.
	KindBudget
	// KindTimeout is an exceeded wall-clock budget.
	KindTimeout
	// KindDeadlock is a Wait on an operation that can never complete.
	KindDeadlock
	// KindUsage is invalid input to the device API (bad config, bad kernel
	// geometry, overrunning copy).
	KindUsage
	// KindCanceled is a run killed by context cancellation (operator
	// shutdown, sweep abort). Canceled runs are artifacts of the shutdown,
	// not results: the sweep journal skips them so a resumed sweep re-runs
	// them from scratch.
	KindCanceled
	// KindStalled is a run killed by the stall watchdog: its engine
	// stopped advancing simulated time past the configured deadline (a
	// livelocked worklist churning events at one tick, for example).
	KindStalled
)

// String names the failure kind.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindBudget:
		return "budget-exceeded"
	case KindTimeout:
		return "timeout"
	case KindDeadlock:
		return "deadlock"
	case KindUsage:
		return "usage-error"
	case KindCanceled:
		return "canceled"
	case KindStalled:
		return "stalled"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// RunError is one failed benchmark run, with enough context to diagnose it
// after the sweep: what ran, how far it got in simulated time and events,
// and what killed it.
type RunError struct {
	Benchmark string
	Mode      bench.Mode
	Size      bench.Size // size of the failing attempt
	Kind      Kind
	Msg       string   // recovered message
	SimTime   sim.Tick // simulated time reached before the failure
	Events    uint64   // engine events executed before the failure
	Stack     []byte   // stack of the recovery point (KindPanic only)
	Attempt   int      // 1-based attempt number that produced this error
	// Wall is how long the failing attempt ran in wall-clock time — the
	// per-attempt cost accounting a sweep post-mortem needs (a 2ms usage
	// error and a 60s timeout are very different failures).
	Wall time.Duration
	// TraceTail is the trailing window of trace events the run emitted
	// before dying — the last thing the machine was doing. Populated from
	// Spec.Trace when set, else from the per-attempt ring the harness
	// always records.
	TraceTail []trace.Event
}

// Error summarizes the failure on one line.
func (e *RunError) Error() string {
	return fmt.Sprintf("%s (%s, %s): %s: %s [attempt %d, %.3f ms sim, %d events]",
		e.Benchmark, e.Mode, e.Size, e.Kind, e.Msg, e.Attempt, e.SimTime.Millis(), e.Events)
}

// Budget bounds one run; zero fields are unlimited. MaxEvents counts
// deterministic simulation events and is the budget to use when comparing
// sweeps across worker counts; Timeout is wall-clock, so a run sharing the
// machine with other sweep workers burns it faster than a run alone.
type Budget struct {
	MaxEvents uint64
	Timeout   time.Duration
}

// Default retry policy: one retry (two attempts).
const defaultMaxAttempts = 2

// Spec describes one benchmark run.
type Spec struct {
	Bench  bench.Benchmark
	Mode   bench.Mode
	Size   bench.Size
	Budget Budget
	// Ctx, when non-nil, cancels the run: the engine polls it at its
	// periodic check interval and the run comes back as a KindCanceled
	// RunError (with its trace tail, like every other abort). Cancellation
	// also suppresses retries — a canceled budget failure is shutdown, not
	// a result.
	Ctx context.Context
	// Stall arms the per-run stall watchdog: a goroutine samples the
	// engine's heartbeat and kills the run (KindStalled) if simulated time
	// stops advancing for this long while events churn — a livelocked
	// worklist, for example. Zero disables the watchdog. Choose a window
	// much larger than any legitimate burst of same-tick events; like the
	// wall-clock budget, the watchdog cannot reach a run wedged in host
	// code between engine events.
	Stall time.Duration
	// Fault, when non-nil, injects hardware degradations into the run's
	// system configuration.
	Fault *FaultPlan
	// MaxAttempts caps total attempts (0 means 2: the run plus one retry
	// at the next-smaller size). Only budget/timeout failures retry, and
	// only when a smaller size exists to degrade to.
	MaxAttempts int
	// Backoff is the base delay before a retry, doubled per attempt. Zero
	// means no delay: the simulator is deterministic, so waiting cannot
	// change a retry's outcome and would only idle a sweep worker. Set it
	// for fault-injection experiments that deliberately want spaced
	// attempts.
	Backoff time.Duration
	// Jitter spreads each retry delay uniformly within ±Jitter×delay
	// (clamped to [0,1]), so concurrent pool workers retrying against the
	// same injected fault do not retry in lockstep. Zero keeps the exact
	// doubled Backoff. With Backoff zero there is no delay to spread, so
	// Jitter has no effect and zero-backoff sweeps stay deterministic.
	Jitter float64
	// Trace, when non-nil, receives every trace event the run's hardware
	// models emit (all attempts record into the same sink, separated by
	// harness lifecycle instants). When nil, the harness still records a
	// small private ring per attempt so a failure ships its trailing
	// events in RunError.TraceTail.
	Trace *trace.Recorder
	// OnRetry observes each retry decision: the error that triggered it
	// and the degraded size the next attempt will run at. Used for live
	// sweep progress.
	OnRetry func(next bench.Size, err *RunError)
	// RequestID, when non-empty, is the correlation ID of the request this
	// run serves. It is stamped as a request_id arg on the harness's
	// lifecycle trace instants (attempt start, retry, failure), so a
	// Perfetto trace can be tied back to the access log line and journal
	// that produced it. It never affects results.
	RequestID string
	// Parallel is the intra-run worker count (timing thread included):
	// 0 or 1 runs the serial engine, 2+ pipelines trace generation and
	// pre-processing through device.WithParallel. Like a sweep's jobs
	// count it is a scheduling knob, excluded from journal fingerprints:
	// results, counters, traces, and journals are byte-identical for
	// every value.
	Parallel int
}

// lifecycleArgs builds the trace args for a harness lifecycle instant:
// just the correlation ID when one is set, nil (no allocation) otherwise.
func (s *Spec) lifecycleArgs() []trace.Arg {
	if s.RequestID == "" {
		return nil
	}
	return []trace.Arg{{Key: "request_id", Val: s.RequestID}}
}

// tailLen is how many trailing trace events a RunError carries, and the
// ring size of the harness's private per-attempt recorder.
const tailLen = 32

// Outcome is the result of harness.Run: either a Report or a RunError,
// plus how the run got there.
type Outcome struct {
	Report *core.Report
	Err    *RunError // nil on success
	// Sys is the simulated machine of the final attempt (for counter
	// inspection); nil if system construction itself failed.
	Sys      *device.System
	Attempts int
	Size     bench.Size // size that actually ran (may be degraded)
	Degraded bool       // true when Size is smaller than requested
	SimTime  sim.Tick
	Events   uint64
	// Wall is the total wall-clock time across all attempts; each failed
	// attempt's own duration is on its AttemptErrors entry.
	Wall time.Duration
	// AttemptErrors records every failed attempt in order, so a degraded
	// success still reports what the earlier attempts hit. On an overall
	// failure the last entry equals *Err.
	AttemptErrors []RunError
	// TraceEvents is how many events Spec.Trace holds after the run (zero
	// when the run was untraced).
	TraceEvents int
}

// Run executes one benchmark run fault-tolerantly. It never panics and
// never hangs (given a budget): every abort comes back as Outcome.Err.
func Run(spec Spec) *Outcome {
	mRunsStarted.Inc()
	out := run(spec)
	mRunEvents.Add(out.Events)
	if out.Wall > 0 && out.Events > 0 {
		mEventsPerSec.Observe(float64(out.Events) / out.Wall.Seconds())
	}
	if out.Attempts > 1 {
		mRunsRetried.Add(uint64(out.Attempts - 1))
	}
	if out.Err == nil {
		mRunsCompleted.Inc()
	} else {
		failedCounter(out.Err.Kind).Inc()
	}
	return out
}

// run is Run without the lifecycle metrics.
func run(spec Spec) *Outcome {
	maxAttempts := spec.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxAttempts
	}
	size := spec.Size
	var attemptErrs []RunError
	var totalWall time.Duration
	for attempt := 1; ; attempt++ {
		t0 := time.Now()
		out := runOnce(spec, size, attempt)
		wall := time.Since(t0)
		totalWall += wall
		out.Attempts = attempt
		out.Size = size
		out.Degraded = size != spec.Size
		out.TraceEvents = spec.Trace.Len()
		out.Wall = totalWall
		if out.Err != nil {
			out.Err.Wall = wall
			attemptErrs = append(attemptErrs, *out.Err)
		}
		out.AttemptErrors = attemptErrs
		if out.Err == nil {
			return out
		}
		// Only resource exhaustion is worth retrying, and only degraded:
		// the simulator is deterministic, so the same input would exhaust
		// the same budget again. A canceled context means the sweep is
		// shutting down — retrying would fight the shutdown.
		smaller, canDegrade := size.Smaller()
		retryable := out.Err.Kind == KindBudget || out.Err.Kind == KindTimeout
		if spec.Ctx != nil && spec.Ctx.Err() != nil {
			retryable = false
		}
		if attempt >= maxAttempts || !retryable || !canDegrade {
			return out
		}
		spec.Trace.Instant(stats.CPU, "harness", "harness",
			fmt.Sprintf("retry at %s after %s", smaller, out.Err.Kind), out.Err.SimTime,
			spec.lifecycleArgs()...)
		if spec.OnRetry != nil {
			spec.OnRetry(smaller, out.Err)
		}
		size = smaller
		if spec.Backoff > 0 {
			time.Sleep(retryDelay(spec.Backoff, spec.Jitter, attempt))
		}
	}
}

// retryDelay computes the sleep before retry number attempt+1: the base
// backoff doubled per attempt, spread uniformly within ±jitter of that
// value. The spread keeps a pool of workers that all hit the same
// injected fault from hammering it again in lockstep. jitter is clamped
// to [0,1], so the delay never goes negative and never exceeds twice the
// un-jittered value.
func retryDelay(backoff time.Duration, jitter float64, attempt int) time.Duration {
	d := backoff << (attempt - 1)
	if jitter <= 0 || d <= 0 {
		return d
	}
	if jitter > 1 {
		jitter = 1
	}
	// Uniform in [d*(1-jitter), d*(1+jitter)].
	spread := (2*rand.Float64() - 1) * jitter * float64(d)
	return d + time.Duration(spread)
}

// runOnce executes a single attempt, recovering any abort into a RunError.
func runOnce(spec Spec, size bench.Size, attempt int) (out *Outcome) {
	out = &Outcome{}
	info := spec.Bench.Info()
	// Record into the caller's sink when tracing; otherwise into a small
	// private ring so a failure still ships its trailing events.
	rec := spec.Trace
	if rec == nil {
		rec = trace.NewRing(tailLen)
	}
	fail := func(kind Kind, msg string, stack []byte) {
		var simT sim.Tick
		var ev uint64
		if out.Sys != nil {
			simT, ev = out.Sys.Eng.Now(), out.Sys.Eng.EventsRun()
		}
		rec.Instant(stats.CPU, "harness", "harness", "run failed: "+kind.String(), simT,
			spec.lifecycleArgs()...)
		out.Err = &RunError{
			Benchmark: info.FullName(), Mode: spec.Mode, Size: size,
			Kind: kind, Msg: msg, SimTime: simT, Events: ev,
			Stack: stack, Attempt: attempt,
			TraceTail: rec.Tail(tailLen),
		}
	}
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *sim.BudgetError:
				kind := KindTimeout
				if v.ExceededEvents() {
					kind = KindBudget
				}
				fail(kind, v.Error(), nil)
			case *sim.InterruptError:
				kind := KindCanceled
				if v.Reason == sim.ReasonStalled {
					kind = KindStalled
				}
				fail(kind, v.Error(), nil)
			case *device.DeadlockError:
				fail(KindDeadlock, v.Error(), nil)
			case *device.UsageError:
				fail(KindUsage, v.Error(), nil)
			case error:
				fail(KindPanic, v.Error(), debug.Stack())
			default:
				fail(KindPanic, fmt.Sprint(v), debug.Stack())
			}
		}
		if out.Sys != nil {
			out.SimTime, out.Events = out.Sys.Eng.Now(), out.Sys.Eng.EventsRun()
		}
	}()

	if spec.Ctx != nil && spec.Ctx.Err() != nil {
		// Don't even build the system: the sweep is shutting down.
		fail(KindCanceled, "run canceled before start: "+spec.Ctx.Err().Error(), nil)
		return out
	}
	if !info.Supports(spec.Mode) {
		fail(KindUsage, fmt.Sprintf("benchmark does not support mode %s", spec.Mode), nil)
		return out
	}
	cfg := bench.ConfigFor(spec.Mode)
	if spec.Fault != nil {
		spec.Fault.Apply(&cfg)
	}
	s, err := device.NewSystemErr(cfg, device.WithTrace(rec), device.WithParallel(spec.Parallel))
	if err != nil {
		fail(KindUsage, err.Error(), nil)
		return out
	}
	out.Sys = s
	// Quiesce the parallel engine's workers however the attempt ends —
	// budget trip, interrupt, panic — so aborted runs cannot leak
	// goroutines or leave workers blocked on hand-offs.
	defer s.Release()
	rec.Instant(stats.CPU, "harness", "harness",
		fmt.Sprintf("attempt %d start (%s)", attempt, size), s.Eng.Now(),
		spec.lifecycleArgs()...)
	s.Eng.SetBudget(sim.Budget{MaxEvents: spec.Budget.MaxEvents, WallClock: spec.Budget.Timeout, Ctx: spec.Ctx})
	if spec.Stall > 0 {
		stop := watchStall(s.Eng, spec.Stall)
		defer stop()
	}
	spec.Bench.Run(s, spec.Mode, size)
	if start, end := s.Col.ROI(); end <= start {
		fail(KindUsage, "run recorded no region of interest", nil)
		return out
	}
	out.Report = s.Report(info.FullName(), spec.Mode.String())
	return out
}
