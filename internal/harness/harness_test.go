package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
)

// fakeBench is a scriptable benchmark for exercising the harness without
// dragging a real suite (and its run time) into these tests.
type fakeBench struct {
	name string
	run  func(s *device.System, mode bench.Mode, size bench.Size)
}

func (f fakeBench) Info() bench.Info {
	return bench.Info{Suite: "fake", Name: f.name, Desc: "harness test workload"}
}

func (f fakeBench) Run(s *device.System, mode bench.Mode, size bench.Size) {
	f.run(s, mode, size)
}

// burnEvents schedules a chain of n engine events 1ps apart.
func burnEvents(s *device.System, n int) {
	left := n
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			s.Eng.Schedule(1, tick)
		}
	}
	s.Eng.Schedule(1, tick)
}

// okRun is a minimal well-behaved benchmark body: a short event chain
// inside an ROI.
func okRun(events int) func(*device.System, bench.Mode, bench.Size) {
	return func(s *device.System, _ bench.Mode, _ bench.Size) {
		s.BeginROI()
		burnEvents(s, events)
		s.EndROI()
	}
}

func TestRunSuccess(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "ok", run: okRun(100)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
	})
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	if out.Report == nil || out.Report.Benchmark != "fake/ok" {
		t.Fatalf("report = %+v", out.Report)
	}
	if out.Attempts != 1 || out.Degraded {
		t.Fatalf("attempts=%d degraded=%v", out.Attempts, out.Degraded)
	}
	if out.Events == 0 || out.SimTime == 0 {
		t.Fatalf("run telemetry empty: %d events, %v sim", out.Events, out.SimTime)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "boom", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			panic("kernel table corrupted")
		}},
		Mode: bench.ModeCopy, Size: bench.SizeSmall,
	})
	if out.Err == nil || out.Err.Kind != KindPanic {
		t.Fatalf("outcome = %+v", out.Err)
	}
	if !strings.Contains(out.Err.Msg, "kernel table corrupted") {
		t.Fatalf("msg = %q", out.Err.Msg)
	}
	if len(out.Err.Stack) == 0 {
		t.Fatal("panic RunError must carry a stack")
	}
	if !strings.Contains(out.Err.Error(), "fake/boom") {
		t.Fatalf("error line: %v", out.Err)
	}
}

// TestRunDeadlock builds un-completable Handle waits in several shapes and
// asserts each comes back as a deadlock RunError naming the wedged stage
// instead of a process-killing panic.
func TestRunDeadlock(t *testing.T) {
	cases := []struct {
		name      string
		wantStage string
		run       func(s *device.System, mode bench.Mode, size bench.Size)
	}{
		{
			name: "bare-handle", wantStage: "upload weights",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				s.Wait(s.NewHandle("upload weights"))
			},
		},
		{
			name: "barrier-on-stuck-dep", wantStage: "barrier",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				stuck := s.NewHandle("producer signal")
				done := s.CPUTaskAsync(device.CPUTaskSpec{
					Name: "consume", Func: func(c *device.CPUThread) { c.FLOP(1) },
				}, stuck)
				_ = done
				s.Wait(s.AfterAll(stuck))
			},
		},
		{
			name: "kernel-behind-stuck-dep", wantStage: "kernel drain",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				stuck := s.NewHandle("dma complete")
				h := s.LaunchAsync(device.KernelSpec{
					Name: "drain", Grid: 1, Block: 32,
					Func: func(t *device.Thread) { t.FLOP(1) },
				}, stuck)
				s.Wait(h)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Run(Spec{
				Bench: fakeBench{name: tc.name, run: tc.run},
				Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
			})
			if out.Err == nil || out.Err.Kind != KindDeadlock {
				t.Fatalf("outcome = %+v", out.Err)
			}
			if !strings.Contains(out.Err.Msg, tc.wantStage) {
				t.Fatalf("deadlock error does not name stage %q: %q", tc.wantStage, out.Err.Msg)
			}
			if out.Attempts != 1 {
				t.Fatalf("deadlocks must not retry: %d attempts", out.Attempts)
			}
		})
	}
}

// TestRunEventBudget pins the acceptance case: a runaway run terminates
// with a diagnostic RunError, never a hang or crash.
func TestRunEventBudget(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "runaway", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			var tick func()
			tick = func() { s.Eng.Schedule(1, tick) } // never terminates
			s.Eng.Schedule(1, tick)
			s.EndROI() // drains forever without a budget
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Budget:  Budget{MaxEvents: 5000},
		Backoff: time.Millisecond,
	})
	if out.Err == nil || out.Err.Kind != KindBudget {
		t.Fatalf("outcome = %+v", out.Err)
	}
	if out.Err.Events < 5000 {
		t.Fatalf("events = %d, want >= budget", out.Err.Events)
	}
	if !strings.Contains(out.Err.Msg, "event budget exceeded") {
		t.Fatalf("msg = %q", out.Err.Msg)
	}
}

func TestRunWallClockBudget(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "hang", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			var tick func()
			tick = func() { s.Eng.Schedule(1, tick) }
			s.Eng.Schedule(1, tick)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Budget:  Budget{Timeout: 30 * time.Millisecond},
		Backoff: time.Millisecond,
	})
	if out.Err == nil || out.Err.Kind != KindTimeout {
		t.Fatalf("outcome = %+v", out.Err)
	}
}

// TestRunRetryDegradesSize pins the retry policy: a budget-exceeded medium
// run is retried once at small and the substitution is reported.
func TestRunRetryDegradesSize(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "degrade", run: func(s *device.System, mode bench.Mode, size bench.Size) {
			n := 100
			if size == bench.SizeMedium {
				n = 100000
			}
			s.BeginROI()
			burnEvents(s, n)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget:  Budget{MaxEvents: 10000},
		Backoff: time.Millisecond,
	})
	if out.Err != nil {
		t.Fatalf("degraded retry should have succeeded: %v", out.Err)
	}
	if !out.Degraded || out.Size != bench.SizeSmall || out.Attempts != 2 {
		t.Fatalf("degradation not recorded: %+v", out)
	}
	if out.Report == nil {
		t.Fatal("no report from degraded run")
	}
}

// TestRunAttemptErrors pins the per-attempt accounting: a degraded-size
// success still carries the RunError its first attempt hit, and an overall
// failure's AttemptErrors ends with the final error.
func TestRunAttemptErrors(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "degrade-acct", run: func(s *device.System, mode bench.Mode, size bench.Size) {
			n := 100
			if size == bench.SizeMedium {
				n = 100000
			}
			s.BeginROI()
			burnEvents(s, n)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 10000},
	})
	if out.Err != nil || !out.Degraded {
		t.Fatalf("degraded retry should have succeeded: %+v", out.Err)
	}
	if len(out.AttemptErrors) != 1 {
		t.Fatalf("AttemptErrors = %v", out.AttemptErrors)
	}
	first := &out.AttemptErrors[0]
	if first.Kind != KindBudget || first.Attempt != 1 || first.Size != bench.SizeMedium {
		t.Fatalf("first attempt error = %+v", first)
	}

	out = Run(Spec{
		Bench: fakeBench{name: "always-over", run: okRun(100000)},
		Mode:  bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 1000},
	})
	if out.Err == nil || len(out.AttemptErrors) != 2 {
		t.Fatalf("err=%v attempt errors=%v", out.Err, out.AttemptErrors)
	}
	if last := out.AttemptErrors[len(out.AttemptErrors)-1]; last.Error() != out.Err.Error() {
		t.Fatalf("last attempt error %v != final error %v", &last, out.Err)
	}
	if out.AttemptErrors[0].Size != bench.SizeMedium || out.AttemptErrors[1].Size != bench.SizeSmall {
		t.Fatalf("attempt sizes = %v", out.AttemptErrors)
	}
}

// TestRunRetryNoDefaultBackoff: the simulator is deterministic, so a retry
// must not sleep unless the spec opts in — a sleeping retry would idle a
// sweep worker for nothing. The failing medium attempt burns only 10k
// events, so anything near the old 50ms default backoff is a regression.
func TestRunRetryNoDefaultBackoff(t *testing.T) {
	start := time.Now()
	out := Run(Spec{
		Bench: fakeBench{name: "fast-retry", run: func(s *device.System, mode bench.Mode, size bench.Size) {
			n := 100
			if size == bench.SizeMedium {
				n = 100000
			}
			s.BeginROI()
			burnEvents(s, n)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 10000},
	})
	if out.Err != nil || out.Attempts != 2 {
		t.Fatalf("err=%v attempts=%d", out.Err, out.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("zero-backoff retry took %v; is a default backoff sleeping?", elapsed)
	}
}

// TestRetryDelayJitterBounds: a jittered retry delay must stay within
// ±jitter of the doubled backoff, actually vary across draws (that is the
// point — de-lockstepping pool workers), and degenerate exactly when
// jitter or backoff is zero.
func TestRetryDelayJitterBounds(t *testing.T) {
	const base = 10 * time.Millisecond
	for _, attempt := range []int{1, 2, 3} {
		want := base << (attempt - 1)
		// No jitter: the exact doubled backoff, every time.
		for i := 0; i < 10; i++ {
			if d := retryDelay(base, 0, attempt); d != want {
				t.Fatalf("attempt %d jitter 0: delay %v, want %v", attempt, d, want)
			}
		}
		for _, jitter := range []float64{0.25, 1, 2.5 /* clamped to 1 */} {
			clamped := jitter
			if clamped > 1 {
				clamped = 1
			}
			lo := time.Duration(float64(want) * (1 - clamped))
			hi := time.Duration(float64(want) * (1 + clamped))
			distinct := map[time.Duration]bool{}
			for i := 0; i < 200; i++ {
				d := retryDelay(base, jitter, attempt)
				if d < lo || d > hi {
					t.Fatalf("attempt %d jitter %v: delay %v outside [%v,%v]", attempt, jitter, d, lo, hi)
				}
				distinct[d] = true
			}
			if len(distinct) < 2 {
				t.Fatalf("attempt %d jitter %v: 200 draws produced no spread", attempt, jitter)
			}
		}
	}
	// Zero backoff stays zero under any jitter: the zero-backoff
	// determinism contract (TestRunRetryNoDefaultBackoff) is unaffected
	// by a spec that also sets Jitter.
	if d := retryDelay(0, 0.5, 1); d != 0 {
		t.Fatalf("zero backoff with jitter: delay %v, want 0", d)
	}
}

// TestRunZeroBackoffIgnoresJitter: a spec with Jitter set but Backoff
// zero must not sleep between attempts — jitter spreads a delay, it never
// introduces one.
func TestRunZeroBackoffIgnoresJitter(t *testing.T) {
	start := time.Now()
	out := Run(Spec{
		Bench: fakeBench{name: "jitter-no-backoff", run: func(s *device.System, mode bench.Mode, size bench.Size) {
			n := 100
			if size == bench.SizeMedium {
				n = 100000
			}
			s.BeginROI()
			burnEvents(s, n)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget: Budget{MaxEvents: 10000},
		Jitter: 0.8,
	})
	if out.Err != nil || out.Attempts != 2 {
		t.Fatalf("err=%v attempts=%d", out.Err, out.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("jitter without backoff slept: retry took %v", elapsed)
	}
}

// TestRunNoRetryAtSmallest: small has nothing to degrade to, so a budget
// failure is final (the simulator is deterministic; same input, same
// exhaustion).
func TestRunNoRetryAtSmallest(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "small-runaway", run: func(s *device.System, _ bench.Mode, _ bench.Size) {
			s.BeginROI()
			burnEvents(s, 100000)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeSmall,
		Budget:  Budget{MaxEvents: 1000},
		Backoff: time.Millisecond,
	})
	if out.Err == nil || out.Err.Kind != KindBudget || out.Attempts != 1 {
		t.Fatalf("outcome = %+v (attempts %d)", out.Err, out.Attempts)
	}
}

// TestRunUsageErrors covers the converted device panics: each invalid
// input surfaces as a usage-kind RunError, not a crash.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		wantMsg string
		run     func(s *device.System, mode bench.Mode, size bench.Size)
	}{
		{
			name: "zero-grid", wantMsg: "positive grid and block",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				s.Launch(device.KernelSpec{Name: "bad", Grid: 0, Block: 32, Func: func(t *device.Thread) {}})
			},
		},
		{
			name: "oversized-block", wantMsg: "exceeds SM capacity",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				s.Launch(device.KernelSpec{Name: "wide", Grid: 1, Block: 1 << 20, Func: func(t *device.Thread) {}})
			},
		},
		{
			name: "copy-overrun", wantMsg: "overruns",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				big := device.AllocBuf[float32](s, 64, "big", device.Host)
				tiny := device.AllocBuf[float32](s, 64, "tiny", device.Host)
				tiny.A.Size = 16 // simulate an undersized destination range
				device.Memcpy(s, tiny, big)
			},
		},
		{
			name: "length-mismatch", wantMsg: "length mismatch",
			run: func(s *device.System, _ bench.Mode, _ bench.Size) {
				s.BeginROI()
				a := device.AllocBuf[float32](s, 64, "a", device.Host)
				b := device.AllocBuf[float32](s, 32, "b", device.Host)
				device.Memcpy(s, a, b)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Run(Spec{
				Bench: fakeBench{name: tc.name, run: tc.run},
				Mode:  bench.ModeLimitedCopy, Size: bench.SizeSmall,
			})
			if out.Err == nil || out.Err.Kind != KindUsage {
				t.Fatalf("outcome = %+v", out.Err)
			}
			if !strings.Contains(out.Err.Msg, tc.wantMsg) {
				t.Fatalf("msg %q missing %q", out.Err.Msg, tc.wantMsg)
			}
		})
	}
}

func TestRunRejectsUnsupportedMode(t *testing.T) {
	out := Run(Spec{
		Bench: fakeBench{name: "nomode", run: okRun(10)},
		Mode:  bench.ModeAsyncStreams, Size: bench.SizeSmall,
	})
	if out.Err == nil || out.Err.Kind != KindUsage || !strings.Contains(out.Err.Msg, "does not support") {
		t.Fatalf("outcome = %+v", out.Err)
	}
}

func TestFaultPlanParse(t *testing.T) {
	p, err := ParseFaultPlan("pcie=0.25,fault=8,dram=1:100:600")
	if err != nil {
		t.Fatal(err)
	}
	if p.PCIeBWFrac != 0.25 || p.FaultLatMult != 8 ||
		p.DRAMStallChannel != 1 || p.DRAMStallStartUs != 100 || p.DRAMStallEndUs != 600 {
		t.Fatalf("parsed = %+v", p)
	}
	if !p.Active() {
		t.Fatal("plan should be active")
	}
	// Round-trip through String.
	rt, err := ParseFaultPlan(p.String())
	if err != nil || *rt != *p {
		t.Fatalf("round trip: %+v vs %+v (%v)", rt, p, err)
	}
	// Empty and none parse to nil.
	for _, s := range []string{"", "none", "  "} {
		if p, err := ParseFaultPlan(s); p != nil || err != nil {
			t.Fatalf("ParseFaultPlan(%q) = %v, %v", s, p, err)
		}
	}
	// Rejections.
	for _, s := range []string{
		"pcie=2", "pcie=0", "pcie=x", "fault=0.5", "dram=0:600:100",
		"dram=0:100", "bogus=1", "pcie", "dram=-1:0:100",
	} {
		if _, err := ParseFaultPlan(s); err == nil {
			t.Fatalf("ParseFaultPlan(%q) should fail", s)
		}
	}
}

func TestFaultPlanApply(t *testing.T) {
	p := &FaultPlan{PCIeBWFrac: 0.5, FaultLatMult: 4, DRAMStallChannel: 2, DRAMStallStartUs: 10, DRAMStallEndUs: 20}
	cfg := bench.ConfigFor(bench.ModeCopy)
	p.Apply(&cfg)
	if !cfg.Faults.Active() || cfg.Faults.PCIeBWFrac != 0.5 || cfg.Faults.FaultLatMult != 4 {
		t.Fatalf("faults = %+v", cfg.Faults)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("fault-injected config invalid: %v", err)
	}
	// A nil plan is a no-op.
	cfg2 := bench.ConfigFor(bench.ModeCopy)
	(*FaultPlan)(nil).Apply(&cfg2)
	if cfg2.Faults.Active() {
		t.Fatal("nil plan injected faults")
	}
}

// TestEngineBudgetArmedPerAttempt guards a subtle bug: the budget must be
// re-armed per attempt so a retry gets the full allowance, not the
// leftovers of the failed attempt.
func TestEngineBudgetArmedPerAttempt(t *testing.T) {
	attempts := 0
	out := Run(Spec{
		Bench: fakeBench{name: "per-attempt", run: func(s *device.System, mode bench.Mode, size bench.Size) {
			attempts++
			n := 900 // fits the 1000-event budget only if armed fresh
			if size == bench.SizeMedium {
				n = 100000
			}
			s.BeginROI()
			burnEvents(s, n)
			s.EndROI()
		}},
		Mode: bench.ModeLimitedCopy, Size: bench.SizeMedium,
		Budget:  Budget{MaxEvents: 1000},
		Backoff: time.Millisecond,
	})
	if out.Err != nil || attempts != 2 {
		t.Fatalf("err=%v attempts=%d", out.Err, attempts)
	}
}
