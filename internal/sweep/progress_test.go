package sweep

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestTrackerConcurrentEventOrdering hammers one Tracker from many
// goroutines, each driving a distinct run through its lifecycle, and
// checks the invariants the hetsimd progress stream relies on: events
// arrive serialized (the sink needs no locking), the finished counter is
// monotone across the stream, each run gets exactly one terminal event
// (done, failed, or replay), a run's events arrive in lifecycle order,
// and every event carries the sweep's correlation ID.
func TestTrackerConcurrentEventOrdering(t *testing.T) {
	const runs = 64
	var events []Event
	p := NewEventTracker(func(e Event) { events = append(events, e) })
	p.SetTotal(runs)
	p.SetRequestID("trk-1")

	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("bench-%03d", i)
			if i%3 == 0 {
				p.Replay(name)
				return
			}
			p.Start(name)
			if i%2 == 0 {
				p.Retry(name, "budget-exceeded at small")
			}
			p.Finish(name, i%5 != 0, "detail")
		}(i)
	}
	wg.Wait()
	p.Summary()

	if len(events) == 0 {
		t.Fatal("sink saw no events")
	}
	last := events[len(events)-1]
	if last.Kind != "summary" || last.Finished != runs {
		t.Fatalf("last event = %+v, want summary with finished=%d", last, runs)
	}
	if !strings.Contains(last.Detail, fmt.Sprintf("%d runs", runs)) {
		t.Fatalf("summary detail = %q, want the %d-run tally", last.Detail, runs)
	}

	finished := 0
	terminals := map[string]int{}
	phase := map[string]int{} // 0 none, 1 started, 2 terminal
	for i, e := range events {
		if e.RequestID != "trk-1" {
			t.Fatalf("event %d missing request ID: %+v", i, e)
		}
		if e.Finished < finished {
			t.Fatalf("event %d: finished counter went backward (%d -> %d)", i, finished, e.Finished)
		}
		finished = e.Finished
		if e.Total != runs {
			t.Fatalf("event %d: total = %d, want %d", i, e.Total, runs)
		}
		switch e.Kind {
		case "start":
			if phase[e.Name] != 0 {
				t.Fatalf("event %d: %s started twice (or after its terminal)", i, e.Name)
			}
			phase[e.Name] = 1
		case "retry":
			if phase[e.Name] != 1 {
				t.Fatalf("event %d: %s retried outside start..terminal", i, e.Name)
			}
		case "done", "failed":
			if phase[e.Name] != 1 {
				t.Fatalf("event %d: %s finished without starting", i, e.Name)
			}
			phase[e.Name] = 2
			terminals[e.Name]++
		case "replay":
			if phase[e.Name] != 0 {
				t.Fatalf("event %d: %s replayed after other events", i, e.Name)
			}
			phase[e.Name] = 2
			terminals[e.Name]++
		case "summary":
			if i != len(events)-1 {
				t.Fatalf("event %d: summary before the end", i)
			}
		default:
			t.Fatalf("event %d: unknown kind %q", i, e.Kind)
		}
	}
	if len(terminals) != runs {
		t.Fatalf("terminal events cover %d runs, want %d", len(terminals), runs)
	}
	for name, n := range terminals {
		if n != 1 {
			t.Fatalf("%s got %d terminal events, want exactly 1", name, n)
		}
	}
	if finished != runs {
		t.Fatalf("final finished counter = %d, want %d", finished, runs)
	}
}

// TestTrackerNilSafety: every method on a nil Tracker is a no-op, so
// un-instrumented sweeps need no branching at call sites.
func TestTrackerNilSafety(t *testing.T) {
	var p *Tracker
	p.SetTotal(3)
	p.SetRequestID("x")
	p.Start("a")
	p.Retry("a", "why")
	p.Finish("a", true, "")
	p.Replay("b")
	p.Summary()
	if p.Replayed() != 0 {
		t.Fatal("nil tracker reported replays")
	}
}
