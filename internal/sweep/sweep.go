// Package sweep is the run-dispatch layer under the experiment sweeps: a
// bounded worker pool that executes independent, index-addressed tasks
// concurrently. The paper's evaluation is a 46-benchmark × multi-mode
// sweep of isolated simulations — embarrassingly parallel work — and this
// package is where that parallelism lives, so the experiments layer can
// keep deterministic, registry-ordered result assembly: every task writes
// only into its own slot, and Each returns once all slots are filled.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Jobs resolves a worker count: n if positive, otherwise GOMAXPROCS.
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs task(0..n-1) on a pool of jobs workers (jobs <= 0 means
// GOMAXPROCS; jobs == 1 degenerates to a plain serial loop) and returns
// when every dispatched task has completed. Tasks must be independent: the
// intended pattern is for task i to write only into the i-th slot of a
// caller-preallocated result slice, which keeps the assembled output
// identical for every worker count. Each does not recover panics — the
// harness below each sweep task already converts aborts into structured
// errors, and a panic escaping that layer is a programming error that
// should crash loudly rather than vanish into a worker.
//
// Canceling ctx stops dispatch: tasks not yet handed to a worker never
// run, while in-flight tasks drain to completion before Each returns —
// the graceful-shutdown contract the checkpointing sweep needs (every
// started run finishes and is journaled; nothing is half-done). A nil ctx
// means never canceled.
func Each(ctx context.Context, jobs, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			task(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				task(i)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
}
