package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// SignalContexts installs the two-stage graceful-shutdown handler the
// sweep commands share. It returns two contexts derived from parent:
//
//   - dispatch is canceled by the first SIGINT/SIGTERM: the sweep stops
//     handing out new runs, drains the in-flight ones, journals them, and
//     writes a partial report.
//   - run is canceled by the second signal: in-flight runs are aborted
//     through their engines' periodic cancellation checks and come back
//     as canceled RunErrors (which the journal deliberately does not
//     record, so a resume re-runs them).
//
// A third signal restores the default OS disposition, so one more ^C
// kills a process wedged beyond the engine's reach. Progress messages go
// to w (the commands pass stderr; nil suppresses them). stop releases the
// handler and both contexts; call it once the sweep is done so later
// signals behave normally.
func SignalContexts(parent context.Context, w io.Writer) (dispatch, run context.Context, stop func()) {
	if parent == nil {
		parent = context.Background()
	}
	dispatchCtx, cancelDispatch := context.WithCancel(parent)
	runCtx, cancelRun := context.WithCancel(parent)
	ch := make(chan os.Signal, 3)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		n := 0
		for range ch {
			n++
			switch n {
			case 1:
				if w != nil {
					fmt.Fprintf(w, "\ninterrupt: draining in-flight runs and checkpointing; interrupt again to abort them\n")
				}
				cancelDispatch()
			case 2:
				if w != nil {
					fmt.Fprintf(w, "\ninterrupt: aborting in-flight runs; one more interrupt kills the process\n")
				}
				cancelRun()
			default:
				signal.Stop(ch)
				return
			}
		}
	}()
	return dispatchCtx, runCtx, func() {
		signal.Stop(ch)
		close(ch)
		cancelDispatch()
		cancelRun()
	}
}
