package sweep

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsResolution(t *testing.T) {
	if Jobs(3) != 3 {
		t.Fatal("positive job counts pass through")
	}
	if Jobs(0) != runtime.GOMAXPROCS(0) || Jobs(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive job counts default to GOMAXPROCS")
	}
}

// TestEachFillsEverySlot is the contract the experiments layer depends on:
// every index runs exactly once, regardless of worker count.
func TestEachFillsEverySlot(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0, 100} {
		const n = 137
		counts := make([]int32, n)
		Each(jobs, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: slot %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestEachEmpty(t *testing.T) {
	Each(4, 0, func(i int) { t.Fatal("no tasks should run") })
	Each(4, -1, func(i int) { t.Fatal("no tasks should run") })
}

// TestEachSerialOrder pins that jobs=1 is a plain in-order loop — the
// serial reference the determinism tests compare the pool against.
func TestEachSerialOrder(t *testing.T) {
	var order []int
	Each(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

// TestEachActuallyConcurrent proves the pool overlaps work: with 4 workers
// and 4 tasks that rendezvous on a barrier, all tasks must be in flight at
// once (a serial loop would deadlock here, so a watchdog fails the test
// instead).
func TestEachActuallyConcurrent(t *testing.T) {
	const n = 4
	ready := make(chan struct{}, n)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Each(n, n, func(i int) {
			ready <- struct{}{}
			<-release
		})
		close(done)
	}()
	for i := 0; i < n; i++ {
		<-ready
	}
	close(release)
	<-done
}
