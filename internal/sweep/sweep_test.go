package sweep

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsResolution(t *testing.T) {
	if Jobs(3) != 3 {
		t.Fatal("positive job counts pass through")
	}
	if Jobs(0) != runtime.GOMAXPROCS(0) || Jobs(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive job counts default to GOMAXPROCS")
	}
}

// TestEachFillsEverySlot is the contract the experiments layer depends on:
// every index runs exactly once, regardless of worker count.
func TestEachFillsEverySlot(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0, 100} {
		const n = 137
		counts := make([]int32, n)
		Each(nil, jobs, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: slot %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestEachEmpty(t *testing.T) {
	Each(nil, 4, 0, func(i int) { t.Fatal("no tasks should run") })
	Each(nil, 4, -1, func(i int) { t.Fatal("no tasks should run") })
}

// TestEachSerialOrder pins that jobs=1 is a plain in-order loop — the
// serial reference the determinism tests compare the pool against.
func TestEachSerialOrder(t *testing.T) {
	var order []int
	Each(nil, 1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

// TestEachCancelStopsDispatch pins the graceful-shutdown contract: once
// the context is canceled, no new task is dispatched, but tasks already
// handed to a worker run to completion before Each returns.
func TestEachCancelStopsDispatch(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		Each(ctx, 1, 100, func(i int) {
			if atomic.AddInt32(&ran, 1) == 3 {
				cancel()
			}
		})
		if got := atomic.LoadInt32(&ran); got != 3 {
			t.Fatalf("serial cancel: %d tasks ran, want 3", got)
		}
	})
	t.Run("pool", func(t *testing.T) {
		const workers = 4
		ctx, cancel := context.WithCancel(context.Background())
		var ran, completed int32
		started := make(chan struct{}, workers)
		release := make(chan struct{})
		// Once all workers are in flight, cancel dispatch, then let the
		// blocked first wave finish — proving in-flight tasks drain
		// rather than being abandoned.
		go func() {
			for i := 0; i < workers; i++ {
				<-started
			}
			cancel()
			close(release)
		}()
		Each(ctx, workers, 100, func(i int) {
			if atomic.AddInt32(&ran, 1) <= workers {
				started <- struct{}{}
				<-release
			}
			atomic.AddInt32(&completed, 1)
		})
		// Each returned: every dispatched task completed.
		if r, c := atomic.LoadInt32(&ran), atomic.LoadInt32(&completed); r != c {
			t.Fatalf("Each returned with %d of %d dispatched tasks incomplete", r-c, r)
		}
		if got := atomic.LoadInt32(&ran); got >= 100 {
			t.Fatalf("cancel did not stop dispatch: %d tasks ran", got)
		}
	})
}

// TestEachNilContext: a nil ctx means "never canceled" and must not panic.
func TestEachNilContext(t *testing.T) {
	var ran int32
	Each(nil, 2, 10, func(i int) { atomic.AddInt32(&ran, 1) })
	if ran != 10 {
		t.Fatalf("ran = %d, want 10", ran)
	}
}

// TestEachActuallyConcurrent proves the pool overlaps work: with 4 workers
// and 4 tasks that rendezvous on a barrier, all tasks must be in flight at
// once (a serial loop would deadlock here, so a watchdog fails the test
// instead).
func TestEachActuallyConcurrent(t *testing.T) {
	const n = 4
	ready := make(chan struct{}, n)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Each(nil, n, n, func(i int) {
			ready <- struct{}{}
			<-release
		})
		close(done)
	}()
	for i := 0; i < n; i++ {
		<-ready
	}
	close(release)
	<-done
}
