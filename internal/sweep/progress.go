package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured progress notification out of a Tracker — the
// machine-readable twin of the stderr progress lines. The hetsimd server
// streams these to HTTP clients (SSE or JSON lines) while a sweep
// executes on the pool.
type Event struct {
	// Kind is the lifecycle step: "start", "retry", "done", "failed",
	// "replay", or "summary".
	Kind string `json:"event"`
	// Name identifies the run ("suite/bench mode"); empty on summary.
	Name string `json:"name,omitempty"`
	// Detail elaborates: the retry reason, the finish summary, the
	// failure diagnostic, or the final tally.
	Detail string `json:"detail,omitempty"`
	// Finished and Total are the [k/n] progress counters at emit time.
	Finished int `json:"finished"`
	Total    int `json:"total"`
	// RequestID is the correlation ID of the request this sweep serves,
	// stamped on every event (SetRequestID). Empty for CLI sweeps.
	RequestID string `json:"request_id,omitempty"`
}

// Tracker emits live per-run progress while a sweep executes on the
// worker pool: human-oriented lines to w (stderr in the commands; nil
// suppresses them) and structured Events to the optional sink. It never
// touches the sweep's primary output, so figures stay byte-identical with
// progress on or off. All methods are safe for concurrent use by pool
// workers; a nil Tracker ignores every call. The sink is invoked under
// the tracker's lock — events arrive serialized, in order — so a sink
// writing to a network stream needs no locking of its own but must not
// call back into the Tracker.
type Tracker struct {
	mu        sync.Mutex
	w         io.Writer
	sink      func(Event)
	total     int
	started   int
	finished  int
	failed    int
	retried   int
	replayed  int
	requestID string
	t0        time.Time
}

// NewTracker builds a tracker writing lines to w. total may be zero if
// the run count is not known yet (SetTotal can set it later).
func NewTracker(w io.Writer, total int) *Tracker {
	return &Tracker{w: w, total: total, t0: time.Now()}
}

// NewEventTracker builds a tracker that emits only structured Events to
// sink (no text lines) — the form the hetsimd progress stream uses.
func NewEventTracker(sink func(Event)) *Tracker {
	return &Tracker{sink: sink, t0: time.Now()}
}

// SetTotal sets the expected run count for the [k/n] counters.
func (p *Tracker) SetTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = n
	p.mu.Unlock()
}

// SetRequestID stamps every subsequent Event with the correlation ID of
// the request the sweep serves, so a client tailing an SSE stream can tie
// the events back to its own X-Request-Id.
func (p *Tracker) SetRequestID(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.requestID = id
	p.mu.Unlock()
}

func (p *Tracker) line(format string, args ...any) {
	if p.w == nil {
		return
	}
	fmt.Fprintf(p.w, "[%7.1fs] "+format+"\n",
		append([]any{time.Since(p.t0).Seconds()}, args...)...)
}

func (p *Tracker) emit(kind, name, detail string) {
	if p.sink == nil {
		return
	}
	p.sink(Event{Kind: kind, Name: name, Detail: detail, Finished: p.finished, Total: p.total, RequestID: p.requestID})
}

// Start logs a run beginning.
func (p *Tracker) Start(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started++
	p.line("start  %-40s (%d/%d)", name, p.started, p.total)
	p.emit("start", name, "")
}

// Retry logs a run retrying at a degraded size after a budget failure.
func (p *Tracker) Retry(name, why string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retried++
	p.line("retry  %-40s %s", name, why)
	p.emit("retry", name, why)
}

// Finish logs a run completing; detail summarizes the outcome (sim time on
// success, the failure kind otherwise).
func (p *Tracker) Finish(name string, ok bool, detail string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished++
	verb := "done  "
	kind := "done"
	if !ok {
		verb = "FAILED"
		kind = "failed"
		p.failed++
	}
	p.line("%s %-40s (%d/%d) %s", verb, name, p.finished, p.total, detail)
	p.emit(kind, name, detail)
}

// Replay logs a run restored from a checkpoint journal instead of
// executed; it counts toward the finished tally.
func (p *Tracker) Replay(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished++
	p.replayed++
	p.line("replay %-40s (%d/%d) from journal", name, p.finished, p.total)
	p.emit("replay", name, "from journal")
}

// Replayed reports how many runs were restored from a journal so far.
func (p *Tracker) Replayed() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replayed
}

// Summary logs the final tally.
func (p *Tracker) Summary() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	detail := fmt.Sprintf("%d runs, %d failed, %d retried, %d replayed", p.finished, p.failed, p.retried, p.replayed)
	p.line("sweep complete: %s", detail)
	p.emit("summary", "", detail)
}
