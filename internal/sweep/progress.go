package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracker emits live per-run progress lines while a sweep executes on the
// worker pool. It writes to its own stream (stderr in the commands), so
// the sweep's primary output stays byte-identical with progress on or off.
// All methods are safe for concurrent use by pool workers; a nil Tracker
// ignores every call.
type Tracker struct {
	mu       sync.Mutex
	w        io.Writer
	total    int
	started  int
	finished int
	failed   int
	retried  int
	replayed int
	t0       time.Time
}

// NewTracker builds a tracker writing to w. total may be zero if the run
// count is not known yet (SetTotal can set it later).
func NewTracker(w io.Writer, total int) *Tracker {
	return &Tracker{w: w, total: total, t0: time.Now()}
}

// SetTotal sets the expected run count for the [k/n] counters.
func (p *Tracker) SetTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = n
	p.mu.Unlock()
}

func (p *Tracker) line(format string, args ...any) {
	fmt.Fprintf(p.w, "[%7.1fs] "+format+"\n",
		append([]any{time.Since(p.t0).Seconds()}, args...)...)
}

// Start logs a run beginning.
func (p *Tracker) Start(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started++
	p.line("start  %-40s (%d/%d)", name, p.started, p.total)
}

// Retry logs a run retrying at a degraded size after a budget failure.
func (p *Tracker) Retry(name, why string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retried++
	p.line("retry  %-40s %s", name, why)
}

// Finish logs a run completing; detail summarizes the outcome (sim time on
// success, the failure kind otherwise).
func (p *Tracker) Finish(name string, ok bool, detail string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished++
	verb := "done  "
	if !ok {
		verb = "FAILED"
		p.failed++
	}
	p.line("%s %-40s (%d/%d) %s", verb, name, p.finished, p.total, detail)
}

// Replay logs a run restored from a checkpoint journal instead of
// executed; it counts toward the finished tally.
func (p *Tracker) Replay(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished++
	p.replayed++
	p.line("replay %-40s (%d/%d) from journal", name, p.finished, p.total)
}

// Summary logs the final tally.
func (p *Tracker) Summary() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.line("sweep complete: %d runs, %d failed, %d retried, %d replayed", p.finished, p.failed, p.retried, p.replayed)
}
