// Package config defines the simulated system parameters from Table I of
// the paper and the two preset system configurations being compared: the
// discrete GPU system (separate CPU and GPU chips connected by PCIe) and the
// heterogeneous CPU-GPU processor (shared physical memory, cache coherent).
package config

import (
	"fmt"
	"math"
)

// Kind selects which of the paper's two system organizations to simulate.
type Kind int

const (
	// Discrete is the discrete GPU system: CPU DDR3 memory, GPU GDDR5
	// memory, explicit copies over PCIe, no CPU-GPU cache coherence.
	Discrete Kind = iota
	// Hetero is the heterogeneous CPU-GPU processor: one shared GDDR5
	// memory, coherent CPU and GPU caches, no copies needed.
	Hetero
)

// String names the system kind.
func (k Kind) String() string {
	if k == Discrete {
		return "discrete-gpu"
	}
	return "hetero-processor"
}

// CPUConfig describes the CPU cores and their private caches (Table I).
type CPUConfig struct {
	Cores         int     // 4
	ClockHz       float64 // 3.5 GHz
	IssueWidth    int     // 4-wide out-of-order
	FLOPsPerCycle int     // peak FLOPs issued per cycle per core (4 → 14 GFLOP/s)
	MLP           int     // max overlapped outstanding misses (OoO window effect)
	L1IBytes      int     // 32 kB
	L1DBytes      int     // 64 kB
	L2Bytes       int     // 256 kB private per core
	L1Assoc       int
	L2Assoc       int
	L1LatCycles   int // load-to-use on L1 hit
	L2LatCycles   int // additional L2 hit latency
}

// PeakFLOPs reports the aggregate peak FLOP/s across all CPU cores.
func (c CPUConfig) PeakFLOPs() float64 {
	return float64(c.Cores*c.FLOPsPerCycle) * c.ClockHz
}

// GPUConfig describes the GPU SMs and caches (Table I).
type GPUConfig struct {
	SMs              int     // 16
	ClockHz          float64 // 700 MHz
	WarpSize         int     // 32
	MaxWarpsPerSM    int     // 48
	MaxCTAsPerSM     int     // 8
	ScratchBytesPkSM int     // 48 kB scratch per SM
	Registers        int     // 32k registers per SM
	LanesPerCycle    int     // SIMT issue width (32 → 22.4 GFLOP/s per SM)
	L1Bytes          int     // 24 kB per SM (data+inst)
	L1Assoc          int
	L2Bytes          int // 1 MB shared
	L2Banks          int
	L2Assoc          int
	L1LatCycles      int
	L2LatCycles      int
}

// PeakFLOPs reports the aggregate peak GPU FLOP/s.
func (g GPUConfig) PeakFLOPs() float64 {
	return float64(g.SMs*g.LanesPerCycle) * g.ClockHz
}

// MemConfig describes one off-chip memory system.
type MemConfig struct {
	Name        string
	Channels    int
	BytesPerSec float64 // aggregate peak across channels
	LatencyNs   float64 // fixed access latency component
}

// PerChannelBW reports one channel's peak bandwidth.
func (m MemConfig) PerChannelBW() float64 { return m.BytesPerSec / float64(m.Channels) }

// PCIeConfig describes the CPU-GPU link of the discrete system.
type PCIeConfig struct {
	BytesPerSec float64 // 8 GB/s (v2.0 x16)
	LatencyUs   float64 // per-transfer setup latency
}

// VMConfig describes address translation behaviour.
type VMConfig struct {
	PageBytes int
	// GPUFaultToCPU: GPU page faults interrupt the CPU and are serviced
	// serially by it (heterogeneous processor, IOMMU-style). When false the
	// GPU handles its own minor faults cheaply (discrete GPU driver).
	GPUFaultToCPU    bool
	CPUFaultServUs   float64 // CPU handler occupancy per fault
	GPUFaultServNs   float64 // GPU-local fault cost (discrete)
	HandlerClearPage bool    // handler zeroes the page (CPU memory writes)
}

// FaultConfig describes deliberate hardware degradations injected into a
// run — the harness's fault-injection experiments use these to verify the
// analytical models degrade gracefully instead of crashing or emitting
// NaNs. The zero value injects nothing.
type FaultConfig struct {
	// PCIeBWFrac, when in (0,1), scales the copy engine's link bandwidth
	// to that fraction of peak (a throttled or degraded PCIe link).
	PCIeBWFrac float64
	// FaultLatMult, when > 1, multiplies page-fault service latency — both
	// the CPU handler occupancy (hetero) and the GPU-local cost (discrete)
	// — modelling a slow fault handler.
	FaultLatMult float64
	// DRAMStallChannel picks the channel of the GPU/shared memory stalled
	// for the window below (a wedged DRAM channel: accesses mapping to it
	// queue behind the stall).
	DRAMStallChannel int
	// DRAMStallStartUs/DRAMStallEndUs bound the stall window in simulated
	// microseconds; the stall is active only when end > start.
	DRAMStallStartUs float64
	DRAMStallEndUs   float64
}

// Active reports whether any fault is injected.
func (f FaultConfig) Active() bool {
	return f.PCIeThrottled() || f.FaultLatMult > 1 || f.DRAMStalled()
}

// PCIeThrottled reports whether the link-bandwidth fault is active.
func (f FaultConfig) PCIeThrottled() bool { return f.PCIeBWFrac > 0 && f.PCIeBWFrac < 1 }

// DRAMStalled reports whether the DRAM-channel fault is active.
func (f FaultConfig) DRAMStalled() bool { return f.DRAMStallEndUs > f.DRAMStallStartUs }

// System is a complete simulated system description.
type System struct {
	Kind      Kind
	LineBytes int // 128B cache lines throughout
	CPU       CPUConfig
	GPU       GPUConfig
	CPUMem    MemConfig  // discrete only
	GPUMem    MemConfig  // discrete: GPU memory; hetero: the single shared memory
	PCIe      PCIeConfig // discrete only
	VM        VMConfig
	// KernelLaunchNs is host-side launch latency charged to the CPU per
	// kernel or copy launch; this is the Cserial ingredient of Eq. 1.
	KernelLaunchNs float64
	// SwitchLatNs is the L2<->memory-controller interconnect hop latency.
	SwitchLatNs float64
	// CacheToCacheNs is the latency of a coherent cache-to-cache transfer in
	// the heterogeneous processor.
	CacheToCacheNs float64
	// NoCoherence disables CPU-GPU cache-to-cache transfers in the
	// heterogeneous processor (ablation knob): every read miss goes to
	// DRAM even when a peer cache holds the line.
	NoCoherence bool
	// Faults carries injected hardware degradations (zero value: none).
	Faults FaultConfig
}

// Unified reports whether CPU and GPU share one physical memory space.
func (s System) Unified() bool { return s.Kind == Hetero }

const (
	kB = 1024
	mB = 1024 * kB
)

func baseCPU() CPUConfig {
	return CPUConfig{
		Cores:         4,
		ClockHz:       3.5e9,
		IssueWidth:    4,
		FLOPsPerCycle: 4, // 14 GFLOP/s peak per core
		MLP:           8,
		L1IBytes:      32 * kB,
		L1DBytes:      64 * kB,
		L2Bytes:       256 * kB,
		L1Assoc:       8,
		L2Assoc:       8,
		L1LatCycles:   4,
		L2LatCycles:   12,
	}
}

func baseGPU() GPUConfig {
	return GPUConfig{
		SMs:              16,
		ClockHz:          700e6,
		WarpSize:         32,
		MaxWarpsPerSM:    48,
		MaxCTAsPerSM:     8,
		ScratchBytesPkSM: 48 * kB,
		Registers:        32 * 1024,
		LanesPerCycle:    32, // 22.4 GFLOP/s peak per SM
		L1Bytes:          24 * kB,
		L1Assoc:          6,
		L2Bytes:          1 * mB,
		L2Banks:          4,
		L2Assoc:          16,
		L1LatCycles:      28,
		L2LatCycles:      120,
	}
}

// DiscreteGPU returns the Table I discrete GPU system.
func DiscreteGPU() System {
	return System{
		Kind:      Discrete,
		LineBytes: 128,
		CPU:       baseCPU(),
		GPU:       baseGPU(),
		CPUMem:    MemConfig{Name: "DDR3-1600", Channels: 2, BytesPerSec: 24e9, LatencyNs: 55},
		GPUMem:    MemConfig{Name: "GDDR5", Channels: 4, BytesPerSec: 179e9, LatencyNs: 70},
		PCIe:      PCIeConfig{BytesPerSec: 8e9, LatencyUs: 1.5},
		VM: VMConfig{
			PageBytes:      4096,
			GPUFaultToCPU:  false,
			GPUFaultServNs: 200,
		},
		KernelLaunchNs: 5000, // ~5us driver launch overhead
		SwitchLatNs:    6,
		CacheToCacheNs: 0, // no CPU-GPU coherence in the discrete system
	}
}

// HeteroProcessor returns the Table I heterogeneous CPU-GPU processor. CPU
// and GPU cores share the GDDR5 memory through a high-bandwidth 12-port
// switch and are cache coherent.
func HeteroProcessor() System {
	s := System{
		Kind:      Hetero,
		LineBytes: 128,
		CPU:       baseCPU(),
		GPU:       baseGPU(),
		GPUMem:    MemConfig{Name: "shared GDDR5", Channels: 4, BytesPerSec: 179e9, LatencyNs: 70},
		VM: VMConfig{
			PageBytes:        4096,
			GPUFaultToCPU:    true,
			CPUFaultServUs:   2.0,
			HandlerClearPage: true,
		},
		KernelLaunchNs: 2000, // no PCIe doorbell round trip
		SwitchLatNs:    4,
		CacheToCacheNs: 40,
	}
	return s
}

// LookaheadNs derives the parallel engine's lookahead window width, in
// nanoseconds: the minimum positive cross-domain latency of this system.
// Work pipelined ahead of the timing clock is bounded by this window — the
// guarantee that no cross-domain interaction can land "between" the clock
// and the pipelined work is exactly the conservative-PDES lookahead
// argument, instantiated with Table I's fixed latencies. A system whose
// candidate set is empty (every cross-domain hop free) has zero lookahead
// and must run on the serial engine.
func (s System) LookaheadNs() float64 {
	la := 0.0
	add := func(ns float64) {
		if ns > 0 && (la == 0 || ns < la) {
			la = ns
		}
	}
	add(s.SwitchLatNs)    // L2<->memory-controller hop
	add(s.KernelLaunchNs) // host->GPU launch floor
	add(s.CacheToCacheNs) // coherent CPU<->GPU transfer (hetero)
	if s.Kind == Discrete {
		add(s.PCIe.LatencyUs * 1000) // CPU<->GPU link setup
		add(s.VM.GPUFaultServNs)     // GPU-local fault floor
	} else {
		add(s.VM.CPUFaultServUs * 1000) // CPU fault-handler occupancy
	}
	return la
}

// Validate checks internal consistency of a System and returns a descriptive
// error for the first problem found.
func (s System) Validate() error {
	switch {
	case s.LineBytes <= 0 || s.LineBytes&(s.LineBytes-1) != 0:
		return fmt.Errorf("LineBytes %d must be a positive power of two", s.LineBytes)
	case s.CPU.Cores <= 0:
		return fmt.Errorf("need at least one CPU core")
	case s.GPU.SMs <= 0:
		return fmt.Errorf("need at least one GPU SM")
	case s.GPU.WarpSize <= 0:
		return fmt.Errorf("warp size must be positive")
	case s.GPUMem.Channels <= 0 || s.GPUMem.BytesPerSec <= 0:
		return fmt.Errorf("GPU/shared memory misconfigured: %+v", s.GPUMem)
	case s.VM.PageBytes < s.LineBytes:
		return fmt.Errorf("page size %d smaller than line size %d", s.VM.PageBytes, s.LineBytes)
	}
	if s.Kind == Discrete {
		if s.CPUMem.Channels <= 0 || s.CPUMem.BytesPerSec <= 0 {
			return fmt.Errorf("discrete system needs CPU memory: %+v", s.CPUMem)
		}
		if s.PCIe.BytesPerSec <= 0 {
			return fmt.Errorf("discrete system needs a PCIe link")
		}
	}
	// The lookahead derivation treats these latencies as window-width
	// candidates, so they must be well-formed: non-finite or negative
	// values would silently produce a garbage window instead of a clean
	// serial fallback. Zero stays valid (it just contributes no candidate
	// — CacheToCacheNs is legitimately 0 on the discrete system).
	switch {
	case !finite(s.SwitchLatNs) || !finite(s.KernelLaunchNs) || !finite(s.CacheToCacheNs) ||
		!finite(s.PCIe.LatencyUs) || !finite(s.VM.GPUFaultServNs) || !finite(s.VM.CPUFaultServUs):
		return fmt.Errorf("latency parameters must be finite")
	case s.SwitchLatNs < 0 || s.KernelLaunchNs < 0 || s.CacheToCacheNs < 0:
		return fmt.Errorf("latencies must not be negative: SwitchLatNs %v, KernelLaunchNs %v, CacheToCacheNs %v",
			s.SwitchLatNs, s.KernelLaunchNs, s.CacheToCacheNs)
	case s.PCIe.LatencyUs < 0 || s.VM.GPUFaultServNs < 0 || s.VM.CPUFaultServUs < 0:
		return fmt.Errorf("latencies must not be negative: PCIe.LatencyUs %v, VM.GPUFaultServNs %v, VM.CPUFaultServUs %v",
			s.PCIe.LatencyUs, s.VM.GPUFaultServNs, s.VM.CPUFaultServUs)
	}
	f := s.Faults
	// Reject NaN explicitly: a NaN fails every ordered comparison, so
	// without these guards NaN parameters would sail through the range
	// checks below and poison the simulated timings instead of failing
	// the run up front as a usage error.
	switch {
	case !finite(f.PCIeBWFrac) || !finite(f.FaultLatMult) ||
		!finite(f.DRAMStallStartUs) || !finite(f.DRAMStallEndUs):
		return fmt.Errorf("fault parameters must be finite: %+v", f)
	case f.PCIeBWFrac < 0 || f.PCIeBWFrac > 1:
		return fmt.Errorf("fault PCIeBWFrac %v must be in [0,1]", f.PCIeBWFrac)
	case f.FaultLatMult < 0:
		return fmt.Errorf("fault FaultLatMult %v must be >= 0", f.FaultLatMult)
	case f.DRAMStallStartUs < 0 || f.DRAMStallEndUs < 0:
		return fmt.Errorf("fault DRAM stall window [%v,%v)us must not be negative", f.DRAMStallStartUs, f.DRAMStallEndUs)
	case f.DRAMStallEndUs < f.DRAMStallStartUs:
		return fmt.Errorf("fault DRAM stall window [%v,%v)us inverted", f.DRAMStallStartUs, f.DRAMStallEndUs)
	case f.DRAMStalled() && (f.DRAMStallChannel < 0 || f.DRAMStallChannel >= s.GPUMem.Channels):
		return fmt.Errorf("fault DRAM stall channel %d out of range (memory has %d)", f.DRAMStallChannel, s.GPUMem.Channels)
	}
	return nil
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
