package config

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, s := range []System{DiscreteGPU(), HeteroProcessor()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%v preset invalid: %v", s.Kind, err)
		}
	}
}

func TestTable1PeakRates(t *testing.T) {
	d := DiscreteGPU()
	// Table I: CPU cores are 14 GFLOP/s peak each.
	if got := d.CPU.PeakFLOPs() / float64(d.CPU.Cores); got != 14e9 {
		t.Fatalf("CPU per-core peak = %g, want 14e9", got)
	}
	// GPU SMs are 22.4 GFLOP/s peak each; 16 SMs total 358.4 GFLOP/s.
	if got := d.GPU.PeakFLOPs(); got != 358.4e9 {
		t.Fatalf("GPU peak = %g, want 358.4e9", got)
	}
	if d.CPUMem.BytesPerSec != 24e9 || d.GPUMem.BytesPerSec != 179e9 {
		t.Fatal("Table I memory bandwidths wrong")
	}
	if d.PCIe.BytesPerSec != 8e9 {
		t.Fatal("PCIe bandwidth wrong")
	}
}

func TestKindSemantics(t *testing.T) {
	if DiscreteGPU().Unified() {
		t.Fatal("discrete must not be unified")
	}
	if !HeteroProcessor().Unified() {
		t.Fatal("hetero must be unified")
	}
	if DiscreteGPU().Kind.String() != "discrete-gpu" || HeteroProcessor().Kind.String() != "hetero-processor" {
		t.Fatal("kind names wrong")
	}
}

func TestHeteroFaultModel(t *testing.T) {
	h := HeteroProcessor()
	if !h.VM.GPUFaultToCPU || h.VM.CPUFaultServUs <= 0 {
		t.Fatal("hetero must route GPU faults to the CPU")
	}
	d := DiscreteGPU()
	if d.VM.GPUFaultToCPU {
		t.Fatal("discrete GPU handles its own faults")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*System){
		func(s *System) { s.LineBytes = 100 },
		func(s *System) { s.LineBytes = 0 },
		func(s *System) { s.CPU.Cores = 0 },
		func(s *System) { s.GPU.SMs = 0 },
		func(s *System) { s.GPU.WarpSize = 0 },
		func(s *System) { s.GPUMem.Channels = 0 },
		func(s *System) { s.VM.PageBytes = 64 },
		func(s *System) { s.CPUMem.BytesPerSec = 0 },
		func(s *System) { s.PCIe.BytesPerSec = 0 },
	}
	for i, mutate := range cases {
		s := DiscreteGPU()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: mutation not caught", i)
		}
	}
}

// TestValidateFaultRanges range-checks every FaultConfig parameter,
// including the NaN/Inf values that slip silently through ordered
// comparisons — a NaN PCIe fraction must fail validation, not scale
// the link bandwidth to NaN mid-run.
func TestValidateFaultRanges(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := map[string]FaultConfig{
		"pcie negative":        {PCIeBWFrac: -0.1},
		"pcie above one":       {PCIeBWFrac: 1.5},
		"pcie NaN":             {PCIeBWFrac: nan},
		"pcie Inf":             {PCIeBWFrac: inf},
		"latmult negative":     {FaultLatMult: -2},
		"latmult NaN":          {FaultLatMult: nan},
		"latmult Inf":          {FaultLatMult: inf},
		"window inverted":      {DRAMStallStartUs: 100, DRAMStallEndUs: 50},
		"window negative":      {DRAMStallStartUs: -100, DRAMStallEndUs: -50},
		"window start NaN":     {DRAMStallStartUs: nan, DRAMStallEndUs: 50},
		"window end Inf":       {DRAMStallStartUs: 0, DRAMStallEndUs: inf},
		"channel out of range": {DRAMStallStartUs: 0, DRAMStallEndUs: 100, DRAMStallChannel: 99},
		"channel negative":     {DRAMStallStartUs: 0, DRAMStallEndUs: 100, DRAMStallChannel: -1},
	}
	for name, f := range bad {
		s := DiscreteGPU()
		s.Faults = f
		if err := s.Validate(); err == nil {
			t.Errorf("%s: %+v not caught", name, f)
		}
	}
	good := map[string]FaultConfig{
		"none":           {},
		"quarter pcie":   {PCIeBWFrac: 0.25},
		"full pcie":      {PCIeBWFrac: 1},
		"slow faults":    {FaultLatMult: 8},
		"stalled window": {DRAMStallStartUs: 0, DRAMStallEndUs: 100, DRAMStallChannel: 1},
	}
	for name, f := range good {
		s := DiscreteGPU()
		s.Faults = f
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %+v wrongly rejected: %v", name, f, err)
		}
	}
}

func TestPerChannelBW(t *testing.T) {
	m := MemConfig{Channels: 4, BytesPerSec: 179e9}
	if got := m.PerChannelBW(); got != 179e9/4 {
		t.Fatalf("per-channel = %g", got)
	}
}
