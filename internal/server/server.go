// Package server is the sweep-as-a-service layer: the HTTP daemon
// (cmd/hetsimd) that accepts run and sweep requests, executes them on the
// bounded simulation pool, and serves the same SweepDoc/OutcomeJSON
// documents the CLI commands export. One warm process amortizes setup
// across many tenants — the CrystalGPU-style management layer the roadmap
// calls for — so the design center is failure behavior, not features:
//
//   - Admission control: a weighted gate caps concurrent simulations at
//     the configured pool size and bounds the waiting line; beyond that,
//     requests fail fast with 429 + Retry-After instead of queueing
//     without bound.
//   - Request isolation: every request's simulations run under the
//     fault-tolerant harness (a panicking or livelocked run fails that
//     request with a structured error, never the process), per-request
//     deadlines cancel through the engines' periodic checks, and a
//     handler-level recover turns server bugs into 500s.
//   - Durability: each sweep request checkpoints into its own
//     fingerprint-keyed journal, so a killed daemon resumes rather than
//     restarts; completed responses are memoized in a CRC-verified
//     content-addressed cache, so a repeated request is a disk read.
//     Corrupt entries quarantine and recompute — the store self-heals
//     instead of refusing service.
//   - Graceful drain: the Drain context (first SIGTERM) stops admission
//     and stops dispatching new runs inside in-flight sweeps; what has
//     completed is journaled and the client is told to resubmit. The
//     Hard context (second signal) aborts in-flight runs too.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/fsx"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// JournalKind stamps the server's per-request sweep journals.
const JournalKind = "hetsimd"

// Response headers the daemon sets; tests and operators key off them.
const (
	// HeaderCache reports whether the response body came from the result
	// cache ("hit") or a fresh execution ("miss").
	HeaderCache = "X-Hetsimd-Cache"
	// HeaderResumed reports how many of a sweep's runs were replayed
	// from its checkpoint journal instead of executed (a restart
	// resuming interrupted work).
	HeaderResumed = "X-Hetsimd-Resumed"
	// HeaderWallMs reports the handler's wall-clock cost in ms. The
	// response bodies themselves carry no wall times — those are scrubbed
	// so identical requests produce byte-identical (and so cacheable)
	// documents.
	HeaderWallMs = "X-Hetsimd-Wall-Ms"
	// HeaderPersist reports the daemon's persistence health for this
	// response: "ok", or "degraded" when a state-dir failure has the
	// daemon serving correct results from memory without checkpointing
	// or memoizing them (see persistGuard).
	HeaderPersist = "X-Hetsimd-Persist"
)

// Config parameterizes a Server.
type Config struct {
	// StateDir roots the daemon's durable state: StateDir/journals for
	// per-request checkpoint journals, StateDir/cache for the result
	// cache. Required.
	StateDir string
	// Pool caps concurrently executing simulations across all requests
	// (0 = GOMAXPROCS). This is the hard bound admission enforces.
	Pool int
	// Queue caps requests waiting for pool slots; a request beyond it is
	// rejected with 429 (0 = no waiting: full pool means reject).
	Queue int
	// RetryAfter is the hint sent with 429/503 responses (0 = 2s).
	RetryAfter time.Duration
	// Drain, when done, puts the server into drain: readyz flips to 503,
	// new requests are rejected, in-flight sweeps stop dispatching runs
	// and checkpoint what completed. Nil = never drains.
	Drain context.Context
	// Hard, when done, aborts in-flight runs through engine cancellation
	// (the second-signal stage). Nil = never.
	Hard context.Context
	// Logf receives operational diagnostics (nil discards).
	Logf func(format string, args ...any)
	// Log receives the structured access log: one record per request, with
	// the correlation ID, route, status, and duration. Nil discards them.
	Log *slog.Logger
	// Metrics is the registry the server's families register in and the
	// one GET /metrics serves. Nil means metrics.Default — the registry
	// the harness and journal layers already feed, so one scrape covers
	// HTTP, admission, cache, and run-lifecycle counters together.
	Metrics *metrics.Registry
	// FS is the filesystem every persistence operation goes through —
	// journals, the result cache, GC, the recovery probe. Nil means the
	// real OS filesystem; the chaos tests inject an *fsx.Fault here to
	// script disk failures underneath live requests.
	FS fsx.FS
	// StateQuota caps the state dir's total size in bytes. When a pass of
	// the garbage collector (or a completed request) finds the dir over
	// budget, least-recently-used cache entries are evicted until it
	// fits; evicted fingerprints recompute on next request. 0 = no limit.
	StateQuota int64
	// GCInterval spaces the periodic state-dir garbage-collection passes
	// (orphaned temp files, aged quarantines, subsumed journals, quota
	// enforcement). 0 = every minute; negative disables the periodic
	// loop (the startup pass still runs).
	GCInterval time.Duration
	// CorruptAge is how long quarantined *.corrupt files are kept for
	// post-mortem inspection before GC reclaims them. 0 = 24h.
	CorruptAge time.Duration
	// StreamWriteTimeout bounds each frame write on a streamed
	// (?stream=sse|ndjson) response; a client that stalls longer is
	// disconnected and its request canceled, so a dead reader cannot
	// park a pool worker on a full socket buffer. 0 = 1m; negative
	// disables the deadline.
	StreamWriteTimeout time.Duration
	// ProbeInterval is the initial backoff of the persistence recovery
	// probe after the daemon degrades (doubles per failure, capped at
	// 30s). 0 = 1s.
	ProbeInterval time.Duration
}

// Server is the sweep-as-a-service request layer. Build with New, mount
// with Handler.
type Server struct {
	cfg        Config
	fs         fsx.FS
	gate       *Gate
	cache      *Cache
	journalDir string
	locks      sync.Map // fingerprint -> *sync.Mutex (sweep singleflight)
	m          *serverMetrics
	persist    *persistGuard

	// Execution seams, overridden by tests to substitute deterministic
	// stand-ins for the simulator.
	runSweep func(bench.Size, experiments.SweepOpts) (*experiments.Results, []harness.RunError)
	runOne   func(harness.Spec) *harness.Outcome
}

// New builds a Server over cfg, creating the state layout on disk.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("server: Config.StateDir is required")
	}
	if cfg.Pool <= 0 {
		cfg.Pool = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.Drain == nil {
		cfg.Drain = context.Background()
	}
	if cfg.Hard == nil {
		cfg.Hard = context.Background()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.Default
	}
	if cfg.FS == nil {
		cfg.FS = fsx.OS
	}
	if cfg.GCInterval == 0 {
		cfg.GCInterval = time.Minute
	}
	if cfg.CorruptAge == 0 {
		cfg.CorruptAge = 24 * time.Hour
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = time.Minute
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	journalDir := filepath.Join(cfg.StateDir, "journals")
	if err := cfg.FS.MkdirAll(journalDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	cache, err := NewCacheFS(cfg.FS, filepath.Join(cfg.StateDir, "cache"), cfg.Logf)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	m := newServerMetrics(cfg.Metrics)
	cache.onQuarantine = m.cacheQuarantined.Inc
	gate := NewGate(cfg.Pool, cfg.Queue)
	gate.Instrument(m.inFlight, m.waiting)
	s := &Server{
		cfg:        cfg,
		fs:         cfg.FS,
		gate:       gate,
		cache:      cache,
		journalDir: journalDir,
		m:          m,
		runSweep:   experiments.RunSweep,
		runOne:     harness.Run,
	}
	s.persist = &persistGuard{s: s}
	// Startup GC: reclaim what a previous process's crash left behind
	// (half-written temp files, journals already subsumed by cache
	// entries) before serving, then keep the dir tidy periodically.
	s.runGC(true)
	if cfg.GCInterval > 0 {
		go s.gcLoop()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	return s.middleware(mux)
}

// draining reports whether the first shutdown stage has begun.
func (s *Server) draining() bool { return s.cfg.Drain.Err() != nil }

// statusWriter tracks whether a handler already committed a status (so
// the panic recovery layer knows whether a 500 can still be sent) and
// which one, for the request metrics and access log.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
	}
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// status reports the committed response code (200 for an implicit commit).
func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// is how streamed responses reach the real connection's Flush and
// per-write deadlines. statusWriter deliberately implements no Flush of
// its own: a swallowing Flush here would mask the write errors the
// slow-client guard keys off.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// routeLabel maps a request path to its metrics label. The set is fixed —
// unknown paths collapse to "other" — so a scanner probing random URLs
// cannot inflate label cardinality.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/version", "/metrics", "/v1/benchmarks", "/v1/sweep", "/v1/run":
		return path
	}
	return "other"
}

// probeRoute reports whether a route is an operational probe, whose access
// log records go out at debug level so a scraper polling every few seconds
// does not drown the request log.
func probeRoute(route string) bool {
	switch route {
	case "/healthz", "/readyz", "/version", "/metrics":
		return true
	}
	return false
}

// middleware wraps every handler with the per-request cross-cutting
// layers, outermost first: correlation ID (accept/echo X-Request-Id,
// generate otherwise, thread through the context), panic recovery (a
// server-layer bug fails that request with a 500 and a logged stack,
// never the process — simulation panics are already recovered by the
// harness), and, on the way out, the request counter, latency histogram,
// and structured access log record.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := ensureRequestID(r)
		w.Header().Set(HeaderRequestID, id)
		r = r.WithContext(withRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		route := routeLabel(r.URL.Path)
		defer func() {
			if v := recover(); v != nil {
				s.cfg.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				if !sw.wrote {
					writeJSONError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			elapsed := time.Since(t0)
			code := sw.status()
			s.m.requests.With(route, strconv.Itoa(code)).Inc()
			s.m.latency.With(route).Observe(elapsed.Seconds())
			level := slog.LevelInfo
			if probeRoute(route) {
				level = slog.LevelDebug
			}
			s.cfg.Log.LogAttrs(r.Context(), level, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", code),
				slog.Int64("dur_ms", elapsed.Milliseconds()),
				slog.String("remote", r.RemoteAddr))
		}()
		next.ServeHTTP(sw, r)
	})
}

// writeJSONError writes the uniform error document:
// {"error": code, "message": msg}.
func writeJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": code, "message": msg})
}

// fail routes an error to the right medium: an in-progress stream gets a
// terminal error frame (the status line is long gone); anything else gets
// a plain JSON error response.
func (s *Server) fail(w http.ResponseWriter, st *streamer, status int, code, msg string) {
	if st != nil && st.started {
		st.fail(code, msg)
		return
	}
	writeJSONError(w, status, code, msg)
}

// retryAfter stamps the Retry-After hint on throttling responses.
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// mergeCtx derives a context canceled when either a or b is. The release
// func must be called to free the propagation hook.
func mergeCtx(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":        "ok",
		"draining":      s.draining(),
		"persist":       s.persist.status(),
		"gate":          s.gate.Stats(),
		"cache_entries": s.cache.Len(),
		"state_bytes":   s.m.stateBytes.Value(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		// A draining server is distinguishable from a crashed or
		// overloaded one by the literal body: load balancers and scripts
		// match the word, not a JSON shape.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	// Degraded persistence is a warning, not an outage: the daemon still
	// serves correct results from memory, so it stays ready (200) and
	// only the detail flips — pulling a degraded instance out of rotation
	// would turn a disk hiccup into lost capacity.
	doc := map[string]string{"status": "ready", "persist": s.persist.status()}
	if op, perr, degraded := s.persist.detail(); degraded {
		doc["persist_op"] = op
		if perr != nil {
			doc["persist_error"] = perr.Error()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// handleVersion reports what binary is serving: module path and version,
// Go toolchain, and the VCS stamp when the build carried one.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	doc := map[string]string{"go": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		doc["path"] = bi.Path
		doc["module"] = bi.Main.Path
		doc["version"] = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				doc["revision"] = kv.Value
			case "vcs.time":
				doc["build_time"] = kv.Value
			case "vcs.modified":
				doc["dirty"] = kv.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	if err := s.cfg.Metrics.WriteText(w); err != nil {
		s.cfg.Logf("metrics: %v", err)
	}
}

// benchmarkInfo is one row of GET /v1/benchmarks. Modes lists every
// organization the benchmark supports — the two baseline modes plus any
// restructured organizations — so clients can request overlapped sweeps
// without trial-and-error; ExtraModes repeats just the restructured ones
// for older clients.
type benchmarkInfo struct {
	Name       string   `json:"name"`
	Desc       string   `json:"desc"`
	Modes      []string `json:"modes"`
	ExtraModes []string `json:"extra_modes,omitempty"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var rows []benchmarkInfo
	for _, b := range bench.All() {
		info := b.Info()
		row := benchmarkInfo{Name: info.FullName(), Desc: info.Desc}
		for _, m := range info.Modes() {
			row.Modes = append(row.Modes, m.String())
		}
		for _, m := range info.ExtraModes {
			row.ExtraModes = append(row.ExtraModes, m.String())
		}
		rows = append(rows, row)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

// admit performs the shared admission steps: drain check, deadline
// wiring, gate entry. It returns the request context (with any deadline
// applied), the gate release, and false if the response has already been
// written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, deadline time.Duration, weight int) (context.Context, context.CancelFunc, func(), bool) {
	if s.draining() {
		s.m.rejectedDraining.Inc()
		s.retryAfter(w)
		writeJSONError(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against another instance or after restart")
		return nil, nil, nil, false
	}
	reqCtx := r.Context()
	var cancel context.CancelFunc
	if deadline > 0 {
		reqCtx, cancel = context.WithTimeout(reqCtx, deadline)
	} else {
		// Always cancelable: the slow-client guard aborts a request whose
		// stream reader stalled by canceling this context.
		reqCtx, cancel = context.WithCancel(reqCtx)
	}
	wait0 := time.Now()
	release, err := s.gate.Admit(reqCtx, weight)
	s.m.queueWait.Observe(time.Since(wait0).Seconds())
	if err != nil {
		cancel()
		switch {
		case errors.Is(err, ErrBusy):
			s.m.rejectedBusy.Inc()
			s.retryAfter(w)
			writeJSONError(w, http.StatusTooManyRequests, "busy",
				fmt.Sprintf("all %d simulation slots busy and the waiting line (%d) is full", s.cfg.Pool, s.cfg.Queue))
		case errors.Is(err, context.DeadlineExceeded):
			// The deadline was the client's, but the wait was this server's
			// congestion: hint when to retry, as the 429 path does.
			s.m.rejectedQueueDeadline.Inc()
			s.retryAfter(w)
			writeJSONError(w, http.StatusGatewayTimeout, "deadline", "request deadline expired while queued for admission")
		default:
			// Client went away while queued; nothing useful to write.
			s.m.rejectedCanceled.Inc()
		}
		return nil, nil, nil, false
	}
	return reqCtx, cancel, release, true
}

// serveDoc writes a completed JSON document with the daemon's telemetry
// headers, through the stream when one is active. It is the one place
// every completed request exits through, so the cache hit/miss counters
// live here and each request counts exactly once.
func (s *Server) serveDoc(w http.ResponseWriter, st *streamer, body []byte, cache string, wall time.Duration) {
	if cache == "hit" {
		s.m.cacheHits.Inc()
	} else {
		s.m.cacheMisses.Inc()
	}
	persist := s.persist.status()
	if st != nil {
		if !st.started {
			w.Header().Set(HeaderCache, cache)
			w.Header().Set(HeaderWallMs, strconv.FormatInt(wall.Milliseconds(), 10))
			w.Header().Set(HeaderPersist, persist)
		}
		st.result(body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCache, cache)
	w.Header().Set(HeaderWallMs, strconv.FormatInt(wall.Milliseconds(), 10))
	w.Header().Set(HeaderPersist, persist)
	w.Write(body)
}

// fpLock returns the singleflight mutex for a fingerprint: concurrent
// identical sweep requests must not share one journal file, so the
// second waits and then (typically) finds the first's cache entry.
func (s *Server) fpLock(fp string) *sync.Mutex {
	v, _ := s.locks.LoadOrStore(fp, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// journalPath resolves a sweep's checkpoint journal file. A journal left
// by an earlier interrupted request for the same fingerprint wins — the
// glob matches any request's ID suffix (and the legacy bare name), and a
// fingerprint is a fixed-length hash so one fingerprint's pattern can
// never match another's files. A fresh journal is named with the creating
// request's correlation ID, so `ls STATE/journals` answers which request
// left which checkpoint. Callers hold the fingerprint's singleflight
// lock, so at most one journal per fingerprint exists at a time.
func (s *Server) journalPath(fp, requestID string) string {
	var matches []string
	if ents, err := s.fs.ReadDir(s.journalDir); err == nil {
		for _, e := range ents {
			n := e.Name()
			if strings.HasPrefix(n, fp) && strings.HasSuffix(n, ".journal") {
				matches = append(matches, n)
			}
		}
	}
	if len(matches) > 0 {
		sort.Strings(matches)
		return filepath.Join(s.journalDir, matches[0])
	}
	name := fp + ".journal"
	if requestID != "" {
		name = fp + "-" + requestID + ".journal"
	}
	return filepath.Join(s.journalDir, name)
}

// openJournal opens (resume semantics) the fingerprint-keyed checkpoint
// journal for a sweep request. A corrupt or mismatched journal is
// quarantined — renamed aside and logged, like a corrupt cache entry —
// and a fresh one begins: the robust daemon recomputes, it never wedges a
// fingerprint on damaged state.
func (s *Server) openJournal(path string, p *sweepParams) (*harness.RunLog, error) {
	state, err := experiments.OpenStateAtFS(s.fs, path, JournalKind, true, p.size, p.opts)
	if err == nil {
		return state, nil
	}
	if errors.Is(err, journal.ErrCorrupt) || errors.Is(err, journal.ErrFingerprint) {
		s.m.journalQuarantined.Inc()
		// The destination is unique (.corrupt, .corrupt.1, ...): repeated
		// damage to one fingerprint keeps every specimen instead of
		// overwriting the previous one.
		q := uniqueQuarantinePath(s.fs, path)
		if rerr := s.fs.Rename(path, q); rerr != nil {
			return nil, fmt.Errorf("quarantine %s: %w (journal was bad: %v)", path, rerr, err)
		}
		now := time.Now()
		s.fs.Chtimes(q, now, now) // age from quarantine time, for GC
		if serr := journal.SyncDirOn(s.fs, s.journalDir); serr != nil {
			s.cfg.Logf("journal quarantine: %v", serr)
		}
		s.cfg.Logf("quarantined bad journal %s -> %s: %v", path, q, err)
		return experiments.OpenStateAtFS(s.fs, path, JournalKind, false, p.size, p.opts)
	}
	return nil, err
}

// interruption classifies why a sweep came back incomplete: canceled
// outcomes and never-dispatched slots both mean the request was cut short
// (drain, deadline, or client disconnect) and the document must be
// neither served as complete nor cached.
func interruption(res *experiments.Results) bool {
	if len(res.Skipped) > 0 {
		return true
	}
	for i := range res.Failed {
		if res.Failed[i].Kind == harness.KindCanceled {
			return true
		}
	}
	return false
}

// scrubSweepDoc zeroes the document's wall-clock telemetry. Wall times
// are the one nondeterministic ingredient of a sweep document; scrubbed,
// identical requests produce byte-identical documents — which is what
// makes the result cache coherent and lets a resumed sweep's response
// match an uninterrupted one's exactly. The handler's real wall cost is
// reported out of band in the X-Hetsimd-Wall-Ms header.
func scrubSweepDoc(doc *experiments.SweepDoc) {
	for i := range doc.Runs {
		doc.Runs[i].WallMs = 0
	}
	for i := range doc.Footnotes.Failed {
		doc.Footnotes.Failed[i].WallMs = 0
	}
}

// scrubOutcome does the same for a single-run document.
func scrubOutcome(doc *harness.OutcomeJSON) {
	doc.WallMs = 0
	if doc.Error != nil {
		doc.Error.WallMs = 0
	}
	for i := range doc.AttemptErrors {
		doc.AttemptErrors[i].WallMs = 0
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	format, err := parseStream(r.URL.Query().Get("stream"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	p, err := resolveSweep(&req, s.cfg.Pool)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	t0 := time.Now()
	requestID := RequestIDFrom(r.Context())
	reqCtx, cancel, release, ok := s.admit(w, r, p.deadline, p.jobs)
	if !ok {
		return
	}
	defer cancel()
	defer release()
	streamTimeout := s.cfg.StreamWriteTimeout
	if streamTimeout < 0 {
		streamTimeout = 0
	}
	st := newStreamer(w, format, streamTimeout, func() {
		// The reader stalled past the per-write deadline: count it, drop
		// the connection's work by canceling the request, and let the
		// broken streamer swallow the remaining frames.
		s.m.rejectedSlowClient.Inc()
		s.cfg.Logf("sweep %s: stream reader stalled past %v; canceling request", short(p.fingerprint), streamTimeout)
		cancel()
	})

	// Fast path: the fingerprint's result is already on disk, verified.
	if body, ok := s.cache.Get(p.fingerprint); ok {
		s.serveDoc(w, st, body, "hit", time.Since(t0))
		return
	}
	// One executor per fingerprint: a concurrent identical request waits
	// here, then usually leaves through the cache re-check — the
	// singleflight coalesce the counter below records.
	lock := s.fpLock(p.fingerprint)
	lock.Lock()
	defer lock.Unlock()
	if body, ok := s.cache.Get(p.fingerprint); ok {
		s.m.coalesced.Inc()
		s.serveDoc(w, st, body, "hit", time.Since(t0))
		return
	}

	// The journal is a safety net, not a prerequisite: if persistence is
	// (or goes) degraded, the sweep runs entirely from memory — a nil
	// RunLog ignores every call — and the response is identical. A
	// persistence failure is never a request failure.
	var state *harness.RunLog
	jpath := s.journalPath(p.fingerprint, requestID)
	if s.persist.ok() {
		j, jerr := s.openJournal(jpath, p)
		if jerr != nil {
			s.persist.degrade(opJournalCreate, jerr)
		} else {
			state = j
		}
	}
	resumed := state.ReplayedCount()
	if resumed > 0 {
		s.m.sweepsResumed.Inc()
		s.m.resumedRuns.Add(uint64(resumed))
		s.cfg.Logf("sweep %s: resuming, %d runs already journaled", short(p.fingerprint), resumed)
	}

	// Dispatch stops on drain or request end; in-flight runs abort on
	// the hard stage or request end. Between the two, a drained request
	// finishes (and journals) what it started.
	dispatchCtx, stopDispatch := mergeCtx(reqCtx, s.cfg.Drain)
	defer stopDispatch()
	runCtx, stopRun := mergeCtx(reqCtx, s.cfg.Hard)
	defer stopRun()

	opts := p.opts
	opts.State = state
	opts.Ctx, opts.RunCtx = dispatchCtx, runCtx
	// The correlation ID rides along into the harness's trace spans; it is
	// not part of the fingerprint (two requests for the same experiment
	// share one cache entry regardless of who asked).
	opts.RequestID = requestID
	if st != nil {
		tracker := sweep.NewEventTracker(st.progress)
		tracker.SetRequestID(requestID)
		opts.Progress = tracker
		// Headers must beat the first progress frame out the door.
		w.Header().Set(HeaderCache, "miss")
		w.Header().Set(HeaderResumed, strconv.Itoa(resumed))
	}

	res, _ := s.runSweep(p.size, opts)
	if jerr := state.Err(); jerr != nil {
		// Appends started failing mid-sweep (the RunLog's sticky error
		// already downgraded the rest of the sweep to un-journaled);
		// completed runs stayed in memory and the response is unaffected.
		s.persist.degrade(opJournalAppend, jerr)
	}
	state.Close()

	if interruption(res) {
		done := len(res.Runs)
		total := done + len(res.Skipped)
		switch {
		case s.draining():
			s.retryAfter(w)
			s.fail(w, st, http.StatusServiceUnavailable, "draining",
				fmt.Sprintf("server draining: %d of %d runs completed and checkpointed; resubmit to resume", done, total))
		case reqCtx.Err() == context.DeadlineExceeded:
			s.fail(w, st, http.StatusGatewayTimeout, "deadline",
				fmt.Sprintf("request deadline expired: %d of %d runs completed and checkpointed; resubmit to resume", done, total))
		default:
			// Client disconnect (or hard abort): the journal keeps what
			// finished; nothing useful to write to a vanished client.
			s.fail(w, st, http.StatusServiceUnavailable, "canceled",
				fmt.Sprintf("request canceled: %d of %d runs completed and checkpointed", done, total))
		}
		return
	}

	doc := res.JSON()
	scrubSweepDoc(&doc)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		s.fail(w, st, http.StatusInternalServerError, "internal", "marshal sweep doc: "+err.Error())
		return
	}
	body := append(data, '\n')
	if s.persist.ok() {
		if err := s.cache.Put(p.fingerprint, body); err != nil {
			// The cache is an accelerator: failure to memoize must not
			// fail the request. The journal stays put so nothing is lost.
			s.persist.degrade(opCachePut, err)
		} else {
			// The cache entry subsumes the journal; drop it so the state
			// dir stays bounded by distinct fingerprints, not request
			// history. (A crash between Put and Remove leaves both; the
			// cache hit wins and GC reaps the orphan journal.)
			if err := s.fs.Remove(jpath); err != nil && !os.IsNotExist(err) {
				s.cfg.Logf("sweep %s: removing subsumed journal: %v", short(p.fingerprint), err)
			} else if err := journal.SyncDirOn(s.fs, s.journalDir); err != nil {
				s.cfg.Logf("sweep %s: %v", short(p.fingerprint), err)
			}
			if s.cfg.StateQuota > 0 {
				s.enforceQuota()
			}
		}
	}
	if st == nil {
		w.Header().Set(HeaderResumed, strconv.Itoa(resumed))
	}
	s.serveDoc(w, st, body, "miss", time.Since(t0))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	p, err := resolveRun(&req)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	t0 := time.Now()
	reqCtx, cancel, release, ok := s.admit(w, r, p.deadline, 1)
	if !ok {
		return
	}
	defer cancel()
	defer release()

	if body, ok := s.cache.Get(p.fingerprint); ok {
		s.serveDoc(w, nil, body, "hit", time.Since(t0))
		return
	}

	runCtx, stopRun := mergeCtx(reqCtx, s.cfg.Hard)
	defer stopRun()
	spec := p.spec
	spec.Ctx = runCtx
	spec.RequestID = RequestIDFrom(r.Context())
	out := s.runOne(spec)

	doc := out.JSON()
	scrubOutcome(&doc)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, "internal", "marshal outcome: "+err.Error())
		return
	}
	body := append(data, '\n')
	// A canceled outcome is an artifact of this request's shutdown
	// (deadline, drain's hard stage, client disconnect), not a result:
	// serve it structured, but never memoize it — the same rule the
	// journal applies.
	if (out.Err == nil || out.Err.Kind != harness.KindCanceled) && s.persist.ok() {
		if err := s.cache.Put(p.fingerprint, body); err != nil {
			s.persist.degrade(opCachePut, err)
		} else if s.cfg.StateQuota > 0 {
			s.enforceQuota()
		}
	}
	s.serveDoc(w, nil, body, "miss", time.Since(t0))
}

// short abbreviates a fingerprint for log lines.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
