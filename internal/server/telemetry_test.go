package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/metrics"
)

// doJSON posts body with extra headers (the plain postJSON helper cannot
// set X-Request-Id).
func doJSON(t *testing.T, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestVersionEndpoint: GET /version identifies the serving binary.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /version = %d; body: %s", resp.StatusCode, body)
	}
	var doc map[string]string
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("version body: %v\n%s", err, body)
	}
	if doc["go"] == "" {
		t.Fatalf("version document misses the Go toolchain: %s", body)
	}
}

// TestReadyzDrainingBody: a draining readyz answers with the literal
// plain-text body scripts and load balancers match on.
func TestReadyzDrainingBody(t *testing.T) {
	drain, cancel := context.WithCancel(context.Background())
	_, ts := newTestServer(t, func(c *Config) { c.Drain = drain })
	cancel()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if string(body) != "draining\n" {
		t.Fatalf("draining readyz body = %q, want %q", body, "draining\n")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("draining readyz Content-Type = %q, want text/plain", ct)
	}
}

// TestMetricsEndpointScrape: GET /metrics serves valid exposition text
// whose counters reflect what the server actually did.
func TestMetricsEndpointScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, func(c *Config) { c.Metrics = reg })
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		return stubSweepResults(size), nil
	}

	// One miss (executes and caches), one hit.
	for i, want := range []string{"miss", "hit"} {
		resp := postJSON(t, ts.URL+"/v1/sweep", `{}`)
		readBody(t, resp)
		if got := resp.Header.Get(HeaderCache); got != want {
			t.Fatalf("sweep %d: %s = %q, want %q", i, HeaderCache, got, want)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	st, err := metrics.Lint(body)
	if err != nil {
		t.Fatalf("scrape fails lint: %v\n%s", err, body)
	}
	if st.Families == 0 || st.Histograms == 0 {
		t.Fatalf("scrape stats = %+v, want families and histograms", st)
	}

	snap := reg.Snapshot()
	checks := map[string]float64{
		`hetsimd_cache_misses_total`:                                1,
		`hetsimd_cache_hits_total`:                                  1,
		`hetsimd_http_requests_total{route="/v1/sweep",code="200"}`: 2,
		`hetsimd_http_request_seconds_count{route="/v1/sweep"}`:     2,
		`hetsimd_gate_queue_wait_seconds_count`:                     2,
		`hetsimd_gate_in_flight_weight`:                             0,
		`hetsimd_gate_waiting`:                                      0,
	}
	for key, want := range checks {
		if got := snap[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

// TestGateRejectionMetrics: a 429 increments the busy rejection counter
// and the in-flight gauge tracks the admitted weight live.
func TestGateRejectionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, func(c *Config) { c.Pool = 1; c.Queue = 0; c.Metrics = reg })
	started := make(chan struct{})
	unblock := make(chan struct{})
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		close(started)
		<-unblock
		return stubSweepResults(size), nil
	}
	first := make(chan struct{})
	go func() {
		defer close(first)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	if got := reg.Snapshot()[`hetsimd_gate_in_flight_weight`]; got != 1 {
		t.Errorf("in-flight weight while executing = %v, want 1", got)
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", `{}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep = %d, want 429", resp.StatusCode)
	}
	close(unblock)
	<-first
	if got := reg.Snapshot()[`hetsimd_rejected_total{reason="busy"}`]; got != 1 {
		t.Errorf(`rejected_total{reason="busy"} = %v, want 1`, got)
	}
	if got := reg.Snapshot()[`hetsimd_gate_in_flight_weight`]; got != 0 {
		t.Errorf("in-flight weight after drain = %v, want 0", got)
	}
}

// TestRequestIDEchoAndSanitize: the daemon echoes a client's usable
// X-Request-Id, strips hostile characters, and generates an ID otherwise.
func TestRequestIDEchoAndSanitize(t *testing.T) {
	_, ts := newTestServer(t, nil)
	get := func(id string) string {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(HeaderRequestID, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		return resp.Header.Get(HeaderRequestID)
	}
	if got := get("abc-123.X_y"); got != "abc-123.X_y" {
		t.Errorf("clean ID echoed as %q", got)
	}
	if got := get("we!rd id##ü"); got != "werdid" {
		t.Errorf("hostile ID sanitized to %q, want %q", got, "werdid")
	}
	if got := get(strings.Repeat("a", 100)); got != strings.Repeat("a", 64) {
		t.Errorf("oversized ID truncated to %d bytes, want 64", len(got))
	}
	if got := get(""); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated ID = %q, want 16 hex chars", got)
	}
}

// TestRequestIDThreadedToSweepAndJournal: the correlation ID reaches the
// sweep options (and so the harness) and names the checkpoint journal an
// interrupted request leaves behind.
func TestRequestIDThreadedToSweepAndJournal(t *testing.T) {
	drain, startDrain := context.WithCancel(context.Background())
	s, ts := newTestServer(t, func(c *Config) { c.Drain = drain })
	var gotID string
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		gotID = opts.RequestID
		startDrain()
		<-opts.Ctx.Done()
		res := stubSweepResults(size)
		res.Skipped = []string{"rodinia/backprop copy"}
		return res, nil
	}
	resp := doJSON(t, ts.URL+"/v1/sweep", `{"benchmarks": ["rodinia/backprop"]}`,
		map[string]string{HeaderRequestID: "jid-42"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained sweep = %d, want 503", resp.StatusCode)
	}
	if gotID != "jid-42" {
		t.Fatalf("SweepOpts.RequestID = %q, want jid-42", gotID)
	}
	journals, _ := filepath.Glob(filepath.Join(s.journalDir, "*.journal"))
	if len(journals) != 1 {
		t.Fatalf("journals = %v, want exactly one", journals)
	}
	if base := filepath.Base(journals[0]); !strings.Contains(base, "-jid-42.journal") {
		t.Fatalf("journal %q does not carry the request ID", base)
	}
}

// TestRequestIDInProgressStream: an uncached streamed sweep stamps the
// client's correlation ID on every progress event.
func TestRequestIDInProgressStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := doJSON(t, ts.URL+"/v1/sweep?stream=ndjson", fastSweep,
		map[string]string{HeaderRequestID: "evt-7"})
	stream := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed sweep = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "evt-7" {
		t.Fatalf("stream response %s = %q, want evt-7", HeaderRequestID, got)
	}
	progress := 0
	for _, line := range bytes.Split(bytes.TrimSpace(stream), []byte("\n")) {
		var f struct {
			Event string `json:"event"`
			Data  struct {
				RequestID string `json:"request_id"`
			} `json:"data"`
		}
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		if f.Event != "progress" {
			continue
		}
		progress++
		if f.Data.RequestID != "evt-7" {
			t.Fatalf("progress frame request_id = %q, want evt-7: %s", f.Data.RequestID, line)
		}
	}
	if progress == 0 {
		t.Fatal("stream carried no progress frames (cached response?)")
	}
}

// syncBuf is a goroutine-safe log sink: the access-log record is written
// in a deferred middleware frame that can still be running when the
// client has its response.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuf) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestAccessLog: every request produces one structured record carrying
// its correlation ID, route, and status.
func TestAccessLog(t *testing.T) {
	var sb syncBuf
	_, ts := newTestServer(t, func(c *Config) {
		c.Log = slog.New(slog.NewJSONHandler(&sb, nil))
	})
	resp := doJSON(t, ts.URL+"/v1/sweep", `{`, map[string]string{HeaderRequestID: "log-1"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request = %d, want 400", resp.StatusCode)
	}

	// The record is written after the response commits; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var logged string
	for {
		logged = sb.String()
		if strings.Contains(logged, `"request_id":"log-1"`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{`"request_id":"log-1"`, `"path":"/v1/sweep"`, `"status":400`, `"method":"POST"`} {
		if !strings.Contains(logged, want) {
			t.Errorf("access log misses %s:\n%s", want, logged)
		}
	}
}
