package server

import (
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/journal"
)

// tmpOrphanAge guards the periodic tmp sweep: a temp file this old with
// no registered in-flight writer is an orphan from a crashed Put, not a
// write in progress. The startup sweep needs no age guard — nothing can
// be in flight before the server exists.
const tmpOrphanAge = 30 * time.Second

// gcLoop runs the periodic state-dir garbage collection until drain
// begins (a draining server's remaining work is finishing requests, not
// housekeeping).
func (s *Server) gcLoop() {
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.runGC(false)
		case <-s.cfg.Drain.Done():
			return
		}
	}
}

// runGC is one garbage-collection pass over the state dir: remove
// orphaned temp files, quarantines old enough to have been inspected,
// and journals whose fingerprint's result is already cached; then
// re-measure usage and evict LRU cache entries down to the byte quota.
// GC is strictly advisory — every failure is counted and logged, none
// flips degraded mode or fails a request.
func (s *Server) runGC(startup bool) {
	s.m.gcRuns.Inc()
	s.gcDir(s.cache.dir, startup, false)
	s.gcDir(s.journalDir, startup, true)
	s.enforceQuota()
}

// gcDir sweeps one state-dir subdirectory. journals selects the extra
// subsumed-journal rule.
func (s *Server) gcDir(dir string, startup, journals bool) {
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		s.cfg.Logf("gc: scan %s: %v", dir, err)
		s.m.gcFailures.Inc()
		return
	}
	now := time.Now()
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.Contains(name, ".tmp-"):
			// A crashed Put's half-written temp file. At startup every one
			// is an orphan; while serving, skip registered in-flight writes
			// and anything too young to judge.
			if !startup {
				if s.cache.TmpInFlight(name) {
					continue
				}
				info, err := e.Info()
				if err != nil || now.Sub(info.ModTime()) < tmpOrphanAge {
					continue
				}
			}
			s.gcRemove(path, s.m.gcRemovedTmp, "orphaned temp file")
		case strings.Contains(name, ".corrupt"):
			// Quarantines are evidence; keep them long enough for a
			// post-mortem, then reclaim the space.
			info, err := e.Info()
			if err != nil || now.Sub(info.ModTime()) < s.cfg.CorruptAge {
				continue
			}
			s.gcRemove(path, s.m.gcRemovedCorrupt, "aged quarantine")
		case journals && strings.HasSuffix(name, ".journal"):
			// A journal whose fingerprint already has a cached result is
			// fully subsumed: a repeat request hits the cache and never
			// opens it (normally the handler removes it after a successful
			// cache write; a crash between the two leaves this orphan).
			fp := journalFingerprint(name)
			if fp == "" || !s.cache.Has(fp) {
				continue
			}
			s.gcRemove(path, s.m.gcRemovedJournal, "journal subsumed by cache entry")
		}
	}
}

// journalFingerprint extracts the fingerprint prefix from a journal file
// name (<fp>.journal or <fp>-<requestid>.journal). Fingerprints are
// sha256 hex, so the first 64 bytes are the whole key; anything shorter
// is not ours and is left alone.
func journalFingerprint(name string) string {
	base := strings.TrimSuffix(name, ".journal")
	if len(base) < 64 {
		return ""
	}
	fp := base[:64]
	if len(base) > 64 && base[64] != '-' {
		return ""
	}
	return fp
}

// gcRemove removes one file, counting the outcome. A vanished file is
// success — someone else (a handler, a concurrent pass) got there first.
func (s *Server) gcRemove(path string, counter interface{ Inc() }, why string) {
	if err := s.fs.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return
		}
		s.cfg.Logf("gc: remove %s: %v", path, err)
		s.m.gcFailures.Inc()
		return
	}
	counter.Inc()
	s.cfg.Logf("gc: removed %s (%s)", path, why)
}

// stateUsage sums the state dir's file sizes (journals + cache, one
// level deep — the layout has no nesting).
func (s *Server) stateUsage() int64 {
	var total int64
	for _, dir := range []string{s.journalDir, s.cache.dir} {
		ents, err := s.fs.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
	}
	return total
}

// enforceQuota publishes the state dir's size and, when a quota is set
// and exceeded, evicts least-recently-used cache entries until the dir
// fits. Only cache entries are evicted: a journal is checkpoint state
// for an in-flight or interrupted sweep, and deleting one trades
// durability for space — the wrong trade for a budget mechanism. An
// evicted fingerprint simply recomputes (and re-caches) on next request.
func (s *Server) enforceQuota() {
	total := s.stateUsage()
	s.m.stateBytes.Set(total)
	if s.cfg.StateQuota <= 0 || total <= s.cfg.StateQuota {
		return
	}
	evicted := 0
	for _, ent := range s.cache.LRU() {
		if total <= s.cfg.StateQuota {
			break
		}
		if err := s.cache.Remove(ent.key); err != nil {
			s.cfg.Logf("gc: evict %s: %v", ent.key, err)
			s.m.gcFailures.Inc()
			continue
		}
		s.m.evictedEntries.Inc()
		total -= ent.size
		evicted++
		s.cfg.Logf("gc: evicted cache entry %s (%d bytes, LRU) for quota", short(ent.key), ent.size)
	}
	if evicted > 0 {
		if err := journal.SyncDirOn(s.fs, s.cache.dir); err != nil {
			s.cfg.Logf("gc: %v", err)
		}
		s.cache.SaveIndex()
	}
	s.m.stateBytes.Set(s.stateUsage())
}
