package server

import (
	"repro/internal/metrics"
)

// serverMetrics is the daemon's instrument panel: every handle is resolved
// once at construction, so the request path touches only atomic slots. The
// families live in the registry GET /metrics serves (metrics.Default unless
// Config.Metrics overrides it), alongside the run-lifecycle families the
// harness layer registers — one scrape describes the whole serving path,
// from HTTP status codes down to engine events.
type serverMetrics struct {
	// requests/latency are labeled by route (a fixed set — unknown paths
	// collapse to "other", so label cardinality is bounded) and, for
	// requests, the final HTTP status code.
	requests *metrics.CounterVec
	latency  *metrics.HistogramVec

	// Admission: rejections by reason, the wait every admitted or rejected
	// request spent queued, and the gate's live state.
	rejectedBusy          metrics.Counter // 429: slots and waiting line full
	rejectedQueueDeadline metrics.Counter // 504: deadline expired while queued
	rejectedDraining      metrics.Counter // 503: drain had begun
	rejectedCanceled      metrics.Counter // client vanished while queued
	queueWait             metrics.Histogram
	inFlight              metrics.Gauge // admitted weight = concurrent sims
	waiting               metrics.Gauge

	// Result cache and checkpoint journals.
	cacheHits          metrics.Counter
	cacheMisses        metrics.Counter
	cacheQuarantined   metrics.Counter
	journalQuarantined metrics.Counter
	sweepsResumed      metrics.Counter // requests that picked up a journal
	resumedRuns        metrics.Counter // runs replayed instead of executed
	coalesced          metrics.Counter // requests served by another's result

	// Streaming: clients too slow to drain their own progress stream.
	rejectedSlowClient metrics.Counter

	// Persistence health: the degraded (no-persistence) mode switch, the
	// failures that flipped it (by failing operation), and recoveries.
	persistDegraded       metrics.Gauge // 1 while degraded, else 0
	degradedJournalCreate metrics.Counter
	degradedJournalAppend metrics.Counter
	degradedCachePut      metrics.Counter
	persistRecovered      metrics.Counter

	// State-dir budgeting: live usage, quota evictions, GC activity.
	stateBytes       metrics.Gauge
	evictedEntries   metrics.Counter
	gcRuns           metrics.Counter
	gcFailures       metrics.Counter
	gcRemovedTmp     metrics.Counter
	gcRemovedCorrupt metrics.Counter
	gcRemovedJournal metrics.Counter
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	rejected := r.CounterVec("hetsimd_rejected_total",
		"Requests rejected or cut short, by reason (busy=429, queue_deadline=504, draining=503, canceled=client gone, slow_client=stalled stream reader disconnected).",
		"reason")
	degraded := r.CounterVec("hetsimd_persist_degraded_total",
		"Persistence failures that flipped (or kept) the daemon in degraded no-persistence mode, by failing operation.",
		"op")
	removed := r.CounterVec("hetsimd_gc_removed_total",
		"State-dir files removed by garbage collection, by kind (tmp=orphaned temp files, corrupt=aged quarantines, journal=journals subsumed by a cache entry).",
		"kind")
	evicted := r.CounterVec("hetsimd_evicted_total",
		"Files evicted to keep the state dir under its byte quota, by kind.",
		"kind")
	return &serverMetrics{
		requests: r.CounterVec("hetsimd_http_requests_total",
			"HTTP requests served, by route and final status code.", "route", "code"),
		latency: r.HistogramVec("hetsimd_http_request_seconds",
			"HTTP request wall time in seconds, by route.",
			metrics.LogBuckets(0.001, 600, 3), "route"),
		rejectedBusy:          rejected.With("busy"),
		rejectedQueueDeadline: rejected.With("queue_deadline"),
		rejectedDraining:      rejected.With("draining"),
		rejectedCanceled:      rejected.With("canceled"),
		queueWait: r.Histogram("hetsimd_gate_queue_wait_seconds",
			"Time a request spent waiting for admission (near-zero when slots were free).",
			metrics.LogBuckets(1e-6, 600, 2)),
		inFlight: r.Gauge("hetsimd_gate_in_flight_weight",
			"Admitted weight: the number of simulations allowed to execute concurrently right now."),
		waiting: r.Gauge("hetsimd_gate_waiting",
			"Requests currently queued in the bounded admission line."),
		cacheHits: r.Counter("hetsimd_cache_hits_total",
			"Requests served from the verified result cache."),
		cacheMisses: r.Counter("hetsimd_cache_misses_total",
			"Requests that executed because no valid cache entry existed."),
		cacheQuarantined: r.Counter("hetsimd_cache_quarantined_total",
			"Corrupt cache entries renamed aside and recomputed."),
		journalQuarantined: r.Counter("hetsimd_journal_quarantined_total",
			"Corrupt or mismatched checkpoint journals renamed aside."),
		sweepsResumed: r.Counter("hetsimd_sweeps_resumed_total",
			"Sweep requests that resumed a checkpoint journal from an earlier interrupted request."),
		resumedRuns: r.Counter("hetsimd_resumed_runs_total",
			"Runs replayed from checkpoint journals instead of executed."),
		coalesced: r.Counter("hetsimd_coalesced_total",
			"Requests that waited on an identical in-flight request and were served its result."),
		rejectedSlowClient: rejected.With("slow_client"),
		persistDegraded: r.Gauge("hetsimd_persist_degraded",
			"1 while the daemon is in degraded no-persistence mode (serving from memory, not journaling or caching), else 0."),
		degradedJournalCreate: degraded.With("journal_create"),
		degradedJournalAppend: degraded.With("journal_append"),
		degradedCachePut:      degraded.With("cache_put"),
		persistRecovered: r.Counter("hetsimd_persist_recovered_total",
			"Times the persistence probe succeeded and the daemon left degraded mode."),
		stateBytes: r.Gauge("hetsimd_state_bytes",
			"Total bytes in the state dir (journals + cache) at the last GC or quota check."),
		evictedEntries: evicted.With("entry"),
		gcRuns: r.Counter("hetsimd_gc_runs_total",
			"State-dir garbage-collection passes completed (startup plus periodic)."),
		gcFailures: r.Counter("hetsimd_gc_failures_total",
			"Individual removals or evictions the garbage collector attempted and could not complete."),
		gcRemovedTmp:     removed.With("tmp"),
		gcRemovedCorrupt: removed.With("corrupt"),
		gcRemovedJournal: removed.With("journal"),
	}
}
