package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/sweep"
)

// streamFormat selects the progress-stream encoding a client asked for
// with the ?stream query parameter.
type streamFormat int

const (
	streamNone streamFormat = iota
	// streamSSE is text/event-stream: "event: <kind>\ndata: <json>\n\n".
	streamSSE
	// streamNDJSON is application/x-ndjson: one JSON object per line,
	// each tagged with an "event" field.
	streamNDJSON
)

// parseStream maps the ?stream= value to a format.
func parseStream(v string) (streamFormat, error) {
	switch v {
	case "":
		return streamNone, nil
	case "sse":
		return streamSSE, nil
	case "ndjson":
		return streamNDJSON, nil
	}
	return streamNone, badRequest("unknown stream format %q (want sse or ndjson)", v)
}

// streamer writes progress events and the final result/error frame of a
// streamed request. Once the first event is written the HTTP status is
// committed to 200, so failures after that point travel as an "error"
// frame in the stream rather than a status code — the price of streaming
// over plain HTTP. Writes are serialized by a mutex: progress events
// arrive from pool workers (already serialized by the Tracker's lock, but
// the final frame comes from the handler goroutine).
//
// Each frame is written under a deadline (timeout, 0 = none): a client
// that opens a stream and stops reading would otherwise park a pool
// worker's progress callback on a full TCP send buffer for as long as
// the kernel keeps the dead connection. When a write misses its
// deadline or fails, the streamer latches broken — every later frame is
// a silent no-op — and fires onStall exactly once, which the handler
// wires to cancel the request so the simulation work stops too.
type streamer struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	rc      *http.ResponseController
	format  streamFormat
	timeout time.Duration
	onStall func()
	started bool
	broken  bool
}

// newStreamer prepares a streamer on w, or nil if format is streamNone.
// timeout bounds each frame write; onStall (may be nil) fires once on the
// first stalled or failed write.
func newStreamer(w http.ResponseWriter, format streamFormat, timeout time.Duration, onStall func()) *streamer {
	if format == streamNone {
		return nil
	}
	return &streamer{w: w, rc: http.NewResponseController(w), format: format, timeout: timeout, onStall: onStall}
}

// header commits the response headers once.
func (s *streamer) header() {
	if s.started {
		return
	}
	s.started = true
	ct := "text/event-stream"
	if s.format == streamNDJSON {
		ct = "application/x-ndjson"
	}
	s.w.Header().Set("Content-Type", ct)
	s.w.Header().Set("Cache-Control", "no-store")
	s.w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	s.w.WriteHeader(http.StatusOK)
}

// frame writes one event frame. payload must be a JSON-marshalable value;
// for NDJSON it is extended with the event kind inline.
func (s *streamer) frame(kind string, payload any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return
	}
	s.header()
	if s.timeout > 0 {
		// Deadline errors (recorder-backed tests, HTTP/1.0 hijacked
		// conns) mean "unsupported", not "stalled": proceed unbounded.
		if err := s.rc.SetWriteDeadline(time.Now().Add(s.timeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			s.stall(err)
			return
		}
	}
	var werr error
	switch s.format {
	case streamSSE:
		data, err := json.Marshal(payload)
		if err != nil {
			return
		}
		_, werr = fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", kind, data)
	case streamNDJSON:
		// Tag the payload with its kind so each line is self-describing.
		line := map[string]any{"event": kind, "data": payload}
		data, err := json.Marshal(line)
		if err != nil {
			return
		}
		_, werr = s.w.Write(append(data, '\n'))
	}
	if werr == nil {
		if err := s.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			werr = err
		}
	}
	if werr != nil {
		s.stall(werr)
	}
}

// stall latches the stream broken and fires onStall once. Callers hold
// s.mu.
func (s *streamer) stall(err error) {
	s.broken = true
	if s.onStall != nil {
		s.onStall()
		s.onStall = nil
	}
}

// progress emits one sweep progress event.
func (s *streamer) progress(ev sweep.Event) { s.frame("progress", ev) }

// result emits the final result frame. body is the same JSON document a
// non-streamed response would carry; framing compacts it (a frame must be
// newline-free), so streamed results match the cached document's JSON
// value, while only non-streamed responses are byte-identical.
func (s *streamer) result(body []byte) { s.frame("result", json.RawMessage(body)) }

// fail emits a terminal error frame with the same shape as the JSON error
// responses.
func (s *streamer) fail(code, msg string) {
	s.frame("error", map[string]string{"error": code, "message": msg})
}
