package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fsx"
)

// The chaos suite: script filesystem failures underneath a live daemon
// and hold it to the degraded-mode contract — the response is 200 and
// byte-identical to an unfaulted run, the X-Hetsimd-Persist header flips
// to "degraded", /readyz stays ready, and once the fault clears the
// recovery probe re-enables persistence. A persistence failure must never
// surface as a request failure.

// cleanBaseline runs the fast sweep on an unfaulted server and returns
// its body — the byte-identical reference for every chaos scenario.
func cleanBaseline(t *testing.T) []byte {
	t.Helper()
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline sweep status = %d; body: %s", resp.StatusCode, body)
	}
	return body
}

// faultedServer builds a server whose whole persistence path runs through
// an fsx fault injector, with a fast recovery probe.
func faultedServer(t *testing.T) (*fsx.Fault, *Server, string) {
	t.Helper()
	ff := fsx.NewFault(nil)
	s, ts := newTestServer(t, func(c *Config) {
		c.FS = ff
		c.ProbeInterval = 10 * time.Millisecond
		c.GCInterval = -1
	})
	return ff, s, ts.URL
}

// waitPersist polls until the guard reports the wanted status.
func waitPersist(t *testing.T, s *Server, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.persist.status() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("persist status never became %q (stuck at %q)", want, s.persist.status())
}

// mustSweep posts the fast sweep and asserts a 200 with the expected
// persistence header and the expected exact body.
func mustSweep(t *testing.T, url, wantPersist string, wantBody []byte) *http.Response {
	t.Helper()
	resp := postJSON(t, url+"/v1/sweep", fastSweep)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, want 200 (persistence failures must never fail requests); body: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderPersist); got != wantPersist {
		t.Fatalf("%s = %q, want %q", HeaderPersist, got, wantPersist)
	}
	if !bytes.Equal(body, wantBody) {
		t.Fatalf("response body differs from the unfaulted baseline\nfaulted: %s\nbaseline: %s", body, wantBody)
	}
	return resp
}

// TestChaosTornAppendENOSPC: the disk fills mid-sweep, tearing a journal
// append. The sweep finishes from memory, the response is identical to a
// healthy run, and after the disk clears the torn journal resumes
// cleanly and persistence heals.
func TestChaosTornAppendENOSPC(t *testing.T) {
	clean := cleanBaseline(t)
	ff, s, url := faultedServer(t)

	// Write #1 is the journal header; write #2 is the first run's append —
	// that one tears (half the line lands) and every write after fails,
	// probe writes included, until the fault clears.
	ff.Inject(fsx.Rule{Op: fsx.OpWrite, Nth: 2, Err: fsx.ErrNoSpace, Trip: true, ShortWrite: true})
	mustSweep(t, url, "degraded", clean)
	if op, _, degraded := s.persist.detail(); !degraded || op != opJournalAppend {
		t.Fatalf("guard = (op=%q, degraded=%v), want degraded on %s", op, degraded, opJournalAppend)
	}
	// Nothing was memoized: the state dir holds only the torn journal.
	journals, _ := filepath.Glob(filepath.Join(s.journalDir, "*.journal"))
	if len(journals) != 1 {
		t.Fatalf("journals after torn sweep = %v, want the torn one", journals)
	}

	// The disk clears; the probe re-enables persistence, and the next
	// request reopens the torn journal (truncating the torn tail), runs,
	// and memoizes — same bytes throughout.
	ff.Clear()
	waitPersist(t, s, "ok")
	mustSweep(t, url, "ok", clean)

	resp := mustSweep(t, url, "ok", clean)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("post-recovery repeat %s = %q, want hit", HeaderCache, got)
	}
}

// TestChaosFsyncEIO: every fsync fails (a dying device), so the journal
// cannot even be created. The sweep runs entirely un-journaled, the
// response is identical, /readyz stays ready with a degraded detail, and
// recovery restores full persistence.
func TestChaosFsyncEIO(t *testing.T) {
	clean := cleanBaseline(t)
	ff, s, url := faultedServer(t)

	ff.FailOp(fsx.OpSync, fsx.ErrIO)
	mustSweep(t, url, "degraded", clean)
	if op, _, degraded := s.persist.detail(); !degraded || op != opJournalCreate {
		t.Fatalf("guard = (op=%q, degraded=%v), want degraded on %s", op, degraded, opJournalCreate)
	}

	// Degraded is a warning, not an outage: /readyz stays 200.
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready["status"] != "ready" || ready["persist"] != "degraded" {
		t.Fatalf("readyz while degraded = %d %v, want 200 ready/degraded", resp.StatusCode, ready)
	}

	ff.Clear()
	waitPersist(t, s, "ok")
	mustSweep(t, url, "ok", clean)
	resp2 := mustSweep(t, url, "ok", clean)
	if got := resp2.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("post-recovery repeat %s = %q, want hit", HeaderCache, got)
	}
}

// TestChaosRenameFail: the sweep executes and journals fine but the cache
// entry's atomic rename fails. The response is still served identical;
// only memoization is lost.
func TestChaosRenameFail(t *testing.T) {
	clean := cleanBaseline(t)
	ff, s, url := faultedServer(t)

	ff.FailOp(fsx.OpRename, fsx.ErrIO)
	mustSweep(t, url, "degraded", clean)
	if op, _, degraded := s.persist.detail(); !degraded || op != opCachePut {
		t.Fatalf("guard = (op=%q, degraded=%v), want degraded on %s", op, degraded, opCachePut)
	}

	ff.Clear()
	waitPersist(t, s, "ok")
	mustSweep(t, url, "ok", clean)
	resp := mustSweep(t, url, "ok", clean)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("post-recovery repeat %s = %q, want hit", HeaderCache, got)
	}
}

// TestQuarantineUniqueSuffixJournal: repeatedly corrupting one
// fingerprint's journal must preserve every quarantined specimen.
func TestQuarantineUniqueSuffixJournal(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.GCInterval = -1 })
	var req SweepRequest
	if err := json.Unmarshal([]byte(fastSweep), &req); err != nil {
		t.Fatal(err)
	}
	p, err := resolveSweep(&req, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.journalDir, p.fingerprint+".journal")
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		state, err := s.openJournal(path, p)
		if err != nil {
			t.Fatalf("openJournal after corruption %d: %v", i, err)
		}
		state.Close()
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("first journal quarantine missing: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt.1"); err != nil {
		t.Fatalf("second journal quarantine did not get a unique suffix: %v", err)
	}
}
