package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testCache(t *testing.T) (*Cache, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := NewCache(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return c, dir
}

func TestCacheRoundTrip(t *testing.T) {
	c, _ := testCache(t)
	body := []byte("{\n  \"hello\": \"world\"\n}\n")
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put("k1", body); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get returned %q, want %q", got, body)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	// Overwrite is allowed and serves the new bytes.
	body2 := []byte("v2\n")
	if err := c.Put("k1", body2); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get("k1"); !bytes.Equal(got, body2) {
		t.Fatalf("after overwrite Get = %q, want %q", got, body2)
	}
}

func TestCacheEmptyBody(t *testing.T) {
	c, _ := testCache(t)
	if err := c.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("empty")
	if !ok || len(got) != 0 {
		t.Fatalf("empty entry: got %q, ok=%v", got, ok)
	}
}

// TestCacheCorruptQuarantine: every flavor of damage must read as a miss,
// move the bad entry aside as evidence, and let a fresh Put heal the key.
func TestCacheCorruptQuarantine(t *testing.T) {
	body := []byte("payload bytes that matter\n")
	corruptions := map[string]func(entry []byte) []byte{
		"flipped body bit": func(e []byte) []byte {
			e[len(e)-2] ^= 0x40
			return e
		},
		"truncated body": func(e []byte) []byte { return e[:len(e)-4] },
		"bad magic":      func(e []byte) []byte { return append([]byte("notsimd-cache 1 00000000 3\nabc"), nil...) },
		"no header":      func(e []byte) []byte { return []byte(strings.Repeat("x", 200)) },
		"garbage length": func(e []byte) []byte {
			return []byte("hetsimd-cache 1 00000000 banana\n")
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c, dir := testCache(t)
			if err := c.Put("key", body); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "key.entry")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still present under its serving name (err=%v)", err)
			}
			// The key heals on the next Put.
			if err := c.Put("key", body); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); !ok || !bytes.Equal(got, body) {
				t.Fatalf("healed entry: got %q, ok=%v", got, ok)
			}
		})
	}
}

// TestCacheLenIgnoresQuarantine: quarantined and temp files don't count
// as entries.
func TestCacheLenIgnoresQuarantine(t *testing.T) {
	c, dir := testCache(t)
	if err := c.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one and trip the quarantine.
	path := filepath.Join(dir, "a.entry")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Get("a")
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d after quarantine, want 1", n)
	}
}
