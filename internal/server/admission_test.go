package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateWeightInvariant hammers the gate with mixed-weight requests and
// checks the core admission invariant: the sum of admitted weights never
// exceeds the slot capacity, no matter the offered load.
func TestGateWeightInvariant(t *testing.T) {
	const slots = 4
	g := NewGate(slots, 64)
	var held atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		weight := 1 + i%slots
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Admit(context.Background(), weight)
			if err != nil {
				t.Errorf("Admit(weight=%d): %v", weight, err)
				return
			}
			if now := held.Add(int64(weight)); now > slots {
				t.Errorf("admitted weight reached %d, cap is %d", now, slots)
			}
			time.Sleep(time.Millisecond)
			held.Add(int64(-weight))
			release()
		}()
	}
	wg.Wait()
	if st := g.Stats(); st.Held != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestGateBusy: with the slots taken and the waiting line full, the next
// request fails fast with ErrBusy instead of queueing.
func TestGateBusy(t *testing.T) {
	g := NewGate(1, 1)
	release, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single queue seat.
	entered := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		close(entered)
		r, err := g.Admit(context.Background(), 1)
		if err == nil {
			defer r()
		}
		got <- err
	}()
	<-entered
	waitFor(t, func() bool { return g.Stats().Waiting == 1 })

	if _, err := g.Admit(context.Background(), 1); !errors.Is(err, ErrBusy) {
		t.Fatalf("Admit with full queue = %v, want ErrBusy", err)
	}

	release()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

// TestGateCanceledWhileQueued: a waiter whose context ends leaves the
// line with its ctx error rather than blocking forever.
func TestGateCanceledWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	release, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, 1)
		got <- err
	}()
	waitFor(t, func() bool { return g.Stats().Waiting == 1 })
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never left the line")
	}
	if st := g.Stats(); st.Waiting != 0 {
		t.Fatalf("waiting = %d after cancel, want 0", st.Waiting)
	}
}

// TestGateWeightClamp: a request heavier than the whole gate is clamped,
// not deadlocked as unsatisfiable.
func TestGateWeightClamp(t *testing.T) {
	g := NewGate(2, 0)
	release, err := g.Admit(context.Background(), 99)
	if err != nil {
		t.Fatalf("oversized weight: %v", err)
	}
	if st := g.Stats(); st.Held != 2 {
		t.Fatalf("held = %d, want clamp to %d", st.Held, 2)
	}
	release()
}

// TestGateReleaseIdempotent: double release must not free slots twice.
func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(2, 0)
	release, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if st := g.Stats(); st.Held != 0 {
		t.Fatalf("held = %d, want 0", st.Held)
	}
	// A second admit still accounts correctly.
	r2, err := g.Admit(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Held != 2 {
		t.Fatalf("held = %d after re-admit, want 2", st.Held)
	}
	r2()
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
