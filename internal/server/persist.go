package server

import (
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/metrics"
)

// The persistence operations that can flip the daemon into degraded mode.
// Each is a label value of hetsimd_persist_degraded_total.
const (
	opJournalCreate = "journal_create" // opening/creating a checkpoint journal
	opJournalAppend = "journal_append" // appending a completed run mid-sweep
	opCachePut      = "cache_put"      // memoizing a completed response
)

// persistGuard is the daemon's degraded-mode switch. The design rule it
// enforces: persistence failures are never request failures. A full disk,
// a dead volume, a read-only remount — the in-flight sweep finishes from
// memory, the response is served correct and byte-identical to a healthy
// run (the documents carry no persistence state), and only the
// X-Hetsimd-Persist header, /readyz detail, and metrics tell the operator
// the daemon is running without a safety net: no checkpoint journals, no
// result memoization, so a crash loses in-flight progress and repeated
// requests recompute.
//
// While degraded, the daemon stops attempting journal creates and cache
// writes (one failure is a signal, a failure per request is log spam and
// wasted syscalls on a dead disk) and a single background probe
// periodically exercises the state dir — write, fsync, remove — with
// exponential backoff. The first successful probe re-enables persistence.
// Cache reads continue throughout: serving a verified entry that is
// already on disk needs no writes.
type persistGuard struct {
	s *Server

	mu       sync.Mutex
	degraded bool
	lastOp   string // which operation failed last
	lastErr  error
	probing  bool // one probe goroutine at a time
}

// ok reports whether persistence is enabled (not degraded).
func (g *persistGuard) ok() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.degraded
}

// status reports the X-Hetsimd-Persist header value.
func (g *persistGuard) status() string {
	if g.ok() {
		return "ok"
	}
	return "degraded"
}

// detail reports the failing operation and error while degraded.
func (g *persistGuard) detail() (op string, err error, degraded bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastOp, g.lastErr, g.degraded
}

// counterFor maps an operation to its pre-resolved failure counter.
func (g *persistGuard) counterFor(op string) metrics.Counter {
	switch op {
	case opJournalCreate:
		return g.s.m.degradedJournalCreate
	case opJournalAppend:
		return g.s.m.degradedJournalAppend
	default:
		return g.s.m.degradedCachePut
	}
}

// degrade records a persistence failure and enters (or stays in) degraded
// mode, starting the recovery probe if one is not already running.
func (g *persistGuard) degrade(op string, err error) {
	g.counterFor(op).Inc()
	g.mu.Lock()
	wasOK := !g.degraded
	g.degraded = true
	g.lastOp, g.lastErr = op, err
	startProbe := !g.probing
	if startProbe {
		g.probing = true
	}
	g.mu.Unlock()
	if wasOK {
		g.s.m.persistDegraded.Set(1)
		g.s.cfg.Logf("persistence degraded (%s failed): %v — serving from memory, probing for recovery", op, err)
	}
	if startProbe {
		go g.probeLoop()
	}
}

// probeLoop retries the state dir with exponential backoff until a probe
// succeeds, then re-enables persistence and exits. It also exits on the
// hard-shutdown context so a dying process does not keep poking a dead
// disk.
func (g *persistGuard) probeLoop() {
	delay := g.s.cfg.ProbeInterval
	for {
		select {
		case <-time.After(delay):
		case <-g.s.cfg.Hard.Done():
			g.mu.Lock()
			g.probing = false
			g.mu.Unlock()
			return
		}
		if err := g.probe(); err != nil {
			g.mu.Lock()
			g.lastErr = err
			g.mu.Unlock()
			if delay *= 2; delay > 30*time.Second {
				delay = 30 * time.Second
			}
			continue
		}
		g.mu.Lock()
		g.degraded = false
		g.probing = false
		g.lastOp, g.lastErr = "", nil
		g.mu.Unlock()
		g.s.m.persistDegraded.Set(0)
		g.s.m.persistRecovered.Inc()
		g.s.cfg.Logf("persistence recovered: state dir writable again, journaling and caching re-enabled")
		return
	}
}

// probe exercises the full durable-write path the daemon depends on:
// create, write, fsync, close, atomic rename, remove, directory fsync —
// the same sequence a journal create or cache Put performs, through the
// same filesystem seam, so any fault that would break real persistence
// also holds the daemon degraded.
func (g *persistGuard) probe() error {
	tmp := filepath.Join(g.s.cfg.StateDir, ".probe.tmp")
	dst := filepath.Join(g.s.cfg.StateDir, ".probe")
	f, err := g.s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("hetsimd persistence probe\n"))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = g.s.fs.Rename(tmp, dst)
	}
	if werr != nil {
		g.s.fs.Remove(tmp)
		return werr
	}
	if err := g.s.fs.Remove(dst); err != nil {
		return err
	}
	return journal.SyncDirOn(g.s.fs, g.s.cfg.StateDir)
}
