package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/harness"

	_ "repro/internal/suites/rodinia"
)

// newTestServer builds a Server over a temp state dir and mounts it on an
// httptest server. mutate may adjust the config (and the returned Server's
// seams may be stubbed before issuing requests).
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		StateDir:   t.TempDir(),
		Pool:       1,
		Queue:      4,
		RetryAfter: time.Second,
		Logf:       t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// stubSweepResults is a minimal completed sweep for seam stubs.
func stubSweepResults(size bench.Size) *experiments.Results {
	return &experiments.Results{Size: size}
}

// TestSweepQueueFull429: with every slot held and no waiting line, a
// second sweep is rejected with 429 and a Retry-After hint — admission
// control, not unbounded queueing.
func TestSweepQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Pool = 1; c.Queue = 0 })
	started := make(chan struct{})
	unblock := make(chan struct{})
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		close(started)
		<-unblock
		return stubSweepResults(size), nil
	}
	first := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Error(err)
		}
		first <- resp
	}()
	<-started

	resp := postJSON(t, ts.URL+"/v1/sweep", `{}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep status = %d, want 429; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] != "busy" {
		t.Fatalf("429 body = %s (err=%v), want error=busy", body, err)
	}

	close(unblock)
	if resp := <-first; resp != nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first sweep status = %d, want 200; body: %s", resp.StatusCode, readBody(t, resp))
		}
		resp.Body.Close()
	}
}

// TestSweepDeadlineWhileQueued: a queued request whose deadline expires
// leaves the line with a 504 instead of waiting forever.
func TestSweepDeadlineWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Pool = 1; c.Queue = 4 })
	started := make(chan struct{})
	unblock := make(chan struct{})
	defer close(unblock)
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		close(started)
		<-unblock
		return stubSweepResults(size), nil
	}
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp := postJSON(t, ts.URL+"/v1/sweep", `{"deadline_ms": 50}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued+expired status = %d, want 504; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 response missing Retry-After: the wait was this server's congestion")
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] != "deadline" {
		t.Fatalf("504 body = %s, want error=deadline", body)
	}
}

// TestRunDeadlineCanceledOutcome: a real run whose request deadline fires
// mid-simulation comes back 200 with a structured canceled outcome — and
// is never cached, so a retry actually re-executes.
func TestRunDeadlineCanceledOutcome(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := `{"benchmark": "rodinia/srad", "size": "medium", "deadline_ms": 20}`

	for i, wantCache := range []string{"miss", "miss"} {
		resp := postJSON(t, ts.URL+"/v1/run", req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status = %d, want 200; body: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(HeaderCache); got != wantCache {
			t.Fatalf("attempt %d: %s = %q, want %q (canceled outcomes must not be cached)",
				i, HeaderCache, got, wantCache)
		}
		var doc harness.OutcomeJSON
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("attempt %d: bad outcome JSON: %v\n%s", i, err, body)
		}
		if doc.Error == nil || doc.Error.Kind != "canceled" {
			t.Fatalf("attempt %d: outcome error = %+v, want kind=canceled", i, doc.Error)
		}
		if doc.WallMs != 0 {
			t.Fatalf("attempt %d: wall_ms = %v leaked into the document", i, doc.WallMs)
		}
	}
}

// fastSweep is the cheap real sweep the integration-ish tests use: one
// benchmark, small size, tight event budget.
const fastSweep = `{"benchmarks": ["rodinia/backprop"], "size": "small", "max_events": 40000}`

// TestSweepCacheLifecycle drives the full memoization story against the
// real simulator: miss (execute, journal, cache), hit (byte-identical,
// no re-execution), corrupt entry (quarantine, recompute, byte-identical
// again).
func TestSweepCacheLifecycle(t *testing.T) {
	s, ts := newTestServer(t, nil)

	resp := postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	clean := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first sweep status = %d; body: %s", resp.StatusCode, clean)
	}
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("first sweep %s = %q, want miss", HeaderCache, got)
	}
	if got := resp.Header.Get(HeaderResumed); got != "0" {
		t.Fatalf("first sweep %s = %q, want 0", HeaderResumed, got)
	}
	if bytes.Contains(clean, []byte("wall_ms")) {
		t.Fatal("sweep document leaked wall_ms; responses must be deterministic")
	}
	// The completed sweep's journal is subsumed by the cache entry.
	journals, _ := filepath.Glob(filepath.Join(s.journalDir, "*.journal"))
	if len(journals) != 0 {
		t.Fatalf("journals left after completed sweep: %v", journals)
	}

	// Hit: same bytes, no execution (seam trips the test if called).
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		t.Error("cache hit executed the sweep")
		return stubSweepResults(size), nil
	}
	resp = postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	hit := readBody(t, resp)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("second sweep %s = %q, want hit", HeaderCache, got)
	}
	if !bytes.Equal(hit, clean) {
		t.Fatal("cache hit body differs from the original response")
	}

	// Corrupt the entry: quarantine + recompute, byte-identical again.
	s.runSweep = experiments.RunSweep
	entries, err := filepath.Glob(filepath.Join(s.cache.dir, "*.entry"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err=%v), want exactly 1", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	recomputed := readBody(t, resp)
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("post-corruption sweep %s = %q, want miss", HeaderCache, got)
	}
	if !bytes.Equal(recomputed, clean) {
		t.Fatal("recomputed body differs from the original response")
	}
	if _, err := os.Stat(entries[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
}

// TestSweepStream: a streamed request emits progress frames and ends with
// a result frame whose payload is byte-identical to the non-streamed
// (cached) response.
func TestSweepStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/sweep?stream=ndjson", fastSweep)
	stream := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed sweep status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(stream), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream has %d frames, want progress + result", len(lines))
	}
	var frames []struct {
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	progress := 0
	var result json.RawMessage
	for _, line := range lines {
		var f struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(line, &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
		switch f.Event {
		case "progress":
			progress++
		case "result":
			result = f.Data
		case "error":
			t.Fatalf("stream error frame: %s", f.Data)
		}
	}
	if progress == 0 {
		t.Fatal("stream carried no progress frames")
	}
	if last := frames[len(frames)-1]; last.Event != "result" {
		t.Fatalf("last frame is %q, want result", last.Event)
	}

	// The same request non-streamed is a cache hit with the same document.
	resp = postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	cached := readBody(t, resp)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("follow-up %s = %q, want hit", HeaderCache, got)
	}
	// Frames are compacted (newline-free), so compare JSON values.
	var a, b any
	if err := json.Unmarshal(result, &a); err != nil {
		t.Fatalf("result frame: %v", err)
	}
	if err := json.Unmarshal(cached, &b); err != nil {
		t.Fatalf("cached body: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("streamed result differs from cached response")
	}
}

// TestDrainingRejects: once the Drain context ends, readyz flips to 503
// and new work is refused with the draining error.
func TestDrainingRejects(t *testing.T) {
	drain, cancel := context.WithCancel(context.Background())
	_, ts := newTestServer(t, func(c *Config) { c.Drain = drain })

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	cancel()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/sweep", `{}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain = %d, want 503; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection missing Retry-After")
	}

	// healthz stays 200 (liveness, not readiness) and reports the drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(hb, []byte(`"draining":true`)) {
		t.Fatalf("healthz during drain = %d %s", resp.StatusCode, hb)
	}
}

// TestPanicIsolation: a panic inside request handling becomes a 500 for
// that request; the process (and subsequent requests) survive.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.runOne = func(spec harness.Spec) *harness.Outcome { panic("server-layer bug") }

	resp := postJSON(t, ts.URL+"/v1/run", `{"benchmark": "rodinia/backprop"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500; body: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] != "internal" {
		t.Fatalf("500 body = %s, want error=internal", body)
	}

	// The server still works.
	s.runOne = func(spec harness.Spec) *harness.Outcome {
		return &harness.Outcome{Attempts: 1, Size: spec.Size, Events: 7}
	}
	resp = postJSON(t, ts.URL+"/v1/run", `{"benchmark": "rodinia/backprop"}`)
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d; body: %s", resp.StatusCode, body)
	}
}

// TestRunCacheHit: a completed run is memoized; the repeat request serves
// the stored bytes without re-executing.
func TestRunCacheHit(t *testing.T) {
	s, ts := newTestServer(t, nil)
	calls := 0
	s.runOne = func(spec harness.Spec) *harness.Outcome {
		calls++
		return &harness.Outcome{Attempts: 1, Size: spec.Size, Events: 42}
	}
	req := `{"benchmark": "rodinia/backprop", "max_events": 100}`
	r1 := postJSON(t, ts.URL+"/v1/run", req)
	b1 := readBody(t, r1)
	r2 := postJSON(t, ts.URL+"/v1/run", req)
	b2 := readBody(t, r2)
	if calls != 1 {
		t.Fatalf("runOne called %d times, want 1", calls)
	}
	if r2.Header.Get(HeaderCache) != "hit" || !bytes.Equal(b1, b2) {
		t.Fatalf("repeat run not served from cache (%s=%q)", HeaderCache, r2.Header.Get(HeaderCache))
	}
	// A different budget is a different experiment: distinct cache key.
	r3 := postJSON(t, ts.URL+"/v1/run", `{"benchmark": "rodinia/backprop", "max_events": 200}`)
	readBody(t, r3)
	if calls != 2 || r3.Header.Get(HeaderCache) != "miss" {
		t.Fatalf("changed budget reused the cache (calls=%d, %s=%q)", calls, HeaderCache, r3.Header.Get(HeaderCache))
	}
}

// TestBadRequests: malformed and invalid requests all map to structured
// 400s (405 for wrong methods) without touching the simulator.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		t.Error("invalid request reached the simulator")
		return stubSweepResults(size), nil
	}
	s.runOne = func(spec harness.Spec) *harness.Outcome {
		t.Error("invalid request reached the simulator")
		return &harness.Outcome{}
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"not json", "/v1/sweep", `{`, 400},
		{"unknown field", "/v1/sweep", `{"benchmrks": ["x"]}`, 400},
		{"trailing garbage", "/v1/sweep", `{} {}`, 400},
		{"unknown benchmark", "/v1/sweep", `{"benchmarks": ["nope/nothere"]}`, 400},
		{"bad size", "/v1/sweep", `{"size": "jumbo"}`, 400},
		{"negative deadline", "/v1/sweep", `{"deadline_ms": -1}`, 400},
		{"jitter out of range", "/v1/sweep", `{"jitter": 1.5}`, 400},
		{"negative jobs", "/v1/sweep", `{"jobs": -2}`, 400},
		{"bad fault plan", "/v1/sweep", `{"fault": "pcie=banana"}`, 400},
		{"bad stream", "/v1/sweep?stream=xml", `{}`, 400},
		{"run without benchmark", "/v1/run", `{}`, 400},
		{"run unknown benchmark", "/v1/run", `{"benchmark": "nope/nothere"}`, 400},
		{"run bad mode", "/v1/run", `{"benchmark": "rodinia/backprop", "mode": "warp-speed"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.want, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not structured: %s", body)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sweep = %d, want 405", resp.StatusCode)
	}
}

// TestBenchmarksEndpoint: the registry listing names every registered
// benchmark with its modes.
func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var rows []benchmarkInfo
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("bad listing: %v\n%s", err, body)
	}
	found := false
	for _, row := range rows {
		if row.Name == "rodinia/backprop" {
			found = true
			// backprop supports every organization; the listing must
			// report the complete capability set, not just the names.
			want := []string{"copy", "limited-copy", "async-streams", "parallel-chunked"}
			if !reflect.DeepEqual(row.Modes, want) {
				t.Fatalf("rodinia/backprop modes = %v, want %v", row.Modes, want)
			}
		}
	}
	if !found {
		t.Fatalf("listing misses rodinia/backprop: %s", body)
	}
}

// TestSweepDrainMidRun: a drain that begins while a sweep is executing
// turns the response into a 503 that reports checkpoint progress, and the
// journal survives for the resubmission to resume.
func TestSweepDrainMidRun(t *testing.T) {
	drain, startDrain := context.WithCancel(context.Background())
	s, ts := newTestServer(t, func(c *Config) { c.Drain = drain })
	s.runSweep = func(size bench.Size, opts experiments.SweepOpts) (*experiments.Results, []harness.RunError) {
		startDrain()
		<-opts.Ctx.Done() // dispatch context must observe the drain
		res := stubSweepResults(size)
		res.Skipped = []string{"rodinia/backprop copy"}
		return res, nil
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"benchmarks": ["rodinia/backprop"]}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained sweep = %d, want 503; body: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("resubmit")) {
		t.Fatalf("drained sweep does not advertise resume: %s", body)
	}
	journals, _ := filepath.Glob(filepath.Join(s.journalDir, "*.journal"))
	if len(journals) != 1 {
		t.Fatalf("journals after drained sweep = %v, want the checkpoint to survive", journals)
	}
}

// TestCorruptJournalQuarantined: a damaged checkpoint journal must not
// wedge its fingerprint — the server quarantines it and recomputes.
func TestCorruptJournalQuarantined(t *testing.T) {
	s, ts := newTestServer(t, nil)
	// Seed a journal under the request's fingerprint, then corrupt it.
	var req SweepRequest
	if err := json.Unmarshal([]byte(fastSweep), &req); err != nil {
		t.Fatal(err)
	}
	p, err := resolveSweep(&req, 1)
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(s.journalDir, p.fingerprint+".journal")
	if err := os.WriteFile(jpath, []byte("not a journal at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/sweep", fastSweep)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep over corrupt journal = %d; body: %s", resp.StatusCode, body)
	}
	if _, err := os.Stat(jpath + ".corrupt"); err != nil {
		t.Fatalf("corrupt journal not quarantined: %v", err)
	}
}

// TestHealthz: liveness reports gate and cache state.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var doc struct {
		Status string    `json:"status"`
		Gate   GateStats `json:"gate"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if doc.Status != "ok" || doc.Gate.Slots != 1 {
		t.Fatalf("healthz = %s", body)
	}
}
