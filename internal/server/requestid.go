package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// HeaderRequestID is the correlation-ID header: accepted from the client,
// generated when absent, and echoed on every response. The same ID is
// threaded into the access log line, the sweep's progress events, the
// checkpoint journal's filename, and the harness trace spans — one string
// links everything one request produced.
const HeaderRequestID = "X-Request-Id"

// maxRequestIDLen caps accepted IDs; longer client values are truncated.
const maxRequestIDLen = 64

type requestIDKey struct{}

// withRequestID stores the request's correlation ID in its context.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the correlation ID threaded through ctx ("" when
// the context did not pass through the server middleware).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ensureRequestID resolves the request's correlation ID: the client's
// X-Request-Id if it survives sanitization, a generated one otherwise.
func ensureRequestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(HeaderRequestID)); id != "" {
		return id
	}
	return newRequestID()
}

// sanitizeRequestID filters a client-supplied ID down to [A-Za-z0-9._-]
// and at most maxRequestIDLen bytes. The ID lands in journal filenames,
// log lines, and trace args, so anything outside that conservative set is
// dropped rather than escaped.
func sanitizeRequestID(s string) string {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < maxRequestIDLen; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-' {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// newRequestID generates a 16-hex-char random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed fallback keeps
		// requests flowing and is obvious in logs.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}
