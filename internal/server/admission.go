package server

import (
	"context"
	"errors"
	"sync"

	"repro/internal/metrics"
)

// ErrBusy reports an admission rejection: every execution slot is taken
// and the waiting line is full. The HTTP layer maps it to 429 with a
// Retry-After hint — the bounded-queue alternative to accepting every
// request and growing without bound until the process dies.
var ErrBusy = errors.New("server: overloaded (queue full)")

// Gate is the daemon's admission controller: a weighted semaphore over
// simulation slots with a bounded waiting line. Every admitted request
// holds as many slots as simulations it may run concurrently (its worker
// count), so the sum of in-flight simulations across all requests never
// exceeds the slot capacity — the process's simulation concurrency is a
// configuration constant, not a function of offered load. Requests that
// cannot be admitted immediately wait in a line bounded by queue; beyond
// that, Admit fails fast with ErrBusy instead of queueing unboundedly.
//
// Waiters are woken in no particular order (sync.Cond broadcast), which
// can let a light request barge ahead of a heavy one — acceptable
// unfairness for a cap this small, and it can never starve the line
// forever because every release broadcasts.
type Gate struct {
	mu      sync.Mutex
	wake    *sync.Cond
	slots   int // capacity: max total weight admitted at once
	queue   int // capacity: max requests waiting for slots
	held    int // weight currently admitted
	waiting int // requests currently in the waiting line

	// Optional live gauges, attached by Instrument and kept current under
	// mu so a scrape mid-churn still sees a consistent pair.
	instrumented bool
	heldGauge    metrics.Gauge
	waitingGauge metrics.Gauge
}

// Instrument attaches gauges the gate updates as admission state changes:
// heldGauge tracks the admitted weight (concurrent simulations), and
// waitingGauge the depth of the bounded waiting line.
func (g *Gate) Instrument(heldGauge, waitingGauge metrics.Gauge) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.heldGauge, g.waitingGauge, g.instrumented = heldGauge, waitingGauge, true
	g.sync()
}

// sync publishes the gate's state to the attached gauges; callers hold mu.
func (g *Gate) sync() {
	if g.instrumented {
		g.heldGauge.Set(int64(g.held))
		g.waitingGauge.Set(int64(g.waiting))
	}
}

// NewGate builds a gate with the given slot and queue capacities
// (minimums of 1 slot and 0 queue are enforced).
func NewGate(slots, queue int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	g := &Gate{slots: slots, queue: queue}
	g.wake = sync.NewCond(&g.mu)
	return g
}

// Admit reserves weight slots (clamped to [1, capacity] so no request is
// unsatisfiable), waiting in the bounded line when the gate is full. It
// returns an idempotent release function on success; ErrBusy when the
// line itself is full; or ctx.Err() when the caller's deadline fires or
// its client disconnects while queued. The returned release MUST be
// called exactly when the request's simulations are done — a deferred
// call in the handler.
func (g *Gate) Admit(ctx context.Context, weight int) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > g.slots {
		weight = g.slots
	}
	g.mu.Lock()
	if g.held+weight > g.slots {
		if g.waiting >= g.queue {
			g.mu.Unlock()
			return nil, ErrBusy
		}
		g.waiting++
		g.sync()
		// Wake this waiter when the caller gives up, not only when a
		// slot frees: a queued request whose deadline fired must leave
		// the line promptly so it cannot clog it.
		stop := context.AfterFunc(ctx, g.wake.Broadcast)
		for g.held+weight > g.slots && ctx.Err() == nil {
			g.wake.Wait()
		}
		g.waiting--
		g.sync()
		stop()
		if ctx.Err() != nil {
			// Leaving the line may unblock nothing, but a broadcast is
			// cheap and keeps the invariant simple.
			g.wake.Broadcast()
			g.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	g.held += weight
	g.sync()
	g.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.held -= weight
			g.sync()
			g.wake.Broadcast()
			g.mu.Unlock()
		})
	}, nil
}

// GateStats is a point-in-time snapshot of the gate for health/metrics
// endpoints and tests.
type GateStats struct {
	Slots   int `json:"slots"`
	Queue   int `json:"queue"`
	Held    int `json:"in_flight"`
	Waiting int `json:"waiting"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{Slots: g.slots, Queue: g.queue, Held: g.held, Waiting: g.waiting}
}
